// End-to-end integration test of the command-line tools: build each
// binary and drive the full workflow — synthesize a genome, simulate
// reads, map them (SAM), find overlaps, assemble contigs — checking
// each stage's outputs. Run with: go test -run TestCLIPipeline
package darwin_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"darwin/internal/dna"
)

// buildTool compiles one cmd into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries")
	}
	dir := t.TempDir()
	genomesim := buildTool(t, dir, "genomesim")
	readsim := buildTool(t, dir, "readsim")
	darwin := buildTool(t, dir, "darwin")
	overlap := buildTool(t, dir, "darwin-overlap")
	assemble := buildTool(t, dir, "darwin-assemble")

	refPath := filepath.Join(dir, "ref.fa")
	runTool(t, genomesim, "-len", "80000", "-seed", "5", "-out", refPath)
	recs := readFASTA(t, refPath)
	if len(recs) != 1 || len(recs[0].Seq) != 80000 {
		t.Fatalf("genomesim output wrong: %d records", len(recs))
	}

	readsPath := filepath.Join(dir, "reads.fq")
	truthPath := filepath.Join(dir, "truth.tsv")
	runTool(t, readsim, "-ref", refPath, "-profile", "pacbio", "-n", "40",
		"-len", "2500", "-seed", "6", "-out", readsPath, "-truth", truthPath)

	// Mapping: every read line must reference the synthetic sequence
	// and the majority must map within 50 bp of the recorded truth.
	samPath := filepath.Join(dir, "out.sam")
	runTool(t, darwin, "-ref", refPath, "-reads", readsPath,
		"-k", "11", "-n", "600", "-h", "20", "-out", samPath)
	truth := readTruth(t, truthPath)
	f, err := os.Open(samPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	mapped, correct := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			t.Fatalf("short SAM line: %q", line)
		}
		flag, _ := strconv.Atoi(fields[1])
		if flag&0x4 != 0 {
			continue
		}
		mapped++
		pos, _ := strconv.Atoi(fields[3])
		want, ok := truth[fields[0]]
		if !ok {
			t.Fatalf("unknown read %q in SAM", fields[0])
		}
		if pos-1 >= want-50 && pos-1 <= want+50 {
			correct++
		}
	}
	if mapped < 35 {
		t.Errorf("only %d/40 reads mapped", mapped)
	}
	if correct < mapped*9/10 {
		t.Errorf("only %d/%d mapped reads at the true position", correct, mapped)
	}

	// Overlap step over denser reads.
	ovReadsPath := filepath.Join(dir, "ovreads.fq")
	runTool(t, readsim, "-ref", refPath, "-profile", "pacbio", "-n", "200",
		"-len", "2500", "-seed", "7", "-out", ovReadsPath)
	ovPath := filepath.Join(dir, "ov.tsv")
	runTool(t, overlap, "-reads", ovReadsPath, "-k", "11", "-n", "700", "-h", "20",
		"-stride", "3", "-min-overlap", "800", "-out", ovPath)
	ovData, err := os.ReadFile(ovPath)
	if err != nil {
		t.Fatal(err)
	}
	ovLines := strings.Count(string(ovData), "\n")
	if ovLines < 100 {
		t.Errorf("only %d overlap lines for a 6x workload", ovLines)
	}

	// Assembly: expect few contigs, largest a sizable fraction of the
	// genome.
	asmPath := filepath.Join(dir, "contigs.fa")
	runTool(t, assemble, "-reads", ovReadsPath, "-k", "11", "-n", "700", "-h", "20",
		"-stride", "3", "-min-overlap", "800", "-polish", "1", "-out", asmPath)
	contigs := readFASTA(t, asmPath)
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	longest := 0
	for _, c := range contigs {
		if len(c.Seq) > longest {
			longest = len(c.Seq)
		}
	}
	if longest < 40000 {
		t.Errorf("largest contig %d bp, want ≥ half the 80 kbp genome", longest)
	}
}

func readFASTA(t *testing.T, path string) []dna.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := dna.ReadFASTA(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func readTruth(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) < 3 || fields[0] == "name" {
			continue
		}
		start, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("bad truth line %q", sc.Text())
		}
		out[fields[0]] = start
	}
	return out
}
