// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment, backed by
// internal/experiments in Quick mode), plus kernel micro-benchmarks
// for the compute primitives the paper's hardware accelerates and the
// design-choice ablations DESIGN.md calls out.
//
// Run with: go test -bench=. -benchmem
package darwin_test

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/dsoftsim"
	"darwin/internal/experiments"
	"darwin/internal/fmindex"
	"darwin/internal/gact"
	"darwin/internal/gactsim"
	"darwin/internal/genome"
	"darwin/internal/hw"
	"darwin/internal/indexio"
	"darwin/internal/obs"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
	"darwin/internal/shard"
)

// benchExperiment runs one experiment per iteration and reports a few
// headline metrics.
func benchExperiment(b *testing.B, id string, metricKeys map[string]string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for key, unit := range metricKeys {
		if v, ok := last.Values[key]; ok {
			b.ReportMetric(v, unit)
		}
	}
	if testing.Verbose() {
		b.Logf("\n%s", last.Report)
	}
}

func BenchmarkTable1ErrorProfiles(b *testing.B) {
	benchExperiment(b, "table1", map[string]string{
		"PacBio/total": "pacbio_err", "ONT_1D/total": "ont1d_err",
	})
}

func BenchmarkTable2AreaPower(b *testing.B) {
	benchExperiment(b, "table2", map[string]string{
		"Total/area": "mm2", "Total/power": "W",
	})
}

func BenchmarkTable3DSOFTThroughput(b *testing.B) {
	benchExperiment(b, "table3", map[string]string{
		"model/k11": "k11_Kseeds/s", "model/k15": "k15_Kseeds/s",
	})
}

func BenchmarkTable4Overall(b *testing.B) {
	benchExperiment(b, "table4", map[string]string{
		"PacBio/speedup": "pacbio_speedup", "denovo/speedup": "denovo_speedup",
	})
}

func BenchmarkFig9aGACTOptimality(b *testing.B) {
	benchExperiment(b, "fig9a", map[string]string{
		"PacBio/T320_O128": "pacbio_opt_frac", "ONT_1D/T320_O128": "ont1d_opt_frac",
	})
}

func BenchmarkFig9bGACTArrayThroughput(b *testing.B) {
	benchExperiment(b, "fig9b", map[string]string{
		"T320_O128": "aligns/s",
	})
}

func BenchmarkFig10ThroughputVsLength(b *testing.B) {
	benchExperiment(b, "fig10", map[string]string{
		"speedup_vs_edlib/1000": "speedup_1k", "speedup_vs_edlib/2000": "speedup_2k",
	})
}

func BenchmarkFig11DSOFTTuning(b *testing.B) {
	benchExperiment(b, "fig11", nil)
}

func BenchmarkFig12FirstTileScores(b *testing.B) {
	benchExperiment(b, "fig12", map[string]string{
		"false_filtered_at_90": "false_filtered", "true_lost_at_90": "true_lost",
	})
}

func BenchmarkFig13Waterfall(b *testing.B) {
	benchExperiment(b, "fig13", map[string]string{
		"line1/total_ms": "graphmap_ms", "line6/total_ms": "darwin_ms",
	})
}

// BenchmarkCorePipeline measures the full software engine (D-SOFT +
// GACT read mapping) on a fixed synthetic workload and writes the obs
// run report to BENCH_core.json — the machine-readable trajectory
// point every perf PR diffs against its predecessor.
func BenchmarkCorePipeline(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 300_000, GC: 0.45, Seed: 81})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.New(g.Seq, core.DefaultConfig(11, 600, 20))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 16, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 82})
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	run := obs.NewRun("bench_core")
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		results, err := engine.MapAll(seqs, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			cells += r.Stats.Cells
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	b.ReportMetric(float64(len(seqs)*b.N)/b.Elapsed().Seconds(), "reads/s")
	if err := run.Report().WriteJSON("BENCH_core.json"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMapRead measures single-thread MapRead throughput — the
// end-to-end number the tile-kernel perf work is judged by — and
// writes the obs run report to BENCH_kernel.json (`make bench-kernel`),
// the kernel-path trajectory point scripts/benchdiff.sh diffs.
func BenchmarkMapRead(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 300_000, GC: 0.45, Seed: 81})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.New(g.Seq, core.DefaultConfig(11, 600, 20))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 16, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 82})
	if err != nil {
		b.Fatal(err)
	}
	run := obs.NewRun("bench_kernel")
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		alns, st := engine.MapRead(reads[i%len(reads)].Seq)
		cells += st.Cells
		if len(alns) == 0 {
			b.Fatal("read did not map")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	if err := run.Report().WriteJSON("BENCH_kernel.json"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMapReadTraced is BenchmarkMapRead with every read mapped
// under a live request span, the way darwind's serving path maps it:
// a root span in the context, a core.map/core.read tree growing under
// it, and the GACT engine recording per-extension attributes. Writes
// BENCH_kernel_traced.json; `make benchdiff-traced` gates the tracing
// overhead at 3% against BENCH_kernel.json.
func BenchmarkMapReadTraced(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 300_000, GC: 0.45, Seed: 81})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.New(g.Seq, core.DefaultConfig(11, 600, 20))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 16, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 82})
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]dna.Seq, len(reads))
	for i, r := range reads {
		batches[i] = []dna.Seq{r.Seq}
	}
	run := obs.NewRun("bench_kernel_traced")
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		span := obs.NewRequestSpan(obs.NewRequestID(), "bench POST /v1/map")
		ctx := obs.ContextWithSpan(context.Background(), span)
		res, err := engine.Map(ctx, batches[i%len(batches)], core.WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		cells += res[0].Stats.Cells
		if len(res[0].Alignments) == 0 {
			b.Fatal("read did not map")
		}
		span.End()
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	if err := run.Report().WriteJSON("BENCH_kernel_traced.json"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardMapAll measures the sharded scatter-gather engine in
// its bounded-memory regime: an 8-shard index with a residency budget
// of ~¼ the full seed table, so every MapAll batch rebuilds evicted
// shards (the worst case the shard-major batch order amortizes). It
// writes the obs run report to BENCH_shard.json (`make bench-shard`);
// scripts/benchdiff.sh diffs two such reports via the shared
// core/reads counter.
func BenchmarkShardMapAll(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 2_000_000, GC: 0.45, Seed: 83})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(13, 600, 22)
	// Size the budget from the monolithic table: ¼ of the full index.
	mono, err := core.New(g.Seq, cfg)
	if err != nil {
		b.Fatal(err)
	}
	budget := mono.Table().Bytes() / 4
	engine, err := shard.New(g.Seq, cfg, shard.Config{Shards: 8, MaxResidentBytes: budget})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 32, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 84})
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	run := obs.NewRun("bench_shard")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.MapAll(seqs, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(seqs)*b.N)/b.Elapsed().Seconds(), "reads/s")
	b.ReportMetric(float64(engine.Set().PeakResidentBytes())/float64(1<<20), "peak_MiB")
	b.ReportMetric(float64(budget)/float64(1<<20), "budget_MiB")
	if err := run.Report().WriteJSON("BENCH_shard.json"); err != nil {
		b.Fatal(err)
	}
}

// --- Kernel micro-benchmarks ---------------------------------------

func benchPair(b *testing.B, n int, profile readsim.Profile) (dna.Seq, dna.Seq) {
	b.Helper()
	g, err := genome.Generate(genome.Config{Length: n + 200, GC: 0.45, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: profile, MeanLen: n, Seed: 72})
	if err != nil {
		b.Fatal(err)
	}
	r := reads[0]
	region := g.Seq
	if r.Reverse {
		region = dna.RevComp(g.Seq)
	}
	return region, r.Seq
}

// BenchmarkGACTTile measures the compute-intensive Align step the
// GACT array accelerates: one 320×320 tile with traceback.
func BenchmarkGACTTile(b *testing.B) {
	ref, q := benchPair(b, 400, readsim.PacBio)
	sc := align.GACTEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.AlignTile(ref[:320], q[:320], false, 192, &sc)
	}
	b.ReportMetric(float64(320*320), "cells/op")
}

// BenchmarkAlignTile measures the same 320×320 tile on the reusable
// allocation-free kernel (align.TileAligner) in its default auto mode
// — the production tile path, bitvector tier included;
// BenchmarkGACTTile above is the allocating full-LUT reference oracle
// it is compared against.
func BenchmarkAlignTile(b *testing.B) {
	ref, q := benchPair(b, 400, readsim.PacBio)
	sc := align.GACTEval()
	ta, err := align.NewTileAligner(&sc)
	if err != nil {
		b.Fatal(err)
	}
	ta.Preallocate(320)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.AlignTile(ref[:320], q[:320], false, 192)
	}
	b.ReportMetric(float64(320*320), "cells/op")
	b.ReportMetric(float64(320*320)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkAlignTileBitvector contrasts the two kernel tiers on the
// workload the bitvector tier exists for: a high-identity (~3% error,
// HiFi/corrected-read class) 320×320 extension tile, where the
// provable band is narrow. The lut sub-benchmark is the full fill,
// the bitvector one is the Myers pass + affine rescore + banded fill.
// Both report Mcells/s as the *effective* rate over the geometric
// tile area (matching BenchmarkAlignTile), so the sub-benchmark ratio
// is the tier's end-to-end win; with KernelAuto the production path
// gets the bitvector rate whenever the divergence gate admits the
// tile.
func BenchmarkAlignTileBitvector(b *testing.B) {
	// An anchored ~3% tile: an extension tile continues an existing
	// alignment, so its corner offset is near zero (benchPair's whole
	// region would add a spurious leading shift that widens the band).
	hifi := readsim.Profile{Name: "HiFi", Sub: 0.005, Ins: 0.015, Del: 0.010}
	g, err := genome.Generate(genome.Config{Length: 600, GC: 0.45, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: hifi, MeanLen: 400, Seed: 72})
	if err != nil {
		b.Fatal(err)
	}
	r := reads[0]
	region, start := g.Seq, r.RefStart
	if r.Reverse {
		region = dna.RevComp(g.Seq)
		start = len(region) - r.RefEnd
	}
	start = min(start, len(region)-320)
	ref, q := region[start:], r.Seq
	sc := align.GACTEval()
	run := func(b *testing.B, mode align.KernelMode) *align.TileAligner {
		ta, err := align.NewTileAligner(&sc)
		if err != nil {
			b.Fatal(err)
		}
		ta.Preallocate(320)
		ta.SetKernel(mode)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ta.AlignTile(ref[:320], q[:320], false, 192)
		}
		b.StopTimer()
		b.ReportMetric(float64(320*320), "cells/op")
		b.ReportMetric(float64(320*320)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		return ta
	}
	b.Run("lut", func(b *testing.B) { run(b, align.KernelLUT) })
	b.Run("bitvector", func(b *testing.B) {
		ta := run(b, align.KernelBitvector)
		ks := ta.KernelStats()
		if ks.BitvectorTiles != int64(b.N) {
			b.Fatalf("bitvector tier ran %d of %d tiles: %+v", ks.BitvectorTiles, b.N, ks)
		}
		b.ReportMetric(float64(ks.BitvectorCells)/float64(b.N), "filled_cells/op")
	})
}

// BenchmarkGACTExtend10k measures a full 10 kbp GACT alignment
// (Fig. 10's software series at its longest point).
func BenchmarkGACTExtend10k(b *testing.B) {
	ref, q := benchPair(b, 10000, readsim.PacBio)
	cfg := gact.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gact.Extend(ref, q, 0, 0, &cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMyers10k measures the Edlib-class baseline on the same
// pairing (quadratic bit-vector).
func BenchmarkMyers10k(b *testing.B) {
	ref, q := benchPair(b, 10000, readsim.PacBio)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.EditDistance(ref, q, align.EditGlobal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmithWaterman2k measures the O(mn) oracle.
func BenchmarkSmithWaterman2k(b *testing.B) {
	ref, q := benchPair(b, 2000, readsim.PacBio)
	sc := align.GACTEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.SmithWaterman(ref, q, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandedGlobal measures the banded heuristic the baselines
// extend with.
func BenchmarkBandedGlobal(b *testing.B) {
	ref, q := benchPair(b, 2000, readsim.PacBio)
	sc := align.GACTEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.BandedGlobal(ref[:2000], q[:min(len(q), 2000)], 256, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSOFTQuery measures the software filter (the memory-bound
// stage Darwin's accelerator targets).
func BenchmarkDSOFTQuery(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 500_000, GC: 0.45, Seed: 73})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := seedtable.Build(g.Seq, 11, seedtable.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	filter, err := dsoft.New(tab, dsoft.Config{N: 1000, H: 24, BinSize: 128})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: readsim.PacBio, MeanLen: 10000, Seed: 74})
	if err != nil {
		b.Fatal(err)
	}
	q := reads[0].Seq
	b.ResetTimer()
	seeds := 0
	for i := 0; i < b.N; i++ {
		_, st := filter.Query(q)
		seeds += st.SeedsIssued
	}
	b.ReportMetric(float64(seeds)/b.Elapsed().Seconds()/1e3, "Kseeds/s")
}

// BenchmarkSeedTableVsFMIndex contrasts the two index structures of
// Section 3 (design ablation #4 in DESIGN.md): the sequential-hit seed
// position table vs FM-index backward search + locate.
func BenchmarkSeedTableVsFMIndex(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 300_000, GC: 0.45, Seed: 75})
	if err != nil {
		b.Fatal(err)
	}
	const k = 12
	tab, err := seedtable.Build(g.Seq, k, seedtable.Options{NoMask: true})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := fmindex.Build(g.Seq)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(76))
	queries := make([]dna.Seq, 256)
	for i := range queries {
		p := rng.Intn(len(g.Seq) - k)
		queries[i] = g.Seq[p : p+k].Clone()
	}
	b.Run("seedtable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.LookupSeq(queries[i%len(queries)], 0)
		}
	})
	b.Run("fmindex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Locate(queries[i%len(queries)], 64)
		}
	})
}

// BenchmarkSeedTableBuild measures index construction (the software
// cost dominating Darwin's de novo accounting).
func BenchmarkSeedTableBuild(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 1_000_000, GC: 0.45, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedtable.Build(g.Seq, 12, seedtable.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(g.Seq)))
}

// BenchmarkGACTSimTile measures the cycle-level array simulator on
// one 320×320 tile (functional fidelity costs ~Npe× the software
// kernel; the ratio is the price of bit-faithful PE emulation).
func BenchmarkGACTSimTile(b *testing.B) {
	ref, q := benchPair(b, 400, readsim.PacBio)
	arr, err := gactsim.New(64, 2048, align.GACTEval())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles float64
	for i := 0; i < b.N; i++ {
		_, cyc, err := arr.AlignTile(ref[:320], q[:320], false, 192)
		if err != nil {
			b.Fatal(err)
		}
		cycles = float64(cyc.Total())
	}
	b.ReportMetric(cycles, "sim_cycles/tile")
}

// BenchmarkDSOFTSim measures the NoC/bank simulation throughput.
func BenchmarkDSOFTSim(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 200_000, GC: 0.45, Seed: 78})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := seedtable.Build(g.Seq, 6, seedtable.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	filter, err := dsoft.New(tab, dsoft.Config{N: 1000, H: 24, BinSize: 128})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: readsim.ONT2D, MeanLen: 3000, Seed: 79})
	if err != nil {
		b.Fatal(err)
	}
	trace := filter.Trace(reads[0].Seq)
	b.ResetTimer()
	var upc float64
	for i := 0; i < b.N; i++ {
		res, err := dsoftsim.Simulate(trace, dsoftsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		upc = res.UpdatesPerCycle()
	}
	b.ReportMetric(upc, "updates/cycle")
}

// BenchmarkDarwinEstimator measures the hardware model itself (it
// must be negligible).
func BenchmarkDarwinEstimator(b *testing.B) {
	d := hw.NewDarwin()
	w := hw.Workload{SeedsPerRead: 1500, HitsPerSeed: 30, TilesPerRead: 120, TileT: 320, TileO: 128}
	for i := 0; i < b.N; i++ {
		d.Estimate(w)
	}
}

// BenchmarkIndexColdStart compares time-to-first-mapped-read for the
// two cold-start paths a darwin/darwind boot takes: parsing the
// reference FASTA and building the seed table, versus mapping a
// prebuilt .dwi index file (indexio.Open, which replaces both steps).
// The load sub-benchmark reports the measured speedup; the obs run
// report goes to BENCH_index.json (`make bench-index`) — the
// build-once/load-many trajectory point EXPERIMENTS.md records.
func BenchmarkIndexColdStart(b *testing.B) {
	g, err := genome.Generate(genome.Config{Length: 1_000_000, GC: 0.45, Seed: 85})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(12, 600, 24)
	recs := []dna.Record{{Name: "chr1", Seq: g.Seq}}
	dir := b.TempDir()
	refPath := filepath.Join(dir, "ref.fa")
	var fasta bytes.Buffer
	if err := dna.WriteFASTA(&fasta, recs); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(refPath, fasta.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "ref.fa.dwi")
	if _, err := indexio.WriteFile(path, recs, cfg, core.ShardSpec{}); err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: readsim.PacBio, MeanLen: 1000, Seed: 86})
	if err != nil {
		b.Fatal(err)
	}
	query := reads[0].Seq

	run := obs.NewRun("bench_index")
	var buildNs float64
	b.Run("build_from_fasta", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(refPath)
			if err != nil {
				b.Fatal(err)
			}
			parsed, err := dna.ReadFASTA(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			eng, _, err := core.Open(core.OpenConfig{Records: parsed, Core: cfg})
			if err != nil {
				b.Fatal(err)
			}
			if alns, _ := eng.(*core.Darwin).MapRead(query); len(alns) == 0 {
				b.Fatal("read did not map")
			}
		}
		buildNs = float64(time.Since(start).Nanoseconds()) / float64(b.N)
		b.ReportMetric(buildNs/1e6, "first_read_ms")
	})
	b.Run("mmap_load", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			l, err := indexio.Open(path, cfg, core.ShardSpec{})
			if err != nil {
				b.Fatal(err)
			}
			if alns, _ := l.Mapper.(*core.Darwin).MapRead(query); len(alns) == 0 {
				b.Fatal("read did not map")
			}
			l.File.Close()
		}
		loadNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		b.ReportMetric(loadNs/1e6, "first_read_ms")
		if buildNs > 0 && loadNs > 0 {
			b.ReportMetric(buildNs/loadNs, "cold_start_speedup")
		}
	})
	if err := run.Report().WriteJSON("BENCH_index.json"); err != nil {
		b.Fatal(err)
	}
}
