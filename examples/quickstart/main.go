// Quickstart: the smallest end-to-end Darwin run. Generates a toy
// genome, simulates a handful of noisy PacBio-like reads, maps them
// with D-SOFT + GACT, and prints the alignments — plus the paper's
// Figure 1/4 worked example showing a GACT tiled alignment matching
// optimal Smith-Waterman.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/gact"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- The paper's worked example (Figures 1 and 4) ---------------
	R := dna.NewSeq("GCGACTTT")
	Q := dna.NewSeq("GTCGTTT")
	sc := align.Figure1()
	opt, err := align.SmithWaterman(R, Q, &sc)
	if err != nil {
		return err
	}
	cfg := gact.Config{T: 4, O: 1, Scoring: sc}
	res, stats, err := gact.ExtendLeftOnly(R, Q, len(R), len(Q), &cfg)
	if err != nil {
		return err
	}
	fmt.Println("Paper Figure 1/4 example (ref GCGACTTT vs query GTCGTTT):")
	fmt.Printf("  optimal Smith-Waterman: score=%d cigar=%s\n", opt.Score, opt.Cigar)
	fmt.Printf("  GACT (T=4, O=1):        score=%d cigar=%s (%d tiles)\n\n", res.Score, res.Cigar, stats.Tiles)

	// --- A tiny mapping run ------------------------------------------
	g, err := genome.Generate(genome.Config{Length: 100_000, GC: 0.41, RepeatFraction: 0.2,
		RepeatFamilies: 4, RepeatUnitLen: 300, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("Synthetic genome: %d bp, GC %.2f\n", len(g.Seq), dna.GCContent(g.Seq))

	reads, err := readsim.SimulateN(g.Seq, 5, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 3000, Seed: 2,
	})
	if err != nil {
		return err
	}

	engine, err := core.New(g.Seq, core.DefaultConfig(11, 600, 20))
	if err != nil {
		return err
	}
	fmt.Printf("Indexed with k=11 in %s\n\n", engine.TableBuildTime)

	for i := range reads {
		r := &reads[i]
		alns, st := engine.MapRead(r.Seq)
		best := core.Best(alns)
		fmt.Printf("%s (truth: [%d,%d) strand %s, %d%% errors)\n",
			r.Name, r.RefStart, r.RefEnd, strand(r.Reverse),
			(r.Errors.Sub+r.Errors.Ins+r.Errors.Del)*100/r.TemplateLen())
		if best == nil {
			fmt.Println("  unmapped")
			continue
		}
		q := r.Seq
		if best.Reverse {
			q = dna.RevComp(q)
		}
		fmt.Printf("  mapped to [%d,%d) strand %s, score %d, identity %.1f%%\n",
			best.Result.RefStart, best.Result.RefEnd, strand(best.Reverse),
			best.Result.Score, best.Result.Identity(g.Seq, q)*100)
		fmt.Printf("  D-SOFT: %d seeds -> %d candidates; GACT: %d tiles, first-tile score %d\n",
			st.DSOFT.SeedsIssued, st.Candidates, st.Tiles, best.FirstTileScore)
	}
	return nil
}

func strand(rev bool) string {
	if rev {
		return "-"
	}
	return "+"
}
