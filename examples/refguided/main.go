// Reference-guided assembly example: the paper's headline workload
// (Table 4, top). Simulates a reads-vs-reference workload for all
// three read classes, maps with Darwin and with the class-appropriate
// baseline, evaluates sensitivity/precision against ground truth with
// the 50 bp criterion, and reports the modeled ASIC throughput and
// speedup per the paper's estimation methodology.
//
// Run with: go run ./examples/refguided
package main

import (
	"fmt"
	"log"

	"darwin/internal/assembly"
	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/genome"
	"darwin/internal/hw"
	"darwin/internal/readsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const genomeLen = 500_000
	const readLen = 4000
	const readsPerClass = 25

	g, err := genome.Generate(genome.Config{Length: genomeLen, GC: 0.41, RepeatFraction: 0.25,
		RepeatFamilies: 8, RepeatUnitLen: 300, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: 11})
	if err != nil {
		return err
	}
	fmt.Printf("Reference: synthetic %d bp genome (GRCh38 stand-in)\n\n", genomeLen)
	estimator := hw.NewDarwin()

	// Per-class D-SOFT settings, as in Table 4 (scaled to this genome).
	settings := map[string][3]int{
		"PacBio": {12, readLen / 8, 24},
		"ONT_2D": {11, readLen / 6, 25},
		"ONT_1D": {10, readLen / 3, 22},
	}

	for _, p := range readsim.Profiles {
		reads, err := readsim.SimulateN(g.Seq, readsPerClass, readsim.Config{
			Profile: p, MeanLen: readLen, LenSpread: 0.1, Seed: 12,
		})
		if err != nil {
			return err
		}
		s := settings[p.Name]
		engine, err := core.New(g.Seq, core.DefaultConfig(s[0], s[1], s[2]))
		if err != nil {
			return err
		}
		dm := assembly.NewDarwinMapper(engine)
		dRes := assembly.EvaluateRefGuided(dm, reads)

		var bRes assembly.RefGuidedResult
		if p.Name == "PacBio" {
			bw, err := baseline.NewBWAMemLike(g.Seq, baseline.DefaultBWAMemConfig())
			if err != nil {
				return err
			}
			bRes = assembly.EvaluateRefGuided(assembly.BWAMemMapper{B: bw}, reads)
		} else {
			gm, err := baseline.NewGraphMapLike(g.Seq, baseline.DefaultGraphMapConfig())
			if err != nil {
				return err
			}
			bRes = assembly.EvaluateRefGuided(assembly.GraphMapMapper{G: gm}, reads)
		}

		est := estimator.Estimate(dm.Workload())
		fmt.Printf("%s (%.0f%% error), D-SOFT (k=%d, N=%d, h=%d):\n", p.Name, p.Total()*100, s[0], s[1], s[2])
		fmt.Printf("  %-15s sensitivity %5.1f%%  precision %5.1f%%  %8.2f reads/s (measured)\n",
			bRes.Mapper, bRes.Confusion.Sensitivity()*100, bRes.Confusion.Precision()*100, bRes.ReadsPerSec)
		fmt.Printf("  %-15s sensitivity %5.1f%%  precision %5.1f%%  %8.2f reads/s (measured software)\n",
			"darwin", dRes.Confusion.Sensitivity()*100, dRes.Confusion.Precision()*100, dRes.ReadsPerSec)
		fmt.Printf("  darwin ASIC model: %.0f reads/s (bottleneck %s) => %.0f× vs %s\n\n",
			est.ReadsPerSec, est.Bottleneck, est.ReadsPerSec/bRes.ReadsPerSec, bRes.Mapper)
	}
	return nil
}
