// Variant-calling example: the personalized-medicine use case the
// paper's introduction motivates. A sample genome is derived from the
// reference with known SNPs and small indels, sequenced with noisy
// PacBio-profile reads, mapped back with the Darwin engine, and
// variants are called by pileup majority vote — then scored against
// the planted truth.
//
// Run with: go run ./examples/variants
package main

import (
	"fmt"
	"log"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
	"darwin/internal/varcall"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const genomeLen = 80_000
	g, err := genome.Generate(genome.Config{Length: genomeLen, GC: 0.41, Seed: 51})
	if err != nil {
		return err
	}
	sample, truth, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{
		SNPRate: 0.0015, SmallIndelRate: 0.0003, Seed: 52,
	})
	if err != nil {
		return err
	}
	reads, err := readsim.Simulate(sample, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 4000, Coverage: 15, Seed: 53,
	})
	if err != nil {
		return err
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	fmt.Printf("Reference %d bp; sample carries %d variants; %d reads at 15× (15%% error)\n\n",
		genomeLen, len(truth), len(reads))

	calls, err := varcall.Call(g.Seq, seqs, varcall.DefaultConfig(core.DefaultConfig(11, 700, 20)))
	if err != nil {
		return err
	}

	// Score SNP calls exactly; indels within ±5 bp.
	truthSNP := map[int]string{}
	var truthIndels []genome.Variant
	for _, v := range truth {
		if v.Kind == "snp" {
			truthSNP[v.RefPos] = ""
		} else {
			truthIndels = append(truthIndels, v)
		}
	}
	var tp, fp int
	for _, c := range calls {
		if c.Kind == varcall.SNP {
			if _, ok := truthSNP[c.Pos]; ok {
				tp++
			} else {
				fp++
			}
		}
	}
	fmt.Printf("Called %d variants (%d SNP calls: %d true, %d false; %d true SNPs planted)\n",
		len(calls), tp+fp, tp, fp, len(truthSNP))
	indelHit := 0
	for _, v := range truthIndels {
		for _, c := range calls {
			if c.Kind != varcall.SNP && c.Pos >= v.RefPos-5 && c.Pos <= v.RefPos+v.Len+5 {
				indelHit++
				break
			}
		}
	}
	fmt.Printf("Indels recovered: %d / %d\n\n", indelHit, len(truthIndels))

	fmt.Println("First calls:")
	for i, c := range calls {
		if i >= 8 {
			break
		}
		switch c.Kind {
		case varcall.SNP:
			fmt.Printf("  %6d  SNP  %s->%s  depth %d support %d\n", c.Pos, c.Ref, c.Alt, c.Depth, c.Support)
		case varcall.Ins:
			fmt.Printf("  %6d  INS  +%s  depth %d support %d\n", c.Pos, c.Alt, c.Depth, c.Support)
		case varcall.Del:
			fmt.Printf("  %6d  DEL  %s  depth %d support %d\n", c.Pos, c.Ref, c.Depth, c.Support)
		}
	}
	return nil
}
