// Whole-genome alignment example: the Section 11 extension. Aligns a
// diverged sample genome (SNPs, indels, and one large inversion)
// against its reference with D-SOFT seeding + single-tile GACT
// filtering + GACT extension, LASTZ-style, and prints the resulting
// alignment blocks — the inversion shows up as a reverse-strand block.
//
// Run with: go run ./examples/wga
package main

import (
	"fmt"
	"log"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/wga"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const genomeLen = 200_000
	g, err := genome.Generate(genome.Config{Length: genomeLen, GC: 0.41, Seed: 41})
	if err != nil {
		return err
	}
	// Derive a sample: point divergence plus one planted inversion.
	sample, vars, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{
		SNPRate: 0.03, SmallIndelRate: 0.003, Seed: 42,
	})
	if err != nil {
		return err
	}
	const invLo, invHi = 80_000, 110_000
	copy(sample[invLo:invHi], dna.RevComp(sample[invLo:invHi]))
	fmt.Printf("Reference %d bp; sample has %d small variants + one %d bp inversion at [%d,%d)\n\n",
		genomeLen, len(vars), invHi-invLo, invLo, invHi)

	blocks, stats, err := wga.Align(g.Seq, sample, wga.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("%d alignment blocks (%d candidates, %d passed h_tile, %d GACT tiles)\n\n",
		len(blocks), stats.Candidates, stats.PassedHTile, stats.Tiles)
	fmt.Println("  ref span             strand  length   score    identity")
	for i := range blocks {
		b := &blocks[i]
		q := sample
		if b.QueryRev {
			q = dna.RevComp(sample)
		}
		strand := "+"
		if b.QueryRev {
			strand = "-"
		}
		fmt.Printf("  [%7d, %7d)   %s    %7d  %7d    %.1f%%\n",
			b.Result.RefStart, b.Result.RefEnd, strand,
			b.Result.RefEnd-b.Result.RefStart, b.Result.Score,
			b.Result.Identity(g.Seq, q)*100)
	}
	fmt.Printf("\nReference coverage: %.1f%%\n", wga.Coverage(genomeLen, blocks)*100)
	fmt.Println("Reverse-strand blocks overlapping the planted inversion mark its discovery.")
	return nil
}
