// De novo assembly example: the overlap step Darwin accelerates
// (Table 4, bottom; C. elegans stand-in) carried through layout and a
// draft consensus via the olc package, so the full
// overlap-layout-consensus story of Section 2 is runnable.
//
// Run with: go run ./examples/denovo
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"darwin/internal/align"
	"darwin/internal/assembly"
	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/hw"
	"darwin/internal/olc"
	"darwin/internal/readsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const genomeLen = 100_000
	const readLen = 3000
	const coverage = 10

	g, err := genome.Generate(genome.Config{Length: genomeLen, GC: 0.36, RepeatFraction: 0.1,
		RepeatFamilies: 4, RepeatUnitLen: 300, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: 21})
	if err != nil {
		return err
	}
	reads, err := readsim.Simulate(g.Seq, readsim.Config{
		Profile: readsim.PacBio, MeanLen: readLen, LenSpread: 0.1, Coverage: coverage, Seed: 22,
	})
	if err != nil {
		return err
	}
	seqs := make([]dna.Seq, len(reads))
	readLens := make([]int, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
		readLens[i] = len(reads[i].Seq)
	}
	fmt.Printf("De novo workload: %d bp genome, %d reads at %d× coverage (PacBio profile)\n\n",
		genomeLen, len(reads), coverage)

	// --- Overlap step: Darwin vs the DALIGNER-class baseline ---------
	dal := baseline.NewDalignerLike(baseline.DefaultDalignerConfig())
	start := time.Now()
	dalOv, _ := dal.FindOverlaps(seqs)
	dalTime := time.Since(start)
	dalConf := assembly.EvaluateOverlaps(reads, assembly.FromDalignerOverlaps(dalOv), 1000, 0.8)

	ovCfg := core.DefaultConfig(12, readLen/3, 24)
	ovCfg.SeedStride = 3 // spread seeds across the whole read (see core.Config)
	ovp, err := core.NewOverlapper(seqs, ovCfg)
	if err != nil {
		return err
	}
	start = time.Now()
	overlaps, stats := ovp.FindOverlaps(500)
	darwinTime := time.Since(start)
	dConf := assembly.EvaluateOverlaps(reads, assembly.FromCoreOverlaps(overlaps), 1000, 0.8)

	fmt.Println("Overlap step:")
	fmt.Printf("  %-16s %4d overlaps  sensitivity %5.1f%%  precision %5.1f%%  %7.2fs\n",
		"daligner-like", len(dalOv), dalConf.Sensitivity()*100, dalConf.Precision()*100, dalTime.Seconds())
	fmt.Printf("  %-16s %4d overlaps  sensitivity %5.1f%%  precision %5.1f%%  %7.2fs (%.2fs table build)\n",
		"darwin", len(overlaps), dConf.Sensitivity()*100, dConf.Precision()*100,
		darwinTime.Seconds(), stats.TableBuildTime.Seconds())

	// ASIC estimate per the paper's method: software table build plus
	// the slower of modeled D-SOFT/GACT across all strand queries.
	queries := float64(2 * len(reads))
	w := hw.Workload{TileT: 320, TileO: 128}
	if stats.Map.DSOFT.SeedsIssued > 0 {
		w.SeedsPerRead = float64(stats.Map.DSOFT.SeedsIssued) / queries
		w.HitsPerSeed = float64(stats.Map.DSOFT.Hits) / float64(stats.Map.DSOFT.SeedsIssued)
		w.TilesPerRead = float64(stats.Map.Tiles) / queries
	}
	est := hw.NewDarwin().Estimate(w)
	hwSec := stats.TableBuildTime.Seconds() + queries/est.ReadsPerSec
	fmt.Printf("  %-16s modeled %7.3fs => %.0f× vs daligner-like\n\n",
		"darwin (ASIC)", hwSec, dalTime.Seconds()/hwSec)

	// --- Layout + consensus ------------------------------------------
	ctx := context.Background()
	layout, err := olc.BuildLayoutContext(ctx, readLens, overlaps)
	if err != nil {
		return err
	}
	st := olc.Summarize(layout)
	fmt.Printf("Layout: %s\n", st)
	contig := olc.Splice(seqs, layout.Contigs[0])
	errRate := func(s dna.Seq) (float64, error) {
		probe := s
		if len(probe) > 20_000 {
			probe = probe[:20_000]
		}
		d1, err := align.EditDistance(g.Seq, probe, align.EditInfix)
		if err != nil {
			return 0, err
		}
		d2, err := align.EditDistance(g.Seq, dna.RevComp(probe), align.EditInfix)
		if err != nil {
			return 0, err
		}
		return float64(min(d1, d2)) / float64(len(probe)), nil
	}
	draftErr, err := errRate(contig)
	if err != nil {
		return err
	}
	fmt.Printf("Largest draft contig: %d bp, error vs genome %.1f%% (raw-read accuracy)\n",
		len(contig), draftErr*100)

	// Consensus polishing (Section 2: "a consensus of reads corrects
	// the vast majority of read errors").
	polished := contig
	for round := 0; round < 2; round++ {
		polished, err = olc.PolishContext(ctx, polished, seqs, core.DefaultConfig(12, readLen/3, 24))
		if err != nil {
			return err
		}
	}
	polishedErr, err := errRate(polished)
	if err != nil {
		return err
	}
	fmt.Printf("After 2 consensus rounds: %d bp, error vs genome %.2f%%\n",
		len(polished), polishedErr*100)
	return nil
}
