# Developer workflow targets. `make check` is the gate perf and
# refactor PRs must keep green (vet + full test suite under the race
# detector); `make bench` regenerates the perf trajectory, including
# the BENCH_core.json run report written by BenchmarkCorePipeline.

GO ?= go

.PHONY: build test check race vet test-allocs bench bench-core bench-kernel bench-shard bench-traced bench-index benchdiff benchdiff-traced serve-smoke chaos-smoke index-smoke cluster-smoke assembly-smoke metrics-lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The allocation pins are built with //go:build !race (the race
# detector changes allocation behaviour), so check runs them in a
# separate non-race pass.
test-allocs:
	$(GO) test -run 'ZeroSteadyStateAllocs' ./internal/align/

check: vet race test-allocs serve-smoke chaos-smoke index-smoke cluster-smoke assembly-smoke metrics-lint

# End-to-end serving check: darwind on a synthetic genome, load from
# darwin-client, non-empty SAM back, clean drain on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# Resilience check: darwind under injected flush errors, per-read
# panics, and stream hiccups must return only well-formed responses,
# open the per-source circuit breaker within its threshold, refuse
# -faults without DARWIN_ALLOW_FAULTS=1, and drain with goroutines
# back at the pre-serve baseline.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Persistent index roundtrip: darwin-index build/inspect/verify, SAM
# bit-identity across FASTA build / explicit -index / discovered
# sidecar, and corruption detection + graceful fallback.
index-smoke:
	./scripts/index_smoke.sh

# Distributed scatter-gather check: darwin-router over two darwind
# cluster workers booted from one shared .dwi must produce SAM
# byte-identical to the monolithic engine, survive a SIGSTOPped
# replica via hedged requests and a SIGKILLed one via failover, and
# drain cleanly.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Assembly job API durability check: submit an assemble job, SIGTERM
# darwind mid-overlap after a checkpoint lands, restart over the same
# -jobs-dir, and require the job to resume from its checkpoint and
# complete (resumed + resume_read in status, jobs/* metrics lint-clean,
# darwin-client -jobs-target end-to-end).
assembly-smoke:
	./scripts/assembly_smoke.sh

# Observability exposition check: a live darwind's /metrics must be
# valid OpenMetrics with no duplicate or undeclared families, and
# /v1/stats must serve the rolling SLO windows.
metrics-lint:
	./scripts/metrics_lint.sh

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Just the core-pipeline benchmark and its machine-readable report.
bench-core:
	$(GO) test -bench=BenchmarkCorePipeline -run '^$$' .
	@echo "report: BENCH_core.json"

# The kernel benchmarks: single tile (auto and forced-bitvector
# tiers), D-SOFT query, and end-to-end MapRead, whose run writes the
# BENCH_kernel.json report that benchdiff compares against a recorded
# baseline.
bench-kernel:
	$(GO) test -bench='BenchmarkAlignTile$$|BenchmarkAlignTileBitvector$$|BenchmarkGACTTile$$|BenchmarkDSOFTQuery$$|BenchmarkMapRead$$' -benchmem -run '^$$' .
	@echo "report: BENCH_kernel.json"

# The sharded scatter-gather engine under a ¼-index residency budget
# (the bounded-memory worst case: every batch rebuilds evicted shards).
# Writes the BENCH_shard.json run report; diff two runs with
# ./scripts/benchdiff.sh BENCH_shard_old.json BENCH_shard.json.
bench-shard:
	$(GO) test -bench='BenchmarkShardMapAll$$' -benchmem -run '^$$' .
	@echo "report: BENCH_shard.json"

# MapRead under a live request span — the tracing-overhead guard's
# traced half. Writes BENCH_kernel_traced.json.
bench-traced:
	$(GO) test -bench='BenchmarkMapReadTraced$$' -benchmem -run '^$$' .
	@echo "report: BENCH_kernel_traced.json"

# Cold-start comparison: time-to-first-mapped-read building the index
# from FASTA vs mapping a prebuilt .dwi file. Writes BENCH_index.json
# with the measured speedup (see EXPERIMENTS.md).
bench-index:
	$(GO) test -bench='BenchmarkIndexColdStart' -benchmem -run '^$$' .
	@echo "report: BENCH_index.json"

# Compare the committed pre-kernel baseline against the current run;
# exits non-zero on a >10% throughput regression.
benchdiff:
	./scripts/benchdiff.sh BENCH_kernel_before.json BENCH_kernel.json

# Tracing-overhead gate: traced MapRead must stay within 3% of the
# untraced kernel run. Regenerate both sides on the same machine
# (`make bench-kernel bench-traced`) before judging a diff.
benchdiff-traced:
	./scripts/benchdiff.sh -threshold 0.03 BENCH_kernel.json BENCH_kernel_traced.json

clean:
	rm -f BENCH_core.json
