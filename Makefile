# Developer workflow targets. `make check` is the gate perf and
# refactor PRs must keep green (vet + full test suite under the race
# detector); `make bench` regenerates the perf trajectory, including
# the BENCH_core.json run report written by BenchmarkCorePipeline.

GO ?= go

.PHONY: build test check race vet bench bench-core serve-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race serve-smoke

# End-to-end serving check: darwind on a synthetic genome, load from
# darwin-client, non-empty SAM back, clean drain on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Just the core-pipeline benchmark and its machine-readable report.
bench-core:
	$(GO) test -bench=BenchmarkCorePipeline -run '^$$' .
	@echo "report: BENCH_core.json"

clean:
	rm -f BENCH_core.json
