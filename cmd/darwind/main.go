// Command darwind is the long-running alignment service: it loads the
// reference index once (the cost the paper's Table 3 amortizes away),
// keeps it resident in an LRU cache, and maps reads arriving over
// HTTP/JSON through a micro-batcher with admission control and
// graceful drain.
//
// Usage:
//
//	darwind -addr :8844 -ref ref.fa -k 12 -n 750 -h 24
//
// Endpoints:
//
//	POST /v1/map     {"reads":[{"name":"r1","seq":"ACGT..."}]} → NDJSON
//	                 (?format=sam streams SAM text instead)
//	GET  /healthz    liveness (200 while the process runs)
//	GET  /readyz     readiness (200 once the default index is warm)
//	GET  /v1/indexes resident index metadata
//
// SIGTERM/SIGINT starts a graceful drain: /readyz flips to 503, new
// requests are rejected, in-flight batches flush, and the final
// darwin-run-report/v1 is written if -report was given.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"darwin/internal/align"
	"darwin/internal/cluster"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/indexio"
	"darwin/internal/jobs"
	"darwin/internal/obs"
	"darwin/internal/server"
	"darwin/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwind:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8844", "listen address (use :0 for an ephemeral port)")
	refPath := flag.String("ref", "", "default reference FASTA, indexed at startup (required)")
	k := flag.Int("k", 12, "D-SOFT seed size k")
	n := flag.Int("n", 750, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 24, "D-SOFT base-count threshold h")
	hTile := flag.Int("htile", 90, "first GACT tile score threshold (0 disables)")
	tileT := flag.Int("T", 320, "GACT tile size T")
	tileO := flag.Int("O", 128, "GACT tile overlap O")
	tileKernel := flag.String("tile-kernel", "auto", "tile DP kernel tier: auto (bitvector fast path with LUT fallback), bitvector, or lut")
	cacheSize := flag.Int("cache", 4, "max resident indexes (LRU)")
	shards := flag.Int("shards", 0, "split each reference index into this many shards (0 = monolithic)")
	shardOverlap := flag.Int("shard-overlap", 0, "shard overlap margin in bases (0 = exactness minimum)")
	shardMem := flag.String("shard-mem", "", "resident shard seed-table budget, e.g. 512M (empty = unbounded)")
	indexPath := flag.String("index", "", "cold-start the default reference from this prebuilt .dwi index (darwin-index build); load failure is fatal")
	indexWrite := flag.String("index-write", "", "build the default index, write it to this .dwi path, then serve from it")
	noSidecar := flag.Bool("no-sidecar", false, "do not auto-load <ref>.dwi sidecar indexes next to reference FASTAs")
	allowRefLoad := flag.Bool("allow-ref-load", false, "let requests name reference FASTA paths to load on demand")
	batchReads := flag.Int("batch-reads", 64, "flush a micro-batch at this many reads")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max time a partial batch waits for company")
	queueBound := flag.Int("queue", 256, "admission queue bound (overflow → 429)")
	executors := flag.Int("executors", 0, "concurrent batch executors (0 = NumCPU)")
	batchWorkers := flag.Int("batch-workers", 1, "mapping workers within one batch")
	reqTimeout := flag.Duration("req-timeout", 60*time.Second, "per-request deadline cap")
	maxReads := flag.Int("max-reads", 1024, "max reads per request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to flush in-flight work on shutdown")
	readDeadline := flag.Duration("read-deadline", 0, "per-read mapping deadline within a batch (0 = none)")
	indexBudget := flag.Float64("index-budget", 0.5, "fraction of a request's deadline an on-demand index load may consume")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive index-build failures that open a source's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects before admitting a probe build")
	shedWatermark := flag.Float64("shed-watermark", 0.75, "queue-depth fraction that triggers batch-size shedding under sustained load")
	leakCheck := flag.Bool("leak-check", false, "after drain, verify goroutines returned to the pre-serve baseline (exit 1 on leak)")
	workerName := flag.String("worker-name", "", "cluster-worker mode: this process's name in the cluster map (requires -cluster-workers and a sharded engine)")
	clusterWorkers := flag.String("cluster-workers", "", "cluster roster as name=url,name=url — must match darwin-router's -workers exactly")
	clusterReplication := flag.Int("cluster-replication", 2, "replicas per shard in the cluster map — must match darwin-router")
	scatterConcurrency := flag.Int("scatter-concurrency", 4, "max concurrent cluster scatter sub-requests (overflow → 429)")
	jobsDir := flag.String("jobs-dir", "", "enable the assembly job API, persisting jobs under this directory")
	jobsConcurrency := flag.Int("jobs-concurrency", 1, "max simultaneously executing assembly jobs")
	jobsCkptEvery := flag.Int("jobs-checkpoint-every", 16, "overlap-stage checkpoint cadence in reads")
	faultSpec := flag.String("faults", "", "fault-injection spec (requires DARWIN_ALLOW_FAULTS=1); see internal/faults")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	slowCapture := flag.Int("slow-capture", 16, "slowest /v1/map requests to keep span trees for (/debug/slow; 0 disables)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	log, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *refPath == "" {
		return fmt.Errorf("-ref is required")
	}
	if spec, err := faults.Setup(*faultSpec); err != nil {
		return err
	} else if spec != "" {
		log.Warn("fault injection active: " + spec)
	}
	session, err := obsFlags.Start("darwind")
	if err != nil {
		return err
	}
	defer session.Close()

	cfg := core.DefaultConfig(*k, *n, *h)
	cfg.HTile = *hTile
	cfg.GACT.T = *tileT
	cfg.GACT.O = *tileO
	kernelMode, err := align.ParseKernelMode(*tileKernel)
	if err != nil {
		return err
	}
	cfg.GACT.Kernel = kernelMode
	scfg := shard.Config{Shards: *shards, Overlap: *shardOverlap}
	if *shardMem != "" {
		mem, err := shard.ParseBytes(*shardMem)
		if err != nil {
			return err
		}
		scfg.MaxResidentBytes = mem
	}
	if *indexPath != "" && *indexWrite != "" {
		return fmt.Errorf("-index and -index-write are mutually exclusive")
	}
	defaultIndex := *indexPath
	if *indexWrite != "" {
		recs, err := readSeqFile(*refPath)
		if err != nil {
			return err
		}
		spec := core.ShardSpec{
			Shards:           scfg.Shards,
			ShardSize:        scfg.ShardSize,
			Overlap:          scfg.Overlap,
			MaxResidentBytes: scfg.MaxResidentBytes,
		}
		writeStart := time.Now()
		if _, err := indexio.WriteFile(*indexWrite, recs, cfg, spec); err != nil {
			return fmt.Errorf("writing index %s: %w", *indexWrite, err)
		}
		log.Info("index written", "path", *indexWrite, "took", time.Since(writeStart).Round(time.Millisecond))
		defaultIndex = *indexWrite
	}

	var workerCfg server.WorkerConfig
	if *workerName != "" {
		ws, err := cluster.ParseWorkers(*clusterWorkers)
		if err != nil {
			return fmt.Errorf("-cluster-workers: %w", err)
		}
		cmap, err := cluster.NewMap(ws, *clusterReplication)
		if err != nil {
			return err
		}
		name := *workerName
		workerCfg = server.WorkerConfig{
			Enabled:            true,
			Name:               name,
			ScatterConcurrency: *scatterConcurrency,
			// Ownership is derived from the actual index geometry at
			// warm time: -shard-mem decides the shard count during the
			// build, so it cannot be hashed before the index exists.
			AssignShards: func(shards int) ([]int, error) { return cmap.OwnedBy(name, shards) },
		}
	} else if *clusterWorkers != "" {
		return fmt.Errorf("-cluster-workers requires -worker-name")
	}

	var jobMgr *jobs.Manager
	if *jobsDir != "" {
		jobMgr, err = jobs.New(jobs.Config{
			Dir:             *jobsDir,
			Concurrency:     *jobsConcurrency,
			CheckpointEvery: *jobsCkptEvery,
			Logger:          log,
		})
		if err != nil {
			return fmt.Errorf("jobs manager: %w", err)
		}
	}

	srv := server.New(server.Config{
		DefaultRef:     *refPath,
		DefaultIndex:   defaultIndex,
		DisableSidecar: *noSidecar,
		Core:           cfg,
		Shard:          scfg,
		CacheSize:      *cacheSize,
		Batch: server.BatcherConfig{
			MaxBatchReads:   *batchReads,
			MaxWait:         *batchWait,
			QueueBound:      *queueBound,
			Executors:       *executors,
			WorkersPerBatch: *batchWorkers,
			ReadDeadline:    *readDeadline,
			ShedHighWater:   *shedWatermark,
		},
		RequestTimeout:     *reqTimeout,
		MaxReadsPerRequest: *maxReads,
		AllowRefLoad:       *allowRefLoad,
		IndexBudgetFrac:    *indexBudget,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Logger:             log,
		SlowCapture:        *slowCapture,
		Worker:             workerCfg,
		Jobs:               jobMgr,
	})

	// The leak-check baseline is taken after server assembly (batcher
	// executors are long-lived by design) but before warm/serve, so it
	// measures exactly the goroutines the drain is supposed to reclaim.
	baselineGoroutines := runtime.NumGoroutine()

	warmStart := time.Now()
	if err := srv.Warm(context.Background()); err != nil {
		return fmt.Errorf("warming default index: %w", err)
	}
	log.Info("default index warm", "k", *k, "took", time.Since(warmStart).Round(time.Millisecond))

	if jobMgr != nil {
		// Recovery after warm: resumed jobs start executing immediately,
		// and their overlap passes should not race the index build for
		// CPU during startup.
		restarted, err := jobMgr.Recover()
		if err != nil {
			return fmt.Errorf("job recovery: %w", err)
		}
		if restarted > 0 {
			log.Info("jobs recovered from previous process", "restarted", restarted)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	// The message keeps the full URL inline (not an attr): the smoke
	// scripts and operators scrape the bound address out of this line.
	endpoints := "POST /v1/map, /healthz, /readyz, /metrics, /v1/stats"
	if jobMgr != nil {
		endpoints += ", /v1/jobs"
	}
	log.Info(fmt.Sprintf("serving on http://%s/ (%s)", ln.Addr(), endpoints))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Info("signal received, draining (stop accepting, flush in-flight)", "signal", sig.String())
	}

	// Drain sequence: stop admitting (readyz → 503, map → 503), let
	// in-flight handlers finish via HTTP shutdown, then flush any
	// batches still pending in the micro-batcher.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("batcher drain: %w", err)
	}
	if jobMgr != nil {
		// Job drain cancels running pipelines; each saves a final
		// checkpoint at its cancellation boundary, so the next process
		// resumes instead of restarting.
		if err := jobMgr.Drain(ctx); err != nil {
			return fmt.Errorf("jobs drain: %w", err)
		}
	}
	log.Info("drain complete, all in-flight work flushed")
	dumpSlowCaptures(log, srv.SlowCaptures())

	if *leakCheck {
		if leaked := checkGoroutineLeak(baselineGoroutines); leaked > 0 {
			return fmt.Errorf("leak check: %d goroutines above pre-serve baseline %d after drain", leaked, baselineGoroutines)
		}
		log.Info("leak check passed, goroutines back to baseline")
	}
	return nil
}

// readSeqFile parses a reference FASTA/FASTQ for -index-write.
func readSeqFile(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return dna.ReadFASTQ(f)
	}
	return dna.ReadFASTA(f)
}

// newLogger builds the process logger on w. Text is the operator
// default; json feeds log pipelines. Either way each /v1/map access
// line carries its request_id, so grep by ID works across formats.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// dumpSlowCaptures flushes the slow-request ring into the log on
// drain, one line per capture with its full span tree, so the
// slowest requests of a finished process survive it — /debug/slow
// dies with the listener.
func dumpSlowCaptures(log *slog.Logger, caps []obs.SlowCapture) {
	if len(caps) == 0 {
		return
	}
	log.Info("slow-request captures at drain", "count", len(caps))
	for _, c := range caps {
		tree, err := json.Marshal(c.Span)
		if err != nil {
			continue
		}
		log.Info("slow request",
			"request_id", c.RequestID,
			"duration_us", c.DurationUS,
			"span", string(tree))
	}
}

// checkGoroutineLeak waits (up to ~3s) for the goroutine count to
// settle back to the pre-serve baseline. A small tolerance absorbs
// runtime helpers (signal handling, finalizers) that come and go
// outside our control; anything beyond it is a real leak — an executor
// or watchdog the drain failed to reclaim. Returns the excess count,
// or 0 if the process settled.
func checkGoroutineLeak(baseline int) int {
	const tolerance = 3
	deadline := time.Now().Add(3 * time.Second)
	for {
		excess := runtime.NumGoroutine() - baseline - tolerance
		if excess <= 0 {
			return 0
		}
		if time.Now().After(deadline) {
			return excess
		}
		time.Sleep(50 * time.Millisecond)
	}
}
