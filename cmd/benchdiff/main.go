// Command benchdiff compares two benchmark run reports (BENCH_*.json,
// written by the obs report writer) and flags throughput regressions.
//
// Raw counters are not comparable across runs — the bench harness
// scales iteration counts to the machine — so the comparison is over
// *rates*: work counters divided by the stage time that produced them.
// A metric that drops by more than the threshold (default 10%) is a
// regression and makes the command exit non-zero, which is what lets
// `make bench-kernel` + scripts/benchdiff.sh act as a perf gate.
//
// Usage:
//
//	benchdiff [-threshold 0.10] OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"

	"darwin/internal/obs"
)

// metric is one derived rate: numerator counter over a denominator
// (a stage timer's seconds, or wall time when timer is empty).
type metric struct {
	name    string
	counter string
	timer   string // "" means wall seconds
}

// metrics are the rates the kernel benchmarks exercise; a report
// missing a metric's inputs (counter absent or denominator zero)
// simply skips it, so the tool works on any run report.
var metrics = []metric{
	{"reads/s", "core/reads", ""},
	{"cells/s", "gact/cells", "stage/align"},
	{"tiles/s", "gact/tiles", "stage/align"},
	{"extensions/s", "gact/extensions", "stage/align"},
	{"seeds/s", "dsoft/seeds_issued", "stage/filter"},
	// Kernel-tier split (absent from pre-tier baselines → skipped):
	// tile/cell throughput through the bitvector fast path vs the LUT
	// fills (fallbacks included in the latter).
	{"bv_tiles/s", "gact/tile_bitvector", "stage/align"},
	{"bv_cells/s", "gact/cells_bitvector", "stage/align"},
	{"lut_cells/s", "gact/cells_lut", "stage/align"},
}

func rate(rep *obs.Report, m metric) (float64, bool) {
	n, ok := rep.Counters[m.counter]
	if !ok || n == 0 {
		return 0, false
	}
	secs := rep.WallSeconds
	if m.timer != "" {
		t, ok := rep.Timers[m.timer]
		if !ok {
			return 0, false
		}
		secs = t.Seconds
	}
	if secs <= 0 {
		return 0, false
	}
	return float64(n) / secs, true
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative throughput drop that counts as a regression")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold 0.10] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := obs.ReadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := obs.ReadReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%-14s %14s %14s %9s\n", "metric", "old", "new", "delta")
	regressions := 0
	compared := 0
	for _, m := range metrics {
		oldV, okOld := rate(oldRep, m)
		newV, okNew := rate(newRep, m)
		if !okOld || !okNew {
			continue
		}
		compared++
		delta := (newV - oldV) / oldV
		mark := ""
		if delta < -*threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-14s %14.0f %14.0f %+8.1f%%%s\n", m.name, oldV, newV, delta*100, mark)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable metrics between the two reports")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed more than %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}
