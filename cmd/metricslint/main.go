// Command metricslint validates an OpenMetrics exposition — the text
// darwind serves on /metrics — against the subset of the format the
// repo's exporter promises: every sample belongs to a declared
// family, no family is declared twice, counters end in _total,
// histogram buckets are cumulative with +Inf equal to _count, and the
// exposition ends with # EOF. CI runs it against a live darwind (see
// scripts/metrics_lint.sh) so a metric registered with a name the
// exporter mangles, or exported twice, fails the build rather than a
// fleet scrape.
//
// Usage:
//
//	metricslint [-url http://127.0.0.1:8844/metrics]   (default: stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"darwin/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "", "scrape this /metrics URL instead of reading stdin")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *url != "" {
		resp, err := http.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", *url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" && ct != "application/openmetrics-text; version=1.0.0; charset=utf-8" {
			return fmt.Errorf("unexpected Content-Type %q", ct)
		}
		r = resp.Body
	}
	if err := obs.LintOpenMetrics(r); err != nil {
		return err
	}
	fmt.Println("metricslint: ok")
	return nil
}
