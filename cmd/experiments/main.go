// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Usage:
//
//	experiments -run all
//	experiments -run table4 -genome-len 2000000 -reads 100
package main

import (
	"flag"
	"fmt"
	"os"

	"darwin/internal/experiments"
	"darwin/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("run", "all", "experiment id (table1..table4, fig9a..fig13) or 'all' or 'list'")
	genomeLen := flag.Int("genome-len", 0, "synthetic genome length (0 = default)")
	reads := flag.Int("reads", 0, "reads per class (0 = default)")
	readLen := flag.Int("read-len", 0, "mean read length (0 = default)")
	seed := flag.Int64("seed", 42, "random seed")
	quick := flag.Bool("quick", false, "shrink workloads")
	values := flag.Bool("values", false, "also print machine-readable headline values")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	session, err := obsFlags.Start("experiments")
	if err != nil {
		return err
	}
	defer session.Close()

	o := experiments.Options{
		GenomeLen: *genomeLen,
		Reads:     *reads,
		ReadLen:   *readLen,
		Seed:      *seed,
		Quick:     *quick,
	}

	if *id == "list" {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Doc)
		}
		return nil
	}
	if *id == "all" {
		return experiments.RunAll(os.Stdout, o)
	}
	res, err := experiments.Run(*id, o)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s (%.1fs)\n%s\n", res.ID, res.Elapsed.Seconds(), res.Report)
	if *values {
		fmt.Print(experiments.FormatValues(res))
	}
	return nil
}
