// Command darwin-wga aligns two whole genomes (Section 11's extension:
// LASTZ-style seeding with D-SOFT, single-tile GACT filtering, GACT
// extension) and writes the alignment blocks as TSV. Reverse-strand
// blocks indicate inversions.
//
// Usage:
//
//	darwin-wga -ref a.fa -query b.fa > blocks.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/wga"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga:", err)
		os.Exit(1)
	}
}

func run() error {
	refPath := flag.String("ref", "", "reference genome FASTA (required)")
	queryPath := flag.String("query", "", "query genome FASTA (required)")
	k := flag.Int("k", 12, "seed size")
	strideF := flag.Int("stride", 8, "query seed stride")
	h := flag.Int("h", 24, "D-SOFT threshold")
	minBlock := flag.Int("min-block", 300, "minimum block length")
	out := flag.String("out", "", "output TSV path (default stdout)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *refPath == "" || *queryPath == "" {
		return fmt.Errorf("-ref and -query are required")
	}
	session, err := obsFlags.Start("darwin-wga")
	if err != nil {
		return err
	}
	defer session.Close()

	ref, err := firstSeq(*refPath)
	if err != nil {
		return err
	}
	query, err := firstSeq(*queryPath)
	if err != nil {
		return err
	}

	cfg := wga.DefaultConfig()
	cfg.SeedK = *k
	cfg.Stride = *strideF
	cfg.Threshold = *h
	cfg.MinBlockLen = *minBlock
	blocks, stats, err := wga.Align(ref, query, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "darwin-wga: %d blocks (%d candidates, %d passed h_tile, %d GACT tiles); ref coverage %.1f%%\n",
		len(blocks), stats.Candidates, stats.PassedHTile, stats.Tiles, wga.Coverage(len(ref), blocks)*100)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fmt.Fprintln(w, "ref_start\tref_end\tstrand\tquery_start\tquery_end\tscore\tidentity")
	for i := range blocks {
		b := &blocks[i]
		strand := "+"
		q := query
		if b.QueryRev {
			strand = "-"
			q = dna.RevComp(query)
		}
		fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%d\t%.4f\n",
			b.Result.RefStart, b.Result.RefEnd, strand,
			b.Result.QueryStart, b.Result.QueryEnd,
			b.Result.Score, b.Result.Identity(ref, q))
	}
	return w.Flush()
}

func firstSeq(path string) (dna.Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := dna.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no sequences in %s", path)
	}
	return recs[0].Seq, nil
}
