// Command darwin-index builds, inspects, and verifies persistent
// Darwin index files (internal/indexfile, extension .dwi). A built
// index carries the seed tables, mask, and reference bytes in their
// exact in-memory layout, so darwin and darwind cold-start by mapping
// the file instead of re-running the index build the paper's Table 3
// charges per run.
//
// Usage:
//
//	darwin-index build -ref ref.fa [-out ref.fa.dwi] [-k 12 -n 750 -h 24] [-shards 4]
//	darwin-index inspect ref.fa.dwi
//	darwin-index verify ref.fa.dwi
//
// build writes atomically (temp file + rename) next to the reference
// by default, where darwin/darwind auto-discover it as a sidecar.
// inspect prints the header as JSON without checksumming payloads;
// verify re-checks every section CRC and exits non-zero with the
// structured error code on any corruption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/indexfile"
	"darwin/internal/indexio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "darwin-index: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		code := "error"
		if c := indexfile.ErrCode(err); c != "" {
			code = c
		}
		fmt.Fprintf(os.Stderr, "darwin-index: [%s] %v\n", code, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  darwin-index build -ref ref.fa [-out ref.fa.dwi] [flags]   build an index file
  darwin-index inspect <file.dwi>                            print the header as JSON
  darwin-index verify <file.dwi>                             re-check all section checksums`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	refPath := fs.String("ref", "", "reference FASTA/FASTQ (required)")
	out := fs.String("out", "", "output index path (default: <ref>.dwi sidecar)")
	k := fs.Int("k", 12, "D-SOFT seed size k")
	n := fs.Int("n", 750, "D-SOFT seeds per query strand N")
	h := fs.Int("h", 24, "D-SOFT base-count threshold h")
	shards := fs.Int("shards", 0, "split the index into this many shards (0 = monolithic)")
	shardOverlap := fs.Int("shard-overlap", 0, "shard overlap margin in bases (0 = exactness minimum)")
	fs.Parse(args)
	if *refPath == "" {
		return fmt.Errorf("build: -ref is required")
	}
	outPath := *out
	if outPath == "" {
		outPath = indexfile.SidecarPath(*refPath)
	}

	recs, err := readSeqFile(*refPath)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no sequences in %s", *refPath)
	}
	cfg := core.DefaultConfig(*k, *n, *h)
	spec := core.ShardSpec{Shards: *shards, Overlap: *shardOverlap}

	start := time.Now()
	idx, err := indexio.WriteFile(outPath, recs, cfg, spec)
	if err != nil {
		return err
	}
	built := time.Since(start)

	info, err := indexfile.Inspect(outPath)
	if err != nil {
		return fmt.Errorf("re-reading written index: %w", err)
	}
	layout := "monolithic"
	if idx.ShardCount > 0 {
		layout = fmt.Sprintf("%d shards of %d bp (+%d bp overlap)", idx.ShardCount, idx.ShardSize, idx.Overlap)
	}
	fmt.Fprintf(os.Stderr, "darwin-index: wrote %s: %d sequences, %d bp, k=%d, %s, %d sections, %d bytes, fingerprint %016x (%s)\n",
		outPath, len(idx.Seqs), len(idx.Ref), idx.Params.SeedK, layout,
		len(info.Sections), info.FileSize, info.Fingerprint, built.Round(time.Millisecond))
	return nil
}

func runInspect(args []string) error {
	path, err := onePath("inspect", args)
	if err != nil {
		return err
	}
	info, err := indexfile.Inspect(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

func runVerify(args []string) error {
	path, err := onePath("verify", args)
	if err != nil {
		return err
	}
	start := time.Now()
	info, err := indexfile.Verify(path)
	if err != nil {
		return err
	}
	fmt.Printf("darwin-index: %s ok: %d sections verified, %d bytes, fingerprint %016x (%s)\n",
		path, len(info.Sections), info.FileSize, info.Fingerprint, time.Since(start).Round(time.Millisecond))
	return nil
}

func onePath(cmd string, args []string) (string, error) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		return "", fmt.Errorf("%s: exactly one index file path expected", cmd)
	}
	return args[0], nil
}

func readSeqFile(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return dna.ReadFASTQ(f)
	}
	return dna.ReadFASTA(f)
}
