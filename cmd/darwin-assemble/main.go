// Command darwin-assemble runs the full de novo
// overlap-layout-consensus pipeline: Darwin's overlap step (D-SOFT +
// GACT over the concatenated read set), greedy layout, read splicing,
// and iterative majority-vote polishing. Contigs are written as FASTA.
//
// Usage:
//
//	darwin-assemble -reads reads.fq -out contigs.fa
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/olc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-assemble:", err)
		os.Exit(1)
	}
}

func run() error {
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ (required)")
	k := flag.Int("k", 12, "D-SOFT seed size k")
	n := flag.Int("n", 1300, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 24, "D-SOFT base-count threshold h")
	stride := flag.Int("stride", 4, "D-SOFT seed stride (spread N seeds across the whole read)")
	minOverlap := flag.Int("min-overlap", 1000, "minimum overlap length")
	polishRounds := flag.Int("polish", 2, "consensus polishing rounds (0 disables)")
	minContig := flag.Int("min-contig", 0, "discard contigs shorter than this")
	reorder := flag.String("reorder", "off", "overlap-graph read reordering before layout: off, rcm, farthest")
	out := flag.String("out", "", "output FASTA path (default stdout)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *readsPath == "" {
		return fmt.Errorf("-reads is required")
	}
	session, err := obsFlags.Start("darwin-assemble")
	if err != nil {
		return err
	}
	defer session.Close()

	f, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	var recs []dna.Record
	if strings.HasSuffix(*readsPath, ".fq") || strings.HasSuffix(*readsPath, ".fastq") {
		recs, err = dna.ReadFASTQ(f)
	} else {
		recs, err = dna.ReadFASTA(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	seqs := make([]dna.Seq, len(recs))
	for i := range recs {
		seqs[i] = recs[i].Seq
	}
	mode, err := olc.ParseReorderMode(*reorder)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(*k, *n, *h)
	cfg.SeedStride = *stride
	// SIGTERM/SIGINT cancels between pipeline steps.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	start := time.Now()
	asm, err := olc.Assemble(ctx, seqs,
		olc.WithConfig(cfg),
		olc.WithMinOverlap(*minOverlap),
		olc.WithPolishRounds(*polishRounds),
		olc.WithMinContig(*minContig),
		olc.WithReorder(mode))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "darwin-assemble: overlap step %s (%d overlaps, table build %s)\n",
		time.Since(start).Round(time.Millisecond), len(asm.Overlaps), asm.OverlapStats.TableBuildTime.Round(time.Millisecond))
	if r := asm.Reorder; r != nil {
		fmt.Fprintf(os.Stderr, "darwin-assemble: reorder %s: bandwidth max %d -> %d, mean %.1f -> %.1f (%d edges)\n",
			r.Mode, r.MaxBefore, r.MaxAfter, r.MeanBefore, r.MeanAfter, r.Edges)
	}
	fmt.Fprintf(os.Stderr, "darwin-assemble: layout %s\n", asm.Stats)
	outRecs := asm.Contigs

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := dna.WriteFASTA(w, outRecs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "darwin-assemble: wrote %d contigs\n", len(outRecs))
	return nil
}
