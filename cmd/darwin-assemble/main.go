// Command darwin-assemble runs the full de novo
// overlap-layout-consensus pipeline: Darwin's overlap step (D-SOFT +
// GACT over the concatenated read set), greedy layout, read splicing,
// and iterative majority-vote polishing. Contigs are written as FASTA.
//
// Usage:
//
//	darwin-assemble -reads reads.fq -out contigs.fa
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/olc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-assemble:", err)
		os.Exit(1)
	}
}

func run() error {
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ (required)")
	k := flag.Int("k", 12, "D-SOFT seed size k")
	n := flag.Int("n", 1300, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 24, "D-SOFT base-count threshold h")
	stride := flag.Int("stride", 4, "D-SOFT seed stride (spread N seeds across the whole read)")
	minOverlap := flag.Int("min-overlap", 1000, "minimum overlap length")
	polishRounds := flag.Int("polish", 2, "consensus polishing rounds (0 disables)")
	minContig := flag.Int("min-contig", 0, "discard contigs shorter than this")
	out := flag.String("out", "", "output FASTA path (default stdout)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *readsPath == "" {
		return fmt.Errorf("-reads is required")
	}
	session, err := obsFlags.Start("darwin-assemble")
	if err != nil {
		return err
	}
	defer session.Close()

	f, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	var recs []dna.Record
	if strings.HasSuffix(*readsPath, ".fq") || strings.HasSuffix(*readsPath, ".fastq") {
		recs, err = dna.ReadFASTQ(f)
	} else {
		recs, err = dna.ReadFASTA(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	seqs := make([]dna.Seq, len(recs))
	readLens := make([]int, len(recs))
	for i := range recs {
		seqs[i] = recs[i].Seq
		readLens[i] = len(recs[i].Seq)
	}

	cfg := core.DefaultConfig(*k, *n, *h)
	cfg.SeedStride = *stride
	start := time.Now()
	ovp, err := core.NewOverlapper(seqs, cfg)
	if err != nil {
		return err
	}
	overlaps, stats := ovp.FindOverlaps(*minOverlap / 2)
	fmt.Fprintf(os.Stderr, "darwin-assemble: overlap step %s (%d overlaps, table build %s)\n",
		time.Since(start).Round(time.Millisecond), len(overlaps), stats.TableBuildTime.Round(time.Millisecond))

	layout := olc.BuildLayout(readLens, overlaps)
	fmt.Fprintf(os.Stderr, "darwin-assemble: layout %s\n", olc.Summarize(layout))

	var outRecs []dna.Record
	for ci, contig := range layout.Contigs {
		if contig.Len < *minContig {
			continue
		}
		seq := olc.Splice(seqs, contig)
		for round := 0; round < *polishRounds && len(contig.Placements) > 1; round++ {
			polished, err := olc.Polish(seq, seqs, cfg)
			if err != nil {
				return err
			}
			seq = polished
		}
		outRecs = append(outRecs, dna.Record{
			Name: fmt.Sprintf("contig_%d", ci),
			Desc: fmt.Sprintf("reads=%d len=%d", len(contig.Placements), len(seq)),
			Seq:  seq,
		})
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := dna.WriteFASTA(w, outRecs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "darwin-assemble: wrote %d contigs\n", len(outRecs))
	return nil
}
