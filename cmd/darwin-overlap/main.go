// Command darwin-overlap runs the overlap step of de novo assembly
// (Figure 6 right): reads are concatenated into a padded reference and
// every read is queried against it with D-SOFT + GACT. Overlaps are
// written in a PAF-like TSV.
//
// Usage:
//
//	darwin-overlap -reads reads.fq -k 12 -n 1300 -h 24 > overlaps.tsv
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/obs"
	"darwin/internal/olc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-overlap:", err)
		os.Exit(1)
	}
}

func run() error {
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ (required)")
	k := flag.Int("k", 12, "D-SOFT seed size k")
	n := flag.Int("n", 1300, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 24, "D-SOFT base-count threshold h")
	stride := flag.Int("stride", 4, "D-SOFT seed stride (spread N seeds across the whole read)")
	minOverlap := flag.Int("min-overlap", 1000, "minimum reported overlap length")
	out := flag.String("out", "", "output TSV path (default stdout)")
	progressEvery := flag.Int("progress", 0, "print overlap throughput and ETA to stderr every N reads (0 disables)")
	faultSpec := flag.String("faults", "", "fault-injection spec (requires DARWIN_ALLOW_FAULTS=1); see internal/faults")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *readsPath == "" {
		return fmt.Errorf("-reads is required")
	}
	if spec, err := faults.Setup(*faultSpec); err != nil {
		return err
	} else if spec != "" {
		fmt.Fprintf(os.Stderr, "darwin-overlap: fault injection active: %s\n", spec)
	}
	session, err := obsFlags.Start("darwin-overlap")
	if err != nil {
		return err
	}
	defer session.Close()

	f, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	var recs []dna.Record
	if strings.HasSuffix(*readsPath, ".fq") || strings.HasSuffix(*readsPath, ".fastq") {
		recs, err = dna.ReadFASTQ(f)
	} else {
		recs, err = dna.ReadFASTA(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	seqs := make([]dna.Seq, len(recs))
	for i := range recs {
		seqs[i] = recs[i].Seq
	}

	cfg := core.DefaultConfig(*k, *n, *h)
	cfg.SeedStride = *stride
	if *progressEvery > 0 {
		p := obs.StartProgress(os.Stderr, "darwin-overlap", "reads",
			obs.Default.Counter("overlap/reads_done"), int64(len(seqs)), int64(*progressEvery))
		defer p.Stop()
	}
	// SIGTERM/SIGINT cancels between reads: the overlaps found so far
	// are still written, so a long run interrupted late is not wasted.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	overlaps, stats, cerr := olc.Overlap(ctx, seqs,
		olc.WithConfig(cfg), olc.WithMinOverlap(*minOverlap))
	if cerr != nil && !errors.Is(cerr, context.Canceled) {
		return cerr
	}
	if cerr != nil {
		fmt.Fprintln(os.Stderr, "darwin-overlap: interrupted, writing partial overlaps")
	}
	fmt.Fprintf(os.Stderr, "darwin-overlap: table build %s, %d overlaps among %d reads\n",
		stats.TableBuildTime, len(overlaps), len(recs))

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = bufio.NewWriter(of)
	}
	fmt.Fprintln(w, "target\tquery\tstrand\ttarget_start\ttarget_end\tquery_start\tquery_end\tscore")
	for i := range overlaps {
		o := &overlaps[i]
		strand := "+"
		if o.QueryRev {
			strand = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			recs[o.Target].Name, recs[o.Query].Name, strand,
			o.TargetStart, o.TargetEnd, o.QueryStart, o.QueryEnd, o.Score)
	}
	return w.Flush()
}
