package main

import (
	"fmt"
	"log/slog"
	"os"
)

// newLogger matches darwind's logger wiring: text for operators, json
// for pipelines, request_id on every access line either way.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}
