// Command darwin-router is the stateless scatter-gather tier of a
// darwind cluster: it owns no index, only a static cluster map, and
// fans each /v1/map batch out to shard-owning darwind workers
// (rendezvous hashing, N-way replication), hedges the slowest replica
// after a latency quantile, and merges sub-responses bit-identically
// to a monolithic darwind — same NDJSON lines, same SAM bytes.
//
// Usage:
//
//	darwin-router -addr :8850 \
//	  -workers w0=127.0.0.1:8851,w1=127.0.0.1:8852 -replication 2
//
// Endpoints:
//
//	POST /v1/map      same contract as darwind (?format=sam too)
//	GET  /v1/cluster  resolved topology, breaker states, latencies
//	GET  /healthz     liveness
//	GET  /readyz      readiness (200 once the cluster probe passed)
//	GET  /metrics     OpenMetrics, cluster/* families
//
// At boot the router probes every worker's /v1/shards and refuses to
// serve unless all workers agree on geometry, reference layout, index
// fingerprint, and the shard ownership the shared map implies —
// a cluster that cannot merge bit-identically must not start.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"darwin/internal/cluster"
	"darwin/internal/faults"
	"darwin/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-router:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8850", "listen address (use :0 for an ephemeral port)")
	workers := flag.String("workers", "", "worker roster as name=url,name=url (required; names must match each worker's -worker-name)")
	replication := flag.Int("replication", 2, "replicas per shard (must match the workers' -cluster-replication)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.9, "per-worker latency quantile after which a sub-request is hedged to the next replica")
	hedgeMin := flag.Duration("hedge-min", 2*time.Millisecond, "lower clamp on the adaptive hedge delay")
	hedgeMax := flag.Duration("hedge-max", 2*time.Second, "upper clamp on the adaptive hedge delay (also used while latency windows are empty)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge delay overriding the adaptive quantile (0 = adaptive)")
	reqTimeout := flag.Duration("req-timeout", 60*time.Second, "per-request deadline cap")
	maxReads := flag.Int("max-reads", 1024, "max reads per request")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive sub-request failures that open a worker's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects before admitting a probe")
	probeTimeout := flag.Duration("probe-timeout", 30*time.Second, "boot-time budget for the cluster ownership probe")
	faultSpec := flag.String("faults", "", "fault-injection spec (requires DARWIN_ALLOW_FAULTS=1); see internal/faults")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	log, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *workers == "" {
		return fmt.Errorf("-workers is required")
	}
	if spec, err := faults.Setup(*faultSpec); err != nil {
		return err
	} else if spec != "" {
		log.Warn("fault injection active: " + spec)
	}
	session, err := obsFlags.Start("darwin-router")
	if err != nil {
		return err
	}
	defer session.Close()

	roster, err := cluster.ParseWorkers(*workers)
	if err != nil {
		return err
	}
	rt, err := cluster.New(cluster.Config{
		Workers:            roster,
		Replication:        *replication,
		HedgeQuantile:      *hedgeQuantile,
		HedgeMin:           *hedgeMin,
		HedgeMax:           *hedgeMax,
		HedgeDelay:         *hedgeDelay,
		RequestTimeout:     *reqTimeout,
		MaxReadsPerRequest: *maxReads,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Logger:             log,
	})
	if err != nil {
		return err
	}

	probeStart := time.Now()
	pctx, pcancel := context.WithTimeout(context.Background(), *probeTimeout)
	err = rt.Probe(pctx)
	pcancel()
	if err != nil {
		return fmt.Errorf("cluster probe: %w", err)
	}
	log.Info("cluster probe passed", "workers", len(roster), "replication", *replication,
		"took", time.Since(probeStart).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	// Full URL inline, matching darwind: smoke scripts scrape the bound
	// address out of this line.
	log.Info(fmt.Sprintf("serving on http://%s/ (POST /v1/map, /healthz, /readyz, /metrics, /v1/cluster)", ln.Addr()))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Info("signal received, draining", "signal", sig.String())
	}
	rt.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	log.Info("drain complete")
	return nil
}
