package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"darwin/internal/dna"
)

// jobModeConfig is the -jobs-target submit/poll/fetch flow's knobs.
type jobModeConfig struct {
	target     string
	readsPath  string
	kind       string
	reorder    string
	minOverlap int
	polish     int
	minContig  int
	poll       time.Duration
	out        string
}

// jobStatus mirrors the server's jobs.Status fields the client reads.
type jobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Reads  int    `json:"reads"`
	Stages map[string]struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"stages"`
	Resumed     bool   `json:"resumed"`
	ResumeRead  int    `json:"resume_read"`
	Checkpoints int    `json:"checkpoints"`
	Error       string `json:"error"`
	ErrorCode   string `json:"error_code"`
	Result      *struct {
		Overlaps int `json:"overlaps"`
		Contigs  int `json:"contigs"`
		TotalLen int `json:"total_len"`
		N50      int `json:"n50"`
	} `json:"result"`
}

// errEnvelope is the server's structured error body.
type errEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id"`
	} `json:"error"`
}

func decodeEnvelope(body []byte) string {
	var env errEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return fmt.Sprintf("%s: %s (request %s)", env.Error.Code, env.Error.Message, env.Error.RequestID)
	}
	return strings.TrimSpace(string(body))
}

// runJobMode submits the read set as an assembly job, polls status
// until it resolves, and streams the result.
func runJobMode(cfg jobModeConfig) error {
	base := cfg.target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	// Parse locally (FASTA or FASTQ by extension) and submit canonical
	// FASTA: malformed read sets fail here, not server-side.
	f, err := os.Open(cfg.readsPath)
	if err != nil {
		return err
	}
	var recs []dna.Record
	if strings.HasSuffix(cfg.readsPath, ".fq") || strings.HasSuffix(cfg.readsPath, ".fastq") {
		recs, err = dna.ReadFASTQ(f)
	} else {
		recs, err = dna.ReadFASTA(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := dna.WriteFASTA(&payload, recs); err != nil {
		return err
	}

	q := url.Values{}
	q.Set("kind", cfg.kind)
	if cfg.reorder != "" {
		q.Set("reorder", cfg.reorder)
	}
	if cfg.minOverlap > 0 {
		q.Set("min_overlap", strconv.Itoa(cfg.minOverlap))
	}
	if cfg.polish >= 0 {
		q.Set("polish", strconv.Itoa(cfg.polish))
	}
	if cfg.minContig > 0 {
		q.Set("min_contig", strconv.Itoa(cfg.minContig))
	}

	client := &http.Client{}
	resp, err := client.Post(base+"/v1/jobs?"+q.Encode(), "text/x-fasta", &payload)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, decodeEnvelope(body))
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("submit: bad response: %w", err)
	}
	fmt.Fprintf(os.Stderr, "darwin-client: job %s submitted (%s, %d reads)\n", st.ID, st.Kind, st.Reads)

	// Poll until terminal; re-print progress only when it changes.
	lastLine := ""
	for {
		time.Sleep(cfg.poll)
		resp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status: HTTP %d: %s", resp.StatusCode, decodeEnvelope(body))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("status: bad response: %w", err)
		}
		if line := progressLine(st); line != lastLine {
			fmt.Fprintln(os.Stderr, "darwin-client: "+line)
			lastLine = line
		}
		switch st.State {
		case "done":
			return fetchJobResult(client, base, st, cfg.out)
		case "failed":
			code := st.ErrorCode
			if code == "" {
				code = "internal"
			}
			return fmt.Errorf("job %s failed (%s): %s", st.ID, code, st.Error)
		case "canceled":
			return fmt.Errorf("job %s was canceled", st.ID)
		}
	}
}

// progressLine renders a compact stage-progress summary.
func progressLine(st jobStatus) string {
	var parts []string
	names := make([]string, 0, len(st.Stages))
	for name := range st.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := st.Stages[name]
		parts = append(parts, fmt.Sprintf("%s %d/%d", name, p.Done, p.Total))
	}
	line := fmt.Sprintf("job %s %s", st.ID, st.State)
	if len(parts) > 0 {
		line += ": " + strings.Join(parts, ", ")
	}
	if st.Resumed {
		line += fmt.Sprintf(" (resumed from read %d)", st.ResumeRead)
	}
	return line
}

// fetchJobResult streams GET /v1/jobs/{id}/result to out (or stdout)
// and prints the result summary.
func fetchJobResult(client *http.Client, base string, st jobStatus, outPath string) error {
	resp, err := client.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("result: HTTP %d: %s", resp.StatusCode, decodeEnvelope(body))
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		return err
	}
	if r := st.Result; r != nil {
		fmt.Fprintf(os.Stderr, "darwin-client: job %s done: overlaps=%d contigs=%d total_len=%d N50=%d checkpoints=%d\n",
			st.ID, r.Overlaps, r.Contigs, r.TotalLen, r.N50, st.Checkpoints)
	}
	return nil
}
