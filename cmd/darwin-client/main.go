// Command darwin-client is the load driver for darwind: it replays a
// read set against the service in closed-loop (fixed concurrency) or
// open-loop (fixed arrival rate) mode and prints a throughput and
// latency summary. With -report it writes a darwin-run-report/v1 so
// served-throughput runs (BENCH_server.json) join the bench
// trajectory next to the batch CLIs.
//
// Usage:
//
//	darwin-client -addr 127.0.0.1:8844 -reads reads.fq -requests 200 -concurrency 8 -batch 4
//	darwin-client -addr 127.0.0.1:8844 -reads reads.fq -rate 50 -duration 10s
//	darwin-client -target 127.0.0.1:8850,127.0.0.1:8844 -reads reads.fq -requests 200
//
// -target takes one or more comma-separated targets (darwind or
// darwin-router, host:port or URL); requests round-robin across them,
// retries rotate to the next target, and the summary breaks latency
// down per target.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Client-side metrics: mirrored into the obs registry so -report
// emits a machine-readable run summary with derived throughput.
var (
	cReqOK       = obs.Default.Counter("client/requests_ok")
	cReqRejected = obs.Default.Counter("client/requests_rejected") // 429s
	cReqFailed   = obs.Default.Counter("client/requests_failed")
	cReadsSent   = obs.Default.Counter("client/reads_sent")
	cReadsOK     = obs.Default.Counter("client/reads_ok")
	cReadsMapped = obs.Default.Counter("client/reads_mapped")
	cRecords     = obs.Default.Counter("client/records")
	cRetries     = obs.Default.Counter("client/retries")
	cReadErrors  = obs.Default.Counter("client/read_errors")
	cInvalid     = obs.Default.Counter("client/invalid_responses")
	hLatency     = obs.Default.Histogram("client/request_latency_ms", 0, 10000, 100)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-client:", err)
		os.Exit(1)
	}
}

type result struct {
	status  int
	latency time.Duration
	err     error
	retries int
	// reqID is the server-assigned request identity (X-Request-ID on
	// the response, which echoes the one we sent) — the join key into
	// darwind's access log, error envelopes, and /debug/slow captures.
	reqID string
	// target is the base URL the final attempt went to.
	target string
}

// timingAgg accumulates per-stage server-side durations parsed from
// Server-Timing response headers, so the client summary can split
// "where did p99 go" into admit / queue_wait / batch without a
// server-side debug endpoint round-trip.
type timingAgg struct {
	mu     sync.Mutex
	stages map[string][]float64 // stage → per-request ms samples
}

// record parses one Server-Timing header value ("admit;dur=0.3,
// queue_wait;dur=1.2, total;dur=9.9") into the aggregate. Malformed
// entries are skipped: the header is advisory.
func (t *timingAgg) record(header string) {
	if header == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stages == nil {
		t.stages = make(map[string][]float64)
	}
	for _, entry := range strings.Split(header, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) < 2 || parts[0] == "" {
			continue
		}
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if !strings.HasPrefix(p, "dur=") {
				continue
			}
			if ms, err := strconv.ParseFloat(p[len("dur="):], 64); err == nil {
				t.stages[parts[0]] = append(t.stages[parts[0]], ms)
			}
		}
	}
}

// backoffWait derives how long to wait before retry attempt (0-based).
// A server-provided Retry-After (seconds) wins; otherwise exponential
// backoff from 100ms doubling per attempt. Both paths are capped at
// maxWait and jittered ±50% so a burst of rejected clients does not
// reconverge on the server in lockstep.
func backoffWait(retryAfter string, attempt int, maxWait time.Duration) time.Duration {
	wait := 100 * time.Millisecond << uint(attempt)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	if wait > maxWait {
		wait = maxWait
	}
	// Jitter to 50–150% of the base wait.
	return wait/2 + time.Duration(rand.Int63n(int64(wait)))
}

// retryableStatus reports whether a response status is worth retrying:
// explicit pushback (429 queue full, 503 draining/warming/breaker) and
// 504 deadline, where a later attempt may land in a quieter window.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func run() error {
	addr := flag.String("addr", "", "darwind address host:port (or use -target)")
	targetSpec := flag.String("target", "", "comma-separated targets (darwind or darwin-router, host:port or URL); round-robin per request, supersedes -addr")
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ to replay (required)")
	requests := flag.Int("requests", 100, "closed-loop: total requests to send")
	concurrency := flag.Int("concurrency", 4, "closed-loop: in-flight requests")
	rate := flag.Float64("rate", 0, "open-loop: request arrival rate per second (0 = closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "open-loop: how long to offer load")
	batch := flag.Int("batch", 4, "reads per request")
	all := flag.Bool("all", false, "request all alignments per read")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
	outPath := flag.String("out", "", "append response SAM text to this file (requests ?format=sam)")
	reference := flag.String("reference", "", "reference field sent with each request (non-default needs darwind -allow-ref-load)")
	retries := flag.Int("retries", 3, "max retries per request on 429/503/504 (0 disables)")
	retryMaxWait := flag.Duration("retry-max-wait", 2*time.Second, "cap on a single retry backoff wait")
	strict := flag.Bool("strict", false, "validate 200 NDJSON responses; malformed or per-read error lines fail the run")
	jobsTarget := flag.String("jobs-target", "", "assembly-job mode: submit -reads as a job to this darwind (host:port or URL), poll it, fetch the result")
	jobKind := flag.String("job-kind", "assemble", "job mode: overlap or assemble")
	jobReorder := flag.String("job-reorder", "", "job mode: read-reordering pass (off, rcm, farthest)")
	jobMinOverlap := flag.Int("job-min-overlap", 0, "job mode: nominal minimum overlap length (0 = server default)")
	jobPolish := flag.Int("job-polish", -1, "job mode: polishing rounds (-1 = server default)")
	jobMinContig := flag.Int("job-min-contig", 0, "job mode: drop contigs shorter than this")
	jobPoll := flag.Duration("job-poll", 500*time.Millisecond, "job mode: status poll interval")
	jobOut := flag.String("job-out", "", "job mode: write the result stream here (default stdout)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *jobsTarget != "" {
		if *readsPath == "" {
			return fmt.Errorf("-jobs-target requires -reads")
		}
		return runJobMode(jobModeConfig{
			target:     *jobsTarget,
			readsPath:  *readsPath,
			kind:       *jobKind,
			reorder:    *jobReorder,
			minOverlap: *jobMinOverlap,
			polish:     *jobPolish,
			minContig:  *jobMinContig,
			poll:       *jobPoll,
			out:        *jobOut,
		})
	}
	if (*addr == "" && *targetSpec == "") || *readsPath == "" {
		return fmt.Errorf("-addr (or -target) and -reads are required")
	}
	var targets []string
	if *targetSpec != "" {
		for _, tg := range strings.Split(*targetSpec, ",") {
			tg = strings.TrimSpace(tg)
			if tg == "" {
				continue
			}
			if !strings.Contains(tg, "://") {
				tg = "http://" + tg
			}
			targets = append(targets, strings.TrimRight(tg, "/"))
		}
		if len(targets) == 0 {
			return fmt.Errorf("-target %q names no targets", *targetSpec)
		}
	} else {
		targets = []string{"http://" + *addr}
	}
	session, err := obsFlags.Start("darwin-client")
	if err != nil {
		return err
	}
	defer session.Close()

	reads, err := readSeqFile(*readsPath)
	if err != nil {
		return err
	}
	if len(reads) == 0 {
		return fmt.Errorf("no reads in %s", *readsPath)
	}
	if *batch < 1 {
		*batch = 1
	}

	urls := make([]string, len(targets))
	for i, tg := range targets {
		urls[i] = tg + "/v1/map"
	}
	var out *os.File
	if *outPath != "" {
		for i := range urls {
			urls[i] += "?format=sam"
		}
		out, err = os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	var outMu sync.Mutex

	// Pre-encode request bodies round-robin over the read set so the
	// hot loop measures the service, not client-side JSON encoding.
	type wireRead struct {
		Name string `json:"name"`
		Seq  string `json:"seq"`
	}
	type wireReq struct {
		Reference string     `json:"reference,omitempty"`
		Reads     []wireRead `json:"reads"`
		All       bool       `json:"all,omitempty"`
		TimeoutMS int        `json:"timeout_ms,omitempty"`
	}
	nBodies := (len(reads) + *batch - 1) / *batch
	bodies := make([][]byte, nBodies)
	readsPerBody := make([]int, nBodies)
	for b := 0; b < nBodies; b++ {
		var wr wireReq
		wr.Reference = *reference
		wr.All = *all
		wr.TimeoutMS = *timeoutMS
		for i := b * (*batch); i < (b+1)*(*batch) && i < len(reads); i++ {
			wr.Reads = append(wr.Reads, wireRead{Name: reads[i].Name, Seq: string(reads[i].Seq)})
		}
		readsPerBody[b] = len(wr.Reads)
		if bodies[b], err = json.Marshal(wr); err != nil {
			return err
		}
	}

	client := &http.Client{}
	timing := &timingAgg{}
	var seq atomic.Int64
	fire := func() result {
		n := int(seq.Add(1) - 1)
		b := n % nBodies
		cReadsSent.Add(int64(readsPerBody[b]))
		// One identity per logical request, reused across retries, so
		// every server-side record of the attempts joins to one client
		// request.
		reqID := obs.NewRequestID()
		for attempt := 0; ; attempt++ {
			// Round-robin across targets; a retried request rotates to
			// the next target, so pushback from one node spills to its
			// peers instead of hammering the same queue.
			tgt := (n + attempt) % len(targets)
			start := time.Now()
			req, err := http.NewRequest(http.MethodPost, urls[tgt], bytes.NewReader(bodies[b]))
			if err != nil {
				cReqFailed.Inc()
				return result{err: err, retries: attempt, reqID: reqID, target: targets[tgt]}
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Request-ID", reqID)
			resp, err := client.Do(req)
			if err != nil {
				cReqFailed.Inc()
				return result{err: err, retries: attempt, reqID: reqID, target: targets[tgt]}
			}
			if id := resp.Header.Get("X-Request-ID"); id != "" {
				reqID = id // server's view wins (it sanitizes)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			lat := time.Since(start)
			// Pushback (429/503) and deadline (504) responses are retried
			// with Retry-After-aware capped backoff: the server told us
			// when to come back, so honoring it converts rejected load
			// into delayed completions instead of failures.
			if retryableStatus(resp.StatusCode) && attempt < *retries {
				cRetries.Inc()
				time.Sleep(backoffWait(resp.Header.Get("Retry-After"), attempt, *retryMaxWait))
				continue
			}
			r := result{status: resp.StatusCode, latency: lat, err: err, retries: attempt, reqID: reqID, target: targets[tgt]}
			switch {
			case err != nil || resp.StatusCode >= 500:
				cReqFailed.Inc()
			case resp.StatusCode == http.StatusTooManyRequests:
				cReqRejected.Inc()
			case resp.StatusCode == http.StatusOK:
				cReqOK.Inc()
				hLatency.Observe(float64(lat) / float64(time.Millisecond))
				timing.record(resp.Header.Get("Server-Timing"))
				tally(body, out != nil)
				if out != nil {
					outMu.Lock()
					out.Write(body)
					outMu.Unlock()
				}
			default:
				cReqFailed.Inc()
			}
			return r
		}
	}

	fmt.Fprintf(os.Stderr, "darwin-client: %d reads in %d request bodies of ≤%d reads against %s\n",
		len(reads), nBodies, *batch, strings.Join(urls, ", "))

	var results []result
	var mu sync.Mutex
	record := func(r result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	wallStart := time.Now()
	if *rate > 0 {
		// Open loop: fire at the configured arrival rate regardless of
		// completions — offered load, the regime where admission
		// control and 429s appear.
		interval := time.Duration(float64(time.Second) / *rate)
		deadline := time.Now().Add(*duration)
		var wg sync.WaitGroup
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for now := range tick.C {
			if now.After(deadline) {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				record(fire())
			}()
		}
		wg.Wait()
	} else {
		// Closed loop: fixed concurrency, next request on completion.
		var wg sync.WaitGroup
		var issued atomic.Int64
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for issued.Add(1) <= int64(*requests) {
					record(fire())
				}
			}()
		}
		wg.Wait()
	}
	wall := time.Since(wallStart)

	summarize(os.Stdout, results, wall, timing)
	if *strict {
		if inv, rerr := cInvalid.Value(), cReadErrors.Value(); inv > 0 || rerr > 0 {
			return fmt.Errorf("strict: %d malformed response lines, %d per-read errors", inv, rerr)
		}
	}
	return nil
}

// tally counts mapped reads, records, per-read error lines, and
// malformed lines from a 200 response body.
func tally(body []byte, isSAM bool) {
	if isSAM {
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" || strings.HasPrefix(line, "@") {
				continue
			}
			fields := strings.Split(line, "\t")
			if len(fields) < 11 {
				cInvalid.Inc()
				continue
			}
			cRecords.Inc()
			cReadsOK.Inc()
			if fields[1] != "4" {
				cReadsMapped.Inc()
			}
		}
		return
	}
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var parsed struct {
			Read    string            `json:"read"`
			Mapped  bool              `json:"mapped"`
			Records []json.RawMessage `json:"records"`
			Error   string            `json:"error"`
		}
		if json.Unmarshal(line, &parsed) != nil {
			cInvalid.Inc()
			continue
		}
		if parsed.Error != "" {
			// A structured per-read error: the service degraded one read
			// instead of failing the request — count it separately.
			cReadErrors.Inc()
			continue
		}
		cRecords.Add(int64(len(parsed.Records)))
		cReadsOK.Inc()
		if parsed.Mapped {
			cReadsMapped.Inc()
		}
	}
}

// targetAgg is summarize's per-target slice of the run.
type targetAgg struct {
	ok, failed int
	lats       []time.Duration
}

// summarize prints the throughput/latency digest. Percentiles come
// from the raw latency samples, not histogram bins.
func summarize(w io.Writer, results []result, wall time.Duration, timing *timingAgg) {
	var ok, rejected, failed, retried int
	var lats, failLats []time.Duration
	var failIDs []string
	for _, r := range results {
		retried += r.retries
		isFailure := false
		switch {
		case r.err != nil || r.status >= 500:
			failed++
			isFailure = true
			if r.err == nil {
				failLats = append(failLats, r.latency)
			}
		case r.status == http.StatusTooManyRequests:
			rejected++
			isFailure = true
			failLats = append(failLats, r.latency)
		case r.status == http.StatusOK:
			ok++
			lats = append(lats, r.latency)
		default:
			failed++
			isFailure = true
			failLats = append(failLats, r.latency)
		}
		if isFailure && r.reqID != "" && len(failIDs) < 5 {
			failIDs = append(failIDs, r.reqID)
		}
	}
	pctOf := func(samples []time.Duration, p float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	sort.Slice(failLats, func(a, b int) bool { return failLats[a] < failLats[b] })
	fmt.Fprintf(w, "requests: %d ok, %d rejected (429), %d failed, %d retries in %.2fs\n",
		ok, rejected, failed, retried, wall.Seconds())
	fmt.Fprintf(w, "throughput: %.1f req/s, %.1f reads/s (%d records, %d/%d reads mapped)\n",
		float64(ok)/wall.Seconds(), float64(cReadsOK.Value())/wall.Seconds(),
		cRecords.Value(), cReadsMapped.Value(), cReadsOK.Value())
	if len(lats) > 0 {
		fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
			pctOf(lats, 0.50).Round(time.Microsecond), pctOf(lats, 0.90).Round(time.Microsecond),
			pctOf(lats, 0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	// Failure latency matters for resilience tuning: fast structured
	// failures (breaker open, queue full) versus slow timeouts show up
	// here, not in the success percentiles.
	if len(failLats) > 0 {
		fmt.Fprintf(w, "failure latency: p50=%s p99=%s max=%s\n",
			pctOf(failLats, 0.50).Round(time.Microsecond), pctOf(failLats, 0.99).Round(time.Microsecond),
			failLats[len(failLats)-1].Round(time.Microsecond))
	}
	// Per-target breakdown: with several -target entries, uneven p50s
	// point at a hot node and failure counts at a sick one — the first
	// question a scatter tier raises that a single-node summary hides.
	perTarget := make(map[string]*targetAgg)
	var targetNames []string
	for _, r := range results {
		if r.target == "" {
			continue
		}
		agg := perTarget[r.target]
		if agg == nil {
			agg = &targetAgg{}
			perTarget[r.target] = agg
			targetNames = append(targetNames, r.target)
		}
		switch {
		case r.err == nil && r.status == http.StatusOK:
			agg.ok++
			agg.lats = append(agg.lats, r.latency)
		default:
			agg.failed++
		}
	}
	if len(targetNames) > 1 {
		sort.Strings(targetNames)
		for _, name := range targetNames {
			agg := perTarget[name]
			sort.Slice(agg.lats, func(a, b int) bool { return agg.lats[a] < agg.lats[b] })
			fmt.Fprintf(w, "target %s: %d ok, %d failed", name, agg.ok, agg.failed)
			if len(agg.lats) > 0 {
				fmt.Fprintf(w, ", p50=%s p99=%s",
					pctOf(agg.lats, 0.50).Round(time.Microsecond), pctOf(agg.lats, 0.99).Round(time.Microsecond))
			}
			fmt.Fprintln(w)
		}
	}
	// Server-assigned request IDs join client-side failures to the
	// server's access log, error envelopes, and /debug/slow captures.
	if len(failIDs) > 0 {
		fmt.Fprintf(w, "failed request ids (sample): %s\n", strings.Join(failIDs, ", "))
	}
	// Server-side stage split, from Server-Timing response headers:
	// where the server says the successful requests' time went.
	if timing != nil && len(timing.stages) > 0 {
		names := make([]string, 0, len(timing.stages))
		for name := range timing.stages {
			if name != "total" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if _, hasTotal := timing.stages["total"]; hasTotal {
			names = append(names, "total") // total reads best last
		}
		fmt.Fprintf(w, "server timing (ms):")
		for _, name := range names {
			samples := timing.stages[name]
			sort.Float64s(samples)
			p50 := samples[int(0.50*float64(len(samples)-1))]
			p95 := samples[int(0.95*float64(len(samples)-1))]
			fmt.Fprintf(w, " %s p50=%.1f p95=%.1f", name, p50, p95)
		}
		fmt.Fprintln(w)
	}
	if v := cReadErrors.Value(); v > 0 {
		fmt.Fprintf(w, "per-read errors: %d (structured error lines in 200 responses)\n", v)
	}
	if v := cInvalid.Value(); v > 0 {
		fmt.Fprintf(w, "malformed lines: %d\n", v)
	}
}

func readSeqFile(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return dna.ReadFASTQ(f)
	}
	return dna.ReadFASTA(f)
}
