// Command readsim simulates long reads from a reference genome with
// the error profiles of the paper's Table 1 — the PBSIM stand-in of
// this reproduction. Ground-truth intervals are written alongside the
// reads so downstream evaluation can apply the paper's 50 bp
// criterion.
//
// Usage:
//
//	readsim -ref ref.fa -profile pacbio -coverage 30 -out reads.fq -truth truth.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}

func run() error {
	refPath := flag.String("ref", "", "reference FASTA (required)")
	profileName := flag.String("profile", "pacbio", "error profile: pacbio, ont2d, ont1d")
	coverage := flag.Float64("coverage", 0, "target coverage (mutually exclusive with -n)")
	n := flag.Int("n", 0, "exact read count")
	meanLen := flag.Int("len", 10_000, "mean read length")
	spread := flag.Float64("len-spread", 0.1, "uniform length jitter fraction")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output FASTQ path (default stdout)")
	truthPath := flag.String("truth", "", "ground-truth TSV path")
	flag.Parse()

	if *refPath == "" {
		return fmt.Errorf("-ref is required")
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}
	f, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	recs, err := dna.ReadFASTA(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no sequences in %s", *refPath)
	}
	ref := recs[0].Seq

	cfg := readsim.Config{Profile: profile, MeanLen: *meanLen, LenSpread: *spread, Coverage: *coverage, Seed: *seed}
	var reads []readsim.Read
	if *n > 0 {
		reads, err = readsim.SimulateN(ref, *n, cfg)
	} else if *coverage > 0 {
		reads, err = readsim.Simulate(ref, cfg)
	} else {
		return fmt.Errorf("one of -coverage or -n is required")
	}
	if err != nil {
		return err
	}

	outRecs := make([]dna.Record, len(reads))
	for i := range reads {
		outRecs[i] = dna.Record{Name: reads[i].Name, Seq: reads[i].Seq, Qual: reads[i].Qual}
	}
	if err := writeFASTQ(*out, outRecs); err != nil {
		return err
	}
	if *truthPath != "" {
		if err := writeTruth(*truthPath, reads); err != nil {
			return err
		}
	}
	m := readsim.MeasuredProfile(reads)
	fmt.Fprintf(os.Stderr, "readsim: %d reads, measured errors sub=%.2f%% ins=%.2f%% del=%.2f%%\n",
		len(reads), m.Sub*100, m.Ins*100, m.Del*100)
	return nil
}

func profileByName(name string) (readsim.Profile, error) {
	switch strings.ToLower(name) {
	case "pacbio":
		return readsim.PacBio, nil
	case "ont2d", "ont_2d":
		return readsim.ONT2D, nil
	case "ont1d", "ont_1d":
		return readsim.ONT1D, nil
	}
	return readsim.Profile{}, fmt.Errorf("unknown profile %q (want pacbio, ont2d or ont1d)", name)
}

func writeFASTQ(path string, recs []dna.Record) error {
	if path == "" {
		return dna.WriteFASTQ(os.Stdout, recs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dna.WriteFASTQ(f, recs); err != nil {
		return err
	}
	return f.Close()
}

func writeTruth(path string, reads []readsim.Read) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "name\tref_start\tref_end\tstrand\tsub\tins\tdel")
	for i := range reads {
		r := &reads[i]
		strand := "+"
		if r.Reverse {
			strand = "-"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%d\n",
			r.Name, r.RefStart, r.RefEnd, strand, r.Errors.Sub, r.Errors.Ins, r.Errors.Del)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
