// Command genomesim generates a synthetic genome in FASTA format, the
// stand-in for GRCh38/C. elegans in this reproduction (see DESIGN.md,
// "Substitutions"). It can additionally derive a diverged sample
// genome (SNPs, indels, structural variants) to exercise
// reference-vs-sample divergence.
//
// Usage:
//
//	genomesim -len 1000000 -out ref.fa
//	genomesim -len 1000000 -out ref.fa -sample sample.fa -sv 4
package main

import (
	"flag"
	"fmt"
	"os"

	"darwin/internal/dna"
	"darwin/internal/genome"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genomesim:", err)
		os.Exit(1)
	}
}

func run() error {
	length := flag.Int("len", 1_000_000, "genome length in bp")
	gc := flag.Float64("gc", 0.41, "GC content")
	repeatFrac := flag.Float64("repeat-fraction", 0.25, "fraction of genome covered by planted repeats")
	families := flag.Int("repeat-families", 8, "number of interspersed repeat families")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output FASTA path (default stdout)")
	name := flag.String("name", "synthetic", "sequence name")
	samplePath := flag.String("sample", "", "also write a diverged sample genome to this path")
	snpRate := flag.Float64("snp-rate", 0.001, "sample SNP rate")
	indelRate := flag.Float64("indel-rate", 0.0001, "sample small-indel rate")
	svCount := flag.Int("sv", 4, "sample structural variant count")
	flag.Parse()

	g, err := genome.Generate(genome.Config{
		Length:           *length,
		GC:               *gc,
		RepeatFraction:   *repeatFrac,
		RepeatFamilies:   *families,
		RepeatUnitLen:    300,
		RepeatDivergence: 0.10,
		TandemFraction:   0.10,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	if err := writeFASTA(*out, []dna.Record{{Name: *name, Desc: fmt.Sprintf("len=%d gc=%.2f seed=%d", *length, *gc, *seed), Seq: g.Seq}}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "genomesim: wrote %d bp (%d repeat intervals)\n", len(g.Seq), len(g.RepeatIntervals))

	if *samplePath != "" {
		sample, vars, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{
			SNPRate:        *snpRate,
			SmallIndelRate: *indelRate,
			SVCount:        *svCount,
			SVMeanLen:      2000,
			Seed:           *seed + 1,
		})
		if err != nil {
			return err
		}
		if err := writeFASTA(*samplePath, []dna.Record{{Name: *name + "_sample", Desc: fmt.Sprintf("%d variants", len(vars)), Seq: sample}}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "genomesim: wrote sample with %d variants\n", len(vars))
	}
	return nil
}

func writeFASTA(path string, recs []dna.Record) error {
	if path == "" {
		return dna.WriteFASTA(os.Stdout, recs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dna.WriteFASTA(f, recs); err != nil {
		return err
	}
	return f.Close()
}
