// Command darwin-call calls variants from long reads against a
// reference: reads are mapped with the Darwin engine and pileup
// majority voting emits SNPs, insertions, and deletions in minimal
// VCF — the reference-guided "small changes" application of Section 2.
//
// Usage:
//
//	darwin-call -ref ref.fa -reads reads.fq > calls.vcf
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/varcall"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-call:", err)
		os.Exit(1)
	}
}

func run() error {
	refPath := flag.String("ref", "", "reference FASTA (required; first sequence used)")
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ (required)")
	k := flag.Int("k", 11, "D-SOFT seed size k")
	n := flag.Int("n", 700, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 20, "D-SOFT base-count threshold h")
	minDepth := flag.Int("min-depth", 5, "minimum coverage to call")
	minFrac := flag.Float64("min-frac", 0.5, "minimum supporting-read fraction")
	out := flag.String("out", "", "output VCF path (default stdout)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *refPath == "" || *readsPath == "" {
		return fmt.Errorf("-ref and -reads are required")
	}
	session, err := obsFlags.Start("darwin-call")
	if err != nil {
		return err
	}
	defer session.Close()

	rf, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	refRecs, err := dna.ReadFASTA(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(refRecs) == 0 {
		return fmt.Errorf("no sequences in %s", *refPath)
	}
	refName, ref := refRecs[0].Name, refRecs[0].Seq

	qf, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	var readRecs []dna.Record
	if strings.HasSuffix(*readsPath, ".fq") || strings.HasSuffix(*readsPath, ".fastq") {
		readRecs, err = dna.ReadFASTQ(qf)
	} else {
		readRecs, err = dna.ReadFASTA(qf)
	}
	qf.Close()
	if err != nil {
		return err
	}
	reads := make([]dna.Seq, len(readRecs))
	for i := range readRecs {
		reads[i] = readRecs[i].Seq
	}

	cfg := varcall.DefaultConfig(core.DefaultConfig(*k, *n, *h))
	cfg.MinDepth = *minDepth
	cfg.MinFrac = *minFrac
	// SIGTERM/SIGINT cancels between reads.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	calls, err := varcall.CallContext(ctx, ref, reads, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "darwin-call: %d variants from %d reads\n", len(calls), len(reads))

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fmt.Fprintln(w, "##fileformat=VCFv4.2")
	fmt.Fprintf(w, "##contig=<ID=%s,length=%d>\n", refName, len(ref))
	fmt.Fprintln(w, "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Read depth\">")
	fmt.Fprintln(w, "##INFO=<ID=SU,Number=1,Type=Integer,Description=\"Supporting reads\">")
	fmt.Fprintln(w, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO")
	for _, c := range calls {
		// VCF indel convention: anchor on the preceding reference base.
		var pos int
		var refAllele, altAllele string
		switch c.Kind {
		case varcall.SNP:
			pos = c.Pos + 1
			refAllele, altAllele = c.Ref, c.Alt
		case varcall.Del:
			if c.Pos == 0 {
				continue // no anchor base
			}
			pos = c.Pos // anchor at pos-1, 1-based = c.Pos
			refAllele = string(ref[c.Pos-1:c.Pos]) + c.Ref
			altAllele = string(ref[c.Pos-1 : c.Pos])
		case varcall.Ins:
			pos = c.Pos + 1
			refAllele = string(ref[c.Pos : c.Pos+1])
			altAllele = refAllele + c.Alt
		}
		fmt.Fprintf(w, "%s\t%d\t.\t%s\t%s\t.\tPASS\tDP=%d;SU=%d\n",
			refName, pos, refAllele, altAllele, c.Depth, c.Support)
	}
	return w.Flush()
}
