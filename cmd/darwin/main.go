// Command darwin is the reference-guided long-read mapper: D-SOFT
// filtering plus GACT tiled alignment (the software realization of the
// paper's co-processor pipeline, Figure 6 left). Reads FASTA/FASTQ,
// writes SAM.
//
// Usage:
//
//	darwin -ref ref.fa -reads reads.fq -k 12 -n 750 -h 24 > out.sam
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/indexfile"
	"darwin/internal/indexio"
	"darwin/internal/obs"
	"darwin/internal/sam"
	"darwin/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "darwin:", err)
		os.Exit(1)
	}
}

func run() error {
	refPath := flag.String("ref", "", "reference FASTA (required)")
	readsPath := flag.String("reads", "", "reads FASTA/FASTQ (required)")
	k := flag.Int("k", 12, "D-SOFT seed size k")
	n := flag.Int("n", 750, "D-SOFT seeds per query strand N")
	h := flag.Int("h", 24, "D-SOFT base-count threshold h")
	hTile := flag.Int("htile", 90, "first GACT tile score threshold (0 disables)")
	tileT := flag.Int("T", 320, "GACT tile size T")
	tileO := flag.Int("O", 128, "GACT tile overlap O")
	tileKernel := flag.String("tile-kernel", "auto", "tile DP kernel tier: auto (bitvector fast path with LUT fallback), bitvector, or lut")
	out := flag.String("out", "", "output SAM path (default stdout)")
	allAlignments := flag.Bool("all", false, "report all alignments, not just the best")
	workers := flag.Int("workers", 1, "mapping worker goroutines")
	shards := flag.Int("shards", 0, "split the reference index into this many shards (0 = monolithic)")
	shardOverlap := flag.Int("shard-overlap", 0, "shard overlap margin in bases (0 = exactness minimum)")
	shardMem := flag.String("shard-mem", "", "resident shard seed-table budget, e.g. 512M (empty = unbounded)")
	indexPath := flag.String("index", "", "load the reference index from this prebuilt .dwi file (darwin-index build) instead of building it")
	indexWrite := flag.String("index-write", "", "build the reference index, write it to this .dwi path, then map from it")
	noSidecar := flag.Bool("no-sidecar", false, "do not auto-load a <ref>.dwi sidecar index next to the reference")
	progressEvery := flag.Int("progress", 0, "print mapping throughput and ETA to stderr every N reads (0 disables)")
	faultSpec := flag.String("faults", "", "fault-injection spec (requires DARWIN_ALLOW_FAULTS=1); see internal/faults")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *refPath == "" || *readsPath == "" {
		return fmt.Errorf("-ref and -reads are required")
	}
	if spec, err := faults.Setup(*faultSpec); err != nil {
		return err
	} else if spec != "" {
		fmt.Fprintf(os.Stderr, "darwin: fault injection active: %s\n", spec)
	}
	session, err := obsFlags.Start("darwin")
	if err != nil {
		return err
	}
	defer session.Close()

	if *indexPath != "" && *indexWrite != "" {
		return fmt.Errorf("-index and -index-write are mutually exclusive")
	}

	tLoad := obs.Default.Timer("stage/load_input").Time()
	// With an explicit -index the reference FASTA is never parsed — the
	// index file carries the reference bytes, which is the point of the
	// cold-start path.
	var refRecs []dna.Record
	if *indexPath == "" {
		refRecs, err = readSeqFile(*refPath)
		if err != nil {
			return err
		}
		if len(refRecs) == 0 {
			return fmt.Errorf("no sequences in %s", *refPath)
		}
	}
	reads, err := readSeqFile(*readsPath)
	tLoad()
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(*k, *n, *h)
	cfg.HTile = *hTile
	cfg.GACT.T = *tileT
	cfg.GACT.O = *tileO
	kernelMode, err := align.ParseKernelMode(*tileKernel)
	if err != nil {
		return err
	}
	cfg.GACT.Kernel = kernelMode
	spec := core.ShardSpec{Shards: *shards, Overlap: *shardOverlap}
	if *shardMem != "" {
		mem, err := shard.ParseBytes(*shardMem)
		if err != nil {
			return err
		}
		spec.MaxResidentBytes = mem
	}
	openCfg := core.OpenConfig{Records: refRecs, Core: cfg, Shard: spec}
	sidecar := false
	switch {
	case *indexWrite != "":
		if _, err := indexio.WriteFile(*indexWrite, refRecs, cfg, spec); err != nil {
			return fmt.Errorf("writing index %s: %w", *indexWrite, err)
		}
		fmt.Fprintf(os.Stderr, "darwin: wrote index %s\n", *indexWrite)
		openCfg.IndexPath = *indexWrite
	case *indexPath != "":
		openCfg.IndexPath = *indexPath
	case !*noSidecar:
		sc := indexfile.SidecarPath(*refPath)
		if st, serr := os.Stat(sc); serr == nil && !st.IsDir() {
			openCfg.IndexPath = sc
			sidecar = true
		}
	}
	engine, ref, err := core.Open(openCfg)
	if err != nil && sidecar {
		// A discovered sidecar is opportunistic: corruption or a
		// parameter mismatch degrades to the ordinary FASTA build.
		fmt.Fprintf(os.Stderr, "darwin: sidecar index %s unusable (%v); rebuilding from FASTA\n", openCfg.IndexPath, err)
		openCfg.IndexPath = ""
		engine, ref, err = core.Open(openCfg)
	}
	if err != nil {
		return err
	}
	if openCfg.IndexPath != "" {
		fmt.Fprintf(os.Stderr, "darwin: mapped prebuilt index %s (no build pass)\n", openCfg.IndexPath)
	}
	if sm, ok := engine.(*shard.ScatterMapper); ok {
		geo := sm.Set().Geometry()
		fmt.Fprintf(os.Stderr, "darwin: partitioned %d sequences, %d bp into %d shards of %d bp (+%d bp overlap, k=%d); tables build lazily\n",
			ref.NumSeqs(), len(ref.Seq()), len(geo.Parts), geo.ShardSize, geo.Overlap, *k)
	} else {
		fmt.Fprintf(os.Stderr, "darwin: indexed %d sequences, %d bp (k=%d) in %s\n",
			ref.NumSeqs(), len(ref.Seq()), *k, engine.IndexBuildTime())
	}

	sqs := make([]sam.RefSeq, ref.NumSeqs())
	for i := range sqs {
		sqs[i] = sam.RefSeq{Name: ref.Name(i), Len: ref.Len(i)}
	}
	var w *sam.Writer
	if *out == "" {
		w = sam.NewWriter(os.Stdout, sqs, "darwin")
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = sam.NewWriter(f, sqs, "darwin")
	}

	// Map (optionally in parallel), then emit in input order. The
	// -progress watcher reads the registry's core/reads counter — no
	// extra bookkeeping in the mapping loop.
	if *progressEvery > 0 {
		p := obs.StartProgress(os.Stderr, "darwin", "reads",
			obs.Default.Counter("core/reads"), int64(len(reads)), int64(*progressEvery))
		defer p.Stop()
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	results, err := engine.Map(context.Background(), seqs, core.WithWorkers(*workers))
	if err != nil {
		return err
	}

	tEmit := obs.Default.Timer("stage/emit")
	mapped, failed := 0, 0
	for ri, rec := range reads {
		alns := results[ri].Alignments
		if results[ri].Err != nil {
			// Per-read isolation: a poisoned read degrades to an
			// unmapped record instead of killing the whole run.
			failed++
			fmt.Fprintf(os.Stderr, "darwin: read %q failed: %v\n", rec.Name, results[ri].Err)
			alns = nil
		}
		stopEmit := tEmit.Time()
		if len(alns) == 0 {
			err := w.Write(sam.Record{QName: rec.Name, Flag: sam.FlagUnmapped, Seq: rec.Seq})
			stopEmit()
			if err != nil {
				return err
			}
			continue
		}
		mapped++
		emit := alns[:1]
		if *allAlignments {
			emit = alns
		}
		for _, a := range emit {
			seqIdx, localStart, _, err := ref.LocateSpan(a.Result.RefStart, a.Result.RefEnd)
			if err != nil {
				continue // degenerate cross-sequence span
			}
			flagBits := 0
			seq := rec.Seq
			if a.Reverse {
				flagBits |= sam.FlagReverse
				seq = dna.RevComp(seq)
			}
			if err := w.Write(sam.Record{
				QName: rec.Name,
				Flag:  flagBits,
				RName: ref.Name(seqIdx),
				Pos:   localStart,
				MapQ:  60,
				Cigar: sam.CigarWithClips(a.Result.Cigar, a.Result.QueryStart, a.Result.QueryEnd, len(seq)),
				Seq:   seq,
				Tags:  []string{fmt.Sprintf("AS:i:%d", a.Result.Score), fmt.Sprintf("ft:i:%d", a.FirstTileScore)},
			}); err != nil {
				stopEmit()
				return err
			}
		}
		stopEmit()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "darwin: mapped %d/%d reads (%d failed)\n", mapped, len(reads), failed)
	} else {
		fmt.Fprintf(os.Stderr, "darwin: mapped %d/%d reads\n", mapped, len(reads))
	}
	return nil
}

func readSeqFile(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return dna.ReadFASTQ(f)
	}
	return dna.ReadFASTA(f)
}
