// Package darwin is the root of a from-scratch Go reproduction of
// "Darwin: A Genomics Co-processor Provides up to 15,000× acceleration
// on long read assembly" (Turakhia, Bejerano, Dally; ASPLOS 2018).
//
// The library lives under internal/: dna, genome, readsim (workload
// substrates), seedtable, dsoft, align, gact, fmindex (the algorithms),
// hw (the calibrated ASIC/FPGA performance model), baseline (GraphMap/
// BWA-MEM/DALIGNER-class comparisons), core (the Darwin engine),
// assembly, olc, wga, metrics, experiments, obs, sam, and server (the
// darwind serving layer). Executables are in cmd/,
// runnable examples in examples/, and bench_test.go regenerates each
// paper table and figure as a benchmark. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package darwin
