package olc

import (
	"context"
	"testing"

	"darwin/internal/core"
)

// chainOverlaps builds a linear chain 0-1-2-...-(n-1) in a scrambled
// id space: read ids are permuted so input order has poor locality.
func chainOverlaps(n int, perm []int) []core.Overlap {
	var ovs []core.Overlap
	for i := 0; i+1 < n; i++ {
		ovs = append(ovs, core.Overlap{
			Target: perm[i], Query: perm[i+1],
			TargetStart: 600, TargetEnd: 1000, QueryEnd: 400, Score: 400,
		})
	}
	return ovs
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range order {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

func TestParseReorderMode(t *testing.T) {
	cases := map[string]ReorderMode{
		"":         ReorderOff,
		"off":      ReorderOff,
		"rcm":      ReorderRCM,
		"farthest": ReorderFarthest,
	}
	for s, want := range cases {
		got, err := ParseReorderMode(s)
		if err != nil || got != want {
			t.Errorf("ParseReorderMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseReorderMode("bogus"); err == nil {
		t.Error("ParseReorderMode(bogus) accepted")
	}
}

// TestReorderReducesChainBandwidth: on a scrambled linear chain both
// heuristics must recover (near-)unit bandwidth.
func TestReorderReducesChainBandwidth(t *testing.T) {
	const n = 64
	// Deterministic scramble: bit-reversal-ish stride permutation.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i * 37) % n
	}
	ovs := chainOverlaps(n, perm)
	maxBefore, _ := Bandwidth(n, ovs, nil)
	if maxBefore <= 1 {
		t.Fatalf("scramble failed: bandwidth %d", maxBefore)
	}
	for _, mode := range []ReorderMode{ReorderRCM, ReorderFarthest} {
		order, report, err := ReorderReads(context.Background(), n, ovs, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !isPermutation(order, n) {
			t.Fatalf("mode %s: order is not a permutation", mode)
		}
		if report.Edges != n-1 {
			t.Errorf("mode %s: edges = %d, want %d", mode, report.Edges, n-1)
		}
		if report.MaxBefore != maxBefore {
			t.Errorf("mode %s: MaxBefore = %d, want %d", mode, report.MaxBefore, maxBefore)
		}
	}
	// A chain has an ordering of bandwidth 1 and RCM finds it (or very
	// nearly). Farthest deliberately anti-orders, so only RCM is held
	// to the locality bound.
	_, report, err := ReorderReads(context.Background(), n, ovs, ReorderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxAfter > 2 {
		t.Errorf("rcm: bandwidth after = %d, want ≤ 2 on a chain", report.MaxAfter)
	}
	// Farthest interleaves the chain's two ends (0, n−1, 1, n−2, …):
	// the first two picks are the chain endpoints.
	farOrder, _, err := ReorderReads(context.Background(), n, ovs, ReorderFarthest)
	if err != nil {
		t.Fatal(err)
	}
	first, second := farOrder[0], farOrder[1]
	endpoints := map[int]bool{perm[0]: true, perm[n-1]: true}
	if !endpoints[first] || !endpoints[second] {
		t.Errorf("farthest first picks = %d, %d; want the chain endpoints %d, %d",
			first, second, perm[0], perm[n-1])
	}
}

// TestReorderDisconnectedComponents: isolated reads and separate
// components must all appear exactly once in the order.
func TestReorderDisconnectedComponents(t *testing.T) {
	const n = 10
	ovs := []core.Overlap{
		{Target: 0, Query: 1, Score: 100},
		{Target: 1, Query: 2, Score: 100},
		{Target: 5, Query: 6, Score: 100},
		// Reads 3, 4, 7, 8, 9 are isolated.
	}
	for _, mode := range []ReorderMode{ReorderRCM, ReorderFarthest} {
		order, _, err := ReorderReads(context.Background(), n, ovs, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !isPermutation(order, n) {
			t.Errorf("mode %s: order %v is not a permutation of %d", mode, order, n)
		}
	}
}

func TestReorderOffIsNil(t *testing.T) {
	order, report, err := ReorderReads(context.Background(), 5, nil, ReorderOff)
	if order != nil || report != nil || err != nil {
		t.Errorf("ReorderOff: got %v, %v, %v; want all nil", order, report, err)
	}
}

func TestBandwidthIdentityVsReversal(t *testing.T) {
	const n = 8
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	ovs := chainOverlaps(n, perm)
	maxID, meanID := Bandwidth(n, ovs, nil)
	if maxID != 1 || meanID != 1 {
		t.Errorf("identity chain bandwidth = %d/%.1f, want 1/1", maxID, meanID)
	}
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	maxRev, _ := Bandwidth(n, ovs, rev)
	if maxRev != 1 {
		t.Errorf("reversed chain bandwidth = %d, want 1", maxRev)
	}
}
