package olc

import "darwin/internal/faults"

// Fault injection points for the assembly pipeline (armed only via
// faults.Setup; a single atomic load each when disarmed). One point
// per stage, fired at stage entry inside Assemble/Overlap — not inside
// the deprecated positional wrappers — so an injected error surfaces
// through the same error path a served job sees:
//
//   - olc/overlap fires before the all-vs-all overlap pass;
//   - olc/layout before the greedy merge;
//   - olc/consensus before read splicing;
//   - olc/polish before each polishing round.
var (
	fpOverlap   = faults.Default.Point("olc/overlap")
	fpLayout    = faults.Default.Point("olc/layout")
	fpConsensus = faults.Default.Point("olc/consensus")
	fpPolish    = faults.Default.Point("olc/polish")
)
