package olc

import (
	"testing"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// TestLayoutSimpleChain: three reads tiling a region with known
// overlaps must form one contig in the right order.
func TestLayoutSimpleChain(t *testing.T) {
	readLens := []int{1000, 1000, 1000}
	overlaps := []core.Overlap{
		// r1 starts 600 into r0; r2 starts 600 into r1.
		{Target: 0, Query: 1, TargetStart: 600, TargetEnd: 1000, QueryStart: 0, QueryEnd: 400, Score: 400},
		{Target: 1, Query: 2, TargetStart: 600, TargetEnd: 1000, QueryStart: 0, QueryEnd: 400, Score: 390},
	}
	l := BuildLayout(readLens, overlaps)
	if len(l.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(l.Contigs))
	}
	c := l.Contigs[0]
	if c.Len != 2200 {
		t.Errorf("contig length = %d, want 2200", c.Len)
	}
	wantOrder := []int{0, 1, 2}
	for i, p := range c.Placements {
		if p.Read != wantOrder[i] || p.Rev {
			t.Errorf("placement %d = %+v, want read %d forward", i, p, wantOrder[i])
		}
		if p.Offset != i*600 {
			t.Errorf("placement %d offset = %d, want %d", i, p.Offset, i*600)
		}
	}
}

// TestLayoutReverseOrientation: an overlap with a reverse-complement
// query must place the read reversed and still produce one contig.
func TestLayoutReverseOrientation(t *testing.T) {
	readLens := []int{1000, 1000}
	overlaps := []core.Overlap{
		{Target: 0, Query: 1, QueryRev: true, TargetStart: 600, TargetEnd: 1000, QueryStart: 0, QueryEnd: 400, Score: 400},
	}
	l := BuildLayout(readLens, overlaps)
	if len(l.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(l.Contigs))
	}
	c := l.Contigs[0]
	if len(c.Placements) != 2 {
		t.Fatalf("placements = %d", len(c.Placements))
	}
	// Read 1 is reversed relative to read 0 (or vice versa).
	if c.Placements[0].Rev == c.Placements[1].Rev {
		t.Errorf("orientations should differ: %+v", c.Placements)
	}
	if c.Len != 1600 {
		t.Errorf("contig length = %d, want 1600", c.Len)
	}
}

func TestLayoutSkipsCycles(t *testing.T) {
	readLens := []int{500, 500}
	overlaps := []core.Overlap{
		{Target: 0, Query: 1, TargetStart: 300, TargetEnd: 500, QueryStart: 0, QueryEnd: 200, Score: 200},
		// A second, conflicting overlap between the same pair must be
		// ignored (same fragment).
		{Target: 1, Query: 0, TargetStart: 400, TargetEnd: 500, QueryStart: 0, QueryEnd: 100, Score: 100},
	}
	l := BuildLayout(readLens, overlaps)
	if len(l.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(l.Contigs))
	}
	if got := len(l.Contigs[0].Placements); got != 2 {
		t.Errorf("placements = %d, want 2", got)
	}
}

func TestSpliceExactTiling(t *testing.T) {
	// A genome cut into overlapping error-free pieces must splice back
	// to exactly the genome.
	g, err := genome.Generate(genome.Config{Length: 3000, GC: 0.5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	reads := []dna.Seq{g.Seq[0:1200].Clone(), g.Seq[800:2200].Clone(), g.Seq[1800:3000].Clone()}
	readLens := []int{1200, 1400, 1200}
	overlaps := []core.Overlap{
		{Target: 0, Query: 1, TargetStart: 800, TargetEnd: 1200, QueryStart: 0, QueryEnd: 400, Score: 400},
		{Target: 1, Query: 2, TargetStart: 1000, TargetEnd: 1400, QueryStart: 0, QueryEnd: 400, Score: 399},
	}
	l := BuildLayout(readLens, overlaps)
	if len(l.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(l.Contigs))
	}
	contig := Splice(reads, l.Contigs[0])
	if contig.String() != g.Seq.String() {
		t.Errorf("spliced contig (len %d) differs from genome (len %d)", len(contig), len(g.Seq))
	}
}

// TestEndToEndAssembly: reads → Darwin overlaps → layout → splice, and
// the draft contig must align to the source genome along ~its whole
// length.
func TestEndToEndAssembly(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 20000, GC: 0.45, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 80, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	readLens := make([]int, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
		readLens[i] = len(reads[i].Seq)
	}
	ovCfg := core.DefaultConfig(11, 800, 20)
	ovCfg.SeedStride = 2
	ov, err := core.NewOverlapper(seqs, ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ov.FindOverlaps(500)
	l := BuildLayout(readLens, overlaps)
	st := Summarize(l)
	if st.Contigs > 20 {
		t.Errorf("assembly too fragmented: %s", st)
	}
	if st.LargestLen < 10000 {
		t.Errorf("largest contig %d, want ≥ 10000 (%s)", st.LargestLen, st)
	}
	// Draft accuracy: the largest contig must map back to the genome
	// with identity limited only by raw read error (~15%): edit
	// distance below ~25% of its length over a large prefix.
	contig := Splice(seqs, l.Contigs[0])
	probe := contig
	if len(probe) > 5000 {
		probe = probe[:5000]
	}
	// The contig's global orientation is arbitrary: compare both.
	dist, err := align.EditDistance(g.Seq, probe, align.EditInfix)
	if err != nil {
		t.Fatal(err)
	}
	distRC, err := align.EditDistance(g.Seq, dna.RevComp(probe), align.EditInfix)
	if err != nil {
		t.Fatal(err)
	}
	if distRC < dist {
		dist = distRC
	}
	if frac := float64(dist) / float64(len(probe)); frac > 0.25 {
		t.Errorf("draft contig error fraction %.2f vs genome, want ≤ 0.25", frac)
	}
}

func TestSummarizeStats(t *testing.T) {
	l := &Layout{Contigs: []Contig{
		{Len: 5000, Placements: make([]Placement, 5)},
		{Len: 3000, Placements: make([]Placement, 3)},
		{Len: 1000, Placements: make([]Placement, 1)},
	}}
	s := Summarize(l)
	if s.Contigs != 3 || s.TotalLen != 9000 || s.LargestLen != 5000 {
		t.Errorf("stats = %+v", s)
	}
	if s.N50 != 5000 {
		t.Errorf("N50 = %d, want 5000", s.N50)
	}
	if s.SingletonCnt != 1 || s.ReadsPlaced != 9 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}
