package olc

import (
	"context"
	"sort"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// tPolish is outside the stage/ namespace: polishing internally
// re-enters the filter/align stage timers, so counting it as its own
// stage would double-book that time.
var tPolish = obs.Default.Timer("olc/polish")

// Polish performs the consensus phase of OLC assembly (Section 2:
// "the final DNA sequence is derived by taking a consensus of reads,
// which corrects the vast majority of read errors"): reads are mapped
// back onto the draft contig with the Darwin engine, and each draft
// position is re-called by majority vote over the aligned columns —
// substitutions, deletions, and insertions alike.
//
// With coverage C ≳ 10 the polished contig's error rate drops from the
// raw read rate (~15% for PacBio) to well under 1%, mirroring the
// consensus-accuracy argument of Section 2.
//
// Deprecated: use PolishContext, which adds cooperative cancellation.
// This wrapper is bit-identical to the context form.
func Polish(draft dna.Seq, reads []dna.Seq, cfg core.Config) (dna.Seq, error) {
	return PolishContext(context.Background(), draft, reads, cfg)
}

// PolishContext is Polish with cooperative cancellation: ctx is
// checked between reads (each read's remap is the unit of work), and
// cancellation returns ctx.Err() with a nil sequence.
func PolishContext(ctx context.Context, draft dna.Seq, reads []dna.Seq, cfg core.Config) (dna.Seq, error) {
	defer tPolish.Time()()
	defer obs.Trace.Start("olc.polish")()
	engine, err := core.New(draft, cfg)
	if err != nil {
		return nil, err
	}

	type column struct {
		base [4]int32         // votes for A/C/G/T at this draft position
		del  int32            // votes to delete this position
		ins  map[string]int32 // votes for an insertion after this position
		cov  int32            // reads covering this column
	}
	cols := make([]column, len(draft))

	for _, read := range reads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		alns, _ := engine.MapRead(read)
		best := core.Best(alns)
		if best == nil {
			continue
		}
		q := read
		if best.Reverse {
			q = dna.RevComp(read)
		}
		i, j := best.Result.RefStart, best.Result.QueryStart
		for _, s := range best.Result.Cigar {
			switch s.Op {
			case 'M':
				for x := 0; x < s.Len; x++ {
					c := &cols[i+x]
					c.cov++
					if code := dna.Code(q[j+x]); code < 4 {
						c.base[code]++
					}
				}
				i += s.Len
				j += s.Len
			case 'D':
				for x := 0; x < s.Len; x++ {
					c := &cols[i+x]
					c.cov++
					c.del++
				}
				i += s.Len
			case 'I':
				if i > 0 {
					c := &cols[i-1]
					if c.ins == nil {
						c.ins = make(map[string]int32)
					}
					c.ins[string(q[j:j+s.Len])]++
				}
				j += s.Len
			}
		}
	}

	out := make(dna.Seq, 0, len(draft))
	for i := range cols {
		c := &cols[i]
		if c.cov == 0 {
			out = append(out, draft[i])
			continue
		}
		// Deletion call: like insertions below, a third of the
		// coverage suffices — deleting one copy of a homopolymer run
		// is placed at different columns by different reads, so a
		// true extra base's votes split across the run while spurious
		// votes stay near the per-read deletion rate (~4.5%).
		if c.del*3 > c.cov {
			// Position dropped; insertions recorded after it still apply.
		} else {
			bestBase, bestVotes := draft[i], int32(0)
			for code, v := range c.base {
				if v > bestVotes {
					bestVotes = v
					bestBase = dna.Base(byte(code))
				}
			}
			if bestVotes == 0 {
				bestBase = draft[i]
			}
			out = append(out, bestBase)
		}
		if len(c.ins) > 0 {
			// The most-voted insertion wins if a strict majority of
			// covering reads saw an insertion here.
			var total int32
			type iv struct {
				s string
				n int32
			}
			var ivs []iv
			for s, n := range c.ins {
				total += n
				ivs = append(ivs, iv{s, n})
			}
			// A third of the coverage suffices: alignment-placement
			// ambiguity splits a true insertion's votes across
			// neighbouring columns, while spurious read insertions at
			// any one site stay near the per-read insertion rate
			// (~9% for PacBio).
			if total*3 > c.cov {
				sort.Slice(ivs, func(a, b int) bool {
					if ivs[a].n != ivs[b].n {
						return ivs[a].n > ivs[b].n
					}
					return ivs[a].s < ivs[b].s
				})
				out = append(out, dna.Seq(ivs[0].s)...)
			}
		}
	}
	return out, nil
}
