package olc

import (
	"testing"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// TestPolishReducesError: consensus over ~12× coverage must cut the
// draft's raw-read error rate by an order of magnitude (Section 2's
// consensus-accuracy argument).
func TestPolishReducesError(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 15000, GC: 0.45, Seed: 171})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g.Seq, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 2000, Coverage: 12, Seed: 172,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	readLens := make([]int, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
		readLens[i] = len(reads[i].Seq)
	}
	ovCfg := core.DefaultConfig(11, 700, 20)
	ovCfg.SeedStride = 2
	ovp, err := core.NewOverlapper(seqs, ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ovp.FindOverlaps(500)
	layout := BuildLayout(readLens, overlaps)
	draft := Splice(seqs, layout.Contigs[0])
	if len(draft) < 12000 {
		t.Fatalf("draft too short: %d", len(draft))
	}

	errRate := func(s dna.Seq) float64 {
		d1, err := align.EditDistance(g.Seq, s, align.EditInfix)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := align.EditDistance(g.Seq, dna.RevComp(s), align.EditInfix)
		if err != nil {
			t.Fatal(err)
		}
		return float64(min(d1, d2)) / float64(len(s))
	}
	draftErr := errRate(draft)
	if draftErr < 0.08 {
		t.Fatalf("test setup: draft error %.3f unexpectedly low", draftErr)
	}
	// Two polishing rounds, as consensus pipelines iterate: the first
	// round's cleaner draft sharpens the second round's alignments.
	polished := draft
	for round := 0; round < 2; round++ {
		polished, err = Polish(polished, seqs, core.DefaultConfig(11, 700, 20))
		if err != nil {
			t.Fatal(err)
		}
	}
	polishedErr := errRate(polished)
	t.Logf("draft error %.3f -> polished error %.4f", draftErr, polishedErr)
	if polishedErr > draftErr/5 {
		t.Errorf("polish only reduced error %.3f -> %.3f, want ≥ 5×", draftErr, polishedErr)
	}
	if polishedErr > 0.03 {
		t.Errorf("polished error %.4f, want ≤ 0.03", polishedErr)
	}
}

func TestPolishPreservesPerfectDraft(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 8000, GC: 0.5, Seed: 173})
	if err != nil {
		t.Fatal(err)
	}
	// Error-free "reads" tiling the genome.
	var reads []dna.Seq
	for lo := 0; lo+2000 <= len(g.Seq); lo += 800 {
		reads = append(reads, g.Seq[lo:lo+2000].Clone())
	}
	polished, err := Polish(g.Seq, reads, core.DefaultConfig(11, 600, 20))
	if err != nil {
		t.Fatal(err)
	}
	if polished.String() != g.Seq.String() {
		d, _ := align.EditDistance(g.Seq, polished, align.EditGlobal)
		t.Errorf("perfect draft changed by polish (edit distance %d)", d)
	}
}

func TestPolishErrors(t *testing.T) {
	if _, err := Polish(nil, nil, core.DefaultConfig(11, 600, 20)); err == nil {
		t.Error("empty draft should error")
	}
}
