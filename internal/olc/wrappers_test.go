package olc

import (
	"bytes"
	"context"
	"testing"

	"darwin/internal/core"
)

// TestBuildLayoutWrapperIdentical: the deprecated positional
// BuildLayout must return the same layout as BuildLayoutContext with a
// background context — the wrapper contract.
func TestBuildLayoutWrapperIdentical(t *testing.T) {
	seqs := testReads(t, 20000, 50)
	readLens := make([]int, len(seqs))
	for i := range seqs {
		readLens[i] = len(seqs[i])
	}
	ovp, err := core.NewOverlapper(seqs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ovp.FindOverlaps(500)

	old := BuildLayout(readLens, overlaps)
	now, err := BuildLayoutContext(context.Background(), readLens, overlaps)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Contigs) != len(now.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(old.Contigs), len(now.Contigs))
	}
	for i := range old.Contigs {
		a, b := old.Contigs[i], now.Contigs[i]
		if a.Len != b.Len || len(a.Placements) != len(b.Placements) {
			t.Fatalf("contig %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Placements {
			if a.Placements[j] != b.Placements[j] {
				t.Fatalf("contig %d placement %d differs: %+v vs %+v",
					i, j, a.Placements[j], b.Placements[j])
			}
		}
	}
}

// TestPolishWrapperIdentical: the deprecated Polish must return the
// same sequence as PolishContext with a background context.
func TestPolishWrapperIdentical(t *testing.T) {
	seqs := testReads(t, 15000, 40)
	cfg := testConfig()
	asm, err := Assemble(context.Background(), seqs,
		WithConfig(cfg), WithMinOverlap(1000), WithPolishRounds(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Contigs) == 0 {
		t.Fatal("no contigs to polish")
	}
	draft := asm.Contigs[0].Seq

	old, err := Polish(draft, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now, err := PolishContext(context.Background(), draft, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, now) {
		t.Error("Polish and PolishContext outputs differ")
	}
}

// TestContextWrappersCancel: the context variants must honour an
// already-cancelled context.
func TestContextWrappersCancel(t *testing.T) {
	seqs := testReads(t, 15000, 40)
	readLens := make([]int, len(seqs))
	for i := range seqs {
		readLens[i] = len(seqs[i])
	}
	ovp, err := core.NewOverlapper(seqs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ovp.FindOverlaps(500)
	if len(overlaps) == 0 {
		t.Fatal("no overlaps for cancellation probe")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildLayoutContext(ctx, readLens, overlaps); err == nil {
		t.Error("BuildLayoutContext ignored cancelled context")
	}
	if _, err := PolishContext(ctx, seqs[0], seqs, testConfig()); err == nil {
		t.Error("PolishContext ignored cancelled context")
	}
	if _, err := Assemble(ctx, seqs, WithConfig(testConfig())); err == nil {
		t.Error("Assemble ignored cancelled context")
	}
}
