package olc

import (
	"context"
	"fmt"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

var tAssemble = obs.Default.Timer("olc/assemble")

// Settings is the resolved configuration of an assembly pipeline run.
// Callers use Options; Settings is exported so the server can report
// the configuration a job ran with.
type Settings struct {
	// Config is the Darwin engine configuration used for the overlap
	// and polish stages.
	Config core.Config
	// MinOverlap is the nominal minimum overlap length. Overlap uses it
	// directly as the reporting threshold; Assemble detects at half the
	// nominal value (matching the historical CLI behaviour) so clipped
	// near-threshold overlaps still inform layout.
	MinOverlap int
	// PolishRounds is how many consensus polishing rounds each
	// multi-read contig receives (0 disables polishing).
	PolishRounds int
	// MinContig drops contigs shorter than this from the output.
	MinContig int
	// Reorder selects the overlap-graph read-reordering pass applied
	// before layout (ReorderOff leaves input order).
	Reorder ReorderMode
	// Progress, when non-nil, receives per-stage progress: stage is one
	// of "overlap", "layout", "consensus", "polish".
	Progress func(stage string, done, total int)
	// CheckpointEvery is the overlap-stage checkpoint cadence in reads
	// (0 disables periodic checkpoints).
	CheckpointEvery int
	// Resume, when non-nil, restarts the overlap stage from a
	// checkpoint instead of read zero.
	Resume *core.OverlapCheckpoint
	// SaveCheckpoint receives overlap-stage checkpoints (periodic, and
	// once at the cancellation boundary). A non-nil return aborts the
	// run; best-effort persistence swallows errors in the callback.
	SaveCheckpoint func(core.OverlapCheckpoint) error
	// Overlapper, when non-nil, is a pre-built overlap engine reused
	// instead of indexing reads again — for multi-pass callers that
	// already paid for the table build.
	Overlapper *core.Overlapper
}

// Option adjusts one assembly pipeline setting, mirroring the
// core.MapOption shape: zero options mean the documented defaults.
type Option func(*Settings)

// DefaultSettings returns the pipeline defaults: the engine tuned as
// the assembly CLIs tune it (k=12, N=1300, h=24, stride 4), a 1 kb
// nominal minimum overlap, two polishing rounds, no reordering.
func DefaultSettings() Settings {
	cfg := core.DefaultConfig(12, 1300, 24)
	cfg.SeedStride = 4
	return Settings{Config: cfg, MinOverlap: 1000, PolishRounds: 2}
}

// ResolveOptions folds options over DefaultSettings.
func ResolveOptions(options []Option) Settings {
	s := DefaultSettings()
	for _, opt := range options {
		opt(&s)
	}
	return s
}

// WithConfig sets the Darwin engine configuration.
func WithConfig(cfg core.Config) Option {
	return func(s *Settings) { s.Config = cfg }
}

// WithMinOverlap sets the nominal minimum overlap length.
func WithMinOverlap(n int) Option {
	return func(s *Settings) { s.MinOverlap = n }
}

// WithPolishRounds sets the consensus polishing round count.
func WithPolishRounds(n int) Option {
	return func(s *Settings) { s.PolishRounds = n }
}

// WithMinContig drops output contigs shorter than n.
func WithMinContig(n int) Option {
	return func(s *Settings) { s.MinContig = n }
}

// WithReorder enables the overlap-graph read-reordering pass before
// layout. Reordering changes the layout stage's memory access pattern,
// never its output: contigs are identical under every mode.
func WithReorder(mode ReorderMode) Option {
	return func(s *Settings) { s.Reorder = mode }
}

// WithProgress installs a per-stage progress callback.
func WithProgress(fn func(stage string, done, total int)) Option {
	return func(s *Settings) { s.Progress = fn }
}

// WithCheckpoint configures overlap-stage checkpointing: save receives
// a snapshot every `every` reads and at the cancellation boundary;
// resume (may be nil) restarts a prior run.
func WithCheckpoint(every int, resume *core.OverlapCheckpoint, save func(core.OverlapCheckpoint) error) Option {
	return func(s *Settings) {
		s.CheckpointEvery = every
		s.Resume = resume
		s.SaveCheckpoint = save
	}
}

// WithOverlapper reuses a pre-built overlap engine; reads passed to
// Overlap/Assemble must be the engine's own read set.
func WithOverlapper(o *core.Overlapper) Option {
	return func(s *Settings) { s.Overlapper = o }
}

// Assembly is the result of a full pipeline run.
type Assembly struct {
	// Overlaps is the deduplicated overlap set layout consumed.
	Overlaps []core.Overlap
	// OverlapStats covers the overlap work done by this run (a resumed
	// run reports only the post-checkpoint remainder).
	OverlapStats core.OverlapStats
	// Layout is the read placement that produced the contigs.
	Layout *Layout
	// Contigs holds the polished contig sequences, named contig_<i> by
	// layout index with reads=/len= descriptions — the historical
	// darwin-assemble output shape.
	Contigs []dna.Record
	// Stats summarizes the layout (pre-MinContig filtering).
	Stats Stats
	// Reorder reports the read-reordering pass, nil when it was off.
	Reorder *ReorderReport
}

// progress is a nil-safe stage progress call.
func (s *Settings) progress(stage string, done, total int) {
	if s.Progress != nil {
		s.Progress(stage, done, total)
	}
}

// overlapStage runs (or resumes, or skips) the overlap pass.
func overlapStage(ctx context.Context, reads []dna.Seq, s *Settings, minOverlap int) ([]core.Overlap, core.OverlapStats, error) {
	sctx, span := obs.StartSpan(ctx, "olc/overlap")
	defer span.End()
	span.SetAttr("reads", int64(len(reads)))
	if err := fpOverlap.Fire(); err != nil {
		return nil, core.OverlapStats{}, err
	}
	if s.Resume.Done(len(reads)) {
		// The checkpoint already covers every read: the pass is a
		// no-op and the checkpointed overlaps are the final set.
		span.SetAttr("resumed_complete", 1)
		s.progress("overlap", len(reads), len(reads))
		return append([]core.Overlap(nil), s.Resume.Overlaps...), core.OverlapStats{}, nil
	}
	ovp := s.Overlapper
	if ovp == nil {
		var err error
		ovp, err = core.NewOverlapper(reads, s.Config)
		if err != nil {
			return nil, core.OverlapStats{}, err
		}
	}
	if s.Resume != nil {
		span.SetAttr("resume_read", int64(s.Resume.NextRead))
	}
	overlaps, stats, err := ovp.Run(sctx, core.OverlapRun{
		MinOverlap:      minOverlap,
		Resume:          s.Resume,
		CheckpointEvery: s.CheckpointEvery,
		Save:            s.SaveCheckpoint,
		Progress: func(done, total int) {
			s.progress("overlap", done, total)
		},
	})
	span.SetAttr("overlaps", int64(len(overlaps)))
	return overlaps, stats, err
}

// Overlap runs only the overlap stage: every read against every other,
// both strands, deduplicated to the best overlap per (pair,
// orientation). MinOverlap is used directly as the reporting
// threshold. Checkpoint options apply; layout/consensus options are
// ignored.
func Overlap(ctx context.Context, reads []dna.Seq, options ...Option) ([]core.Overlap, core.OverlapStats, error) {
	s := ResolveOptions(options)
	return overlapStage(ctx, reads, &s, s.MinOverlap)
}

// Assemble runs the full overlap-layout-consensus pipeline under ctx:
// all-vs-all overlap (resumable via WithCheckpoint), an optional
// overlap-graph read-reordering pass (WithReorder), greedy layout,
// read splicing, and majority-vote polishing. It subsumes the
// positional BuildLayout/Splice/Polish free functions; each stage is
// traced as a child span (olc/overlap, olc/layout, olc/consensus,
// olc/polish) and guarded by a fault point of the same name.
func Assemble(ctx context.Context, reads []dna.Seq, options ...Option) (*Assembly, error) {
	defer tAssemble.Time()()
	s := ResolveOptions(options)
	readLens := make([]int, len(reads))
	for i := range reads {
		readLens[i] = len(reads[i])
	}

	// Overlap. The detection threshold is half the nominal minimum:
	// reference-side clipping at read boundaries trims true overlaps,
	// so detecting at half keeps near-threshold overlaps available to
	// layout (the historical darwin-assemble behaviour).
	overlaps, ostats, err := overlapStage(ctx, reads, &s, s.MinOverlap/2)
	if err != nil {
		return nil, err
	}
	asm := &Assembly{Overlaps: overlaps, OverlapStats: ostats}

	// Layout, optionally preceded by the reorder pass. The permutation
	// only changes which cache lines the merge walks; buildLayout keys
	// every decision on original read ids, so contigs are identical
	// under every mode (tested property).
	{
		lctx, span := obs.StartSpan(ctx, "olc/layout")
		span.SetAttr("overlaps", int64(len(overlaps)))
		if err := fpLayout.Fire(); err != nil {
			span.End()
			return nil, err
		}
		s.progress("layout", 0, 1)
		order, report, err := ReorderReads(lctx, len(reads), overlaps, s.Reorder)
		if err != nil {
			span.End()
			return nil, err
		}
		asm.Reorder = report
		if report != nil {
			span.SetLabel("reorder", report.Mode.String())
			span.SetAttr("bandwidth_before", int64(report.MaxBefore))
			span.SetAttr("bandwidth_after", int64(report.MaxAfter))
		}
		layout, err := buildLayout(lctx, readLens, overlaps, order)
		if err != nil {
			span.End()
			return nil, err
		}
		asm.Layout = layout
		asm.Stats = Summarize(layout)
		span.SetAttr("contigs", int64(len(layout.Contigs)))
		span.End()
		s.progress("layout", 1, 1)
	}

	// Consensus: splice reads along each surviving contig.
	type draft struct {
		ci  int
		seq dna.Seq
	}
	var drafts []draft
	{
		_, span := obs.StartSpan(ctx, "olc/consensus")
		if err := fpConsensus.Fire(); err != nil {
			span.End()
			return nil, err
		}
		kept := 0
		for _, c := range asm.Layout.Contigs {
			if c.Len >= s.MinContig {
				kept++
			}
		}
		done := 0
		for ci, c := range asm.Layout.Contigs {
			if c.Len < s.MinContig {
				continue
			}
			if err := ctx.Err(); err != nil {
				span.End()
				return nil, err
			}
			drafts = append(drafts, draft{ci: ci, seq: Splice(reads, c)})
			done++
			s.progress("consensus", done, kept)
		}
		span.SetAttr("contigs", int64(len(drafts)))
		span.End()
	}

	// Polish: each multi-read contig gets PolishRounds of majority-vote
	// recall against the read set.
	{
		pctx, span := obs.StartSpan(ctx, "olc/polish")
		totalRounds := 0
		for _, d := range drafts {
			if len(asm.Layout.Contigs[d.ci].Placements) > 1 {
				totalRounds += s.PolishRounds
			}
		}
		span.SetAttr("rounds", int64(totalRounds))
		done := 0
		for i := range drafts {
			d := &drafts[i]
			placements := len(asm.Layout.Contigs[d.ci].Placements)
			for round := 0; round < s.PolishRounds && placements > 1; round++ {
				if err := fpPolish.Fire(); err != nil {
					span.End()
					return nil, err
				}
				polished, err := PolishContext(pctx, d.seq, reads, s.Config)
				if err != nil {
					span.End()
					return nil, err
				}
				d.seq = polished
				done++
				s.progress("polish", done, totalRounds)
			}
		}
		span.End()
	}

	for _, d := range drafts {
		asm.Contigs = append(asm.Contigs, dna.Record{
			Name: fmt.Sprintf("contig_%d", d.ci),
			Desc: fmt.Sprintf("reads=%d len=%d", len(asm.Layout.Contigs[d.ci].Placements), len(d.seq)),
			Seq:  d.seq,
		})
	}
	return asm, nil
}
