package olc

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// testReads simulates a small long-read set with a known genome.
func testReads(t *testing.T, genomeLen, nReads int) []dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: genomeLen, GC: 0.45, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, nReads, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	return seqs
}

func testConfig() core.Config {
	cfg := core.DefaultConfig(11, 800, 20)
	cfg.SeedStride = 2
	return cfg
}

// contigsEqual reports whether two contig sets are byte-identical,
// including names and descriptions.
func contigsEqual(a, b []dna.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Desc != b[i].Desc || !bytes.Equal(a[i].Seq, b[i].Seq) {
			return false
		}
	}
	return true
}

// TestAssembleMatchesLegacyPipeline: the option-based Assemble must
// reproduce the positional BuildLayout/Splice/Polish pipeline (the
// historical darwin-assemble flow) byte for byte.
func TestAssembleMatchesLegacyPipeline(t *testing.T) {
	seqs := testReads(t, 20000, 60)
	cfg := testConfig()
	const minOverlap = 1000
	const polishRounds = 1

	asm, err := Assemble(context.Background(), seqs,
		WithConfig(cfg), WithMinOverlap(minOverlap), WithPolishRounds(polishRounds))
	if err != nil {
		t.Fatal(err)
	}

	// Legacy path: detect at half the nominal minimum, positional calls.
	ovp, err := core.NewOverlapper(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ovp.FindOverlaps(minOverlap / 2)
	readLens := make([]int, len(seqs))
	for i := range seqs {
		readLens[i] = len(seqs[i])
	}
	layout := BuildLayout(readLens, overlaps)
	var legacy []dna.Record
	for ci, contig := range layout.Contigs {
		seq := Splice(seqs, contig)
		for round := 0; round < polishRounds && len(contig.Placements) > 1; round++ {
			polished, err := Polish(seq, seqs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq = polished
		}
		legacy = append(legacy, dna.Record{
			Name: fmt.Sprintf("contig_%d", ci),
			Desc: fmt.Sprintf("reads=%d len=%d", len(contig.Placements), len(seq)),
			Seq:  seq,
		})
	}

	if !contigsEqual(asm.Contigs, legacy) {
		t.Fatalf("Assemble contigs differ from legacy pipeline: %d vs %d contigs",
			len(asm.Contigs), len(legacy))
	}
}

// TestAssembleCheckpointResume: a run resumed from any mid-overlap
// checkpoint must produce byte-identical contigs to an uninterrupted
// run — the property the job manager's kill-and-resume flow rests on.
func TestAssembleCheckpointResume(t *testing.T) {
	seqs := testReads(t, 20000, 60)
	cfg := testConfig()
	opts := []Option{WithConfig(cfg), WithMinOverlap(1000), WithPolishRounds(0)}

	var ckpts []core.OverlapCheckpoint
	full, err := Assemble(context.Background(), seqs,
		append(opts, WithCheckpoint(8, nil, func(c core.OverlapCheckpoint) error {
			ckpts = append(ckpts, c)
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints written")
	}

	for _, ci := range []int{0, len(ckpts) / 2, len(ckpts) - 1} {
		resume := ckpts[ci]
		resumed, err := Assemble(context.Background(), seqs,
			append(opts, WithCheckpoint(0, &resume, nil))...)
		if err != nil {
			t.Fatal(err)
		}
		if !contigsEqual(full.Contigs, resumed.Contigs) {
			t.Errorf("resume from checkpoint %d (next_read=%d): contigs differ from full run",
				ci, resume.NextRead)
		}
	}
}

// TestAssembleCancelSavesBoundaryCheckpoint: cancelling mid-overlap
// must save a checkpoint at the read boundary, and resuming from it
// must complete to the same contigs as an uninterrupted run.
func TestAssembleCancelSavesBoundaryCheckpoint(t *testing.T) {
	seqs := testReads(t, 20000, 60)
	cfg := testConfig()
	opts := []Option{WithConfig(cfg), WithMinOverlap(1000), WithPolishRounds(0)}

	full, err := Assemble(context.Background(), seqs, opts...)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var last *core.OverlapCheckpoint
	_, err = Assemble(ctx, seqs,
		append(opts,
			WithProgress(func(stage string, done, total int) {
				if stage == "overlap" && done == total/2 {
					cancel()
				}
			}),
			WithCheckpoint(0, nil, func(c core.OverlapCheckpoint) error {
				last = &c
				return nil
			}))...)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if last == nil {
		t.Fatal("no boundary checkpoint saved on cancel")
	}
	if last.NextRead == 0 || last.NextRead >= len(seqs) {
		t.Fatalf("boundary checkpoint next_read = %d, want mid-run (0, %d)", last.NextRead, len(seqs))
	}

	resumed, err := Assemble(context.Background(), seqs,
		append(opts, WithCheckpoint(0, last, nil))...)
	if err != nil {
		t.Fatal(err)
	}
	if !contigsEqual(full.Contigs, resumed.Contigs) {
		t.Error("contigs after cancel+resume differ from uninterrupted run")
	}
}

// TestAssembleReorderInvariance: reordering changes the layout stage's
// iteration order, never its output — contigs must be byte-identical
// under every mode.
func TestAssembleReorderInvariance(t *testing.T) {
	seqs := testReads(t, 20000, 60)
	cfg := testConfig()
	opts := []Option{WithConfig(cfg), WithMinOverlap(1000), WithPolishRounds(0)}

	base, err := Assemble(context.Background(), seqs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if base.Reorder != nil {
		t.Error("Reorder report non-nil with reordering off")
	}
	for _, mode := range []ReorderMode{ReorderRCM, ReorderFarthest} {
		asm, err := Assemble(context.Background(), seqs, append(opts, WithReorder(mode))...)
		if err != nil {
			t.Fatal(err)
		}
		if !contigsEqual(base.Contigs, asm.Contigs) {
			t.Errorf("mode %s: contigs differ from unordered run", mode)
		}
		r := asm.Reorder
		if r == nil {
			t.Fatalf("mode %s: nil reorder report", mode)
		}
		if r.Mode != mode {
			t.Errorf("report mode = %s, want %s", r.Mode, mode)
		}
		if r.Edges == 0 {
			t.Errorf("mode %s: zero edges in report", mode)
		}
		if r.MaxAfter > r.MaxBefore {
			t.Logf("mode %s: bandwidth grew %d -> %d (allowed, but unusual)", mode, r.MaxBefore, r.MaxAfter)
		}
	}
}

// TestAssembleWithOverlapperReuse: a pre-built engine must give the
// same result as letting Assemble build its own.
func TestAssembleWithOverlapperReuse(t *testing.T) {
	seqs := testReads(t, 20000, 60)
	cfg := testConfig()
	opts := []Option{WithConfig(cfg), WithMinOverlap(1000), WithPolishRounds(0)}

	base, err := Assemble(context.Background(), seqs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ovp, err := core.NewOverlapper(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := Assemble(context.Background(), seqs, append(opts, WithOverlapper(ovp))...)
	if err != nil {
		t.Fatal(err)
	}
	if !contigsEqual(base.Contigs, reused.Contigs) {
		t.Error("contigs differ when reusing a pre-built overlapper")
	}
}

// TestOverlapResumedComplete: a checkpoint covering every read makes
// the overlap stage a pure replay of the checkpointed overlaps.
func TestOverlapResumedComplete(t *testing.T) {
	seqs := testReads(t, 20000, 40)
	cfg := testConfig()

	overlaps, _, err := Overlap(context.Background(), seqs, WithConfig(cfg), WithMinOverlap(500))
	if err != nil {
		t.Fatal(err)
	}
	done := &core.OverlapCheckpoint{NextRead: len(seqs), Overlaps: overlaps}
	replayed, _, err := Overlap(context.Background(), seqs,
		WithConfig(cfg), WithMinOverlap(500), WithCheckpoint(0, done, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(overlaps) {
		t.Fatalf("replayed %d overlaps, want %d", len(replayed), len(overlaps))
	}
	for i := range overlaps {
		if overlaps[i] != replayed[i] {
			t.Fatalf("overlap %d differs after replay", i)
		}
	}
}

// TestDefaultSettingsShape guards the documented defaults.
func TestDefaultSettingsShape(t *testing.T) {
	s := DefaultSettings()
	if s.MinOverlap != 1000 || s.PolishRounds != 2 || s.Reorder != ReorderOff {
		t.Errorf("defaults = %+v", s)
	}
	if s.Config.SeedK != 12 || s.Config.SeedStride != 4 {
		t.Errorf("default config = %+v", s.Config)
	}
}

// TestAssembleProgressStages: every stage must report progress ending
// at done == total.
func TestAssembleProgressStages(t *testing.T) {
	seqs := testReads(t, 20000, 40)
	final := map[string][2]int{}
	_, err := Assemble(context.Background(), seqs,
		WithConfig(testConfig()), WithMinOverlap(1000), WithPolishRounds(1),
		WithProgress(func(stage string, done, total int) {
			final[stage] = [2]int{done, total}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"overlap", "layout", "consensus"} {
		p, ok := final[stage]
		if !ok {
			t.Errorf("stage %q reported no progress", stage)
			continue
		}
		if p[0] != p[1] {
			t.Errorf("stage %q finished at %d/%d", stage, p[0], p[1])
		}
	}
}
