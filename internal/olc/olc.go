// Package olc implements the layout and consensus phases of
// overlap-layout-consensus assembly (Section 2 of the paper): Darwin
// accelerates the overlap phase, which dominates OLC runtime; this
// package turns its overlaps into draft contigs so the de novo
// pipeline is end-to-end runnable.
//
// Layout is a greedy merge over overlaps (highest score first): each
// read starts as its own contig fragment; an overlap between reads in
// different fragments rigidly places one fragment — translation plus,
// when orientations disagree, a reflection — into the other's
// coordinate frame. Cycles (overlaps within one fragment) are skipped.
// Consensus splices reads at overlap boundaries, the classical draft
// construction that long-read pipelines later polish.
package olc

import (
	"fmt"
	"sort"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Layout is a disjoint pipeline stage; polishing re-runs the engine's
// filter and align stages internally, so its timer deliberately lives
// outside the stage/ namespace (see package obs) to keep stage sums
// honest.
var (
	tLayout  = obs.Default.Timer("stage/layout")
	cContigs = obs.Default.Counter("olc/contigs")
)

// Placement positions one read inside a contig frame.
type Placement struct {
	// Read is the read index.
	Read int
	// Rev is true if the read participates reverse-complemented.
	Rev bool
	// Offset is the read's start position in contig coordinates.
	Offset int
}

// Contig is an ordered list of placements, sorted by offset and
// normalized to start at 0.
type Contig struct {
	Placements []Placement
	// Len is the contig extent implied by the placements.
	Len int
}

// Layout groups reads into contigs, largest first.
type Layout struct {
	Contigs []Contig
}

// fragment is a mutable contig under construction.
type fragment struct {
	placements []Placement
}

// span returns the fragment's [lo, hi) extent in its own frame.
func (f *fragment) span(readLens []int) (int, int) {
	lo, hi := 1<<60, -(1 << 60)
	for _, p := range f.placements {
		if p.Offset < lo {
			lo = p.Offset
		}
		if end := p.Offset + readLens[p.Read]; end > hi {
			hi = end
		}
	}
	return lo, hi
}

// BuildLayout constructs contigs from overlaps. readLens gives each
// read's length.
func BuildLayout(readLens []int, overlaps []core.Overlap) *Layout {
	defer tLayout.Time()()
	defer obs.Trace.Start("olc.layout")()
	ovs := append([]core.Overlap(nil), overlaps...)
	sort.Slice(ovs, func(x, y int) bool { return ovs[x].Score > ovs[y].Score })

	frags := make([]*fragment, len(readLens))
	fragOf := make([]*fragment, len(readLens))
	where := make([]Placement, len(readLens)) // read's placement in its fragment frame
	for i := range readLens {
		f := &fragment{placements: []Placement{{Read: i}}}
		frags[i] = f
		fragOf[i] = f
		where[i] = Placement{Read: i}
	}

	for i := range ovs {
		o := &ovs[i]
		a, b := o.Target, o.Query
		fa, fb := fragOf[a], fragOf[b]
		if fa == fb {
			continue // already placed relative to each other
		}
		lenA, lenB := readLens[a], readLens[b]
		pa, pb := where[a], where[b]

		// Place oriented b relative to a-forward: b starts at
		// e.offset = TargetStart − QueryStart in a's forward frame.
		eOffset := o.TargetStart - o.QueryStart
		// Map into fa's frame through a's placement there.
		var wantRev bool
		var wantOff int
		if !pa.Rev {
			wantRev = o.QueryRev
			wantOff = pa.Offset + eOffset
		} else {
			// a is reversed in fa: reflect b's interval through a.
			wantRev = !o.QueryRev
			wantOff = pa.Offset + lenA - eOffset - lenB
		}

		// Rigidly move fb so that b lands at (wantRev, wantOff).
		if pb.Rev != wantRev {
			// Reflect fb in place around its own span.
			lo, hi := fb.span(readLens)
			for j := range fb.placements {
				p := &fb.placements[j]
				p.Rev = !p.Rev
				p.Offset = lo + hi - (p.Offset + readLens[p.Read])
				where[p.Read] = *p
			}
			pb = where[b]
		}
		d := wantOff - pb.Offset
		// Merge smaller fragment into larger.
		if len(fb.placements) > len(fa.placements) {
			// Instead translate fa so a keeps its relation: shifting
			// the union by a constant is free, so translate fa by −d
			// and merge into fb.
			for j := range fa.placements {
				p := &fa.placements[j]
				p.Offset -= d
				where[p.Read] = *p
				fragOf[p.Read] = fb
			}
			fb.placements = append(fb.placements, fa.placements...)
			fa.placements = nil
		} else {
			for j := range fb.placements {
				p := &fb.placements[j]
				p.Offset += d
				where[p.Read] = *p
				fragOf[p.Read] = fa
			}
			fa.placements = append(fa.placements, fb.placements...)
			fb.placements = nil
		}
	}

	layout := &Layout{}
	for _, f := range frags {
		if len(f.placements) == 0 {
			continue
		}
		ps := append([]Placement(nil), f.placements...)
		sort.Slice(ps, func(x, y int) bool {
			if ps[x].Offset != ps[y].Offset {
				return ps[x].Offset < ps[y].Offset
			}
			return ps[x].Read < ps[y].Read
		})
		base := ps[0].Offset
		length := 0
		for j := range ps {
			ps[j].Offset -= base
			if end := ps[j].Offset + readLens[ps[j].Read]; end > length {
				length = end
			}
		}
		layout.Contigs = append(layout.Contigs, Contig{Placements: ps, Len: length})
	}
	sort.Slice(layout.Contigs, func(a, b int) bool {
		if layout.Contigs[a].Len != layout.Contigs[b].Len {
			return layout.Contigs[a].Len > layout.Contigs[b].Len
		}
		return layout.Contigs[a].Placements[0].Read < layout.Contigs[b].Placements[0].Read
	})
	cContigs.Add(int64(len(layout.Contigs)))
	return layout
}

// Splice builds a draft contig sequence by walking placements in
// order and appending each read's not-yet-covered suffix. Contained
// reads are skipped; layout gaps (no overlap coverage) fall back to
// appending the whole read.
func Splice(reads []dna.Seq, c Contig) dna.Seq {
	var out dna.Seq
	end := 0 // contig coordinate covered so far
	for _, p := range c.Placements {
		r := reads[p.Read]
		if p.Rev {
			r = dna.RevComp(r)
		}
		readEnd := p.Offset + len(r)
		if readEnd <= end {
			continue // contained
		}
		start := end - p.Offset
		if start < 0 {
			start = 0 // coverage gap
		}
		out = append(out, r[start:]...)
		end = readEnd
	}
	return out
}

// Stats summarizes an assembly.
type Stats struct {
	Contigs      int
	TotalLen     int
	LargestLen   int
	N50          int
	ReadsPlaced  int
	SingletonCnt int
}

// Summarize computes assembly statistics for a layout.
func Summarize(l *Layout) Stats {
	var s Stats
	lens := make([]int, 0, len(l.Contigs))
	for _, c := range l.Contigs {
		s.Contigs++
		s.TotalLen += c.Len
		if c.Len > s.LargestLen {
			s.LargestLen = c.Len
		}
		s.ReadsPlaced += len(c.Placements)
		if len(c.Placements) == 1 {
			s.SingletonCnt++
		}
		lens = append(lens, c.Len)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	acc := 0
	for _, ln := range lens {
		acc += ln
		if acc*2 >= s.TotalLen {
			s.N50 = ln
			break
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("contigs=%d total=%d largest=%d N50=%d reads=%d singletons=%d",
		s.Contigs, s.TotalLen, s.LargestLen, s.N50, s.ReadsPlaced, s.SingletonCnt)
}
