// Package olc implements the layout and consensus phases of
// overlap-layout-consensus assembly (Section 2 of the paper): Darwin
// accelerates the overlap phase, which dominates OLC runtime; this
// package turns its overlaps into draft contigs so the de novo
// pipeline is end-to-end runnable.
//
// Layout is a greedy merge over overlaps (highest score first): each
// read starts as its own contig fragment; an overlap between reads in
// different fragments rigidly places one fragment — translation plus,
// when orientations disagree, a reflection — into the other's
// coordinate frame. Cycles (overlaps within one fragment) are skipped.
// Consensus splices reads at overlap boundaries, the classical draft
// construction that long-read pipelines later polish.
package olc

import (
	"context"
	"fmt"
	"sort"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Layout is a disjoint pipeline stage; polishing re-runs the engine's
// filter and align stages internally, so its timer deliberately lives
// outside the stage/ namespace (see package obs) to keep stage sums
// honest.
var (
	tLayout  = obs.Default.Timer("stage/layout")
	cContigs = obs.Default.Counter("olc/contigs")
)

// Placement positions one read inside a contig frame.
type Placement struct {
	// Read is the read index.
	Read int
	// Rev is true if the read participates reverse-complemented.
	Rev bool
	// Offset is the read's start position in contig coordinates.
	Offset int
}

// Contig is an ordered list of placements, sorted by offset and
// normalized to start at 0.
type Contig struct {
	Placements []Placement
	// Len is the contig extent implied by the placements.
	Len int
}

// Layout groups reads into contigs, largest first.
type Layout struct {
	Contigs []Contig
}

// fragment is a mutable contig under construction.
type fragment struct {
	placements []Placement
}

// span returns the fragment's [lo, hi) extent in its own frame.
func (f *fragment) span(readLens []int) (int, int) {
	lo, hi := 1<<60, -(1 << 60)
	for _, p := range f.placements {
		if p.Offset < lo {
			lo = p.Offset
		}
		if end := p.Offset + readLens[p.Read]; end > hi {
			hi = end
		}
	}
	return lo, hi
}

// BuildLayout constructs contigs from overlaps. readLens gives each
// read's length.
//
// Deprecated: use BuildLayoutContext, which adds cooperative
// cancellation. This wrapper is bit-identical to the context form.
func BuildLayout(readLens []int, overlaps []core.Overlap) *Layout {
	l, _ := buildLayout(context.Background(), readLens, overlaps, nil)
	return l
}

// BuildLayoutContext is BuildLayout with cooperative cancellation: ctx
// is checked periodically during the greedy merge, and cancellation
// returns ctx.Err() with a nil layout.
func BuildLayoutContext(ctx context.Context, readLens []int, overlaps []core.Overlap) (*Layout, error) {
	return buildLayout(ctx, readLens, overlaps, nil)
}

// buildLayout is the one greedy-layout implementation. order, when
// non-nil, is a processing permutation (order[p] = original read index
// handled at position p): the layout's working arrays are indexed in
// permuted space — the cache-locality win of reordering — while every
// tie-break is keyed on original read indices, so the merge decisions
// (and therefore the returned layout, which is always expressed in
// original indices) are identical for every permutation.
func buildLayout(ctx context.Context, readLens []int, overlaps []core.Overlap, order []int) (*Layout, error) {
	defer tLayout.Time()()
	defer obs.Trace.Start("olc.layout")()
	n := len(readLens)
	if order != nil && len(order) != n {
		return nil, fmt.Errorf("olc: layout order has %d entries for %d reads", len(order), n)
	}
	// pos maps original read index → processing position; identity when
	// no reorder is in effect.
	pos := make([]int, n)
	lens := make([]int, n)
	if order == nil {
		for i := 0; i < n; i++ {
			pos[i] = i
			lens[i] = readLens[i]
		}
	} else {
		for p, orig := range order {
			pos[orig] = p
			lens[p] = readLens[orig]
		}
	}

	// Canonical processing order: score descending, ties broken on the
	// original unordered pair, then orientation, then coordinates. The
	// comparator never consults permuted positions, so the decision
	// sequence is permutation-invariant.
	ovs := append([]core.Overlap(nil), overlaps...)
	sort.Slice(ovs, func(x, y int) bool {
		if ovs[x].Score != ovs[y].Score {
			return ovs[x].Score > ovs[y].Score
		}
		xa, xb := ovs[x].Pair()
		ya, yb := ovs[y].Pair()
		if xa != ya {
			return xa < ya
		}
		if xb != yb {
			return xb < yb
		}
		if ovs[x].QueryRev != ovs[y].QueryRev {
			return !ovs[x].QueryRev
		}
		if ovs[x].TargetStart != ovs[y].TargetStart {
			return ovs[x].TargetStart < ovs[y].TargetStart
		}
		return ovs[x].QueryStart < ovs[y].QueryStart
	})

	frags := make([]*fragment, n)
	fragOf := make([]*fragment, n)
	where := make([]Placement, n) // read's placement in its fragment frame
	for i := 0; i < n; i++ {
		f := &fragment{placements: []Placement{{Read: i}}}
		frags[i] = f
		fragOf[i] = f
		where[i] = Placement{Read: i}
	}

	for i := range ovs {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		o := &ovs[i]
		a, b := pos[o.Target], pos[o.Query]
		fa, fb := fragOf[a], fragOf[b]
		if fa == fb {
			continue // already placed relative to each other
		}
		lenA, lenB := lens[a], lens[b]
		pa, pb := where[a], where[b]

		// Place oriented b relative to a-forward: b starts at
		// e.offset = TargetStart − QueryStart in a's forward frame.
		eOffset := o.TargetStart - o.QueryStart
		// Map into fa's frame through a's placement there.
		var wantRev bool
		var wantOff int
		if !pa.Rev {
			wantRev = o.QueryRev
			wantOff = pa.Offset + eOffset
		} else {
			// a is reversed in fa: reflect b's interval through a.
			wantRev = !o.QueryRev
			wantOff = pa.Offset + lenA - eOffset - lenB
		}

		// Rigidly move fb so that b lands at (wantRev, wantOff).
		if pb.Rev != wantRev {
			// Reflect fb in place around its own span.
			lo, hi := fb.span(lens)
			for j := range fb.placements {
				p := &fb.placements[j]
				p.Rev = !p.Rev
				p.Offset = lo + hi - (p.Offset + lens[p.Read])
				where[p.Read] = *p
			}
			pb = where[b]
		}
		d := wantOff - pb.Offset
		// Merge smaller fragment into larger.
		if len(fb.placements) > len(fa.placements) {
			// Instead translate fa so a keeps its relation: shifting
			// the union by a constant is free, so translate fa by −d
			// and merge into fb.
			for j := range fa.placements {
				p := &fa.placements[j]
				p.Offset -= d
				where[p.Read] = *p
				fragOf[p.Read] = fb
			}
			fb.placements = append(fb.placements, fa.placements...)
			fa.placements = nil
		} else {
			for j := range fb.placements {
				p := &fb.placements[j]
				p.Offset += d
				where[p.Read] = *p
				fragOf[p.Read] = fa
			}
			fa.placements = append(fa.placements, fb.placements...)
			fb.placements = nil
		}
	}

	// Emission: placements are mapped back to original read indices, so
	// the layout a caller sees is independent of the processing order.
	layout := &Layout{}
	for _, f := range frags {
		if len(f.placements) == 0 {
			continue
		}
		ps := append([]Placement(nil), f.placements...)
		if order != nil {
			for j := range ps {
				ps[j].Read = order[ps[j].Read]
			}
		}
		sort.Slice(ps, func(x, y int) bool {
			if ps[x].Offset != ps[y].Offset {
				return ps[x].Offset < ps[y].Offset
			}
			return ps[x].Read < ps[y].Read
		})
		base := ps[0].Offset
		length := 0
		for j := range ps {
			ps[j].Offset -= base
			if end := ps[j].Offset + readLens[ps[j].Read]; end > length {
				length = end
			}
		}
		layout.Contigs = append(layout.Contigs, Contig{Placements: ps, Len: length})
	}
	sort.Slice(layout.Contigs, func(a, b int) bool {
		if layout.Contigs[a].Len != layout.Contigs[b].Len {
			return layout.Contigs[a].Len > layout.Contigs[b].Len
		}
		return layout.Contigs[a].Placements[0].Read < layout.Contigs[b].Placements[0].Read
	})
	cContigs.Add(int64(len(layout.Contigs)))
	return layout, nil
}

// Splice builds a draft contig sequence by walking placements in
// order and appending each read's not-yet-covered suffix. Contained
// reads are skipped; layout gaps (no overlap coverage) fall back to
// appending the whole read.
func Splice(reads []dna.Seq, c Contig) dna.Seq {
	var out dna.Seq
	end := 0 // contig coordinate covered so far
	for _, p := range c.Placements {
		r := reads[p.Read]
		if p.Rev {
			r = dna.RevComp(r)
		}
		readEnd := p.Offset + len(r)
		if readEnd <= end {
			continue // contained
		}
		start := end - p.Offset
		if start < 0 {
			start = 0 // coverage gap
		}
		out = append(out, r[start:]...)
		end = readEnd
	}
	return out
}

// Stats summarizes an assembly.
type Stats struct {
	Contigs      int
	TotalLen     int
	LargestLen   int
	N50          int
	ReadsPlaced  int
	SingletonCnt int
}

// Summarize computes assembly statistics for a layout.
func Summarize(l *Layout) Stats {
	var s Stats
	lens := make([]int, 0, len(l.Contigs))
	for _, c := range l.Contigs {
		s.Contigs++
		s.TotalLen += c.Len
		if c.Len > s.LargestLen {
			s.LargestLen = c.Len
		}
		s.ReadsPlaced += len(c.Placements)
		if len(c.Placements) == 1 {
			s.SingletonCnt++
		}
		lens = append(lens, c.Len)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	acc := 0
	for _, ln := range lens {
		acc += ln
		if acc*2 >= s.TotalLen {
			s.N50 = ln
			break
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("contigs=%d total=%d largest=%d N50=%d reads=%d singletons=%d",
		s.Contigs, s.TotalLen, s.LargestLen, s.N50, s.ReadsPlaced, s.SingletonCnt)
}
