package olc

import (
	"context"
	"fmt"
	"sort"

	"darwin/internal/core"
	"darwin/internal/obs"
)

// Read reordering (Tile-X style): the overlap graph's adjacency
// structure predicts which reads the layout and consensus stages will
// touch together, so renumbering reads to keep graph neighbours close
// shrinks the working set those stages stride across. Reverse
// Cuthill-McKee minimizes edge bandwidth (neighbours end up adjacent —
// cache locality); the farthest-neighbour order does the opposite on
// purpose (graph-distant reads interleave — balanced parallel
// partitions for a sharded layout).
var (
	tReorder        = obs.Default.Timer("olc/reorder")
	gBandwidthPre   = obs.Default.Gauge("olc/reorder_bandwidth_pre")
	gBandwidthPost  = obs.Default.Gauge("olc/reorder_bandwidth_post")
	cReorderedReads = obs.Default.Counter("olc/reordered_reads")
)

// ReorderMode selects the read-reordering heuristic applied to the
// overlap graph before layout.
type ReorderMode int

const (
	// ReorderOff leaves reads in input order.
	ReorderOff ReorderMode = iota
	// ReorderRCM applies reverse Cuthill-McKee: breadth-first from a
	// low-degree seed, neighbours visited degree-ascending, order
	// reversed — the classic bandwidth-minimizing renumbering.
	ReorderRCM
	// ReorderFarthest applies a greedy farthest-neighbour chain from a
	// pseudo-peripheral seed: each next read maximizes graph distance
	// from the previous one, spreading tight clusters apart.
	ReorderFarthest
)

// ParseReorderMode parses "off", "rcm", or "farthest".
func ParseReorderMode(s string) (ReorderMode, error) {
	switch s {
	case "off", "":
		return ReorderOff, nil
	case "rcm":
		return ReorderRCM, nil
	case "farthest":
		return ReorderFarthest, nil
	}
	return ReorderOff, fmt.Errorf("olc: reorder mode %q: want off, rcm, or farthest", s)
}

func (m ReorderMode) String() string {
	switch m {
	case ReorderRCM:
		return "rcm"
	case ReorderFarthest:
		return "farthest"
	}
	return "off"
}

// ReorderReport records what a reorder pass did: the heuristic and the
// overlap-graph bandwidth (max and mean |position(a) − position(b)|
// over edges) before and after renumbering. A large MeanBefore/
// MeanAfter ratio is the locality win — layout touches entries that
// are that much closer together.
type ReorderReport struct {
	Mode       ReorderMode `json:"mode"`
	Edges      int         `json:"edges"`
	MaxBefore  int         `json:"max_bandwidth_before"`
	MaxAfter   int         `json:"max_bandwidth_after"`
	MeanBefore float64     `json:"mean_bandwidth_before"`
	MeanAfter  float64     `json:"mean_bandwidth_after"`
}

// adjacency builds the deduplicated undirected overlap graph over n
// reads. Neighbour lists come out sorted ascending.
func adjacency(n int, overlaps []core.Overlap) [][]int {
	seen := make(map[[2]int]bool, len(overlaps))
	adj := make([][]int, n)
	for i := range overlaps {
		a, b := overlaps[i].Pair()
		if a == b || a < 0 || b >= n {
			continue
		}
		k := [2]int{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// Bandwidth measures the overlap graph's edge bandwidth under a read
// order (nil = input order): the max and mean |pos(a) − pos(b)| over
// deduplicated overlap edges.
func Bandwidth(n int, overlaps []core.Overlap, order []int) (maxBW int, meanBW float64) {
	pos := make([]int, n)
	if order == nil {
		for i := 0; i < n; i++ {
			pos[i] = i
		}
	} else {
		for p, orig := range order {
			pos[orig] = p
		}
	}
	seen := make(map[[2]int]bool, len(overlaps))
	total, edges := 0, 0
	for i := range overlaps {
		a, b := overlaps[i].Pair()
		if a == b {
			continue
		}
		k := [2]int{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := pos[a] - pos[b]
		if d < 0 {
			d = -d
		}
		if d > maxBW {
			maxBW = d
		}
		total += d
		edges++
	}
	if edges > 0 {
		meanBW = float64(total) / float64(edges)
	}
	return maxBW, meanBW
}

// ReorderReads computes a read-processing permutation from the overlap
// graph: the returned order lists original read indices in processing
// position order (order[p] = read handled at position p). ReorderOff
// returns nil (input order). The permutation feeds buildLayout, whose
// decisions are provably order-invariant — reordering changes memory
// access patterns, never contigs.
func ReorderReads(ctx context.Context, n int, overlaps []core.Overlap, mode ReorderMode) ([]int, *ReorderReport, error) {
	if mode == ReorderOff || n == 0 {
		return nil, nil, nil
	}
	defer tReorder.Time()()
	defer obs.Trace.Start("olc.reorder")()
	adj := adjacency(n, overlaps)
	var order []int
	switch mode {
	case ReorderRCM:
		order = rcmOrder(adj)
	case ReorderFarthest:
		var err error
		order, err = farthestOrder(ctx, adj)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("olc: unknown reorder mode %d", mode)
	}
	report := &ReorderReport{Mode: mode}
	report.MaxBefore, report.MeanBefore = Bandwidth(n, overlaps, nil)
	report.MaxAfter, report.MeanAfter = Bandwidth(n, overlaps, order)
	for i := range adj {
		report.Edges += len(adj[i])
	}
	report.Edges /= 2
	gBandwidthPre.Set(int64(report.MaxBefore))
	gBandwidthPost.Set(int64(report.MaxAfter))
	cReorderedReads.Add(int64(n))
	return order, report, nil
}

// rcmOrder is reverse Cuthill-McKee over possibly-disconnected graphs:
// components are seeded lowest-degree-first, BFS visits neighbours
// degree-ascending (ties by index), and the concatenated order is
// reversed at the end.
func rcmOrder(adj [][]int) []int {
	n := len(adj)
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(x, y int) bool {
		dx, dy := len(adj[seeds[x]]), len(adj[seeds[y]])
		if dx != dy {
			return dx < dy
		}
		return seeds[x] < seeds[y]
	})
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	nbr := make([]int, 0, 16)
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbr = nbr[:0]
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbr = append(nbr, w)
				}
			}
			sort.Slice(nbr, func(x, y int) bool {
				dx, dy := len(adj[nbr[x]]), len(adj[nbr[y]])
				if dx != dy {
					return dx < dy
				}
				return nbr[x] < nbr[y]
			})
			queue = append(queue, nbr...)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// farthestOrder builds a greedy farthest-neighbour chain: start from a
// pseudo-peripheral vertex (double BFS), then repeatedly append the
// unvisited vertex at maximum graph distance from the last appended
// one. Each step BFSes from the previous pick, so cost is O(V·E) —
// acceptable at served job sizes, and ctx bounds a runaway.
func farthestOrder(ctx context.Context, adj [][]int) ([]int, error) {
	n := len(adj)
	dist := make([]int, n)
	bfs := func(src int) {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
	}
	// Pseudo-peripheral seed: farthest vertex from the lowest-degree
	// vertex of the first component.
	seed := 0
	for i := 1; i < n; i++ {
		if len(adj[i]) < len(adj[seed]) || (len(adj[i]) == len(adj[seed]) && i < seed) {
			seed = i
		}
	}
	bfs(seed)
	for i := 0; i < n; i++ {
		if dist[i] > dist[seed] {
			seed = i
		}
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)
	last := seed
	visited[seed] = true
	order = append(order, seed)
	for len(order) < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bfs(last)
		next, nextDist := -1, -1
		for i := 0; i < n; i++ {
			if visited[i] || dist[i] < 0 {
				continue
			}
			if dist[i] > nextDist {
				next, nextDist = i, dist[i]
			}
		}
		if next < 0 {
			// Nothing reachable from last: jump to the next unvisited
			// vertex (new component) by index.
			for i := 0; i < n; i++ {
				if !visited[i] {
					next = i
					break
				}
			}
		}
		visited[next] = true
		order = append(order, next)
		last = next
	}
	return order, nil
}
