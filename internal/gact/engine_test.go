package gact

import (
	"math/rand"
	"reflect"
	"testing"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/readsim"
)

// extendEqual asserts the Engine produced exactly what the free
// function produced: same accept/reject decision, same Result (cigar
// included), same Stats.
func extendEqual(t *testing.T, label string, res *align.Result, stats Stats, wantRes *align.Result, wantStats *Stats) {
	t.Helper()
	if (res == nil) != (wantRes == nil) {
		t.Fatalf("%s: accept/reject mismatch: engine %v, reference %v", label, res != nil, wantRes != nil)
	}
	if wantRes != nil && !reflect.DeepEqual(*res, *wantRes) {
		t.Fatalf("%s: result mismatch:\nengine    %+v\nreference %+v", label, *res, *wantRes)
	}
	if !reflect.DeepEqual(stats, *wantStats) {
		t.Fatalf("%s: stats mismatch: engine %+v, reference %+v", label, stats, *wantStats)
	}
}

// TestEngineMatchesExtend is the end-to-end equivalence property: over
// random configurations — including Y-drop, the h_tile filter, both
// read orientations, and repeated reuse of one engine — Engine.Extend
// must be bit-identical to the free function Extend.
func TestEngineMatchesExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		cfg := DefaultConfig()
		switch trial % 4 {
		case 1:
			cfg = Config{T: 64 + rng.Intn(128), O: 16 + rng.Intn(32), Scoring: cfg.Scoring}
		case 2:
			cfg.YDrop = 20 + rng.Intn(100)
		case 3:
			cfg.MinFirstTile = 50 + rng.Intn(200)
			cfg.YDrop = 50
		}
		engine, err := NewEngine(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		profile := readsim.Profiles[trial%len(readsim.Profiles)]
		for rep := 0; rep < 4; rep++ {
			ref, query, iSeed, jSeed := simPair(t, 1000+rng.Intn(1500), profile, int64(500+trial*10+rep))
			// Jitter the anchor so some candidates reject.
			if rep%2 == 1 {
				iSeed = rng.Intn(len(ref))
				jSeed = rng.Intn(len(query) / 2)
			}
			wantRes, wantStats, wantErr := Extend(ref, query, iSeed, jSeed, &cfg)
			gotRes, gotStats, gotErr := engine.Extend(ref, query, iSeed, jSeed)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d rep %d: error mismatch: engine %v, reference %v", trial, rep, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			extendEqual(t, "trial", gotRes, gotStats, wantRes, wantStats)
		}
	}
}

// A rejected candidate must not leave state behind that changes the
// next candidate's result (the engine's whole point is reuse).
func TestEngineReuseAfterReject(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinFirstTile = 90
	engine, err := NewEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, query, iSeed, jSeed := simPair(t, 2000, readsim.PacBio, 901)
	rng := rand.New(rand.NewSource(902))
	junk := dna.Random(rng, len(query), 0.5)

	want, wantStats, err := Extend(ref, query, iSeed, jSeed, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave junk (rejected) candidates with the real one.
	for i := 0; i < 3; i++ {
		if res, _, err := engine.Extend(ref, junk, iSeed, 0); err != nil || res != nil {
			t.Fatalf("junk candidate: res=%v err=%v, want rejection", res, err)
		}
		got, gotStats, err := engine.Extend(ref, query, iSeed, jSeed)
		if err != nil {
			t.Fatal(err)
		}
		extendEqual(t, "after reject", got, gotStats, want, wantStats)
	}
}

// Engine must reject out-of-range anchors exactly like Extend.
func TestEngineErrors(t *testing.T) {
	cfg := DefaultConfig()
	engine, err := NewEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	seq := dna.Random(rng, 100, 0.5)
	for _, pos := range [][2]int{{-1, 0}, {0, -1}, {100, 0}, {0, 100}} {
		if _, _, err := engine.Extend(seq, seq, pos[0], pos[1]); err == nil {
			t.Errorf("anchor %v should error", pos)
		}
	}
	bad := DefaultConfig()
	bad.T = 0
	if _, err := NewEngine(&bad); err == nil {
		t.Error("NewEngine should reject an invalid config")
	}
}

// The default (auto) engine must actually route high-identity
// extension tiles through the bitvector tier, a KernelLUT engine must
// never, and validate must reject out-of-range kernel settings. The
// bit-identity of the tiers themselves is TestEngineMatchesExtend's
// job (the free Extend uses the reference AlignTile).
func TestEngineKernelTier(t *testing.T) {
	cfg := DefaultConfig()
	engine, err := NewEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, query, iSeed, jSeed := simPair(t, 4000, readsim.PacBio, 314)
	if _, _, err := engine.Extend(ref, query, iSeed, jSeed); err != nil {
		t.Fatal(err)
	}
	ks := engine.KernelStats()
	if ks.BitvectorTiles == 0 {
		t.Errorf("auto engine took the bitvector path 0 times: %+v", ks)
	}

	cfg.Kernel = align.KernelLUT
	lutEng, err := NewEngine(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lutEng.Extend(ref, query, iSeed, jSeed); err != nil {
		t.Fatal(err)
	}
	if ks := lutEng.KernelStats(); ks.BitvectorTiles != 0 || ks.LUTTiles == 0 {
		t.Errorf("lut engine stats %+v, want pure LUT", ks)
	}

	bad := DefaultConfig()
	bad.Kernel = align.KernelBitvector + 1
	if _, err := NewEngine(&bad); err == nil {
		t.Error("NewEngine should reject an unknown kernel mode")
	}
	bad = DefaultConfig()
	bad.KernelDivergence = -1
	if _, err := NewEngine(&bad); err == nil {
		t.Error("NewEngine should reject a negative kernel divergence")
	}
}
