package gact

import (
	"fmt"
	"sync/atomic"
	"time"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/obs"
)

// gact/extend fires per candidate extension: an error drops just that
// candidate (core treats it like bad anchor geometry), a delay models
// a stuck tile pipeline (caught by core's per-read watchdog), a panic
// is contained by core's per-read recover.
var fpExtend = faults.Default.Point("gact/extend")

// engStep is one extension tile the Engine has consumed. The tile's
// path lives in the Engine's step arena as [cigOff, cigOff+cigLen)
// — an offset pair rather than a slice, because the arena may
// reallocate while later tiles append to it.
type engStep struct {
	cigOff, cigLen int
	i, j           int // coordinates after consuming this tile
	cumulative     int
}

// Engine is the stateful GACT aligner: the free function Extend with
// the per-candidate allocations hoisted into reusable state. It owns a
// TileAligner (the allocation-free DP kernel), a step arena for tile
// paths, and scratch cigars for the two extension directions, so a
// rejected candidate — the common case downstream of D-SOFT — costs no
// heap allocation at all, and an accepted one allocates only its
// returned Result.
//
// Right extension runs on the reversed coordinate frame without ever
// materializing reversed sequences: tiles are cut from the forward
// slices and precoded back-to-front by TileAligner.AlignTileReversed,
// replacing Extend's two whole-sequence dna.Reverse copies per
// candidate.
//
// An Engine is not safe for concurrent use; clone one per worker
// (core.Darwin.Clone does this), mirroring the hardware's per-array
// private traceback SRAM.
type Engine struct {
	cfg Config
	ta  *align.TileAligner

	// span is the per-read trace sink Extend records into when set.
	// Atomic rather than a plain field: a read abandoned by core's
	// per-read watchdog leaves a stray goroutine still extending inside
	// this engine while the owning worker clears the sink and moves on
	// — the clear must not race the stray goroutine's load.
	span atomic.Pointer[obs.Span]

	// Reused across Extend calls.
	arena  []align.Step   // tile paths for the current candidate
	steps  []engStep      // extendDir loop state
	dirCig [2]align.Cigar // per-direction assembled paths

	// lastKS is the kernel-stat snapshot at the end of the previous
	// Extend, so publishKernel can emit per-call deltas to the shared
	// counters.
	lastKS align.KernelStats
}

// NewEngine validates cfg and returns an engine whose kernel buffers
// are pre-sized for the configured tiles.
func NewEngine(cfg *Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ta, err := align.NewTileAligner(&cfg.Scoring)
	if err != nil {
		return nil, err
	}
	side := cfg.T
	if ft := cfg.firstT(); ft > side {
		side = ft
	}
	ta.Preallocate(side)
	ta.SetKernel(cfg.Kernel)
	ta.SetKernelDivergence(cfg.KernelDivergence)
	return &Engine{cfg: *cfg, ta: ta}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() *Config { return &e.cfg }

// SetSpan installs (nil clears) the per-read trace span subsequent
// Extend calls record into: aggregate extension/tile/cell attributes
// for every candidate, plus a timed gact.extend child for candidates
// that survive the first-tile filter (rejections are the overwhelming
// majority downstream of D-SOFT; giving each a child would blow the
// tree's child cap without saying anything a counter doesn't).
func (e *Engine) SetSpan(sp *obs.Span) { e.span.Store(sp) }

// Extend computes exactly what the free function Extend computes —
// same tiles, same result, same published observability — using the
// engine's reused state. Stats are returned by value so the rejected
// path stays allocation-free.
func (e *Engine) Extend(R, Q dna.Seq, iSeed, jSeed int) (res *align.Result, stats Stats, err error) {
	if sp := e.span.Load(); sp != nil {
		extStart := time.Now()
		defer func() {
			sp.AddAttr("gact_extensions", 1)
			sp.AddAttr("gact_tiles", int64(stats.Tiles))
			sp.AddAttr("gact_cells", stats.Cells)
			if res != nil {
				c := sp.AddTimedChild("gact.extend", extStart, time.Since(extStart))
				c.SetAttr("tiles", int64(stats.Tiles))
				c.SetAttr("cells", stats.Cells)
				c.SetAttr("first_tile_score", int64(stats.FirstTileScore))
				c.SetAttr("score", int64(res.Score))
			}
		}()
	}
	cfg := &e.cfg
	if err := fpExtend.Fire(); err != nil {
		return nil, stats, err
	}
	if iSeed < 0 || iSeed >= len(R) || jSeed < 0 || jSeed >= len(Q) {
		return nil, stats, fmt.Errorf("gact: seed position (%d,%d) outside R[0,%d) × Q[0,%d)", iSeed, jSeed, len(R), len(Q))
	}
	defer tAlign.Time()()
	defer e.publishKernel()
	e.arena = e.arena[:0]

	// First tile, spanning forward from the candidate. Traceback
	// starts at the highest-scoring cell.
	fT := cfg.firstT()
	iEnd, jEnd := min(len(R), iSeed+fT), min(len(Q), jSeed+fT)
	ftStart := time.Now()
	endSpan := obs.Trace.Start("gact.first_tile")
	first := e.ta.AlignTile(R[iSeed:iEnd], Q[jSeed:jEnd], true, fT-cfg.O)
	endSpan()
	tFirstTile.Observe(time.Since(ftStart))
	stats.add(iEnd-iSeed, jEnd-jSeed)
	stats.FirstTileScore = first.Score
	if first.Score <= 0 || len(first.Cigar) == 0 || first.Score < cfg.MinFirstTile {
		stats.publish(true)
		return nil, stats, nil
	}
	// first.Cigar aliases the kernel's buffer; bank it in the arena
	// before extension tiles overwrite it.
	firstLen := len(first.Cigar)
	e.arena = append(e.arena, first.Cigar...)

	// Global coordinates of the alignment's right end (the first
	// tile's max cell) and of the running left end.
	rightI := iSeed + first.MaxI
	rightJ := jSeed + first.MaxJ
	curI := rightI - first.IOff
	curJ := rightJ - first.JOff

	// Left extension (Algorithm 2 with t already consumed), then right
	// extension as a left extension in the mirrored coordinate frame.
	leftCigar, leftI, leftJ := e.extendDir(R, Q, curI, curJ, &stats, false)
	revCigar, revI, revJ := e.extendDir(R, Q, len(R)-rightI, len(Q)-rightJ, &stats, true)
	rightI = len(R) - revI
	rightJ = len(Q) - revJ

	var cigar align.Cigar
	cigar = cigar.Concat(leftCigar)
	cigar = cigar.Concat(align.Cigar(e.arena[:firstLen]))
	cigar = cigar.Concat(revCigar.Reverse())

	res = &align.Result{
		RefStart:   leftI,
		RefEnd:     rightI,
		QueryStart: leftJ,
		QueryEnd:   rightJ,
		Cigar:      cigar,
	}
	res.Score = res.Rescore(R, Q, &cfg.Scoring)
	stats.publish(false)
	return res, stats, nil
}

// KernelStats returns the cumulative kernel-tier counters of the
// engine's TileAligner.
func (e *Engine) KernelStats() align.KernelStats { return e.ta.KernelStats() }

// publishKernel emits the kernel-tier counter deltas accumulated since
// the previous Extend. The TileAligner keeps cheap plain-int stats;
// batching the atomic counter adds per Extend (rather than per tile)
// keeps the rejected-candidate fast path free of contention.
func (e *Engine) publishKernel() {
	ks := e.ta.KernelStats()
	cTileBitvector.Add(ks.BitvectorTiles - e.lastKS.BitvectorTiles)
	cTileFallback.Add(ks.FallbackTiles - e.lastKS.FallbackTiles)
	cTileLUT.Add(ks.LUTTiles - e.lastKS.LUTTiles)
	cCellsBitvector.Add(ks.BitvectorCells - e.lastKS.BitvectorCells)
	cCellsLUT.Add(ks.LUTCells - e.lastKS.LUTCells)
	e.lastKS = ks
}

// extendDir runs extendLeft's loop over the engine's reused state.
// With rev set, (iCurr, jCurr) and the returned coordinates are in the
// reversed frame — position x of Reverse(R) — and each tile is cut
// from the forward slices: reversed-frame rR[iStart:iCurr] is
// R[len(R)−iCurr : len(R)−iStart] read back-to-front, which
// AlignTileReversed precodes directly. The returned cigar aliases a
// per-direction scratch buffer, valid until this direction index runs
// again.
func (e *Engine) extendDir(R, Q dna.Seq, iCurr, jCurr int, stats *Stats, rev bool) (align.Cigar, int, int) {
	cfg := &e.cfg
	rLen, qLen := len(R), len(Q)
	e.steps = e.steps[:0]
	cum, bestCum, bestIdx := 0, 0, -1
	for iCurr > 0 && jCurr > 0 {
		iStart, jStart := max(0, iCurr-cfg.T), max(0, jCurr-cfg.T)
		endSpan := obs.Trace.Start("gact.tile")
		var res align.TileResult
		if rev {
			res = e.ta.AlignTileReversed(R[rLen-iCurr:rLen-iStart], Q[qLen-jCurr:qLen-jStart], false, cfg.T-cfg.O)
		} else {
			res = e.ta.AlignTile(R[iStart:iCurr], Q[jStart:jCurr], false, cfg.T-cfg.O)
		}
		endSpan()
		stats.add(iCurr-iStart, jCurr-jStart)
		if res.IOff == 0 && res.JOff == 0 {
			break
		}
		// Score the consumed path segment for the Y-drop accounting
		// (res.Cigar still aliases the kernel here; segScore only reads).
		cum += segScore(R, Q, res.Cigar, iCurr-res.IOff, jCurr-res.JOff, &cfg.Scoring, rev)
		iCurr -= res.IOff
		jCurr -= res.JOff
		off := len(e.arena)
		e.arena = append(e.arena, res.Cigar...)
		e.steps = append(e.steps, engStep{cigOff: off, cigLen: len(res.Cigar), i: iCurr, j: jCurr, cumulative: cum})
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(e.steps) - 1
		}
		if cfg.YDrop > 0 && cum < bestCum-cfg.YDrop {
			break
		}
	}
	// Keep tiles up to the cumulative maximum when Y-drop is active;
	// otherwise keep everything (Algorithm 2's behaviour).
	keep := len(e.steps)
	if cfg.YDrop > 0 {
		keep = bestIdx + 1
	}
	endI, endJ := iCurr, jCurr
	if keep < len(e.steps) {
		if keep == 0 {
			// Roll all the way back to the extension origin.
			if len(e.steps) > 0 {
				first := e.steps[0]
				fc := align.Cigar(e.arena[first.cigOff : first.cigOff+first.cigLen])
				endI = first.i + fc.RefLen()
				endJ = first.j + fc.QueryLen()
			}
			return nil, endI, endJ
		}
		endI, endJ = e.steps[keep-1].i, e.steps[keep-1].j
	}
	// Forward path order: the last-kept tile is leftmost.
	idx := 0
	if rev {
		idx = 1
	}
	cig := e.dirCig[idx][:0]
	for x := keep - 1; x >= 0; x-- {
		s := e.steps[x]
		cig = cig.Concat(align.Cigar(e.arena[s.cigOff : s.cigOff+s.cigLen]))
	}
	e.dirCig[idx] = cig
	return cig, endI, endJ
}

// segScore is Result.Rescore for one tile's path starting at (i, j):
// in the forward frame when rev is false, in the reversed frame when
// rev is true — reversed-frame position x reads forward byte
// len−1−x, so no reversed sequence is ever materialized.
func segScore(R, Q dna.Seq, cig align.Cigar, i, j int, sc *align.Scoring, rev bool) int {
	score := 0
	for _, s := range cig {
		switch s.Op {
		case align.OpMatch:
			if rev {
				for k := 0; k < s.Len; k++ {
					score += sc.Sub(R[len(R)-1-(i+k)], Q[len(Q)-1-(j+k)])
				}
			} else {
				for k := 0; k < s.Len; k++ {
					score += sc.Sub(R[i+k], Q[j+k])
				}
			}
			i += s.Len
			j += s.Len
		case align.OpIns:
			score -= sc.GapOpen + (s.Len-1)*sc.GapExtend
			j += s.Len
		case align.OpDel:
			score -= sc.GapOpen + (s.Len-1)*sc.GapExtend
			i += s.Len
		}
	}
	return score
}
