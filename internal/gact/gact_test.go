package gact

import (
	"math/rand"
	"testing"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// TestPaperFigure4 reproduces the GACT left-extension example of
// Figure 4: the Figure 1 matrix (ref GCGACTTT, query GTCGTTT,
// match=+2 mismatch=−1 gap=1) tiled with T=4, O=1 yields the same
// alignment as optimal Smith-Waterman (score 9).
func TestPaperFigure4(t *testing.T) {
	R := dna.NewSeq("GCGACTTT")
	Q := dna.NewSeq("GTCGTTT")
	cfg := Config{T: 4, O: 1, Scoring: align.Figure1()}
	res, stats, err := ExtendLeftOnly(R, Q, len(R), len(Q), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	if res.Score != 9 {
		t.Errorf("GACT score = %d, want 9 (optimal, as Figure 4 shows)", res.Score)
	}
	if err := res.Check(R, Q); err != nil {
		t.Fatal(err)
	}
	sc := align.Figure1()
	opt, err := align.SmithWaterman(R, Q, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != opt.Score {
		t.Errorf("GACT %d != optimal %d", res.Score, opt.Score)
	}
	if stats.Tiles < 3 {
		t.Errorf("tiles = %d, want ≥ 3 (Figure 4 uses T1..T3)", stats.Tiles)
	}
}

func simPair(t *testing.T, n int, profile readsim.Profile, seed int64) (ref, query dna.Seq, iSeed, jSeed int) {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: n * 3, GC: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 1, readsim.Config{Profile: profile, MeanLen: n, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	r := reads[0]
	if r.Reverse {
		// Map the template interval into revcomp coordinates; the read
		// aligns forward there starting at len − RefEnd.
		return dna.RevComp(g.Seq), r.Seq, len(g.Seq) - r.RefEnd, 0
	}
	return g.Seq, r.Seq, r.RefStart, 0
}

// TestGACTOptimalAtPaperSetting verifies the paper's central empirical
// claim at small scale: with (T=320, O=128), GACT alignments of noisy
// reads score identically to full Smith-Waterman for all three read
// classes (Figure 9a's chosen operating point).
func TestGACTOptimalAtPaperSetting(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range readsim.Profiles {
		for trial := 0; trial < 3; trial++ {
			ref, query, iSeed, jSeed := simPair(t, 2000, p, int64(100+trial))
			res, _, err := Extend(ref, query, iSeed, jSeed, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				t.Fatalf("%s trial %d: no alignment", p.Name, trial)
			}
			if err := res.Check(ref, query); err != nil {
				t.Fatalf("%s trial %d: %v", p.Name, trial, err)
			}
			opt := align.ScoreOnly(ref, query, &cfg.Scoring)
			if res.Score != opt {
				t.Errorf("%s trial %d: GACT score %d, optimal %d", p.Name, trial, res.Score, opt)
			}
		}
	}
}

// TestGACTSuboptimalWithTinyOverlap checks the other side of Fig. 9a:
// with too little overlap, high-error reads can deviate from optimal
// (scores may only be ≤ optimal, never greater).
func TestGACTNeverExceedsOptimal(t *testing.T) {
	for _, cfg := range []Config{
		{T: 32, O: 1, Scoring: align.GACTEval()},
		{T: 64, O: 8, Scoring: align.GACTEval()},
		{T: 128, O: 32, Scoring: align.GACTEval()},
	} {
		for trial := 0; trial < 3; trial++ {
			ref, query, iSeed, jSeed := simPair(t, 1500, readsim.ONT1D, int64(200+trial))
			res, _, err := Extend(ref, query, iSeed, jSeed, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				continue
			}
			if err := res.Check(ref, query); err != nil {
				t.Fatal(err)
			}
			opt := align.ScoreOnly(ref, query, &cfg.Scoring)
			if res.Score > opt {
				t.Errorf("T=%d O=%d trial %d: GACT score %d exceeds optimal %d", cfg.T, cfg.O, trial, res.Score, opt)
			}
		}
	}
}

func TestExtendStatsTileCount(t *testing.T) {
	// Tiles per alignment should scale like length/(T−O) per direction.
	cfg := Config{T: 128, O: 32, Scoring: align.GACTEval()}
	ref, query, iSeed, jSeed := simPair(t, 3000, readsim.PacBio, 300)
	res, stats, err := Extend(ref, query, iSeed, jSeed, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	alignedLen := res.QueryEnd - res.QueryStart
	expect := alignedLen / (cfg.T - cfg.O)
	if stats.Tiles < expect/2 || stats.Tiles > 3*expect+4 {
		t.Errorf("tiles = %d for aligned length %d, expected around %d", stats.Tiles, alignedLen, expect)
	}
	if stats.Cells <= 0 {
		t.Error("cells not counted")
	}
	if stats.FirstTileScore <= 0 {
		t.Error("first tile score not recorded")
	}
}

func TestExtendCoversRead(t *testing.T) {
	// A true candidate must yield an alignment covering nearly the
	// whole read despite 15% errors.
	cfg := DefaultConfig()
	ref, query, iSeed, jSeed := simPair(t, 4000, readsim.PacBio, 400)
	res, _, err := Extend(ref, query, iSeed, jSeed, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	cov := float64(res.QueryEnd-res.QueryStart) / float64(len(query))
	if cov < 0.95 {
		t.Errorf("query coverage = %.3f, want ≥ 0.95", cov)
	}
}

func TestExtendSpuriousCandidate(t *testing.T) {
	// Unrelated sequences: the first tile should score low, and the
	// h_tile filter concept (Fig. 12) applies; alignment may be nil or
	// tiny.
	rng := rand.New(rand.NewSource(41))
	ref := dna.Random(rng, 2000, 0.5)
	query := dna.Random(rng, 1000, 0.5)
	cfg := DefaultConfig()
	res, stats, err := Extend(ref, query, 1500, 800, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FirstTileScore > 90 {
		t.Errorf("first tile score %d for random sequences, expected < h_tile=90", stats.FirstTileScore)
	}
	if res != nil {
		if err := res.Check(ref, query); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtendErrors(t *testing.T) {
	cfg := DefaultConfig()
	R := dna.NewSeq("ACGTACGTACGT")
	Q := dna.NewSeq("ACGTACGT")
	if _, _, err := Extend(R, Q, -1, 4, &cfg); err == nil {
		t.Error("negative iSeed should error")
	}
	if _, _, err := Extend(R, Q, 4, len(Q), &cfg); err == nil {
		t.Error("jSeed out of range should error")
	}
	bad := Config{T: 0, O: 0, Scoring: align.GACTEval()}
	if _, _, err := Extend(R, Q, 4, 4, &bad); err == nil {
		t.Error("T=0 should error")
	}
	bad = Config{T: 10, O: 10, Scoring: align.GACTEval()}
	if _, _, err := Extend(R, Q, 4, 4, &bad); err == nil {
		t.Error("O=T should error")
	}
	bad = Config{T: 10, O: 5, FirstTileT: 3, Scoring: align.GACTEval()}
	if _, _, err := Extend(R, Q, 4, 4, &bad); err == nil {
		t.Error("first tile ≤ O should error")
	}
}

func TestExtendIdenticalSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := dna.Random(rng, 1000, 0.5)
	cfg := Config{T: 100, O: 30, Scoring: align.GACTEval()}
	res, _, err := Extend(s, s, 0, 0, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	if res.Score != len(s) {
		t.Errorf("score = %d, want %d (perfect match)", res.Score, len(s))
	}
	if res.RefStart != 0 || res.QueryStart != 0 || res.RefEnd != len(s) || res.QueryEnd != len(s) {
		t.Errorf("span = ref[%d,%d) q[%d,%d), want full", res.RefStart, res.RefEnd, res.QueryStart, res.QueryEnd)
	}
}

func TestExtendFromMiddle(t *testing.T) {
	// Seed in the middle of the read: both directions must extend.
	rng := rand.New(rand.NewSource(43))
	s := dna.Random(rng, 2000, 0.5)
	cfg := Config{T: 100, O: 30, Scoring: align.GACTEval()}
	res, _, err := Extend(s, s, 1000, 1000, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	if res.RefStart != 0 || res.RefEnd != len(s) {
		t.Errorf("span = [%d,%d), want [0,%d)", res.RefStart, res.RefEnd, len(s))
	}
	if res.Score != len(s) {
		t.Errorf("score = %d, want %d", res.Score, len(s))
	}
}

// TestYDropStopsAtJunction: two sequences share a middle segment
// flanked by a moderately-diverged region (45% substitutions) and then
// junk. Under subcritical scoring (Y-drop's natural pairing, as in
// LASTZ — under the supercritical (1,−1,1) scheme the stitched path's
// cumulative score rises even through junk, so no drop ever occurs),
// Y-drop must keep the alignment near the similarity boundary and the
// rolled-back result must stay self-consistent.
func TestYDropStopsAtJunction(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sc := align.Simple(2, 3, 5)
	sc.GapExtend = 2
	common := dna.Random(rng, 2000, 0.5)
	// Diverged flank: enough similarity for tiles to keep consuming,
	// but net-negative under the scoring.
	flank := common[:0:0]
	flankSrc := dna.Random(rng, 1500, 0.5)
	for _, b := range flankSrc {
		if rng.Float64() < 0.45 {
			flank = append(flank, dna.MutatePoint(rng, b))
		} else {
			flank = append(flank, b)
		}
	}
	ref := append(append(dna.Seq{}, common...), flankSrc...)
	ref = append(ref, dna.Random(rng, 2000, 0.5)...)
	query := append(append(dna.Seq{}, common.Clone()...), flank...)
	query = append(query, dna.Random(rng, 2000, 0.5)...)

	cfg := Config{T: 320, O: 128, FirstTileT: 384, YDrop: 60, Scoring: sc}
	res, _, err := Extend(ref, query, 500, 500, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no alignment")
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
	// The alignment must cover the common segment and stop within a
	// couple of tiles after it (the flank is net-negative).
	if res.RefEnd < 1800 {
		t.Errorf("alignment ends at %d, should cover the 2000 bp common segment", res.RefEnd)
	}
	const slack = 900
	if res.RefEnd > 2000+slack {
		t.Errorf("Y-drop extension reached ref %d, want ≤ %d", res.RefEnd, 2000+slack)
	}
	// The rolled-back path must not end on a net-negative excursion:
	// its score must be at least the common segment's contribution.
	if res.Score < 1500 {
		t.Errorf("score %d too low for a 2000 bp near-exact match", res.Score)
	}
}

// TestYDropPreservesCleanAlignments: on a fully-similar pair, Y-drop
// must not change the result.
func TestYDropPreservesCleanAlignments(t *testing.T) {
	ref, query, iSeed, jSeed := simPair(t, 3000, readsim.PacBio, 600)
	base := DefaultConfig()
	withDrop := base
	withDrop.YDrop = 200
	a, _, err := Extend(ref, query, iSeed, jSeed, &base)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Extend(ref, query, iSeed, jSeed, &withDrop)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || b == nil {
		t.Fatal("no alignment")
	}
	if a.Score != b.Score || a.Cigar.String() != b.Cigar.String() {
		t.Errorf("Y-drop changed a clean alignment: %d vs %d", a.Score, b.Score)
	}
}

func TestConstantMemoryProperty(t *testing.T) {
	// The compute-intensive step must not allocate more than O(T²)
	// per tile: verify Cells per tile ≤ FirstTileT².
	cfg := DefaultConfig()
	ref, query, iSeed, jSeed := simPair(t, 5000, readsim.PacBio, 500)
	_, stats, err := Extend(ref, query, iSeed, jSeed, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxCells := int64(cfg.firstT()) * int64(cfg.firstT())
	if avg := stats.Cells / int64(stats.Tiles); avg > maxCells {
		t.Errorf("average cells per tile %d exceeds T² = %d", avg, maxCells)
	}
}
