package gact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/align"
	"darwin/internal/dna"
)

// Property: for arbitrary sequences and anchors, Extend either rejects
// the candidate or returns a self-consistent alignment whose score
// never exceeds the optimal local score.
func TestQuickExtendSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := dna.Random(rng, 50+rng.Intn(400), 0.5)
		var query dna.Seq
		if rng.Intn(2) == 0 {
			lo := rng.Intn(len(ref) / 2)
			hi := lo + 20 + rng.Intn(len(ref)-lo-20)
			query = ref[lo:hi].Clone()
			for i := range query {
				if rng.Float64() < 0.2 {
					query[i] = dna.MutatePoint(rng, query[i])
				}
			}
		} else {
			query = dna.Random(rng, 20+rng.Intn(300), 0.5)
		}
		cfg := Config{
			T:       16 + rng.Intn(120),
			Scoring: align.GACTEval(),
		}
		cfg.O = rng.Intn(cfg.T)
		iSeed := rng.Intn(len(ref))
		jSeed := rng.Intn(len(query))
		res, stats, err := Extend(ref, query, iSeed, jSeed, &cfg)
		if err != nil {
			t.Logf("unexpected error: %v", err)
			return false
		}
		if stats.Tiles < 1 {
			return false
		}
		if res == nil {
			return true // rejected candidate is fine
		}
		if err := res.Check(ref, query); err != nil {
			t.Logf("check: %v", err)
			return false
		}
		if res.Rescore(ref, query, &cfg.Scoring) != res.Score {
			return false
		}
		return res.Score <= align.ScoreOnly(ref, query, &cfg.Scoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: the h_tile filter only ever removes alignments — it never
// changes those that pass.
func TestQuickHTileOnlyFilters(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := dna.Random(rng, 150+rng.Intn(300), 0.5)
		lo := rng.Intn(len(ref) / 2)
		query := ref[lo : lo+50+rng.Intn(max(1, len(ref)/2-50))].Clone()
		open := Config{T: 64, O: 16, Scoring: align.GACTEval()}
		gated := open
		gated.MinFirstTile = 1 + rng.Intn(80)
		iSeed, jSeed := lo, 0
		a, sa, err := Extend(ref, query, iSeed, jSeed, &open)
		if err != nil {
			return false
		}
		b, sb, err := Extend(ref, query, iSeed, jSeed, &gated)
		if err != nil {
			return false
		}
		if sa.FirstTileScore != sb.FirstTileScore {
			return false
		}
		if sa.FirstTileScore >= gated.MinFirstTile {
			// Both pipelines must produce the identical alignment.
			if (a == nil) != (b == nil) {
				return false
			}
			return a == nil || (a.Score == b.Score && a.Cigar.String() == b.Cigar.String())
		}
		return b == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
