// Package gact implements GACT (Section 4, Algorithm 2): near-optimal
// alignment of arbitrarily long sequences by following the optimal path
// within overlapping tiles of size T, each computed with constant
// O(T²) traceback memory — the property that lets Darwin put the
// compute-intensive Align step entirely in hardware.
//
// A full candidate alignment (Figure 6) anchors a first tile at the
// D-SOFT candidate position, traces back from the tile's
// highest-scoring cell, then extends left and right with further tiles
// whose traceback starts at the bottom-right cell, each tile consuming
// at most T−O bases so that successive tiles overlap by at least O.
package gact

import (
	"fmt"
	"time"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Pipeline observability (package obs): every Extend publishes its
// tile/cell counts — the "alignment" half of the paper's Figure 13
// split — under the disjoint stage/align timer, with the first-tile
// filter (Figure 12) broken out as a sub-timer, score histogram, and
// reject counter. Per-tile spans go to the tracer when enabled.
var (
	cExtensions   = obs.Default.Counter("gact/extensions")
	cTiles        = obs.Default.Counter("gact/tiles")
	cCells        = obs.Default.Counter("gact/cells")
	cHTileRejects = obs.Default.Counter("gact/htile_rejects")
	tAlign        = obs.Default.Timer("stage/align")
	tFirstTile    = obs.Default.Timer("gact/first_tile")
	hFirstScore   = obs.Default.Histogram("gact/first_tile_score", 0, 384, 48)
	hTilesPerExt  = obs.Default.Histogram("gact/tiles_per_extension", 0, 128, 32)

	// Kernel-tier split (Engine only; the free functions use the
	// reference AlignTile, which has no tiers): tiles and actually
	// filled DP cells per path. tile_lut counts every full-LUT fill,
	// fallbacks included; tile_fallback is the subset that attempted
	// the bitvector tier and hit its divergence gate, so the fallback
	// rate is tile_fallback / (tile_bitvector + tile_fallback). Note
	// gact/cells stays the *geometric* tile area — the work a
	// cell-at-a-time kernel would do — so cells/s measures effective
	// throughput across kernel generations; cells_bitvector/cells_lut
	// count filled cells only.
	cTileBitvector  = obs.Default.Counter("gact/tile_bitvector")
	cTileFallback   = obs.Default.Counter("gact/tile_fallback")
	cTileLUT        = obs.Default.Counter("gact/tile_lut")
	cCellsBitvector = obs.Default.Counter("gact/cells_bitvector")
	cCellsLUT       = obs.Default.Counter("gact/cells_lut")
)

// Config holds GACT parameters. The paper's operating point for all
// three read types is T=320, O=128, with a larger first tile (T=384)
// for the h_tile filter (Figure 12).
type Config struct {
	// T is the tile size.
	T int
	// O is the minimum overlap between successive tiles (O < T).
	O int
	// FirstTileT is the first tile's size; zero means T.
	FirstTileT int
	// MinFirstTile is the h_tile threshold (Section 5, Figure 12):
	// candidates whose first tile scores below it are discarded before
	// any extension tiles run. Zero disables the filter.
	MinFirstTile int
	// YDrop, when positive, terminates an extension direction once its
	// cumulative path score falls more than YDrop below that
	// direction's running maximum, rolling the alignment back to the
	// maximum (at tile granularity) — the LASTZ extension strategy
	// Section 11 proposes adding to GACT for divergent whole-genome
	// alignment. Zero disables it (the paper's read-assembly
	// configuration).
	YDrop int
	// Scoring configures the PE array's 18 scoring parameters.
	Scoring align.Scoring
	// Kernel selects the Engine's tile-kernel tier (the zero value,
	// align.KernelAuto, enables the bitvector fast path with its
	// provable bit-identical fallback; see align.KernelMode).
	Kernel align.KernelMode
	// KernelDivergence overrides the auto tier's fallback threshold:
	// the maximum allowed gap, in score units, between a tile's
	// perfect-score bound and the bitvector path's rescored bound.
	// Zero picks a geometry-derived default.
	KernelDivergence int
}

// DefaultConfig returns the paper's chosen operating point
// (T=320, O=128, first tile 384, match=+1 mismatch=−1 gap=1).
func DefaultConfig() Config {
	return Config{T: 320, O: 128, FirstTileT: 384, Scoring: align.GACTEval()}
}

func (c *Config) validate() error {
	if c.T <= 0 {
		return fmt.Errorf("gact: tile size T=%d must be positive", c.T)
	}
	if c.O < 0 || c.O >= c.T {
		return fmt.Errorf("gact: overlap O=%d must satisfy 0 ≤ O < T=%d", c.O, c.T)
	}
	if c.FirstTileT < 0 || (c.FirstTileT > 0 && c.FirstTileT <= c.O) {
		return fmt.Errorf("gact: first tile size %d must exceed overlap %d", c.FirstTileT, c.O)
	}
	if c.Kernel > align.KernelBitvector {
		return fmt.Errorf("gact: unknown kernel mode %d", c.Kernel)
	}
	if c.KernelDivergence < 0 {
		return fmt.Errorf("gact: kernel divergence %d must be ≥ 0", c.KernelDivergence)
	}
	return c.Scoring.Validate()
}

func (c *Config) firstT() int {
	if c.FirstTileT > 0 {
		return c.FirstTileT
	}
	return c.T
}

// Stats instruments one extension for the performance model: the
// hardware cost of a GACT alignment is cycles per tile × tiles
// (Section 8), and the software cost tracks DP cells.
type Stats struct {
	// Tiles is the number of Align calls (first tile included).
	Tiles int
	// Cells is the total number of DP cells filled.
	Cells int64
	// FirstTileScore is the score of the first tile (the h_tile
	// filter input, Figure 12).
	FirstTileScore int
}

func (s *Stats) add(rLen, qLen int) {
	s.Tiles++
	s.Cells += int64(rLen) * int64(qLen)
}

// publish folds one extension's counts into the process-wide registry.
func (s *Stats) publish(rejected bool) {
	cExtensions.Inc()
	cTiles.Add(int64(s.Tiles))
	cCells.Add(s.Cells)
	hFirstScore.Observe(float64(s.FirstTileScore))
	hTilesPerExt.Observe(float64(s.Tiles))
	if rejected {
		cHTileRejects.Inc()
	}
}

// Extend aligns Q against R around the D-SOFT candidate position
// (iSeed, jSeed) — the seed-hit position of a candidate bin. The first
// tile (size FirstTileT, default T) spans forward from the candidate,
// R[iSeed:iSeed+T'] × Q[jSeed:jSeed+T'], so a candidate near the start
// of the query (where D-SOFT draws its seeds) still sees a full tile
// of context — the geometry the h_tile filter of Figure 12 assumes.
// Traceback starts at the tile's highest-scoring cell; left and then
// right extension tiles follow per Algorithm 2.
//
// It returns the alignment (global coordinates, forward order) and
// tile statistics. The candidate must satisfy 0 ≤ iSeed < len(R),
// 0 ≤ jSeed < len(Q). A nil result with nil error means the candidate
// was rejected: the first tile was empty or scored below MinFirstTile.
func Extend(R, Q dna.Seq, iSeed, jSeed int, cfg *Config) (*align.Result, *Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if iSeed < 0 || iSeed >= len(R) || jSeed < 0 || jSeed >= len(Q) {
		return nil, nil, fmt.Errorf("gact: seed position (%d,%d) outside R[0,%d) × Q[0,%d)", iSeed, jSeed, len(R), len(Q))
	}
	defer tAlign.Time()()
	stats := &Stats{}

	// First tile, spanning forward from the candidate. Traceback
	// starts at the highest-scoring cell.
	fT := cfg.firstT()
	iEnd, jEnd := min(len(R), iSeed+fT), min(len(Q), jSeed+fT)
	ftStart := time.Now()
	endSpan := obs.Trace.Start("gact.first_tile")
	first := align.AlignTile(R[iSeed:iEnd], Q[jSeed:jEnd], true, fT-cfg.O, &cfg.Scoring)
	endSpan()
	tFirstTile.Observe(time.Since(ftStart))
	stats.add(iEnd-iSeed, jEnd-jSeed)
	stats.FirstTileScore = first.Score
	if first.Score <= 0 || len(first.Cigar) == 0 || first.Score < cfg.MinFirstTile {
		stats.publish(true)
		return nil, stats, nil
	}

	// Global coordinates of the alignment's right end (the first
	// tile's max cell) and of the running left end.
	rightI := iSeed + first.MaxI
	rightJ := jSeed + first.MaxJ
	curI := rightI - first.IOff
	curJ := rightJ - first.JOff
	cigar := first.Cigar

	// Left extension (Algorithm 2 with t already consumed).
	leftCigar, leftI, leftJ := extendLeft(R, Q, curI, curJ, cfg, stats)
	cigar = leftCigar.Concat(cigar)

	// Right extension: Algorithm 2 on reversed sequences from the
	// mirrored right end.
	rR, rQ := dna.Reverse(R), dna.Reverse(Q)
	revCigar, revI, revJ := extendLeft(rR, rQ, len(R)-rightI, len(Q)-rightJ, cfg, stats)
	rightI = len(R) - revI
	rightJ = len(Q) - revJ
	cigar = cigar.Concat(revCigar.Reverse())

	res := &align.Result{
		RefStart:   leftI,
		RefEnd:     rightI,
		QueryStart: leftJ,
		QueryEnd:   rightJ,
		Cigar:      cigar,
	}
	res.Score = res.Rescore(R, Q, &cfg.Scoring)
	stats.publish(false)
	return res, stats, nil
}

// extendLeft runs the non-first-tile loop of Algorithm 2 from
// (iCurr, jCurr), returning the prepended path and the final left-end
// coordinates. With YDrop set, the extension rolls back to the
// best-scoring tile boundary once the cumulative score drops too far.
func extendLeft(R, Q dna.Seq, iCurr, jCurr int, cfg *Config, stats *Stats) (align.Cigar, int, int) {
	type tileStep struct {
		cigar      align.Cigar
		i, j       int // coordinates after consuming this tile
		cumulative int
	}
	var steps []tileStep
	cum, bestCum, bestIdx := 0, 0, -1
	for iCurr > 0 && jCurr > 0 {
		iStart, jStart := max(0, iCurr-cfg.T), max(0, jCurr-cfg.T)
		endSpan := obs.Trace.Start("gact.tile")
		res := align.AlignTile(R[iStart:iCurr], Q[jStart:jCurr], false, cfg.T-cfg.O, &cfg.Scoring)
		endSpan()
		stats.add(iCurr-iStart, jCurr-jStart)
		if res.IOff == 0 && res.JOff == 0 {
			break
		}
		// Score the consumed path segment for the Y-drop accounting.
		seg := align.Result{
			RefStart: iCurr - res.IOff, RefEnd: iCurr,
			QueryStart: jCurr - res.JOff, QueryEnd: jCurr,
			Cigar: res.Cigar,
		}
		cum += seg.Rescore(R, Q, &cfg.Scoring)
		iCurr -= res.IOff
		jCurr -= res.JOff
		steps = append(steps, tileStep{cigar: res.Cigar, i: iCurr, j: jCurr, cumulative: cum})
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(steps) - 1
		}
		if cfg.YDrop > 0 && cum < bestCum-cfg.YDrop {
			break
		}
	}
	// Keep tiles up to the cumulative maximum when Y-drop is active;
	// otherwise keep everything (Algorithm 2's behaviour).
	keep := len(steps)
	if cfg.YDrop > 0 {
		keep = bestIdx + 1
	}
	var cigar align.Cigar
	endI, endJ := iCurr, jCurr
	if keep < len(steps) {
		if keep == 0 {
			// Roll all the way back to the extension origin.
			if len(steps) > 0 {
				first := steps[0]
				endI = first.i + first.cigar.RefLen()
				endJ = first.j + first.cigar.QueryLen()
			}
			return nil, endI, endJ
		}
		endI, endJ = steps[keep-1].i, steps[keep-1].j
	}
	// Forward path order: the last-kept tile is leftmost.
	for x := keep - 1; x >= 0; x-- {
		cigar = cigar.Concat(steps[x].cigar)
	}
	return cigar, endI, endJ
}

// ExtendLeftOnly runs pure left extension per Algorithm 2 from
// (iSeed, jSeed), first tile included — useful for validating the
// algorithm in isolation (Figure 4's example is a left extension).
func ExtendLeftOnly(R, Q dna.Seq, iSeed, jSeed int, cfg *Config) (*align.Result, *Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if iSeed <= 0 || iSeed > len(R) || jSeed <= 0 || jSeed > len(Q) {
		return nil, nil, fmt.Errorf("gact: seed position (%d,%d) outside R[0,%d] × Q[0,%d]", iSeed, jSeed, len(R), len(Q))
	}
	defer tAlign.Time()()
	stats := &Stats{}
	fT := cfg.firstT()
	iStart, jStart := max(0, iSeed-fT), max(0, jSeed-fT)
	first := align.AlignTile(R[iStart:iSeed], Q[jStart:jSeed], true, fT-cfg.O, &cfg.Scoring)
	stats.add(iSeed-iStart, jSeed-jStart)
	stats.FirstTileScore = first.Score
	if first.Score <= 0 || len(first.Cigar) == 0 {
		stats.publish(true)
		return nil, stats, nil
	}
	rightI := iStart + first.MaxI
	rightJ := jStart + first.MaxJ
	curI := rightI - first.IOff
	curJ := rightJ - first.JOff
	leftCigar, leftI, leftJ := extendLeft(R, Q, curI, curJ, cfg, stats)
	cigar := leftCigar.Concat(first.Cigar)
	res := &align.Result{
		RefStart:   leftI,
		RefEnd:     rightI,
		QueryStart: leftJ,
		QueryEnd:   rightJ,
		Cigar:      cigar,
	}
	res.Score = res.Rescore(R, Q, &cfg.Scoring)
	stats.publish(false)
	return res, stats, nil
}
