package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags bundles the standard observability CLI surface every tool
// exposes: -debug-addr, -report, and -trace-out.
type Flags struct {
	DebugAddr  string
	ReportPath string
	TracePath  string
}

// AddFlags registers the observability flags on fs (usually
// flag.CommandLine) and returns the destination struct.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve pprof/expvar/stage-summary debug HTTP on this address (e.g. :6060, :0; empty disables)")
	fs.StringVar(&f.ReportPath, "report", "", "write a machine-readable JSON run report to this path on exit")
	fs.StringVar(&f.TracePath, "trace-out", "", "write Chrome trace_event JSON spans to this path on exit")
	return f
}

// Session is one observed tool invocation: a Run over the Default
// registry plus the optional debug server and tracer, started from
// parsed Flags. Close writes the report and trace and stops the
// server.
type Session struct {
	Run    *Run
	flags  *Flags
	server *Server
}

// Start begins the session: starts the debug server if requested,
// enables the tracer if a trace path was given, and opens the Run.
// Progress and the final report measure from this moment.
func (f *Flags) Start(tool string) (*Session, error) {
	s := &Session{flags: f}
	if f.DebugAddr != "" {
		srv, err := ServeDebug(f.DebugAddr, Default, Trace)
		if err != nil {
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s/ (pprof, /debug/vars, /debug/stages)\n", tool, srv.Addr())
	}
	if f.TracePath != "" {
		Trace.Enable()
	}
	s.Run = NewRun(tool)
	return s, nil
}

// DebugAddr returns the bound debug address, or "" when disabled.
func (s *Session) DebugAddr() string {
	if s.server == nil {
		return ""
	}
	return s.server.Addr()
}

// Close finalizes the session: writes the JSON report and the Chrome
// trace if their paths were set, then shuts down the debug server.
// Write failures are reported on stderr as well as returned, since
// callers commonly defer Close and drop the error.
func (s *Session) Close() error {
	var firstErr error
	if s.flags.ReportPath != "" {
		rep := s.Run.Report()
		rep.Args = os.Args[1:]
		if err := rep.WriteJSON(s.flags.ReportPath); err != nil {
			fmt.Fprintf(os.Stderr, "%s: failed to write run report: %v\n", rep.Tool, err)
			firstErr = err
		} else {
			fmt.Fprintf(os.Stderr, "%s: wrote run report to %s (%d stages, %.2fs wall)\n",
				rep.Tool, s.flags.ReportPath, len(rep.Stages), rep.WallSeconds)
		}
	}
	if s.flags.TracePath != "" {
		f, err := os.Create(s.flags.TracePath)
		if err == nil {
			err = Trace.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil && Trace.Dropped() > 0 {
				fmt.Fprintf(os.Stderr, "obs: trace capped, %d spans dropped\n", Trace.Dropped())
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: failed to write trace: %v\n", err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if s.server != nil {
		if err := s.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
