package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics exposition of a Registry snapshot.
//
// The registry's slash-separated names ("core/reads",
// "stage/align") map to Prometheus-legal names under a stable scheme:
//
//	counter   core/reads            -> darwin_core_reads_total
//	gauge     core/workers          -> darwin_core_workers
//	timer     stage/align           -> darwin_stage_align_seconds_total
//	                                   darwin_stage_align_calls_total
//	histogram core/map_latency_ms   -> darwin_core_map_latency_ms_bucket{le=...}
//	                                   darwin_core_map_latency_ms_sum
//	                                   darwin_core_map_latency_ms_count
//
// A timer is two counters (accumulated seconds and observation count)
// so scrapers can derive rates with their own windows; a fixed-width
// histogram becomes cumulative le-buckets at its bin edges plus +Inf.
// Under-range observations are merged into the first bucket (they are
// ≤ every edge); over-range ones appear only in +Inf, matching
// Prometheus semantics where +Inf equals the total count.

// MetricPrefix namespaces every exposed metric family.
const MetricPrefix = "darwin_"

var nameSanitizer = regexp.MustCompile(`[^a-zA-Z0-9_:]`)

// MetricName converts a registry name to its OpenMetrics family base
// name (no prefix-type suffix): "core/map_latency_ms" ->
// "darwin_core_map_latency_ms".
func MetricName(registryName string) string {
	return MetricPrefix + nameSanitizer.ReplaceAllString(registryName, "_")
}

type metricFamily struct {
	name    string // family name (without _total etc. for counters)
	typ     string // counter | gauge | histogram
	help    string
	samples []string // fully rendered sample lines
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format,
// families sorted by name, terminated by "# EOF".
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	fams := make([]metricFamily, 0, len(s.Counters)+len(s.Gauges)+2*len(s.Timers)+len(s.Histograms))
	for name, v := range s.Counters {
		base := MetricName(name)
		fams = append(fams, metricFamily{
			name:    base,
			typ:     "counter",
			help:    "registry counter " + name,
			samples: []string{fmt.Sprintf("%s_total %d", base, v)},
		})
	}
	for name, v := range s.Gauges {
		base := MetricName(name)
		fams = append(fams, metricFamily{
			name:    base,
			typ:     "gauge",
			help:    "registry gauge " + name,
			samples: []string{fmt.Sprintf("%s %d", base, v)},
		})
	}
	for name, t := range s.Timers {
		base := MetricName(name)
		fams = append(fams,
			metricFamily{
				name:    base + "_seconds",
				typ:     "counter",
				help:    "accumulated seconds in timer " + name,
				samples: []string{fmt.Sprintf("%s_seconds_total %s", base, formatFloat(t.Seconds))},
			},
			metricFamily{
				name:    base + "_calls",
				typ:     "counter",
				help:    "observation count of timer " + name,
				samples: []string{fmt.Sprintf("%s_calls_total %d", base, t.Count)},
			},
		)
	}
	for name, h := range s.Histograms {
		base := MetricName(name)
		fam := metricFamily{name: base, typ: "histogram", help: "registry histogram " + name}
		width := (h.Max - h.Min) / float64(len(h.Counts))
		cum := h.Under
		for i := range h.Counts {
			cum += h.Counts[i]
			edge := h.Min + width*float64(i+1)
			fam.samples = append(fam.samples,
				fmt.Sprintf("%s_bucket{le=%q} %d", base, formatFloat(edge), cum))
		}
		fam.samples = append(fam.samples,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", base, h.Count),
			fmt.Sprintf("%s_sum %s", base, formatFloat(h.Sum)),
			fmt.Sprintf("%s_count %d", base, h.Count),
		)
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.samples {
			fmt.Fprintln(bw, line)
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// formatFloat renders a float without exponent notation surprises for
// round values ("100" not "1e+02") while keeping full precision.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	familyNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( \d+(\.\d+)?)?$`)
)

// LintOpenMetrics validates an OpenMetrics text exposition: every
// sample must belong to a previously declared # TYPE family (counter
// samples via the _total/_seconds_total convention, histogram samples
// via _bucket/_sum/_count), no family may be declared twice, histogram
// buckets must be cumulative and end at +Inf == count, and the stream
// must end with "# EOF". It is the shared validator behind both the
// unit tests and scripts/metrics_lint.sh.
func LintOpenMetrics(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	declared := map[string]string{} // family -> type
	var lastLine string
	var lineNo int
	type histState struct {
		prev     int64
		prevLe   float64
		sawInf   bool
		infCount int64
	}
	hists := map[string]*histState{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		lastLine = line
		if line == "" {
			return fmt.Errorf("line %d: blank line not allowed", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "EOF":
				continue
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !familyNameRe.MatchString(name) {
					return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped", "info", "stateset", "unknown":
				default:
					return fmt.Errorf("line %d: invalid metric type %q", lineNo, typ)
				}
				if _, dup := declared[name]; dup {
					return fmt.Errorf("line %d: duplicate family %q", lineNo, name)
				}
				declared[name] = typ
			case "HELP", "UNIT":
				// free-form
			default:
				return fmt.Errorf("line %d: unknown comment directive %q", lineNo, fields[1])
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		sample, labels, value := m[1], m[2], m[3]
		fam, suffix := familyOf(sample, declared)
		if fam == "" {
			return fmt.Errorf("line %d: sample %q belongs to no declared family (unregistered metric)", lineNo, sample)
		}
		typ := declared[fam]
		switch typ {
		case "counter":
			if suffix != "_total" && suffix != "_created" {
				return fmt.Errorf("line %d: counter sample %q must end in _total", lineNo, sample)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				le := extractLe(labels)
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				cum, err := strconv.ParseInt(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: non-integer bucket count %q", lineNo, value)
				}
				st := hists[fam]
				if st == nil {
					st = &histState{prevLe: math.Inf(-1)}
					hists[fam] = st
				}
				if le == "+Inf" {
					st.sawInf = true
					st.infCount = cum
				} else {
					edge, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le value %q", lineNo, le)
					}
					if edge <= st.prevLe {
						return fmt.Errorf("line %d: bucket edges not increasing in %s (%g after %g)", lineNo, fam, edge, st.prevLe)
					}
					st.prevLe = edge
				}
				if cum < st.prev {
					return fmt.Errorf("line %d: non-cumulative bucket counts in %s", lineNo, fam)
				}
				st.prev = cum
			case "_sum":
			case "_count":
				n, err := strconv.ParseInt(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: non-integer histogram count %q", lineNo, value)
				}
				st := hists[fam]
				if st == nil || !st.sawInf {
					return fmt.Errorf("line %d: histogram %s has _count before +Inf bucket", lineNo, fam)
				}
				if n != st.infCount {
					return fmt.Errorf("line %d: histogram %s +Inf bucket (%d) != _count (%d)", lineNo, fam, st.infCount, n)
				}
			default:
				return fmt.Errorf("line %d: sample %q is not a valid histogram series", lineNo, sample)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lastLine != "# EOF" {
		return fmt.Errorf("exposition does not end with # EOF (last line %q)", lastLine)
	}
	for fam, st := range hists {
		if !st.sawInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", fam)
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family and the
// suffix that ties it there: an exact match (gauges), or the
// counter/histogram series suffixes.
func familyOf(sample string, declared map[string]string) (fam, suffix string) {
	if _, ok := declared[sample]; ok {
		return sample, ""
	}
	for _, suf := range []string{"_total", "_created", "_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(sample, suf)
		if !found {
			continue
		}
		if _, ok := declared[base]; ok {
			return base, suf
		}
	}
	return "", ""
}

func extractLe(labels string) string {
	if labels == "" {
		return ""
	}
	for _, part := range strings.Split(strings.Trim(labels, "{}"), ",") {
		k, v, ok := strings.Cut(part, "=")
		if ok && k == "le" {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}
