package obs

import (
	"math"
	"testing"
	"time"
)

// fakeClock drives the rolling estimators deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func TestRollingQuantileConvergesOnKnownDistribution(t *testing.T) {
	clk := newFakeClock()
	rq := NewRollingQuantile(time.Minute)
	rq.now = clk.now

	// A uniform 0..999 stream spread over 30 seconds: the true p50 is
	// ~500, p95 ~950, p99 ~990. Reservoir sampling over 64x30 slots
	// should land within a few percent.
	v := 0
	for sec := 0; sec < 30; sec++ {
		for i := 0; i < 100; i++ {
			rq.Observe(float64(v % 1000))
			v += 7 // coprime with 1000: full cycle, deterministic
		}
		clk.advance(time.Second)
	}

	st := rq.Window(time.Minute)
	if st.Count != 3000 {
		t.Fatalf("window count = %d, want 3000", st.Count)
	}
	wantSum := 0.0
	v = 0
	for i := 0; i < 3000; i++ {
		wantSum += float64(v % 1000)
		v += 7
	}
	if math.Abs(st.Sum-wantSum) > 1e-6 {
		t.Fatalf("window sum = %f, want %f", st.Sum, wantSum)
	}
	for _, q := range []struct {
		got, want, tol float64
	}{
		{st.P50, 500, 60},
		{st.P95, 950, 40},
		{st.P99, 990, 25},
	} {
		if math.Abs(q.got-q.want) > q.tol {
			t.Errorf("quantile = %.1f, want %.1f ± %.0f", q.got, q.want, q.tol)
		}
	}
}

func TestRollingQuantileWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	rq := NewRollingQuantile(5 * time.Minute)
	rq.now = clk.now

	rq.Observe(100) // old observation
	clk.advance(2 * time.Minute)
	rq.Observe(1) // recent observation

	oneMin := rq.Window(time.Minute)
	if oneMin.Count != 1 {
		t.Fatalf("1m window count = %d, want 1 (old sample leaked in)", oneMin.Count)
	}
	if oneMin.P99 != 1 {
		t.Fatalf("1m p99 = %f, want 1", oneMin.P99)
	}
	fiveMin := rq.Window(5 * time.Minute)
	if fiveMin.Count != 2 {
		t.Fatalf("5m window count = %d, want 2", fiveMin.Count)
	}

	// Ring reuse: after the full span passes, old slots must not
	// resurface.
	clk.advance(6 * time.Minute)
	if got := rq.Window(5 * time.Minute); got.Count != 0 {
		t.Fatalf("expired window count = %d, want 0", got.Count)
	}
}

func TestRollingQuantileEmpty(t *testing.T) {
	rq := NewRollingQuantile(time.Minute)
	st := rq.Window(time.Minute)
	if st.Count != 0 || st.P50 != 0 || st.P99 != 0 {
		t.Fatalf("empty window = %+v", st)
	}
	if q := rq.Quantile(time.Minute, 0.99); q != 0 {
		t.Fatalf("empty quantile = %f", q)
	}
}

func TestRollingCounterRates(t *testing.T) {
	clk := newFakeClock()
	rc := NewRollingCounter(5 * time.Minute)
	rc.now = clk.now

	for sec := 0; sec < 60; sec++ {
		if sec > 0 {
			clk.advance(time.Second)
		}
		rc.Add(10)
	}
	if got := rc.Total(time.Minute); got != 600 {
		t.Fatalf("1m total = %d, want 600", got)
	}
	if got := rc.Rate(time.Minute); math.Abs(got-10) > 0.5 {
		t.Fatalf("1m rate = %f, want ~10", got)
	}

	clk.advance(4 * time.Minute)
	if got := rc.Total(time.Minute); got != 0 {
		t.Fatalf("1m total after idle = %d, want 0", got)
	}
	// The burst minute is still inside the trailing 5m window here
	// (burst seconds 0..59, now at 299)...
	if got := rc.Total(5 * time.Minute); got != 600 {
		t.Fatalf("5m total = %d, want 600", got)
	}
	// ...and fully outside it one minute later.
	clk.advance(time.Minute)
	if got := rc.Total(5 * time.Minute); got != 0 {
		t.Fatalf("expired 5m total = %d, want 0", got)
	}
}

func TestQuantileOfInterpolates(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	if q := quantileOf(sorted, 0.5); q != 20 {
		t.Fatalf("p50 = %f, want 20", q)
	}
	if q := quantileOf(sorted, 0); q != 0 {
		t.Fatalf("p0 = %f, want 0", q)
	}
	if q := quantileOf(sorted, 1); q != 40 {
		t.Fatalf("p100 = %f, want 40", q)
	}
	if q := quantileOf(sorted, 0.875); math.Abs(q-35) > 1e-9 {
		t.Fatalf("p87.5 = %f, want 35", q)
	}
}
