package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			tm := reg.Timer("t")
			h := reg.Histogram("h", 0, 100, 10)
			for i := 0; i < perG; i++ {
				c.Inc()
				tm.Observe(time.Microsecond)
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["c"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Timers["t"].Count; got != goroutines*perG {
		t.Errorf("timer count = %d, want %d", got, goroutines*perG)
	}
	if got := s.Histograms["h"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var binSum int64
	for _, c := range s.Histograms["h"].Counts {
		binSum += c
	}
	if binSum != goroutines*perG {
		t.Errorf("histogram bin sum = %d, want %d", binSum, goroutines*perG)
	}
}

func TestRegistrySameInstance(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter should return the same instance per name")
	}
	if reg.Histogram("h", 0, 10, 5) != reg.Histogram("h", 0, 99, 50) {
		t.Error("Histogram should ignore params after first creation")
	}
}

func TestSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(5)
	reg.Timer("stage/x").Observe(time.Second)
	base := reg.Snapshot()
	reg.Counter("a").Add(7)
	reg.Counter("b").Add(3)
	reg.Timer("stage/x").Observe(2 * time.Second)
	diff := reg.Snapshot().Sub(base)
	if diff.Counters["a"] != 7 || diff.Counters["b"] != 3 {
		t.Errorf("counter diff wrong: %+v", diff.Counters)
	}
	tx := diff.Timers["stage/x"]
	if tx.Count != 1 || tx.Seconds < 1.99 || tx.Seconds > 2.01 {
		t.Errorf("timer diff wrong: %+v", tx)
	}
	stages := diff.Stages()
	if len(stages) != 1 || stages[0].Name != "x" {
		t.Errorf("stages = %+v, want one stage named x", stages)
	}
}

func TestHistogramClampAndOutOfRange(t *testing.T) {
	h := newHistogram(10, 10, 0) // degenerate config must clamp
	for _, v := range []float64{-5, 10, 10.5, 11, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Under != 1 {
		t.Errorf("under = %d, want 1", s.Under)
	}
	// Range clamps to [10, 11): 10 and 10.5 in-bin, 11 and 100 over.
	if s.Over != 2 {
		t.Errorf("over = %d, want 2", s.Over)
	}
	if got := s.Counts[0]; got != 2 {
		t.Errorf("bin 0 = %d, want 2", got)
	}
	if r := s.Render(20); !strings.Contains(r, "below range") {
		t.Errorf("render missing under-range line:\n%s", r)
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(100)
	if end := tr.Start("off"); end == nil {
		t.Fatal("disabled Start returned nil")
	} else {
		end()
	}
	if tr.Len() != 0 {
		t.Fatal("disabled tracer recorded a span")
	}
	tr.Enable()
	end := tr.StartTID("work", 3)
	time.Sleep(time.Millisecond)
	end()
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e["name"] != "work" || e["ph"] != "X" || e["tid"] != float64(3) {
		t.Errorf("bad event: %+v", e)
	}
	if e["dur"].(float64) < 900 { // ≥ 0.9ms in microseconds
		t.Errorf("dur = %v µs, want ≥ 900", e["dur"])
	}
}

func TestTracerCap(t *testing.T) {
	tr := NewTracer(2)
	tr.Enable()
	for i := 0; i < 5; i++ {
		tr.Start("s")()
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d, want cap 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestServeDebugWhileRunning(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core/reads").Add(42)
	reg.Timer("stage/filter").Observe(time.Second)
	srv, err := ServeDebug("127.0.0.1:0", reg, Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A concurrent writer simulates an in-flight mapping run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Counter("core/reads").Inc()
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars: %d", code)
	} else {
		var v struct {
			Counters   map[string]int64 `json:"counters"`
			Goroutines int              `json:"goroutines"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("/debug/vars not JSON: %v", err)
		} else if v.Counters["core/reads"] < 42 || v.Goroutines < 1 {
			t.Errorf("/debug/vars content wrong: %+v", v)
		}
	}
	if code, body := get("/debug/stages"); code != 200 || !strings.Contains(body, "filter") {
		t.Errorf("/debug/stages: %d\n%s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _ := get("/"); code != 200 {
		t.Errorf("index: %d", code)
	}
}

func TestProgressPrints(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("p")
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	prog := StartProgress(w, "test", "reads", c, 100, 10)
	c.Add(50)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "50/100") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	prog.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "50/100 reads") || !strings.Contains(out, "ETA") {
		t.Errorf("progress output missing rate/ETA: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
