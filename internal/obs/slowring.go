package obs

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// SlowRing keeps the top-K slowest completed requests with their full
// span trees. It is the "why was that one request slow?" surface: the
// Registry says p99 regressed, the ring holds concrete span trees to
// read. Bounded by construction — a min-heap ordered by duration, so
// each Offer is O(log K) and a flood of slow requests displaces
// faster captures instead of growing memory.
type SlowRing struct {
	mu  sync.Mutex
	cap int
	h   slowHeap
}

// SlowCapture is one retained request.
type SlowCapture struct {
	RequestID  string       `json:"request_id"`
	DurationUS int64        `json:"duration_us"`
	Captured   time.Time    `json:"captured"`
	Span       SpanSnapshot `json:"span"`
}

type slowHeap []SlowCapture

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].DurationUS < h[j].DurationUS }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(SlowCapture)) }
func (h *slowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// NewSlowRing returns a ring retaining the k slowest requests (k
// clamped to at least 1).
func NewSlowRing(k int) *SlowRing {
	if k < 1 {
		k = 1
	}
	return &SlowRing{cap: k}
}

// Offer submits a completed request span for retention. The tree is
// snapshotted here, after completion, so captures are immutable.
func (r *SlowRing) Offer(root *Span) {
	if r == nil || root == nil {
		return
	}
	d := root.Duration().Microseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.h) >= r.cap {
		if d <= r.h[0].DurationUS {
			return // faster than the fastest retained capture
		}
		heap.Pop(&r.h)
	}
	heap.Push(&r.h, SlowCapture{
		RequestID:  root.RequestID(),
		DurationUS: d,
		Captured:   time.Now(),
		Span:       root.Snapshot(),
	})
}

// Snapshot returns the retained captures, slowest first.
func (r *SlowRing) Snapshot() []SlowCapture {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SlowCapture, len(r.h))
	copy(out, r.h)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationUS > out[j].DurationUS })
	return out
}

// Len returns the number of retained captures.
func (r *SlowRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.h)
}
