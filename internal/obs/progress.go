package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress watches a registry counter from a background goroutine and
// prints throughput and ETA lines whenever it advances by at least
// `every` units — so the hot loop pays nothing beyond the counter
// increments it already performs.
type Progress struct {
	w     io.Writer
	label string
	unit  string
	c     *Counter
	total int64
	every int64
	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// StartProgress begins watching counter c. total is the expected final
// count (0 disables the ETA); every is the print granularity in
// counter units. Call Stop when the run finishes.
func StartProgress(w io.Writer, label, unit string, c *Counter, total, every int64) *Progress {
	if every < 1 {
		every = 1
	}
	p := &Progress{
		w: w, label: label, unit: unit, c: c, total: total, every: every,
		start: time.Now(), stop: make(chan struct{}), done: make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	var lastPrinted int64
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			v := p.c.Value()
			if v-lastPrinted < p.every {
				continue
			}
			lastPrinted = v - v%p.every
			p.print(v)
		}
	}
}

func (p *Progress) print(v int64) {
	elapsed := time.Since(p.start).Seconds()
	if elapsed <= 0 {
		return
	}
	rate := float64(v) / elapsed
	if p.total > 0 && rate > 0 {
		eta := time.Duration(float64(p.total-v) / rate * float64(time.Second)).Round(time.Second)
		fmt.Fprintf(p.w, "%s: %d/%d %s (%.1f %s/s, ETA %s)\n", p.label, v, p.total, p.unit, rate, p.unit, eta)
	} else {
		fmt.Fprintf(p.w, "%s: %d %s (%.1f %s/s)\n", p.label, v, p.unit, rate, p.unit)
	}
}

// Stop halts the watcher goroutine. It does not print a final line;
// tools already emit their own completion summary.
func (p *Progress) Stop() {
	close(p.stop)
	<-p.done
}
