package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records pipeline spans — one per stage execution (seed
// lookup, D-SOFT query, first-tile filter, per-GACT-tile extension,
// SAM emit, ...) — and can dump them as Chrome trace_event JSON for
// chrome://tracing / Perfetto. Disabled tracers are near-free: Start
// is one atomic load and returns a shared no-op closure.
//
// Span storage is bounded; once the cap is reached further spans are
// counted as dropped rather than grown without bound (a mapping run
// can produce millions of per-tile spans).
type Tracer struct {
	enabled atomic.Bool
	dropped atomic.Int64

	mu    sync.Mutex
	base  time.Time
	spans []span
	max   int
}

type span struct {
	name  string
	tid   int32
	start time.Duration // offset from base
	dur   time.Duration
}

// Trace is the process-wide tracer the pipeline packages record into.
// It starts disabled; CLIs enable it when span output is requested.
var Trace = NewTracer(1 << 18)

// NewTracer returns a disabled tracer storing at most maxSpans spans.
func NewTracer(maxSpans int) *Tracer {
	if maxSpans < 1 {
		maxSpans = 1
	}
	return &Tracer{max: maxSpans}
}

// Enable turns span recording on.
func (t *Tracer) Enable() {
	t.mu.Lock()
	if t.base.IsZero() {
		t.base = time.Now()
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

var noopEnd = func() {}

// Start opens a span on thread-track 0; the returned func closes it.
func (t *Tracer) Start(name string) func() { return t.StartTID(name, 0) }

// StartTID opens a span on the given thread track (e.g. a worker
// index, so per-worker lanes separate in the trace viewer).
func (t *Tracer) StartTID(name string, tid int) func() {
	if !t.enabled.Load() {
		return noopEnd
	}
	start := time.Now()
	return func() {
		dur := time.Since(start)
		t.mu.Lock()
		if len(t.spans) >= t.max {
			t.mu.Unlock()
			t.dropped.Add(1)
			return
		}
		t.spans = append(t.spans, span{name: name, tid: int32(tid), start: start.Sub(t.base), dur: dur})
		t.mu.Unlock()
	}
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded at the storage cap.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Reset discards all recorded spans and the drop count.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.base = time.Now()
	t.mu.Unlock()
	t.dropped.Store(0)
}

// chromeEvent is one trace_event entry ("X" = complete event,
// timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	PID  int     `json:"pid"`
	TID  int32   `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// WriteChromeTrace dumps the recorded spans as a Chrome trace_event
// JSON array, loadable in chrome://tracing or ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]chromeEvent, len(t.spans))
	for i, s := range t.spans {
		events[i] = chromeEvent{
			Name: s.name,
			Ph:   "X",
			PID:  1,
			TID:  s.tid,
			Ts:   float64(s.start) / float64(time.Microsecond),
			Dur:  float64(s.dur) / float64(time.Microsecond),
		}
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
