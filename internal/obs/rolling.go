package obs

import (
	"sort"
	"sync"
	"time"
)

// Rolling-window estimators for the /v1/stats SLO surface. The
// Registry's counters and timers are cumulative since process start;
// SLOs are about the last minute. RollingQuantile and RollingCounter
// keep a ring of per-second slots covering the longest window of
// interest, so "p99 map latency over 1m" and "reads/s over 5m" are
// answerable at any instant without external tooling.

// rollingSlotSamples bounds the per-second reservoir. 64 samples per
// second over a 60-second window gives ~3840 merged samples per
// quantile query — enough for a stable p99 at serving rates, bounded
// regardless of load.
const rollingSlotSamples = 64

type rollingSlot struct {
	sec     int64 // unix second this slot currently represents
	count   int64
	sum     float64
	samples []float64 // reservoir, capacity rollingSlotSamples
}

// RollingQuantile estimates quantiles over trailing time windows from
// a reservoir-sampled ring of per-second slots. Safe for concurrent
// use. The zero value is not usable; call NewRollingQuantile.
type RollingQuantile struct {
	mu    sync.Mutex
	slots []rollingSlot
	rng   uint64 // xorshift state; deterministic, no global rand
	now   func() time.Time
}

// NewRollingQuantile returns an estimator whose ring covers window
// (rounded up to whole seconds; at least 1s).
func NewRollingQuantile(window time.Duration) *RollingQuantile {
	n := int((window + time.Second - 1) / time.Second)
	if n < 1 {
		n = 1
	}
	return &RollingQuantile{
		slots: make([]rollingSlot, n),
		rng:   0x9e3779b97f4a7c15,
		now:   time.Now,
	}
}

func (r *RollingQuantile) xorshift() uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng
}

// Observe records one value at the current time.
func (r *RollingQuantile) Observe(v float64) {
	sec := r.now().Unix()
	r.mu.Lock()
	s := &r.slots[sec%int64(len(r.slots))]
	if s.sec != sec {
		s.sec = sec
		s.count = 0
		s.sum = 0
		s.samples = s.samples[:0]
	}
	s.count++
	s.sum += v
	if len(s.samples) < rollingSlotSamples {
		s.samples = append(s.samples, v)
	} else if i := int(r.xorshift() % uint64(s.count)); i < rollingSlotSamples {
		s.samples[i] = v
	}
	r.mu.Unlock()
}

// WindowStats summarizes one trailing window.
type WindowStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Window merges the slots inside the trailing window and returns
// count, sum, and the standard SLO quantiles. window is clamped to
// the ring's span.
func (r *RollingQuantile) Window(window time.Duration) WindowStats {
	nowSec := r.now().Unix()
	span := int64(window / time.Second)
	if span < 1 {
		span = 1
	}
	if span > int64(len(r.slots)) {
		span = int64(len(r.slots))
	}
	// The current second is still filling; include it anyway — SLO
	// windows care about recency more than exact second alignment.
	oldest := nowSec - span + 1

	var out WindowStats
	merged := make([]float64, 0, int(span)*rollingSlotSamples)
	r.mu.Lock()
	for i := range r.slots {
		s := &r.slots[i]
		if s.sec < oldest || s.sec > nowSec {
			continue
		}
		out.Count += s.count
		out.Sum += s.sum
		merged = append(merged, s.samples...)
	}
	r.mu.Unlock()
	if len(merged) == 0 {
		return out
	}
	sort.Float64s(merged)
	out.P50 = quantileOf(merged, 0.50)
	out.P95 = quantileOf(merged, 0.95)
	out.P99 = quantileOf(merged, 0.99)
	return out
}

// Quantile returns a single quantile q in [0,1] over the trailing
// window.
func (r *RollingQuantile) Quantile(window time.Duration, q float64) float64 {
	nowSec := r.now().Unix()
	span := int64(window / time.Second)
	if span < 1 {
		span = 1
	}
	if span > int64(len(r.slots)) {
		span = int64(len(r.slots))
	}
	oldest := nowSec - span + 1
	var merged []float64
	r.mu.Lock()
	for i := range r.slots {
		s := &r.slots[i]
		if s.sec >= oldest && s.sec <= nowSec {
			merged = append(merged, s.samples...)
		}
	}
	r.mu.Unlock()
	if len(merged) == 0 {
		return 0
	}
	sort.Float64s(merged)
	return quantileOf(merged, q)
}

// quantileOf reads quantile q from sorted values (nearest-rank with
// linear interpolation).
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// RollingCounter counts events in per-second slots for trailing-window
// rates (reads/s, errors/s). Safe for concurrent use.
type RollingCounter struct {
	mu    sync.Mutex
	slots []struct {
		sec   int64
		count int64
	}
	now func() time.Time
}

// NewRollingCounter returns a counter whose ring covers window.
func NewRollingCounter(window time.Duration) *RollingCounter {
	n := int((window + time.Second - 1) / time.Second)
	if n < 1 {
		n = 1
	}
	rc := &RollingCounter{now: time.Now}
	rc.slots = make([]struct {
		sec   int64
		count int64
	}, n)
	return rc
}

// Add counts n events at the current time.
func (r *RollingCounter) Add(n int64) {
	sec := r.now().Unix()
	r.mu.Lock()
	s := &r.slots[sec%int64(len(r.slots))]
	if s.sec != sec {
		s.sec = sec
		s.count = 0
	}
	s.count += n
	r.mu.Unlock()
}

// Inc counts one event.
func (r *RollingCounter) Inc() { r.Add(1) }

// Total returns the event count inside the trailing window.
func (r *RollingCounter) Total(window time.Duration) int64 {
	nowSec := r.now().Unix()
	span := int64(window / time.Second)
	if span < 1 {
		span = 1
	}
	if span > int64(len(r.slots)) {
		span = int64(len(r.slots))
	}
	oldest := nowSec - span + 1
	var total int64
	r.mu.Lock()
	for i := range r.slots {
		if r.slots[i].sec >= oldest && r.slots[i].sec <= nowSec {
			total += r.slots[i].count
		}
	}
	r.mu.Unlock()
	return total
}

// Rate returns events per second over the trailing window.
func (r *RollingCounter) Rate(window time.Duration) float64 {
	span := window.Seconds()
	if span < 1 {
		span = 1
	}
	if max := float64(len(r.slots)); span > max {
		span = max
	}
	return float64(r.Total(window)) / span
}
