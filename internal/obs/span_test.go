package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("x", 1)
	s.AddAttr("x", 1)
	if _, ok := s.Attr("x"); ok {
		t.Fatal("nil span reported an attribute")
	}
	if c := s.StartChild("child"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if got := s.RequestID(); got != "" {
		t.Fatalf("nil span request ID = %q", got)
	}
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	snap := s.Snapshot()
	if snap.Name != "" {
		t.Fatalf("nil span snapshot = %+v", snap)
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	root := NewRequestSpan("req-123", "http POST /v1/map")
	ctx := ContextWithSpan(context.Background(), root)

	if got := RequestIDFromContext(ctx); got != "req-123" {
		t.Fatalf("RequestIDFromContext = %q", got)
	}

	cctx, child := StartSpan(ctx, "core.map")
	if child == nil {
		t.Fatal("StartSpan returned nil child under a traced context")
	}
	child.SetAttr("reads", 4)
	child.AddAttr("reads", 2)
	if v, _ := child.Attr("reads"); v != 6 {
		t.Fatalf("reads attr = %d, want 6", v)
	}
	if got := RequestIDFromContext(cctx); got != "req-123" {
		t.Fatalf("child context lost request ID: %q", got)
	}

	_, grand := StartSpan(cctx, "gact.extend")
	grand.SetAttr("tiles", 9)
	grand.End()
	child.End()
	root.End()

	snap := root.Snapshot()
	if snap.RequestID != "req-123" {
		t.Fatalf("root snapshot request_id = %q", snap.RequestID)
	}
	cm := snap.Find("core.map")
	if cm == nil {
		t.Fatal("core.map span missing from snapshot")
	}
	if cm.Attrs["reads"] != 6 {
		t.Fatalf("core.map reads attr = %d", cm.Attrs["reads"])
	}
	ge := snap.Find("gact.extend")
	if ge == nil || ge.Attrs["tiles"] != 9 {
		t.Fatalf("gact.extend span missing or wrong: %+v", ge)
	}
	// Depth ordering: child spans start at or after their parent.
	if cm.StartUS < snap.StartUS {
		t.Fatalf("child starts before root: %d < %d", cm.StartUS, snap.StartUS)
	}

	// The snapshot must be valid JSON with stable field names.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back SpanSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if back.Find("gact.extend") == nil {
		t.Fatal("round-tripped snapshot lost gact.extend")
	}
}

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	c2, sp := StartSpan(ctx, "core.map")
	if sp != nil {
		t.Fatal("StartSpan minted a span without a root in context")
	}
	if c2 != ctx {
		t.Fatal("StartSpan allocated a new context on the untraced path")
	}
}

func TestSpanChildCapDropsNotGrows(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < maxSpanChildren+10; i++ {
		root.StartChild("c").End()
	}
	snap := root.Snapshot()
	if len(snap.Children) != maxSpanChildren {
		t.Fatalf("children = %d, want cap %d", len(snap.Children), maxSpanChildren)
	}
	if snap.DroppedChildren != 10 {
		t.Fatalf("dropped = %d, want 10", snap.DroppedChildren)
	}
}

func TestSpanAdoptSharedBatch(t *testing.T) {
	// Two requests coalesced into one batch: the shared batch span is
	// adopted into both trees, and each root keeps its own request ID.
	a := NewRequestSpan("req-a", "map")
	b := NewRequestSpan("req-b", "map")
	batch := NewSpan("server.batch")
	batch.SetAttr("reads", 8)
	batch.End()
	a.Adopt(batch)
	b.Adopt(batch)
	a.End()
	b.End()

	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.RequestID != "req-a" || sb.RequestID != "req-b" {
		t.Fatalf("request IDs did not survive batching: %q, %q", sa.RequestID, sb.RequestID)
	}
	fa, fb := sa.Find("server.batch"), sb.Find("server.batch")
	if fa == nil || fb == nil {
		t.Fatal("batch span missing from an adopting tree")
	}
	if fa.Attrs["reads"] != 8 || fb.Attrs["reads"] != 8 {
		t.Fatal("batch attrs missing from an adopting tree")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := root.StartChild("worker")
				c.AddAttr("n", 1)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	snap := root.Snapshot()
	if got := len(snap.Children) + snap.DroppedChildren; got != 160 {
		t.Fatalf("children+dropped = %d, want 160", got)
	}
}

func TestAddTimedChild(t *testing.T) {
	root := NewSpan("root")
	start := time.Now().Add(-3 * time.Millisecond)
	c := root.AddTimedChild("stage/filter", start, 2*time.Millisecond)
	c.SetAttr("candidates", 7)
	root.End()
	snap := root.Snapshot()
	f := snap.Find("stage/filter")
	if f == nil {
		t.Fatal("timed child missing")
	}
	if f.DurationUS != 2000 {
		t.Fatalf("timed child duration = %dus, want 2000", f.DurationUS)
	}
	if f.InProgress {
		t.Fatal("timed child reported in-progress")
	}
	if f.Attrs["candidates"] != 7 {
		t.Fatal("timed child attrs lost")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request ID lengths = %d, %d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("two minted request IDs collided")
	}
}

func TestSlowRingTopK(t *testing.T) {
	ring := NewSlowRing(3)
	durations := []time.Duration{5, 1, 9, 3, 7, 2} // milliseconds
	for i, d := range durations {
		s := NewRequestSpan(string(rune('a'+i)), "req")
		s.mu.Lock()
		s.start = time.Now().Add(-d * time.Millisecond)
		s.mu.Unlock()
		s.End()
		ring.Offer(s)
	}
	caps := ring.Snapshot()
	if len(caps) != 3 {
		t.Fatalf("retained %d captures, want 3", len(caps))
	}
	// Slowest-first: 9ms, 7ms, 5ms — request IDs c, e, a.
	want := []string{"c", "e", "a"}
	for i, c := range caps {
		if c.RequestID != want[i] {
			t.Fatalf("capture %d = %q, want %q (order %+v)", i, c.RequestID, want[i], caps)
		}
	}
	if caps[0].Span.Name != "req" {
		t.Fatal("capture lost its span tree")
	}
}

func TestSlowRingNilSafety(t *testing.T) {
	var ring *SlowRing
	ring.Offer(NewSpan("x"))
	if ring.Len() != 0 || ring.Snapshot() != nil {
		t.Fatal("nil ring misbehaved")
	}
	NewSlowRing(2).Offer(nil)
}

func TestSpanLabels(t *testing.T) {
	s := NewRequestSpan("rid", "root")
	hop := s.StartChild("cluster.scatter")
	hop.SetLabel("worker", "worker-1")
	hop.SetLabel("worker", "worker-2") // replaces
	hop.End()
	s.End()
	if v, ok := hop.Label("worker"); !ok || v != "worker-2" {
		t.Fatalf("Label = %q, %v; want worker-2, true", v, ok)
	}
	if _, ok := hop.Label("missing"); ok {
		t.Fatal("missing label reported present")
	}
	snap := s.Snapshot()
	if got := snap.Children[0].Labels["worker"]; got != "worker-2" {
		t.Fatalf("snapshot label = %q, want worker-2", got)
	}
	// Labels must round-trip the snapshot's JSON form (it is served by
	// /debug/slow) and stay nil-safe.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"labels":{"worker":"worker-2"}`) {
		t.Fatalf("snapshot JSON missing labels: %s", b)
	}
	var nilSpan *Span
	nilSpan.SetLabel("k", "v")
	if _, ok := nilSpan.Label("k"); ok {
		t.Fatal("nil span stored a label")
	}
}
