package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one node of a request-scoped trace tree: a named, timed
// stage of one request's journey through the serving path (admission,
// index load, queue wait, batch execution, per-read mapping, GACT
// extension), with integer attributes (reads, candidates, tiles,
// cells, shard hits) and child spans for sub-stages.
//
// Spans complement the process-wide Registry: the Registry aggregates
// totals across all requests, a Span tree attributes the same stage
// timings to one request, which is what makes a single slow request
// debuggable. Spans are carried through the pipeline via
// context.Context (ContextWithSpan / StartSpan); code paths that see
// no span in their context pay only a nil check, so untraced work —
// CLIs, benchmarks — is unaffected.
//
// All methods are safe on a nil *Span (they do nothing), and safe for
// concurrent use: batch execution attaches children from executor
// goroutines while the request handler still owns the root. Child
// count per span is bounded (maxSpanChildren); beyond it children are
// counted as dropped rather than accumulated, so a pathological read
// with thousands of GACT extensions cannot balloon a captured tree.
type Span struct {
	name string
	root *Span // self for roots; carries the request ID

	requestID string    // root only
	rootStart time.Time // root only: zero point for snapshot offsets

	mu       sync.Mutex
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    map[string]int64
	labels   map[string]string
	children []*Span
	dropped  int
}

// maxSpanChildren bounds one span's direct children. Request-path
// spans have a handful; per-read spans can have one child per GACT
// extension, which MaxCandidates already bounds to a few hundred.
const maxSpanChildren = 256

// NewRequestSpan starts a root span for one request. requestID is the
// identity every log line, error envelope, and response record of the
// request carries; name is the root stage (e.g. "http POST /v1/map").
func NewRequestSpan(requestID, name string) *Span {
	now := time.Now()
	s := &Span{name: name, requestID: requestID, rootStart: now, start: now}
	s.root = s
	return s
}

// NewSpan starts a free-standing root span with no request identity —
// used for shared work (a coalesced batch) that is later adopted into
// the trees of every request it served.
func NewSpan(name string) *Span { return NewRequestSpan("", name) }

// RequestID returns the request identity of the span's tree ("" for
// free-standing spans).
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.root.requestID
}

// Name returns the span's stage name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild opens a child span starting now. Returns nil (a valid
// no-op span) when s is nil or the child cap is reached.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, root: s.root, start: time.Now()}
	s.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		s.mu.Unlock()
		return nil
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddTimedChild attaches an already-finished child with explicit
// timing — how synthesized stage spans (per-read filter/align splits
// measured by the pipeline itself) enter the tree. Returns the child
// for attribute annotation.
func (s *Span) AddTimedChild(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, root: s.root, start: start, dur: d, ended: true}
	s.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		s.mu.Unlock()
		return nil
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an existing span (typically a shared batch span) as a
// child of s. The adopted span keeps its own timing and subtree; a
// span adopted by several parents appears in each tree.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
	} else {
		s.children = append(s.children, c)
	}
	s.mu.Unlock()
}

// End closes the span. Safe to call more than once; only the first
// call records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration returns the recorded duration (elapsed-so-far for a span
// still in progress).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr sets an integer attribute, replacing any previous value.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// AddAttr accumulates into an integer attribute.
func (s *Span) AddAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] += v
	s.mu.Unlock()
}

// SetLabel sets a string attribute, replacing any previous value.
// Labels exist for cross-process hops: when a request leaves this
// process (a router scattering to a cluster worker), the interesting
// facts about the hop — which worker served it, what role it played —
// are identities, not numbers, and squeezing them into int attrs
// loses the join key into the remote process's logs.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 2)
	}
	s.labels[key] = value
	s.mu.Unlock()
}

// Label returns a string attribute ("", false when absent or s is nil).
func (s *Span) Label(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.labels[key]
	return v, ok
}

// Attr returns an attribute value (0, false when absent or s is nil).
func (s *Span) Attr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// SpanSnapshot is a JSON-friendly copy of a span tree. Offsets and
// durations are microseconds — the stage-timing resolution the tile
// pipeline needs (a GACT tile is hundreds of microseconds).
type SpanSnapshot struct {
	Name            string            `json:"name"`
	RequestID       string            `json:"request_id,omitempty"`
	StartUS         int64             `json:"start_us"`
	DurationUS      int64             `json:"duration_us"`
	InProgress      bool              `json:"in_progress,omitempty"`
	Attrs           map[string]int64  `json:"attrs,omitempty"`
	Labels          map[string]string `json:"labels,omitempty"`
	DroppedChildren int               `json:"dropped_children,omitempty"`
	Children        []SpanSnapshot    `json:"children,omitempty"`
}

// Snapshot deep-copies the tree rooted at s. Start offsets are
// relative to the snapshotted root's own start (an adopted batch span
// keeps absolute coherence because offsets are derived from wall
// times).
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot(s.start)
}

func (s *Span) snapshot(base time.Time) SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:            s.name,
		StartUS:         s.start.Sub(base).Microseconds(),
		DurationUS:      s.dur.Microseconds(),
		InProgress:      !s.ended,
		DroppedChildren: s.dropped,
	}
	if s.root == s {
		out.RequestID = s.requestID
	}
	if !s.ended {
		out.DurationUS = time.Since(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	if len(s.labels) > 0 {
		out.Labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			out.Labels[k] = v
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if len(kids) > 0 {
		out.Children = make([]SpanSnapshot, len(kids))
		for i, c := range kids {
			out.Children[i] = c.snapshot(base)
		}
	}
	return out
}

// Walk visits every span in the snapshot tree, parents before
// children.
func (s SpanSnapshot) Walk(fn func(SpanSnapshot)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Find returns the first span named name in the tree, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if f := s.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil when ctx carries
// none — the single nil check that keeps untraced paths free.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of ctx's active span and returns a context
// carrying the child plus the child itself (nil when ctx is untraced;
// all Span methods tolerate nil). Callers pair it with child.End().
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	if c == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, c), c
}

// RequestIDFromContext returns the request identity of ctx's active
// span tree ("" when untraced).
func RequestIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).RequestID()
}

// NewRequestID mints a 16-hex-character random request identity —
// used at ingress when the client supplied none.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; fall back to a
		// timestamp so request correlation still works.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
