package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server is the opt-in debug HTTP endpoint: net/http/pprof profiles,
// an expvar-style JSON view of the registry, a plain-text stage
// summary, and the Chrome trace dump. It binds eagerly (so ":0" works
// and the bound address is known) and serves in the background.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug endpoint on addr (e.g. ":6060" or ":0"
// for an ephemeral port) over the given registry and tracer.
func ServeDebug(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Snapshot
			Now        time.Time `json:"now"`
			Goroutines int       `json:"goroutines"`
			HeapAlloc  uint64    `json:"heap_alloc_bytes"`
			TotalAlloc uint64    `json:"total_alloc_bytes"`
			NumGC      uint32    `json:"num_gc"`
		}{
			Snapshot:   reg.Snapshot(),
			Now:        time.Now(),
			Goroutines: runtime.NumGoroutine(),
			HeapAlloc:  ms.HeapAlloc,
			TotalAlloc: ms.TotalAlloc,
			NumGC:      ms.NumGC,
		})
	})
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, reg.Snapshot().Summary())
	})
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/chrome-trace", func(w http.ResponseWriter, _ *http.Request) {
		if !tr.Enabled() && tr.Len() == 0 {
			http.Error(w, "tracer disabled (run with -trace-out or enable obs.Trace)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>darwin debug</h1><ul>
<li><a href="/debug/stages">stage summary</a></li>
<li><a href="/debug/vars">registry JSON</a></li>
<li><a href="/metrics">OpenMetrics exposition</a></li>
<li><a href="/debug/pprof/">pprof</a></li>
<li><a href="/debug/chrome-trace">chrome trace</a></li>
</ul></body></html>`)
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// MetricsHandler serves the registry in OpenMetrics text format —
// mounted at /metrics on both the debug endpoint and darwind's main
// listener so one scrape config covers both.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		WriteOpenMetrics(w, reg.Snapshot())
	})
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
