package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SchemaVersion identifies the run-report JSON schema. Bump it when a
// field changes meaning; adding fields is backward compatible.
const SchemaVersion = "darwin-run-report/v1"

// Report is the machine-readable end-of-run summary: the full counter
// set, disjoint stage timings, histograms, and derived throughput.
// Bench trajectories and perf PRs diff these instead of ad-hoc timers.
type Report struct {
	Schema      string    `json:"schema"`
	Tool        string    `json:"tool"`
	Args        []string  `json:"args,omitempty"`
	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wall_seconds"`
	// Workers is the mapping parallelism (gauge core/workers); stage
	// timings are cumulative across workers, so with Workers > 1 they
	// may legitimately sum past wall clock.
	Workers int `json:"workers,omitempty"`

	Counters map[string]int64         `json:"counters"`
	Gauges   map[string]int64         `json:"gauges,omitempty"`
	Timers   map[string]TimerSnapshot `json:"timers"`

	// Stages are the stage/ timers (disjoint pipeline phases), sorted
	// by descending time; StageSecondsTotal is their sum.
	Stages            []StageTiming `json:"stages"`
	StageSecondsTotal float64       `json:"stage_seconds_total"`

	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`

	// Throughput holds derived rates (reads_per_sec, cells_per_sec,
	// tiles_per_sec, seeds_per_sec) over the run's wall time.
	Throughput map[string]float64 `json:"throughput"`
}

// Run scopes a report to one tool invocation: it snapshots the
// registry at construction and reports only the delta, so process-wide
// metrics from earlier runs (or concurrent tests) don't bleed in.
type Run struct {
	tool  string
	reg   *Registry
	start time.Time
	base  Snapshot
}

// NewRun starts a run over the Default registry.
func NewRun(tool string) *Run { return NewRunOn(tool, Default) }

// NewRunOn starts a run over the given registry.
func NewRunOn(tool string, reg *Registry) *Run {
	return &Run{tool: tool, reg: reg, start: time.Now(), base: reg.Snapshot()}
}

// Report builds the run's report from the registry delta since the
// run started.
func (r *Run) Report() *Report {
	wall := time.Since(r.start).Seconds()
	diff := r.reg.Snapshot().Sub(r.base)
	rep := &Report{
		Schema:      SchemaVersion,
		Tool:        r.tool,
		Start:       r.start,
		WallSeconds: wall,
		Workers:     int(diff.Gauges["core/workers"]),
		Counters:    diff.Counters,
		Gauges:      diff.Gauges,
		Timers:      diff.Timers,
		Stages:      diff.Stages(),
		Histograms:  diff.Histograms,
		Throughput:  map[string]float64{},
	}
	for _, st := range rep.Stages {
		rep.StageSecondsTotal += st.Seconds
	}
	if wall > 0 {
		rate := func(name, counter string) {
			if v := diff.Counters[counter]; v > 0 {
				rep.Throughput[name] = float64(v) / wall
			}
		}
		rate("reads_per_sec", "core/reads")
		if _, ok := rep.Throughput["reads_per_sec"]; !ok {
			rate("reads_per_sec", "overlap/reads_done")
		}
		rate("cells_per_sec", "gact/cells")
		rate("tiles_per_sec", "gact/tiles")
		rate("seeds_per_sec", "dsoft/seeds_issued")
	}
	return rep
}

// WriteJSON writes the report as indented JSON to path.
func (rep *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	return nil
}

// ReadReport loads a report written by WriteJSON (for trajectory
// tooling and tests).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("obs: decoding report %s: %w", path, err)
	}
	return &rep, nil
}
