// Package obs is the engine's always-on observability layer: a
// process-wide, concurrency-safe registry of counters, gauges, timers,
// and histograms built on sync/atomic, a pipeline tracer that can dump
// Chrome trace_event JSON, an opt-in debug HTTP endpoint (pprof +
// expvar-style JSON + plain-text stage summary), and a machine-readable
// end-of-run report writer.
//
// The paper's whole evaluation is per-stage accounting — Figure 13's
// filtration/alignment runtime split, Figure 12's first-tile-score
// histogram, Table 4's seeds/hits/candidates counts. This package
// makes that accounting a property of the pipeline rather than of
// individual experiments: internal/dsoft, internal/gact, internal/core,
// and internal/olc update named metrics in the Default registry as a
// side effect of normal operation, every CLI can snapshot them into a
// stable JSON report, and perf work diffs those reports instead of
// hand-rolled timers.
//
// Metric naming convention: "<package>/<metric>" for counters and
// plain timers, and "stage/<stage>" for the disjoint pipeline-stage
// timers whose sum approximates wall clock on a single-worker run
// (load_input, index, filter, align, emit, layout, ...). Overlapping
// measurements (e.g. olc/polish, which internally re-runs filter and
// align) deliberately stay out of the stage/ namespace so stage
// timings never double-count.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. worker count).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations: total elapsed time and observation
// count, both atomic.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Time starts a measurement; calling the returned func records the
// elapsed time. Usage: defer t.Time()().
func (t *Timer) Time() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// TimerSnapshot is a timer's state at snapshot time.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Sub returns the change since prev.
func (s TimerSnapshot) Sub(prev TimerSnapshot) TimerSnapshot {
	return TimerSnapshot{Count: s.Count - prev.Count, Seconds: s.Seconds - prev.Seconds}
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use;
// getters create the metric on first use and always return the same
// instance for a name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry the pipeline packages
// instrument into.
var Default = NewRegistry()

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Timer returns (creating if needed) the named timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Histogram returns (creating if needed) the named histogram over
// [min, max) with the given bin count. Creation parameters are fixed
// by the first caller; later callers get the existing instance.
func (r *Registry) Histogram(name string, minV, maxV float64, bins int) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = newHistogram(minV, maxV, bins)
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Timers:     make(map[string]TimerSnapshot, len(r.timers)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerSnapshot{Count: t.Count(), Seconds: t.Total().Seconds()}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Sub returns the change since prev: a snapshot-diff covering exactly
// the work done between the two snapshots. Metrics absent from prev
// are treated as zero.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Timers:     make(map[string]TimerSnapshot, len(s.Timers)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	// Gauges are instantaneous: keep the latest value, not a delta.
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.Timers {
		out.Timers[name] = v.Sub(prev.Timers[name])
	}
	for name, v := range s.Histograms {
		out.Histograms[name] = v.Sub(prev.Histograms[name])
	}
	return out
}

// StagePrefix marks the disjoint pipeline-stage timers whose summed
// durations approximate single-worker wall clock.
const StagePrefix = "stage/"

// Stages extracts the stage/ timers, sorted by descending time.
func (s Snapshot) Stages() []StageTiming {
	var out []StageTiming
	for name, t := range s.Timers {
		if len(name) > len(StagePrefix) && name[:len(StagePrefix)] == StagePrefix {
			out = append(out, StageTiming{Name: name[len(StagePrefix):], Seconds: t.Seconds, Count: t.Count})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seconds != out[b].Seconds {
			return out[a].Seconds > out[b].Seconds
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// StageTiming is one pipeline stage's cumulative time.
type StageTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Summary renders a human-readable view of the snapshot: stage
// timings, then counters, gauges, plain timers, and histogram means.
func (s Snapshot) Summary() string {
	var b []byte
	appendf := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	stages := s.Stages()
	if len(stages) > 0 {
		appendf("stages:\n")
		var total float64
		for _, st := range stages {
			appendf("  %-20s %10.3fs  (%d calls)\n", st.Name, st.Seconds, st.Count)
			total += st.Seconds
		}
		appendf("  %-20s %10.3fs\n", "total", total)
	}
	appendf("counters:\n")
	for _, name := range sortedKeys(s.Counters) {
		appendf("  %-32s %d\n", name, s.Counters[name])
	}
	if len(s.Gauges) > 0 {
		appendf("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			appendf("  %-32s %d\n", name, s.Gauges[name])
		}
	}
	var plain []string
	for name := range s.Timers {
		if len(name) < len(StagePrefix) || name[:len(StagePrefix)] != StagePrefix {
			plain = append(plain, name)
		}
	}
	if len(plain) > 0 {
		sort.Strings(plain)
		appendf("timers:\n")
		for _, name := range plain {
			t := s.Timers[name]
			appendf("  %-32s %.3fs  (%d calls)\n", name, t.Seconds, t.Count)
		}
	}
	if len(s.Histograms) > 0 {
		appendf("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			appendf("  %-32s n=%d mean=%.2f range=[%g,%g)\n", name, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	return string(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
