package obs

import (
	"path/filepath"
	"testing"
	"time"
)

func TestRunReportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core/reads").Add(5) // pre-run noise that must not leak in

	run := NewRunOn("unit", reg)
	reg.Counter("core/reads").Add(100)
	reg.Counter("gact/cells").Add(1_000_000)
	reg.Counter("gact/tiles").Add(500)
	reg.Timer("stage/filter").Observe(80 * time.Millisecond)
	reg.Timer("stage/align").Observe(120 * time.Millisecond)
	reg.Timer("gact/first_tile").Observe(30 * time.Millisecond)
	reg.Histogram("core/candidates_per_read", 0, 10, 5).Observe(3)

	rep := run.Report()
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Counters["core/reads"] != 100 {
		t.Errorf("pre-run counts leaked into report: reads = %d, want 100", rep.Counters["core/reads"])
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %+v, want filter and align only", rep.Stages)
	}
	if rep.Stages[0].Name != "align" { // sorted by descending time
		t.Errorf("stage order: %+v", rep.Stages)
	}
	if tot := rep.StageSecondsTotal; tot < 0.199 || tot > 0.201 {
		t.Errorf("stage total = %v, want 0.2", tot)
	}
	if rep.Throughput["reads_per_sec"] <= 0 || rep.Throughput["cells_per_sec"] <= 0 {
		t.Errorf("throughput missing: %+v", rep.Throughput)
	}
	if rep.Histograms["core/candidates_per_read"].Count != 1 {
		t.Errorf("histogram missing from report")
	}

	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || back.Counters["gact/cells"] != 1_000_000 ||
		len(back.Stages) != 2 || back.Stages[0].Seconds != rep.Stages[0].Seconds {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestReportWorkersFromGauge(t *testing.T) {
	reg := NewRegistry()
	run := NewRunOn("unit", reg)
	reg.Gauge("core/workers").Set(8)
	if rep := run.Report(); rep.Workers != 8 {
		t.Errorf("workers = %d, want 8", rep.Workers)
	}
}
