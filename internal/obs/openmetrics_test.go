package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func expoRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("core/reads").Add(42)
	reg.Counter("server/requests").Add(7)
	reg.Gauge("core/workers").Set(4)
	reg.Timer("stage/align").Observe(1500 * time.Millisecond)
	reg.Timer("server/index_build").Observe(20 * time.Millisecond)
	h := reg.Histogram("core/map_latency_ms", 0, 100, 4)
	for _, v := range []float64{-5, 10, 30, 55, 80, 250} {
		h.Observe(v)
	}
	return reg
}

func TestWriteOpenMetricsRendersAllKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, expoRegistry().Snapshot()); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE darwin_core_reads counter",
		"darwin_core_reads_total 42",
		"# TYPE darwin_core_workers gauge",
		"darwin_core_workers 4",
		"# TYPE darwin_stage_align_seconds counter",
		"darwin_stage_align_seconds_total 1.5",
		"darwin_stage_align_calls_total 1",
		"# TYPE darwin_core_map_latency_ms histogram",
		`darwin_core_map_latency_ms_bucket{le="+Inf"} 6`,
		"darwin_core_map_latency_ms_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "# EOF") {
		t.Fatalf("exposition does not end with # EOF:\n%s", out)
	}

	// Histogram buckets: under-range merges into the first bucket,
	// over-range only reaches +Inf. Edges at 25/50/75/100 for [0,100)x4.
	for _, want := range []string{
		`darwin_core_map_latency_ms_bucket{le="25"} 2`,  // -5, 10
		`darwin_core_map_latency_ms_bucket{le="50"} 3`,  // +30
		`darwin_core_map_latency_ms_bucket{le="75"} 4`,  // +55
		`darwin_core_map_latency_ms_bucket{le="100"} 5`, // +80; 250 only in +Inf
	} {
		if !strings.Contains(out, want) {
			t.Errorf("bucket line missing %q\n%s", want, out)
		}
	}
}

func TestOpenMetricsSelfLints(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, expoRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := LintOpenMetrics(&buf); err != nil {
		t.Fatalf("our own exposition fails the linter: %v", err)
	}
}

func TestOpenMetricsStableAcrossSnapshots(t *testing.T) {
	reg := expoRegistry()
	var a, b bytes.Buffer
	if err := WriteOpenMetrics(&a, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical registry state rendered differently across snapshots")
	}

	// Advancing a counter must change only that family's sample line.
	reg.Counter("core/reads").Inc()
	var c bytes.Buffer
	if err := WriteOpenMetrics(&c, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	la, lc := strings.Split(a.String(), "\n"), strings.Split(c.String(), "\n")
	if len(la) != len(lc) {
		t.Fatalf("line count changed: %d -> %d", len(la), len(lc))
	}
	var diff int
	for i := range la {
		if la[i] != lc[i] {
			diff++
			if !strings.HasPrefix(la[i], "darwin_core_reads_total") {
				t.Fatalf("unexpected changed line: %q -> %q", la[i], lc[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d lines changed, want 1", diff)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			"unregistered sample",
			"# TYPE darwin_a counter\ndarwin_a_total 1\ndarwin_rogue_total 2\n# EOF\n",
			"unregistered",
		},
		{
			"duplicate family",
			"# TYPE darwin_a counter\n# TYPE darwin_a counter\ndarwin_a_total 1\n# EOF\n",
			"duplicate",
		},
		{
			"missing EOF",
			"# TYPE darwin_a counter\ndarwin_a_total 1\n",
			"# EOF",
		},
		{
			"counter without _total",
			"# TYPE darwin_a counter\ndarwin_a 1\n# EOF\n",
			"_total",
		},
		{
			"non-cumulative buckets",
			"# TYPE darwin_h histogram\n" +
				`darwin_h_bucket{le="1"} 5` + "\n" +
				`darwin_h_bucket{le="2"} 3` + "\n" +
				`darwin_h_bucket{le="+Inf"} 5` + "\n" +
				"darwin_h_sum 4\ndarwin_h_count 5\n# EOF\n",
			"non-cumulative",
		},
		{
			"inf bucket disagrees with count",
			"# TYPE darwin_h histogram\n" +
				`darwin_h_bucket{le="+Inf"} 5` + "\n" +
				"darwin_h_sum 4\ndarwin_h_count 6\n# EOF\n",
			"_count",
		},
	}
	for _, tc := range cases {
		err := LintOpenMetrics(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: linter accepted invalid exposition", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLintAcceptsValidHandwritten(t *testing.T) {
	in := "# HELP darwin_up whether up\n# TYPE darwin_up gauge\ndarwin_up 1\n# EOF\n"
	if err := LintOpenMetrics(strings.NewReader(in)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}
