package obs

import (
	"math"
	"sync/atomic"

	"darwin/internal/metrics"
)

// Histogram is a fixed-width bin histogram safe for concurrent
// observation: an atomic wrapper over the binning scheme of
// internal/metrics.Histogram. Out-of-range observations are tallied
// in under/over buckets, as the metrics renderer expects.
type Histogram struct {
	min, max float64
	bins     []atomic.Int64
	under    atomic.Int64
	over     atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates and clamps the configuration the same way
// metrics.NewHistogram does: at least one bin, max strictly above min.
func newHistogram(minV, maxV float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if !(maxV > minV) { // also catches NaN bounds
		maxV = minV + 1
	}
	return &Histogram{min: minV, max: maxV, bins: make([]atomic.Int64, bins)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	switch {
	case v < h.min:
		h.under.Add(1)
	case v >= h.max:
		h.over.Add(1)
	default:
		i := int((v - h.min) / (h.max - h.min) * float64(len(h.bins)))
		if i < 0 {
			i = 0
		}
		if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i].Add(1)
	}
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under,omitempty"`
	Over   int64   `json:"over,omitempty"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Min:    h.min,
		Max:    h.max,
		Counts: make([]int64, len(h.bins)),
		Under:  h.under.Load(),
		Over:   h.over.Load(),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.bins {
		s.Counts[i] = h.bins[i].Load()
	}
	return s
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Sub returns the change since prev. Snapshots with different bin
// layouts (a renamed or re-bucketed histogram) diff as s itself.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(s.Counts) || prev.Min != s.Min || prev.Max != s.Max {
		return s
	}
	out := s
	out.Counts = make([]int64, len(s.Counts))
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	out.Under -= prev.Under
	out.Over -= prev.Over
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	return out
}

// Render draws the snapshot as an ASCII bar chart via the
// internal/metrics renderer.
func (s HistogramSnapshot) Render(width int) string {
	counts := make([]int, len(s.Counts))
	for i, c := range s.Counts {
		counts[i] = int(c)
	}
	return metrics.RestoreHistogram(s.Min, s.Max, counts, int(s.Under), int(s.Over)).Render(width)
}
