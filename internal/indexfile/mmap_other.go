//go:build !linux

package indexfile

import (
	"io"
	"os"
)

// mapFile on non-Linux platforms reads the whole file into the heap —
// the portable fallback. Loaded tables are still decode-free views
// over these bytes; only the page-in laziness and cross-process
// sharing of the Linux mmap path are lost.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// unmapFile is a no-op for heap-backed data.
func unmapFile([]byte) error { return nil }
