package indexfile

import (
	"encoding/binary"
	"unsafe"
)

// The on-disk format is little-endian. On a little-endian host (every
// platform the engine targets in practice) the payload sections are
// exactly the in-memory layout of []uint32 / [][2]uint32, so reading a
// section is reinterpreting mapped bytes — no decode, no copy. The
// generic paths below keep the format correct on big-endian hosts and
// on misaligned buffers at the cost of one copy.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// u32Bytes returns the little-endian byte image of v, zero-copy on
// little-endian hosts.
func u32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], x)
	}
	return out
}

// pairBytes returns the little-endian byte image of v ([2]uint32 pairs,
// 8 bytes each), zero-copy on little-endian hosts.
func pairBytes(v [][2]uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, p := range v {
		binary.LittleEndian.PutUint32(out[i*8:], p[0])
		binary.LittleEndian.PutUint32(out[i*8+4:], p[1])
	}
	return out
}

// aligned reports whether p's backing address is a multiple of n.
func aligned(b []byte, n uintptr) bool {
	return uintptr(unsafe.Pointer(&b[0]))%n == 0
}

// viewU32 reinterprets a little-endian byte section as []uint32,
// zero-copy when the host is little-endian and the section is 4-byte
// aligned (mapped sections always are — section offsets are 64-byte
// aligned and mmap bases are page-aligned).
func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// viewPairs reinterprets a little-endian byte section as [][2]uint32
// under the same zero-copy conditions as viewU32.
func viewPairs(b []byte) [][2]uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 8) {
		return unsafe.Slice((*[2]uint32)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([][2]uint32, len(b)/8)
	for i := range out {
		out[i][0] = binary.LittleEndian.Uint32(b[i*8:])
		out[i][1] = binary.LittleEndian.Uint32(b[i*8+4:])
	}
	return out
}
