//go:build linux

package indexfile

import (
	"os"
	"syscall"
)

// mapFile maps the file PROT_READ/MAP_SHARED: the kernel pages index
// bytes in on demand and may share them across every process serving
// the same file — the property that makes cold-start a page-in instead
// of a rebuild, and lets many darwind workers boot from one copy in
// the page cache. The mapping is read-only at the hardware level, so a
// stray write through a loaded table view faults instead of silently
// corrupting the shared index.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
