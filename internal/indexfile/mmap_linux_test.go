//go:build linux

package indexfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"

	"darwin/internal/dna"
	"darwin/internal/seedtable"
)

// TestMappingIsReadOnly pins the memory-safety contract of the mmap
// path: the pages backing a loaded index are mapped PROT_READ, so no
// code path can scribble over the seed tables another goroutine (or a
// future process reading the same file) depends on. Verified against
// /proc/self/maps rather than by writing (a write would SIGSEGV, which
// Go cannot recover as a test failure).
func TestMappingIsReadOnly(t *testing.T) {
	ref := dna.Random(rand.New(rand.NewSource(45)), 30000, 0.5)
	idx := buildIndex(t, ref, 11, seedtable.Options{}, "")
	path := filepath.Join(t.TempDir(), "x.dwi")
	if err := Write(path, idx); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Mapped() {
		t.Fatal("index not mmap-backed on linux")
	}

	maps, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(string(maps), "\n") {
		if !strings.HasSuffix(line, path) {
			continue
		}
		found = true
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("unparseable maps line: %q", line)
		}
		perms := fields[1]
		if strings.Contains(perms, "w") {
			t.Errorf("index mapping is writable (%s): %q", perms, line)
		}
		if !strings.HasPrefix(perms, "r") {
			t.Errorf("index mapping is not readable (%s): %q", perms, line)
		}
	}
	if !found {
		t.Fatalf("no mapping of %s found in /proc/self/maps", path)
	}

	// The mapped-bytes gauge must track open mappings exactly.
	if got, want := f.MappedBytes(), fileSizeForTest(t, path); got != want {
		t.Errorf("MappedBytes %d != file size %d", got, want)
	}
	before := gMappedBytes.Value()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if after := gMappedBytes.Value(); after != before-fileSizeForTest(t, path) {
		t.Errorf("index/mapped_bytes gauge did not drop on Close: %d -> %d", before, after)
	}
}

func fileSizeForTest(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestViewsZeroCopy asserts the loaded table's arrays actually alias
// the mapping on a little-endian linux host — the zero-deserialization
// property the format exists for.
func TestViewsZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy views require a little-endian host")
	}
	ref := dna.Random(rand.New(rand.NewSource(46)), 30000, 0.5)
	idx := buildIndex(t, ref, 11, seedtable.Options{}, "")
	path := filepath.Join(t.TempDir(), "x.dwi")
	if err := Write(path, idx); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seq, err := f.Ref()
	if err != nil {
		t.Fatal(err)
	}
	if !aliases(f.data, []byte(seq)) {
		t.Error("reference bytes were copied out of the mapping")
	}
	tab, err := f.Table(0)
	if err != nil {
		t.Fatal(err)
	}
	parts := tab.Parts()
	if len(parts.Ptr) > 0 && !aliases(f.data, u32Bytes(parts.Ptr)) {
		t.Error("pointer table was copied out of the mapping")
	}
	if len(parts.Pos) > 0 && !aliases(f.data, u32Bytes(parts.Pos)) {
		t.Error("position table was copied out of the mapping")
	}
}

// aliases reports whether inner's backing array lies within outer's.
func aliases(outer, inner []byte) bool {
	if len(inner) == 0 || len(outer) == 0 {
		return false
	}
	o0 := uintptr(unsafe.Pointer(&outer[0]))
	i0 := uintptr(unsafe.Pointer(&inner[0]))
	return i0 >= o0 && i0 < o0+uintptr(len(outer))
}
