package indexfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"darwin/internal/dna"
	"darwin/internal/seedtable"
)

// Options tune Open.
type Options struct {
	// SkipChecksums skips the per-section CRC pass. The default Open
	// verifies every section, which touches (pages in) the whole file —
	// still far cheaper than a rebuild, and it is what lets the loader
	// promise that a bit-flipped file is rejected, never served.
	SkipChecksums bool
}

// File is an open index file: the raw bytes (mmap'd on Linux, read
// into the heap elsewhere) plus the decoded header. Table and Ref
// return views backed directly by the file bytes; they remain valid
// until Close, and Close must not be called while any view is in use.
type File struct {
	path   string
	info   Info
	secs   []section
	data   []byte
	mapped bool
	closed bool
}

// Open maps (or reads) an index file and validates it: magic, version,
// header CRC, header structure, section bounds, and — unless
// opts.SkipChecksums — every section's CRC-32C. Rejections are
// FormatErrors with stable codes.
func Open(path string, opts Options) (*File, error) {
	if err := fpLoad.Fire(); err != nil {
		cLoadErrors.Inc()
		return nil, fmt.Errorf("indexfile: opening %s: %w", path, err)
	}
	stop := tLoad.Time()
	defer stop()
	f, err := open(path, opts)
	if err != nil {
		cLoadErrors.Inc()
		return nil, err
	}
	cLoads.Inc()
	if f.mapped {
		gMappedBytes.Add(int64(len(f.data)))
	}
	return f, nil
}

func open(path string, opts Options) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer osf.Close()
	st, err := osf.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < preambleLen {
		return nil, formatErr(CodeTruncated, path, "file is %d bytes, shorter than the %d-byte preamble", size, preambleLen)
	}
	data, mapped, err := mapFile(osf, size)
	if err != nil {
		return nil, err
	}
	f := &File{path: path, data: data, mapped: mapped}
	if err := f.parse(opts); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// parse validates the preamble, header, and sections of f.data.
func (f *File) parse(opts Options) error {
	data, path := f.data, f.path
	if string(data[:8]) != Magic {
		return formatErr(CodeBadMagic, path, "not an index file (magic %q)", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return formatErr(CodeBadVersion, path, "format version %d, this build reads %d", v, Version)
	}
	headerLen := int64(binary.LittleEndian.Uint32(data[12:]))
	hdrEnd := preambleLen + headerLen
	if hdrEnd+4 > int64(len(data)) {
		return formatErr(CodeTruncated, path, "header claims %d bytes but the file holds %d", headerLen, len(data))
	}
	blob := data[preambleLen:hdrEnd]
	wantCRC := binary.LittleEndian.Uint32(data[hdrEnd:])
	if got := crc32.Checksum(blob, castagnoli); got != wantCRC {
		return formatErr(CodeChecksumMismatch, path, "header CRC %08x != stored %08x", got, wantCRC)
	}
	info, secs, err := decodeHeader(path, blob)
	if err != nil {
		return err
	}
	info.Fingerprint = fingerprint(blob)
	info.FileSize = int64(len(data))
	for i, s := range secs {
		if s.offset < hdrEnd+4 || s.offset+s.length > int64(len(data)) {
			return formatErr(CodeTruncated, path, "section %d [%d,%d) outside file of %d bytes",
				i, s.offset, s.offset+s.length, len(data))
		}
	}
	if !opts.SkipChecksums {
		stop := tLoadVerify.Time()
		for i, s := range secs {
			if got := crc32.Checksum(f.sectionBytes(s), castagnoli); got != s.crc {
				stop()
				return formatErr(CodeChecksumMismatch, path, "section %d (%s) CRC %08x != stored %08x",
					i, sectionKindNames[s.kind], got, s.crc)
			}
		}
		stop()
	}
	f.info, f.secs = *info, secs
	return nil
}

func (f *File) sectionBytes(s section) []byte {
	return f.data[s.offset : s.offset+s.length]
}

// findSection returns the section of the given kind owned by table
// (noTable for file-level sections), or nil.
func (f *File) findSection(kind, table uint32) []byte {
	for _, s := range f.secs {
		if s.kind == kind && s.table == table {
			return f.sectionBytes(s)
		}
	}
	return nil
}

// Info returns the decoded header.
func (f *File) Info() Info { return f.info }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Mapped reports whether the file bytes are mmap'd (vs heap-read).
func (f *File) Mapped() bool { return f.mapped }

// MappedBytes returns the mapped (or resident heap) byte count.
func (f *File) MappedBytes() int64 { return int64(len(f.data)) }

// NumTables returns how many seed tables the file holds (1 for a
// monolithic index, the shard count for a sharded one).
func (f *File) NumTables() int { return len(f.info.Tables) }

// Ref returns the concatenated reference as a view over the file
// bytes. The view is read-only when the file is mapped — writing
// through it faults.
func (f *File) Ref() (dna.Seq, error) {
	b := f.findSection(secRef, noTable)
	if b == nil {
		return nil, formatErr(CodeBadHeader, f.path, "no reference section")
	}
	if len(b) != f.info.RefLen {
		return nil, formatErr(CodeBadHeader, f.path, "reference section holds %d bytes, header says %d", len(b), f.info.RefLen)
	}
	return dna.Seq(b), nil
}

// MaskCodes returns the globally masked seed codes (ascending), viewed
// over the file bytes.
func (f *File) MaskCodes() []uint32 {
	return viewU32(f.findSection(secMask, noTable))
}

// Table reconstructs seed table i from its sections. On little-endian
// hosts the table's pointer, code, span, and position slices are
// zero-copy views over the file bytes — a mapped table costs page-ins,
// not a build.
func (f *File) Table(i int) (*seedtable.Table, error) {
	if i < 0 || i >= len(f.info.Tables) {
		return nil, fmt.Errorf("indexfile: table %d out of range [0,%d)", i, len(f.info.Tables))
	}
	meta := f.info.Tables[i]
	ti := uint32(i)
	parts := seedtable.Parts{
		K:             f.info.Params.SeedK,
		RefLen:        meta.ExtentEnd - meta.ExtentStart,
		MaskThreshold: f.info.Params.MaskThreshold,
		MaskedSeeds:   meta.MaskedSeeds,
		MaskedHits:    meta.MaskedHits,
		Pattern:       f.info.Params.Pattern,
		Ptr:           viewU32(f.findSection(secPtr, ti)),
		Codes:         viewU32(f.findSection(secCodes, ti)),
		Spans:         viewPairs(f.findSection(secSpans, ti)),
		Pos:           viewU32(f.findSection(secPos, ti)),
	}
	if parts.Pos == nil {
		// Build always materializes the position array, even when every
		// seed was masked; match it so a loaded table is deep-equal to a
		// freshly built one.
		parts.Pos = []uint32{}
	}
	t, err := seedtable.FromParts(parts)
	if err != nil {
		return nil, formatErr(CodeBadHeader, f.path, "table %d: %v", i, err)
	}
	return t, nil
}

// Close releases the mapping (or lets the heap copy go). Any views
// handed out by Ref/Table/MaskCodes become invalid; on Linux, touching
// one after Close faults. Safe to call twice.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.mapped {
		gMappedBytes.Add(-int64(len(f.data)))
		return unmapFile(f.data)
	}
	f.data = nil
	return nil
}

// Inspect opens the file, decodes its header without the section CRC
// pass, and closes it — the cheap metadata read behind `darwin-index
// inspect` and sidecar probing.
func Inspect(path string) (Info, error) {
	f, err := open(path, Options{SkipChecksums: true})
	if err != nil {
		return Info{}, err
	}
	info := f.info
	f.Close()
	return info, nil
}

// Verify opens the file with the full per-section CRC pass and closes
// it, returning the decoded header. This is `darwin-index verify`.
func Verify(path string) (Info, error) {
	f, err := open(path, Options{})
	if err != nil {
		return Info{}, err
	}
	info := f.info
	f.Close()
	return info, nil
}

// ReadFingerprint returns the file's content fingerprint from the
// preamble and header alone — no payload I/O — after verifying magic,
// version, and header CRC. The serving layer folds it into cache keys
// so a rebuilt index file is a different cache entry.
func ReadFingerprint(path string) (uint64, error) {
	osf, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer osf.Close()
	var pre [preambleLen]byte
	if _, err := osf.ReadAt(pre[:], 0); err != nil {
		return 0, formatErr(CodeTruncated, path, "file shorter than the %d-byte preamble", preambleLen)
	}
	if string(pre[:8]) != Magic {
		return 0, formatErr(CodeBadMagic, path, "not an index file (magic %q)", pre[:8])
	}
	if v := binary.LittleEndian.Uint32(pre[8:]); v != Version {
		return 0, formatErr(CodeBadVersion, path, "format version %d, this build reads %d", v, Version)
	}
	headerLen := int(binary.LittleEndian.Uint32(pre[12:]))
	buf := make([]byte, headerLen+4)
	if _, err := osf.ReadAt(buf, preambleLen); err != nil {
		return 0, formatErr(CodeTruncated, path, "header claims %d bytes past a %d-byte file", headerLen, fileSize(osf))
	}
	blob := buf[:headerLen]
	wantCRC := binary.LittleEndian.Uint32(buf[headerLen:])
	if got := crc32.Checksum(blob, castagnoli); got != wantCRC {
		return 0, formatErr(CodeChecksumMismatch, path, "header CRC %08x != stored %08x", got, wantCRC)
	}
	return fingerprint(blob), nil
}

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return -1
	}
	return st.Size()
}
