package indexfile

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"darwin/internal/seedtable"
)

// Index is the in-memory content of one index file, assembled by the
// builder (internal/indexio) and serialized by Write. The payload
// slices are written verbatim — they ARE the file's sections.
type Index struct {
	// Params are the seeding parameters, defaults already resolved.
	Params Params
	// Ref is the concatenated N-padded reference, ASCII bytes.
	Ref []byte
	// Seqs locates each sequence inside Ref.
	Seqs []SeqMeta
	// ShardCount/ShardSize/Overlap are the partition geometry; all
	// zero for a monolithic index.
	ShardCount, ShardSize, Overlap int
	// MaskCodes are the globally masked seed codes, ascending.
	MaskCodes []uint32
	// Tables and Parts are parallel: window geometry plus the flat
	// table storage for the monolithic table or each shard's table.
	Tables []TableMeta
	Parts  []seedtable.Parts
}

// validate checks the cross-field invariants Write depends on.
func (idx *Index) validate() error {
	if len(idx.Ref) == 0 {
		return fmt.Errorf("indexfile: empty reference")
	}
	if len(idx.Seqs) == 0 {
		return fmt.Errorf("indexfile: no sequence metadata")
	}
	if len(idx.Tables) == 0 || len(idx.Tables) != len(idx.Parts) {
		return fmt.Errorf("indexfile: %d table metas vs %d parts", len(idx.Tables), len(idx.Parts))
	}
	want := 1
	if idx.ShardCount > 0 {
		want = idx.ShardCount
	}
	if len(idx.Tables) != want {
		return fmt.Errorf("indexfile: %d tables for shard count %d", len(idx.Tables), idx.ShardCount)
	}
	for i, t := range idx.Tables {
		if t.ExtentStart < 0 || t.ExtentEnd > len(idx.Ref) || t.ExtentStart >= t.ExtentEnd {
			return fmt.Errorf("indexfile: table %d extent [%d,%d) outside reference [0,%d)",
				i, t.ExtentStart, t.ExtentEnd, len(idx.Ref))
		}
		if got, want := idx.Parts[i].RefLen, t.ExtentEnd-t.ExtentStart; got != want {
			return fmt.Errorf("indexfile: table %d covers %d bases but extent spans %d", i, got, want)
		}
	}
	return nil
}

// sections lays out the payload: the reference, the mask, then each
// table's pointer (or codes+spans) and position sections. Offsets are
// assigned by Write after the header length is known.
func (idx *Index) sections() ([]section, [][]byte) {
	var secs []section
	var payloads [][]byte
	add := func(kind, table uint32, b []byte) {
		secs = append(secs, section{
			kind:   kind,
			table:  table,
			length: int64(len(b)),
			crc:    crc32.Checksum(b, castagnoli),
		})
		payloads = append(payloads, b)
	}
	add(secRef, noTable, idx.Ref)
	add(secMask, noTable, u32Bytes(idx.MaskCodes))
	for i, p := range idx.Parts {
		ti := uint32(i)
		if p.Dense() {
			add(secPtr, ti, u32Bytes(p.Ptr))
		} else {
			add(secCodes, ti, u32Bytes(p.Codes))
			add(secSpans, ti, pairBytes(p.Spans))
		}
		add(secPos, ti, u32Bytes(p.Pos))
	}
	return secs, payloads
}

// Write serializes idx to path atomically: the file is assembled in a
// same-directory temp file, fsynced, and renamed into place, so a
// crashed build never leaves a half-written index where a sidecar
// loader would find it.
func Write(path string, idx *Index) (err error) {
	stop := tSave.Time()
	defer stop()
	if err := idx.validate(); err != nil {
		return err
	}

	info := &Info{
		Version:    Version,
		Params:     idx.Params,
		RefLen:     len(idx.Ref),
		Seqs:       idx.Seqs,
		ShardCount: idx.ShardCount,
		ShardSize:  idx.ShardSize,
		Overlap:    idx.Overlap,
		Tables:     make([]TableMeta, len(idx.Tables)),
	}
	copy(info.Tables, idx.Tables)
	for i, p := range idx.Parts {
		info.Tables[i].MaskedSeeds = p.MaskedSeeds
		info.Tables[i].MaskedHits = p.MaskedHits
	}

	// Header length is independent of the section offsets (fixed-size
	// fields), so encode once to measure, place sections, encode again.
	secs, payloads := idx.sections()
	headerLen := len(encodeHeader(info, secs))
	off := alignUp(int64(preambleLen + headerLen + 4))
	for i := range secs {
		secs[i].offset = off
		off = alignUp(off + secs[i].length)
	}
	header := encodeHeader(info, secs)
	if len(header) != headerLen {
		return fmt.Errorf("indexfile: header length changed during encoding (%d != %d)", len(header), headerLen)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	var preamble [preambleLen]byte
	copy(preamble[:], Magic)
	putU32(preamble[8:], Version)
	putU32(preamble[12:], uint32(headerLen))
	if _, err = tmp.Write(preamble[:]); err != nil {
		return err
	}
	if _, err = tmp.Write(header); err != nil {
		return err
	}
	var crcBuf [4]byte
	putU32(crcBuf[:], crc32.Checksum(header, castagnoli))
	if _, err = tmp.Write(crcBuf[:]); err != nil {
		return err
	}
	pos := int64(preambleLen + headerLen + 4)
	for i, s := range secs {
		if pos, err = padTo(tmp, pos, s.offset); err != nil {
			return err
		}
		if _, err = tmp.Write(payloads[i]); err != nil {
			return err
		}
		pos += s.length
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// putU32 writes v little-endian into b.
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// padTo writes zero bytes advancing the file from pos to target.
func padTo(f *os.File, pos, target int64) (int64, error) {
	if pos > target {
		return pos, fmt.Errorf("indexfile: section overlap (at %d, next starts %d)", pos, target)
	}
	if pos == target {
		return pos, nil
	}
	if _, err := f.Write(make([]byte, target-pos)); err != nil {
		return pos, err
	}
	return target, nil
}
