package indexfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/seedtable"
)

// buildIndex builds one monolithic in-memory index over ref: global
// mask, then a table under that mask, the way internal/indexio does.
// A spaced pattern (pat != "") builds unmasked — the contiguous-k-mer
// global mask does not apply to spaced-seed codes — and the seed size
// is the pattern's weight, matching BuildSpaced.
func buildIndex(t *testing.T, ref dna.Seq, k int, opts seedtable.Options, pat string) *Index {
	t.Helper()
	var tab *seedtable.Table
	var maskCodes []uint32
	maskThreshold := 0
	var err error
	if pat == "" {
		var mask *seedtable.MaskSet
		mask, err = seedtable.ComputeMask(ref, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Mask = mask
		maskCodes = mask.Codes()
		maskThreshold = mask.Threshold()
		tab, err = seedtable.Build(ref, k, opts)
	} else {
		var sp *seedtable.SpacedPattern
		sp, err = seedtable.ParsePattern(pat)
		if err != nil {
			t.Fatal(err)
		}
		opts.NoMask = true
		k = sp.Weight()
		tab, err = seedtable.BuildSpaced(ref, sp, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return &Index{
		Params: Params{
			SeedK:           k,
			MaskMultiplier:  32,
			MaskFloor:       8,
			NoMask:          opts.NoMask,
			MinimizerWindow: opts.MinimizerWindow,
			Pattern:         pat,
			BinSize:         128,
			MaskThreshold:   maskThreshold,
		},
		Ref:       []byte(ref),
		Seqs:      []SeqMeta{{Name: "chr1", Offset: 0, Length: len(ref)}},
		MaskCodes: maskCodes,
		Tables:    []TableMeta{{ExtentStart: 0, ExtentEnd: len(ref), CoreStart: 0, CoreEnd: len(ref)}},
		Parts:     []seedtable.Parts{tab.Parts()},
	}
}

// repetitiveRef returns a reference with a heavily repeated segment so
// the high-frequency mask is non-empty (a uniform random sequence
// rarely crosses the masking threshold).
func repetitiveRef(seed int64, n int) dna.Seq {
	rng := rand.New(rand.NewSource(seed))
	seg := dna.Random(rng, 200, 0.5)
	out := make(dna.Seq, 0, n)
	for len(out) < n/2 {
		out = append(out, seg...)
	}
	out = append(out, dna.Random(rng, n-len(out), 0.45)...)
	return out
}

// equalU32 treats nil and empty as equal — a zero-length section reads
// back nil.
func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundTrip is the format-level half of the bit-identity
// invariant: every table variant (dense, sparse k>12, minimizer
// -sampled, spaced) written and mapped back must reproduce the exact
// in-memory arrays of the freshly built table.
func TestRoundTrip(t *testing.T) {
	ref := repetitiveRef(41, 60000)
	cases := []struct {
		name string
		k    int
		opts seedtable.Options
		pat  string
	}{
		{name: "dense_k8", k: 8},
		{name: "dense_k11", k: 11},
		{name: "sparse_k13", k: 13},
		{name: "minimizer_w3", k: 11, opts: seedtable.Options{MinimizerWindow: 3}},
		{name: "spaced", k: 6, pat: "1101011"},
		{name: "nomask", k: 11, opts: seedtable.Options{NoMask: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx := buildIndex(t, ref, tc.k, tc.opts, tc.pat)
			path := filepath.Join(t.TempDir(), "x.dwi")
			if err := Write(path, idx); err != nil {
				t.Fatal(err)
			}
			f, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			if got := f.Info().Params; got != idx.Params {
				t.Errorf("params drift: wrote %+v read %+v", idx.Params, got)
			}
			seq, err := f.Ref()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual([]byte(seq), idx.Ref) {
				t.Error("reference bytes differ after roundtrip")
			}
			if !equalU32(f.MaskCodes(), idx.MaskCodes) {
				t.Errorf("mask codes differ: wrote %d read %d", len(idx.MaskCodes), len(f.MaskCodes()))
			}
			if tc.name == "dense_k8" && len(idx.MaskCodes) == 0 {
				t.Error("test reference produced an empty mask; the mask roundtrip is untested")
			}
			tab, err := f.Table(0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tab.Parts(), idx.Parts[0]) {
				t.Error("table parts differ after roundtrip (bit-identity violated)")
			}
			// The loaded table must answer lookups, not just deep-equal.
			orig, err := seedtable.FromParts(idx.Parts[0])
			if err != nil {
				t.Fatal(err)
			}
			for code := uint32(0); code < 64; code++ {
				if !reflect.DeepEqual(tab.Lookup(code), orig.Lookup(code)) {
					t.Fatalf("lookup(%d) differs", code)
				}
			}
		})
	}
}

// TestFingerprint pins the cache-invalidation contract: identical
// content fingerprints identically across writes, different content
// differs, and ReadFingerprint agrees with the full Open.
func TestFingerprint(t *testing.T) {
	ref := dna.Random(rand.New(rand.NewSource(42)), 20000, 0.5)
	idx := buildIndex(t, ref, 11, seedtable.Options{}, "")
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.dwi"), filepath.Join(dir, "b.dwi")
	if err := Write(a, idx); err != nil {
		t.Fatal(err)
	}
	if err := Write(b, idx); err != nil {
		t.Fatal(err)
	}
	fpA, err := ReadFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := ReadFingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("identical content, different fingerprints: %016x vs %016x", fpA, fpB)
	}
	info, err := Verify(a)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != fpA {
		t.Errorf("ReadFingerprint %016x != Verify fingerprint %016x", fpA, info.Fingerprint)
	}

	idx2 := buildIndex(t, ref[:10000], 11, seedtable.Options{}, "")
	c := filepath.Join(dir, "c.dwi")
	if err := Write(c, idx2); err != nil {
		t.Fatal(err)
	}
	fpC, err := ReadFingerprint(c)
	if err != nil {
		t.Fatal(err)
	}
	if fpC == fpA {
		t.Error("different content produced the same fingerprint")
	}
}

// corrupt writes a mutated copy of the file and returns its path.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corrupt.dwi")
	if err := os.WriteFile(out, mutate(append([]byte(nil), data...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorruptionCodes drives every rejection path and asserts the
// stable structured code — the contract scripts and operators match
// on.
func TestCorruptionCodes(t *testing.T) {
	ref := dna.Random(rand.New(rand.NewSource(43)), 30000, 0.5)
	idx := buildIndex(t, ref, 11, seedtable.Options{}, "")
	path := filepath.Join(t.TempDir(), "x.dwi")
	if err := Write(path, idx); err != nil {
		t.Fatal(err)
	}
	info, err := Verify(path)
	if err != nil {
		t.Fatalf("pristine file failed verify: %v", err)
	}
	// Payload byte to flip: inside the last section, well clear of the
	// header (whose own CRC is a different code).
	last := info.Sections[len(info.Sections)-1]

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		code   string
	}{
		{"bad_magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, CodeBadMagic},
		{"bad_version", func(b []byte) []byte { b[8] ^= 0xff; return b }, CodeBadVersion},
		{"truncated_preamble", func(b []byte) []byte { return b[:8] }, CodeTruncated},
		{"truncated_payload", func(b []byte) []byte { return b[:last.Offset+1] }, CodeTruncated},
		{"payload_bit_flip", func(b []byte) []byte { b[last.Offset] ^= 0x01; return b }, CodeChecksumMismatch},
		{"header_bit_flip", func(b []byte) []byte { b[preambleLen] ^= 0x01; return b }, CodeChecksumMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := corrupt(t, path, tc.mutate)
			if _, err := Verify(p); ErrCode(err) != tc.code {
				t.Errorf("Verify: code %q (err %v), want %q", ErrCode(err), err, tc.code)
			}
			if _, err := Open(p, Options{}); ErrCode(err) != tc.code {
				t.Errorf("Open: code %q (err %v), want %q", ErrCode(err), err, tc.code)
			}
		})
	}

	// Inspect skips payload checksums by design: a payload bit flip
	// passes Inspect (headers intact) but never a full Verify.
	flipped := corrupt(t, path, func(b []byte) []byte { b[last.Offset] ^= 0x01; return b })
	if _, err := Inspect(flipped); err != nil {
		t.Errorf("Inspect rejected a payload flip it is documented to skip: %v", err)
	}
}

// TestLoadErrorsCounted asserts the error counter moves on a rejected
// load — the signal chaos probes watch.
func TestLoadErrorsCounted(t *testing.T) {
	ref := dna.Random(rand.New(rand.NewSource(44)), 20000, 0.5)
	idx := buildIndex(t, ref, 11, seedtable.Options{}, "")
	path := filepath.Join(t.TempDir(), "x.dwi")
	if err := Write(path, idx); err != nil {
		t.Fatal(err)
	}
	bad := corrupt(t, path, func(b []byte) []byte { return b[:12] })
	before := cLoadErrors.Value()
	if _, err := Open(bad, Options{}); err == nil {
		t.Fatal("truncated file opened cleanly")
	}
	if cLoadErrors.Value() != before+1 {
		t.Errorf("index/load_errors did not increment (was %d, now %d)", before, cLoadErrors.Value())
	}
}
