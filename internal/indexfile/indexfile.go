// Package indexfile is the persistent on-disk reference index: a
// versioned little-endian container (.dwi) holding the seed position
// table(s), the global high-frequency mask, and the concatenated
// reference bytes in their exact in-memory layout.
//
// Darwin's seed position table is deliberately flat — a dense pointer
// table over sequentially stored hit lists (Section 3, Figure 3), laid
// out so the D-SOFT hardware can stream it in long DRAM bursts — and
// that same flatness makes it trivially serializable: there is no
// pointer graph to fix up, so a loader can mmap(2) the file and hand
// out seedtable.Table / dna.Seq views backed by mapped memory with no
// copy. Rebuilding the table from FASTA is the cold-start cost every
// darwind node and CLI run pays today; loading it is a page-in.
//
// # Layout
//
//	offset 0   magic   "DWINDEX\x00" (8 bytes)
//	offset 8   u32     format version (currently 1)
//	offset 12  u32     header length H
//	offset 16  header  H bytes (see below)
//	16+H       u32     CRC-32C of the header bytes
//	...        payload sections at 64-byte-aligned offsets
//
// The header records the seeding parameters (k, mask multiplier and
// floor, minimizer window, spaced pattern), the reference metadata
// (sequence names, lengths, global offsets, N-pad bin size), the shard
// geometry, per-table mask statistics, and a section table giving each
// payload section's kind, owning table, absolute offset, byte length,
// and CRC-32C checksum. Section kinds are the reference bytes, the
// global mask codes, and per table either a dense pointer table or a
// sparse codes+spans index, plus the position table.
//
// Because the header contains every section checksum, the FNV-64a hash
// of the header bytes fingerprints the entire file content; it is
// readable from the preamble alone (ReadFingerprint) and is what the
// serving layer folds into its index cache keys.
package indexfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"darwin/internal/faults"
	"darwin/internal/obs"
)

// Magic opens every index file.
const Magic = "DWINDEX\x00"

// Version is the current format version.
const Version = 1

// Ext is the conventional file extension; SidecarPath derives the
// auto-discovered sidecar name for a reference FASTA from it.
const Ext = ".dwi"

// SidecarPath returns the sidecar index path for a reference file:
// the reference path with Ext appended (ref.fa -> ref.fa.dwi).
func SidecarPath(refPath string) string { return refPath + Ext }

// preambleLen is magic + version + header length.
const preambleLen = 16

// sectionAlign aligns payload sections so typed views over mapped
// memory are always aligned (mmap bases are page-aligned).
const sectionAlign = 64

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Load/save observability and the index/load fault injection point
// (armed only via faults.Setup): an injected error models a missing or
// unreadable index file, exercising the loader's fall-back-to-build
// path in chaos runs.
var (
	tLoad        = obs.Default.Timer("index/load")
	tLoadVerify  = obs.Default.Timer("index/load_verify")
	tSave        = obs.Default.Timer("index/save")
	cLoads       = obs.Default.Counter("index/loads")
	cLoadErrors  = obs.Default.Counter("index/load_errors")
	gMappedBytes = obs.Default.Gauge("index/mapped_bytes")

	fpLoad = faults.Default.Point("index/load")
)

// Stable structured error codes for rejected files. Operators and
// scripts match on these, not on message text.
const (
	CodeBadMagic         = "bad_magic"
	CodeBadVersion       = "bad_version"
	CodeTruncated        = "truncated"
	CodeChecksumMismatch = "checksum_mismatch"
	CodeBadHeader        = "bad_header"
	CodeGeometryMismatch = "geometry_mismatch"
)

// FormatError is a structured index-file rejection: a stable Code (one
// of the Code* constants), the offending path, and human detail.
type FormatError struct {
	Code   string
	Path   string
	Detail string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("indexfile: %s: %s (%s)", e.Path, e.Detail, e.Code)
}

// ErrCode returns the structured code of an index-file error, or ""
// when err (and everything it wraps) is not a FormatError.
func ErrCode(err error) string {
	var fe *FormatError
	if errors.As(err, &fe) {
		return fe.Code
	}
	return ""
}

// formatErr builds a FormatError.
func formatErr(code, path, format string, args ...any) *FormatError {
	return &FormatError{Code: code, Path: path, Detail: fmt.Sprintf(format, args...)}
}

// Params are the seeding parameters the index was built with. A loader
// must reject an index whose params differ from the runtime engine
// configuration — the tables would be self-consistent but answer the
// wrong queries. Defaults are resolved before storing (MaskMultiplier
// 32, MaskFloor 8), so comparison is canonical.
type Params struct {
	SeedK           int
	MaskMultiplier  int
	MaskFloor       int
	NoMask          bool
	MinimizerWindow int
	// Pattern is the spaced-seed template, "" for contiguous k-mers.
	Pattern string
	// BinSize is the D-SOFT bin size B, which is also the reference
	// N-padding unit and the shard-boundary alignment unit.
	BinSize int
	// MaskThreshold is the occurrence cutoff actually applied (derived
	// from the formula at build time; 0 = masking disabled).
	MaskThreshold int
}

// SeqMeta locates one reference sequence inside the concatenation.
type SeqMeta struct {
	Name   string
	Offset int // global offset of the first base
	Length int // un-padded sequence length
}

// TableMeta is one seed table's window geometry in global coordinates.
// A monolithic index has one table spanning [0, refLen) with Core ==
// Extent; a sharded index has one table per shard with the partition's
// core/extent spans.
type TableMeta struct {
	ExtentStart, ExtentEnd int
	CoreStart, CoreEnd     int
	MaskedSeeds            int
	MaskedHits             int
}

// Section kinds.
const (
	secRef   = 0 // concatenated reference, ASCII bytes
	secMask  = 1 // global mask codes, ascending u32
	secPtr   = 2 // dense pointer table, u32
	secCodes = 3 // sparse seed codes, ascending u32
	secSpans = 4 // sparse spans, [2]u32 pairs
	secPos   = 5 // position table, u32
)

// sectionKindNames maps kinds to the names inspect prints.
var sectionKindNames = map[uint32]string{
	secRef:   "ref",
	secMask:  "mask",
	secPtr:   "ptr",
	secCodes: "codes",
	secSpans: "spans",
	secPos:   "pos",
}

// noTable marks sections owned by the file, not one seed table.
const noTable = ^uint32(0)

// section is one payload section's placement.
type section struct {
	kind   uint32
	table  uint32 // owning table index, noTable for ref/mask
	offset int64
	length int64
	crc    uint32
}

// SectionInfo is one section's placement for inspect/verify output.
type SectionInfo struct {
	Kind   string `json:"kind"`
	Table  int    `json:"table"` // -1 for file-level sections
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	CRC    uint32 `json:"crc32c"`
}

// Info is the decoded header: everything about an index file short of
// the payload bytes.
type Info struct {
	Version     int
	Params      Params
	RefLen      int
	Seqs        []SeqMeta
	ShardCount  int // 0 = monolithic
	ShardSize   int
	Overlap     int
	Tables      []TableMeta
	Sections    []SectionInfo
	Fingerprint uint64
	FileSize    int64
}

// header bounds: a corrupt length field must not drive a huge
// allocation before the CRC check has a chance to reject the header.
const (
	maxSeqs     = 1 << 24
	maxTables   = 1 << 20
	maxNameLen  = 1 << 16
	maxPattern  = 1 << 10
	maxSections = 4 * maxTables
)

// hdrWriter appends little-endian header fields.
type hdrWriter struct{ buf []byte }

func (w *hdrWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *hdrWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *hdrWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *hdrWriter) boolean(b bool) {
	if b {
		w.u32(1)
	} else {
		w.u32(0)
	}
}

// hdrReader consumes little-endian header fields, latching the first
// out-of-bounds read instead of panicking on truncated input.
type hdrReader struct {
	buf  []byte
	off  int
	fail bool
}

func (r *hdrReader) u32() uint32 {
	if r.off+4 > len(r.buf) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *hdrReader) u64() uint64 {
	if r.off+8 > len(r.buf) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *hdrReader) str(maxLen int) string {
	n := int(r.u32())
	if r.fail || n < 0 || n > maxLen || r.off+n > len(r.buf) {
		r.fail = true
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *hdrReader) boolean() bool { return r.u32() != 0 }

// encodeHeader renders the header blob. Section placement fields are
// fixed-size, so encoding with placeholder offsets yields the final
// length — Write encodes once to learn it, places the sections, and
// encodes again.
func encodeHeader(info *Info, secs []section) []byte {
	w := &hdrWriter{}
	p := info.Params
	w.u32(uint32(p.SeedK))
	w.u32(uint32(p.MaskMultiplier))
	w.u32(uint32(p.MaskFloor))
	w.boolean(p.NoMask)
	w.u32(uint32(p.MinimizerWindow))
	w.str(p.Pattern)
	w.u32(uint32(p.BinSize))
	w.u32(uint32(p.MaskThreshold))
	w.u64(uint64(info.RefLen))
	w.u32(uint32(len(info.Seqs)))
	for _, s := range info.Seqs {
		w.str(s.Name)
		w.u64(uint64(s.Offset))
		w.u64(uint64(s.Length))
	}
	w.u32(uint32(info.ShardCount))
	w.u32(uint32(info.ShardSize))
	w.u32(uint32(info.Overlap))
	w.u32(uint32(len(info.Tables)))
	for _, t := range info.Tables {
		w.u64(uint64(t.ExtentStart))
		w.u64(uint64(t.ExtentEnd))
		w.u64(uint64(t.CoreStart))
		w.u64(uint64(t.CoreEnd))
		w.u64(uint64(t.MaskedSeeds))
		w.u64(uint64(t.MaskedHits))
	}
	w.u32(uint32(len(secs)))
	for _, s := range secs {
		w.u32(s.kind)
		w.u32(s.table)
		w.u64(uint64(s.offset))
		w.u64(uint64(s.length))
		w.u32(s.crc)
	}
	return w.buf
}

// decodeHeader parses a header blob (already CRC-verified) into Info
// and the section placements. path only labels errors.
func decodeHeader(path string, blob []byte) (*Info, []section, error) {
	bad := func(format string, args ...any) (*Info, []section, error) {
		return nil, nil, formatErr(CodeBadHeader, path, format, args...)
	}
	r := &hdrReader{buf: blob}
	info := &Info{Version: Version}
	p := &info.Params
	p.SeedK = int(r.u32())
	p.MaskMultiplier = int(r.u32())
	p.MaskFloor = int(r.u32())
	p.NoMask = r.boolean()
	p.MinimizerWindow = int(r.u32())
	p.Pattern = r.str(maxPattern)
	p.BinSize = int(r.u32())
	p.MaskThreshold = int(r.u32())
	info.RefLen = int(r.u64())
	nSeqs := int(r.u32())
	if r.fail || nSeqs < 1 || nSeqs > maxSeqs {
		return bad("implausible sequence count %d", nSeqs)
	}
	info.Seqs = make([]SeqMeta, nSeqs)
	for i := range info.Seqs {
		info.Seqs[i] = SeqMeta{
			Name:   r.str(maxNameLen),
			Offset: int(r.u64()),
			Length: int(r.u64()),
		}
	}
	info.ShardCount = int(r.u32())
	info.ShardSize = int(r.u32())
	info.Overlap = int(r.u32())
	nTables := int(r.u32())
	if r.fail || nTables < 1 || nTables > maxTables {
		return bad("implausible table count %d", nTables)
	}
	wantTables := 1
	if info.ShardCount > 0 {
		wantTables = info.ShardCount
	}
	if nTables != wantTables {
		return bad("%d tables but shard count %d", nTables, info.ShardCount)
	}
	info.Tables = make([]TableMeta, nTables)
	for i := range info.Tables {
		info.Tables[i] = TableMeta{
			ExtentStart: int(r.u64()),
			ExtentEnd:   int(r.u64()),
			CoreStart:   int(r.u64()),
			CoreEnd:     int(r.u64()),
			MaskedSeeds: int(r.u64()),
			MaskedHits:  int(r.u64()),
		}
	}
	nSecs := int(r.u32())
	if r.fail || nSecs < 1 || nSecs > maxSections {
		return bad("implausible section count %d", nSecs)
	}
	secs := make([]section, nSecs)
	for i := range secs {
		secs[i] = section{
			kind:   r.u32(),
			table:  r.u32(),
			offset: int64(r.u64()),
			length: int64(r.u64()),
			crc:    r.u32(),
		}
	}
	if r.fail {
		return bad("header shorter than its field structure")
	}
	if r.off != len(blob) {
		return bad("%d trailing header bytes", len(blob)-r.off)
	}
	for i, s := range secs {
		if _, ok := sectionKindNames[s.kind]; !ok {
			return bad("section %d has unknown kind %d", i, s.kind)
		}
		if s.table != noTable && int(s.table) >= nTables {
			return bad("section %d names table %d of %d", i, s.table, nTables)
		}
		if s.offset%4 != 0 {
			return bad("section %d offset %d is not 4-byte aligned", i, s.offset)
		}
	}
	info.Sections = sectionInfos(secs)
	return info, secs, nil
}

// sectionInfos converts placements to the public inspect form.
func sectionInfos(secs []section) []SectionInfo {
	out := make([]SectionInfo, len(secs))
	for i, s := range secs {
		ti := -1
		if s.table != noTable {
			ti = int(s.table)
		}
		out[i] = SectionInfo{
			Kind:   sectionKindNames[s.kind],
			Table:  ti,
			Offset: s.offset,
			Length: s.length,
			CRC:    s.crc,
		}
	}
	return out
}

// fingerprint hashes a header blob with FNV-64a. The header embeds
// every section's CRC-32C, so this covers the full file content.
func fingerprint(headerBlob []byte) uint64 {
	h := fnv.New64a()
	h.Write(headerBlob)
	return h.Sum64()
}

// alignUp rounds n up to a multiple of sectionAlign.
func alignUp(n int64) int64 {
	return (n + sectionAlign - 1) / sectionAlign * sectionAlign
}
