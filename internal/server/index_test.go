package server

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/indexfile"
	"darwin/internal/indexio"
)

// writeRefAndIndex writes a synthetic FASTA and a matching prebuilt
// index, returning both paths.
func writeRefAndIndex(t *testing.T, cfg core.Config, sidecar bool) (refPath, idxPath string) {
	t.Helper()
	ref := dna.Random(rand.New(rand.NewSource(71)), 60000, 0.5)
	dir := t.TempDir()
	refPath = filepath.Join(dir, "ref.fa")
	var buf bytes.Buffer
	recs := []dna.Record{{Name: "chr1", Seq: ref}}
	if err := dna.WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if sidecar {
		idxPath = indexfile.SidecarPath(refPath)
	} else {
		idxPath = filepath.Join(dir, "prebuilt.dwi")
	}
	if _, err := indexio.WriteFile(idxPath, recs, cfg, core.ShardSpec{}); err != nil {
		t.Fatal(err)
	}
	return refPath, idxPath
}

// TestWarmFromExplicitIndex: -index cold-start serves without a build
// and reports the mapping on the entry.
func TestWarmFromExplicitIndex(t *testing.T) {
	cfg := testCoreConfig()
	refPath, idxPath := writeRefAndIndex(t, cfg, false)
	s := New(Config{DefaultRef: refPath, DefaultIndex: idxPath, Core: cfg})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	e := s.defaultEntry.Load()
	if e.IndexFile != idxPath {
		t.Errorf("entry.IndexFile = %q, want %q", e.IndexFile, idxPath)
	}
	if e.MappedBytes == 0 {
		t.Error("entry.MappedBytes = 0, want the mapping size")
	}
	if e.Fingerprint == 0 {
		t.Error("entry.Fingerprint = 0, want the file fingerprint")
	}
	if e.BuildTime != 0 {
		t.Errorf("entry.BuildTime = %v for a mapped load, want 0 (no build pass)", e.BuildTime)
	}
}

// TestWarmFromSidecar: the `<ref>.dwi` file next to the FASTA is
// discovered without configuration.
func TestWarmFromSidecar(t *testing.T) {
	cfg := testCoreConfig()
	refPath, idxPath := writeRefAndIndex(t, cfg, true)
	s := New(Config{DefaultRef: refPath, Core: cfg})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e := s.defaultEntry.Load(); e.IndexFile != idxPath {
		t.Errorf("sidecar not discovered: entry.IndexFile = %q, want %q", e.IndexFile, idxPath)
	}

	// DisableSidecar must ignore the same file.
	s2 := New(Config{DefaultRef: refPath, Core: cfg, DisableSidecar: true})
	if err := s2.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e := s2.defaultEntry.Load(); e.IndexFile != "" {
		t.Errorf("DisableSidecar still loaded %q", e.IndexFile)
	}
}

// TestSidecarFallback: a corrupt sidecar degrades to a FASTA build; a
// corrupt explicit index fails Warm outright.
func TestSidecarFallback(t *testing.T) {
	cfg := testCoreConfig()
	refPath, idxPath := writeRefAndIndex(t, cfg, true)
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the fingerprint (header-only) still reads, so
	// the load itself must fail the checksum pass and fall back.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0x01
	if err := os.WriteFile(idxPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{DefaultRef: refPath, Core: cfg})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatalf("corrupt sidecar did not fall back to FASTA build: %v", err)
	}
	if e := s.defaultEntry.Load(); e.IndexFile != "" {
		t.Errorf("fallback entry still claims index file %q", e.IndexFile)
	}

	s2 := New(Config{DefaultRef: refPath, DefaultIndex: idxPath, Core: cfg})
	if err := s2.Warm(context.Background()); err == nil {
		t.Fatal("corrupt explicit index warmed successfully; want a hard failure")
	}
}

// TestIndexFingerprintInCacheKey: rewriting the index file yields a
// distinct cache entry instead of serving the stale mapping.
func TestIndexFingerprintInCacheKey(t *testing.T) {
	cfg := testCoreConfig()
	refPath, idxPath := writeRefAndIndex(t, cfg, true)
	s := New(Config{DefaultRef: refPath, Core: cfg})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := s.defaultEntry.Load()

	// Rewrite the sidecar from the same records but a different engine
	// parameterization footprint: reuse the same cfg (content identical)
	// would fingerprint identically, so rebuild over a truncated ref.
	ref2 := dna.Random(rand.New(rand.NewSource(72)), 40000, 0.5)
	if _, err := indexio.WriteFile(idxPath, []dna.Record{{Name: "chr1", Seq: ref2}}, cfg, core.ShardSpec{}); err != nil {
		t.Fatal(err)
	}
	entry, _, err := s.loadEntry(context.Background(), refPath)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Key == first.Key {
		t.Error("rewritten index produced the same cache key; stale mapping would be served")
	}
	if entry.Fingerprint == first.Fingerprint {
		t.Error("rewritten index produced the same fingerprint")
	}
}
