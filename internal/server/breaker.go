package server

import (
	"errors"
	"sync"
	"time"

	"darwin/internal/obs"
)

// Breaker observability: transitions and the number of sources
// currently open.
var (
	cBreakerOpens = obs.Default.Counter("server/breaker_opens")
	cBreakerFast  = obs.Default.Counter("server/breaker_fast_fails")
	gBreakerOpen  = obs.Default.Gauge("server/breakers_open")
)

// ErrCircuitOpen is returned (wrapped) when a source's breaker is
// rejecting work; the HTTP layer maps it to a structured 503 with the
// cooldown as Retry-After.
var ErrCircuitOpen = errors.New("server: index build circuit open")

// Breaker is a per-source circuit breaker over index builds. Repeated
// consecutive build failures for one reference mean the source is
// doomed (missing file, corrupt FASTA, injected fault) — re-running
// the build for every request just burns an executor-side build slot
// per request. After Threshold consecutive failures the breaker opens:
// requests fail fast with ErrCircuitOpen until Cooldown passes, then a
// single probe build is allowed through (half-open); its outcome
// closes or re-opens the circuit.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	failures int
	state    breakerState
	openedAt time.Time
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// NewBreaker returns a closed breaker (threshold min 1, cooldown min
// 1ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a build attempt may proceed. In the open
// state it returns false until the cooldown elapses, then admits
// exactly one probe (half-open); while that probe is in flight every
// other caller keeps failing fast.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		cBreakerFast.Inc()
		return false
	default: // half-open: a probe is already in flight
		cBreakerFast.Inc()
		return false
	}
}

// Success records a successful build, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		gBreakerOpen.Add(-1)
	}
	b.state = breakerClosed
	b.failures = 0
}

// Failure records a failed build: in the closed state it opens the
// circuit once Threshold consecutive failures accumulate; a failed
// half-open probe re-opens immediately.
func (b *Breaker) Failure() { b.ReportFailure() }

// ReportFailure is Failure that also reports whether this failure
// transitioned the breaker to open — callers with their own
// per-backend metrics (the cluster router) count open transitions
// without polling State.
func (b *Breaker) ReportFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case breakerClosed:
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			cBreakerOpens.Inc()
			gBreakerOpen.Add(1)
			return true
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		cBreakerOpens.Inc()
		return true
	}
	return false
}

// State returns the current state name (for tests and debug output).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
