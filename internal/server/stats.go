package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"darwin/internal/obs"
)

// SLO surface: /v1/stats answers "are we inside our latency and error
// budgets right now?" from rolling 1m/5m windows, without Prometheus
// in the loop. The cumulative Registry (exposed at /metrics) is for
// fleet scrapers; this endpoint is for a human or a load balancer
// asking the process directly.

// statsWindows are the trailing windows /v1/stats reports.
var statsWindows = []struct {
	label string
	d     time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
}

// sloTracker accumulates per-request outcomes into rolling windows.
type sloTracker struct {
	mapLatencyMS *obs.RollingQuantile
	requests     *obs.RollingCounter
	failures     *obs.RollingCounter
	reads        *obs.RollingCounter

	mu     sync.Mutex
	byCode map[string]*obs.RollingCounter
}

func newSLOTracker() *sloTracker {
	const span = 5 * time.Minute
	return &sloTracker{
		mapLatencyMS: obs.NewRollingQuantile(span),
		requests:     obs.NewRollingCounter(span),
		failures:     obs.NewRollingCounter(span),
		reads:        obs.NewRollingCounter(span),
		byCode:       make(map[string]*obs.RollingCounter),
	}
}

// observe records one completed /v1/map request.
func (t *sloTracker) observe(d time.Duration, status int, errCode string) {
	t.requests.Inc()
	t.mapLatencyMS.Observe(float64(d) / float64(time.Millisecond))
	if status >= 400 {
		t.failures.Inc()
		if errCode == "" {
			errCode = "unknown"
		}
		t.codeCounter(errCode).Inc()
	}
}

// observeReads counts admitted reads for the reads/s rate.
func (t *sloTracker) observeReads(n int) {
	t.reads.Add(int64(n))
}

// codeCounter returns the rolling counter for one error code. The
// code set is the API's own enum, so the map stays small.
func (t *sloTracker) codeCounter(code string) *obs.RollingCounter {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.byCode[code]
	if !ok {
		c = obs.NewRollingCounter(5 * time.Minute)
		t.byCode[code] = c
	}
	return c
}

// windowStats is one trailing window's SLO view on the wire.
type windowStats struct {
	Requests      int64            `json:"requests"`
	RequestsPerS  float64          `json:"requests_per_sec"`
	ReadsPerS     float64          `json:"reads_per_sec"`
	ErrorRate     float64          `json:"error_rate"`
	ErrorsByCode  map[string]int64 `json:"errors_by_code,omitempty"`
	MapLatencyP50 float64          `json:"map_latency_ms_p50"`
	MapLatencyP95 float64          `json:"map_latency_ms_p95"`
	MapLatencyP99 float64          `json:"map_latency_ms_p99"`
}

func (t *sloTracker) window(d time.Duration) windowStats {
	lat := t.mapLatencyMS.Window(d)
	reqs := t.requests.Total(d)
	out := windowStats{
		Requests:      reqs,
		RequestsPerS:  t.requests.Rate(d),
		ReadsPerS:     t.reads.Rate(d),
		MapLatencyP50: lat.P50,
		MapLatencyP95: lat.P95,
		MapLatencyP99: lat.P99,
	}
	if reqs > 0 {
		out.ErrorRate = float64(t.failures.Total(d)) / float64(reqs)
	}
	t.mu.Lock()
	for code, c := range t.byCode {
		if n := c.Total(d); n > 0 {
			if out.ErrorsByCode == nil {
				out.ErrorsByCode = make(map[string]int64)
			}
			out.ErrorsByCode[code] = n
		}
	}
	t.mu.Unlock()
	return out
}

// statsResponse is the /v1/stats body.
type statsResponse struct {
	Now          time.Time              `json:"now"`
	Ready        bool                   `json:"ready"`
	Draining     bool                   `json:"draining"`
	QueueDepth   int64                  `json:"queue_depth"`
	Windows      map[string]windowStats `json:"windows"`
	Breakers     map[string]string      `json:"breakers,omitempty"`
	SlowCaptures int                    `json:"slow_captures"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Now:          time.Now(),
		Ready:        s.Ready(),
		Draining:     s.draining.Load(),
		QueueDepth:   obs.Default.Gauge("server/queue_depth").Value(),
		Windows:      make(map[string]windowStats, len(statsWindows)),
		SlowCaptures: s.slow.Len(),
	}
	for _, win := range statsWindows {
		resp.Windows[win.label] = s.stats.window(win.d)
	}
	s.brMu.Lock()
	if len(s.breakers) > 0 {
		resp.Breakers = make(map[string]string, len(s.breakers))
		for key, br := range s.breakers {
			resp.Breakers[key] = br.State()
		}
	}
	s.brMu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleSlow serves the slow-request capture ring: the top-K slowest
// /v1/map requests since start, each with its full span tree, slowest
// first.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	caps := s.slow.Snapshot() // already slowest-first
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Captures []obs.SlowCapture `json:"captures"`
	}{Captures: caps})
}
