package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"darwin/internal/dna"
	"darwin/internal/jobs"
	"darwin/internal/obs"
)

var (
	cJobRequests = obs.Default.Counter("jobs/http_requests")
	cJobRejects  = obs.Default.Counter("jobs/http_rejected")
)

// JobRequest is the JSON body of POST /v1/jobs. Alternatively the body
// may be raw FASTA (text/x-fasta or any unrecognized content type) or
// read NDJSON (application/x-ndjson, one {"name","seq"} per line), in
// which case kind and parameters come from query parameters of the
// same names.
type JobRequest struct {
	// Kind is "overlap" or "assemble" (default assemble).
	Kind string `json:"kind,omitempty"`
	// Reads are the reads to overlap/assemble (at least one).
	Reads []ReadInput `json:"reads"`
	// MinOverlap is the nominal minimum overlap length (default 1000).
	MinOverlap int `json:"min_overlap,omitempty"`
	// PolishRounds overrides the polishing round count (default 2;
	// pointer so an explicit 0 disables polishing).
	PolishRounds *int `json:"polish_rounds,omitempty"`
	// MinContig drops contigs shorter than this (default 0).
	MinContig int `json:"min_contig,omitempty"`
	// Reorder selects the read-reordering pass: off, rcm, or farthest.
	Reorder string `json:"reorder,omitempty"`
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	cJobRequests.Inc()
	ctx := r.Context()
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.jobs.List())
	default:
		cJobRejects.Inc()
		httpError(ctx, w, http.StatusMethodNotAllowed, CodeMethodNotAllow, "POST or GET required")
	}
}

// handleJobSubmit decodes a job payload in any of the three accepted
// shapes and enqueues it.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	span := obs.SpanFromContext(ctx)
	if s.draining.Load() {
		cJobRejects.Inc()
		w.Header().Set("Retry-After", "5")
		httpError(ctx, w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	kind := jobs.Kind(firstNonEmpty(r.URL.Query().Get("kind"), string(jobs.KindAssemble)))
	params := jobs.DefaultParams()
	var recs []dna.Record

	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"):
		var req JobRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.jobDecodeError(ctx, w, err)
			return
		}
		if req.Kind != "" {
			kind = jobs.Kind(req.Kind)
		}
		if req.MinOverlap > 0 {
			params.MinOverlap = req.MinOverlap
		}
		if req.PolishRounds != nil {
			params.PolishRounds = *req.PolishRounds
		}
		if req.MinContig > 0 {
			params.MinContig = req.MinContig
		}
		if req.Reorder != "" {
			params.Reorder = req.Reorder
		}
		for i, rd := range req.Reads {
			name := rd.Name
			if name == "" {
				name = fmt.Sprintf("read_%d", i)
			}
			recs = append(recs, dna.Record{Name: name, Seq: rd.Seq})
		}
	case strings.HasPrefix(ct, "application/x-ndjson"):
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var rd ReadInput
			if err := json.Unmarshal([]byte(text), &rd); err != nil {
				s.jobDecodeError(ctx, w, fmt.Errorf("line %d: %w", line, err))
				return
			}
			if rd.Name == "" {
				rd.Name = fmt.Sprintf("read_%d", line)
			}
			recs = append(recs, dna.Record{Name: rd.Name, Seq: rd.Seq})
		}
		if err := sc.Err(); err != nil {
			s.jobDecodeError(ctx, w, err)
			return
		}
	default:
		// Raw FASTA payload.
		var err error
		recs, err = dna.ReadFASTA(body)
		if err != nil {
			s.jobDecodeError(ctx, w, err)
			return
		}
	}

	q := r.URL.Query()
	if v := q.Get("min_overlap"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.jobBadParam(ctx, w, "min_overlap", v)
			return
		}
		params.MinOverlap = n
	}
	if v := q.Get("polish"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.jobBadParam(ctx, w, "polish", v)
			return
		}
		params.PolishRounds = n
	}
	if v := q.Get("min_contig"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.jobBadParam(ctx, w, "min_contig", v)
			return
		}
		params.MinContig = n
	}
	if v := q.Get("reorder"); v != "" {
		params.Reorder = v
	}

	for i := range recs {
		if len(recs[i].Seq) == 0 {
			cJobRejects.Inc()
			httpError(ctx, w, http.StatusBadRequest, CodeBadRequest, "read %d (%q) has an empty sequence", i, recs[i].Name)
			return
		}
	}

	st, err := s.jobs.Submit(kind, recs, params)
	if err != nil {
		cJobRejects.Inc()
		switch {
		case errors.Is(err, jobs.ErrDraining):
			w.Header().Set("Retry-After", "5")
			httpError(ctx, w, http.StatusServiceUnavailable, CodeDraining, "draining")
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "5")
			httpError(ctx, w, http.StatusTooManyRequests, CodeQueueFull, "job queue full, retry later")
		default:
			httpError(ctx, w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	span.SetLabel("job_id", st.ID)
	span.SetAttr("reads", int64(st.Reads))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(st)
}

// jobDecodeError maps payload decode failures: an oversized body is
// the structured payload_too_large, anything else bad_request.
func (s *Server) jobDecodeError(ctx context.Context, w http.ResponseWriter, err error) {
	cJobRejects.Inc()
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(ctx, w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			"payload exceeds %d bytes", tooLarge.Limit)
		return
	}
	httpError(ctx, w, http.StatusBadRequest, CodeBadRequest, "bad job payload: %v", err)
}

func (s *Server) jobBadParam(ctx context.Context, w http.ResponseWriter, name, val string) {
	cJobRejects.Inc()
	httpError(ctx, w, http.StatusBadRequest, CodeBadRequest, "bad %s parameter %q", name, val)
}

// handleJob serves one job: GET status, GET result (…/result suffix),
// DELETE cancel.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	cJobRequests.Inc()
	ctx := r.Context()
	span := obs.SpanFromContext(ctx)
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, tail, _ := strings.Cut(rest, "/")
	if id == "" || (tail != "" && tail != "result") {
		cJobRejects.Inc()
		httpError(ctx, w, http.StatusNotFound, CodeJobNotFound, "no such job endpoint %q", r.URL.Path)
		return
	}
	span.SetLabel("job_id", id)

	switch {
	case tail == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, r, id)
	case tail == "" && r.Method == http.MethodGet:
		st, err := s.jobs.Get(id)
		if err != nil {
			cJobRejects.Inc()
			httpError(ctx, w, http.StatusNotFound, CodeJobNotFound, "job %q not found", id)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(st)
	case tail == "" && r.Method == http.MethodDelete:
		st, err := s.jobs.Cancel(id)
		if err != nil {
			cJobRejects.Inc()
			httpError(ctx, w, http.StatusNotFound, CodeJobNotFound, "job %q not found", id)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(st)
	default:
		cJobRejects.Inc()
		httpError(ctx, w, http.StatusMethodNotAllowed, CodeMethodNotAllow, "GET or DELETE required")
	}
}

// handleJobResult streams a done job's output file, or explains with a
// structured code why there is nothing to stream: job_not_done while
// the pipeline runs, job_canceled after a cancel, the job's own error
// code (checkpoint_corrupt, fault_injected, internal) after a failure.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id string) {
	ctx := r.Context()
	st, err := s.jobs.Get(id)
	if err != nil {
		cJobRejects.Inc()
		httpError(ctx, w, http.StatusNotFound, CodeJobNotFound, "job %q not found", id)
		return
	}
	switch st.State {
	case jobs.StateCanceled:
		cJobRejects.Inc()
		httpError(ctx, w, http.StatusConflict, CodeJobCanceled, "job %q was canceled", id)
		return
	case jobs.StateFailed:
		cJobRejects.Inc()
		code := st.ErrorCode
		if code == "" {
			code = CodeInternal
		}
		httpError(ctx, w, http.StatusInternalServerError, code, "job %q failed: %s", id, st.Error)
		return
	case jobs.StateDone:
	default:
		cJobRejects.Inc()
		w.Header().Set("Retry-After", "2")
		httpError(ctx, w, http.StatusConflict, CodeJobNotDone, "job %q is %s", id, st.State)
		return
	}
	path, contentType, err := s.jobs.ResultFile(id)
	if err != nil {
		httpError(ctx, w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		httpError(ctx, w, http.StatusInternalServerError, CodeInternal, "opening result: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", contentType+"; charset=utf-8")
	io.Copy(w, f)
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
