package server

import (
	"net/http"
	"strings"

	"darwin/internal/obs"
)

// Request identity. Every request gets exactly one ID at ingress —
// the client's X-Request-ID if it sent one, the trace-id of a W3C
// traceparent header otherwise, a freshly minted random ID as the
// fallback — and that ID follows the request through the slog access
// line, the span tree, every NDJSON response record, and the error
// envelope. The response always echoes it in X-Request-ID so clients
// can quote the server's identity for a failure even when they did
// not supply their own.

// maxRequestIDLen caps inbound IDs: identities are for correlation,
// not payload smuggling. Longer values are truncated, not rejected.
const maxRequestIDLen = 64

// RequestIDFrom extracts or mints a request's identity — exported for
// the cluster router, which must apply darwind's exact ingress rule so
// one ID threads an entire scatter-gather span tree across processes.
func RequestIDFrom(r *http.Request) string { return requestIDFrom(r) }

// requestIDFrom extracts or mints the request's identity.
func requestIDFrom(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	if id := traceparentID(r.Header.Get("traceparent")); id != "" {
		return id
	}
	return obs.NewRequestID()
}

// sanitizeRequestID keeps IDs loggable: printable ASCII without
// spaces, quotes, or header-breaking characters; bounded length.
func sanitizeRequestID(id string) string {
	if id == "" {
		return ""
	}
	var b strings.Builder
	for _, c := range id {
		if b.Len() >= maxRequestIDLen {
			break
		}
		if c > 0x20 && c < 0x7f && c != '"' && c != '\\' && c != ',' && c != ';' {
			b.WriteRune(c)
		}
	}
	return b.String()
}

// traceparentID pulls the 32-hex trace-id field out of a W3C
// traceparent header ("00-<trace-id>-<parent-id>-<flags>"), returning
// "" for anything malformed or all-zero.
func traceparentID(tp string) string {
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || len(parts[1]) != 32 {
		return ""
	}
	allZero := true
	for _, c := range parts[1] {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
			if c != '0' {
				allZero = false
			}
		default:
			return ""
		}
	}
	if allZero {
		return ""
	}
	return parts[1]
}
