package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/jobs"
	"darwin/internal/readsim"
)

// jobsTestServer starts a server with only the job API wired — job
// endpoints never touch the mapping index, so no reference warm is
// needed.
func jobsTestServer(t *testing.T, cfg Config) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.New(jobs.Config{Dir: t.TempDir(), CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = mgr
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return ts, mgr
}

// jobsTestReads simulates an assemblable read set.
func jobsTestReads(t *testing.T, n int) []readsim.Read {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: 15000, GC: 0.45, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, n, readsim.Config{Profile: readsim.PacBio, MeanLen: 1800, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

func decodeJobStatus(t *testing.T, r io.Reader) jobs.Status {
	t.Helper()
	var st jobs.Status
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollJob polls status until terminal.
func pollJob(t *testing.T, base, id string, timeout time.Duration) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("status poll: HTTP %d: %s", resp.StatusCode, body)
		}
		st := decodeJobStatus(t, resp.Body)
		resp.Body.Close()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return jobs.Status{}
}

func wantEnvelopeCode(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d, want %d: %s", resp.StatusCode, status, body)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if eb.Error.Code != code {
		t.Errorf("envelope code = %q, want %q", eb.Error.Code, code)
	}
	if eb.Error.RequestID == "" {
		t.Error("envelope missing request_id")
	}
}

// TestJobsHTTPLifecycle: JSON submit → poll → stream contigs.
func TestJobsHTTPLifecycle(t *testing.T) {
	ts, _ := jobsTestServer(t, Config{})
	reads := jobsTestReads(t, 25)

	zero := 0
	req := JobRequest{Kind: "assemble", PolishRounds: &zero}
	for i, r := range reads {
		req.Reads = append(req.Reads, ReadInput{Name: fmt.Sprintf("read%d", i), Seq: r.Seq})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("submit response missing X-Request-ID")
	}
	st := decodeJobStatus(t, resp.Body)
	resp.Body.Close()
	if st.ID == "" || st.Reads != len(reads) {
		t.Fatalf("submit status = %+v", st)
	}

	fin := pollJob(t, ts.URL, st.ID, 2*time.Minute)
	if fin.State != jobs.StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Contigs == 0 {
		t.Fatalf("result meta = %+v", fin.Result)
	}

	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", rresp.StatusCode)
	}
	if ct := rresp.Header.Get("Content-Type"); !strings.Contains(ct, "fasta") {
		t.Errorf("result content type = %q", ct)
	}
	contigs, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(contigs, []byte(">contig_")) {
		t.Errorf("result body %.40q does not look like contig FASTA", contigs)
	}

	// The collection listing includes the job.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []jobs.Status
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
}

// TestJobsHTTPSubmitFASTA: raw FASTA body, parameters via query.
func TestJobsHTTPSubmitFASTA(t *testing.T) {
	ts, _ := jobsTestServer(t, Config{})
	reads := jobsTestReads(t, 18)
	recs := make([]dna.Record, len(reads))
	for i, r := range reads {
		recs[i] = dna.Record{Name: r.Name, Seq: r.Seq}
	}
	var buf bytes.Buffer
	if err := dna.WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs?kind=overlap&min_overlap=500", "text/x-fasta", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	st := decodeJobStatus(t, resp.Body)
	resp.Body.Close()
	if st.Kind != jobs.KindOverlap || st.Params.MinOverlap != 500 {
		t.Fatalf("submit status = %+v", st)
	}
	fin := pollJob(t, ts.URL, st.ID, 2*time.Minute)
	if fin.State != jobs.StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if ct := rresp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("result content type = %q", ct)
	}
}

// TestJobsHTTPErrors: the structured envelope codes of the job API.
func TestJobsHTTPErrors(t *testing.T) {
	ts, _ := jobsTestServer(t, Config{MaxBodyBytes: 2048})
	client := &http.Client{}

	// Unknown job.
	resp, err := http.Get(ts.URL + "/v1/jobs/jdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusNotFound, CodeJobNotFound)

	// Result of unknown job.
	resp, err = http.Get(ts.URL + "/v1/jobs/jdeadbeef/result")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusNotFound, CodeJobNotFound)

	// Method not allowed on the collection.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusMethodNotAllowed, CodeMethodNotAllow)

	// Oversized payload: MaxBodyBytes is 2 KiB, the decoder must hit
	// the limit while consuming this 16 KiB sequence string.
	big := []byte(`{"reads":[{"name":"r0","seq":"` + strings.Repeat("ACGT", 4096) + `"}]}`)
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)

	// Bad query parameter.
	resp, err = http.Post(ts.URL+"/v1/jobs?min_overlap=nope", "text/x-fasta",
		strings.NewReader(">r0\nACGTACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusBadRequest, CodeBadRequest)

	// Bad reorder mode is rejected at submit.
	resp, err = http.Post(ts.URL+"/v1/jobs?reorder=sideways", "text/x-fasta",
		strings.NewReader(">r0\nACGTACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusBadRequest, CodeBadRequest)

	// Empty sequence.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"reads":[{"name":"r0","seq":""}]}`))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusBadRequest, CodeBadRequest)
}

// TestJobsHTTPCancelAndNotDone: result before completion is 409
// job_not_done; after DELETE it is 409 job_canceled.
func TestJobsHTTPCancelAndNotDone(t *testing.T) {
	ts, _ := jobsTestServer(t, Config{})
	reads := jobsTestReads(t, 25)
	recs := make([]dna.Record, len(reads))
	for i, r := range reads {
		recs[i] = dna.Record{Name: r.Name, Seq: r.Seq}
	}
	var buf bytes.Buffer
	if err := dna.WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs?kind=assemble", "text/x-fasta", &buf)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJobStatus(t, resp.Body)
	resp.Body.Close()

	// Immediately asking for the result races the pipeline, which takes
	// far longer than this request round-trip.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusConflict, CodeJobNotDone)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("cancel: HTTP %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()

	fin := pollJob(t, ts.URL, st.ID, time.Minute)
	if fin.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s", fin.State)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelopeCode(t, resp, http.StatusConflict, CodeJobCanceled)
}
