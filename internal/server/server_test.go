package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

// testService writes a synthetic reference FASTA, warms a server on
// it, and returns the server plus simulated reads with ground truth.
func testService(t *testing.T, cfg Config) (*Server, *httptest.Server, []readsim.Read) {
	t.Helper()
	ref := dna.Random(rand.New(rand.NewSource(61)), 80000, 0.5)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fa")
	var buf bytes.Buffer
	if err := dna.WriteFASTA(&buf, []dna.Record{{Name: "chr1", Seq: ref}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.DefaultRef = refPath
	if cfg.Core.SeedK == 0 {
		cfg.Core = testCoreConfig()
	}
	s := New(cfg)
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	reads, err := readsim.SimulateN(ref, 8, readsim.Config{Profile: readsim.PacBio, MeanLen: 900, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, reads
}

func mapRequestBody(t *testing.T, reads []readsim.Read) []byte {
	t.Helper()
	req := MapRequest{}
	for i, r := range reads {
		req.Reads = append(req.Reads, ReadInput{Name: fmt.Sprintf("read%d", i), Seq: r.Seq})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServeMapNDJSON(t *testing.T) {
	_, ts, reads := testService(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(mapRequestBody(t, reads)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q, want NDJSON", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var lines []MapResponseLine
	for sc.Scan() {
		var line MapResponseLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(reads) {
		t.Fatalf("%d response lines for %d reads", len(lines), len(reads))
	}
	mapped := 0
	for i, line := range lines {
		if line.Read != fmt.Sprintf("read%d", i) {
			t.Errorf("line %d: read name %q out of order", i, line.Read)
		}
		if len(line.Records) == 0 {
			t.Errorf("line %d: no records (even unmapped reads emit one)", i)
		}
		if line.Mapped {
			mapped++
			rec := line.Records[0]
			if rec.RName != "chr1" || rec.Cigar == "" {
				t.Errorf("line %d: bad record %+v", i, rec)
			}
			// Mapped position must be near the simulated origin.
			if rec.Pos < reads[i].RefStart-100 || rec.Pos > reads[i].RefStart+100 {
				t.Errorf("line %d: pos %d far from truth %d", i, rec.Pos, reads[i].RefStart)
			}
		}
	}
	if mapped < len(reads)-1 {
		t.Errorf("only %d/%d reads mapped", mapped, len(reads))
	}
}

func TestServeMapSAMFormat(t *testing.T) {
	_, ts, reads := testService(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/map?format=sam", "application/json", bytes.NewReader(mapRequestBody(t, reads)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var header, records int
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "@") {
			header++
			continue
		}
		records++
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			t.Errorf("SAM record has %d fields: %q", len(fields), line)
		}
	}
	if header < 2 {
		t.Errorf("%d header lines, want @HD + @SQ at least", header)
	}
	if records < len(reads) {
		t.Errorf("%d SAM records for %d reads", records, len(reads))
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts, _ := testService(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz warm = %d", got)
	}
	s.StartDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz draining = %d, want 200 (liveness)", got)
	}
}

func TestReadyzBeforeWarm(t *testing.T) {
	s := New(Config{DefaultRef: "/nonexistent.fa"})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before warm = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/map", strings.NewReader(`{"reads":[{"name":"r","seq":"ACGT"}]}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("map before warm = %d, want 503", rec.Code)
	}
}

func TestMapRejectsBadRequests(t *testing.T) {
	_, ts, reads := testService(t, Config{MaxReadsPerRequest: 4})
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", resp.StatusCode)
	}
	if resp := post(`{"reads":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no reads = %d", resp.StatusCode)
	}
	if resp := post(`{"reads":[{"name":"r","seq":""}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty seq = %d", resp.StatusCode)
	}
	big, _ := json.Marshal(MapRequest{Reads: []ReadInput{
		{Name: "a", Seq: reads[0].Seq}, {Name: "b", Seq: reads[0].Seq}, {Name: "c", Seq: reads[0].Seq},
		{Name: "d", Seq: reads[0].Seq}, {Name: "e", Seq: reads[0].Seq},
	}})
	if resp := post(string(big)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize request = %d, want 413", resp.StatusCode)
	}
	if resp := post(`{"reference":"/etc/other.fa","reads":[{"name":"r","seq":"ACGT"}]}`); resp.StatusCode != http.StatusForbidden {
		t.Errorf("non-default reference with AllowRefLoad off = %d, want 403", resp.StatusCode)
	}
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/map = %d", resp.StatusCode)
	}
}

// TestMapQueueOverflow429: with the batcher unstarted (same-package
// surgery), the admission queue fills and overflow requests get 429 +
// Retry-After while queued requests time out at their deadline — the
// admission-control contract under a stalled backend.
func TestMapQueueOverflow429(t *testing.T) {
	s, ts, reads := testService(t, Config{})
	// Swap in a tiny, never-started batcher: jobs queue but never run.
	s.batcher = NewBatcher(BatcherConfig{QueueBound: 2})

	body := func() []byte {
		b, _ := json.Marshal(MapRequest{
			TimeoutMS: 300,
			Reads:     []ReadInput{{Name: "r", Seq: reads[0].Seq}},
		})
		return b
	}
	var wg sync.WaitGroup
	codes := make([]int, 5)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body()))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
		}(i)
	}
	wg.Wait()
	var too, timeout int
	for _, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			too++
		case http.StatusGatewayTimeout:
			timeout++
		default:
			t.Errorf("unexpected status %d under overflow", c)
		}
	}
	if too != 3 || timeout != 2 {
		t.Errorf("codes = %v: want exactly 2 admitted (504 at deadline) and 3 rejected (429)", codes)
	}
}

// TestServerDrain: requests in flight when drain starts are all
// answered; requests after drain get 503.
func TestServerDrain(t *testing.T) {
	s, ts, reads := testService(t, Config{Batch: BatcherConfig{MaxWait: 50 * time.Millisecond}})
	body := mapRequestBody(t, reads)

	const n = 6
	codes := make([]int, n)
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	wg.Wait() // all responses received before we drain
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("pre-drain request %d: status %d, want 200", i, c)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain 503 without Retry-After")
	}
}

func TestIndexesEndpoint(t *testing.T) {
	_, ts, _ := testService(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []struct {
		Key       string `json:"key"`
		Sequences int    `json:"sequences"`
		Bases     int    `json:"bases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Sequences != 1 || infos[0].Bases < 80000 {
		t.Errorf("indexes = %+v, want the one warm default index", infos)
	}
}
