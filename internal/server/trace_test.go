package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"darwin/internal/obs"
	"darwin/internal/shard"
)

// postMap sends one /v1/map request with an explicit request ID and
// returns the response plus its decoded NDJSON lines.
func postMap(t *testing.T, url, reqID string, body []byte) (*http.Response, []MapResponseLine) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/map", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []MapResponseLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line MapResponseLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	return resp, lines
}

// TestTracedRequestSpanTree maps one traced request and checks the
// captured span tree end to end: the request ID threads from the
// inbound header through the response header, every NDJSON line, and
// the slow-capture ring; every stage timer the Registry advanced
// during serving appears as a span in the tree; and the root's
// sequential stage children sum to no more than the root itself.
func TestTracedRequestSpanTree(t *testing.T) {
	srv, ts, reads := testService(t, Config{SlowCapture: 4})
	before := obs.Default.Snapshot()

	const reqID = "trace-test-0001"
	resp, lines := postMap(t, ts.URL, reqID, mapRequestBody(t, reads))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response X-Request-ID = %q, want %q", got, reqID)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing %q missing total stage", st)
	}
	if len(lines) != len(reads) {
		t.Fatalf("%d NDJSON lines for %d reads", len(lines), len(reads))
	}
	for i, line := range lines {
		if line.RequestID != reqID {
			t.Errorf("line %d: request_id %q, want %q", i, line.RequestID, reqID)
		}
	}

	caps := srv.SlowCaptures()
	if len(caps) != 1 {
		t.Fatalf("%d slow captures, want 1", len(caps))
	}
	tree := caps[0].Span
	if tree.RequestID != reqID {
		t.Errorf("captured tree request_id %q, want %q", tree.RequestID, reqID)
	}

	// Every stage timer that advanced while the request was served
	// must be attributed somewhere in its span tree (stage/index is
	// exercised only by index builds, which Warm did beforehand).
	diff := obs.Default.Snapshot().Sub(before)
	for name, ts := range diff.Timers {
		if !strings.HasPrefix(name, "stage/") || ts.Count == 0 {
			continue
		}
		if tree.Find(name) == nil {
			t.Errorf("stage timer %s advanced (%d obs) but has no span in the tree", name, ts.Count)
		}
	}
	// The serving pipeline's own stages, by name.
	for _, name := range []string{"server.admit", "server.queue_wait", "server.batch", "core.map", "core.read"} {
		if tree.Find(name) == nil {
			t.Errorf("span %s missing from captured tree", name)
		}
	}
	// A mapped PacBio read accepts at least one candidate, so the GACT
	// engine must have recorded an extension child with work attrs.
	ext := tree.Find("gact.extend")
	if ext == nil {
		t.Fatalf("no gact.extend span in tree")
	}
	if ext.Attrs["tiles"] == 0 || ext.Attrs["cells"] == 0 {
		t.Errorf("gact.extend attrs %v missing tiles/cells", ext.Attrs)
	}
	if rd := tree.Find("core.read"); rd != nil && rd.Attrs["candidates"] == 0 {
		t.Errorf("core.read attrs %v missing candidates", rd.Attrs)
	}

	// Sequential stage children cannot outlast the request: their sum
	// stays within the root's duration plus scheduling slack.
	var sum int64
	for _, c := range tree.Children {
		sum += c.DurationUS
	}
	slack := int64(10 * time.Millisecond / time.Microsecond)
	if sum > tree.DurationUS+slack {
		t.Errorf("children sum %dus exceeds root %dus (+%dus slack)", sum, tree.DurationUS, slack)
	}
}

// TestTracedRequestShardedSpanTree is the sharded-path variant of the
// span-tree check: under a 4-shard index the captured tree must show
// the scatter-gather split with shard attrs instead of core.map.
func TestTracedRequestShardedSpanTree(t *testing.T) {
	srv, ts, reads := testService(t, Config{
		SlowCapture: 4,
		Shard:       shard.Config{Shards: 4},
	})
	const reqID = "trace-shard-0001"
	resp, lines := postMap(t, ts.URL, reqID, mapRequestBody(t, reads))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for i, line := range lines {
		if line.RequestID != reqID {
			t.Errorf("line %d: request_id %q, want %q", i, line.RequestID, reqID)
		}
	}
	caps := srv.SlowCaptures()
	if len(caps) != 1 {
		t.Fatalf("%d slow captures, want 1", len(caps))
	}
	tree := caps[0].Span
	if tree.RequestID != reqID {
		t.Errorf("captured tree request_id %q, want %q", tree.RequestID, reqID)
	}
	for _, name := range []string{"server.batch", "shard.map", "shard.scatter", "shard.gather", "core.read", "stage/filter", "stage/align", "gact.extend"} {
		if tree.Find(name) == nil {
			t.Errorf("span %s missing from sharded tree", name)
		}
	}
	if ms := tree.Find("shard.map"); ms != nil && ms.Attrs["shards"] != 4 {
		t.Errorf("shard.map attrs %v, want shards=4", ms.Attrs)
	}
	if sc := tree.Find("shard.scatter"); sc != nil {
		if sc.Attrs["shard_hits"]+sc.Attrs["shard_builds"] == 0 {
			t.Errorf("shard.scatter attrs %v show no shard acquisitions", sc.Attrs)
		}
	}
}

// TestRequestIDSurvivesBatching fires concurrent requests with
// distinct IDs into a coalescing batcher and checks every response
// keeps its own identity: the batch is shared, the request is not.
func TestRequestIDSurvivesBatching(t *testing.T) {
	srv, ts, reads := testService(t, Config{
		SlowCapture: 16,
		Batch: BatcherConfig{
			MaxBatchReads: 64,
			MaxWait:       20 * time.Millisecond,
			Executors:     1, // one executor so requests coalesce
		},
	})
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("batch-id-%04d", i)
			body := mapRequestBody(t, reads[i%len(reads):i%len(reads)+1])
			resp, lines := postMap(t, ts.URL, id, body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if got := resp.Header.Get("X-Request-ID"); got != id {
				errs[i] = fmt.Errorf("header id %q, want %q", got, id)
				return
			}
			for _, line := range lines {
				if line.RequestID != id {
					errs[i] = fmt.Errorf("line id %q, want %q", line.RequestID, id)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	// Every request's captured tree carries its own ID and a batch
	// span (shared or not — coalescing is timing-dependent).
	caps := srv.SlowCaptures()
	if len(caps) != n {
		t.Fatalf("%d captures, want %d", len(caps), n)
	}
	seen := map[string]bool{}
	for _, c := range caps {
		seen[c.RequestID] = true
		if c.Span.Find("server.batch") == nil {
			t.Errorf("capture %s has no server.batch span", c.RequestID)
		}
	}
	for i := 0; i < n; i++ {
		if id := fmt.Sprintf("batch-id-%04d", i); !seen[id] {
			t.Errorf("no capture for %s", id)
		}
	}
}

// TestErrorEnvelopeCarriesRequestID checks a structured failure joins
// to the client's identity: the envelope and the echoed header both
// carry the inbound X-Request-ID.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	_, ts, _ := testService(t, Config{})
	const reqID = "err-envelope-77"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("header id %q, want %q", got, reqID)
	}
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != CodeBadRequest {
		t.Errorf("code %q, want %q", body.Error.Code, CodeBadRequest)
	}
	if body.Error.RequestID != reqID {
		t.Errorf("envelope request_id %q, want %q", body.Error.RequestID, reqID)
	}
}

// TestTraceparentMintsRequestID checks W3C trace context is honored
// at ingress when no X-Request-ID is present.
func TestTraceparentMintsRequestID(t *testing.T) {
	_, ts, _ := testService(t, Config{})
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Errorf("X-Request-ID %q, want traceparent trace-id %q", got, traceID)
	}
}

// TestMetricsAndStatsEndpoints maps traffic, then checks the two
// exposition surfaces: /metrics is valid OpenMetrics naming the
// serving-path families, and /v1/stats reports live 1m/5m windows.
func TestMetricsAndStatsEndpoints(t *testing.T) {
	_, ts, reads := testService(t, Config{})
	if resp, _ := postMap(t, ts.URL, "", mapRequestBody(t, reads)); resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintOpenMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("/metrics failed lint: %v", err)
	}
	for _, want := range []string{"darwin_core_reads_total", "darwin_server_reads_in_total", "darwin_stage_align_seconds_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"1m", "5m"} {
		win, ok := stats.Windows[label]
		if !ok {
			t.Fatalf("/v1/stats missing %s window", label)
		}
		if win.Requests < 1 {
			t.Errorf("%s window saw %d requests, want >= 1", label, win.Requests)
		}
		if win.MapLatencyP99 <= 0 {
			t.Errorf("%s window p99 = %v, want > 0", label, win.MapLatencyP99)
		}
	}
}
