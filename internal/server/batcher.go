package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Batcher observability: queue depth is the backpressure signal, the
// batch-size histogram shows how well micro-batching is coalescing,
// and queue-wait is the latency cost of that coalescing.
var (
	cJobs          = obs.Default.Counter("server/jobs")
	cJobsRejected  = obs.Default.Counter("server/jobs_rejected")
	cBatches       = obs.Default.Counter("server/batches")
	cBatchedReads  = obs.Default.Counter("server/batched_reads")
	cJobsCancelled = obs.Default.Counter("server/jobs_cancelled")
	gQueueDepth    = obs.Default.Gauge("server/queue_depth")
	hBatchSize     = obs.Default.Histogram("server/batch_size_reads", 0, 1024, 64)
	hQueueWait     = obs.Default.Histogram("server/queue_wait_ms", 0, 1000, 50)
)

// Submit errors.
var (
	// ErrQueueFull means admission control rejected the job; the
	// caller should surface 429 with a Retry-After hint.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining means the batcher is shutting down and accepts no
	// new work.
	ErrDraining = errors.New("server: draining, not accepting work")
)

// BatcherConfig tunes micro-batching and admission control.
type BatcherConfig struct {
	// MaxBatchReads flushes a batch once it holds this many reads
	// (default 64).
	MaxBatchReads int
	// MaxWait bounds how long the first job of a batch waits for
	// company before a partial flush (default 2ms).
	MaxWait time.Duration
	// QueueBound caps queued jobs; Submit past it returns
	// ErrQueueFull (default 256).
	QueueBound int
	// Executors is the number of concurrent batch executors (default
	// runtime.NumCPU(), min 1).
	Executors int
	// WorkersPerBatch is the MapAllContext parallelism within one
	// batch (default 1: micro-batching already provides cross-request
	// parallelism via executors; raise it for few large requests).
	WorkersPerBatch int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatchReads <= 0 {
		c.MaxBatchReads = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 256
	}
	if c.Executors <= 0 {
		c.Executors = runtime.NumCPU()
	}
	if c.WorkersPerBatch <= 0 {
		c.WorkersPerBatch = 1
	}
	return c
}

// Job is one admitted map request: a set of reads against one
// resident index, with the request's context governing cancellation.
type Job struct {
	ctx      context.Context
	entry    *IndexEntry
	reads    []dna.Seq
	all      bool
	resp     chan JobResult
	enqueued time.Time
}

// JobResult delivers a job's per-read results (input order) or the
// error that aborted it.
type JobResult struct {
	Results []core.MapResult
	Err     error
}

// batch is a flush unit: jobs against the same index entry executed
// as one MapAllContext call.
type batch struct {
	entry *IndexEntry
	jobs  []*Job
	reads int
	born  time.Time
}

// Batcher coalesces jobs into per-index batches. Admission control
// happens at Submit (bounded queue); a dispatcher goroutine groups
// queued jobs by index entry and flushes on size or age; a bounded
// executor pool runs flushed batches on pooled engine clones.
type Batcher struct {
	cfg    BatcherConfig
	queue  chan *Job
	execCh chan *batch

	mu       sync.Mutex
	draining bool

	dispatcherDone chan struct{}
	executorsDone  sync.WaitGroup
}

// NewBatcher creates a batcher; call Start before Submit.
func NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	return &Batcher{
		cfg:            cfg,
		queue:          make(chan *Job, cfg.QueueBound),
		execCh:         make(chan *batch),
		dispatcherDone: make(chan struct{}),
	}
}

// Start launches the dispatcher and executor pool.
func (b *Batcher) Start() {
	for i := 0; i < b.cfg.Executors; i++ {
		b.executorsDone.Add(1)
		go func() {
			defer b.executorsDone.Done()
			for bt := range b.execCh {
				b.runBatch(bt)
			}
		}()
	}
	go b.dispatch()
}

// Submit admits a job (non-blocking). The result arrives on
// job.resp; ErrQueueFull and ErrDraining reject synchronously.
func (b *Batcher) Submit(ctx context.Context, entry *IndexEntry, reads []dna.Seq, all bool) (*Job, error) {
	job := &Job{
		ctx:      ctx,
		entry:    entry,
		reads:    reads,
		all:      all,
		resp:     make(chan JobResult, 1),
		enqueued: time.Now(),
	}
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		cJobsRejected.Inc()
		return nil, ErrDraining
	}
	select {
	case b.queue <- job:
		b.mu.Unlock()
		cJobs.Inc()
		gQueueDepth.Add(1)
		return job, nil
	default:
		b.mu.Unlock()
		cJobsRejected.Inc()
		return nil, ErrQueueFull
	}
}

// Wait blocks until the job's result or its context's end. On
// context expiry the job is abandoned — the batcher notices the dead
// context and skips or discards its work.
func (j *Job) Wait() JobResult {
	select {
	case r := <-j.resp:
		return r
	case <-j.ctx.Done():
		return JobResult{Err: j.ctx.Err()}
	}
}

// dispatch groups queued jobs by index entry and flushes on size or
// age. A single coarse ticker ages out partial batches — a served
// system wants bounded worst-case coalescing latency, not precise
// per-batch timers. Ticking at MaxWait/2 and flushing batches older
// than MaxWait/2 keeps the worst-case wait under MaxWait (threshold +
// one tick period), honoring the documented bound.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	pending := make(map[*IndexEntry]*batch)
	tick := b.cfg.MaxWait / 2
	if tick <= 0 {
		tick = b.cfg.MaxWait
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	flush := func(bt *batch) {
		delete(pending, bt.entry)
		b.execCh <- bt
	}
	add := func(job *Job) {
		gQueueDepth.Add(-1)
		hQueueWait.Observe(float64(time.Since(job.enqueued)) / float64(time.Millisecond))
		bt := pending[job.entry]
		if bt == nil {
			bt = &batch{entry: job.entry, born: time.Now()}
			pending[job.entry] = bt
		}
		bt.jobs = append(bt.jobs, job)
		bt.reads += len(job.reads)
		if bt.reads >= b.cfg.MaxBatchReads {
			flush(bt)
		}
	}

	for {
		select {
		case job, ok := <-b.queue:
			if !ok {
				// Drain: flush everything still pending, then stop the
				// executors once they have taken all of it.
				for _, bt := range pending {
					b.execCh <- bt
				}
				close(b.execCh)
				return
			}
			add(job)
		case <-ticker.C:
			now := time.Now()
			for _, bt := range pending {
				if now.Sub(bt.born) >= tick {
					flush(bt)
				}
			}
		}
	}
}

// runBatch executes one batch: concatenate live jobs' reads, run one
// MapAllContext on a pooled clone, slice results back per job.
func (b *Batcher) runBatch(bt *batch) {
	endSpan := obs.Trace.Start("server.batch")
	defer endSpan()

	// Drop jobs whose clients already gave up; their reads would be
	// wasted work.
	live := bt.jobs[:0]
	for _, j := range bt.jobs {
		if j.ctx.Err() != nil {
			cJobsCancelled.Inc()
			j.resp <- JobResult{Err: j.ctx.Err()}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	var reads []dna.Seq
	for _, j := range live {
		reads = append(reads, j.reads...)
	}
	cBatches.Inc()
	cBatchedReads.Add(int64(len(reads)))
	hBatchSize.Observe(float64(len(reads)))

	// The batch runs until every member's context is done: one
	// impatient client must not cancel work other clients still want.
	batchCtx, cancel := context.WithCancel(context.Background())
	stopWatch := make(chan struct{})
	go func() {
		defer cancel()
		for _, j := range live {
			select {
			case <-j.ctx.Done():
			case <-stopWatch:
				return
			}
		}
	}()

	engine, err := bt.entry.Acquire()
	if err == nil {
		var results []core.MapResult
		results, err = engine.MapAllContext(batchCtx, reads, b.cfg.WorkersPerBatch)
		bt.entry.Release(engine)
		if err == nil {
			off := 0
			for _, j := range live {
				sub := results[off : off+len(j.reads)]
				// Re-base indices from batch order to the job's own
				// read order.
				for k := range sub {
					sub[k].Index = k
				}
				j.resp <- JobResult{Results: sub}
				off += len(j.reads)
			}
		}
	}
	close(stopWatch)
	cancel()
	if err != nil {
		for _, j := range live {
			if jerr := j.ctx.Err(); jerr != nil {
				cJobsCancelled.Inc()
				j.resp <- JobResult{Err: jerr}
			} else {
				j.resp <- JobResult{Err: err}
			}
		}
	}
}

// Drain stops admission, flushes pending batches, and waits for every
// in-flight job to be answered or ctx to expire. It is safe to call
// once; Submit returns ErrDraining afterwards.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return nil
	}
	b.draining = true
	close(b.queue)
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		<-b.dispatcherDone
		b.executorsDone.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
