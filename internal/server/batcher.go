package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Batcher observability: queue depth is the backpressure signal, the
// batch-size histogram shows how well micro-batching is coalescing,
// and queue-wait is the latency cost of that coalescing.
var (
	cJobs          = obs.Default.Counter("server/jobs")
	cJobsRejected  = obs.Default.Counter("server/jobs_rejected")
	cBatches       = obs.Default.Counter("server/batches")
	cBatchedReads  = obs.Default.Counter("server/batched_reads")
	cJobsCancelled = obs.Default.Counter("server/jobs_cancelled")
	cBatchPanics   = obs.Default.Counter("server/batch_panics")
	cShedEvents    = obs.Default.Counter("server/shed_events")
	gQueueDepth    = obs.Default.Gauge("server/queue_depth")
	gEffBatchReads = obs.Default.Gauge("server/effective_batch_reads")
	hBatchSize     = obs.Default.Histogram("server/batch_size_reads", 0, 1024, 64)
	hQueueWait     = obs.Default.Histogram("server/queue_wait_ms", 0, 1000, 50)
)

// Submit errors.
var (
	// ErrQueueFull means admission control rejected the job; the
	// caller should surface 429 with a Retry-After hint.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining means the batcher is shutting down and accepts no
	// new work.
	ErrDraining = errors.New("server: draining, not accepting work")
)

// BatcherConfig tunes micro-batching and admission control.
type BatcherConfig struct {
	// MaxBatchReads flushes a batch once it holds this many reads
	// (default 64).
	MaxBatchReads int
	// MaxWait bounds how long the first job of a batch waits for
	// company before a partial flush (default 2ms).
	MaxWait time.Duration
	// QueueBound caps queued jobs; Submit past it returns
	// ErrQueueFull (default 256).
	QueueBound int
	// Executors is the number of concurrent batch executors (default
	// runtime.NumCPU(), min 1).
	Executors int
	// WorkersPerBatch is the Map parallelism within one batch
	// (default 1: micro-batching already provides cross-request
	// parallelism via executors; raise it for few large requests).
	WorkersPerBatch int
	// ReadDeadline bounds one read's wall-clock mapping time inside a
	// batch (core.WithDeadlinePerRead); zero disables it. One stuck
	// read then fails individually instead of stalling its batch.
	ReadDeadline time.Duration
	// ShedHighWater is the queue-depth fraction of QueueBound at which
	// sustained growth triggers load shedding (default 0.75).
	ShedHighWater float64
	// ShedLowWater is the fraction below which shedding recovers
	// (default 0.25).
	ShedLowWater float64
	// ShedTicks is how many consecutive dispatcher ticks the depth
	// must sit past a watermark before the effective batch size halves
	// (or doubles back); default 4.
	ShedTicks int
	// MinBatchReads floors the effective batch size under shedding
	// (default 8).
	MinBatchReads int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatchReads <= 0 {
		c.MaxBatchReads = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 256
	}
	if c.Executors <= 0 {
		c.Executors = runtime.NumCPU()
	}
	if c.WorkersPerBatch <= 0 {
		c.WorkersPerBatch = 1
	}
	if c.ShedHighWater <= 0 || c.ShedHighWater > 1 {
		c.ShedHighWater = 0.75
	}
	if c.ShedLowWater <= 0 || c.ShedLowWater >= c.ShedHighWater {
		c.ShedLowWater = c.ShedHighWater / 3
	}
	if c.ShedTicks <= 0 {
		c.ShedTicks = 4
	}
	if c.MinBatchReads <= 0 {
		c.MinBatchReads = 8
	}
	if c.MinBatchReads > c.MaxBatchReads {
		c.MinBatchReads = c.MaxBatchReads
	}
	return c
}

// Job is one admitted map request: a set of reads against one
// resident index, with the request's context governing cancellation.
type Job struct {
	ctx      context.Context
	entry    *IndexEntry
	reads    []dna.Seq
	all      bool
	resp     chan JobResult
	enqueued time.Time
}

// JobResult delivers a job's per-read results (input order) or the
// error that aborted it.
type JobResult struct {
	Results []core.MapResult
	Err     error
}

// batch is a flush unit: jobs against the same index entry executed
// as one context-bounded Map call.
type batch struct {
	entry *IndexEntry
	jobs  []*Job
	reads int
	born  time.Time
}

// Batcher coalesces jobs into per-index batches. Admission control
// happens at Submit (bounded queue); a dispatcher goroutine groups
// queued jobs by index entry and flushes on size or age; a bounded
// executor pool runs flushed batches on pooled engine clones.
type Batcher struct {
	cfg    BatcherConfig
	queue  chan *Job
	execCh chan *batch

	mu       sync.Mutex
	draining bool

	dispatcherDone chan struct{}
	executorsDone  sync.WaitGroup
}

// NewBatcher creates a batcher; call Start before Submit.
func NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	return &Batcher{
		cfg:            cfg,
		queue:          make(chan *Job, cfg.QueueBound),
		execCh:         make(chan *batch),
		dispatcherDone: make(chan struct{}),
	}
}

// Start launches the dispatcher and executor pool.
func (b *Batcher) Start() {
	for i := 0; i < b.cfg.Executors; i++ {
		b.executorsDone.Add(1)
		go func() {
			defer b.executorsDone.Done()
			for bt := range b.execCh {
				b.runBatch(bt)
			}
		}()
	}
	go b.dispatch()
}

// Submit admits a job (non-blocking). The result arrives on
// job.resp; ErrQueueFull and ErrDraining reject synchronously.
func (b *Batcher) Submit(ctx context.Context, entry *IndexEntry, reads []dna.Seq, all bool) (*Job, error) {
	job := &Job{
		ctx:      ctx,
		entry:    entry,
		reads:    reads,
		all:      all,
		resp:     make(chan JobResult, 1),
		enqueued: time.Now(),
	}
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		cJobsRejected.Inc()
		return nil, ErrDraining
	}
	select {
	case b.queue <- job:
		b.mu.Unlock()
		cJobs.Inc()
		gQueueDepth.Add(1)
		return job, nil
	default:
		b.mu.Unlock()
		cJobsRejected.Inc()
		return nil, ErrQueueFull
	}
}

// Wait blocks until the job's result or its context's end. On
// context expiry the job is abandoned — the batcher notices the dead
// context and skips or discards its work.
func (j *Job) Wait() JobResult {
	select {
	case r := <-j.resp:
		return r
	case <-j.ctx.Done():
		return JobResult{Err: j.ctx.Err()}
	}
}

// dispatch groups queued jobs by index entry and flushes on size or
// age. A single coarse ticker ages out partial batches — a served
// system wants bounded worst-case coalescing latency, not precise
// per-batch timers. Ticking at MaxWait/2 and flushing batches older
// than MaxWait/2 keeps the worst-case wait under MaxWait (threshold +
// one tick period), honoring the documented bound.
//
// The same ticker drives load shedding: when the admission queue sits
// at or above ShedHighWater×QueueBound for ShedTicks consecutive
// ticks, the effective batch-size threshold halves (floored at
// MinBatchReads) — smaller batches flush sooner, trading peak
// throughput for queue turnover and tail latency while the burst
// lasts. Once depth falls to the low watermark for as many ticks, the
// threshold doubles back toward MaxBatchReads. The current threshold
// is exported as the server/effective_batch_reads gauge and every
// halving counts on server/shed_events.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	pending := make(map[*IndexEntry]*batch)
	tick := b.cfg.MaxWait / 2
	if tick <= 0 {
		tick = b.cfg.MaxWait
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	effective := b.cfg.MaxBatchReads
	gEffBatchReads.Set(int64(effective))
	high := int(float64(b.cfg.QueueBound) * b.cfg.ShedHighWater)
	if high < 1 {
		high = 1
	}
	low := int(float64(b.cfg.QueueBound) * b.cfg.ShedLowWater)
	hotTicks, coolTicks := 0, 0

	flush := func(bt *batch) {
		delete(pending, bt.entry)
		b.execCh <- bt
	}
	add := func(job *Job) {
		gQueueDepth.Add(-1)
		wait := time.Since(job.enqueued)
		hQueueWait.Observe(float64(wait) / float64(time.Millisecond))
		if sp := obs.SpanFromContext(job.ctx); sp != nil {
			sp.AddTimedChild("server.queue_wait", job.enqueued, wait)
		}
		bt := pending[job.entry]
		if bt == nil {
			bt = &batch{entry: job.entry, born: time.Now()}
			pending[job.entry] = bt
		}
		bt.jobs = append(bt.jobs, job)
		bt.reads += len(job.reads)
		if bt.reads >= effective {
			flush(bt)
		}
	}
	shed := func() {
		depth := len(b.queue)
		switch {
		case depth >= high:
			hotTicks++
			coolTicks = 0
			if hotTicks >= b.cfg.ShedTicks && effective > b.cfg.MinBatchReads {
				effective /= 2
				if effective < b.cfg.MinBatchReads {
					effective = b.cfg.MinBatchReads
				}
				cShedEvents.Inc()
				gEffBatchReads.Set(int64(effective))
				hotTicks = 0
			}
		case depth <= low:
			coolTicks++
			hotTicks = 0
			if coolTicks >= b.cfg.ShedTicks && effective < b.cfg.MaxBatchReads {
				effective *= 2
				if effective > b.cfg.MaxBatchReads {
					effective = b.cfg.MaxBatchReads
				}
				gEffBatchReads.Set(int64(effective))
				coolTicks = 0
			}
		default:
			hotTicks, coolTicks = 0, 0
		}
	}

	for {
		select {
		case job, ok := <-b.queue:
			if !ok {
				// Drain: flush everything still pending, then stop the
				// executors once they have taken all of it.
				for _, bt := range pending {
					b.execCh <- bt
				}
				close(b.execCh)
				return
			}
			add(job)
		case <-ticker.C:
			now := time.Now()
			for _, bt := range pending {
				if now.Sub(bt.born) >= tick {
					flush(bt)
				}
			}
			shed()
		}
	}
}

// runBatch executes one batch: concatenate live jobs' reads, run one
// Map call on a pooled clone, slice results back per job.
//
// The executor is the shared resource a faulty batch must not take
// down: a panic anywhere in the flush (or injected at server/flush)
// is recovered and answered to every still-unanswered member job as a
// structured error, so the executor survives to run the next batch.
// Per-read failures never reach this level — core.Map confines them
// to MapResult.Err, which flows through JobResult.Results untouched.
func (b *Batcher) runBatch(bt *batch) {
	endSpan := obs.Trace.Start("server.batch")
	defer endSpan()

	// Drop jobs whose clients already gave up; their reads would be
	// wasted work.
	live := bt.jobs[:0]
	for _, j := range bt.jobs {
		if j.ctx.Err() != nil {
			cJobsCancelled.Inc()
			j.resp <- JobResult{Err: j.ctx.Err()}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	// answered guards the buffered (size-1) resp channels: the panic
	// path must answer exactly the jobs the normal path has not, or a
	// double send would block the executor forever.
	answered := make([]bool, len(live))
	defer func() {
		if r := recover(); r != nil {
			cBatchPanics.Inc()
			perr := fmt.Errorf("server: batch execution panicked: %v", r)
			for i, j := range live {
				if !answered[i] {
					j.resp <- JobResult{Err: perr}
					answered[i] = true
				}
			}
		}
	}()

	// One shared batch span serves every traced member: coalescing
	// means the execution is genuinely shared, so each request's tree
	// adopts the same child while keeping its own request ID at the
	// root. Untraced batches (no member carried a span) pay nothing.
	var batchSpan *obs.Span
	for _, j := range live {
		if sp := obs.SpanFromContext(j.ctx); sp != nil {
			if batchSpan == nil {
				batchSpan = obs.NewSpan("server.batch")
			}
			sp.Adopt(batchSpan)
		}
	}
	defer batchSpan.End()

	err := fpFlush.Fire()
	if err == nil {
		var reads []dna.Seq
		for _, j := range live {
			reads = append(reads, j.reads...)
		}
		cBatches.Inc()
		cBatchedReads.Add(int64(len(reads)))
		hBatchSize.Observe(float64(len(reads)))
		batchSpan.SetAttr("jobs", int64(len(live)))
		batchSpan.SetAttr("reads", int64(len(reads)))

		// The batch runs until every member's context is done: one
		// impatient client must not cancel work other clients still want.
		batchCtx, cancel := context.WithCancel(context.Background())
		batchCtx = obs.ContextWithSpan(batchCtx, batchSpan)
		stopWatch := make(chan struct{})
		var stopOnce sync.Once
		stopWatcher := func() {
			stopOnce.Do(func() { close(stopWatch) })
			cancel()
		}
		defer stopWatcher()
		go func() {
			defer cancel()
			for _, j := range live {
				select {
				case <-j.ctx.Done():
				case <-stopWatch:
					return
				}
			}
		}()

		var engine core.Mapper
		engine, err = bt.entry.Acquire()
		if err == nil {
			var results []core.MapResult
			results, err = engine.Map(batchCtx, reads,
				core.WithWorkers(b.cfg.WorkersPerBatch),
				core.WithDeadlinePerRead(b.cfg.ReadDeadline))
			bt.entry.Release(engine)
			// Close the shared span before answering, so a handler that
			// snapshots its tree right after Wait sees final timings.
			batchSpan.End()
			if err == nil {
				off := 0
				for i, j := range live {
					sub := results[off : off+len(j.reads)]
					// Re-base indices from batch order to the job's own
					// read order.
					for k := range sub {
						sub[k].Index = k
					}
					j.resp <- JobResult{Results: sub}
					answered[i] = true
					off += len(j.reads)
				}
			}
		}
		stopWatcher()
	}
	if err != nil {
		for i, j := range live {
			if answered[i] {
				continue
			}
			if jerr := j.ctx.Err(); jerr != nil {
				cJobsCancelled.Inc()
				j.resp <- JobResult{Err: jerr}
			} else {
				j.resp <- JobResult{Err: err}
			}
			answered[i] = true
		}
	}
}

// Drain stops admission, flushes pending batches, and waits for every
// in-flight job to be answered or ctx to expire. It is safe to call
// once; Submit returns ErrDraining afterwards.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return nil
	}
	b.draining = true
	close(b.queue)
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		<-b.dispatcherDone
		b.executorsDone.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
