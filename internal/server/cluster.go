package server

// Cluster-worker mode: the server-side half of distributed
// scatter-gather. A worker is an ordinary darwind whose sharded engine
// serves two extra endpoints — GET /v1/shards advertises which shards
// this process owns plus everything a stateless router needs to merge
// results (geometry, reference layout, truncation limit, index
// fingerprint), and POST /v1/cluster/scatter runs a shard-scoped
// sub-request via shard.ScatterShards, returning candidates and
// extension outcomes in global coordinates. The router recombines them
// with shard.MergeReadScatters; bit-identity to the monolith is proven
// in internal/shard's tests and asserted end to end by
// scripts/cluster_smoke.sh.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/shard"
)

// Worker-mode observability.
var (
	cScatterReqs       = obs.Default.Counter("server/scatter_requests")
	cScatterReqsFailed = obs.Default.Counter("server/scatter_requests_failed")
	cScatterReads      = obs.Default.Counter("server/scatter_reads")
	cScatterShed       = obs.Default.Counter("server/scatter_shed")
	cScatterCanceled   = obs.Default.Counter("server/scatter_canceled")
)

// WorkerConfig enables and tunes cluster-worker mode.
type WorkerConfig struct {
	// Enabled turns the worker endpoints on.
	Enabled bool
	// Name is this worker's identity in the cluster map; it must match
	// the name the router hashes shards against.
	Name string
	// OwnedShards are the shard indices this worker serves. Warm
	// pre-acquires them and scatter requests for any other shard are
	// rejected — ownership is a contract, not a hint, so a stale
	// router cannot silently double-serve a shard.
	OwnedShards []int
	// AssignShards, when set, computes OwnedShards once the index is
	// loaded and the true shard count is known (a -shard-mem geometry
	// is not knowable before the build). cmd/darwind wires this to the
	// cluster map's rendezvous assignment.
	AssignShards func(shards int) ([]int, error)
	// ScatterConcurrency bounds concurrent sub-requests (default 4);
	// excess load sheds with 429 + Retry-After so the router's hedging
	// and failover see backpressure instead of queueing.
	ScatterConcurrency int
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ScatterConcurrency <= 0 {
		c.ScatterConcurrency = 4
	}
	return c
}

// RefMeta is the reference coordinate layout on the wire — enough for
// a router to rebuild a layout-only core.Reference (LocateSpan, Name)
// and the SAM @SQ header without holding any bases.
type RefMeta struct {
	Names    []string `json:"names"`
	Offsets  []int    `json:"offsets"`
	Lengths  []int    `json:"lengths"`
	TotalLen int      `json:"total_len"`
}

// GeometryMeta is the shard geometry on the wire; routers compare it
// across workers to refuse mixed-geometry clusters.
type GeometryMeta struct {
	RefLen    int `json:"ref_len"`
	ShardSize int `json:"shard_size"`
	Overlap   int `json:"overlap"`
	BinSize   int `json:"bin_size"`
	Shards    int `json:"shards"`
}

// ShardsResponse is the GET /v1/shards ownership advertisement.
type ShardsResponse struct {
	Worker        string       `json:"worker"`
	Owned         []int        `json:"owned"`
	Geometry      GeometryMeta `json:"geometry"`
	Ref           RefMeta      `json:"ref"`
	MaxCandidates int          `json:"max_candidates"`
	// Fingerprint identifies the persistent index the worker serves
	// from (hex; empty for FASTA-built indexes). Routers refuse
	// clusters whose workers disagree.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ScatterRequest is the POST /v1/cluster/scatter body: a read batch
// scoped to a subset of this worker's shards.
type ScatterRequest struct {
	Shards    []int       `json:"shards"`
	Reads     []ReadInput `json:"reads"`
	TimeoutMS int         `json:"timeout_ms,omitempty"`
}

// ScatterResponse carries one ReadScatter per read, in request order.
type ScatterResponse struct {
	Worker  string              `json:"worker"`
	Results []shard.ReadScatter `json:"results"`
}

// warmOwnedShards validates worker-mode wiring at boot and makes the
// owned shards resident: the engine must be sharded, every owned index
// must exist in the geometry, and the residency budget must admit each
// owned table (Acquire builds or loads it now, so the budget shows its
// hand before the server reports ready).
func (s *Server) warmOwnedShards(ctx context.Context, entry *IndexEntry) error {
	if entry.Shards == nil {
		return fmt.Errorf("server: worker mode requires a sharded engine (-shards or -shard-mem)")
	}
	geo := entry.Shards.Geometry()
	if s.cfg.Worker.AssignShards != nil {
		owned, err := s.cfg.Worker.AssignShards(len(geo.Parts))
		if err != nil {
			return err
		}
		s.cfg.Worker.OwnedShards = owned
	}
	if len(s.cfg.Worker.OwnedShards) == 0 {
		return fmt.Errorf("server: worker %q owns no shards under the cluster map", s.cfg.Worker.Name)
	}
	s.log.Info("cluster worker mode",
		"worker", s.cfg.Worker.Name, "owned_shards", fmt.Sprint(s.cfg.Worker.OwnedShards),
		"shards_total", len(geo.Parts))
	for _, id := range s.cfg.Worker.OwnedShards {
		if id < 0 || id >= len(geo.Parts) {
			return fmt.Errorf("server: worker %q assigned shard %d but the index has %d shards",
				s.cfg.Worker.Name, id, len(geo.Parts))
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := entry.Shards.Acquire(id); err != nil {
			return fmt.Errorf("server: warming shard %d: %w", id, err)
		}
	}
	return nil
}

// ownsShard reports whether the worker serves shard id.
func (s *Server) ownsShard(id int) bool {
	for _, o := range s.cfg.Worker.OwnedShards {
		if o == id {
			return true
		}
	}
	return false
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(r.Context(), w, http.StatusMethodNotAllowed, CodeMethodNotAllow, "GET required")
		return
	}
	entry := s.defaultEntry.Load()
	if entry == nil || !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(r.Context(), w, http.StatusServiceUnavailable, CodeWarming, "index warming")
		return
	}
	geo := entry.Shards.Geometry()
	ref := entry.Ref
	meta := RefMeta{TotalLen: len(ref.Seq())}
	for i := 0; i < ref.NumSeqs(); i++ {
		meta.Names = append(meta.Names, ref.Name(i))
		meta.Offsets = append(meta.Offsets, ref.Offset(i))
		meta.Lengths = append(meta.Lengths, ref.Len(i))
	}
	owned := append([]int(nil), s.cfg.Worker.OwnedShards...)
	sort.Ints(owned)
	resp := ShardsResponse{
		Worker: s.cfg.Worker.Name,
		Owned:  owned,
		Geometry: GeometryMeta{
			RefLen:    geo.RefLen,
			ShardSize: geo.ShardSize,
			Overlap:   geo.Overlap,
			BinSize:   geo.BinSize,
			Shards:    len(geo.Parts),
		},
		Ref:           meta,
		MaxCandidates: s.cfg.Core.MaxCandidates,
	}
	if entry.Fingerprint != 0 {
		resp.Fingerprint = fmt.Sprintf("%016x", entry.Fingerprint)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request) {
	rctx := r.Context()
	cScatterReqs.Inc()
	if r.Method != http.MethodPost {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusMethodNotAllowed, CodeMethodNotAllow, "POST required")
		return
	}
	if s.draining.Load() {
		cScatterReqsFailed.Inc()
		w.Header().Set("Retry-After", "5")
		httpError(rctx, w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if !s.ready.Load() {
		cScatterReqsFailed.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(rctx, w, http.StatusServiceUnavailable, CodeWarming, "index warming")
		return
	}
	var req ScatterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Reads) == 0 || len(req.Shards) == 0 {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "scatter needs reads and shards")
		return
	}
	if len(req.Reads) > s.cfg.MaxReadsPerRequest {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusRequestEntityTooLarge, CodeTooManyReads,
			"%d reads exceeds per-request limit %d", len(req.Reads), s.cfg.MaxReadsPerRequest)
		return
	}
	for i, rd := range req.Reads {
		if len(rd.Seq) == 0 {
			cScatterReqsFailed.Inc()
			httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "read %d (%q) has an empty sequence", i, rd.Name)
			return
		}
	}
	for _, id := range req.Shards {
		if !s.ownsShard(id) {
			cScatterReqsFailed.Inc()
			httpError(rctx, w, http.StatusConflict, CodeShardNotOwned,
				"worker %q does not own shard %d (stale cluster map?)", s.cfg.Worker.Name, id)
			return
		}
	}
	// Bounded admission: the router prefers a fast 429 it can fail
	// over or hedge against to a queue that smears tail latency.
	select {
	case s.scatterSem <- struct{}{}:
		defer func() { <-s.scatterSem }()
	default:
		cScatterShed.Inc()
		cScatterReqsFailed.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(rctx, w, http.StatusTooManyRequests, CodeQueueFull, "scatter admission full, retry later")
		return
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(rctx, timeout)
	defer cancel()

	entry := s.defaultEntry.Load()
	mapper, err := entry.Acquire()
	if err != nil {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusInternalServerError, CodeInternal, "engine clone: %v", err)
		return
	}
	defer entry.Release(mapper)
	sm, ok := mapper.(*shard.ScatterMapper)
	if !ok {
		cScatterReqsFailed.Inc()
		httpError(rctx, w, http.StatusInternalServerError, CodeInternal, "worker engine is not sharded")
		return
	}
	reads := make([]dna.Seq, len(req.Reads))
	for i := range req.Reads {
		reads[i] = req.Reads[i].Seq
	}
	cScatterReads.Add(int64(len(reads)))
	results, err := sm.ScatterShards(ctx, reads, req.Shards, 1)
	if err != nil {
		switch {
		case err == context.DeadlineExceeded || ctx.Err() == context.DeadlineExceeded:
			cScatterReqsFailed.Inc()
			httpError(rctx, w, http.StatusGatewayTimeout, CodeDeadline, "scatter deadline exceeded")
		case errors.Is(err, context.Canceled) || rctx.Err() == context.Canceled:
			// The router cancels losing hedge/failover attempts the
			// moment a sibling wins; that is normal operation, not a
			// worker failure, so it stays out of the failure counter
			// and the 5xx (ERROR-level) access log. 499 is the
			// client-closed-request convention.
			cScatterCanceled.Inc()
			httpError(rctx, w, 499, CodeCanceled, "scatter canceled by caller")
		default:
			cScatterReqsFailed.Inc()
			httpError(rctx, w, http.StatusInternalServerError, CodeInternal, "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(ScatterResponse{Worker: s.cfg.Worker.Name, Results: results})
}
