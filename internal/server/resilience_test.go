package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"darwin/internal/faults"
)

func TestBreakerStateMachine(t *testing.T) {
	br := NewBreaker(2, 50*time.Millisecond)
	if !br.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	br.Failure()
	if br.State() != "closed" || !br.Allow() {
		t.Fatal("one failure below threshold must keep the circuit closed")
	}
	br.Failure()
	if br.State() != "open" {
		t.Fatalf("state after threshold failures = %s, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker within cooldown must fast-fail")
	}
	time.Sleep(60 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("breaker past cooldown must admit one probe")
	}
	if br.State() != "half-open" {
		t.Fatalf("state during probe = %s, want half-open", br.State())
	}
	if br.Allow() {
		t.Fatal("second caller during half-open probe must fast-fail")
	}
	// A failed probe re-opens immediately.
	br.Failure()
	if br.State() != "open" || br.Allow() {
		t.Fatal("failed probe must re-open the circuit")
	}
	time.Sleep(60 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("re-opened breaker must probe again after cooldown")
	}
	br.Success()
	if br.State() != "closed" || !br.Allow() {
		t.Fatal("successful probe must close the circuit")
	}
}

// TestBatcherPanicIsolatesOneRead: a read that panics mid-map (injected
// at core/map_read) fails only its own response line; the other reads
// in the same micro-batch — including other reads of the same request —
// come back with records and the response is still a 200.
func TestBatcherPanicIsolatesOneRead(t *testing.T) {
	defer faults.Default.Reset()
	_, ts, reads := testService(t, Config{})
	// The warm index is built; arm the per-read point now so the third
	// map call of the upcoming batch panics.
	if err := faults.Default.Enable("core/map_read=after=2,times=1,panic=poisoned read"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(mapRequestBody(t, reads)))
	faults.Default.Reset()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (per-read failure must not fail the request)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var lines []MapResponseLine
	for sc.Scan() {
		var line MapResponseLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if len(lines) != len(reads) {
		t.Fatalf("%d response lines for %d reads", len(lines), len(reads))
	}
	for i, line := range lines {
		if i == 2 {
			if line.Error == "" {
				t.Errorf("read 2: no error line for the panicked read")
			}
			if len(line.Records) != 0 {
				t.Errorf("read 2: panicked read still carries records")
			}
			continue
		}
		if line.Error != "" {
			t.Errorf("read %d: unexpected error %q (blast radius exceeded one read)", i, line.Error)
		}
		if len(line.Records) == 0 {
			t.Errorf("read %d: no records", i)
		}
	}
}

// TestBreakerOpensOnDoomedReference: repeated failing on-demand index
// builds for one source open its breaker within BreakerThreshold
// attempts; subsequent requests fail fast with the circuit_open code
// and a Retry-After hint, without touching the (healthy) default index.
func TestBreakerOpensOnDoomedReference(t *testing.T) {
	_, ts, reads := testService(t, Config{
		AllowRefLoad:     true,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	body := func() []byte {
		b, _ := json.Marshal(MapRequest{
			Reference: "/nonexistent/doomed.fa",
			Reads:     []ReadInput{{Name: "r", Seq: reads[0].Seq}},
		})
		return b
	}
	post := func() (int, ErrorBody, string) {
		resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("error response is not the structured envelope: %v", err)
		}
		return resp.StatusCode, eb, resp.Header.Get("Retry-After")
	}
	for i := 0; i < 2; i++ {
		status, eb, _ := post()
		if status != http.StatusBadRequest || eb.Error.Code != CodeRefLoadFailed {
			t.Fatalf("attempt %d: status=%d code=%q, want 400 %s", i, status, eb.Error.Code, CodeRefLoadFailed)
		}
	}
	status, eb, retryAfter := post()
	if status != http.StatusServiceUnavailable || eb.Error.Code != CodeCircuitOpen {
		t.Fatalf("post-threshold: status=%d code=%q, want 503 %s", status, eb.Error.Code, CodeCircuitOpen)
	}
	if retryAfter == "" {
		t.Error("circuit-open 503 without Retry-After")
	}
	// The default reference is a different breaker: still healthy.
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(mapRequestBody(t, reads[:1])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default reference after doomed-source breaker opened: status %d, want 200", resp.StatusCode)
	}
}

// TestIndexBuildPanicCountsTowardBreaker: a build that panics (not just
// errors) must be recovered into a breaker failure, or a poisoned FASTA
// could crash-loop the build forever without ever tripping the circuit.
func TestIndexBuildPanicCountsTowardBreaker(t *testing.T) {
	s := New(Config{BreakerThreshold: 1, BreakerCooldown: time.Minute})
	// Reach loadEntry's breaker bookkeeping directly through the cache
	// path by pointing at a source whose build panics.
	key := IndexKey("panic.fa", s.cfg.Core, s.cfg.Shard)
	br := s.breakerFor(key)
	_, err := buildRecovered(func() (*IndexEntry, error) { panic("poisoned FASTA") })
	if err == nil {
		t.Fatal("buildRecovered swallowed the panic without an error")
	}
	br.Failure()
	if br.State() != "open" {
		t.Fatalf("breaker state after panicking build = %s, want open", br.State())
	}
}

// TestDrainGoroutineBaselineWithFaults: after a chaos burst (injected
// flush faults and per-read panics) and a full drain, the process's
// goroutine count must settle back to the pre-serve baseline — a leak
// here means an executor, watchdog, or build goroutine survived its
// request.
func TestDrainGoroutineBaselineWithFaults(t *testing.T) {
	defer faults.Default.Reset()
	baseline := runtime.NumGoroutine()

	s, ts, reads := testService(t, Config{Batch: BatcherConfig{MaxWait: 5 * time.Millisecond}})
	if err := faults.Default.Enable("server/flush=p=0.3,error=chaos;core/map_read=every=5,panic=poisoned"); err != nil {
		t.Fatal(err)
	}
	body := mapRequestBody(t, reads)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
			if err != nil {
				return // connection-level failures are fine here
			}
			// Responses must be well-formed: 200 NDJSON or a structured
			// error envelope, never a half-written body.
			if resp.StatusCode != http.StatusOK {
				var eb ErrorBody
				if derr := json.NewDecoder(resp.Body).Decode(&eb); derr != nil || eb.Error.Code == "" {
					t.Errorf("status %d without a structured error body", resp.StatusCode)
				}
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	faults.Default.Reset()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	// Settle loop: GC/netpoll goroutines take a moment to unwind.
	const tolerance = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		excess := runtime.NumGoroutine() - baseline - tolerance
		if excess <= 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines above baseline %d after drain:\n%s", excess, baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCacheGetHonorsWaiterContext: a Get whose context expires while
// the (slow) build is still running returns the context error, but the
// build completes and is cached for the next caller.
func TestCacheGetHonorsWaiterContext(t *testing.T) {
	cache := NewIndexCache(2)
	started := make(chan struct{})
	release := make(chan struct{})
	build := func() (*IndexEntry, error) {
		close(started)
		<-release
		return testEntry(t, "slow", 48, 20000), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := cache.Get(ctx, "slow", build)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with cancelled ctx = %v, want context.Canceled", err)
	}
	close(release)
	// The abandoned build must still land in the cache.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned build never reached the cache")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, hit, err := cache.Get(context.Background(), "slow", func() (*IndexEntry, error) {
		t.Error("second Get rebuilt despite cached entry")
		return nil, errors.New("unreachable")
	}); err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v, want cache hit", hit, err)
	}
}
