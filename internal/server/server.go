package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/indexfile"
	"darwin/internal/jobs"
	"darwin/internal/obs"
	"darwin/internal/sam"
	"darwin/internal/shard"
)

// HTTP-layer observability.
var (
	cRequests         = obs.Default.Counter("server/requests")
	cRequestsOK       = obs.Default.Counter("server/requests_ok")
	cRequestsFailed   = obs.Default.Counter("server/requests_failed")
	cReadsIn          = obs.Default.Counter("server/reads_in")
	cRejectedDraining = obs.Default.Counter("server/rejected_draining")
	gDraining         = obs.Default.Gauge("server/draining")
	hRequestLatency   = obs.Default.Histogram("server/request_latency_ms", 0, 10000, 100)
)

// Config assembles the service.
type Config struct {
	// DefaultRef is the reference FASTA warmed at startup; requests
	// that name no reference use it.
	DefaultRef string
	// DefaultIndex, when set, cold-starts the default reference from
	// this persistent index file (internal/indexfile) instead of
	// building from the FASTA. Loading it is mandatory: a broken
	// explicit index fails Warm rather than silently rebuilding.
	DefaultIndex string
	// DisableSidecar turns off automatic discovery of `<ref>.dwi`
	// sidecar index files next to reference FASTAs. Sidecars are
	// opportunistic: a sidecar that fails to load logs a warning and
	// falls back to a FASTA build.
	DisableSidecar bool
	// Core is the engine configuration applied to every index.
	Core core.Config
	// Shard, when enabled, serves every index through the sharded
	// scatter-gather engine with the given geometry and residency
	// budget instead of the monolithic engine.
	Shard shard.Config
	// CacheSize bounds resident indexes (default 4).
	CacheSize int
	// Batch tunes micro-batching and admission control.
	Batch BatcherConfig
	// RequestTimeout caps per-request wall time (default 60s); a
	// request's timeout_ms can only shorten it.
	RequestTimeout time.Duration
	// MaxReadsPerRequest rejects oversized requests (default 1024).
	MaxReadsPerRequest int
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// AllowRefLoad permits requests to name reference FASTA paths,
	// loading them on demand into the cache. Off by default: a serving
	// deployment usually pins its reference set.
	AllowRefLoad bool
	// IndexBudgetFrac splits a request's deadline across its stages:
	// an on-demand index load may consume at most this fraction of the
	// request timeout before the request gives up waiting (the build
	// itself continues for future requests); the map stage gets
	// whatever remains of the total. Default 0.5.
	IndexBudgetFrac float64
	// BreakerThreshold is how many consecutive build failures for one
	// reference source open its circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting a probe build (default 5s).
	BreakerCooldown time.Duration
	// Logger receives the service's structured logs, including the
	// per-request access lines (default slog.Default()).
	Logger *slog.Logger
	// SlowCapture is how many of the slowest requests to retain with
	// their full span trees for the /debug/slow endpoint and the drain
	// dump (default 16).
	SlowCapture int
	// Worker enables cluster-worker mode: the /v1/shards ownership
	// endpoint and the shard-scoped /v1/cluster/scatter API a router
	// fans sub-requests out to. Requires Shard to be enabled.
	Worker WorkerConfig
	// Jobs, when non-nil, enables the assembly job API (/v1/jobs): the
	// manager owns execution and persistence, the server is its HTTP
	// face. The caller wires the manager's Recover/Drain into the
	// process lifecycle.
	Jobs *jobs.Manager
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxReadsPerRequest <= 0 {
		c.MaxReadsPerRequest = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.IndexBudgetFrac <= 0 || c.IndexBudgetFrac > 1 {
		c.IndexBudgetFrac = 0.5
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.SlowCapture <= 0 {
		c.SlowCapture = 16
	}
	c.Batch = c.Batch.withDefaults()
	c.Worker = c.Worker.withDefaults()
	return c
}

// Server is the darwind service: index cache + micro-batcher behind
// an HTTP/JSON API.
type Server struct {
	cfg     Config
	cache   *IndexCache
	batcher *Batcher
	mux     *http.ServeMux
	log     *slog.Logger
	stats   *sloTracker
	slow    *obs.SlowRing

	ready        atomic.Bool
	draining     atomic.Bool
	defaultEntry atomic.Pointer[IndexEntry]

	// breakers holds one circuit breaker per index key, so one doomed
	// reference fails fast without touching any other source's builds.
	brMu     sync.Mutex
	breakers map[string]*Breaker

	// scatterSem bounds concurrent cluster sub-requests in worker mode
	// (nil otherwise); a full semaphore sheds with 429 + Retry-After.
	scatterSem chan struct{}

	// jobs is the assembly job manager (nil when the job API is off).
	jobs *jobs.Manager
}

// New assembles a server; call Warm to load the default index and
// mark it ready.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    NewIndexCache(cfg.CacheSize),
		batcher:  NewBatcher(cfg.Batch),
		log:      cfg.Logger,
		stats:    newSLOTracker(),
		slow:     obs.NewSlowRing(cfg.SlowCapture),
		breakers: make(map[string]*Breaker),
	}
	s.batcher.Start()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/indexes", s.handleIndexes)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", obs.MetricsHandler(obs.Default))
	s.mux.HandleFunc("/debug/slow", s.handleSlow)
	if cfg.Worker.Enabled {
		s.scatterSem = make(chan struct{}, cfg.Worker.ScatterConcurrency)
		s.mux.HandleFunc("/v1/shards", s.handleShards)
		s.mux.HandleFunc("/v1/cluster/scatter", s.handleScatter)
	}
	if cfg.Jobs != nil {
		s.jobs = cfg.Jobs
		s.mux.HandleFunc("/v1/jobs", s.handleJobs)
		s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	}
	return s
}

// Handler returns the service's HTTP handler: the API mux behind the
// observability middleware (request IDs, span roots, access logs,
// SLO windows).
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// SlowCaptures returns the retained slowest-request span trees,
// slowest first — the same data /debug/slow serves, for the drain
// dump.
func (s *Server) SlowCaptures() []obs.SlowCapture { return s.slow.Snapshot() }

// Warm loads the default reference into the cache and marks the
// server ready. Blocking by design: readiness means the index is
// resident, so the first request is as fast as the millionth.
func (s *Server) Warm(ctx context.Context) error {
	if s.cfg.DefaultRef == "" {
		return fmt.Errorf("server: no default reference configured")
	}
	entry, _, err := s.loadEntry(ctx, s.cfg.DefaultRef)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.cfg.Worker.Enabled {
		// Worker readiness includes the owned shards being resident:
		// the first sub-request must be as fast as the millionth, and a
		// geometry the cluster map disagrees with must fail boot, not
		// the first scatter.
		if err := s.warmOwnedShards(ctx, entry); err != nil {
			return err
		}
	}
	s.defaultEntry.Store(entry)
	s.ready.Store(true)
	return nil
}

// Ready reports whether the default index is warm and the server is
// not draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// StartDrain stops admitting requests: /readyz flips to 503 so load
// balancers stop routing here, new /v1/map requests get 503, and the
// batcher rejects new jobs while in-flight ones complete.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	gDraining.Set(1)
}

// Drain completes a graceful shutdown: after StartDrain and after the
// HTTP server has finished in-flight handlers, it flushes the
// batcher's pending work. Returns ctx.Err() if the deadline passes
// with work still in flight.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	return s.batcher.Drain(ctx)
}

// breakerFor returns (creating if needed) the circuit breaker for an
// index key.
func (s *Server) breakerFor(key string) *Breaker {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	br, ok := s.breakers[key]
	if !ok {
		br = NewBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
		s.breakers[key] = br
	}
	return br
}

// indexFor resolves the persistent index file to try for a reference
// source: the explicitly configured DefaultIndex when source is the
// default reference, else an auto-discovered `<source>.dwi` sidecar.
// explicit reports whether a load failure must fail the request (an
// operator named the file) or may fall back to a FASTA build (the
// sidecar was merely discovered).
func (s *Server) indexFor(source string) (path string, explicit bool) {
	if s.cfg.DefaultIndex != "" && source == s.cfg.DefaultRef {
		return s.cfg.DefaultIndex, true
	}
	if s.cfg.DisableSidecar {
		return "", false
	}
	sc := indexfile.SidecarPath(source)
	if st, err := os.Stat(sc); err == nil && !st.IsDir() {
		return sc, false
	}
	return "", false
}

// loadEntry resolves source (a FASTA path) to a warm index via the
// cache. ctx bounds only how long this caller waits — a build that
// outlives it still completes and is cached for future requests. The
// source's circuit breaker wraps the build: once it opens, requests
// fail fast with ErrCircuitOpen instead of re-queuing a doomed build,
// and a breaker rejection is never itself counted as a build failure.
//
// When a persistent index file resolves for the source (explicit
// DefaultIndex or discovered sidecar), its content fingerprint joins
// the cache key — rewriting the file invalidates the cached entry —
// and the singleflighted "build" maps the file instead of indexing
// the FASTA. A mapped load is just a fast build: breaker accounting
// and the index-stage budget apply unchanged.
func (s *Server) loadEntry(ctx context.Context, source string) (*IndexEntry, bool, error) {
	key := IndexKey(source, s.cfg.Core, s.cfg.Shard)
	ipath, explicit := s.indexFor(source)
	if ipath != "" {
		fp, err := indexfile.ReadFingerprint(ipath)
		switch {
		case err == nil:
			key += fmt.Sprintf("|dwi=%016x", fp)
		case explicit:
			return nil, false, fmt.Errorf("server: index %s: %w", ipath, err)
		default:
			s.log.Warn("ignoring unreadable sidecar index", "path", ipath, "error", err)
			ipath = ""
		}
	}
	br := s.breakerFor(key)
	return s.cache.Get(ctx, key, func() (*IndexEntry, error) {
		if !br.Allow() {
			return nil, fmt.Errorf("%w: reference %q (retry after %v)", ErrCircuitOpen, source, s.cfg.BreakerCooldown)
		}
		// buildRecovered here (not just in the cache) so a panicking
		// build counts as a breaker failure like any other.
		entry, err := buildRecovered(func() (*IndexEntry, error) {
			if ipath != "" {
				e, lerr := LoadEntry(key, ipath, s.cfg.Core, s.cfg.Shard, s.cfg.Batch.Executors)
				if lerr == nil {
					s.log.Info("index mapped from file",
						"path", ipath, "mapped_bytes", e.MappedBytes,
						"fingerprint", fmt.Sprintf("%016x", e.Fingerprint))
					return e, nil
				}
				if explicit {
					return nil, fmt.Errorf("server: loading index %s: %w", ipath, lerr)
				}
				s.log.Warn("sidecar index load failed; rebuilding from FASTA",
					"path", ipath, "error", lerr)
			}
			recs, err := readFASTAPath(source)
			if err != nil {
				return nil, err
			}
			return BuildEntry(key, recs, s.cfg.Core, s.cfg.Shard, s.cfg.Batch.Executors)
		})
		if err != nil {
			br.Failure()
			return nil, err
		}
		br.Success()
		return entry, nil
	})
}

// retryAfterSeconds rounds a cooldown up to whole seconds for the
// Retry-After header (minimum 1).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func readFASTAPath(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []dna.Record
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		recs, err = dna.ReadFASTQ(f)
	} else {
		recs, err = dna.ReadFASTA(f)
	}
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("server: no sequences in %s", path)
	}
	return recs, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "index warming", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleIndexes(w http.ResponseWriter, _ *http.Request) {
	type shardingInfo struct {
		shard.Stats
		Shards []shard.ShardInfo `json:"shard_detail"`
	}
	type indexInfo struct {
		Key          string        `json:"key"`
		Sequences    int           `json:"sequences"`
		Bases        int           `json:"bases"`
		BuildSeconds float64       `json:"build_seconds"`
		IndexFile    string        `json:"index_file,omitempty"`
		Fingerprint  string        `json:"index_fingerprint,omitempty"`
		MappedBytes  int64         `json:"mapped_bytes,omitempty"`
		Sharding     *shardingInfo `json:"sharding,omitempty"`
	}
	out := []indexInfo{}
	for _, e := range s.cache.Entries() {
		info := indexInfo{
			Key:          e.Key,
			Sequences:    e.Ref.NumSeqs(),
			Bases:        len(e.Ref.Seq()),
			BuildSeconds: e.BuildTime.Seconds(),
			IndexFile:    e.IndexFile,
			MappedBytes:  e.MappedBytes,
		}
		if e.Fingerprint != 0 {
			info.Fingerprint = fmt.Sprintf("%016x", e.Fingerprint)
		}
		if e.Shards != nil {
			st, detail := e.Shards.Snapshot()
			info.Sharding = &shardingInfo{Stats: st, Shards: detail}
		}
		out = append(out, info)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// ReadInput is one query read on the wire.
type ReadInput struct {
	Name string  `json:"name"`
	Seq  dna.Seq `json:"seq"`
}

// MapRequest is the /v1/map request body.
type MapRequest struct {
	// Reference names a FASTA path to map against; empty uses the
	// warm default. Non-default references require AllowRefLoad.
	Reference string `json:"reference,omitempty"`
	// Reads are the queries (at least one).
	Reads []ReadInput `json:"reads"`
	// All reports every alignment per read instead of only the best.
	All bool `json:"all,omitempty"`
	// TimeoutMS optionally shortens the server's request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MapResponseLine is one NDJSON response line: a read's SAM records,
// stamped with the request identity so any line quoted from a log or
// a client joins back to the server-side trace.
type MapResponseLine struct {
	Read      string       `json:"read"`
	Mapped    bool         `json:"mapped"`
	Records   []sam.Record `json:"records,omitempty"`
	Error     string       `json:"error,omitempty"`
	RequestID string       `json:"request_id,omitempty"`
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	cRequests.Inc()
	defer func() {
		hRequestLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}()
	rctx := r.Context()
	span := obs.SpanFromContext(rctx)

	if r.Method != http.MethodPost {
		cRequestsFailed.Inc()
		httpError(rctx, w, http.StatusMethodNotAllowed, CodeMethodNotAllow, "POST required")
		return
	}
	if s.draining.Load() {
		cRejectedDraining.Inc()
		w.Header().Set("Retry-After", "5")
		httpError(rctx, w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if !s.ready.Load() {
		cRequestsFailed.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(rctx, w, http.StatusServiceUnavailable, CodeWarming, "index warming")
		return
	}

	// Admission stage: decode, validate, and the admission fault
	// point. One span child covers it all — admission rejections are
	// cheap by design, and the span proves it.
	admit := span.StartChild("server.admit")
	var req MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		admit.End()
		cRequestsFailed.Inc()
		httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Reads) == 0 {
		admit.End()
		cRequestsFailed.Inc()
		httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "no reads")
		return
	}
	if len(req.Reads) > s.cfg.MaxReadsPerRequest {
		admit.End()
		cRequestsFailed.Inc()
		httpError(rctx, w, http.StatusRequestEntityTooLarge, CodeTooManyReads,
			"%d reads exceeds per-request limit %d", len(req.Reads), s.cfg.MaxReadsPerRequest)
		return
	}
	for i, rd := range req.Reads {
		if len(rd.Seq) == 0 {
			admit.End()
			cRequestsFailed.Inc()
			httpError(rctx, w, http.StatusBadRequest, CodeBadRequest, "read %d (%q) has an empty sequence", i, rd.Name)
			return
		}
	}

	// Admission fault point: an injected error here exercises the
	// structured-error path before any stage budget is spent.
	if err := fpAdmit.Fire(); err != nil {
		admit.End()
		cRequestsFailed.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(rctx, w, http.StatusServiceUnavailable, CodeFaultInjected, "%v", err)
		return
	}
	admit.SetAttr("reads", int64(len(req.Reads)))
	admit.End()
	span.SetAttr("reads", int64(len(req.Reads)))

	// Per-request deadline: the server cap, shortened by the client's
	// timeout_ms. The total budget is split across stages — an
	// on-demand index load may consume at most IndexBudgetFrac of it,
	// the map stage gets whatever remains.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Resolve the index: warm default, or an on-demand load when the
	// deployment allows it.
	entry := s.defaultEntry.Load()
	if req.Reference != "" && req.Reference != s.cfg.DefaultRef {
		if !s.cfg.AllowRefLoad {
			cRequestsFailed.Inc()
			httpError(rctx, w, http.StatusForbidden, CodeRefLoadDisabled, "on-demand reference loading is disabled (-allow-ref-load)")
			return
		}
		indexBudget := time.Duration(float64(timeout) * s.cfg.IndexBudgetFrac)
		ictx, icancel := context.WithTimeout(ctx, indexBudget)
		idxSpan := span.StartChild("server.index")
		entry2, hit, err := s.loadEntry(ictx, req.Reference)
		icancel()
		if hit {
			idxSpan.SetAttr("cache_hit", 1)
		}
		idxSpan.End()
		if err != nil {
			cRequestsFailed.Inc()
			switch {
			case errors.Is(err, ErrCircuitOpen):
				w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.BreakerCooldown)))
				httpError(rctx, w, http.StatusServiceUnavailable, CodeCircuitOpen, "reference %q: %v", req.Reference, err)
			case errors.Is(err, context.DeadlineExceeded):
				httpError(rctx, w, http.StatusGatewayTimeout, CodeDeadline,
					"index build for %q exceeded its stage budget (%v of the request deadline)", req.Reference, indexBudget)
			case faults.IsInjected(err):
				httpError(rctx, w, http.StatusServiceUnavailable, CodeFaultInjected, "loading reference %q: %v", req.Reference, err)
			default:
				httpError(rctx, w, http.StatusBadRequest, CodeRefLoadFailed, "loading reference %q: %v", req.Reference, err)
			}
			return
		}
		entry = entry2
	}
	if entry == nil {
		cRequestsFailed.Inc()
		httpError(rctx, w, http.StatusServiceUnavailable, CodeNoIndex, "no default index")
		return
	}

	reads := make([]dna.Seq, len(req.Reads))
	for i := range req.Reads {
		reads[i] = req.Reads[i].Seq
	}
	cReadsIn.Add(int64(len(reads)))
	s.stats.observeReads(len(reads))

	job, err := s.batcher.Submit(ctx, entry, reads, req.All)
	if err != nil {
		cRequestsFailed.Inc()
		switch {
		case err == ErrQueueFull:
			w.Header().Set("Retry-After", "1")
			httpError(rctx, w, http.StatusTooManyRequests, CodeQueueFull, "admission queue full, retry later")
		case err == ErrDraining:
			w.Header().Set("Retry-After", "5")
			httpError(rctx, w, http.StatusServiceUnavailable, CodeDraining, "draining")
		default:
			httpError(rctx, w, http.StatusInternalServerError, CodeInternal, "%v", err)
		}
		return
	}
	res := job.Wait()
	if res.Err != nil {
		cRequestsFailed.Inc()
		if st := serverTiming(span); st != "" {
			w.Header().Set("Server-Timing", st)
		}
		switch {
		case res.Err == context.DeadlineExceeded || res.Err == context.Canceled:
			httpError(rctx, w, http.StatusGatewayTimeout, CodeDeadline, "request deadline exceeded")
		case faults.IsInjected(res.Err):
			httpError(rctx, w, http.StatusServiceUnavailable, CodeFaultInjected, "%v", res.Err)
		default:
			httpError(rctx, w, http.StatusInternalServerError, CodeInternal, "%v", res.Err)
		}
		return
	}
	cRequestsOK.Inc()

	if st := serverTiming(span); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	if r.URL.Query().Get("format") == "sam" {
		s.writeSAM(w, entry, req, res.Results)
		return
	}
	s.writeNDJSON(w, obs.RequestIDFromContext(rctx), entry, req, res.Results)
}

// RecordsFor converts one read's alignments to SAM records — the same
// emission logic as cmd/darwin, shared by both response formats and by
// the cluster router (which holds only a layout Reference; ref's
// coordinate methods are all this needs). Byte-identical SAM across
// the monolith and the cluster hinges on every tier emitting through
// this one function.
func RecordsFor(ref *core.Reference, name string, seq dna.Seq, alns []core.ReadAlignment, all bool) []sam.Record {
	if len(alns) == 0 {
		return []sam.Record{{QName: name, Flag: sam.FlagUnmapped, Seq: seq}}
	}
	emit := alns[:1]
	if all {
		emit = alns
	}
	var out []sam.Record
	for _, a := range emit {
		seqIdx, localStart, _, err := ref.LocateSpan(a.Result.RefStart, a.Result.RefEnd)
		if err != nil {
			continue // degenerate cross-sequence span
		}
		flagBits := 0
		outSeq := seq
		if a.Reverse {
			flagBits |= sam.FlagReverse
			outSeq = dna.RevComp(seq)
		}
		out = append(out, sam.Record{
			QName: name,
			Flag:  flagBits,
			RName: ref.Name(seqIdx),
			Pos:   localStart,
			MapQ:  60,
			Cigar: sam.CigarWithClips(a.Result.Cigar, a.Result.QueryStart, a.Result.QueryEnd, len(outSeq)),
			Seq:   outSeq,
			Tags:  []string{fmt.Sprintf("AS:i:%d", a.Result.Score), fmt.Sprintf("ft:i:%d", a.FirstTileScore)},
		})
	}
	if len(out) == 0 {
		return []sam.Record{{QName: name, Flag: sam.FlagUnmapped, Seq: seq}}
	}
	return out
}

// writeNDJSON streams one MapResponseLine per read, flushing after
// each line so clients see results as they are encoded. A read that
// failed (panic isolation, per-read deadline, injected fault) gets an
// error line instead of records — the other reads in the request are
// unaffected, which is the whole point of per-read isolation.
func (s *Server) writeNDJSON(w http.ResponseWriter, reqID string, entry *IndexEntry, req MapRequest, results []core.MapResult) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i, rd := range req.Reads {
		var line MapResponseLine
		switch {
		case results[i].Err != nil:
			line = MapResponseLine{Read: rd.Name, Error: results[i].Err.Error()}
		default:
			if err := fpStream.Fire(); err != nil {
				// Injected stream fault: degrade this one line to a
				// structured error, keep streaming the rest.
				line = MapResponseLine{Read: rd.Name, Error: err.Error()}
				break
			}
			recs := RecordsFor(entry.Ref, rd.Name, rd.Seq, results[i].Alignments, req.All)
			// Mapped reflects the emitted records, not the raw alignment
			// count: recordsFor can drop every alignment (degenerate
			// cross-sequence spans) and emit an unmapped placeholder.
			mapped := false
			for _, rec := range recs {
				if rec.Flag&sam.FlagUnmapped == 0 {
					mapped = true
					break
				}
			}
			line = MapResponseLine{
				Read:    rd.Name,
				Mapped:  mapped,
				Records: recs,
			}
		}
		line.RequestID = reqID
		if err := enc.Encode(line); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// writeSAM streams the response as SAM text (header + one line per
// record).
func (s *Server) writeSAM(w http.ResponseWriter, entry *IndexEntry, req MapRequest, results []core.MapResult) {
	w.Header().Set("Content-Type", "text/x-sam; charset=utf-8")
	for _, line := range sam.HeaderLines(entry.SQ, "darwind") {
		fmt.Fprintln(w, line)
	}
	flusher, _ := w.(http.Flusher)
	for i, rd := range req.Reads {
		// SAM has no per-record error channel; a failed read becomes an
		// unmapped placeholder so record count still matches read count.
		alns := results[i].Alignments
		if results[i].Err != nil {
			alns = nil
		}
		for _, rec := range RecordsFor(entry.Ref, rd.Name, rd.Seq, alns, req.All) {
			fmt.Fprintln(w, rec.Line())
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
