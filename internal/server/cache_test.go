package server

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/shard"
)

// testEntry builds a real (tiny) index entry for cache and batcher
// tests.
func testEntry(t *testing.T, key string, seed int64, n int) *IndexEntry {
	t.Helper()
	ref := dna.Random(rand.New(rand.NewSource(seed)), n, 0.5)
	entry, err := BuildEntry(key, []dna.Record{{Name: "chr1", Seq: ref}}, testCoreConfig(), shard.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

func testCoreConfig() core.Config {
	return core.DefaultConfig(11, 400, 18)
}

func TestIndexCacheSingleflight(t *testing.T) {
	cache := NewIndexCache(4)
	var builds atomic.Int64
	build := func() (*IndexEntry, error) {
		builds.Add(1)
		return testEntry(t, "k", 41, 20000), nil
	}
	const goroutines = 16
	var wg sync.WaitGroup
	entries := make([]*IndexEntry, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := cache.Get(context.Background(), "k", build)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("build ran %d times for 16 concurrent Gets, want 1 (singleflight)", got)
	}
	for i := 1; i < goroutines; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry instance", i)
		}
	}
}

func TestIndexCacheLRUEviction(t *testing.T) {
	cache := NewIndexCache(2)
	mk := func(key string) func() (*IndexEntry, error) {
		return func() (*IndexEntry, error) { return testEntry(t, key, 43, 20000), nil }
	}
	for _, k := range []string{"a", "b"} {
		if _, hit, err := cache.Get(context.Background(), k, mk(k)); err != nil || hit {
			t.Fatalf("Get(%s) = hit=%v err=%v, want fresh build", k, hit, err)
		}
	}
	// Touch "a" so "b" becomes least recently used, then insert "c".
	if _, hit, err := cache.Get(context.Background(), "a", mk("a")); err != nil || !hit {
		t.Fatalf("Get(a) again = hit=%v err=%v, want cache hit", hit, err)
	}
	if _, hit, err := cache.Get(context.Background(), "c", mk("c")); err != nil || hit {
		t.Fatalf("Get(c) = hit=%v err=%v, want fresh build", hit, err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	keys := make([]string, 0, 2)
	for _, e := range cache.Entries() {
		keys = append(keys, e.Key)
	}
	if keys[0] != "c" || keys[1] != "a" {
		t.Errorf("resident keys (MRU first) = %v, want [c a] — b should have been evicted", keys)
	}
	// "b" must rebuild.
	var rebuilt bool
	if _, hit, err := cache.Get(context.Background(), "b", func() (*IndexEntry, error) {
		rebuilt = true
		return testEntry(t, "b", 44, 20000), nil
	}); err != nil || hit || !rebuilt {
		t.Errorf("Get(b) after eviction: hit=%v rebuilt=%v err=%v, want rebuild", hit, rebuilt, err)
	}
}

func TestIndexCacheBuildErrorNotCached(t *testing.T) {
	cache := NewIndexCache(2)
	boom := errors.New("boom")
	if _, _, err := cache.Get(context.Background(), "k", func() (*IndexEntry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Get with failing build = %v, want boom", err)
	}
	if cache.Len() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	// A later Get retries the build.
	e, hit, err := cache.Get(context.Background(), "k", func() (*IndexEntry, error) { return testEntry(t, "k", 45, 20000), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("retry after failed build: entry=%v hit=%v err=%v", e, hit, err)
	}
}

func TestIndexKeyDistinguishesConfigs(t *testing.T) {
	base := testCoreConfig()
	other := base
	other.SeedK = 12
	keys := map[string]bool{
		IndexKey("ref.fa", base, shard.Config{}):  true,
		IndexKey("ref.fa", other, shard.Config{}): true,
		IndexKey("ref2.fa", base, shard.Config{}): true,
	}
	if len(keys) != 3 {
		t.Errorf("expected 3 distinct keys, got %d", len(keys))
	}
	if IndexKey("ref.fa", base, shard.Config{}) != IndexKey("ref.fa", testCoreConfig(), shard.Config{}) {
		t.Error("identical source+config must produce identical keys")
	}
}

// TestIndexKeyDistinguishesShardGeometry: every sharding knob —
// count/size, overlap, and the residency budget — must produce a
// distinct cache key, or two deployments with different budgets would
// alias to one resident index.
func TestIndexKeyDistinguishesShardGeometry(t *testing.T) {
	base := testCoreConfig()
	variants := []shard.Config{
		{},
		{Shards: 4},
		{Shards: 8},
		{ShardSize: 1 << 20},
		{Shards: 4, Overlap: 4096},
		{Shards: 4, MaxResidentBytes: 64 << 20},
	}
	keys := map[string]bool{}
	for _, v := range variants {
		keys[IndexKey("ref.fa", base, v)] = true
	}
	if len(keys) != len(variants) {
		t.Errorf("expected %d distinct keys, got %d", len(variants), len(keys))
	}
}

// TestBuildEntrySharded checks a sharded entry serves the same
// alignments as a monolithic one and exposes its residency snapshot.
func TestBuildEntrySharded(t *testing.T) {
	ref := dna.Random(rand.New(rand.NewSource(47)), 60000, 0.5)
	recs := []dna.Record{{Name: "chr1", Seq: ref}}
	mono, err := BuildEntry("m", recs, testCoreConfig(), shard.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildEntry("s", recs, testCoreConfig(), shard.Config{Shards: 3, MaxResidentBytes: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Shards != nil {
		t.Error("monolithic entry reports a shard set")
	}
	if sharded.Shards == nil {
		t.Fatal("sharded entry has no shard set")
	}
	reads := []dna.Seq{ref[1000:3500].Clone(), ref[30000:32500].Clone(), dna.RevComp(ref[45000:47500])}
	want, err := mono.Engine.MapAll(reads, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Engine.MapAll(reads, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i].Alignments) != len(want[i].Alignments) {
			t.Fatalf("read %d: %d alignments sharded vs %d monolithic", i, len(got[i].Alignments), len(want[i].Alignments))
		}
		if !reflect.DeepEqual(got[i].Alignments, want[i].Alignments) {
			t.Fatalf("read %d: alignments differ between engines", i)
		}
	}
	st, detail := sharded.Shards.Snapshot()
	if st.Shards != 3 || st.Resident != 1 || len(detail) != 3 {
		t.Errorf("snapshot = %+v with %d detail rows, want 3 shards / 1 resident", st, len(detail))
	}
	// Clones must share the set (and thus the budget).
	c, err := sharded.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Release(c)
	if c.(*shard.ScatterMapper).Set() != sharded.Shards {
		t.Error("acquired clone does not share the entry's shard set")
	}
}
