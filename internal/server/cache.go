// Package server is the darwind serving layer: a resident index
// cache, a micro-batcher that coalesces small requests into
// context-bounded Map batches, and the HTTP/JSON front end with
// admission control and graceful drain.
//
// The paper's co-processor only reaches its headline throughput
// because the host amortizes index construction: the reference seed
// table is built once and reused across every read (Section 5; Table
// 3 separates the one-time index cost from per-read filter+align
// work). A batch CLI pays that cost per invocation; a long-running
// service pays it once. This package is the software realization of
// that host-side regime — warm indexes, saturated batch workers, and
// explicit backpressure when offered load exceeds capacity.
package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/indexio"
	"darwin/internal/obs"
	"darwin/internal/sam"
	"darwin/internal/shard"
)

// Index-cache observability.
var (
	cCacheHits      = obs.Default.Counter("server/index_cache_hits")
	cCacheMisses    = obs.Default.Counter("server/index_cache_misses")
	cCacheEvictions = obs.Default.Counter("server/index_cache_evictions")
	tIndexBuild     = obs.Default.Timer("server/index_build")
	tIndexLoad      = obs.Default.Timer("server/index_load")
	gCacheEntries   = obs.Default.Gauge("server/index_cache_entries")
)

// IndexEntry is one resident index: a warm engine plus the reference
// metadata needed to emit SAM records, and a small pool of engine
// clones so concurrent single-worker batches never share mutable
// D-SOFT bin state.
type IndexEntry struct {
	// Key identifies the entry in the cache.
	Key string
	// Engine is the warm engine — monolithic (*core.Darwin) or sharded
	// (*shard.ScatterMapper). Never call MapRead on it directly from
	// concurrent request paths — acquire a clone.
	Engine core.Mapper
	// Shards is the sharded engine's residency-managed set; nil for a
	// monolithic index. Exposed for /v1/indexes reporting.
	Shards *shard.Set
	// Ref maps concatenated coordinates back to sequence names.
	Ref *core.Reference
	// SQ is the SAM @SQ header set for this reference.
	SQ []sam.RefSeq
	// BuildTime is the one-time index construction cost this cache
	// amortizes (the paper's Table 3 accounting). For sharded indexes
	// it covers the global mask pass; shard tables build lazily.
	BuildTime time.Duration
	// IndexFile is the persistent index file this entry was mapped
	// from; empty for entries built from FASTA.
	IndexFile string
	// Fingerprint is the mapped index file's content fingerprint
	// (zero for built entries). It is folded into the cache key, so a
	// rewritten sidecar yields a new entry instead of serving stale
	// tables.
	Fingerprint uint64
	// MappedBytes is the size of the mapping backing this entry's
	// tables and reference (zero for built entries).
	MappedBytes int64

	clones chan core.Mapper
}

// newIndexEntry wraps a warm engine, keeping up to poolSize idle
// clones.
func newIndexEntry(key string, engine core.Mapper, shards *shard.Set, ref *core.Reference, poolSize int) *IndexEntry {
	if poolSize < 1 {
		poolSize = 1
	}
	sqs := make([]sam.RefSeq, ref.NumSeqs())
	for i := range sqs {
		sqs[i] = sam.RefSeq{Name: ref.Name(i), Len: ref.Len(i)}
	}
	return &IndexEntry{
		Key:       key,
		Engine:    engine,
		Shards:    shards,
		Ref:       ref,
		SQ:        sqs,
		BuildTime: engine.IndexBuildTime(),
		clones:    make(chan core.Mapper, poolSize),
	}
}

// Acquire returns an engine clone for exclusive use; pair with
// Release. Clones share the immutable seed table (and, for sharded
// indexes, the residency budget), so this is cheap relative to an
// index build but still worth pooling per batch.
func (e *IndexEntry) Acquire() (core.Mapper, error) {
	select {
	case c := <-e.clones:
		return c, nil
	default:
		return e.Engine.CloneMapper()
	}
}

// Release returns a clone to the pool (dropped if the pool is full).
func (e *IndexEntry) Release(c core.Mapper) {
	select {
	case e.clones <- c:
	default:
	}
}

// IndexKey derives the cache key for a reference source, engine
// configuration, and shard geometry: two requests share an index only
// if every parameter that shapes the seed table, filter, or sharding
// (shard count/size, overlap, residency budget) matches.
func IndexKey(source string, cfg core.Config, scfg shard.Config) string {
	return fmt.Sprintf("%s|k=%d n=%d stride=%d h=%d B=%d htile=%d gact=%+v table=%+v maxcand=%d shard=%+v",
		source, cfg.SeedK, cfg.SeedN, cfg.SeedStride, cfg.Threshold, cfg.BinSize, cfg.HTile,
		cfg.GACT, cfg.TableOptions, cfg.MaxCandidates, scfg)
}

// BuildEntry indexes records under cfg and wraps them as a cache
// entry (the build func used by both warmup and on-demand loads).
// Engine selection — monolithic vs the bounded-memory scatter-gather
// engine — is core.Open's job; this layer only recovers the shard set
// for /v1/indexes residency reporting.
func BuildEntry(key string, recs []dna.Record, cfg core.Config, scfg shard.Config, clonePool int) (*IndexEntry, error) {
	stop := tIndexBuild.Time()
	defer stop()
	engine, ref, err := core.Open(core.OpenConfig{
		Records: recs,
		Core:    cfg,
		Shard: core.ShardSpec{
			Shards:           scfg.Shards,
			ShardSize:        scfg.ShardSize,
			Overlap:          scfg.Overlap,
			MaxResidentBytes: scfg.MaxResidentBytes,
		},
	})
	if err != nil {
		return nil, err
	}
	var set *shard.Set
	if sm, ok := engine.(*shard.ScatterMapper); ok {
		set = sm.Set()
	}
	return newIndexEntry(key, engine, set, ref, clonePool), nil
}

// LoadEntry cold-starts a cache entry from a persistent index file:
// the file is mapped and its seed tables and reference served as
// views, so no build pass runs — a mapped load is just a fast build,
// and the entry flows through the same singleflight, breaker, and
// index-budget paths as one built from FASTA. The mapping lives as
// long as the process (the entry's engine aliases it), so the file is
// never closed here.
func LoadEntry(key, path string, cfg core.Config, scfg shard.Config, clonePool int) (*IndexEntry, error) {
	stop := tIndexLoad.Time()
	defer stop()
	l, err := indexio.Open(path, cfg, core.ShardSpec{
		Shards:           scfg.Shards,
		ShardSize:        scfg.ShardSize,
		Overlap:          scfg.Overlap,
		MaxResidentBytes: scfg.MaxResidentBytes,
	})
	if err != nil {
		return nil, err
	}
	var set *shard.Set
	if sm, ok := l.Mapper.(*shard.ScatterMapper); ok {
		set = sm.Set()
	}
	e := newIndexEntry(key, l.Mapper, set, l.Ref, clonePool)
	e.IndexFile = path
	e.Fingerprint = l.File.Info().Fingerprint
	e.MappedBytes = l.File.MappedBytes()
	return e, nil
}

// buildCall is one in-flight singleflight build.
type buildCall struct {
	done  chan struct{}
	entry *IndexEntry
	err   error
}

// IndexCache is an LRU cache of warm indexes with singleflight
// builds: concurrent requests for the same key wait on one build
// instead of each paying the index cost the cache exists to amortize.
type IndexCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *IndexEntry
	entries  map[string]*list.Element
	inflight map[string]*buildCall
}

// NewIndexCache returns a cache holding at most capacity indexes
// (minimum 1).
func NewIndexCache(capacity int) *IndexCache {
	if capacity < 1 {
		capacity = 1
	}
	return &IndexCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*buildCall),
	}
}

// Get returns the entry for key, building it with build on a miss.
// Concurrent Gets for the same missing key run build exactly once and
// share its result (including its error — a failed build is not
// cached, so a later Get retries).
//
// The build runs in its own goroutine: every waiter — the leader
// included — selects on the build finishing or its own ctx ending, so
// a request's index-stage budget bounds how long it waits for a slow
// build without killing the build itself (the finished index is still
// inserted for future requests). A panicking build is recovered into
// a build error; the panic poisons nothing but that attempt.
func (c *IndexCache) Get(ctx context.Context, key string, build func() (*IndexEntry, error)) (*IndexEntry, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		cCacheHits.Inc()
		return el.Value.(*IndexEntry), true, nil
	}
	call, shared := c.inflight[key]
	if !shared {
		call = &buildCall{done: make(chan struct{})}
		c.inflight[key] = call
		cCacheMisses.Inc()
		go func() {
			entry, err := buildRecovered(build)
			call.entry, call.err = entry, err
			c.mu.Lock()
			delete(c.inflight, key)
			if err == nil {
				c.insertLocked(key, entry)
			}
			c.mu.Unlock()
			close(call.done)
		}()
	}
	c.mu.Unlock()

	select {
	case <-call.done:
	case <-ctx.Done():
		return nil, false, fmt.Errorf("server: waiting for index build: %w", ctx.Err())
	}
	if call.err != nil {
		return nil, false, call.err
	}
	if shared {
		// The leader's build satisfied us too; count it as a hit on
		// the shared build.
		cCacheHits.Inc()
	}
	return call.entry, shared, nil
}

// buildRecovered runs build with panic containment: an index build
// that panics (poisoned input, injected fault) fails that one build
// attempt instead of crashing the process.
func buildRecovered(build func() (*IndexEntry, error)) (entry *IndexEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			entry, err = nil, fmt.Errorf("server: index build panicked: %v", r)
		}
	}()
	return build()
}

// insertLocked adds an entry, evicting from the LRU tail past
// capacity. Evicted entries are simply unreferenced; in-flight
// batches holding them finish normally.
func (c *IndexCache) insertLocked(key string, entry *IndexEntry) {
	if el, ok := c.entries[key]; ok {
		el.Value = entry
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(entry)
	for c.order.Len() > c.capacity {
		tail := c.order.Back()
		evicted := tail.Value.(*IndexEntry)
		c.order.Remove(tail)
		delete(c.entries, evicted.Key)
		cCacheEvictions.Inc()
	}
	gCacheEntries.Set(int64(c.order.Len()))
}

// Len returns the number of resident indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Entries returns the resident entries, most recently used first.
func (c *IndexCache) Entries() []*IndexEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*IndexEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*IndexEntry))
	}
	return out
}
