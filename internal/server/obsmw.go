package server

import (
	"log/slog"
	"net/http"

	"darwin/internal/obs"
)

// statusWriter records what the handler told the client — status code
// and, for structured failures, the error code — so the middleware
// can log and window-count the outcome without re-deriving it.
type statusWriter struct {
	http.ResponseWriter
	status  int
	errCode string
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap keeps http.ResponseController features (flush for NDJSON
// streaming) working through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush preserves the pre-ResponseController flusher type assertion
// used by the streaming writers.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// setErrCode records the structured error code on the writer when it
// is a statusWriter (plain writers — unit tests hitting handlers
// directly — ignore it).
func setErrCode(w http.ResponseWriter, code string) {
	if sw, ok := w.(*statusWriter); ok && sw.errCode == "" {
		sw.errCode = code
	}
}

// withObs wraps the whole service: mints the request identity, roots
// the span tree in the request context, echoes X-Request-ID, emits
// the slog access line, feeds the SLO windows, and offers /v1/map
// spans to the slow-request ring.
func (s *Server) withObs(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := requestIDFrom(r)
		span := obs.NewRequestSpan(reqID, r.Method+" "+r.URL.Path)
		ctx := obs.ContextWithSpan(r.Context(), span)
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(ctx))
		span.End()
		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing: implicit 200
		}

		d := span.Duration()
		isMap := r.URL.Path == "/v1/map"
		if isMap {
			s.stats.observe(d, sw.status, sw.errCode)
			s.slow.Offer(span)
		}

		// Access line: one per request on the serving endpoints. The
		// scrape/probe endpoints (/metrics, /healthz, /readyz) stay
		// debug-level so a tight probe loop does not drown the log.
		level := slog.LevelInfo
		if !isMap && r.URL.Path != "/v1/indexes" {
			level = slog.LevelDebug
		}
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", d),
			slog.String("remote", r.RemoteAddr),
		}
		if sw.errCode != "" {
			attrs = append(attrs, slog.String("error_code", sw.errCode))
		}
		s.log.LogAttrs(ctx, level, "request", attrs...)
	})
}

// serverTiming renders the span's direct stage children as a
// Server-Timing header value (e.g. "admit;dur=0.3, queue;dur=1.2,
// batch;dur=8.0, total;dur=9.9") so clients see where server-side
// time went without a debug endpoint round-trip. Only the
// server.-prefixed children appear, under their short names.
func serverTiming(span *obs.Span) string {
	if span == nil {
		return ""
	}
	snap := span.Snapshot()
	var b []byte
	for _, c := range snap.Children {
		name, ok := trimServerStage(c.Name)
		if !ok {
			continue
		}
		if len(b) > 0 {
			b = append(b, ", "...)
		}
		b = appendTimingEntry(b, name, c.DurationUS)
	}
	if len(b) > 0 {
		b = append(b, ", "...)
	}
	b = appendTimingEntry(b, "total", span.Duration().Microseconds())
	return string(b)
}

func appendTimingEntry(b []byte, name string, us int64) []byte {
	b = append(b, name...)
	b = append(b, ";dur="...)
	ms := us / 1000
	frac := (us % 1000) / 100
	b = appendInt(b, ms)
	b = append(b, '.')
	b = appendInt(b, frac)
	return b
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		v = 0
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

func trimServerStage(name string) (string, bool) {
	const prefix = "server."
	if len(name) > len(prefix) && name[:len(prefix)] == prefix {
		return name[len(prefix):], true
	}
	return "", false
}
