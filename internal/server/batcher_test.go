package server

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

func testReads(t *testing.T, entry *IndexEntry, n int, seed int64) []dna.Seq {
	t.Helper()
	reads, err := readsim.SimulateN(entry.Engine.Ref(), n, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 800, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	return seqs
}

// TestBatcherResultsMatchDirectMapping: jobs submitted through the
// batcher return exactly what mapping their reads directly would.
func TestBatcherResultsMatchDirectMapping(t *testing.T) {
	entry := testEntry(t, "k", 51, 60000)
	reads := testReads(t, entry, 12, 52)

	b := NewBatcher(BatcherConfig{MaxBatchReads: 8, MaxWait: time.Millisecond, QueueBound: 64, Executors: 2})
	b.Start()
	defer b.Drain(context.Background())

	// Three jobs of four reads each, coalesced arbitrarily.
	jobs := make([]*Job, 3)
	for i := range jobs {
		j, err := b.Submit(context.Background(), entry, reads[i*4:(i+1)*4], false)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	direct, err := entry.Engine.MapAll(reads, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		res := j.Wait()
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if len(res.Results) != 4 {
			t.Fatalf("job %d: %d results, want 4", i, len(res.Results))
		}
		for k, mr := range res.Results {
			if mr.Index != k {
				t.Errorf("job %d result %d: index %d not re-based to job order", i, k, mr.Index)
			}
			want := direct[i*4+k].Alignments
			if !reflect.DeepEqual(mr.Alignments, want) {
				t.Errorf("job %d read %d: batched alignments differ from direct mapping", i, k)
			}
		}
	}
}

// TestBatcherQueueBound: with no dispatcher running, Submit admits
// exactly QueueBound jobs then rejects with ErrQueueFull.
func TestBatcherQueueBound(t *testing.T) {
	entry := testEntry(t, "k", 53, 20000)
	read := dna.Random(rand.New(rand.NewSource(54)), 500, 0.5)
	b := NewBatcher(BatcherConfig{QueueBound: 2}) // not started
	for i := 0; i < 2; i++ {
		if _, err := b.Submit(context.Background(), entry, []dna.Seq{read}, false); err != nil {
			t.Fatalf("Submit %d within bound: %v", i, err)
		}
	}
	if _, err := b.Submit(context.Background(), entry, []dna.Seq{read}, false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit past bound = %v, want ErrQueueFull", err)
	}
}

// TestBatcherDrainFlushesInFlight: every job admitted before Drain is
// answered (zero dropped), and Submit after Drain returns ErrDraining.
func TestBatcherDrainFlushesInFlight(t *testing.T) {
	entry := testEntry(t, "k", 55, 60000)
	reads := testReads(t, entry, 8, 56)

	// A long MaxWait guarantees the jobs are still pending coalescing
	// when Drain is called — the flush must come from the drain path.
	b := NewBatcher(BatcherConfig{MaxBatchReads: 1024, MaxWait: time.Hour, QueueBound: 64, Executors: 2})
	b.Start()
	jobs := make([]*Job, len(reads))
	for i := range reads {
		j, err := b.Submit(context.Background(), entry, reads[i:i+1], false)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, j := range jobs {
		select {
		case res := <-j.resp:
			if res.Err != nil {
				t.Errorf("job %d: drained with error %v", i, res.Err)
			}
			if len(res.Results) != 1 {
				t.Errorf("job %d: %d results, want 1", i, len(res.Results))
			}
		default:
			t.Errorf("job %d: dropped during drain (no response)", i)
		}
	}
	if _, err := b.Submit(context.Background(), entry, reads[:1], false); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestBatcherCancelledJobSkipped: a job whose context is already dead
// when its batch executes gets a context error, not wasted mapping.
func TestBatcherCancelledJobSkipped(t *testing.T) {
	entry := testEntry(t, "k", 57, 60000)
	reads := testReads(t, entry, 2, 58)

	b := NewBatcher(BatcherConfig{MaxBatchReads: 1024, MaxWait: 50 * time.Millisecond, QueueBound: 8, Executors: 1})
	b.Start()
	defer b.Drain(context.Background())

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // dead before the batch ever runs
	jDead, err := b.Submit(cancelled, entry, reads[:1], false)
	if err != nil {
		t.Fatal(err)
	}
	jLive, err := b.Submit(context.Background(), entry, reads[1:], false)
	if err != nil {
		t.Fatal(err)
	}
	if res := jDead.Wait(); !errors.Is(res.Err, context.Canceled) {
		t.Errorf("cancelled job result = %v, want context.Canceled", res.Err)
	}
	if res := jLive.Wait(); res.Err != nil || len(res.Results) != 1 {
		t.Errorf("live job in the same batch: err=%v results=%d, want success", res.Err, len(res.Results))
	}
}
