package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error codes on the wire. Clients branch on the code, not the
// message: the code set is the API, the message is diagnostics.
const (
	CodeBadRequest      = "bad_request"
	CodeMethodNotAllow  = "method_not_allowed"
	CodeTooManyReads    = "too_many_reads"
	CodeRefLoadDisabled = "ref_load_disabled"
	CodeRefLoadFailed   = "ref_load_failed"
	CodeCircuitOpen     = "circuit_open"
	CodeFaultInjected   = "fault_injected"
	CodeQueueFull       = "queue_full"
	CodeDraining        = "draining"
	CodeWarming         = "warming"
	CodeNoIndex         = "no_index"
	CodeDeadline        = "deadline_exceeded"
	CodeInternal        = "internal"
)

// ErrorBody is the structured JSON error envelope every non-200
// response carries: {"error":{"code":...,"message":...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the code + human-readable message pair.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError writes a structured JSON error with status code. Headers
// (Retry-After etc.) must be set before calling.
func httpError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
