package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"darwin/internal/obs"
)

// Error codes on the wire. Clients branch on the code, not the
// message: the code set is the API, the message is diagnostics.
const (
	CodeBadRequest      = "bad_request"
	CodeMethodNotAllow  = "method_not_allowed"
	CodeTooManyReads    = "too_many_reads"
	CodeRefLoadDisabled = "ref_load_disabled"
	CodeRefLoadFailed   = "ref_load_failed"
	CodeCircuitOpen     = "circuit_open"
	CodeFaultInjected   = "fault_injected"
	CodeQueueFull       = "queue_full"
	CodeDraining        = "draining"
	CodeWarming         = "warming"
	CodeNoIndex         = "no_index"
	CodeDeadline        = "deadline_exceeded"
	CodeCanceled        = "canceled"
	CodeInternal        = "internal"
	CodeShardNotOwned   = "shard_not_owned"
	CodeScatterFailed   = "scatter_failed"

	// Job API codes (see jobs.go).
	CodeJobNotFound     = "job_not_found"
	CodeJobCanceled     = "job_canceled"
	CodeJobNotDone      = "job_not_done"
	CodePayloadTooLarge = "payload_too_large"
	// checkpoint_corrupt rides through jobs.Status.ErrorCode; the
	// constant exists so handlers and tests name it consistently.
	CodeCheckpointCorrupt = "checkpoint_corrupt"
)

// ErrorBody is the structured JSON error envelope every non-200
// response carries:
// {"error":{"code":...,"message":...,"request_id":...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the code + human-readable message pair, stamped with
// the request identity so a client-side failure joins to the server's
// access line and span capture for the same request.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// WriteError is the structured-error writer, exported so the cluster
// router's responses carry the exact envelope the worker API does —
// one error shape for clients regardless of which tier rejected them.
func WriteError(ctx context.Context, w http.ResponseWriter, status int, code string, format string, args ...any) {
	httpError(ctx, w, status, code, format, args...)
}

// httpError writes a structured JSON error with status code, carrying
// ctx's request identity in the envelope. Headers (Retry-After etc.)
// must be set before calling.
func httpError(ctx context.Context, w http.ResponseWriter, status int, code string, format string, args ...any) {
	setErrCode(w, code)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: obs.RequestIDFromContext(ctx),
	}})
}
