package server

import "darwin/internal/faults"

// Fault injection points for the serving layer (armed only via
// faults.Setup):
//
//   - server/admit fires per admitted /v1/map request before it is
//     submitted to the batcher — an error turns into a structured 503,
//     a delay models slow admission control.
//   - server/flush fires per batch flush inside the executor — an
//     error or panic must fail only that batch's jobs with structured
//     errors, never the executor pool (the recover wrapper in runBatch
//     is what a chaos run is proving).
//   - server/stream fires per NDJSON response line — an error replaces
//     that read's line with a structured error line, a delay models a
//     slow client connection.
var (
	fpAdmit  = faults.Default.Point("server/admit")
	fpFlush  = faults.Default.Point("server/flush")
	fpStream = faults.Default.Point("server/stream")
)
