package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// testRecords simulates a small read set the assemble pipeline
// finishes in a few seconds but still crosses several checkpoint
// boundaries.
func testRecords(t *testing.T, n int) []dna.Record {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: 15000, GC: 0.45, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, n, readsim.Config{Profile: readsim.PacBio, MeanLen: 1800, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]dna.Record, len(reads))
	for i, r := range reads {
		recs[i] = dna.Record{Name: r.Name, Seq: r.Seq}
	}
	return recs
}

func testParams() Params {
	return Params{MinOverlap: 1000, PolishRounds: 0, Reorder: "off"}
}

func newTestManager(t *testing.T, dir string, ckptEvery int) *Manager {
	t.Helper()
	m, err := New(Config{Dir: dir, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitState polls until the job reaches a terminal state or the
// deadline passes.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s did not finish: state %s, stages %v", id, st.State, st.Stages)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 0)
	defer m.Drain(context.Background())
	recs := []dna.Record{{Name: "r0", Seq: dna.Seq("ACGTACGTACGT")}}
	if _, err := m.Submit("bogus", recs, testParams()); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := m.Submit(KindAssemble, nil, testParams()); err == nil {
		t.Error("empty read set accepted")
	}
	p := testParams()
	p.Reorder = "sideways"
	if _, err := m.Submit(KindAssemble, recs, p); err == nil {
		t.Error("bad reorder mode accepted")
	}
	if _, err := m.Get("jmissing"); err != ErrNotFound {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
}

// TestJobLifecycleAssemble: submit → run → done, with per-stage
// progress, a result file, and summary metadata.
func TestJobLifecycleAssemble(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 8)
	defer m.Drain(context.Background())
	recs := testRecords(t, 30)
	st, err := m.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending && st.State != StateRunning {
		t.Errorf("initial state = %s", st.State)
	}
	fin := waitState(t, m, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Contigs == 0 || fin.Result.N50 == 0 {
		t.Errorf("result meta = %+v", fin.Result)
	}
	if p := fin.Stages["overlap"]; p.Done != len(recs) || p.Total != len(recs) {
		t.Errorf("overlap progress = %+v, want %d/%d", p, len(recs), len(recs))
	}
	if fin.Checkpoints == 0 {
		t.Error("no checkpoints recorded")
	}
	path, ctype, err := m.ResultFile(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ctype != "text/x-fasta" {
		t.Errorf("content type = %q", ctype)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(">contig_")) {
		t.Errorf("result does not look like contig FASTA: %.40q", data)
	}
}

// TestJobLifecycleOverlap: the overlap kind streams NDJSON.
func TestJobLifecycleOverlap(t *testing.T) {
	m := newTestManager(t, t.TempDir(), 0)
	defer m.Drain(context.Background())
	st, err := m.Submit(KindOverlap, testRecords(t, 20), testParams())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Overlaps == 0 {
		t.Errorf("result meta = %+v", fin.Result)
	}
	path, ctype, err := m.ResultFile(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ctype != "application/x-ndjson" {
		t.Errorf("content type = %q", ctype)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(`{"target":`)) {
		t.Errorf("result does not look like overlap NDJSON: %.40q", data)
	}
}

// TestJobCancelFreesSlot: cancelling a running job must release its
// executor slot so a queued job proceeds, and the canceled state must
// persist. Goroutine counts return to baseline after drain.
func TestJobCancelFreesSlot(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := newTestManager(t, t.TempDir(), 0)
	recs := testRecords(t, 30)

	a, err := m.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Concurrency defaults to 1: b queues behind a. Cancel a while it
	// holds the slot.
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	stA := waitState(t, m, a.ID, time.Minute)
	if stA.State != StateCanceled {
		t.Fatalf("canceled job state = %s", stA.State)
	}
	// Canceling again is a no-op on a terminal job.
	again, err := m.Cancel(a.ID)
	if err != nil || again.State != StateCanceled {
		t.Errorf("re-cancel = %+v, %v", again.State, err)
	}
	// b must acquire the freed slot and complete.
	stB := waitState(t, m, b.ID, 2*time.Minute)
	if stB.State != StateDone {
		t.Fatalf("queued job state = %s (error %q)", stB.State, stB.Error)
	}
	// The canceled state is the persisted commit point.
	onDisk, err := readStatus(filepath.Join(m.dirOf(a.ID), "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateCanceled {
		t.Errorf("persisted state = %s, want canceled", onDisk.State)
	}

	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// All executor goroutines must be gone after drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
}

// TestJobDrainResume is the kill-and-resume property at the manager
// level: drain mid-overlap, recover in a fresh manager over the same
// directory, and the resumed job's contigs are byte-identical to an
// uninterrupted run's.
func TestJobDrainResume(t *testing.T) {
	recs := testRecords(t, 30)

	// Reference: uninterrupted run.
	refDir := t.TempDir()
	ref := newTestManager(t, refDir, 4)
	refSt, err := ref.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	refFin := waitState(t, ref, refSt.ID, 2*time.Minute)
	if refFin.State != StateDone {
		t.Fatalf("reference run: %s (%s)", refFin.State, refFin.Error)
	}
	refPath, _, err := ref.ResultFile(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	refContigs, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref.Drain(context.Background())

	// Interrupted run: drain once a checkpoint lands mid-overlap.
	dir := t.TempDir()
	m1 := newTestManager(t, dir, 4)
	st, err := m1.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := m1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		p := cur.Stages["overlap"]
		if cur.Checkpoints > 0 && p.Done > 0 && p.Done < p.Total {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before drain could interrupt it (state %s); lower read count margin", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mid-overlap checkpoint observed: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Drain leaves the persisted state non-terminal — that is the
	// recovery contract.
	onDisk, err := readStatus(filepath.Join(m1.dirOf(st.ID), "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Terminal() {
		t.Fatalf("drained job persisted terminal state %s", onDisk.State)
	}

	// Fresh process: recover and finish.
	m2 := newTestManager(t, dir, 4)
	defer m2.Drain(context.Background())
	restarted, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if restarted != 1 {
		t.Fatalf("restarted = %d, want 1", restarted)
	}
	fin := waitState(t, m2, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", fin.State, fin.Error)
	}
	if !fin.Resumed || fin.ResumeRead == 0 {
		t.Errorf("resume not visible in status: resumed=%v resume_read=%d", fin.Resumed, fin.ResumeRead)
	}
	path, _, err := m2.ResultFile(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	contigs, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(contigs, refContigs) {
		t.Error("resumed contigs differ from uninterrupted run")
	}
}

// TestRecoverCorruptCheckpoint: a flipped byte in the checkpoint must
// fail the job with the stable checkpoint_corrupt code instead of
// silently recomputing.
func TestRecoverCorruptCheckpoint(t *testing.T) {
	recs := testRecords(t, 30)
	dir := t.TempDir()
	m1 := newTestManager(t, dir, 4)
	st, err := m1.Submit(KindAssemble, recs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := m1.Get(st.ID)
		if cur.Checkpoints > 0 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("no checkpoint before job resolved: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(dir, st.ID, "checkpoint.dwc")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir, 4)
	defer m2.Drain(context.Background())
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	fin, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	if fin.ErrorCode != "checkpoint_corrupt" {
		t.Errorf("error code = %q, want checkpoint_corrupt", fin.ErrorCode)
	}
}

// TestRecoverSkipsTerminalJobs: terminal jobs are re-registered for
// status queries but never restarted.
func TestRecoverSkipsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, dir, 0)
	st, err := m1.Submit(KindOverlap, testRecords(t, 15), testParams())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m1, st.ID, 2*time.Minute)
	if fin.State != StateDone {
		t.Fatalf("state = %s", fin.State)
	}
	m1.Drain(context.Background())

	m2 := newTestManager(t, dir, 0)
	defer m2.Drain(context.Background())
	restarted, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if restarted != 0 {
		t.Errorf("restarted = %d, want 0", restarted)
	}
	got, err := m2.Get(st.ID)
	if err != nil || got.State != StateDone {
		t.Errorf("recovered terminal job = %+v, %v", got.State, err)
	}
	// Its result remains servable.
	if _, _, err := m2.ResultFile(st.ID); err != nil {
		t.Errorf("ResultFile after recover: %v", err)
	}
}
