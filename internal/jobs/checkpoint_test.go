package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
)

func testCheckpoint() core.OverlapCheckpoint {
	return core.OverlapCheckpoint{
		NextRead: 7,
		Overlaps: []core.Overlap{
			{Target: 0, Query: 3, TargetStart: 100, TargetEnd: 900, QueryStart: 0, QueryEnd: 800, Score: 750},
			{Target: 1, Query: 2, QueryRev: true, TargetStart: 5, TargetEnd: 505, QueryStart: 10, QueryEnd: 510, Score: 480},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.dwc")
	want := testCheckpoint()
	const fp = 0xDEADBEEFCAFE
	if err := WriteCheckpoint(path, fp, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRead != want.NextRead || len(got.Overlaps) != len(want.Overlaps) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Overlaps {
		if got.Overlaps[i] != want.Overlaps[i] {
			t.Errorf("overlap %d: got %+v, want %+v", i, got.Overlaps[i], want.Overlaps[i])
		}
	}
}

func TestCheckpointEmptyOverlaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.dwc")
	if err := WriteCheckpoint(path, 1, core.OverlapCheckpoint{NextRead: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRead != 3 || len(got.Overlaps) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestCheckpointCorruption: every corruption class must surface as a
// CheckpointError with its stable code — the contract the recovery
// path and the HTTP error envelope depend on.
func TestCheckpointCorruption(t *testing.T) {
	write := func(t *testing.T) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "checkpoint.dwc")
		if err := WriteCheckpoint(path, 42, testCheckpoint()); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		fp      uint64
		wantErr string
	}{
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }, 42, CodeBadMagic},
		{"bad version", func(d []byte) []byte { d[4] = 99; return d }, 42, CodeBadVersion},
		{"truncated header", func(d []byte) []byte { return d[:10] }, 42, CodeTruncated},
		{"truncated records", func(d []byte) []byte { return d[:len(d)-20] }, 42, CodeTruncated},
		{"payload bit flip", func(d []byte) []byte { d[40] ^= 0x01; return d }, 42, CodeChecksumMismatch},
		{"wrong fingerprint", func(d []byte) []byte { return d }, 43, CodePayloadMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, data := write(t)
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadCheckpoint(path, tc.fp)
			if err == nil {
				t.Fatal("corrupt checkpoint read back clean")
			}
			if !IsCheckpointError(err) {
				t.Fatalf("error %v is not a CheckpointError", err)
			}
			var ce *CheckpointError
			if !errors.As(err, &ce) || ce.Code != tc.wantErr {
				t.Errorf("code = %v, want %s", err, tc.wantErr)
			}
		})
	}
}

func TestReadsFingerprintSensitivity(t *testing.T) {
	a := []dna.Seq{dna.Seq("ACGTACGT"), dna.Seq("TTTT")}
	b := []dna.Seq{dna.Seq("ACGTACGT"), dna.Seq("TTTA")}
	c := []dna.Seq{dna.Seq("ACGTACG"), dna.Seq("TTTTT")} // same concatenation length
	if ReadsFingerprint(a) == ReadsFingerprint(b) {
		t.Error("fingerprint blind to base change")
	}
	if ReadsFingerprint(a) == ReadsFingerprint(c) {
		t.Error("fingerprint blind to read boundaries")
	}
	if ReadsFingerprint(a) != ReadsFingerprint(a) {
		t.Error("fingerprint not deterministic")
	}
}
