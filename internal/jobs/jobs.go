// Package jobs runs the assembly pipeline as an asynchronous, durable
// service workload: clients submit a read set and get back a job ID
// they poll for per-stage progress and eventually stream results from.
// Jobs execute through a bounded executor, and the overlap stage — the
// dominant cost, per the paper's de novo accounting — writes periodic
// CRC-protected checkpoints, so a SIGTERM drain or crash resumes from
// the last read boundary instead of restarting, with output
// bit-identical to an uninterrupted run (the core overlap pass is
// deterministic in read order and deduplication).
//
// On-disk layout, one directory per job under the manager root:
//
//	<dir>/<id>/job.json        status snapshot (state is the commit point)
//	<dir>/<id>/reads.fa        submitted payload
//	<dir>/<id>/checkpoint.dwc  latest overlap checkpoint (see checkpoint.go)
//	<dir>/<id>/result.ndjson   overlap-kind result stream
//	<dir>/<id>/result.fa       assemble-kind contig FASTA
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
	"darwin/internal/obs"
	"darwin/internal/olc"
)

var (
	cSubmitted   = obs.Default.Counter("jobs/submitted")
	cCompleted   = obs.Default.Counter("jobs/completed")
	cFailed      = obs.Default.Counter("jobs/failed")
	cCanceled    = obs.Default.Counter("jobs/canceled")
	cResumed     = obs.Default.Counter("jobs/resumed")
	cCkptWritten = obs.Default.Counter("jobs/checkpoints_written")
	cCkptErrors  = obs.Default.Counter("jobs/checkpoint_errors")
	cCkptCorrupt = obs.Default.Counter("jobs/checkpoint_corrupt")
	gRunning     = obs.Default.Gauge("jobs/running")
	gPending     = obs.Default.Gauge("jobs/pending")

	// jobs/checkpoint fires on every checkpoint write attempt; an
	// injected error exercises the best-effort path (the write is
	// skipped and counted, the job keeps running).
	fpCheckpoint = faults.Default.Point("jobs/checkpoint")
)

// Kind is the pipeline a job runs.
type Kind string

const (
	// KindOverlap runs only the all-vs-all overlap stage.
	KindOverlap Kind = "overlap"
	// KindAssemble runs the full overlap-layout-consensus pipeline.
	KindAssemble Kind = "assemble"
)

// State is a job's lifecycle state. pending and running survive a
// restart (Recover resumes them); done, failed, and canceled are
// terminal.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Params are the resolved pipeline parameters a job runs with —
// resolved, because job.json must replay them exactly on resume.
type Params struct {
	MinOverlap   int    `json:"min_overlap"`
	PolishRounds int    `json:"polish_rounds"`
	MinContig    int    `json:"min_contig"`
	Reorder      string `json:"reorder"`
}

// DefaultParams mirrors the assembly CLI defaults.
func DefaultParams() Params {
	return Params{MinOverlap: 1000, PolishRounds: 2, Reorder: "off"}
}

// StageProgress is one pipeline stage's progress counter.
type StageProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// ResultMeta summarizes a finished job's output.
type ResultMeta struct {
	Overlaps int                `json:"overlaps,omitempty"`
	Contigs  int                `json:"contigs,omitempty"`
	TotalLen int                `json:"total_len,omitempty"`
	N50      int                `json:"n50,omitempty"`
	Reorder  *olc.ReorderReport `json:"reorder,omitempty"`
}

// Status is a job's externally visible snapshot; it is also the
// persisted job.json document.
type Status struct {
	ID          string                   `json:"id"`
	Kind        Kind                     `json:"kind"`
	State       State                    `json:"state"`
	Reads       int                      `json:"reads"`
	Params      Params                   `json:"params"`
	CreatedAt   time.Time                `json:"created_at"`
	StartedAt   *time.Time               `json:"started_at,omitempty"`
	FinishedAt  *time.Time               `json:"finished_at,omitempty"`
	Error       string                   `json:"error,omitempty"`
	ErrorCode   string                   `json:"error_code,omitempty"`
	Stages      map[string]StageProgress `json:"stages,omitempty"`
	Resumed     bool                     `json:"resumed,omitempty"`
	ResumeRead  int                      `json:"resume_read,omitempty"`
	Checkpoints int                      `json:"checkpoints"`
	Result      *ResultMeta              `json:"result,omitempty"`
}

// clone deep-copies the snapshot (the stages map is the only shared
// structure).
func (s Status) clone() Status {
	if s.Stages != nil {
		m := make(map[string]StageProgress, len(s.Stages))
		for k, v := range s.Stages {
			m[k] = v
		}
		s.Stages = m
	}
	if s.Result != nil {
		r := *s.Result
		s.Result = &r
	}
	return s
}

// Sentinel errors the HTTP layer maps to structured envelope codes.
var (
	ErrNotFound  = errors.New("jobs: job not found")
	ErrDraining  = errors.New("jobs: manager is draining")
	ErrQueueFull = errors.New("jobs: too many active jobs")
)

// Config sizes a Manager.
type Config struct {
	// Dir is the persistence root (required; created if absent).
	Dir string
	// Concurrency bounds simultaneously executing jobs (default 1 —
	// one all-vs-all pass saturates the engine's own parallelism).
	Concurrency int
	// CheckpointEvery is the overlap-stage checkpoint cadence in reads
	// (default 16).
	CheckpointEvery int
	// MaxActive bounds non-terminal jobs (default 16).
	MaxActive int
	// Logger receives job lifecycle logs (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 16
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// job is the in-memory half of one job.
type job struct {
	mu           sync.Mutex
	st           Status
	reads        []dna.Seq
	fingerprint  uint64
	cancel       context.CancelFunc
	userCanceled bool
}

// Manager owns the job set: submission, the bounded executor,
// persistence, recovery, and drain.
type Manager struct {
	cfg Config
	log *slog.Logger

	mu   sync.Mutex
	jobs map[string]*job

	sem      chan struct{}
	wg       sync.WaitGroup
	baseCtx  context.Context
	stopJobs context.CancelFunc
	draining bool
}

// New creates a Manager rooted at cfg.Dir. Call Recover to resume
// jobs a previous process left behind.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobs: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:      cfg,
		log:      cfg.Logger,
		jobs:     make(map[string]*job),
		sem:      make(chan struct{}, cfg.Concurrency),
		baseCtx:  ctx,
		stopJobs: cancel,
	}, nil
}

// dirOf returns a job's directory.
func (m *Manager) dirOf(id string) string { return filepath.Join(m.cfg.Dir, id) }

// Submit persists a new job and enqueues it on the bounded executor.
func (m *Manager) Submit(kind Kind, recs []dna.Record, p Params) (Status, error) {
	if kind != KindOverlap && kind != KindAssemble {
		return Status{}, fmt.Errorf("jobs: unknown kind %q", kind)
	}
	if len(recs) == 0 {
		return Status{}, fmt.Errorf("jobs: empty read set")
	}
	if _, err := olc.ParseReorderMode(p.Reorder); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	active := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.st.State.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	if active >= m.cfg.MaxActive {
		m.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	m.mu.Unlock()

	id := "j" + obs.NewRequestID()
	dir := m.dirOf(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Status{}, err
	}
	pf, err := os.Create(filepath.Join(dir, "reads.fa"))
	if err != nil {
		return Status{}, err
	}
	if err := dna.WriteFASTA(pf, recs); err != nil {
		pf.Close()
		return Status{}, err
	}
	if err := pf.Close(); err != nil {
		return Status{}, err
	}

	seqs := make([]dna.Seq, len(recs))
	for i := range recs {
		seqs[i] = recs[i].Seq
	}
	j := &job{
		st: Status{
			ID: id, Kind: kind, State: StatePending, Reads: len(recs),
			Params: p, CreatedAt: time.Now().UTC(),
			Stages: map[string]StageProgress{},
		},
		reads:       seqs,
		fingerprint: ReadsFingerprint(seqs),
	}
	if err := m.persist(j); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.mu.Unlock()
	cSubmitted.Inc()
	gPending.Add(1)
	m.log.Info("job submitted", "job", id, "kind", kind, "reads", len(recs))
	m.start(j, nil)
	return j.snapshot(), nil
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns all known jobs, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].CreatedAt.Equal(out[b].CreatedAt) {
			return out[a].CreatedAt.After(out[b].CreatedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Cancel requests cancellation. Canceling a terminal job is a no-op
// returning its final status; the executor slot of a running job is
// freed as soon as the pipeline observes the canceled context.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	terminal := j.st.State.Terminal()
	if !terminal {
		j.userCanceled = true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if !terminal && cancel != nil {
		cancel()
	}
	return j.snapshot(), nil
}

// ResultFile returns the result stream's path and content type for a
// completed job.
func (m *Manager) ResultFile(id string) (path, contentType string, err error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return "", "", ErrNotFound
	}
	st := j.snapshot()
	if st.State != StateDone {
		return "", "", fmt.Errorf("jobs: job %s is %s, not done", id, st.State)
	}
	switch st.Kind {
	case KindOverlap:
		return filepath.Join(m.dirOf(id), "result.ndjson"), "application/x-ndjson", nil
	default:
		return filepath.Join(m.dirOf(id), "result.fa"), "text/x-fasta", nil
	}
}

// Recover scans the persistence root and restarts every job a prior
// process left pending or running, resuming the overlap stage from its
// checkpoint when one verifies. A corrupt checkpoint fails the job
// with ErrorCode "checkpoint_corrupt" rather than silently recomputing
// — the operator decides whether to resubmit.
func (m *Manager) Recover() (restarted int, err error) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		st, rerr := readStatus(filepath.Join(m.dirOf(id), "job.json"))
		if rerr != nil {
			m.log.Warn("job recovery: unreadable job.json", "job", id, "err", rerr)
			continue
		}
		j := &job{st: st}
		if j.st.Stages == nil {
			j.st.Stages = map[string]StageProgress{}
		}
		m.mu.Lock()
		m.jobs[id] = j
		m.mu.Unlock()
		if st.State.Terminal() {
			continue
		}
		// Resumable: reload the payload and the checkpoint.
		recs, lerr := readFASTAFile(filepath.Join(m.dirOf(id), "reads.fa"))
		if lerr != nil {
			m.failJob(j, lerr, "")
			continue
		}
		j.reads = make([]dna.Seq, len(recs))
		for i := range recs {
			j.reads[i] = recs[i].Seq
		}
		j.fingerprint = ReadsFingerprint(j.reads)
		var resume *core.OverlapCheckpoint
		ckptPath := filepath.Join(m.dirOf(id), "checkpoint.dwc")
		if _, serr := os.Stat(ckptPath); serr == nil {
			c, cerr := ReadCheckpoint(ckptPath, j.fingerprint)
			if cerr != nil {
				cCkptCorrupt.Inc()
				m.failJob(j, cerr, "checkpoint_corrupt")
				m.log.Warn("job recovery: corrupt checkpoint", "job", id, "err", cerr)
				continue
			}
			resume = c
			j.mu.Lock()
			j.st.Resumed = true
			j.st.ResumeRead = c.NextRead
			j.mu.Unlock()
			cResumed.Inc()
		}
		j.mu.Lock()
		j.st.State = StatePending
		j.mu.Unlock()
		gPending.Add(1)
		if resume != nil {
			m.log.Info("job resumed from checkpoint", "job", id, "next_read", resume.NextRead)
		} else {
			m.log.Info("job restarted from scratch", "job", id)
		}
		m.start(j, resume)
		restarted++
	}
	return restarted, nil
}

// Drain stops accepting jobs, cancels running ones (their final
// checkpoints land at the cancellation boundary), and waits for the
// executor to empty, bounded by ctx.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.stopJobs()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
	}
}

// start launches a job's goroutine: wait for an executor slot, run.
// The context is parented on the manager's lifetime, so Drain cancels
// every waiter and runner at once.
func (m *Manager) start(j *job, resume *core.OverlapCheckpoint) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		select {
		case m.sem <- struct{}{}:
		case <-ctx.Done():
			gPending.Add(-1)
			m.finishInterrupted(j)
			return
		}
		defer func() { <-m.sem }()
		gPending.Add(-1)
		gRunning.Add(1)
		defer gRunning.Add(-1)
		m.execute(ctx, j, resume)
	}()
}

// execute runs the pipeline for one job that holds an executor slot.
func (m *Manager) execute(ctx context.Context, j *job, resume *core.OverlapCheckpoint) {
	j.mu.Lock()
	now := time.Now().UTC()
	j.st.State = StateRunning
	j.st.StartedAt = &now
	id, kind, p := j.st.ID, j.st.Kind, j.st.Params
	reads := j.reads
	j.mu.Unlock()
	if err := m.persist(j); err != nil {
		m.failJob(j, err, "")
		return
	}

	// The job ID is the request identity of the whole execution: the
	// span tree and every log line carry it, exactly as X-Request-ID
	// rides a map request.
	span := obs.NewRequestSpan(id, "job "+string(kind))
	span.SetLabel("job_id", id)
	span.SetLabel("kind", string(kind))
	defer span.End()
	ctx = obs.ContextWithSpan(ctx, span)

	mode, _ := olc.ParseReorderMode(p.Reorder)
	opts := []olc.Option{
		olc.WithMinOverlap(p.MinOverlap),
		olc.WithPolishRounds(p.PolishRounds),
		olc.WithMinContig(p.MinContig),
		olc.WithReorder(mode),
		olc.WithProgress(func(stage string, done, total int) {
			j.mu.Lock()
			j.st.Stages[stage] = StageProgress{Done: done, Total: total}
			j.mu.Unlock()
		}),
		olc.WithCheckpoint(m.cfg.CheckpointEvery, resume, m.saver(j)),
	}

	var err error
	var meta ResultMeta
	switch kind {
	case KindOverlap:
		var ovs []core.Overlap
		ovs, _, err = olc.Overlap(ctx, reads, opts...)
		if err == nil {
			meta.Overlaps = len(ovs)
			err = writeOverlapResult(filepath.Join(m.dirOf(id), "result.ndjson"), ovs)
		}
	case KindAssemble:
		var asm *olc.Assembly
		asm, err = olc.Assemble(ctx, reads, opts...)
		if err == nil {
			meta.Overlaps = len(asm.Overlaps)
			meta.Contigs = len(asm.Contigs)
			meta.TotalLen = asm.Stats.TotalLen
			meta.N50 = asm.Stats.N50
			meta.Reorder = asm.Reorder
			err = writeFASTAFile(filepath.Join(m.dirOf(id), "result.fa"), asm.Contigs)
		}
	}

	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			m.finishInterrupted(j)
			return
		}
		m.failJob(j, err, "")
		return
	}

	j.mu.Lock()
	fin := time.Now().UTC()
	j.st.State = StateDone
	j.st.FinishedAt = &fin
	j.st.Result = &meta
	j.reads = nil
	j.mu.Unlock()
	cCompleted.Inc()
	if perr := m.persist(j); perr != nil {
		m.log.Error("job done but status persist failed", "job", id, "err", perr)
	}
	m.log.Info("job done", "job", id, "kind", kind)
}

// finishInterrupted resolves a job whose context was canceled: a user
// cancel becomes terminal state canceled; a drain leaves the persisted
// state running/pending so the next process's Recover resumes it.
func (m *Manager) finishInterrupted(j *job) {
	j.mu.Lock()
	user := j.userCanceled
	if user {
		now := time.Now().UTC()
		j.st.State = StateCanceled
		j.st.FinishedAt = &now
		j.reads = nil
	}
	id := j.st.ID
	j.mu.Unlock()
	if user {
		cCanceled.Inc()
		if err := m.persist(j); err != nil {
			m.log.Error("canceled job persist failed", "job", id, "err", err)
		}
		m.log.Info("job canceled", "job", id)
	} else {
		m.log.Info("job interrupted by drain, checkpoint retained", "job", id)
	}
}

// failJob moves a job to failed with an optional structured code.
func (m *Manager) failJob(j *job, err error, code string) {
	if code == "" && IsCheckpointError(err) {
		code = "checkpoint_corrupt"
	}
	j.mu.Lock()
	now := time.Now().UTC()
	j.st.State = StateFailed
	j.st.FinishedAt = &now
	j.st.Error = err.Error()
	j.st.ErrorCode = code
	id := j.st.ID
	j.reads = nil
	j.mu.Unlock()
	cFailed.Inc()
	if perr := m.persist(j); perr != nil {
		m.log.Error("failed job persist failed", "job", id, "err", perr)
	}
	m.log.Warn("job failed", "job", id, "err", err)
}

// saver returns the overlap checkpoint callback for one job:
// best-effort (a write failure is counted and logged, never fatal) and
// fault-injectable at jobs/checkpoint.
func (m *Manager) saver(j *job) func(core.OverlapCheckpoint) error {
	path := filepath.Join(m.dirOf(j.st.ID), "checkpoint.dwc")
	return func(c core.OverlapCheckpoint) error {
		if err := fpCheckpoint.Fire(); err != nil {
			cCkptErrors.Inc()
			m.log.Warn("checkpoint write skipped", "job", j.st.ID, "err", err)
			return nil
		}
		if err := WriteCheckpoint(path, j.fingerprint, c); err != nil {
			cCkptErrors.Inc()
			m.log.Warn("checkpoint write failed", "job", j.st.ID, "err", err)
			return nil
		}
		cCkptWritten.Inc()
		j.mu.Lock()
		j.st.Checkpoints++
		j.mu.Unlock()
		return nil
	}
}

// persist atomically writes the job's status snapshot to job.json.
func (m *Manager) persist(j *job) error {
	st := j.snapshot()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(m.dirOf(st.ID), "job.json"), data)
}

func (j *job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.clone()
}

// writeFileAtomic writes via temp-file + rename in path's directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func readStatus(path string) (Status, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

func readFASTAFile(path string) ([]dna.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dna.ReadFASTA(f)
}

func writeFASTAFile(path string, recs []dna.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dna.WriteFASTA(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// overlapLine is the NDJSON result record for one overlap.
type overlapLine struct {
	Target      int  `json:"target"`
	Query       int  `json:"query"`
	QueryRev    bool `json:"query_rev"`
	TargetStart int  `json:"target_start"`
	TargetEnd   int  `json:"target_end"`
	QueryStart  int  `json:"query_start"`
	QueryEnd    int  `json:"query_end"`
	Score       int  `json:"score"`
}

func writeOverlapResult(path string, ovs []core.Overlap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := range ovs {
		o := &ovs[i]
		if err := enc.Encode(overlapLine{
			Target: o.Target, Query: o.Query, QueryRev: o.QueryRev,
			TargetStart: o.TargetStart, TargetEnd: o.TargetEnd,
			QueryStart: o.QueryStart, QueryEnd: o.QueryEnd, Score: o.Score,
		}); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
