package jobs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"darwin/internal/core"
	"darwin/internal/dna"
)

// Checkpoint file format (little-endian, CRC-32C protected, written
// atomically via temp-file + rename — the indexfile idiom):
//
//	[0:4)   magic "DWCP"
//	[4:8)   version u32 (currently 1)
//	[8:16)  reads fingerprint u64 — FNV-64a over the length-prefixed
//	        read set, so a checkpoint can never resume a different
//	        payload
//	[16:24) next read u64
//	[24:32) overlap count u64
//	then count records of 8 u64/i64 fields each
//	        (target, query, rev, tStart, tEnd, qStart, qEnd, score)
//	last 4  CRC-32C (Castagnoli) over bytes [4 : len−4)
const (
	ckptMagic   = "DWCP"
	ckptVersion = 1
	ckptHdrLen  = 32
	ckptRecLen  = 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stable structured error codes for rejected checkpoint files. The
// server maps any of them to the wire code "checkpoint_corrupt".
const (
	CodeBadMagic         = "bad_magic"
	CodeBadVersion       = "bad_version"
	CodeTruncated        = "truncated"
	CodeChecksumMismatch = "checksum_mismatch"
	CodePayloadMismatch  = "payload_mismatch"
)

// CheckpointError is a structured checkpoint rejection: a stable Code
// (one of the Code* constants), the offending path, and human detail.
type CheckpointError struct {
	Code   string
	Path   string
	Detail string
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("jobs: checkpoint %s: %s (%s)", e.Path, e.Detail, e.Code)
}

// IsCheckpointError reports whether err (or anything it wraps) is a
// structured checkpoint rejection.
func IsCheckpointError(err error) bool {
	var ce *CheckpointError
	return errors.As(err, &ce)
}

func ckptErr(code, path, format string, args ...any) *CheckpointError {
	return &CheckpointError{Code: code, Path: path, Detail: fmt.Sprintf(format, args...)}
}

// ReadsFingerprint hashes a read set (FNV-64a over length-prefixed
// bases) for checkpoint↔payload binding.
func ReadsFingerprint(reads []dna.Seq) uint64 {
	h := fnv.New64a()
	var lenBuf [4]byte
	for _, r := range reads {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(r)))
		h.Write(lenBuf[:])
		h.Write(r)
	}
	return h.Sum64()
}

// WriteCheckpoint atomically persists an overlap checkpoint bound to
// the given read fingerprint.
func WriteCheckpoint(path string, fingerprint uint64, c core.OverlapCheckpoint) error {
	buf := make([]byte, ckptHdrLen+ckptRecLen*len(c.Overlaps)+4)
	copy(buf[0:4], ckptMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[4:8], ckptVersion)
	le.PutUint64(buf[8:16], fingerprint)
	le.PutUint64(buf[16:24], uint64(c.NextRead))
	le.PutUint64(buf[24:32], uint64(len(c.Overlaps)))
	off := ckptHdrLen
	for i := range c.Overlaps {
		ov := &c.Overlaps[i]
		rev := uint64(0)
		if ov.QueryRev {
			rev = 1
		}
		for _, v := range [8]uint64{
			uint64(ov.Target), uint64(ov.Query), rev,
			uint64(int64(ov.TargetStart)), uint64(int64(ov.TargetEnd)),
			uint64(int64(ov.QueryStart)), uint64(int64(ov.QueryEnd)),
			uint64(int64(ov.Score)),
		} {
			le.PutUint64(buf[off:off+8], v)
			off += 8
		}
	}
	le.PutUint32(buf[off:off+4], crc32.Checksum(buf[4:off], castagnoli))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(buf); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCheckpoint loads and verifies a checkpoint: magic, version,
// CRC-32C, and the binding to the caller's read fingerprint. Failures
// are structured CheckpointErrors.
func ReadCheckpoint(path string, fingerprint uint64) (*core.OverlapCheckpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 || string(buf[0:4]) != ckptMagic {
		return nil, ckptErr(CodeBadMagic, path, "not a checkpoint file")
	}
	if len(buf) < ckptHdrLen+4 {
		return nil, ckptErr(CodeTruncated, path, "%d bytes, want at least %d", len(buf), ckptHdrLen+4)
	}
	le := binary.LittleEndian
	if v := le.Uint32(buf[4:8]); v != ckptVersion {
		return nil, ckptErr(CodeBadVersion, path, "version %d, want %d", v, ckptVersion)
	}
	count := le.Uint64(buf[24:32])
	want := ckptHdrLen + ckptRecLen*int(count) + 4
	if len(buf) != want {
		return nil, ckptErr(CodeTruncated, path, "%d bytes, want %d for %d overlaps", len(buf), want, count)
	}
	stored := le.Uint32(buf[len(buf)-4:])
	if got := crc32.Checksum(buf[4:len(buf)-4], castagnoli); got != stored {
		return nil, ckptErr(CodeChecksumMismatch, path, "crc32c %08x, stored %08x", got, stored)
	}
	if fp := le.Uint64(buf[8:16]); fp != fingerprint {
		return nil, ckptErr(CodePayloadMismatch, path, "reads fingerprint %016x, want %016x", fp, fingerprint)
	}
	c := &core.OverlapCheckpoint{
		NextRead: int(le.Uint64(buf[16:24])),
		Overlaps: make([]core.Overlap, count),
	}
	off := ckptHdrLen
	for i := range c.Overlaps {
		f := func() int64 {
			v := int64(le.Uint64(buf[off : off+8]))
			off += 8
			return v
		}
		ov := &c.Overlaps[i]
		ov.Target = int(f())
		ov.Query = int(f())
		ov.QueryRev = f() != 0
		ov.TargetStart = int(f())
		ov.TargetEnd = int(f())
		ov.QueryStart = int(f())
		ov.QueryEnd = int(f())
		ov.Score = int(f())
	}
	return c, nil
}
