// Package sam writes read alignments in the SAM format (the standard
// interchange format of reference-guided assembly pipelines like
// BWA-MEM's, which Darwin replaces). Only the subset needed to emit
// Darwin's alignments is implemented: header @HD/@SQ/@PG lines and
// single-segment records with soft-clipped CIGARs.
package sam

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"darwin/internal/align"
	"darwin/internal/dna"
)

// Flag bits used by this writer.
const (
	FlagReverse  = 0x10
	FlagUnmapped = 0x4
)

// Record is one SAM alignment line. The JSON tags define the wire
// schema the darwind service streams as NDJSON — one Record object
// per alignment, field-for-field the SAM columns.
type Record struct {
	QName string `json:"qname"`
	Flag  int    `json:"flag"`
	RName string `json:"rname,omitempty"`
	// Pos is the 0-based reference start (written 1-based).
	Pos   int      `json:"pos"`
	MapQ  int      `json:"mapq"`
	Cigar string   `json:"cigar,omitempty"`
	Seq   dna.Seq  `json:"seq,omitempty"`
	Tags  []string `json:"tags,omitempty"`
}

// Line renders the record as one tab-separated SAM line (no trailing
// newline), applying the unmapped-record column conventions. Writer
// uses it for files; the darwind service uses it to stream records
// without buffering a whole response.
func (r Record) Line() string {
	rname, cigar := r.RName, r.Cigar
	pos := r.Pos + 1
	if r.Flag&FlagUnmapped != 0 {
		rname, cigar, pos = "*", "*", 0
	}
	if rname == "" {
		rname = "*"
	}
	if cigar == "" {
		cigar = "*"
	}
	seq := "*"
	if len(r.Seq) > 0 {
		seq = string(r.Seq)
	}
	line := strings.Join([]string{
		r.QName, strconv.Itoa(r.Flag), rname, strconv.Itoa(pos),
		strconv.Itoa(r.MapQ), cigar, "*", "0", "0", seq, "*",
	}, "\t")
	if len(r.Tags) > 0 {
		line += "\t" + strings.Join(r.Tags, "\t")
	}
	return line
}

// Writer emits a SAM stream.
type Writer struct {
	w      *bufio.Writer
	wrote  bool
	refs   []RefSeq
	pgLine string
}

// RefSeq names one reference sequence for the @SQ header.
type RefSeq struct {
	Name string
	Len  int
}

// NewWriter creates a writer that will emit a header for the given
// references on the first record.
func NewWriter(w io.Writer, refs []RefSeq, program string) *Writer {
	return &Writer{w: bufio.NewWriter(w), refs: refs, pgLine: program}
}

func (s *Writer) writeHeader() error {
	if _, err := fmt.Fprintf(s.w, "@HD\tVN:1.6\tSO:unknown\n"); err != nil {
		return err
	}
	for _, r := range s.refs {
		if _, err := fmt.Fprintf(s.w, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Len); err != nil {
			return err
		}
	}
	if s.pgLine != "" {
		if _, err := fmt.Fprintf(s.w, "@PG\tID:%s\tPN:%s\n", s.pgLine, s.pgLine); err != nil {
			return err
		}
	}
	return nil
}

// Write emits one record (and the header first, once).
func (s *Writer) Write(r Record) error {
	if !s.wrote {
		if err := s.writeHeader(); err != nil {
			return fmt.Errorf("sam: writing header: %w", err)
		}
		s.wrote = true
	}
	if _, err := fmt.Fprintln(s.w, r.Line()); err != nil {
		return fmt.Errorf("sam: writing record: %w", err)
	}
	return nil
}

// HeaderLines renders the @HD/@SQ/@PG header for the given references
// (no trailing newline on the last line), for streamers that bypass
// Writer.
func HeaderLines(refs []RefSeq, program string) []string {
	lines := []string{"@HD\tVN:1.6\tSO:unknown"}
	for _, r := range refs {
		lines = append(lines, fmt.Sprintf("@SQ\tSN:%s\tLN:%d", r.Name, r.Len))
	}
	if program != "" {
		lines = append(lines, fmt.Sprintf("@PG\tID:%s\tPN:%s", program, program))
	}
	return lines
}

// Flush flushes buffered output (writing the header if no records
// were emitted).
func (s *Writer) Flush() error {
	if !s.wrote {
		if err := s.writeHeader(); err != nil {
			return err
		}
		s.wrote = true
	}
	return s.w.Flush()
}

// CigarWithClips renders an alignment path as a SAM CIGAR with soft
// clips for the unaligned query prefix/suffix.
func CigarWithClips(c align.Cigar, queryStart, queryEnd, queryLen int) string {
	var b strings.Builder
	if queryStart > 0 {
		fmt.Fprintf(&b, "%dS", queryStart)
	}
	b.WriteString(c.String())
	if tail := queryLen - queryEnd; tail > 0 {
		fmt.Fprintf(&b, "%dS", tail)
	}
	return b.String()
}
