package sam

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"darwin/internal/align"
	"darwin/internal/dna"
)

func TestWriterHeaderAndRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "chr1", Len: 1000}}, "darwin")
	err := w.Write(Record{
		QName: "read1",
		Flag:  FlagReverse,
		RName: "chr1",
		Pos:   99,
		MapQ:  60,
		Cigar: "10M",
		Seq:   dna.NewSeq("ACGTACGTAC"),
		Tags:  []string{"AS:i:10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "@HD") || !strings.Contains(lines[1], "SN:chr1\tLN:1000") {
		t.Errorf("bad header:\n%s", out)
	}
	fields := strings.Split(lines[3], "\t")
	if fields[0] != "read1" || fields[1] != "16" || fields[3] != "100" || fields[5] != "10M" {
		t.Errorf("bad record: %v", fields)
	}
	if fields[len(fields)-1] != "AS:i:10" {
		t.Errorf("missing tag: %v", fields)
	}
}

func TestWriterUnmapped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, nil, "")
	if err := w.Write(Record{QName: "r", Flag: FlagUnmapped, Seq: dna.NewSeq("ACGT")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.Split(strings.TrimSpace(buf.String()), "\n")
	rec := strings.Split(line[len(line)-1], "\t")
	if rec[2] != "*" || rec[3] != "0" || rec[5] != "*" {
		t.Errorf("unmapped record fields: %v", rec)
	}
}

func TestWriterHeaderOnlyOnFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "x", Len: 5}}, "p")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@SQ\tSN:x") {
		t.Error("header missing after flush with no records")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.after -= len(p)
	if f.after < 0 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestWriterPropagatesErrors(t *testing.T) {
	w := NewWriter(&failWriter{after: 0}, []RefSeq{{Name: "x", Len: 10}}, "p")
	err := w.Write(Record{QName: "r", RName: "x", Cigar: "1M", Seq: dna.NewSeq("A")})
	if err == nil {
		// The bufio layer may absorb the first write; Flush must fail.
		if err = w.Flush(); err == nil {
			t.Error("expected an error from a failing sink")
		}
	}
}

func TestCigarWithClips(t *testing.T) {
	c := align.Cigar{{Op: align.OpMatch, Len: 8}, {Op: align.OpIns, Len: 2}}
	if got := CigarWithClips(c, 3, 13, 20); got != "3S8M2I7S" {
		t.Errorf("cigar = %s, want 3S8M2I7S", got)
	}
	if got := CigarWithClips(c, 0, 10, 10); got != "8M2I" {
		t.Errorf("cigar = %s, want 8M2I", got)
	}
}

func TestRecordLine(t *testing.T) {
	r := Record{
		QName: "read1", Flag: FlagReverse, RName: "chr1", Pos: 99, MapQ: 60,
		Cigar: "4M", Seq: dna.NewSeq("ACGT"), Tags: []string{"AS:i:4"},
	}
	want := "read1\t16\tchr1\t100\t60\t4M\t*\t0\t0\tACGT\t*\tAS:i:4"
	if got := r.Line(); got != want {
		t.Errorf("Line() = %q, want %q", got, want)
	}
	// Line and Writer.Write must agree byte-for-byte.
	var buf bytes.Buffer
	w := NewWriter(&buf, nil, "")
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got := lines[len(lines)-1]; got != want {
		t.Errorf("Writer line %q != Line() %q", got, want)
	}
	// Zero-value columns render as SAM missing markers.
	u := Record{QName: "r", Flag: FlagUnmapped, Seq: dna.NewSeq("AC")}
	fields := strings.Split(u.Line(), "\t")
	if fields[2] != "*" || fields[3] != "0" || fields[5] != "*" {
		t.Errorf("unmapped Line fields: %v", fields)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	r := Record{
		QName: "read1", Flag: 16, RName: "chr1", Pos: 42, MapQ: 60,
		Cigar: "5M", Seq: dna.NewSeq("ACGTN"), Tags: []string{"AS:i:5", "ft:i:99"},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	// dna.Seq must serialize as a readable base string, not base64.
	if !strings.Contains(string(data), `"seq":"ACGTN"`) {
		t.Errorf("sequence not encoded as a base string: %s", data)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip mismatch:\n  %+v\nvs\n  %+v", r, back)
	}
}

func TestHeaderLines(t *testing.T) {
	lines := HeaderLines([]RefSeq{{Name: "chr1", Len: 100}, {Name: "chr2", Len: 50}}, "darwind")
	want := []string{
		"@HD\tVN:1.6\tSO:unknown",
		"@SQ\tSN:chr1\tLN:100",
		"@SQ\tSN:chr2\tLN:50",
		"@PG\tID:darwind\tPN:darwind",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("HeaderLines = %q, want %q", lines, want)
	}
	// Writer's header must be exactly these lines.
	var buf bytes.Buffer
	w := NewWriter(&buf, []RefSeq{{Name: "chr1", Len: 100}, {Name: "chr2", Len: 50}}, "darwind")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Writer header %q != HeaderLines %q", got, want)
	}
}
