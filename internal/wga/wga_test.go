package wga

import (
	"testing"

	"darwin/internal/dna"
	"darwin/internal/genome"
)

func TestAlignDivergedGenomes(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 100000, GC: 0.45, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	sample, _, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{
		SNPRate: 0.02, SmallIndelRate: 0.002, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks, stats, err := Align(g.Seq, sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no alignment blocks")
	}
	if stats.Candidates == 0 || stats.Tiles == 0 {
		t.Errorf("stats not recorded: %+v", stats)
	}
	cov := Coverage(len(g.Seq), blocks)
	if cov < 0.95 {
		t.Errorf("reference coverage = %.3f, want ≥ 0.95", cov)
	}
	for i := range blocks {
		q := sample
		if blocks[i].QueryRev {
			q = dna.RevComp(sample)
		}
		if err := blocks[i].Result.Check(g.Seq, q); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if blocks[i].QueryRev {
			t.Errorf("unexpected reverse block with no inversions: %+v", blocks[i].Result)
		}
	}
}

// TestAlignDetectsInversion plants a large inversion and requires a
// reverse-strand block covering it — the structural-variant use case
// the paper motivates for long reads.
func TestAlignDetectsInversion(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 80000, GC: 0.45, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	sample := g.Seq.Clone()
	const invLo, invHi = 30000, 42000
	copy(sample[invLo:invHi], dna.RevComp(g.Seq[invLo:invHi]))

	blocks, _, err := Align(g.Seq, sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	foundRev := false
	for i := range blocks {
		b := &blocks[i]
		if b.QueryRev && b.Result.RefStart < invHi && b.Result.RefEnd > invLo &&
			b.Result.RefEnd-b.Result.RefStart > (invHi-invLo)/2 {
			foundRev = true
		}
	}
	if !foundRev {
		t.Errorf("no reverse-strand block covering the inversion; %d blocks", len(blocks))
		for i := range blocks {
			t.Logf("block %d: ref[%d,%d) rev=%v score=%d", i,
				blocks[i].Result.RefStart, blocks[i].Result.RefEnd, blocks[i].QueryRev, blocks[i].Result.Score)
		}
	}
	if cov := Coverage(len(g.Seq), blocks); cov < 0.9 {
		t.Errorf("coverage with inversion = %.3f, want ≥ 0.9", cov)
	}
}

func TestAlignIdenticalGenomes(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 50000, GC: 0.5, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := Align(g.Seq, g.Seq, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cov := Coverage(len(g.Seq), blocks); cov < 0.99 {
		t.Errorf("self-alignment coverage = %.3f, want ≈ 1", cov)
	}
}

func TestAlignErrors(t *testing.T) {
	if _, _, err := Align(nil, dna.NewSeq("ACGT"), DefaultConfig()); err == nil {
		t.Error("empty ref should error")
	}
	g, _ := genome.Generate(genome.Config{Length: 1000, GC: 0.5, Seed: 65})
	if _, _, err := Align(g.Seq, nil, DefaultConfig()); err == nil {
		t.Error("empty query should error")
	}
}

func TestCoverage(t *testing.T) {
	mk := func(lo, hi int) Block {
		var b Block
		b.Result.RefStart, b.Result.RefEnd = lo, hi
		return b
	}
	blocks := []Block{mk(0, 100), mk(50, 150), mk(300, 400)}
	if got := Coverage(1000, blocks); got != 0.25 {
		t.Errorf("coverage = %v, want 0.25", got)
	}
	if got := Coverage(1000, nil); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}
