package wga

import "sort"

// Chain is an ordered set of collinear blocks — the "chains and nets"
// representation genome browsers consume from LASTZ-class pipelines.
// Blocks in a chain are same-strand, non-overlapping, and strictly
// increasing in both reference and query coordinates.
type Chain struct {
	// Blocks is ordered by reference start.
	Blocks []Block
	// Score is the sum of member block scores minus gap penalties.
	Score int
	// QueryRev is the chain's strand.
	QueryRev bool
}

// RefSpan returns the chain's [start, end) extent on the reference.
func (c *Chain) RefSpan() (int, int) {
	return c.Blocks[0].Result.RefStart, c.Blocks[len(c.Blocks)-1].Result.RefEnd
}

// ChainConfig parameterizes block chaining.
type ChainConfig struct {
	// MaxGap is the largest reference/query gap bridged between
	// consecutive blocks.
	MaxGap int
	// GapCost is the per-base penalty applied to the larger of the two
	// gaps when linking blocks.
	GapCost float64
}

// DefaultChainConfig returns gap settings suited to megabase genomes.
func DefaultChainConfig() ChainConfig { return ChainConfig{MaxGap: 50_000, GapCost: 0.05} }

// BuildChains links collinear blocks greedily by dynamic programming
// over blocks sorted by reference start (the classical sparse chaining
// recurrence): chain score = block score + best predecessor score −
// gap cost. Each block joins exactly one chain; chains are returned by
// descending score.
func BuildChains(blocks []Block, cfg ChainConfig) []Chain {
	if cfg.MaxGap <= 0 {
		cfg.MaxGap = 50_000
	}
	idx := make([]int, len(blocks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return blocks[idx[a]].Result.RefStart < blocks[idx[b]].Result.RefStart
	})
	// DP over sorted order.
	score := make([]float64, len(blocks))
	prev := make([]int, len(blocks))
	for i := range prev {
		prev[i] = -1
	}
	for ai, a := range idx {
		ba := &blocks[a]
		score[a] = float64(ba.Result.Score)
		for bi := 0; bi < ai; bi++ {
			b := idx[bi]
			bb := &blocks[b]
			if bb.QueryRev != ba.QueryRev {
				continue
			}
			refGap := ba.Result.RefStart - bb.Result.RefEnd
			qGap := ba.Result.QueryStart - bb.Result.QueryEnd
			if refGap < 0 || qGap < 0 || refGap > cfg.MaxGap || qGap > cfg.MaxGap {
				continue
			}
			gap := refGap
			if qGap > gap {
				gap = qGap
			}
			cand := score[b] + float64(ba.Result.Score) - cfg.GapCost*float64(gap)
			if cand > score[a] {
				score[a] = cand
				prev[a] = b
			}
		}
	}
	// Extract chains: repeatedly take the best unused terminal block
	// and walk its predecessor links.
	used := make([]bool, len(blocks))
	order := make([]int, len(blocks))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return score[order[a]] > score[order[b]] })
	var chains []Chain
	for _, end := range order {
		if used[end] {
			continue
		}
		var members []int
		ok := true
		for at := end; at != -1; at = prev[at] {
			if used[at] {
				ok = false // tail already claimed by a stronger chain
				break
			}
			members = append(members, at)
		}
		if !ok {
			// Truncate at the claimed prefix instead of dropping.
			var trimmed []int
			for at := end; at != -1 && !used[at]; at = prev[at] {
				trimmed = append(trimmed, at)
			}
			members = trimmed
		}
		if len(members) == 0 {
			continue
		}
		ch := Chain{QueryRev: blocks[end].QueryRev}
		for i := len(members) - 1; i >= 0; i-- {
			m := members[i]
			used[m] = true
			ch.Blocks = append(ch.Blocks, blocks[m])
			ch.Score += blocks[m].Result.Score
		}
		chains = append(chains, ch)
	}
	sort.Slice(chains, func(a, b int) bool { return chains[a].Score > chains[b].Score })
	return chains
}
