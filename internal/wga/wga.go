// Package wga implements whole-genome alignment on top of D-SOFT and
// GACT — the Section 11 extension the paper sketches: "D-SOFT
// parameters can be tuned to mimic the seeding stage of LASTZ,
// single-tile GACT filter replaces the bottleneck stage of ungapped
// extension, and GACT [aligns] arbitrarily large genomes with small
// on-chip memory."
//
// Align produces local alignment blocks between two genomes (both
// query strands), each anchored by a D-SOFT candidate, filtered by the
// first-tile score, extended by GACT, and deduplicated by span
// overlap — the LASTZ-style chained-blocks output comparative
// genomics consumes.
package wga

import (
	"fmt"
	"sort"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/seedtable"
)

// Config parameterizes whole-genome alignment.
type Config struct {
	// SeedK is the seed size.
	SeedK int
	// Stride is the query seed sampling stride (whole-genome queries
	// use sparse seeding; LASTZ's seeding is similarly sparse).
	Stride int
	// Threshold is the D-SOFT base-count threshold h.
	Threshold int
	// BinSize is the D-SOFT band width.
	BinSize int
	// HTile is the first-tile score threshold (the ungapped-extension
	// replacement).
	HTile int
	// GACT holds tile parameters and scoring.
	GACT gact.Config
	// MinBlockLen discards blocks shorter than this on the query.
	MinBlockLen int
	// MaxCandidates bounds extension work.
	MaxCandidates int
	// ResetGap lets a diagonal band fire again after this many query
	// bases without hits, so several collinear blocks on one band
	// (e.g. segments flanking an inversion) are all seeded.
	ResetGap int
}

// DefaultConfig returns parameters suitable for megabase genomes at a
// few percent divergence.
//
// Scoring is blastn-like (match +2, mismatch −3, gap open 5, extend 2)
// rather than the read-mapping (1, −1, 1) scheme: whole-genome queries
// are unbounded, and (1, −1, 1) is supercritical for random DNA —
// local alignment scores drift upward even between unrelated
// sequences, so extension would creep indefinitely. Genome aligners
// like LASTZ use strong substitution/gap penalties for the same
// reason.
func DefaultConfig() Config {
	g := gact.DefaultConfig()
	g.Scoring = align.Simple(2, 3, 5)
	g.Scoring.GapExtend = 2
	return Config{
		SeedK:         12,
		Stride:        8,
		Threshold:     24,
		BinSize:       128,
		HTile:         90,
		GACT:          g,
		MinBlockLen:   300,
		MaxCandidates: 4096,
		ResetGap:      2048,
	}
}

// Block is one local alignment block between the genomes.
type Block struct {
	// Result is the alignment; query coordinates refer to the
	// reverse-complemented query when QueryRev is set.
	Result align.Result
	// QueryRev marks blocks on the query's reverse strand (e.g.
	// inversions).
	QueryRev bool
}

// Stats summarizes the work performed.
type Stats struct {
	Candidates  int
	PassedHTile int
	Tiles       int
	Blocks      int
}

// Align aligns query against ref and returns deduplicated blocks
// sorted by reference start.
func Align(ref, query dna.Seq, cfg Config) ([]Block, Stats, error) {
	var stats Stats
	if len(ref) == 0 || len(query) == 0 {
		return nil, stats, fmt.Errorf("wga: empty genome (ref %d, query %d)", len(ref), len(query))
	}
	table, err := seedtable.Build(ref, cfg.SeedK, seedtable.DefaultOptions())
	if err != nil {
		return nil, stats, err
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	nSeeds := len(query)/cfg.Stride + 1
	filter, err := dsoft.New(table, dsoft.Config{
		N:        nSeeds,
		H:        cfg.Threshold,
		BinSize:  cfg.BinSize,
		Stride:   cfg.Stride,
		ResetGap: cfg.ResetGap,
	})
	if err != nil {
		return nil, stats, err
	}
	g := cfg.GACT
	g.MinFirstTile = cfg.HTile
	engine, err := gact.NewEngine(&g)
	if err != nil {
		return nil, stats, err
	}

	var blocks []Block
	for _, rev := range []bool{false, true} {
		q := query
		if rev {
			q = dna.RevComp(q)
		}
		cands, st := filter.Query(q)
		stats.Candidates += st.Candidates
		if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
			cands = cands[:cfg.MaxCandidates]
		}
		// Skip candidates already covered by an accepted block on this
		// strand: whole-genome alignments are long, so this prunes the
		// bulk of redundant extensions cheaply.
		var accepted []Block
		for _, c := range cands {
			if coveredBy(accepted, c.RefPos, c.QueryPos) {
				continue
			}
			res, gst, err := engine.Extend(ref, q, c.RefPos, c.QueryPos)
			if err != nil {
				continue
			}
			stats.Tiles += gst.Tiles
			if res == nil {
				continue
			}
			stats.PassedHTile++
			if res.QueryEnd-res.QueryStart < cfg.MinBlockLen {
				continue
			}
			accepted = append(accepted, Block{Result: *res, QueryRev: rev})
		}
		blocks = append(blocks, accepted...)
	}
	blocks = dedupe(blocks)
	stats.Blocks = len(blocks)
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Result.RefStart < blocks[b].Result.RefStart })
	return blocks, stats, nil
}

// coveredBy reports whether the candidate point lies inside an
// accepted block (with its diagonal within the block's indel budget).
func coveredBy(blocks []Block, refPos, queryPos int) bool {
	for i := range blocks {
		r := &blocks[i].Result
		if refPos < r.RefStart || refPos > r.RefEnd || queryPos < r.QueryStart || queryPos > r.QueryEnd {
			continue
		}
		// Same diagonal neighbourhood?
		dCand := refPos - queryPos
		dBlock := r.RefStart - r.QueryStart
		drift := (r.RefEnd - r.RefStart) / 10
		if dCand >= dBlock-drift-256 && dCand <= dBlock+drift+256 {
			return true
		}
	}
	return false
}

// dedupe keeps the best-scoring block among groups that overlap more
// than half on both sequences (same strand).
func dedupe(blocks []Block) []Block {
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Result.Score > blocks[b].Result.Score })
	var out []Block
	for _, b := range blocks {
		dup := false
		for i := range out {
			o := &out[i]
			if o.QueryRev != b.QueryRev {
				continue
			}
			if overlapFrac(o.Result.RefStart, o.Result.RefEnd, b.Result.RefStart, b.Result.RefEnd) > 0.5 &&
				overlapFrac(o.Result.QueryStart, o.Result.QueryEnd, b.Result.QueryStart, b.Result.QueryEnd) > 0.5 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}

func overlapFrac(aLo, aHi, bLo, bHi int) float64 {
	lo, hi := max(aLo, bLo), min(aHi, bHi)
	if hi <= lo {
		return 0
	}
	span := min(aHi-aLo, bHi-bLo)
	if span <= 0 {
		return 0
	}
	return float64(hi-lo) / float64(span)
}

// Coverage returns the fraction of the reference covered by blocks.
func Coverage(refLen int, blocks []Block) float64 {
	type iv struct{ lo, hi int }
	ivs := make([]iv, 0, len(blocks))
	for i := range blocks {
		ivs = append(ivs, iv{blocks[i].Result.RefStart, blocks[i].Result.RefEnd})
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
	covered, end := 0, 0
	for _, v := range ivs {
		if v.hi <= end {
			continue
		}
		lo := max(v.lo, end)
		covered += v.hi - lo
		end = v.hi
	}
	return float64(covered) / float64(refLen)
}
