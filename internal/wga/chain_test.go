package wga

import (
	"testing"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/genome"
)

func mkBlock(refLo, refHi, qLo, qHi, score int, rev bool) Block {
	var b Block
	b.Result = align.Result{RefStart: refLo, RefEnd: refHi, QueryStart: qLo, QueryEnd: qHi, Score: score}
	b.QueryRev = rev
	return b
}

func TestBuildChainsCollinear(t *testing.T) {
	blocks := []Block{
		mkBlock(0, 1000, 0, 1000, 900, false),
		mkBlock(1200, 2000, 1150, 1950, 700, false),
		mkBlock(2100, 3000, 2050, 2950, 800, false),
		// An off-diagonal distractor that cannot chain (query goes
		// backwards).
		mkBlock(1500, 1800, 200, 500, 300, false),
	}
	chains := BuildChains(blocks, DefaultChainConfig())
	if len(chains) < 2 {
		t.Fatalf("chains = %d, want ≥ 2", len(chains))
	}
	main := chains[0]
	if len(main.Blocks) != 3 {
		t.Fatalf("main chain has %d blocks, want 3", len(main.Blocks))
	}
	lo, hi := main.RefSpan()
	if lo != 0 || hi != 3000 {
		t.Errorf("main chain span [%d,%d), want [0,3000)", lo, hi)
	}
	for i := 1; i < len(main.Blocks); i++ {
		if main.Blocks[i].Result.RefStart < main.Blocks[i-1].Result.RefEnd ||
			main.Blocks[i].Result.QueryStart < main.Blocks[i-1].Result.QueryEnd {
			t.Errorf("chain blocks not collinear at %d", i)
		}
	}
}

func TestBuildChainsStrandSeparation(t *testing.T) {
	blocks := []Block{
		mkBlock(0, 1000, 0, 1000, 900, false),
		mkBlock(1100, 2000, 1100, 2000, 800, true), // reverse strand
		mkBlock(2100, 3000, 2100, 3000, 850, false),
	}
	chains := BuildChains(blocks, DefaultChainConfig())
	for _, c := range chains {
		for _, b := range c.Blocks {
			if b.QueryRev != c.QueryRev {
				t.Fatalf("mixed strands inside a chain")
			}
		}
	}
}

func TestBuildChainsGapLimit(t *testing.T) {
	blocks := []Block{
		mkBlock(0, 1000, 0, 1000, 900, false),
		mkBlock(200_000, 201_000, 200_000, 201_000, 900, false), // too far
	}
	chains := BuildChains(blocks, ChainConfig{MaxGap: 10_000, GapCost: 0.05})
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2 (gap exceeds MaxGap)", len(chains))
	}
}

func TestBuildChainsEmpty(t *testing.T) {
	if got := BuildChains(nil, DefaultChainConfig()); len(got) != 0 {
		t.Errorf("chains of nothing = %d", len(got))
	}
}

// TestChainsOnRealAlignment: chaining the blocks of an SV-bearing
// genome pair must produce one dominant forward chain spanning most of
// the reference (the inversion stays its own reverse chain).
func TestChainsOnRealAlignment(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 80000, GC: 0.45, Seed: 201})
	if err != nil {
		t.Fatal(err)
	}
	sample := g.Seq.Clone()
	copy(sample[30000:40000], dna.RevComp(g.Seq[30000:40000]))
	blocks, _, err := Align(g.Seq, sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chains := BuildChains(blocks, DefaultChainConfig())
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	var fwdSpan int
	var haveRev bool
	for _, c := range chains {
		lo, hi := c.RefSpan()
		if !c.QueryRev && hi-lo > fwdSpan {
			fwdSpan = hi - lo
		}
		if c.QueryRev {
			haveRev = true
		}
	}
	if fwdSpan < 60000 {
		t.Errorf("dominant forward chain spans %d, want ≥ 60000", fwdSpan)
	}
	if !haveRev {
		t.Error("inversion did not produce a reverse chain")
	}
}
