package assembly

import (
	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/metrics"
	"darwin/internal/readsim"
)

// ReportedOverlap is a tool-agnostic overlap report: an unordered read
// pair and the detected overlap length.
type ReportedOverlap struct {
	A, B int
	Len  int
}

// FromCoreOverlaps converts Darwin overlap output.
func FromCoreOverlaps(ovs []core.Overlap) []ReportedOverlap {
	out := make([]ReportedOverlap, 0, len(ovs))
	for i := range ovs {
		a, b := ovs[i].Pair()
		out = append(out, ReportedOverlap{A: a, B: b, Len: ovs[i].Len()})
	}
	return out
}

// FromDalignerOverlaps converts baseline overlap output.
func FromDalignerOverlaps(ovs []baseline.Overlap) []ReportedOverlap {
	out := make([]ReportedOverlap, 0, len(ovs))
	for i := range ovs {
		a, b := ovs[i].A, ovs[i].B
		if a > b {
			a, b = b, a
		}
		out = append(out, ReportedOverlap{A: a, B: b, Len: ovs[i].AEnd - ovs[i].AStart})
	}
	return out
}

// TrueOverlaps returns the ground-truth overlapping pairs — template
// intersections of at least minLen bases (the paper uses 1 kbp) — with
// their true lengths.
func TrueOverlaps(reads []readsim.Read, minLen int) map[[2]int]int {
	truth := map[[2]int]int{}
	for a := 0; a < len(reads); a++ {
		for b := a + 1; b < len(reads); b++ {
			lo := max(reads[a].RefStart, reads[b].RefStart)
			hi := min(reads[a].RefEnd, reads[b].RefEnd)
			if hi-lo >= minLen {
				truth[[2]int{a, b}] = hi - lo
			}
		}
	}
	return truth
}

// EvaluateOverlaps scores reported overlaps against ground truth with
// the paper's criterion: a true overlap (≥ 1 kbp of shared template)
// counts as detected when at least detectFrac (the paper uses 0.80) of
// it is recovered; reported pairs with no qualifying template
// intersection are false positives.
func EvaluateOverlaps(reads []readsim.Read, reported []ReportedOverlap, minLen int, detectFrac float64) metrics.Confusion {
	truth := TrueOverlaps(reads, minLen)
	var c metrics.Confusion
	detected := map[[2]int]bool{}
	for _, r := range reported {
		key := [2]int{r.A, r.B}
		trueLen, ok := truth[key]
		if !ok {
			c.FP++
			continue
		}
		if float64(r.Len) >= detectFrac*float64(trueLen) {
			detected[key] = true
		}
	}
	c.TP = len(detected)
	c.FN = len(truth) - len(detected)
	return c
}
