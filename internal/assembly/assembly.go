// Package assembly runs the two applications of the paper's
// evaluation — reference-guided assembly (read mapping) and the
// overlap step of de novo assembly — over simulated reads with ground
// truth, computing sensitivity/precision exactly as Section 8 defines
// them:
//
//   - reference-guided: a true positive is a read aligned within 50 bp
//     of its ground-truth region;
//   - de novo: a true overlap is a read pair sharing ≥ 1 kbp of
//     template, counted as detected when at least 80% of that overlap
//     is recovered.
//
// The package also measures wall-clock stage times (filtration vs
// alignment) for the Figure 13 waterfall and collects workload
// statistics for the hardware estimator.
package assembly

import (
	"time"

	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/hw"
	"darwin/internal/metrics"
	"darwin/internal/readsim"
)

// MapOutcome is the best placement a mapper found for one read.
type MapOutcome struct {
	// Mapped is false if the mapper produced no placement.
	Mapped bool
	// RefStart, RefEnd delimit the placement on the forward reference.
	RefStart, RefEnd int
	// Times splits the mapper's software runtime by stage.
	Times baseline.StageTimes
}

// ReadMapper is a reference-guided mapper under evaluation.
type ReadMapper interface {
	// Name identifies the mapper in reports.
	Name() string
	// MapBest returns the best placement for a read (trying both
	// strands).
	MapBest(read dna.Seq) MapOutcome
}

// RefGuidedResult is the evaluation of one mapper on one read set.
type RefGuidedResult struct {
	Mapper    string
	Reads     int
	Confusion metrics.Confusion
	// ReadsPerSec is the measured software throughput.
	ReadsPerSec float64
	// Times aggregates stage times over all reads.
	Times baseline.StageTimes
}

// EvaluateRefGuided maps every read and scores placements against the
// simulator's ground truth with the 50 bp criterion.
func EvaluateRefGuided(m ReadMapper, reads []readsim.Read) RefGuidedResult {
	res := RefGuidedResult{Mapper: m.Name(), Reads: len(reads)}
	start := time.Now()
	for i := range reads {
		r := &reads[i]
		out := m.MapBest(r.Seq)
		res.Times.Add(out.Times)
		switch {
		case !out.Mapped:
			res.Confusion.FN++
		case within(out.RefStart, r.RefStart, 50):
			res.Confusion.TP++
		default:
			res.Confusion.FP++
			res.Confusion.FN++
		}
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		res.ReadsPerSec = float64(len(reads)) / elapsed
	}
	return res
}

func within(a, b, tol int) bool {
	d := a - b
	return d >= -tol && d <= tol
}

// DarwinMapper adapts a core.Darwin engine to ReadMapper, accumulating
// the workload statistics the hardware estimator needs.
type DarwinMapper struct {
	Engine *core.Darwin
	// Stats aggregates MapStats across all MapBest calls.
	Stats core.MapStats
	reads int
}

// NewDarwinMapper wraps an engine.
func NewDarwinMapper(e *core.Darwin) *DarwinMapper { return &DarwinMapper{Engine: e} }

// Name identifies the mapper.
func (d *DarwinMapper) Name() string { return "darwin" }

// MapBest maps one read (both strands are handled by the engine).
func (d *DarwinMapper) MapBest(read dna.Seq) MapOutcome {
	alns, st := d.Engine.MapRead(read)
	d.reads++
	// Accumulate everything except the per-candidate score list, which
	// would grow unboundedly over long runs.
	d.Stats.DSOFT.SeedsIssued += st.DSOFT.SeedsIssued
	d.Stats.DSOFT.SeedsSkipped += st.DSOFT.SeedsSkipped
	d.Stats.DSOFT.Hits += st.DSOFT.Hits
	d.Stats.DSOFT.BinsTouched += st.DSOFT.BinsTouched
	d.Stats.DSOFT.Candidates += st.DSOFT.Candidates
	d.Stats.Candidates += st.Candidates
	d.Stats.PassedHTile += st.PassedHTile
	d.Stats.Tiles += st.Tiles
	d.Stats.Cells += st.Cells
	d.Stats.FiltrationTime += st.FiltrationTime
	d.Stats.AlignmentTime += st.AlignmentTime

	best := core.Best(alns)
	out := MapOutcome{Times: baseline.StageTimes{
		Filtration: st.FiltrationTime,
		Alignment:  st.AlignmentTime,
	}}
	if best == nil {
		return out
	}
	out.Mapped = true
	out.RefStart = best.Result.RefStart
	out.RefEnd = best.Result.RefEnd
	return out
}

// Workload converts the accumulated statistics into the hardware
// estimator's input (averages per read).
func (d *DarwinMapper) Workload() hw.Workload {
	cfg := d.Engine.Config()
	w := hw.Workload{TileT: cfg.GACT.T, TileO: cfg.GACT.O}
	if d.reads == 0 {
		return w
	}
	n := float64(d.reads)
	w.SeedsPerRead = float64(d.Stats.DSOFT.SeedsIssued) / n
	if d.Stats.DSOFT.SeedsIssued > 0 {
		w.HitsPerSeed = float64(d.Stats.DSOFT.Hits) / float64(d.Stats.DSOFT.SeedsIssued)
	}
	w.TilesPerRead = float64(d.Stats.Tiles) / n
	return w
}

// GraphMapMapper adapts baseline.GraphMapLike to ReadMapper.
type GraphMapMapper struct{ G *baseline.GraphMapLike }

// Name identifies the mapper.
func (g GraphMapMapper) Name() string { return g.G.Name() }

// MapBest maps one read, trying both strands.
func (g GraphMapMapper) MapBest(read dna.Seq) MapOutcome {
	return bestOfStrands(read, g.G.MapRead)
}

// BWAMemMapper adapts baseline.BWAMemLike to ReadMapper.
type BWAMemMapper struct{ B *baseline.BWAMemLike }

// Name identifies the mapper.
func (b BWAMemMapper) Name() string { return b.B.Name() }

// MapBest maps one read, trying both strands.
func (b BWAMemMapper) MapBest(read dna.Seq) MapOutcome {
	return bestOfStrands(read, b.B.MapRead)
}

func bestOfStrands(read dna.Seq, mapRead func(dna.Seq) ([]baseline.Mapping, baseline.StageTimes)) MapOutcome {
	var out MapOutcome
	bestScore := 0
	for _, rev := range []bool{false, true} {
		q := read
		if rev {
			q = dna.RevComp(q)
		}
		maps, times := mapRead(q)
		out.Times.Add(times)
		for _, m := range maps {
			if !out.Mapped || m.Score > bestScore {
				out.Mapped = true
				bestScore = m.Score
				out.RefStart = m.RefStart
				out.RefEnd = m.RefEnd
			}
		}
	}
	return out
}
