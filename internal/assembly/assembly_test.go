package assembly

import (
	"testing"

	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/genome"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
)

func testGenome(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: n, GC: 0.45, RepeatFraction: 0.15, RepeatFamilies: 4,
		RepeatUnitLen: 200, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Seq
}

func TestEvaluateRefGuidedDarwin(t *testing.T) {
	ref := testGenome(t, 200000, 121)
	eng, err := core.New(ref, core.DefaultConfig(11, 600, 20))
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 15, readsim.Config{Profile: readsim.PacBio, MeanLen: 2500, Seed: 122})
	if err != nil {
		t.Fatal(err)
	}
	m := NewDarwinMapper(eng)
	res := EvaluateRefGuided(m, reads)
	if res.Mapper != "darwin" || res.Reads != 15 {
		t.Errorf("result metadata: %+v", res)
	}
	if res.Confusion.Sensitivity() < 0.85 {
		t.Errorf("darwin sensitivity = %.2f, want ≥ 0.85", res.Confusion.Sensitivity())
	}
	if res.ReadsPerSec <= 0 {
		t.Error("reads/sec not measured")
	}
	if res.Times.Total() <= 0 {
		t.Error("stage times not measured")
	}
	w := m.Workload()
	if w.SeedsPerRead <= 0 || w.HitsPerSeed <= 0 || w.TilesPerRead <= 0 {
		t.Errorf("workload stats incomplete: %+v", w)
	}
	if w.TileT != 320 || w.TileO != 128 {
		t.Errorf("workload tile params: %+v", w)
	}
}

func TestEvaluateRefGuidedBaselines(t *testing.T) {
	ref := testGenome(t, 150000, 123)
	reads, err := readsim.SimulateN(ref, 10, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 124})
	if err != nil {
		t.Fatal(err)
	}
	bw, err := baseline.NewBWAMemLike(ref, baseline.DefaultBWAMemConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateRefGuided(BWAMemMapper{bw}, reads)
	if res.Confusion.Sensitivity() < 0.8 {
		t.Errorf("bwamem-like sensitivity = %.2f, want ≥ 0.8", res.Confusion.Sensitivity())
	}

	gm, err := baseline.NewGraphMapLike(ref, baseline.DefaultGraphMapConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads2, err := readsim.SimulateN(ref, 10, readsim.Config{Profile: readsim.ONT2D, MeanLen: 2000, Seed: 125})
	if err != nil {
		t.Fatal(err)
	}
	res2 := EvaluateRefGuided(GraphMapMapper{gm}, reads2)
	if res2.Confusion.Sensitivity() < 0.8 {
		t.Errorf("graphmap-like sensitivity = %.2f, want ≥ 0.8", res2.Confusion.Sensitivity())
	}
	if res2.Times.Filtration <= 0 {
		t.Error("baseline filtration time missing")
	}
}

func TestEvaluateRefGuidedConfusionRules(t *testing.T) {
	ref := testGenome(t, 5000, 126)
	reads := []readsim.Read{
		{Name: "r0", Seq: ref[100:600].Clone(), RefStart: 100, RefEnd: 600},
		{Name: "r1", Seq: ref[1000:1500].Clone(), RefStart: 1000, RefEnd: 1500},
		{Name: "r2", Seq: ref[2000:2500].Clone(), RefStart: 2000, RefEnd: 2500},
	}
	// A fake mapper: r0 correct, r1 wrong place, r2 unmapped.
	m := fakeMapper{outcomes: map[string]MapOutcome{
		string(reads[0].Seq[:8]): {Mapped: true, RefStart: 130, RefEnd: 630},
		string(reads[1].Seq[:8]): {Mapped: true, RefStart: 4000, RefEnd: 4500},
	}}
	res := EvaluateRefGuided(m, reads)
	if res.Confusion.TP != 1 || res.Confusion.FP != 1 || res.Confusion.FN != 2 {
		t.Errorf("confusion = %+v, want TP=1 FP=1 FN=2", res.Confusion)
	}
}

type fakeMapper struct {
	outcomes map[string]MapOutcome
}

func (f fakeMapper) Name() string { return "fake" }
func (f fakeMapper) MapBest(q dna.Seq) MapOutcome {
	return f.outcomes[string(q[:8])]
}

func TestEvaluateOverlaps(t *testing.T) {
	reads := []readsim.Read{
		{RefStart: 0, RefEnd: 3000},
		{RefStart: 1500, RefEnd: 4500},   // overlaps r0 by 1500
		{RefStart: 4000, RefEnd: 7000},   // overlaps r1 by 500 (below 1kbp)
		{RefStart: 10000, RefEnd: 13000}, // isolated
	}
	truth := TrueOverlaps(reads, 1000)
	if len(truth) != 1 || truth[[2]int{0, 1}] != 1500 {
		t.Fatalf("truth = %v", truth)
	}
	reported := []ReportedOverlap{
		{A: 0, B: 1, Len: 1400}, // detected (≥ 80% of 1500)
		{A: 2, B: 3, Len: 800},  // false positive
	}
	c := EvaluateOverlaps(reads, reported, 1000, 0.8)
	if c.TP != 1 || c.FP != 1 || c.FN != 0 {
		t.Errorf("confusion = %+v", c)
	}
	// Under-detected overlap: below the 80% criterion.
	c = EvaluateOverlaps(reads, []ReportedOverlap{{A: 0, B: 1, Len: 1000}}, 1000, 0.8)
	if c.TP != 0 || c.FN != 1 {
		t.Errorf("under-detection confusion = %+v", c)
	}
}

func TestEvaluateOverlapsEndToEnd(t *testing.T) {
	ref := testGenome(t, 30000, 127)
	reads, err := readsim.SimulateN(ref, 45, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 128})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	ovCfg := core.DefaultConfig(11, 1000, 20)
	ovCfg.SeedStride = 2
	ov, err := core.NewOverlapper(seqs, ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := ov.FindOverlaps(500)
	c := EvaluateOverlaps(reads, FromCoreOverlaps(overlaps), 1000, 0.8)
	if c.Sensitivity() < 0.8 {
		t.Errorf("darwin overlap sensitivity = %.2f (%+v), want ≥ 0.8", c.Sensitivity(), c)
	}
}

func TestEvaluateDSOFT(t *testing.T) {
	ref := testGenome(t, 150000, 129)
	tab, err := seedtable.Build(ref, 11, seedtable.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 15, readsim.Config{Profile: readsim.ONT2D, MeanLen: 2500, Seed: 130})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := dsoft.New(tab, dsoft.Config{N: 900, H: 14, BinSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := dsoft.New(tab, dsoft.Config{N: 900, H: 40, BinSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	el := EvaluateDSOFT(loose, reads, readsim.ONT2D.Ins+readsim.ONT2D.Del)
	et := EvaluateDSOFT(tight, reads, readsim.ONT2D.Ins+readsim.ONT2D.Del)
	if el.Sensitivity < 0.9 {
		t.Errorf("loose h sensitivity = %.2f, want ≥ 0.9", el.Sensitivity)
	}
	// Raising h must not increase the false hit rate or the candidate
	// count (Figure 11's monotone trade-off).
	if et.FHR > el.FHR {
		t.Errorf("FHR increased with h: %.2f -> %.2f", el.FHR, et.FHR)
	}
	if et.Candidates > el.Candidates {
		t.Errorf("candidates increased with h: %d -> %d", el.Candidates, et.Candidates)
	}
	if el.Stats.SeedsIssued == 0 {
		t.Error("stats not aggregated")
	}
}
