package assembly

import (
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/metrics"
	"darwin/internal/readsim"
)

// DSOFTEval is the filtration-only evaluation of Figure 11: D-SOFT
// candidates (no GACT) scored against ground truth. A read counts as a
// true positive when some candidate falls in a band consistent with
// its ground-truth placement; every candidate outside those bands is a
// false hit.
type DSOFTEval struct {
	// Sensitivity is the fraction of reads whose true band was
	// reported.
	Sensitivity float64
	// FHR is the false hit rate: false candidates per true positive
	// (Section 8's definition).
	FHR float64
	// Candidates is the total candidates emitted.
	Candidates int
	// Stats aggregates filter work for the performance model.
	Stats dsoft.Stats
}

// EvaluateDSOFT runs the filter over both strands of every read.
// Indel drift makes a true alignment wander off its nominal diagonal
// by up to the read's total indel rate; candidates within
// drift+1 bands of the nominal band (on the correct strand) count as
// true.
func EvaluateDSOFT(filter *dsoft.Filter, reads []readsim.Read, indelRate float64) DSOFTEval {
	var eval DSOFTEval
	var conf metrics.Confusion
	tpReads := 0
	for i := range reads {
		r := &reads[i]
		slackBins := int(indelRate*float64(len(r.Seq)))/filter.Config().BinSize + 1
		trueBin := filter.BinOf(r.RefStart, 0)
		found := false
		for _, rev := range []bool{false, true} {
			q := r.Seq
			if rev {
				q = dna.RevComp(q)
			}
			cands, st := filter.Query(q)
			eval.Stats.SeedsIssued += st.SeedsIssued
			eval.Stats.SeedsSkipped += st.SeedsSkipped
			eval.Stats.Hits += st.Hits
			eval.Stats.BinsTouched += st.BinsTouched
			eval.Stats.Candidates += st.Candidates
			eval.Candidates += len(cands)
			correctStrand := rev == r.Reverse
			for _, c := range cands {
				if correctStrand && c.Bin >= trueBin-slackBins && c.Bin <= trueBin+slackBins {
					found = true
				} else {
					conf.FP++
				}
			}
		}
		if found {
			tpReads++
		}
	}
	eval.Sensitivity = float64(tpReads) / float64(len(reads))
	if tpReads > 0 {
		eval.FHR = float64(conf.FP) / float64(tpReads)
	} else if conf.FP > 0 {
		eval.FHR = float64(conf.FP)
	}
	return eval
}
