// Package readsim simulates long reads from a genome, standing in for
// PBSIM in the paper's methodology (Section 8). It samples read
// positions to a target coverage, injects substitution/insertion/
// deletion errors at the per-class rates of Table 1, and records the
// ground-truth interval and strand of every read so that downstream
// sensitivity/precision evaluation can use the same 50 bp criterion as
// the paper.
package readsim

import (
	"fmt"
	"math"
	"math/rand"

	"darwin/internal/dna"
)

// Profile is an error profile for one sequencing technology class.
// Rates are expressed as errors per emitted... more precisely, as the
// fraction of read bases involved in each error type, matching how the
// paper's Table 1 reports PBSIM profiles.
type Profile struct {
	// Name identifies the read class ("PacBio", "ONT_2D", "ONT_1D").
	Name string
	// Sub, Ins, Del are the substitution/insertion/deletion fractions.
	Sub, Ins, Del float64
}

// Total returns the total error rate of the profile.
func (p Profile) Total() float64 { return p.Sub + p.Ins + p.Del }

// The three read classes evaluated in the paper (Table 1).
var (
	// PacBio matches P6-C4 chemistry continuous long reads: 15% total.
	PacBio = Profile{Name: "PacBio", Sub: 0.0150, Ins: 0.0902, Del: 0.0449}
	// ONT2D matches Oxford Nanopore R7.3 2D reads: 30% total.
	ONT2D = Profile{Name: "ONT_2D", Sub: 0.1650, Ins: 0.0510, Del: 0.0840}
	// ONT1D matches Oxford Nanopore R7.3 1D reads: 40% total.
	ONT1D = Profile{Name: "ONT_1D", Sub: 0.2039, Ins: 0.0439, Del: 0.1520}
)

// Profiles lists the paper's three read classes in Table 1 order.
var Profiles = []Profile{PacBio, ONT2D, ONT1D}

// Config parameterizes read simulation.
type Config struct {
	// Profile is the error profile to apply.
	Profile Profile
	// MeanLen is the mean read length (paper: 10 kbp).
	MeanLen int
	// LenSpread is the half-width of the uniform read-length jitter as a
	// fraction of MeanLen. 0 produces fixed-length reads.
	LenSpread float64
	// Coverage is the target coverage C = N*L/G; used by Simulate to
	// derive the read count.
	Coverage float64
	// Seed seeds the deterministic RNG.
	Seed int64
}

// Read is a simulated read with its ground truth.
type Read struct {
	// Name is a unique identifier.
	Name string
	// Seq is the read sequence (already reverse-complemented for
	// reverse-strand reads — what a sequencer reports).
	Seq dna.Seq
	// Qual holds Phred+33 per-base qualities sampled around the
	// class's error rate (as PBSIM assigns model-driven qualities,
	// uncorrelated with the true error positions).
	Qual []byte
	// RefStart, RefEnd delimit the template interval [RefStart, RefEnd)
	// on the forward reference.
	RefStart, RefEnd int
	// Reverse is true if the read was sampled from the reverse strand.
	Reverse bool
	// Errors counts the errors injected into this read.
	Errors ErrorCounts
}

// ErrorCounts tallies injected errors by type.
type ErrorCounts struct {
	Sub, Ins, Del int
}

// TemplateLen returns the reference span covered by the read.
func (r *Read) TemplateLen() int { return r.RefEnd - r.RefStart }

// Simulate draws reads from ref to the target coverage in cfg.
func Simulate(ref dna.Seq, cfg Config) ([]Read, error) {
	if cfg.MeanLen <= 0 {
		return nil, fmt.Errorf("readsim: non-positive mean length %d", cfg.MeanLen)
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("readsim: non-positive coverage %v", cfg.Coverage)
	}
	n := int(cfg.Coverage * float64(len(ref)) / float64(cfg.MeanLen))
	if n < 1 {
		n = 1
	}
	return SimulateN(ref, n, cfg)
}

// SimulateN draws exactly n reads from ref.
func SimulateN(ref dna.Seq, n int, cfg Config) ([]Read, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("readsim: empty reference")
	}
	if cfg.MeanLen <= 0 {
		return nil, fmt.Errorf("readsim: non-positive mean length %d", cfg.MeanLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Qualities come from a separate stream so adding them does not
	// perturb the sequences a given seed produces.
	qrng := rand.New(rand.NewSource(cfg.Seed ^ 0x517))
	reads := make([]Read, 0, n)
	for i := 0; i < n; i++ {
		ln := cfg.MeanLen
		if cfg.LenSpread > 0 {
			jitter := int(float64(cfg.MeanLen) * cfg.LenSpread)
			ln = cfg.MeanLen - jitter + rng.Intn(2*jitter+1)
		}
		if ln > len(ref) {
			ln = len(ref)
		}
		if ln < 1 {
			ln = 1
		}
		start := 0
		if len(ref) > ln {
			start = rng.Intn(len(ref) - ln + 1)
		}
		template := ref[start : start+ln]
		rev := rng.Intn(2) == 1
		if rev {
			template = dna.RevComp(template)
		}
		seq, counts := injectErrors(rng, template, cfg.Profile)
		reads = append(reads, Read{
			Name:     fmt.Sprintf("%s_read_%d", cfg.Profile.Name, i),
			Seq:      seq,
			Qual:     sampleQualities(qrng, len(seq), cfg.Profile),
			RefStart: start,
			RefEnd:   start + ln,
			Reverse:  rev,
			Errors:   counts,
		})
	}
	return reads, nil
}

// injectErrors applies the profile to a template. The event model walks
// the template; at each step it may insert a random base (without
// consuming the template), delete the next template base, substitute it,
// or copy it. Event probabilities are normalized so the expected
// fractions of read bases affected match the profile, the same
// convention PBSIM's Table 1 profiles use.
func injectErrors(rng *rand.Rand, template dna.Seq, p Profile) (dna.Seq, ErrorCounts) {
	var counts ErrorCounts
	out := make(dna.Seq, 0, len(template)+len(template)/8)
	// Insertion trials do not consume the template, so the per-trial
	// probabilities must be deflated for the per-template-base expected
	// rates to equal the profile: with per-trial insertion probability
	// pi, a consumed base takes 1/(1-pi) trials, giving pi/(1-pi)
	// insertions per consumed base.
	pIns := p.Ins / (1 + p.Ins)
	pDel := p.Del * (1 - pIns)
	pSub := p.Sub * (1 - pIns)
	for i := 0; i < len(template); {
		r := rng.Float64()
		switch {
		case r < pIns:
			out = append(out, randBase(rng))
			counts.Ins++
			// Template position not consumed.
		case r < pIns+pDel:
			counts.Del++
			i++
		case r < pIns+pDel+pSub:
			out = append(out, dna.MutatePoint(rng, template[i]))
			counts.Sub++
			i++
		default:
			out = append(out, template[i])
			i++
		}
	}
	return out, counts
}

func randBase(rng *rand.Rand) byte { return dna.Base(byte(rng.Intn(dna.NumBases))) }

// sampleQualities draws Phred+33 quality bytes around the class's
// nominal quality Q = −10·log10(total error rate), jittered ±3.
func sampleQualities(rng *rand.Rand, n int, p Profile) []byte {
	base := 20
	if t := p.Total(); t > 0 {
		base = int(-10 * math.Log10(t))
	}
	if base < 2 {
		base = 2
	}
	qual := make([]byte, n)
	for i := range qual {
		q := base + rng.Intn(7) - 3
		if q < 2 {
			q = 2
		}
		if q > 40 {
			q = 40
		}
		qual[i] = byte(33 + q)
	}
	return qual
}

// MeasuredProfile computes the aggregate injected error rates over a set
// of reads, expressed relative to total template bases consumed — the
// quantity Table 1 reports.
func MeasuredProfile(reads []Read) Profile {
	var sub, ins, del, tmpl int
	for i := range reads {
		sub += reads[i].Errors.Sub
		ins += reads[i].Errors.Ins
		del += reads[i].Errors.Del
		tmpl += reads[i].TemplateLen()
	}
	if tmpl == 0 {
		return Profile{Name: "empty"}
	}
	t := float64(tmpl)
	return Profile{
		Name: "measured",
		Sub:  float64(sub) / t,
		Ins:  float64(ins) / t,
		Del:  float64(del) / t,
	}
}
