package readsim

import (
	"math"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/genome"
)

func testRef(t *testing.T, n int) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: n, GC: 0.5, Seed: 11})
	if err != nil {
		t.Fatalf("genome: %v", err)
	}
	return g.Seq
}

func TestSimulateCoverage(t *testing.T) {
	ref := testRef(t, 100000)
	cfg := Config{Profile: PacBio, MeanLen: 1000, Coverage: 5, Seed: 1}
	reads, err := Simulate(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(reads), 500; got != want {
		t.Fatalf("read count = %d, want %d", got, want)
	}
	total := 0
	for i := range reads {
		total += reads[i].TemplateLen()
	}
	cov := float64(total) / float64(len(ref))
	if math.Abs(cov-5) > 0.1 {
		t.Errorf("coverage = %.2f, want ~5", cov)
	}
}

func TestGroundTruthBounds(t *testing.T) {
	ref := testRef(t, 50000)
	reads, err := SimulateN(ref, 200, Config{Profile: ONT2D, MeanLen: 2000, LenSpread: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		r := &reads[i]
		if r.RefStart < 0 || r.RefEnd > len(ref) || r.RefStart >= r.RefEnd {
			t.Fatalf("read %d bad interval [%d,%d)", i, r.RefStart, r.RefEnd)
		}
		want := r.TemplateLen()
		if want < 1600 || want > 2400 {
			t.Errorf("read %d template length %d outside jitter range", i, want)
		}
		if err := dna.Validate(r.Seq); err != nil {
			t.Fatalf("read %d invalid seq: %v", i, err)
		}
	}
}

// TestErrorRatesMatchTable1 verifies the injected error rates reproduce
// the paper's Table 1 profiles within tolerance.
func TestErrorRatesMatchTable1(t *testing.T) {
	ref := testRef(t, 200000)
	for _, p := range Profiles {
		reads, err := SimulateN(ref, 100, Config{Profile: p, MeanLen: 5000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m := MeasuredProfile(reads)
		const tol = 0.01
		if math.Abs(m.Sub-p.Sub) > tol {
			t.Errorf("%s: sub rate %.4f, want %.4f", p.Name, m.Sub, p.Sub)
		}
		if math.Abs(m.Ins-p.Ins) > tol {
			t.Errorf("%s: ins rate %.4f, want %.4f", p.Name, m.Ins, p.Ins)
		}
		if math.Abs(m.Del-p.Del) > tol {
			t.Errorf("%s: del rate %.4f, want %.4f", p.Name, m.Del, p.Del)
		}
	}
}

func TestProfileTotals(t *testing.T) {
	// The three classes must total ~15%, ~30%, ~40% as in Table 1.
	wants := []float64{0.1501, 0.30, 0.3998}
	for i, p := range Profiles {
		if math.Abs(p.Total()-wants[i]) > 0.0005 {
			t.Errorf("%s total = %.4f, want %.4f", p.Name, p.Total(), wants[i])
		}
	}
}

func TestReverseReads(t *testing.T) {
	ref := testRef(t, 20000)
	reads, err := SimulateN(ref, 300, Config{Profile: Profile{Name: "perfect"}, MeanLen: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := 0, 0
	for i := range reads {
		r := &reads[i]
		template := ref[r.RefStart:r.RefEnd]
		if r.Reverse {
			rev++
			if r.Seq.String() != dna.RevComp(template).String() {
				t.Fatalf("read %d: reverse read is not revcomp of template", i)
			}
		} else {
			fwd++
			if r.Seq.String() != template.String() {
				t.Fatalf("read %d: forward read differs from template", i)
			}
		}
	}
	if fwd == 0 || rev == 0 {
		t.Errorf("strand mix fwd=%d rev=%d, want both > 0", fwd, rev)
	}
}

func TestSimulateErrors(t *testing.T) {
	ref := testRef(t, 1000)
	if _, err := Simulate(nil, Config{Profile: PacBio, MeanLen: 100, Coverage: 1}); err == nil {
		t.Error("empty ref should error")
	}
	if _, err := Simulate(ref, Config{Profile: PacBio, MeanLen: 0, Coverage: 1}); err == nil {
		t.Error("zero mean length should error")
	}
	if _, err := Simulate(ref, Config{Profile: PacBio, MeanLen: 100}); err == nil {
		t.Error("zero coverage should error")
	}
}

func TestReadLongerThanRef(t *testing.T) {
	ref := testRef(t, 100)
	reads, err := SimulateN(ref, 3, Config{Profile: Profile{Name: "perfect"}, MeanLen: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		if reads[i].TemplateLen() != len(ref) {
			t.Errorf("read %d template %d, want clamped to %d", i, reads[i].TemplateLen(), len(ref))
		}
	}
}

func TestDeterminism(t *testing.T) {
	ref := testRef(t, 30000)
	cfg := Config{Profile: ONT1D, MeanLen: 1000, Coverage: 2, Seed: 6}
	a, err := Simulate(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("counts differ")
	}
	for i := range a {
		if a[i].Seq.String() != b[i].Seq.String() || a[i].RefStart != b[i].RefStart {
			t.Fatalf("read %d differs between runs", i)
		}
	}
}

func TestQualities(t *testing.T) {
	ref := testRef(t, 20000)
	for _, p := range Profiles {
		reads, err := SimulateN(ref, 5, Config{Profile: p, MeanLen: 1000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for i := range reads {
			r := &reads[i]
			if len(r.Qual) != len(r.Seq) {
				t.Fatalf("%s read %d: qual length %d != seq length %d", p.Name, i, len(r.Qual), len(r.Seq))
			}
			sum := 0
			for _, q := range r.Qual {
				if q < 33 || q > 33+41 {
					t.Fatalf("%s: quality byte %d out of Phred+33 range", p.Name, q)
				}
				sum += int(q - 33)
			}
			mean := float64(sum) / float64(len(r.Qual))
			want := -10 * math.Log10(p.Total())
			if math.Abs(mean-want) > 2.5 {
				t.Errorf("%s: mean quality %.1f, want near %.1f", p.Name, mean, want)
			}
		}
	}
}
