package dna

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the sequence as a JSON string of bases rather
// than the base64 default for []byte, so wire formats (the darwind
// service, run reports) stay human-readable and greppable.
func (s Seq) MarshalJSON() ([]byte, error) {
	return json.Marshal(string(s))
}

// UnmarshalJSON decodes a JSON string into a normalized sequence
// (upper-case ACGTN, like NewSeq).
func (s *Seq) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return fmt.Errorf("dna: sequence must be a JSON string: %w", err)
	}
	*s = NewSeq(str)
	return nil
}
