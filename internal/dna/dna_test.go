package dna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeBaseRoundTrip(t *testing.T) {
	for _, b := range []byte("ACGTN") {
		if got := Base(Code(b)); got != b {
			t.Errorf("Base(Code(%q)) = %q, want %q", b, got, b)
		}
	}
	for _, b := range []byte("acgt") {
		want := byte(strings.ToUpper(string(b))[0])
		if got := Base(Code(b)); got != want {
			t.Errorf("Base(Code(%q)) = %q, want %q", b, got, want)
		}
	}
	for _, b := range []byte("XxZ @1-") {
		if got := Code(b); got != CodeN {
			t.Errorf("Code(%q) = %d, want CodeN", b, got)
		}
	}
}

func TestNewSeqNormalizes(t *testing.T) {
	s := NewSeq("acgtNxq")
	if s.String() != "ACGTNNN" {
		t.Errorf("NewSeq normalized to %q, want ACGTNNN", s)
	}
	if err := Validate(s); err != nil {
		t.Errorf("Validate(normalized) = %v, want nil", err)
	}
	if err := Validate(Seq("ACGX")); err == nil {
		t.Error("Validate(ACGX) = nil, want error")
	}
}

func TestRevComp(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AACGTT", "AACGTT"},
		{"GATTACA", "TGTAATC"},
		{"ACGTN", "NACGT"},
	}
	for _, c := range cases {
		if got := RevComp(NewSeq(c.in)).String(); got != c.want {
			t.Errorf("RevComp(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		s := Random(rng, int(n), 0.5)
		return bytes.Equal(RevComp(RevComp(s)), s)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(NewSeq("GATTACA")).String(); got != "ACATTAG" {
		t.Errorf("Reverse = %q, want ACATTAG", got)
	}
}

func TestPackSeedRoundTrip(t *testing.T) {
	s := NewSeq("ACGTACGTACGTACG")
	for k := 1; k <= MaxSeedSize; k++ {
		code, ok := PackSeed(s, 0, k)
		if !ok {
			t.Fatalf("PackSeed(k=%d) not ok", k)
		}
		if got := UnpackSeed(code, k).String(); got != s[:k].String() {
			t.Errorf("k=%d round trip = %q, want %q", k, got, s[:k])
		}
	}
}

func TestPackSeedRejects(t *testing.T) {
	s := NewSeq("ACGNACGT")
	if _, ok := PackSeed(s, 0, 4); ok {
		t.Error("PackSeed over an N should fail")
	}
	if _, ok := PackSeed(s, 5, 4); ok {
		t.Error("PackSeed off the end should fail")
	}
	if _, ok := PackSeed(s, -1, 4); ok {
		t.Error("PackSeed negative pos should fail")
	}
	if _, ok := PackSeed(s, 0, MaxSeedSize+1); ok {
		t.Error("PackSeed with oversized k should fail")
	}
	if _, ok := PackSeed(s, 4, 4); !ok {
		t.Error("PackSeed of ACGT window should succeed")
	}
}

func TestPackSeedDistinct(t *testing.T) {
	// All 4^k codes of size k must be distinct and < NumSeeds(k).
	const k = 3
	seen := make(map[uint32]bool)
	var gen func(prefix Seq)
	gen = func(prefix Seq) {
		if len(prefix) == k {
			code, ok := PackSeed(prefix, 0, k)
			if !ok {
				t.Fatalf("PackSeed(%q) failed", prefix)
			}
			if int(code) >= NumSeeds(k) {
				t.Fatalf("code %d out of range for k=%d", code, k)
			}
			if seen[code] {
				t.Fatalf("duplicate code %d for %q", code, prefix)
			}
			seen[code] = true
			return
		}
		for _, b := range []byte("ACGT") {
			gen(append(append(Seq{}, prefix...), b))
		}
	}
	gen(nil)
	if len(seen) != NumSeeds(k) {
		t.Errorf("saw %d distinct codes, want %d", len(seen), NumSeeds(k))
	}
}

func TestRandomGCContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, gc := range []float64{0.2, 0.5, 0.8} {
		s := Random(rng, 200000, gc)
		got := GCContent(s)
		if got < gc-0.02 || got > gc+0.02 {
			t.Errorf("GCContent(Random(gc=%.2f)) = %.3f, want within ±0.02", gc, got)
		}
	}
}

func TestMutatePointAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, b := range []byte("ACGT") {
		for i := 0; i < 100; i++ {
			m := MutatePoint(rng, b)
			if m == b {
				t.Fatalf("MutatePoint(%q) returned the same base", b)
			}
			if Code(m) == CodeN {
				t.Fatalf("MutatePoint(%q) returned non-base %q", b, m)
			}
		}
	}
}

func TestFormatWidth(t *testing.T) {
	s := NewSeq("ACGTACGTAC")
	if got := FormatWidth(s, 4); got != "ACGT\nACGT\nAC" {
		t.Errorf("FormatWidth = %q", got)
	}
	if got := FormatWidth(s, 0); got != "ACGTACGTAC" {
		t.Errorf("FormatWidth(width=0) = %q", got)
	}
	if got := FormatWidth(s, 100); got != "ACGTACGTAC" {
		t.Errorf("FormatWidth(wide) = %q", got)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "chr1", Desc: "synthetic genome", Seq: NewSeq(strings.Repeat("ACGTGGCA", 30))},
		{Name: "chr2", Seq: NewSeq("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || got[i].Desc != recs[i].Desc || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadFASTAWrapped(t *testing.T) {
	in := ">r1 a read\nACGT\nacgt\n\n>r2\nNNNN\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Seq.String() != "ACGTACGT" {
		t.Errorf("r1 seq = %q", recs[0].Seq)
	}
	if recs[0].Desc != "a read" {
		t.Errorf("r1 desc = %q", recs[0].Desc)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header should error")
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "read1", Seq: NewSeq("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "read2", Seq: NewSeq("GGGG")},
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, recs); err != nil {
		t.Fatalf("WriteFASTQ: %v", err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatalf("ReadFASTQ: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if !bytes.Equal(got[0].Seq, recs[0].Seq) || !bytes.Equal(got[0].Qual, recs[0].Qual) {
		t.Errorf("read1 mismatch: %+v", got[0])
	}
	if string(got[1].Qual) != "IIII" {
		t.Errorf("read2 placeholder qual = %q", got[1].Qual)
	}
}

func TestFASTQErrors(t *testing.T) {
	bad := []string{
		"ACGT\nACGT\n+\nIIII\n",  // missing @
		"@r\nACGT\n+\nIII\n",     // qual length mismatch
		"@r\nACGT\n+\n",          // missing qual
		"@r\nACGT\nIIII\nIIII\n", // missing separator
		"@r\n",                   // truncated
	}
	for _, in := range bad {
		if _, err := ReadFASTQ(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFASTQ(%q) = nil error, want error", in)
		}
	}
}

func TestGCContentEdge(t *testing.T) {
	if GCContent(NewSeq("NNN")) != 0 {
		t.Error("GCContent of all-N should be 0")
	}
	if GCContent(NewSeq("GGCC")) != 1 {
		t.Error("GCContent of GGCC should be 1")
	}
}
