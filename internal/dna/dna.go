// Package dna provides the nucleotide-sequence substrate used throughout
// the Darwin reproduction: base codes for the extended DNA alphabet
// Σext = {A, C, G, T, N}, 2-bit k-mer packing for seed lookup, reverse
// complements, and deterministic random sequence generation.
//
// Sequences are stored as upper-case ASCII bytes. Darwin's hardware
// stores sequences in ASCII in DRAM and converts to a 3-bit internal
// representation inside the GACT array (Section 7 of the paper); the
// Code/Base mapping here plays the role of that converter.
package dna

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base codes for the extended alphabet. A..T are the 2-bit codes used to
// pack seeds; N marks an unknown nucleotide and never matches anything.
const (
	CodeA = 0
	CodeC = 1
	CodeG = 2
	CodeT = 3
	CodeN = 4
)

// NumBases is the number of distinct 2-bit encodable nucleotides.
const NumBases = 4

// codeTable maps an ASCII byte to its base code. Lower-case letters map
// like their upper-case counterparts; every other byte maps to CodeN.
var codeTable = buildCodeTable()

func buildCodeTable() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = CodeN
	}
	t['A'], t['a'] = CodeA, CodeA
	t['C'], t['c'] = CodeC, CodeC
	t['G'], t['g'] = CodeG, CodeG
	t['T'], t['t'] = CodeT, CodeT
	return t
}

// baseTable maps a base code back to its ASCII byte.
var baseTable = [5]byte{'A', 'C', 'G', 'T', 'N'}

// complementTable maps an ASCII base to its Watson-Crick complement.
var complementTable = buildComplementTable()

func buildComplementTable() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 'N'
	}
	t['A'], t['a'] = 'T', 'T'
	t['C'], t['c'] = 'G', 'G'
	t['G'], t['g'] = 'C', 'C'
	t['T'], t['t'] = 'A', 'A'
	return t
}

// Code returns the base code (CodeA..CodeN) for an ASCII nucleotide.
func Code(b byte) byte { return codeTable[b] }

// Base returns the ASCII nucleotide for a base code.
func Base(code byte) byte {
	if int(code) >= len(baseTable) {
		return 'N'
	}
	return baseTable[code]
}

// Complement returns the Watson-Crick complement of an ASCII nucleotide.
func Complement(b byte) byte { return complementTable[b] }

// AppendCodes appends the base codes (CodeA..CodeN) of s to dst and
// returns the extended slice. Aligner kernels pre-encode each tile once
// with this instead of decoding ASCII per DP cell (Section 7's
// ASCII-to-3-bit converter, hoisted out of the inner loop).
func AppendCodes(dst []byte, s Seq) []byte {
	for _, b := range s {
		dst = append(dst, codeTable[b])
	}
	return dst
}

// AppendCodesReversed appends the base codes of s in reverse order,
// letting GACT's right extension precode reversed tiles directly from
// the forward sequence without materializing a reversed copy.
func AppendCodesReversed(dst []byte, s Seq) []byte {
	for i := len(s) - 1; i >= 0; i-- {
		dst = append(dst, codeTable[s[i]])
	}
	return dst
}

// AppendRevComp appends the reverse complement of s to dst and returns
// the extended slice — RevComp without the per-call allocation, for
// hot paths that reuse a scratch buffer across reads.
func AppendRevComp(dst Seq, s Seq) Seq {
	off := len(dst)
	dst = append(dst, s...)
	buf := dst[off:]
	for i, j := 0, len(buf)-1; i <= j; i, j = i+1, j-1 {
		buf[i], buf[j] = complementTable[buf[j]], complementTable[buf[i]]
	}
	return dst
}

// Seq is a nucleotide sequence stored as upper-case ASCII bytes.
type Seq []byte

// NewSeq normalizes s to upper-case ACGTN and returns it as a Seq.
func NewSeq(s string) Seq {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = Base(Code(s[i]))
	}
	return out
}

// String returns the sequence as a plain string.
func (s Seq) String() string { return string(s) }

// Clone returns an independent copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// RevComp returns the reverse complement of s as a new sequence.
func RevComp(s Seq) Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = complementTable[b]
	}
	return out
}

// Reverse returns s reversed (no complement) as a new sequence. GACT uses
// reversed sequences for right extension (Section 4).
func Reverse(s Seq) Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b
	}
	return out
}

// MaxSeedSize is the largest seed (k-mer) size representable as a packed
// 2-bit code in a uint32, matching Darwin's k ≤ 15 seed-pointer table.
const MaxSeedSize = 15

// PackSeed packs the k bases starting at s[pos] into a 2-bit code.
// It returns ok=false if the window contains an N or falls off the end;
// such seeds are skipped, as in the hardware (N has no 2-bit code).
func PackSeed(s Seq, pos, k int) (code uint32, ok bool) {
	if k <= 0 || k > MaxSeedSize || pos < 0 || pos+k > len(s) {
		return 0, false
	}
	for i := 0; i < k; i++ {
		c := codeTable[s[pos+i]]
		if c == CodeN {
			return 0, false
		}
		code = code<<2 | uint32(c)
	}
	return code, true
}

// UnpackSeed expands a packed 2-bit seed code of size k back to ASCII.
func UnpackSeed(code uint32, k int) Seq {
	out := make(Seq, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = baseTable[code&3]
		code >>= 2
	}
	return out
}

// NumSeeds returns 4^k, the number of distinct seeds of size k.
func NumSeeds(k int) int { return 1 << (2 * uint(k)) }

// Random returns a length-n sequence drawn from rng with the given GC
// content (probability of each base being G or C). gc=0.5 is uniform.
func Random(rng *rand.Rand, n int, gc float64) Seq {
	out := make(Seq, n)
	for i := range out {
		r := rng.Float64()
		if r < gc {
			if rng.Intn(2) == 0 {
				out[i] = 'G'
			} else {
				out[i] = 'C'
			}
		} else {
			if rng.Intn(2) == 0 {
				out[i] = 'A'
			} else {
				out[i] = 'T'
			}
		}
	}
	return out
}

// MutatePoint returns a base different from b, drawn uniformly from the
// other three nucleotides. If b is not a concrete base, a random base is
// returned.
func MutatePoint(rng *rand.Rand, b byte) byte {
	c := codeTable[b]
	if c == CodeN {
		return baseTable[rng.Intn(NumBases)]
	}
	nc := byte(rng.Intn(NumBases - 1))
	if nc >= c {
		nc++
	}
	return baseTable[nc]
}

// GCContent returns the fraction of G/C bases in s (N bases are excluded
// from the denominator). Returns 0 for sequences with no concrete bases.
func GCContent(s Seq) float64 {
	gc, acgt := 0, 0
	for _, b := range s {
		switch codeTable[b] {
		case CodeG, CodeC:
			gc++
			acgt++
		case CodeA, CodeT:
			acgt++
		}
	}
	if acgt == 0 {
		return 0
	}
	return float64(gc) / float64(acgt)
}

// Validate reports an error if s contains a byte outside {A,C,G,T,N}.
func Validate(s Seq) error {
	for i, b := range s {
		switch b {
		case 'A', 'C', 'G', 'T', 'N':
		default:
			return fmt.Errorf("dna: invalid byte %q at position %d", b, i)
		}
	}
	return nil
}

// FormatWidth wraps s into lines of the given width, FASTA-style.
func FormatWidth(s Seq, width int) string {
	if width <= 0 || len(s) <= width {
		return string(s)
	}
	var b strings.Builder
	for i := 0; i < len(s); i += width {
		end := i + width
		if end > len(s) {
			end = len(s)
		}
		b.Write(s[i:end])
		if end != len(s) {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
