package dna

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is a named sequence, as read from or written to FASTA/FASTQ.
type Record struct {
	// Name is the sequence identifier (first whitespace-delimited token
	// of the header line).
	Name string
	// Desc is the remainder of the header line after the name.
	Desc string
	// Seq is the sequence payload, normalized to upper-case ACGTN.
	Seq Seq
	// Qual holds per-base quality bytes for FASTQ records; nil for FASTA.
	Qual []byte
}

// ReadFASTA parses all records from a FASTA stream. Sequence lines may be
// wrapped arbitrarily; bases are normalized to upper-case ACGTN.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			name, desc := splitHeader(text[1:])
			recs = append(recs, Record{Name: name, Desc: desc})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: line %d: sequence data before first FASTA header", line)
		}
		cur.Seq = appendNormalized(cur.Seq, text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: reading FASTA: %w", err)
	}
	return recs, nil
}

// WriteFASTA writes records in FASTA format with 80-column wrapping.
func WriteFASTA(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		header := rec.Name
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintf(bw, ">%s\n%s\n", header, FormatWidth(rec.Seq, 80)); err != nil {
			return fmt.Errorf("dna: writing FASTA: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses all records from a FASTQ stream (4 lines per record).
func ReadFASTQ(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []Record
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimRight(sc.Text(), "\r")
			if text != "" {
				return text, true
			}
		}
		return "", false
	}
	for {
		header, ok := next()
		if !ok {
			break
		}
		if header[0] != '@' {
			return nil, fmt.Errorf("dna: line %d: FASTQ header must start with '@'", line)
		}
		seqLine, ok := next()
		if !ok {
			return nil, fmt.Errorf("dna: line %d: truncated FASTQ record (missing sequence)", line)
		}
		if sep, ok := next(); !ok || !strings.HasPrefix(sep, "+") {
			return nil, fmt.Errorf("dna: line %d: truncated FASTQ record (missing '+' separator)", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("dna: line %d: truncated FASTQ record (missing quality)", line)
		}
		if len(qual) != len(seqLine) {
			return nil, fmt.Errorf("dna: line %d: quality length %d != sequence length %d", line, len(qual), len(seqLine))
		}
		name, desc := splitHeader(header[1:])
		recs = append(recs, Record{
			Name: name,
			Desc: desc,
			Seq:  appendNormalized(nil, seqLine),
			Qual: []byte(qual),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: reading FASTQ: %w", err)
	}
	return recs, nil
}

// WriteFASTQ writes records in FASTQ format. Records without qualities
// get a constant placeholder quality ('I').
func WriteFASTQ(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = make([]byte, len(rec.Seq))
			for i := range qual {
				qual[i] = 'I'
			}
		}
		header := rec.Name
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", header, rec.Seq, qual); err != nil {
			return fmt.Errorf("dna: writing FASTQ: %w", err)
		}
	}
	return bw.Flush()
}

func splitHeader(h string) (name, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

func appendNormalized(dst Seq, text string) Seq {
	for i := 0; i < len(text); i++ {
		dst = append(dst, Base(Code(text[i])))
	}
	return dst
}
