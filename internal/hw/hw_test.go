package hw

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if r := math.Abs(got-want) / math.Abs(want); r > relTol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%)", name, got, want, relTol*100)
	}
}

// TestTable2AreaPower verifies the component model reproduces the
// paper's Table 2 breakdown.
func TestTable2AreaPower(t *testing.T) {
	rows := DefaultChip().AreaPower()
	wantArea := map[string]float64{
		"GACT Logic":     17.6,
		"GACT TB memory": 68.0,
		"D-SOFT Logic":   6.2,
		"Bin-count SRAM": 300.8,
		"NZ-bin SRAM":    19.5,
		"DRAM":           0,
		"Total":          412.1,
	}
	wantPower := map[string]float64{
		"GACT Logic":     1.04,
		"GACT TB memory": 3.36,
		"D-SOFT Logic":   0.41,
		"Bin-count SRAM": 7.84,
		"NZ-bin SRAM":    0.96,
		"DRAM":           1.64,
		"Total":          15.25,
	}
	for _, r := range rows {
		within(t, r.Component+" area", r.AreaMM2, wantArea[r.Component], 0.01)
		within(t, r.Component+" power", r.PowerW, wantPower[r.Component], 0.01)
	}
}

func TestScaled14nm(t *testing.T) {
	area, power := DefaultChip().Scaled14nm()
	within(t, "14nm area", area, 50, 0.05)    // paper: "about 50mm²"
	within(t, "14nm power", power, 6.4, 0.05) // paper: "about 6.4W"
}

func TestChipDerivedLimits(t *testing.T) {
	c := DefaultChip()
	if got := c.TmaxSupported(); got < 512 {
		t.Errorf("Tmax supported = %d, want ≥ 512 (128KB per array)", got)
	}
	if got := c.MaxBins(); got != 32*1024*1024 {
		t.Errorf("max bins = %d, want 32M (64MB / 2B)", got)
	}
}

// TestGACTTilesPerSecond checks the cycle model against the paper's
// anchor: 64 arrays process 20.8M tiles/s at (T=320, O=128).
func TestGACTTilesPerSecond(t *testing.T) {
	d := NewDarwin()
	within(t, "peak tiles/s", d.PeakTilesPerSecond(320, 128), 20.8e6, 0.10)
}

// TestFig10Anchors checks modeled alignment throughput against the
// two Figure 10 anchors: 4,297,672 alignments/s at 1 kbp and 401,040
// at 10 kbp (64 arrays).
func TestFig10Anchors(t *testing.T) {
	d := NewDarwin()
	within(t, "1kbp alignments/s", d.AlignmentsPerSecond(1000, 320, 128), 4.30e6, 0.25)
	within(t, "10kbp alignments/s", d.AlignmentsPerSecond(10000, 320, 128), 4.01e5, 0.25)
	// Throughput must scale ~inversely with length (paper: 10×
	// length ⇒ ~10.7× lower throughput).
	ratio := d.AlignmentsPerSecond(1000, 320, 128) / d.AlignmentsPerSecond(10000, 320, 128)
	if ratio < 8 || ratio > 13 {
		t.Errorf("1k/10k throughput ratio = %.1f, want ≈ 10.7", ratio)
	}
}

// TestFig9bShape: array throughput varies as (T−O)/T².
func TestFig9bShape(t *testing.T) {
	m := NewGACTModel(DefaultChip())
	type pt struct{ T, O int }
	pts := []pt{{128, 32}, {192, 64}, {256, 64}, {320, 128}, {384, 128}, {512, 128}}
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			ra := m.AlignmentsPerSecond(10000, pts[a].T, pts[a].O)
			rb := m.AlignmentsPerSecond(10000, pts[b].T, pts[b].O)
			wa := float64(pts[a].T-pts[a].O) / float64(pts[a].T*pts[a].T)
			wb := float64(pts[b].T-pts[b].O) / float64(pts[b].T*pts[b].T)
			if (wa > wb) != (ra > rb) {
				t.Errorf("(T,O)=%v vs %v: throughput ordering %v/%v contradicts (T−O)/T² ordering",
					pts[a], pts[b], ra, rb)
			}
		}
	}
}

// TestTable3DSOFTThroughput checks the memory model against Table 3's
// Darwin columns (Kseeds/s at each k's hits/seed on GRCh38).
func TestTable3DSOFTThroughput(t *testing.T) {
	m := NewDSOFTModel(DefaultChip())
	rows := []struct {
		k           int
		hitsPerSeed float64
		wantKseeds  float64
	}{
		{11, 1866.1, 1426.9},
		{12, 491.6, 5422.6},
		{13, 127.3, 19081.7},
		{14, 33.4, 55189.2},
		{15, 8.7, 91138.7},
	}
	for _, r := range rows {
		got := m.SeedsPerSecond(r.hitsPerSeed) / 1e3
		within(t, "k="+string(rune('0'+r.k/10))+string(rune('0'+r.k%10))+" Kseeds/s", got, r.wantKseeds, 0.30)
		if !m.MemoryLimited(r.hitsPerSeed) {
			t.Errorf("k=%d: model says bin updates limit, paper says memory-limited", r.k)
		}
	}
	// Monotonicity: fewer hits/seed ⇒ higher seed throughput.
	prev := 0.0
	for _, r := range rows {
		got := m.SeedsPerSecond(r.hitsPerSeed)
		if got <= prev {
			t.Errorf("k=%d: throughput %.0f not increasing", r.k, got)
		}
		prev = got
	}
}

// TestGACTMemoryShare checks the paper's claim that peak GACT traffic
// consumes 44.4% of memory cycles.
func TestGACTMemoryShare(t *testing.T) {
	d := NewDarwin()
	share := d.DSOFT.GACTMemoryShare(20.8e6, 320)
	within(t, "GACT memory share", share, 0.444, 0.15)
}

// TestFPGAOperatingPoint checks the prototype anchor: ~1.3M tiles/s at
// T=320, about 16× below the ASIC.
func TestFPGAOperatingPoint(t *testing.T) {
	f := DefaultFPGA()
	got := f.TilesPerSecond(320, 128)
	within(t, "FPGA tiles/s", got, 1.3e6, 0.15)
	d := NewDarwin()
	ratio := d.PeakTilesPerSecond(320, 128) / got
	if ratio < 12 || ratio > 20 {
		t.Errorf("ASIC/FPGA ratio = %.1f, want ≈ 16", ratio)
	}
}

func TestEstimateSlowerOfTwo(t *testing.T) {
	d := NewDarwin()
	// GACT-bound workload: few seeds, many tiles.
	wGACT := Workload{SeedsPerRead: 10, HitsPerSeed: 10, TilesPerRead: 1e6, TileT: 320, TileO: 128}
	eG := d.Estimate(wGACT)
	if eG.Bottleneck != "GACT" {
		t.Errorf("bottleneck = %s, want GACT", eG.Bottleneck)
	}
	// D-SOFT-bound workload: many heavy seeds, one tile.
	wD := Workload{SeedsPerRead: 1e6, HitsPerSeed: 2000, TilesPerRead: 1, TileT: 320, TileO: 128}
	eD := d.Estimate(wD)
	if eD.Bottleneck != "D-SOFT" {
		t.Errorf("bottleneck = %s, want D-SOFT", eD.Bottleneck)
	}
	// Reads/s must equal the reciprocal of the slower stage.
	if got, want := eD.ReadsPerSec, 1/eD.DSOFTSecPerRead; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("reads/s = %v, want %v", got, want)
	}
	// Zero workload.
	if e := d.Estimate(Workload{}); e.ReadsPerSec != 0 {
		t.Errorf("empty workload reads/s = %v, want 0", e.ReadsPerSec)
	}
}

// TestEnergyAccounting: the iso-power framing of Section 8 — at a
// given modeled speedup S over a 10 W CPU thread, Darwin's energy
// advantage is S × 10/15.25.
func TestEnergyAccounting(t *testing.T) {
	d := NewDarwin()
	w := Workload{SeedsPerRead: 1500, HitsPerSeed: 30, TilesPerRead: 120, TileT: 320, TileO: 128}
	e := d.Estimate(w)
	if e.EnergyPerReadJ <= 0 {
		t.Fatal("no energy estimate")
	}
	within(t, "energy per read", e.EnergyPerReadJ, 15.25/e.ReadsPerSec, 1e-9)
	const baseline = 2.0 // reads/s in software
	ratio := e.EnergyRatio(baseline)
	want := (e.ReadsPerSec / baseline) * CPUPowerW / 15.25
	within(t, "energy ratio", ratio, want, 1e-9)
	if e.EnergyRatio(0) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestCyclesPerTileEdges(t *testing.T) {
	m := NewGACTModel(DefaultChip())
	if m.CyclesPerTile(0, 100, 10) != 0 || m.CyclesPerTile(100, 0, 10) != 0 {
		t.Error("degenerate tiles should cost 0 cycles")
	}
	// Cost grows with T² for square tiles (fixed traceback).
	c1 := m.CyclesPerTile(128, 128, 0)
	c2 := m.CyclesPerTile(256, 256, 0)
	if c2 < 3*c1 {
		t.Errorf("tile cost not superlinear: %v vs %v", c1, c2)
	}
	if TilesPerAlignment(1000, 100, 100) != 0 {
		t.Error("T ≤ O should yield 0 tiles")
	}
}
