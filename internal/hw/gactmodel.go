package hw

import "fmt"

// GACTModel is the cycle model of one GACT systolic array (Section 7):
// the DP matrix of a T×T tile is processed in ⌈T/Npe⌉ query blocks,
// each streaming the reference through the array in a wavefront
// (T + Npe cycles), and traceback takes 3 cycles per step (address
// computation, SRAM read, pointer computation).
type GACTModel struct {
	// Npe is the number of processing elements in the array.
	Npe int
	// ClockHz is the array clock.
	ClockHz float64
	// OverheadCycles covers per-tile configuration, score drain and
	// pipeline fill between query blocks.
	OverheadCycles int
}

// NewGACTModel returns the model for one array of the configuration.
func NewGACTModel(c ChipConfig) GACTModel {
	return GACTModel{Npe: c.PEsPerArray, ClockHz: c.ClockHz, OverheadCycles: 64}
}

// CyclesPerTile returns the cycles one array spends on a tile with the
// given reference/query extents and traceback steps.
func (m GACTModel) CyclesPerTile(rLen, qLen, tbSteps int) float64 {
	if rLen <= 0 || qLen <= 0 {
		return 0
	}
	blocks := (qLen + m.Npe - 1) / m.Npe
	fill := float64(blocks) * float64(rLen+m.Npe)
	tb := 3 * float64(tbSteps)
	return fill + tb + float64(m.OverheadCycles)
}

// TilesPerSecond returns one array's steady-state tile throughput for
// square T×T tiles with traceback clipped at T−O.
func (m GACTModel) TilesPerSecond(T, O int) float64 {
	cyc := m.CyclesPerTile(T, T, T-O)
	if cyc == 0 {
		return 0
	}
	return m.ClockHz / cyc
}

// TilesPerAlignment returns the expected number of GACT tiles to align
// two sequences of the given length with parameters (T, O): traceback
// advances ~T−O bases per tile, plus the first tile.
func TilesPerAlignment(length, T, O int) float64 {
	if length <= 0 || T <= O {
		return 0
	}
	return 1 + float64(length)/float64(T-O)
}

// AlignmentsPerSecond returns one array's throughput aligning pairs of
// sequences of the given length (Figures 9b and 10). Throughput varies
// as (T−O)/T² — the trade the paper calls out: larger T means fewer
// but quadratically costlier tiles.
func (m GACTModel) AlignmentsPerSecond(length, T, O int) float64 {
	tiles := TilesPerAlignment(length, T, O)
	if tiles == 0 {
		return 0
	}
	return m.TilesPerSecond(T, O) / tiles
}

// GACTDRAMBytesPerTile is the DRAM traffic of one tile: two 320 B
// sequential reads (R_tile, Q_tile) and one 64 B traceback write
// (Section 9, "Performance and Throughput").
func GACTDRAMBytesPerTile(T int) float64 {
	return float64(2*T + 64)
}

// FPGAConfig is the Arria 10 prototype operating point (Section 9):
// 40 arrays of 32 PEs at 150 MHz, of which 4 have traceback memory
// (the rest run single-tile GACT filtering only).
type FPGAConfig struct {
	Arrays          int
	TracebackArrays int
	PEsPerArray     int
	ClockHz         float64
}

// DefaultFPGA returns the paper's FPGA prototype configuration.
func DefaultFPGA() FPGAConfig {
	return FPGAConfig{Arrays: 40, TracebackArrays: 4, PEsPerArray: 32, ClockHz: 150e6}
}

// TilesPerSecond returns the FPGA prototype's aggregate GACT tile
// throughput across all arrays, ~1.3 M tiles/s at T=320 (16× slower
// than the ASIC's 20.8 M, Section 9).
func (f FPGAConfig) TilesPerSecond(T, O int) float64 {
	m := GACTModel{Npe: f.PEsPerArray, ClockHz: f.ClockHz, OverheadCycles: 64}
	return float64(f.Arrays) * m.TilesPerSecond(T, O)
}

func (f FPGAConfig) String() string {
	return fmt.Sprintf("%d×%dPE arrays (%d with traceback) @ %.0f MHz",
		f.Arrays, f.PEsPerArray, f.TracebackArrays, f.ClockHz/1e6)
}
