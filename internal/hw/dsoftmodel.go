package hw

// DRAMConfig models the LPDDR4 memory system (Section 5: four
// channels, each holding identical copies of the seed tables so all
// channels stay load-balanced). The FPGA prototype confirmed D-SOFT
// throughput is entirely memory-limited (Section 8), so the model is a
// bandwidth/latency model, not a queueing one.
type DRAMConfig struct {
	// Channels is the number of LPDDR4 channels.
	Channels int
	// ChannelGBps is the peak bandwidth of one channel
	// (LPDDR4-2400, 32-bit: 2400 MT/s × 4 B = 9.6 GB/s).
	ChannelGBps float64
	// SeqEfficiency is the fraction of peak achieved on the
	// position-table streams, accounting for row activations between
	// hit lists and read/write turnaround (calibrated to Table 3).
	SeqEfficiency float64
	// RandomAccessNs is the cost of one isolated random access
	// (pointer-table lookup), roughly tRC.
	RandomAccessNs float64
	// GACTReserve is the fraction of memory cycles reserved for the
	// GACT arrays at peak throughput (Table 3 reserves 45%).
	GACTReserve float64
}

// DefaultDRAM returns the paper's memory system with calibrated
// efficiency factors.
func DefaultDRAM() DRAMConfig {
	return DRAMConfig{
		Channels:       4,
		ChannelGBps:    9.6,
		SeqEfficiency:  0.51,
		RandomAccessNs: 42,
		GACTReserve:    0.45,
	}
}

// TotalGBps is the aggregate peak bandwidth.
func (d DRAMConfig) TotalGBps() float64 { return float64(d.Channels) * d.ChannelGBps }

// DSOFTModel estimates the D-SOFT accelerator's seed throughput. Per
// seed, the accelerator performs one random pointer-table access
// (amortized across channels, since seeds are interleaved over them)
// and streams hits×4 B of position-table entries at the effective
// sequential bandwidth left over after the GACT reserve.
type DSOFTModel struct {
	DRAM DRAMConfig
	Chip ChipConfig
}

// NewDSOFTModel returns the model for the default memory system.
func NewDSOFTModel(c ChipConfig) DSOFTModel {
	d := DefaultDRAM()
	d.Channels = c.DRAMChannels
	return DSOFTModel{DRAM: d, Chip: c}
}

// SeedsPerSecond returns the modeled seed lookup throughput given the
// average number of position-table hits per seed (Table 3's columns).
func (m DSOFTModel) SeedsPerSecond(hitsPerSeed float64) float64 {
	bw := m.DRAM.TotalGBps() * 1e9 * (1 - m.DRAM.GACTReserve) * m.DRAM.SeqEfficiency
	perSeedSec := m.DRAM.RandomAccessNs*1e-9/float64(m.DRAM.Channels) + hitsPerSeed*4/bw
	return 1 / perSeedSec
}

// BinUpdatesPerSecond returns the on-chip bin-update capacity: the NoC
// delivers up to one update per bank per cycle, but ordering stalls
// (hits of one seed must land before the next seed's, Section 6)
// limit the observed rate to ~5.1 updates/cycle (Section 9, "64% of
// theoretical maximum" on the FPGA; the same fraction is applied
// here).
func (m DSOFTModel) BinUpdatesPerSecond() float64 {
	const observedPerCycle = 5.1
	return m.Chip.ClockHz * observedPerCycle
}

// MemoryLimited reports whether, at the given hits/seed, DRAM is the
// bottleneck rather than the bin-update logic — the paper found this
// to hold in all cases.
func (m DSOFTModel) MemoryLimited(hitsPerSeed float64) bool {
	hitRate := m.SeedsPerSecond(hitsPerSeed) * hitsPerSeed
	return hitRate <= m.BinUpdatesPerSecond()
}

// GACTMemoryShare returns the fraction of total DRAM cycles the GACT
// arrays consume at a given aggregate tile rate (the paper reports
// 44.4% at 20.8 M tiles/s with T=320).
func (m DSOFTModel) GACTMemoryShare(tilesPerSec float64, T int) float64 {
	traffic := tilesPerSec * GACTDRAMBytesPerTile(T)
	return traffic / (m.DRAM.TotalGBps() * 1e9 * 0.85)
}
