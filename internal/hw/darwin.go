package hw

// Darwin is the full-accelerator performance estimator, composing the
// GACT array model and the D-SOFT memory model exactly as Section 8
// describes: "assembly time for Darwin was estimated using the slower
// of the two algorithms", with workload statistics (seeds per read,
// hits per seed, tiles per read) measured from a software run.
type Darwin struct {
	Chip  ChipConfig
	GACT  GACTModel
	DSOFT DSOFTModel
}

// NewDarwin returns the estimator for the default ASIC.
func NewDarwin() *Darwin {
	c := DefaultChip()
	return &Darwin{Chip: c, GACT: NewGACTModel(c), DSOFT: NewDSOFTModel(c)}
}

// Workload summarizes a read-mapping workload, measured by running the
// software pipeline (core package) over a read set.
type Workload struct {
	// SeedsPerRead is the average number of D-SOFT seed lookups per
	// read (N, counting both strands if both were queried).
	SeedsPerRead float64
	// HitsPerSeed is the average position-table hits per seed.
	HitsPerSeed float64
	// TilesPerRead is the average number of GACT tiles per read
	// (candidate first tiles plus extension tiles).
	TilesPerRead float64
	// TileT and TileO are the GACT parameters in effect.
	TileT, TileO int
}

// Estimate is the modeled accelerator performance on a workload.
type Estimate struct {
	// ReadsPerSec is the end-to-end throughput.
	ReadsPerSec float64
	// DSOFTSecPerRead and GACTSecPerRead are the per-stage times; the
	// pipeline runs at the slower of the two.
	DSOFTSecPerRead float64
	GACTSecPerRead  float64
	// Bottleneck names the limiting stage ("D-SOFT" or "GACT").
	Bottleneck string
	// EnergyPerReadJ is the chip energy per read (total power × read
	// time), for the iso-power comparison of Section 8: the paper
	// compares against a single Xeon thread at ~10 W, "the best
	// iso-power comparison point to ASIC" (Darwin: 15.25 W).
	EnergyPerReadJ float64
}

// CPUPowerW is the paper's measured single-thread Xeon power.
const CPUPowerW = 10.0

// EnergyRatio returns how many times less energy Darwin spends per
// read than a software baseline achieving baselineReadsPerSec on one
// ~10 W CPU thread.
func (e Estimate) EnergyRatio(baselineReadsPerSec float64) float64 {
	if baselineReadsPerSec <= 0 || e.EnergyPerReadJ <= 0 {
		return 0
	}
	cpuEnergy := CPUPowerW / baselineReadsPerSec
	return cpuEnergy / e.EnergyPerReadJ
}

// Estimate returns modeled Darwin throughput for a workload.
func (d *Darwin) Estimate(w Workload) Estimate {
	var e Estimate
	if w.SeedsPerRead > 0 {
		e.DSOFTSecPerRead = w.SeedsPerRead / d.DSOFT.SeedsPerSecond(w.HitsPerSeed)
	}
	if w.TilesPerRead > 0 {
		total := float64(d.Chip.GACTArrays) * d.GACT.TilesPerSecond(w.TileT, w.TileO)
		e.GACTSecPerRead = w.TilesPerRead / total
	}
	slower := e.DSOFTSecPerRead
	e.Bottleneck = "D-SOFT"
	if e.GACTSecPerRead > slower {
		slower = e.GACTSecPerRead
		e.Bottleneck = "GACT"
	}
	if slower > 0 {
		e.ReadsPerSec = 1 / slower
		rows := d.Chip.AreaPower()
		e.EnergyPerReadJ = rows[len(rows)-1].PowerW * slower
	}
	return e
}

// PeakTilesPerSecond is the aggregate GACT tile rate of all arrays
// (the paper's 20.8 M tiles/s at T=320, O=128).
func (d *Darwin) PeakTilesPerSecond(T, O int) float64 {
	return float64(d.Chip.GACTArrays) * d.GACT.TilesPerSecond(T, O)
}

// AlignmentsPerSecond is the aggregate pairwise-alignment rate for
// sequences of the given length (Figure 10's "GACT (Darwin)" series).
func (d *Darwin) AlignmentsPerSecond(length, T, O int) float64 {
	return float64(d.Chip.GACTArrays) * d.GACT.AlignmentsPerSecond(length, T, O)
}
