// Package hw models the Darwin ASIC and FPGA implementations
// analytically, reproducing the paper's performance methodology
// (Section 8): hardware throughput is derived from cycle/bandwidth
// models calibrated to the published design parameters, and assembly
// performance combines those rates with software-measured workload
// statistics, taking the slower of D-SOFT and GACT.
//
// In the paper these numbers came from Synopsys DC/ICC synthesis
// (TSMC 40nm), Cacti, Ramulator and DRAMPower; here each component is
// an explicit parametric model whose defaults reproduce Table 2, the
// GACT throughputs of Figures 9b/10 and the D-SOFT throughputs of
// Table 3. See DESIGN.md ("Substitutions") for the calibration notes.
package hw

import "fmt"

// ChipConfig describes the accelerator configuration (Section 5).
type ChipConfig struct {
	// GACTArrays is the number of independent GACT arrays (64).
	GACTArrays int
	// PEsPerArray is the systolic array width Npe (64).
	PEsPerArray int
	// TBKBPerPE is the traceback SRAM per PE in KB (2 KB ⇒ Tmax=512).
	TBKBPerPE int
	// BinSRAMBanks and BinSRAMKBPerBank size the bin-count SRAM
	// (16 × 4 MB = 64 MB ⇒ NB = 32M bins of 2 B).
	BinSRAMBanks     int
	BinSRAMKBPerBank int
	// NZKBPerBank sizes the NZ queue SRAM per bank (256 KB).
	NZKBPerBank int
	// DRAMChannels is the number of LPDDR4 channels (4).
	DRAMChannels int
	// ClockHz is the ASIC operating frequency (847 MHz: the paper's
	// 1.18 ns critical path).
	ClockHz float64
}

// DefaultChip returns the configuration the paper evaluates.
func DefaultChip() ChipConfig {
	return ChipConfig{
		GACTArrays:       64,
		PEsPerArray:      64,
		TBKBPerPE:        2,
		BinSRAMBanks:     16,
		BinSRAMKBPerBank: 4 * 1024,
		NZKBPerBank:      256,
		DRAMChannels:     4,
		ClockHz:          847e6,
	}
}

// TmaxSupported returns the largest tile size the traceback SRAM
// supports: 4·T² bits must fit in PEsPerArray × TBKBPerPE KB.
func (c ChipConfig) TmaxSupported() int {
	bits := float64(c.PEsPerArray*c.TBKBPerPE) * 1024 * 8
	t := 0
	for (t+1)*(t+1)*4 <= int(bits) {
		t++
	}
	return t
}

// MaxBins returns the number of bins the bin-count SRAM holds (2 bytes
// per bin: 5 b saturating bp_count + 11 b last_hit_pos).
func (c ChipConfig) MaxBins() int {
	return c.BinSRAMBanks * c.BinSRAMKBPerBank * 1024 / 2
}

// Per-unit area/power constants for the TSMC 40nm process, calibrated
// so DefaultChip reproduces Table 2 exactly. Area in mm², power in W.
const (
	areaPerPE        = 17.6 / (64.0 * 64.0) // GACT logic per PE
	powerPerPE       = 1.04 / (64.0 * 64.0)
	areaPerTBKB      = 68.0 / (64.0 * 64.0 * 2.0) // single-port TB SRAM
	powerPerTBKB     = 3.36 / (64.0 * 64.0 * 2.0)
	areaDSOFTLogic   = 6.2 // 2 SPL + NoC + 16 UBL, fixed block
	powerDSOFTLogic  = 0.41
	areaPerBinKB     = 300.8 / (16.0 * 4.0 * 1024.0) // bin-count SRAM
	powerPerBinKB    = 7.84 / (16.0 * 4.0 * 1024.0)
	areaPerNZKB      = 19.5 / (16.0 * 256.0)
	powerPerNZKB     = 0.96 / (16.0 * 256.0)
	powerPerDRAMChan = 1.64 / 4.0 // LPDDR4-2400 interface power
	criticalPathNs   = 1.18
)

// AreaPowerRow is one line of the Table 2 breakdown.
type AreaPowerRow struct {
	Component string
	Config    string
	AreaMM2   float64
	PowerW    float64
}

// AreaPower returns the component breakdown of Table 2 for the
// configuration, plus the totals row.
func (c ChipConfig) AreaPower() []AreaPowerRow {
	pes := float64(c.GACTArrays * c.PEsPerArray)
	tbKB := float64(c.GACTArrays * c.PEsPerArray * c.TBKBPerPE)
	binKB := float64(c.BinSRAMBanks * c.BinSRAMKBPerBank)
	nzKB := float64(c.BinSRAMBanks * c.NZKBPerBank)
	rows := []AreaPowerRow{
		{"GACT Logic", fmt.Sprintf("%d × (%dPE array)", c.GACTArrays, c.PEsPerArray), pes * areaPerPE, pes * powerPerPE},
		{"GACT TB memory", fmt.Sprintf("%d × (%d × %dKB)", c.GACTArrays, c.PEsPerArray, c.TBKBPerPE), tbKB * areaPerTBKB, tbKB * powerPerTBKB},
		{"D-SOFT Logic", "2SPL + NoC + 16UBL", areaDSOFTLogic, powerDSOFTLogic},
		{"Bin-count SRAM", fmt.Sprintf("%d × %dMB", c.BinSRAMBanks, c.BinSRAMKBPerBank/1024), binKB * areaPerBinKB, binKB * powerPerBinKB},
		{"NZ-bin SRAM", fmt.Sprintf("%d × %dKB", c.BinSRAMBanks, c.NZKBPerBank), nzKB * areaPerNZKB, nzKB * powerPerNZKB},
		{"DRAM", fmt.Sprintf("LPDDR4-2400 %d × 32GB", c.DRAMChannels), 0, float64(c.DRAMChannels) * powerPerDRAMChan},
	}
	var ta, tp float64
	for _, r := range rows {
		ta += r.AreaMM2
		tp += r.PowerW
	}
	rows = append(rows, AreaPowerRow{"Total", fmt.Sprintf("critical path %.2fns", criticalPathNs), ta, tp})
	return rows
}

// Scaled14nm returns (area mm², power W) projected to a 14nm process,
// matching the paper's "about 50mm² and about 6.4W" remark. Area
// scales with the square of the feature-size ratio; the paper's power
// figure implies a ~2.4× reduction (voltage and capacitance scaling).
func (c ChipConfig) Scaled14nm() (float64, float64) {
	rows := c.AreaPower()
	total := rows[len(rows)-1]
	areaScale := (40.0 / 14.0) * (40.0 / 14.0)
	const powerScale = 2.4
	return total.AreaMM2 / areaScale, total.PowerW / powerScale
}
