package seedtable

import (
	"fmt"
	"strings"

	"darwin/internal/dna"
)

// SpacedPattern is a spaced-seed template (Keich et al., cited in
// Section 10 as a way to improve seeding sensitivity): '1' marks care
// positions that enter the seed code, '0' marks don't-care positions
// that tolerate mismatches. The classic result is that a spaced seed
// of weight w is more sensitive to substitution errors than a
// contiguous w-mer, because neighbouring seed hits share fewer
// positions and thus fail more independently.
type SpacedPattern struct {
	mask   []bool
	weight int
}

// ParsePattern builds a pattern from a "1101..." string. The pattern
// must start and end with '1' and have weight ≤ dna.MaxSeedSize.
func ParsePattern(s string) (*SpacedPattern, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("seedtable: empty spaced-seed pattern")
	}
	if s[0] != '1' || s[len(s)-1] != '1' {
		return nil, fmt.Errorf("seedtable: pattern %q must start and end with '1'", s)
	}
	p := &SpacedPattern{mask: make([]bool, len(s))}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			p.mask[i] = true
			p.weight++
		case '0':
		default:
			return nil, fmt.Errorf("seedtable: pattern %q has invalid byte %q", s, s[i])
		}
	}
	if p.weight > dna.MaxSeedSize {
		return nil, fmt.Errorf("seedtable: pattern weight %d exceeds %d", p.weight, dna.MaxSeedSize)
	}
	return p, nil
}

// Contiguous returns the weight-k pattern "111…1" (an ordinary k-mer).
func Contiguous(k int) *SpacedPattern {
	p, err := ParsePattern(strings.Repeat("1", k))
	if err != nil {
		panic(err) // k out of range is a programming error
	}
	return p
}

// Span is the pattern length (bases consumed per seed).
func (p *SpacedPattern) Span() int { return len(p.mask) }

// Weight is the number of care positions (code bits / 2).
func (p *SpacedPattern) Weight() int { return p.weight }

// String renders the pattern.
func (p *SpacedPattern) String() string {
	var b strings.Builder
	for _, m := range p.mask {
		if m {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Pack extracts the spaced-seed code at s[pos]. ok is false if the
// window leaves the sequence or a care position holds an N
// (don't-care Ns are tolerated).
func (p *SpacedPattern) Pack(s dna.Seq, pos int) (code uint32, ok bool) {
	if pos < 0 || pos+len(p.mask) > len(s) {
		return 0, false
	}
	for i, care := range p.mask {
		if !care {
			continue
		}
		c := dna.Code(s[pos+i])
		if c == dna.CodeN {
			return 0, false
		}
		code = code<<2 | uint32(c)
	}
	return code, true
}

// BuildSpaced constructs a seed table over the spaced-seed codes of
// ref. Lookup keys must be produced with the same pattern's Pack (or
// LookupSpaced). Masking semantics match Build, applied to the
// pattern's weight.
func BuildSpaced(ref dna.Seq, pattern *SpacedPattern, opts Options) (*Table, error) {
	if pattern == nil {
		return nil, fmt.Errorf("seedtable: nil pattern")
	}
	if len(ref) < pattern.Span() {
		return nil, fmt.Errorf("seedtable: reference length %d shorter than pattern span %d", len(ref), pattern.Span())
	}
	if opts.MaskMultiplier == 0 {
		opts.MaskMultiplier = 32
	}
	if opts.MaskFloor == 0 {
		opts.MaskFloor = 8
	}
	t := &Table{k: pattern.weight, refLen: len(ref), pattern: pattern}
	if !opts.NoMask {
		t.maskMax = opts.MaskMultiplier * len(ref) / dna.NumSeeds(pattern.weight)
		if t.maskMax < opts.MaskFloor {
			t.maskMax = opts.MaskFloor
		}
	}
	t.sample = minimizerSampler(opts.MinimizerWindow)
	if pattern.weight <= directLimit {
		t.buildDense(ref)
	} else {
		t.buildSparse(ref)
	}
	return t, nil
}

// Pattern returns the table's spaced pattern (a contiguous pattern of
// weight k for ordinary tables).
func (t *Table) Pattern() *SpacedPattern {
	if t.pattern != nil {
		return t.pattern
	}
	return Contiguous(t.k)
}

// forEachSeedSpaced visits spaced-seed codes in position order.
func forEachSeedSpaced(ref dna.Seq, p *SpacedPattern, fn func(code uint32, pos int)) {
	for i := 0; i+p.Span() <= len(ref); i++ {
		if code, ok := p.Pack(ref, i); ok {
			fn(code, i)
		}
	}
}
