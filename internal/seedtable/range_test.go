package seedtable

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

// testRef builds a repetitive reference with N gaps so masking and
// minimizer-window resets both engage.
func testRef(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := dna.Random(rng, n, 0.45)
	// Plant a high-frequency repeat so the mask threshold trips.
	motif := ref[:40].Clone()
	for i := 0; i < 60; i++ {
		p := rng.Intn(n - len(motif))
		copy(ref[p:], motif)
	}
	for i := 0; i < n/200; i++ {
		ref[rng.Intn(n)] = 'N'
	}
	return ref
}

// rangeEquiv checks that BuildRange with a global mask stores exactly
// the whole-reference hit lists restricted to the window.
func rangeEquiv(t *testing.T, ref dna.Seq, k int, opts Options, start, end int) {
	t.Helper()
	mask, err := ComputeMask(ref, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Build(ref, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.Mask = mask
	sub, err := BuildRange(ref, start, end, k, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if sub.RefLen() != end-start {
		t.Fatalf("RefLen = %d, want window length %d", sub.RefLen(), end-start)
	}
	for code := 0; code < dna.NumSeeds(k); code++ {
		var want []uint32
		for _, h := range global.Lookup(uint32(code)) {
			if int(h) >= start && int(h) <= end-k {
				want = append(want, h-uint32(start))
			}
		}
		got := sub.Lookup(uint32(code))
		if len(got) != len(want) {
			t.Fatalf("code %d: %d hits in window table, want %d (window [%d,%d))",
				code, len(got), len(want), start, end)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("code %d hit %d: got %d, want %d", code, i, got[i], want[i])
			}
		}
	}
}

func TestBuildRangeMatchesGlobal(t *testing.T) {
	ref := testRef(t, 6000, 11)
	opts := DefaultOptions()
	opts.MaskFloor = 4 // make the planted repeat maskable at this scale
	for _, win := range [][2]int{{0, 2048}, {1024, 3072}, {2048, 6000}, {5000, 6000}} {
		rangeEquiv(t, ref, 7, opts, win[0], win[1])
	}
}

func TestBuildRangeMatchesGlobalWithMinimizers(t *testing.T) {
	ref := testRef(t, 6000, 13)
	opts := DefaultOptions()
	opts.MaskFloor = 4
	opts.MinimizerWindow = 5
	for _, win := range [][2]int{{0, 2048}, {1024, 3072}, {2048, 6000}} {
		rangeEquiv(t, ref, 7, opts, win[0], win[1])
	}
}

func TestBuildRangeMatchesGlobalSparse(t *testing.T) {
	// k > directLimit exercises the sparse build and sparse ComputeMask.
	ref := testRef(t, 4000, 17)
	opts := DefaultOptions()
	opts.MaskFloor = 4
	rangeEquiv(t, ref, directLimit+1, opts, 1024, 3000)
}

func TestComputeMaskMatchesBuild(t *testing.T) {
	ref := testRef(t, 6000, 19)
	opts := DefaultOptions()
	opts.MaskFloor = 4
	mask, err := ComputeMask(ref, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Build(ref, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Threshold() != global.MaskThreshold() {
		t.Fatalf("mask threshold %d != build threshold %d", mask.Threshold(), global.MaskThreshold())
	}
	if mask.Len() != global.MaskedSeeds() {
		t.Fatalf("mask has %d codes, build masked %d seeds", mask.Len(), global.MaskedSeeds())
	}
	if mask.Len() == 0 {
		t.Fatal("test reference produced no masked seeds; repeat planting failed")
	}
	for code := 0; code < dna.NumSeeds(7); code++ {
		if mask.Masked(uint32(code)) && global.Lookup(uint32(code)) != nil {
			t.Fatalf("code %d masked in set but present in table", code)
		}
	}
	// Building with the precomputed mask must reproduce the plain build.
	mopts := opts
	mopts.Mask = mask
	masked, err := Build(ref, 7, mopts)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Positions() != global.Positions() || masked.MaskedSeeds() != global.MaskedSeeds() {
		t.Fatalf("mask-set build: %d positions/%d masked, want %d/%d",
			masked.Positions(), masked.MaskedSeeds(), global.Positions(), global.MaskedSeeds())
	}
}

func TestTableBytes(t *testing.T) {
	ref := testRef(t, 4000, 23)
	tab, err := Build(ref, 7, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(tab.ptr))*4 + int64(len(tab.pos))*4
	if got := tab.Bytes(); got != want || got <= 0 {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
}
