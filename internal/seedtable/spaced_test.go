package seedtable

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("1101011")
	if err != nil {
		t.Fatal(err)
	}
	if p.Span() != 7 || p.Weight() != 5 {
		t.Errorf("span=%d weight=%d, want 7/5", p.Span(), p.Weight())
	}
	if p.String() != "1101011" {
		t.Errorf("String = %s", p)
	}
	for _, bad := range []string{"", "011", "110", "1121", "0"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) should fail", bad)
		}
	}
	if Contiguous(4).String() != "1111" {
		t.Error("Contiguous(4) wrong")
	}
}

func TestSpacedPackIgnoresDontCare(t *testing.T) {
	p, err := ParsePattern("101")
	if err != nil {
		t.Fatal(err)
	}
	a, ok1 := p.Pack(dna.NewSeq("ACG"), 0)
	b, ok2 := p.Pack(dna.NewSeq("ATG"), 0) // middle base differs
	if !ok1 || !ok2 || a != b {
		t.Errorf("don't-care mismatch changed code: %d vs %d", a, b)
	}
	c, _ := p.Pack(dna.NewSeq("TCG"), 0) // care base differs
	if c == a {
		t.Error("care mismatch did not change code")
	}
	// N at don't-care is tolerated; N at care is not.
	if _, ok := p.Pack(dna.NewSeq("ANG"), 0); !ok {
		t.Error("N at don't-care position should be tolerated")
	}
	if _, ok := p.Pack(dna.NewSeq("NCG"), 0); ok {
		t.Error("N at care position should be rejected")
	}
	if _, ok := p.Pack(dna.NewSeq("AC"), 0); ok {
		t.Error("window off the end should be rejected")
	}
}

func TestBuildSpacedLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	ref := dna.Random(rng, 3000, 0.5)
	p, err := ParsePattern("110101101")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := BuildSpaced(ref, p, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Pattern().String() != p.String() {
		t.Error("pattern not recorded")
	}
	// Oracle: every returned position's spaced code equals the query's.
	for trial := 0; trial < 100; trial++ {
		pos := rng.Intn(len(ref) - p.Span())
		code, ok := p.Pack(ref, pos)
		if !ok {
			continue
		}
		hits := tab.Lookup(code)
		foundSelf := false
		for _, h := range hits {
			got, ok := p.Pack(ref, int(h))
			if !ok || got != code {
				t.Fatalf("hit %d has different spaced code", h)
			}
			if int(h) == pos {
				foundSelf = true
			}
		}
		if !foundSelf {
			t.Fatalf("position %d missing from its own hit list", pos)
		}
	}
	// PackQuery must use the pattern.
	code1, _ := tab.PackQuery(ref, 10)
	code2, _ := p.Pack(ref, 10)
	if code1 != code2 {
		t.Error("PackQuery ignores the pattern")
	}
}

// TestSpacedSeedSensitivity verifies the classic spaced-seed claim
// (Keich et al., cited in Section 10): the per-position hit
// probability of a weight-w spaced seed equals a contiguous w-mer's,
// but its hits are less correlated across neighbouring positions, so
// the probability that a similarity *region* contains at least one
// hit is higher. Measured here as the fraction of 25%-substituted
// windows with ≥ 1 true-diagonal hit.
func TestSpacedSeedSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	ref := dna.Random(rng, 200000, 0.5)
	spaced, err := ParsePattern("1110100110010101111") // weight 12, PatternHunter-like
	if err != nil {
		t.Fatal(err)
	}
	if spaced.Weight() != 12 {
		t.Fatalf("test pattern weight = %d, want 12", spaced.Weight())
	}
	contTab, err := Build(ref, 12, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	spacedTab, err := BuildSpaced(ref, spaced, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		windows = 400
		winLen  = 70
		subRate = 0.25
	)
	contFound, spacedFound := 0, 0
	for w := 0; w < windows; w++ {
		start := rng.Intn(len(ref) - winLen)
		q := ref[start : start+winLen].Clone()
		for i := range q {
			if rng.Float64() < subRate {
				q[i] = dna.MutatePoint(rng, q[i])
			}
		}
		check := func(tab *Table) bool {
			for j := 0; j+spaced.Span() <= len(q); j++ {
				for _, h := range tab.LookupSeq(q, j) {
					if int(h) == start+j {
						return true
					}
				}
			}
			return false
		}
		if check(contTab) {
			contFound++
		}
		if check(spacedTab) {
			spacedFound++
		}
	}
	t.Logf("region sensitivity: contiguous %d/%d, spaced %d/%d", contFound, windows, spacedFound, windows)
	if spacedFound <= contFound {
		t.Errorf("spaced seed region sensitivity %d not above contiguous %d at %.0f%% substitutions",
			spacedFound, contFound, subRate*100)
	}
}

func TestBuildSpacedErrors(t *testing.T) {
	if _, err := BuildSpaced(dna.NewSeq("ACGT"), nil, Options{}); err == nil {
		t.Error("nil pattern should error")
	}
	p, _ := ParsePattern("10101")
	if _, err := BuildSpaced(dna.NewSeq("ACG"), p, Options{}); err == nil {
		t.Error("ref shorter than span should error")
	}
}
