package seedtable

import (
	"fmt"

	"darwin/internal/dna"
)

// Parts is the flat storage of a built Table: every scalar and slice a
// serializer needs to reconstruct the table exactly. The slices are the
// table's live in-memory layout — a persistent index file (package
// indexfile) writes them verbatim and hands back FromParts views over
// mapped memory, so a loaded table is the built table, not a decode of
// it. This mirrors the property Darwin's hardware depends on: the seed
// position table is a dense pointer array over sequentially stored hit
// lists (Section 3, Figure 3), with no pointer graph to fix up.
type Parts struct {
	// K is the seed size (pattern weight for spaced tables).
	K int
	// RefLen is the indexed window length.
	RefLen int
	// MaskThreshold is the occurrence cutoff applied at build (0 =
	// masking disabled).
	MaskThreshold int
	// MaskedSeeds and MaskedHits record what masking removed.
	MaskedSeeds int
	MaskedHits  int
	// Pattern is the spaced-seed template string, "" for a contiguous
	// k-mer table.
	Pattern string

	// Ptr is the dense pointer table (4^K+1 entries); nil in sparse
	// mode (K > directLimit).
	Ptr []uint32
	// Codes and Spans are the sparse index; nil in dense mode.
	Codes []uint32
	Spans [][2]uint32
	// Pos is the position table shared by both modes.
	Pos []uint32
}

// Dense reports whether the parts describe a dense pointer table.
func (p Parts) Dense() bool { return p.K <= directLimit }

// Parts exposes the table's flat storage for serialization. The slices
// alias the table's internal storage and must not be modified.
func (t *Table) Parts() Parts {
	return Parts{
		K:             t.k,
		RefLen:        t.refLen,
		MaskThreshold: t.maskMax,
		MaskedSeeds:   t.maskedSeeds,
		MaskedHits:    t.maskedHits,
		Pattern:       t.patternString(),
		Ptr:           t.ptr,
		Codes:         t.codes,
		Spans:         t.spans,
		Pos:           t.pos,
	}
}

// patternString renders the spaced pattern, "" for contiguous tables.
func (t *Table) patternString() string {
	if t.pattern == nil {
		return ""
	}
	return t.pattern.String()
}

// FromParts reconstructs a Table from its flat storage. The slices are
// retained, not copied, so views over read-only mapped memory work
// directly; the table never writes to them after construction. It
// validates the structural invariants that keep Lookup in bounds —
// content integrity (bit flips) is the index file's checksum job.
func FromParts(p Parts) (*Table, error) {
	if p.K < 1 || p.K > dna.MaxSeedSize {
		return nil, fmt.Errorf("seedtable: seed size %d out of range [1,%d]", p.K, dna.MaxSeedSize)
	}
	if p.RefLen < p.K {
		return nil, fmt.Errorf("seedtable: window length %d shorter than seed size %d", p.RefLen, p.K)
	}
	t := &Table{
		k:           p.K,
		refLen:      p.RefLen,
		maskMax:     p.MaskThreshold,
		maskedSeeds: p.MaskedSeeds,
		maskedHits:  p.MaskedHits,
	}
	if p.Pattern != "" {
		pat, err := ParsePattern(p.Pattern)
		if err != nil {
			return nil, err
		}
		if pat.Weight() != p.K {
			return nil, fmt.Errorf("seedtable: pattern %q weight %d != table seed size %d", p.Pattern, pat.Weight(), p.K)
		}
		t.pattern = pat
	}
	if p.Dense() {
		if len(p.Codes) != 0 || len(p.Spans) != 0 {
			return nil, fmt.Errorf("seedtable: dense table (k=%d) carries sparse sections", p.K)
		}
		if want := dna.NumSeeds(p.K) + 1; len(p.Ptr) != want {
			return nil, fmt.Errorf("seedtable: pointer table has %d entries, want %d for k=%d", len(p.Ptr), want, p.K)
		}
		if n := p.Ptr[len(p.Ptr)-1]; int(n) != len(p.Pos) {
			return nil, fmt.Errorf("seedtable: pointer table ends at %d but position table has %d entries", n, len(p.Pos))
		}
		t.ptr = p.Ptr
	} else {
		if len(p.Ptr) != 0 {
			return nil, fmt.Errorf("seedtable: sparse table (k=%d) carries a dense pointer section", p.K)
		}
		if len(p.Codes) != len(p.Spans) {
			return nil, fmt.Errorf("seedtable: %d sparse codes but %d spans", len(p.Codes), len(p.Spans))
		}
		for i, sp := range p.Spans {
			if sp[0] > sp[1] || int(sp[1]) > len(p.Pos) {
				return nil, fmt.Errorf("seedtable: span %d [%d,%d) outside position table of %d entries", i, sp[0], sp[1], len(p.Pos))
			}
		}
		t.codes = p.Codes
		t.spans = p.Spans
	}
	t.pos = p.Pos
	return t, nil
}
