package seedtable

import (
	"fmt"

	"darwin/internal/dna"
)

// BuildRange constructs a seed table over the reference window
// [start, end) — one shard of a physically partitioned index, the
// software analogue of Darwin tiling its seed-position table across
// four LPDDR4 channels (Section 5). Stored positions are window-local
// (global position minus start) and RefLen reports the window length,
// so a D-SOFT filter over the table sizes its bin state to the shard,
// not the genome.
//
// Two properties make per-shard tables exactly composable into the
// whole-reference table:
//
//   - Masking: pass opts.Mask = ComputeMask(ref, k, opts) so every
//     shard masks exactly the globally high-frequency seeds. Without
//     it, masking thresholds on the window length, and a seed's fate
//     can differ between shard sizes.
//   - Minimizers: with opts.MinimizerWindow = w ≥ 2 the scan warms up
//     w−1 positions before start (clamped at the reference start), so
//     the minimizer deque holds the same window state a
//     whole-reference scan would hold when it reaches start; warm-up
//     emissions are discarded. Stored minimizers in the window are
//     then identical to the whole-reference table's.
//
// Under those conditions, Lookup(code) on this table returns exactly
// the whole-reference hit list restricted to start positions in
// [start, end−k], shifted by −start.
func BuildRange(ref dna.Seq, start, end, k int, opts Options) (*Table, error) {
	if k < 1 || k > dna.MaxSeedSize {
		return nil, fmt.Errorf("seedtable: seed size %d out of range [1,%d]", k, dna.MaxSeedSize)
	}
	if start < 0 || end > len(ref) || start >= end {
		return nil, fmt.Errorf("seedtable: window [%d,%d) outside reference [0,%d)", start, end, len(ref))
	}
	if end-start < k {
		return nil, fmt.Errorf("seedtable: window length %d shorter than seed size %d", end-start, k)
	}
	warm := 0
	if opts.MinimizerWindow >= 2 {
		warm = opts.MinimizerWindow - 1
		if warm > start {
			warm = start
		}
	}
	t := &Table{k: k, refLen: end - start, drop: warm}
	if opts.Mask != nil {
		t.mask = opts.Mask
		t.maskMax = opts.Mask.Threshold()
	} else {
		t.maskMax = opts.maskThreshold(end-start, k)
	}
	t.sample = minimizerSampler(opts.MinimizerWindow)
	if k <= directLimit {
		t.buildDense(ref[start-warm : end])
	} else {
		t.buildSparse(ref[start-warm : end])
	}
	return t, nil
}
