package seedtable

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

// refLookup is a brute-force oracle: all positions where the k-mer at
// that position equals the query seed.
func refLookup(ref dna.Seq, k int, code uint32) []uint32 {
	var out []uint32
	for i := 0; i+k <= len(ref); i++ {
		c, ok := dna.PackSeed(ref, i, k)
		if ok && c == code {
			out = append(out, uint32(i))
		}
	}
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperFigure3Example(t *testing.T) {
	// The reference and k=3 example of Figure 3:
	// TACGCGTAGCCATATCACCTAGACTAG — 'TAG' hits at 6, 19, 24.
	ref := dna.NewSeq("TACGCGTAGCCATATCACCTAGACTAG")
	tab, err := Build(ref, 3, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := dna.PackSeed(dna.NewSeq("TAG"), 0, 3)
	if got := tab.Lookup(code); !equalU32(got, []uint32{6, 19, 24}) {
		t.Errorf("TAG hits = %v, want [6 19 24]", got)
	}
	code, _ = dna.PackSeed(dna.NewSeq("TAC"), 0, 3)
	if got := tab.Lookup(code); !equalU32(got, []uint32{0, 19 + 6 - 6}) && !equalU32(got, refLookup(ref, 3, code)) {
		t.Errorf("TAC hits = %v, want oracle %v", got, refLookup(ref, 3, code))
	}
}

func TestLookupMatchesOracleDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := dna.Random(rng, 3000, 0.5)
	for _, k := range []int{1, 2, 4, 6} {
		tab, err := Build(ref, k, Options{NoMask: true})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			code := uint32(rng.Intn(dna.NumSeeds(k)))
			if got, want := tab.Lookup(code), refLookup(ref, k, code); !equalU32(got, want) {
				t.Fatalf("k=%d code=%d: got %v, want %v", k, code, got, want)
			}
		}
	}
}

func TestLookupMatchesOracleSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ref := dna.Random(rng, 5000, 0.5)
	k := directLimit + 1 // force sparse mode
	tab, err := Build(ref, k, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ptr != nil {
		t.Fatal("expected sparse mode")
	}
	// Query seeds drawn from the reference (present) and random (mostly absent).
	for i := 0; i+k <= len(ref); i += 97 {
		code, ok := dna.PackSeed(ref, i, k)
		if !ok {
			continue
		}
		if got, want := tab.Lookup(code), refLookup(ref, k, code); !equalU32(got, want) {
			t.Fatalf("sparse lookup code=%d: got %v, want %v", code, got, want)
		}
	}
	for trial := 0; trial < 50; trial++ {
		code := rng.Uint32() & uint32(dna.NumSeeds(k)-1)
		if got, want := tab.Lookup(code), refLookup(ref, k, code); !equalU32(got, want) {
			t.Fatalf("sparse random code=%d: got %v, want %v", code, got, want)
		}
	}
}

func TestDenseSparseAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ref := dna.Random(rng, 4000, 0.5)
	const k = 8
	dense, err := Build(ref, k, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse := &Table{k: k, refLen: len(ref)}
	sparse.buildSparse(ref)
	for i := 0; i+k <= len(ref); i += 13 {
		code, ok := dna.PackSeed(ref, i, k)
		if !ok {
			continue
		}
		if !equalU32(dense.Lookup(code), sparse.Lookup(code)) {
			t.Fatalf("dense/sparse disagree for code %d", code)
		}
	}
}

func TestNSkipped(t *testing.T) {
	ref := dna.NewSeq("ACGTNACGT")
	tab, err := Build(ref, 4, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := dna.PackSeed(dna.NewSeq("ACGT"), 0, 4)
	// Windows overlapping the N (positions 1..4) must be absent; only
	// positions 0 and 5 have valid ACGT windows.
	if got := tab.Lookup(code); !equalU32(got, []uint32{0, 5}) {
		t.Errorf("ACGT hits = %v, want [0 5]", got)
	}
	if tab.Positions() != 2 {
		t.Errorf("total positions = %d, want 2 (N windows skipped)", tab.Positions())
	}
}

func TestMasking(t *testing.T) {
	// A tandem repeat makes one seed extremely frequent.
	var ref dna.Seq
	for i := 0; i < 200; i++ {
		ref = append(ref, dna.NewSeq("ACGT")...)
	}
	rng := rand.New(rand.NewSource(24))
	ref = append(ref, dna.Random(rng, 1000, 0.5)...)
	const k = 4
	masked, err := Build(ref, k, Options{MaskMultiplier: 1, MaskFloor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if masked.MaskedSeeds() == 0 {
		t.Fatal("expected masked seeds")
	}
	code, _ := dna.PackSeed(dna.NewSeq("ACGT"), 0, k)
	if got := masked.Lookup(code); got != nil {
		t.Errorf("masked seed returned %d hits, want nil", len(got))
	}
	unmasked, err := Build(ref, k, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	if unmasked.MaskedSeeds() != 0 {
		t.Error("NoMask table reported masked seeds")
	}
	if got := unmasked.Lookup(code); len(got) < 200 {
		t.Errorf("unmasked ACGT hits = %d, want ≥ 200", len(got))
	}
	if masked.Positions()+masked.MaskedHits() != unmasked.Positions() {
		t.Errorf("masked positions %d + masked hits %d != unmasked %d",
			masked.Positions(), masked.MaskedHits(), unmasked.Positions())
	}
}

func TestLookupSeq(t *testing.T) {
	ref := dna.NewSeq("TACGCGTAGCCATATCACCTAGACTAG")
	tab, err := Build(ref, 3, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	q := dna.NewSeq("TTAGN")
	if got := tab.LookupSeq(q, 1); !equalU32(got, []uint32{6, 19, 24}) {
		t.Errorf("LookupSeq(TAG) = %v", got)
	}
	if got := tab.LookupSeq(q, 2); got != nil {
		t.Errorf("LookupSeq over N = %v, want nil", got)
	}
	if got := tab.LookupSeq(q, 4); got != nil {
		t.Errorf("LookupSeq past end = %v, want nil", got)
	}
}

func TestBuildErrors(t *testing.T) {
	ref := dna.NewSeq("ACGT")
	if _, err := Build(ref, 0, Options{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Build(ref, dna.MaxSeedSize+1, Options{}); err == nil {
		t.Error("k too large should error")
	}
	if _, err := Build(ref, 5, Options{}); err == nil {
		t.Error("ref shorter than k should error")
	}
}

func TestHitsPerSeedMonotone(t *testing.T) {
	// hits/seed must decrease as k grows (paper Table 3 trend).
	rng := rand.New(rand.NewSource(25))
	ref := dna.Random(rng, 100000, 0.5)
	prev := -1.0
	for _, k := range []int{4, 6, 8, 10} {
		tab, err := Build(ref, k, Options{NoMask: true})
		if err != nil {
			t.Fatal(err)
		}
		hps := tab.Stats().HitsPerSeed
		if prev > 0 && hps >= prev {
			t.Errorf("hits/seed not decreasing: k=%d gives %.2f, previous %.2f", k, hps, prev)
		}
		prev = hps
	}
}

func TestMinimizerSubsetAndGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	ref := dna.Random(rng, 20000, 0.5)
	const k, w = 8, 10
	full, err := Build(ref, k, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	mini, err := Build(ref, k, Options{NoMask: true, MinimizerWindow: w})
	if err != nil {
		t.Fatal(err)
	}
	// Stored positions must be a subset of all positions.
	sampled := map[uint32]bool{}
	for i := 0; i+k <= len(ref); i++ {
		code, ok := dna.PackSeed(ref, i, k)
		if !ok {
			continue
		}
		for _, p := range mini.Lookup(code) {
			if int(p) == i {
				sampled[uint32(i)] = true
			}
		}
	}
	if mini.Positions() >= full.Positions() {
		t.Errorf("minimizer table has %d positions, full table %d", mini.Positions(), full.Positions())
	}
	// Density: roughly 2/(w+1) of positions survive.
	density := float64(mini.Positions()) / float64(full.Positions())
	if density < 0.5*2/(w+1) || density > 2.0*2/(w+1) {
		t.Errorf("minimizer density = %.4f, expected near %.4f", density, 2.0/(w+1))
	}
	// Window guarantee: every window of w consecutive positions holds
	// at least one sampled seed.
	for start := 0; start+w+k <= len(ref); start += w {
		found := false
		for i := start; i < start+w; i++ {
			if sampled[uint32(i)] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("window [%d,%d) has no sampled seed", start, start+w)
		}
	}
}

func TestMinimizerLookupStillCorrect(t *testing.T) {
	// Positions a minimizer table returns must be genuine occurrences.
	rng := rand.New(rand.NewSource(28))
	ref := dna.Random(rng, 5000, 0.5)
	const k = 9
	mini, err := Build(ref, k, Options{NoMask: true, MinimizerWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i+k <= len(ref); i += 7 {
		code, ok := dna.PackSeed(ref, i, k)
		if !ok {
			continue
		}
		for _, p := range mini.Lookup(code) {
			got, ok := dna.PackSeed(ref, int(p), k)
			if !ok || got != code {
				t.Fatalf("position %d is not an occurrence of code %d", p, code)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no lookups verified")
	}
}

func TestStatsBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ref := dna.Random(rng, 10000, 0.5)
	tab, err := Build(ref, 8, Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.PointerBytes != int64(dna.NumSeeds(8)+1)*4 {
		t.Errorf("pointer bytes = %d", st.PointerBytes)
	}
	if st.PositionByte != int64(st.Positions)*4 {
		t.Errorf("position bytes = %d", st.PositionByte)
	}
}
