// Package seedtable implements the seed position table of Section 3
// (Figure 3): for each of the 4^k possible seeds, a pointer table gives
// the span of a position table holding every occurrence of that seed in
// the reference, stored sequentially. Sequential hit storage is the
// property Darwin's D-SOFT accelerator exploits for long DRAM bursts
// (versus suffix trees / BWT-FM indexes, whose lookups are pointer
// chases); the companion fmindex package implements that alternative
// for comparison.
//
// Darwin masks high-frequency seeds — those occurring more than
// 32·|R|/4^k times (Section 5) — to bound worst-case hit lists from
// repeat regions.
package seedtable

import (
	"fmt"
	"sort"

	"darwin/internal/dna"
)

// directLimit is the largest k for which a dense 4^k-entry pointer table
// is allocated (4^12 entries ≈ 67 MB of uint32). Larger k fall back to a
// sorted sparse representation; lookups behave identically.
const directLimit = 12

// Options configures table construction.
type Options struct {
	// MaskMultiplier is the high-frequency masking factor: seeds with
	// more than MaskMultiplier·|R|/4^k occurrences are masked (their
	// hit lists emptied). Darwin uses 32. Zero applies the default.
	MaskMultiplier int
	// MaskFloor is the minimum mask threshold, needed when |R| ≪ 4^k
	// (scaled-down genomes) where the raw formula would mask every seed.
	// Zero applies a default of 8.
	MaskFloor int
	// NoMask disables masking entirely.
	NoMask bool
	// MinimizerWindow, when ≥ 2, stores only minimizer positions: the
	// lowest-hashed seed of every window of that many consecutive
	// seeds (Roberts et al., cited in Section 10 as the standard way
	// to shrink seed storage). Every window of MinimizerWindow
	// consecutive seed positions retains at least one entry. Zero or
	// one stores every position.
	MinimizerWindow int
	// Mask, when non-nil, replaces local frequency thresholding with a
	// precomputed masked-seed set (ComputeMask). Sharded builds use
	// this so every shard masks exactly the seeds a whole-reference
	// table would mask — a shard-local count can never cross the
	// global threshold on its own, and Darwin's ASIC likewise applies
	// one reference-wide mask across all four DRAM-channel partitions.
	Mask *MaskSet
}

// MaskSet is a precomputed set of high-frequency seed codes to mask,
// derived from whole-reference occurrence counts by ComputeMask and
// shared across per-shard tables.
type MaskSet struct {
	threshold int
	codes     map[uint32]struct{}
}

// Masked reports whether code is in the set.
func (m *MaskSet) Masked(code uint32) bool {
	_, ok := m.codes[code]
	return ok
}

// Len returns the number of masked seed codes.
func (m *MaskSet) Len() int { return len(m.codes) }

// Threshold returns the occurrence count above which seeds were masked
// (0 when masking was disabled).
func (m *MaskSet) Threshold() int { return m.threshold }

// Codes returns the masked seed codes in ascending order — the
// serializable form of the set (a persistent index stores these so
// inspection tools can report exactly which seeds the index masked).
func (m *MaskSet) Codes() []uint32 {
	out := make([]uint32, 0, len(m.codes))
	for c := range m.codes {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// maskThreshold computes the occurrence cutoff Build applies for a
// reference of the given length (0 = masking disabled).
func (opts Options) maskThreshold(refLen int, k int) int {
	if opts.NoMask {
		return 0
	}
	mm := opts.MaskMultiplier
	if mm == 0 {
		mm = 32
	}
	floor := opts.MaskFloor
	if floor == 0 {
		floor = 8
	}
	max := mm * refLen / dna.NumSeeds(k)
	if max < floor {
		max = floor
	}
	return max
}

// ComputeMask counts stored seed occurrences over the whole reference
// (after minimizer sampling, exactly as Build would store them) and
// returns the set of codes Build would mask. The result is passed to
// per-shard BuildRange calls via Options.Mask.
func ComputeMask(ref dna.Seq, k int, opts Options) (*MaskSet, error) {
	if k < 1 || k > dna.MaxSeedSize {
		return nil, fmt.Errorf("seedtable: seed size %d out of range [1,%d]", k, dna.MaxSeedSize)
	}
	if len(ref) < k {
		return nil, fmt.Errorf("seedtable: reference length %d shorter than seed size %d", len(ref), k)
	}
	m := &MaskSet{threshold: opts.maskThreshold(len(ref), k), codes: map[uint32]struct{}{}}
	if m.threshold == 0 {
		return m, nil
	}
	scan := func(fn func(code uint32, pos int)) {
		if s := minimizerSampler(opts.MinimizerWindow); s != nil {
			fn = s(fn)
		}
		forEachSeed(ref, k, fn)
	}
	if k <= directLimit {
		counts := make([]uint32, dna.NumSeeds(k))
		scan(func(code uint32, _ int) { counts[code]++ })
		for c, n := range counts {
			if int(n) > m.threshold {
				m.codes[uint32(c)] = struct{}{}
			}
		}
		return m, nil
	}
	// Sparse k: sort the code stream and run-length count, the same
	// O(occurrences) strategy buildSparse uses.
	codes := make([]uint32, 0, len(ref))
	scan(func(code uint32, _ int) { codes = append(codes, code) })
	sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
	for i := 0; i < len(codes); {
		j := i
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		if j-i > m.threshold {
			m.codes[codes[i]] = struct{}{}
		}
		i = j
	}
	return m, nil
}

// DefaultOptions returns the paper's masking configuration.
func DefaultOptions() Options { return Options{MaskMultiplier: 32, MaskFloor: 8} }

// Table is a seed position table over one reference sequence.
type Table struct {
	k       int
	refLen  int
	maskMax int
	mask    *MaskSet // non-nil: precomputed global mask instead of local counts
	drop    int      // range builds: scan warm-up positions to discard/shift
	sample  func(emit func(code uint32, pos int)) func(code uint32, pos int)
	pattern *SpacedPattern // non-nil for spaced-seed tables

	// Dense mode (k ≤ directLimit): ptr has 4^k+1 entries; the hits for
	// seed code c occupy pos[ptr[c]:ptr[c+1]].
	ptr []uint32

	// Sparse mode (k > directLimit): codes lists the distinct seed codes
	// in ascending order and spans[i] delimits pos for codes[i].
	codes []uint32
	spans [][2]uint32

	// pos is the position table: reference offsets grouped by seed code,
	// ascending within each group.
	pos []uint32

	maskedSeeds int
	maskedHits  int
}

// Build constructs the table for all k-mers of ref.
func Build(ref dna.Seq, k int, opts Options) (*Table, error) {
	if k < 1 || k > dna.MaxSeedSize {
		return nil, fmt.Errorf("seedtable: seed size %d out of range [1,%d]", k, dna.MaxSeedSize)
	}
	if len(ref) < k {
		return nil, fmt.Errorf("seedtable: reference length %d shorter than seed size %d", len(ref), k)
	}
	t := &Table{k: k, refLen: len(ref)}
	if opts.Mask != nil {
		t.mask = opts.Mask
		t.maskMax = opts.Mask.Threshold()
	} else {
		t.maskMax = opts.maskThreshold(len(ref), k)
	}
	t.sample = minimizerSampler(opts.MinimizerWindow)
	if k <= directLimit {
		t.buildDense(ref)
	} else {
		t.buildSparse(ref)
	}
	return t, nil
}

// minimizerSampler returns a filter over (code, pos) seed streams that
// keeps only per-window minimizers, or nil when sampling is disabled.
// It is stateful and must be consumed in position order, which the
// build passes guarantee.
func minimizerSampler(w int) func(emit func(code uint32, pos int)) func(code uint32, pos int) {
	if w < 2 {
		return nil
	}
	return func(emit func(code uint32, pos int)) func(code uint32, pos int) {
		type entry struct {
			code uint32
			pos  int
			h    uint32
		}
		var window []entry // monotone deque of window minima candidates
		lastEmitted := -1
		expect := -1 // next contiguous position (N gaps reset the window)
		fill := 0    // consecutive seeds since the last reset
		return func(code uint32, pos int) {
			if pos != expect {
				window = window[:0]
				fill = 0
			}
			expect = pos + 1
			fill++
			h := hashSeed(code)
			for len(window) > 0 && window[len(window)-1].h >= h {
				window = window[:len(window)-1]
			}
			window = append(window, entry{code, pos, h})
			if window[0].pos <= pos-w {
				window = window[1:]
			}
			if fill >= w && window[0].pos != lastEmitted {
				emit(window[0].code, window[0].pos)
				lastEmitted = window[0].pos
			}
		}
	}
}

// hashSeed mixes a seed code so minimizer selection is not biased
// toward poly-A (the lexicographically smallest seeds).
func hashSeed(code uint32) uint32 {
	x := code
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// forEachStored visits every seed occurrence the table stores —
// all positions, or only minimizers when sampling is enabled. Range
// builds scan t.drop warm-up positions ahead of the window so the
// minimizer deque reaches steady state before the first stored
// position; warm-up emissions are discarded and survivors shifted to
// window-local coordinates.
func (t *Table) forEachStored(ref dna.Seq, fn func(code uint32, pos int)) {
	if t.drop > 0 {
		inner := fn
		drop := t.drop
		fn = func(code uint32, pos int) {
			if pos < drop {
				return
			}
			inner(code, pos-drop)
		}
	}
	if t.sample != nil {
		fn = t.sample(fn)
	}
	if t.pattern != nil {
		forEachSeedSpaced(ref, t.pattern, fn)
		return
	}
	forEachSeed(ref, t.k, fn)
}

// buildDense uses a two-pass counting sort into a 4^k+1 pointer table.
func (t *Table) buildDense(ref dna.Seq) {
	n := dna.NumSeeds(t.k)
	counts := make([]uint32, n+1)
	t.forEachStored(ref, func(code uint32, _ int) {
		counts[code+1]++
	})
	// Mask high-frequency seeds by zeroing their counts: seeds in the
	// precomputed global set when one was supplied, else seeds whose
	// local count crosses the threshold.
	switch {
	case t.mask != nil:
		for code := range t.mask.codes {
			if int(code)+1 <= n && counts[code+1] > 0 {
				t.maskedSeeds++
				t.maskedHits += int(counts[code+1])
				counts[code+1] = 0
			}
		}
	case t.maskMax > 0:
		for c := 1; c <= n; c++ {
			if int(counts[c]) > t.maskMax {
				t.maskedSeeds++
				t.maskedHits += int(counts[c])
				counts[c] = 0
			}
		}
	}
	for c := 1; c <= n; c++ {
		counts[c] += counts[c-1]
	}
	t.ptr = counts
	t.pos = make([]uint32, t.ptr[n])
	fill := make([]uint32, n)
	copy(fill, t.ptr[:n])
	t.forEachStored(ref, func(code uint32, i int) {
		if t.ptr[code+1] == t.ptr[code] {
			return // masked (or impossible) seed
		}
		t.pos[fill[code]] = uint32(i)
		fill[code]++
	})
}

// buildSparse sorts (code, position) pairs packed into uint64s and
// derives per-code spans; memory is O(occurrences) instead of O(4^k).
func (t *Table) buildSparse(ref dna.Seq) {
	pairs := make([]uint64, 0, len(ref))
	t.forEachStored(ref, func(code uint32, i int) {
		pairs = append(pairs, uint64(code)<<32|uint64(uint32(i)))
	})
	sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })
	t.pos = make([]uint32, 0, len(pairs))
	for i := 0; i < len(pairs); {
		code := uint32(pairs[i] >> 32)
		j := i
		for j < len(pairs) && uint32(pairs[j]>>32) == code {
			j++
		}
		masked := (t.mask != nil && t.mask.Masked(code)) ||
			(t.mask == nil && t.maskMax > 0 && j-i > t.maskMax)
		if masked {
			t.maskedSeeds++
			t.maskedHits += j - i
			i = j
			continue
		}
		start := uint32(len(t.pos))
		for ; i < j; i++ {
			t.pos = append(t.pos, uint32(pairs[i]))
		}
		t.codes = append(t.codes, code)
		t.spans = append(t.spans, [2]uint32{start, uint32(len(t.pos))})
	}
}

func forEachSeed(ref dna.Seq, k int, fn func(code uint32, pos int)) {
	// Incremental rolling pack: maintain the 2k-bit window, resetting
	// after an N. This is O(|ref|) rather than O(|ref|·k).
	mask := uint32(dna.NumSeeds(k) - 1)
	var code uint32
	valid := 0
	for i := 0; i < len(ref); i++ {
		c := dna.Code(ref[i])
		if c == dna.CodeN {
			valid = 0
			code = 0
			continue
		}
		code = (code<<2 | uint32(c)) & mask
		valid++
		if valid >= k {
			fn(code, i-k+1)
		}
	}
}

// K returns the seed size.
func (t *Table) K() int { return t.k }

// RefLen returns the indexed reference length.
func (t *Table) RefLen() int { return t.refLen }

// MaskThreshold returns the occurrence count above which seeds were
// masked (0 if masking was disabled).
func (t *Table) MaskThreshold() int { return t.maskMax }

// MaskedSeeds returns how many distinct seeds were masked.
func (t *Table) MaskedSeeds() int { return t.maskedSeeds }

// MaskedHits returns how many reference positions the masked seeds had.
func (t *Table) MaskedHits() int { return t.maskedHits }

// Positions returns the total number of stored (unmasked) positions.
func (t *Table) Positions() int { return len(t.pos) }

// Bytes returns the table's retained heap footprint (pointer table or
// sparse code/span index plus the position table) — the quantity a
// byte-budgeted shard set accounts against its MaxResidentBytes.
func (t *Table) Bytes() int64 {
	return int64(len(t.ptr))*4 + int64(len(t.pos))*4 +
		int64(len(t.codes))*4 + int64(len(t.spans))*8
}

// Lookup returns the reference positions of the seed with the given
// packed code, in ascending order. The returned slice aliases internal
// storage and must not be modified. Masked and absent seeds return nil.
func (t *Table) Lookup(code uint32) []uint32 {
	if t.ptr != nil {
		if int(code) >= len(t.ptr)-1 {
			return nil
		}
		s, e := t.ptr[code], t.ptr[code+1]
		if s == e {
			return nil
		}
		return t.pos[s:e]
	}
	i := sort.Search(len(t.codes), func(i int) bool { return t.codes[i] >= code })
	if i == len(t.codes) || t.codes[i] != code {
		return nil
	}
	sp := t.spans[i]
	return t.pos[sp[0]:sp[1]]
}

// LookupSeq packs the seed of q starting at pos (contiguous k bases,
// or the table's spaced pattern) and looks it up. Seeds with N in a
// care position return nil (they are skipped, as in hardware).
func (t *Table) LookupSeq(q dna.Seq, pos int) []uint32 {
	var code uint32
	var ok bool
	if t.pattern != nil {
		code, ok = t.pattern.Pack(q, pos)
	} else {
		code, ok = dna.PackSeed(q, pos, t.k)
	}
	if !ok {
		return nil
	}
	return t.Lookup(code)
}

// PackQuery extracts the seed code at q[pos] using the table's scheme
// (contiguous k-mer or spaced pattern) — the packing D-SOFT must use
// when drawing query seeds against this table.
func (t *Table) PackQuery(q dna.Seq, pos int) (uint32, bool) {
	if t.pattern != nil {
		return t.pattern.Pack(q, pos)
	}
	return dna.PackSeed(q, pos, t.k)
}

// Stats summarizes the table for reporting and for the DRAM model.
type Stats struct {
	K            int
	RefLen       int
	Positions    int
	MaskedSeeds  int
	MaskedHits   int
	HitsPerSeed  float64 // mean hits per possible seed value (paper Table 3 column)
	PointerBytes int64
	PositionByte int64
}

// Stats computes summary statistics. HitsPerSeed is the expected hit
// count for a uniformly random seed drawn from the reference itself,
// i.e. Σ count(s)² / Σ count(s), matching how "hits/seed" behaves for
// query seeds that come from the same genome (Table 3).
func (t *Table) Stats() Stats {
	st := Stats{
		K:           t.k,
		RefLen:      t.refLen,
		Positions:   len(t.pos),
		MaskedSeeds: t.maskedSeeds,
		MaskedHits:  t.maskedHits,
	}
	if t.ptr != nil {
		st.PointerBytes = int64(len(t.ptr)) * 4
		var sumSq, sum float64
		for c := 0; c+1 < len(t.ptr); c++ {
			n := float64(t.ptr[c+1] - t.ptr[c])
			sumSq += n * n
			sum += n
		}
		if sum > 0 {
			st.HitsPerSeed = sumSq / sum
		}
	} else {
		st.PointerBytes = int64(len(t.codes)) * 12 // code + span
		var sumSq, sum float64
		for _, sp := range t.spans {
			n := float64(sp[1] - sp[0])
			sumSq += n * n
			sum += n
		}
		if sum > 0 {
			st.HitsPerSeed = sumSq / sum
		}
	}
	st.PositionByte = int64(len(t.pos)) * 4
	return st
}
