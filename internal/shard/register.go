package shard

import (
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/faults"
)

// Fault injection points for the shard set (armed only via
// faults.Setup):
//
//   - index/build (shared with core.New) fires in NewSet's global
//     mask pass — the sharded equivalent of a monolithic index build.
//   - shard/build fires per actual shard-table build inside Acquire,
//     after the LRU-hit and singleflight checks, so only real builds
//     are faulted: an error fails the batch touching that shard, a
//     delay models a slow rebuild after eviction.
var (
	fpIndexBuild = faults.Default.Point("index/build")
	fpShardBuild = faults.Default.Point("shard/build")
	fpMapRead    = faults.Default.Point("core/map_read")
)

// The sharded mapper links itself into core.Open: any binary that
// imports this package can open either engine from one OpenConfig.
func init() {
	core.RegisterSharded(func(recs []dna.Record, cfg core.Config, spec core.ShardSpec) (core.Mapper, *core.Reference, error) {
		m, ref, err := NewMulti(recs, cfg, Config{
			Shards:           spec.Shards,
			ShardSize:        spec.ShardSize,
			Overlap:          spec.Overlap,
			MaxResidentBytes: spec.MaxResidentBytes,
		})
		if err != nil {
			return nil, nil, err
		}
		return m, ref, nil
	})
}
