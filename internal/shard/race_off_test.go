//go:build !race

package shard

// raceEnabled scales the equivalence sweeps down under the race
// detector (10-15× slowdown): race runs keep full concurrency coverage
// but iterate fewer shard-count/worker-count combinations.
const raceEnabled = false
