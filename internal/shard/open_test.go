package shard

import (
	"context"
	"reflect"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/readsim"
)

// TestOpenSelectsEngine: core.Open with an empty ShardSpec returns the
// monolithic engine; any sharding knob selects the scatter-gather
// engine (this package's init registered the factory). Both must serve
// bit-identical results for the same inputs.
func TestOpenSelectsEngine(t *testing.T) {
	ref := testGenome(t, 90000, 501)
	recs := []dna.Record{{Name: "chr1", Seq: ref}}
	cfg := smallConfig()

	mono, monoRef, err := core.Open(core.OpenConfig{Records: recs, Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mono.(*core.Darwin); !ok {
		t.Fatalf("empty ShardSpec selected %T, want *core.Darwin", mono)
	}
	sharded, shardedRef, err := core.Open(core.OpenConfig{
		Records: recs, Core: cfg,
		Shard: core.ShardSpec{Shards: 3, MaxResidentBytes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := sharded.(*ScatterMapper)
	if !ok {
		t.Fatalf("sharded spec selected %T, want *ScatterMapper", sharded)
	}
	if st, _ := sm.Set().Snapshot(); st.Shards != 3 {
		t.Fatalf("spec geometry not honored: %d shards, want 3", st.Shards)
	}
	if monoRef.NumSeqs() != shardedRef.NumSeqs() || len(monoRef.Seq()) != len(shardedRef.Seq()) {
		t.Fatal("references differ between engines")
	}

	simulated, err := readsim.SimulateN(ref, 8, readsim.Config{Profile: readsim.PacBio, MeanLen: 1500, Seed: 502})
	if err != nil {
		t.Fatal(err)
	}
	reads := make([]dna.Seq, len(simulated))
	for i := range simulated {
		reads[i] = simulated[i].Seq
	}
	want, err := mono.Map(context.Background(), reads, core.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Map(context.Background(), reads, core.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Alignments, want[i].Alignments) {
			t.Errorf("read %d: alignments differ between Open-selected engines", i)
		}
	}
}

// TestOpenRejectsEmptyRecords: Open must fail loudly on no input, not
// build an empty index.
func TestOpenRejectsEmptyRecords(t *testing.T) {
	if _, _, err := core.Open(core.OpenConfig{Core: smallConfig()}); err == nil {
		t.Fatal("Open with no records must error")
	}
}
