package shard

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"darwin/internal/core"
)

// TestScatterShardsMergeBitIdentity is the distributed analog of
// TestBoundaryEquivalence: splitting a batch into per-shard-group
// sub-requests (as the cluster router does across workers), shipping
// each ReadScatter through its JSON wire form, and recombining with
// MergeReadScatters must be bit-identical to the monolithic engine —
// alignments and work stats — including when MaxCandidates truncation
// fires, which is the case the global-merge ordering exists for.
func TestScatterShardsMergeBitIdentity(t *testing.T) {
	ref := testGenome(t, 120000, 201)
	for _, maxCand := range []int{0, 6} {
		cfg := smallConfig()
		cfg.MaxCandidates = maxCand
		mono, err := core.New(ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := New(ref, cfg, Config{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		reads := boundaryReads(t, ref, sm.Set().Geometry())
		want, err := mono.MapAll(reads, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Three ways to carve 4 shards into disjoint worker-owned
		// groups; each group runs on its own clone, as on its own node.
		groupings := [][][]int{
			{{0}, {1}, {2}, {3}},
			{{0, 2}, {1, 3}},
			{{0, 1, 2, 3}},
		}
		for _, groups := range groupings {
			parts := make([][]ReadScatter, len(groups))
			for gi, g := range groups {
				worker, err := sm.Clone()
				if err != nil {
					t.Fatal(err)
				}
				rs, err := worker.ScatterShards(context.Background(), reads, g, 2)
				if err != nil {
					t.Fatalf("max=%d groups=%v: %v", maxCand, groups, err)
				}
				// Round-trip through the wire encoding so the test
				// covers exactly what crosses the network.
				raw, err := json.Marshal(rs)
				if err != nil {
					t.Fatal(err)
				}
				var decoded []ReadScatter
				if err := json.Unmarshal(raw, &decoded); err != nil {
					t.Fatal(err)
				}
				parts[gi] = decoded
			}
			for i := range reads {
				sub := make([]ReadScatter, len(groups))
				for gi := range groups {
					sub[gi] = parts[gi][i]
				}
				got, err := MergeReadScatters(cfg.MaxCandidates, sub)
				if err != nil {
					t.Fatalf("max=%d groups=%v read %d: %v", maxCand, groups, i, err)
				}
				if got.Err != nil {
					t.Fatalf("max=%d groups=%v read %d: %v", maxCand, groups, i, got.Err)
				}
				if !reflect.DeepEqual(got.Alignments, want[i].Alignments) {
					t.Errorf("max=%d groups=%v read %d: alignments diverge from monolithic engine\n got: %+v\nwant: %+v",
						maxCand, groups, i, got.Alignments, want[i].Alignments)
				}
				g, w := got.Stats, want[i].Stats
				if g.Candidates != w.Candidates || g.PassedHTile != w.PassedHTile ||
					g.Tiles != w.Tiles || g.Cells != w.Cells ||
					!reflect.DeepEqual(g.FirstTileScores, w.FirstTileScores) {
					t.Errorf("max=%d groups=%v read %d: merged stats diverge: got {cand %d pass %d tiles %d cells %d}, want {%d %d %d %d}",
						maxCand, groups, i, g.Candidates, g.PassedHTile, g.Tiles, g.Cells,
						w.Candidates, w.PassedHTile, w.Tiles, w.Cells)
				}
			}
		}
	}
}

// TestMergeReadScattersRejectsOverlap: feeding the same shard group's
// sub-response twice (a double-merge) must fail loudly, not silently
// double candidates past the truncation limit.
func TestMergeReadScattersRejectsOverlap(t *testing.T) {
	ref := testGenome(t, 60000, 77)
	cfg := smallConfig()
	sm, err := New(ref, cfg, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reads := boundaryReads(t, ref, sm.Set().Geometry())
	rs, err := sm.ScatterShards(context.Background(), reads[:1], []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Strand[0])+len(rs[0].Strand[1]) == 0 {
		t.Fatal("test needs a read with candidates")
	}
	if _, err := MergeReadScatters(cfg.MaxCandidates, []ReadScatter{rs[0], rs[0]}); err == nil {
		t.Fatal("duplicate sub-response merged without error")
	}
}

// TestScatterShardsValidation: out-of-range and repeated shard IDs are
// batch-level errors, and a read-level failure string poisons only the
// merge of that read.
func TestScatterShardsValidation(t *testing.T) {
	ref := testGenome(t, 60000, 78)
	cfg := smallConfig()
	sm, err := New(ref, cfg, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reads := boundaryReads(t, ref, sm.Set().Geometry())[:1]
	if _, err := sm.ScatterShards(context.Background(), reads, []int{2}, 1); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := sm.ScatterShards(context.Background(), reads, []int{0, 0}, 1); err == nil {
		t.Error("duplicate shard ID accepted")
	}
	res, err := MergeReadScatters(0, []ReadScatter{{Read: 3, Err: "boom"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Index != 3 {
		t.Errorf("poisoned read not surfaced: %+v", res)
	}
}
