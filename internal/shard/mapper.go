package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/obs"
)

// Mapper-level observability. The core/* names are shared with the
// monolithic engine's registry entries on purpose: downstream tooling
// (benchdiff, run reports) reads core/reads as "reads mapped" without
// caring which engine did the mapping. Scatter/gather wall time is the
// shard-specific split on top of the stage/filter and stage/align
// timers the dsoft and gact packages record themselves.
var (
	cReads      = obs.Default.Counter("core/reads")
	cAlignments = obs.Default.Counter("core/alignments")
	cUnmapped   = obs.Default.Counter("core/unmapped")
	cReadPanics = obs.Default.Counter("core/read_panics")
	cReadExpiry = obs.Default.Counter("core/read_deadline_expired")
	hCandidates = obs.Default.Histogram("core/candidates_per_read", 0, 512, 64)
	tScatter    = obs.Default.Timer("shard/scatter")
	tGather     = obs.Default.Timer("shard/gather")
)

// gcand is a D-SOFT candidate lifted into global reference coordinates.
type gcand struct {
	RefPos   int
	QueryPos int
}

// workerState is one goroutine's mutable machinery: a D-SOFT filter
// rebound across shard tables (bin arrays sized once to the largest
// extent), a private GACT kernel, and scratch buffers.
type workerState struct {
	filter  *dsoft.Filter
	engine  *gact.Engine
	buf     []dsoft.Candidate
	filtDur time.Duration
}

// perRead accumulates one read's scatter output across shards.
type perRead struct {
	strand [2][]gcand // forward, reverse
	stats  core.MapStats
	// err poisons this read only: a panic in its scatter work (or an
	// injected per-read fault) fails the read, never the batch.
	err error
}

// ScatterMapper implements core.Mapper over a shard Set. Batch mapping
// is shard-major: the outer loop walks shards, so each shard's table is
// built at most once per batch no matter how small the residency
// budget, and reads are striped across workers within a shard. The
// gather phase then merges each read's core-owned candidates in global
// coordinates, reproduces the monolithic engine's candidate order and
// MaxCandidates truncation exactly, and GACT-extends against the full
// resident reference — making alignments bit-identical to core.Darwin.
//
// A ScatterMapper is not safe for concurrent use (its workers are
// private to a running call); use Clone for additional goroutines.
// Clones share the Set, so concurrent clones also share the residency
// budget.
type ScatterMapper struct {
	set     *Set
	cfg     core.Config
	dcfg    dsoft.Config
	gcfg    gact.Config
	workers []*workerState
}

// New builds a ScatterMapper over ref. The reference is partitioned
// and masked now; shard seed tables are built lazily during mapping.
func New(ref dna.Seq, cfg core.Config, scfg Config) (*ScatterMapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("shard: empty reference")
	}
	stride := cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	g := cfg.GACT
	g.MinFirstTile = cfg.HTile
	cfg.GACT = g
	m := &ScatterMapper{
		cfg:  cfg,
		dcfg: dsoft.Config{N: cfg.SeedN, H: cfg.Threshold, BinSize: cfg.BinSize, Stride: stride},
		gcfg: cfg.GACT,
	}
	// Validate the kernel configuration up front, as core.New does, so
	// a bad config fails at construction rather than mid-batch.
	if _, err := gact.NewEngine(&m.gcfg); err != nil {
		return nil, fmt.Errorf("shard: configuring GACT: %w", err)
	}
	if m.dcfg.N <= 0 || m.dcfg.H <= 0 {
		return nil, fmt.Errorf("shard: D-SOFT needs positive N and h (got N=%d h=%d)", m.dcfg.N, m.dcfg.H)
	}
	set, err := NewSet(ref, cfg, scfg)
	if err != nil {
		return nil, err
	}
	m.set = set
	return m, nil
}

// FromSet builds a ScatterMapper over an existing Set — the
// persistent-index path, where the Set was constructed by
// NewSetPrebuilt around a mapped file's geometry and table loader.
// Kernel configuration is validated exactly as New does.
func FromSet(set *Set, cfg core.Config) (*ScatterMapper, error) {
	if set == nil {
		return nil, fmt.Errorf("shard: nil set")
	}
	stride := cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	g := cfg.GACT
	g.MinFirstTile = cfg.HTile
	cfg.GACT = g
	m := &ScatterMapper{
		set:  set,
		cfg:  cfg,
		dcfg: dsoft.Config{N: cfg.SeedN, H: cfg.Threshold, BinSize: cfg.BinSize, Stride: stride},
		gcfg: cfg.GACT,
	}
	if _, err := gact.NewEngine(&m.gcfg); err != nil {
		return nil, fmt.Errorf("shard: configuring GACT: %w", err)
	}
	if m.dcfg.N <= 0 || m.dcfg.H <= 0 {
		return nil, fmt.Errorf("shard: D-SOFT needs positive N and h (got N=%d h=%d)", m.dcfg.N, m.dcfg.H)
	}
	return m, nil
}

// NewMulti is New over a multi-sequence reference, concatenated with
// the same N padding the monolithic engine uses.
func NewMulti(recs []dna.Record, cfg core.Config, scfg Config) (*ScatterMapper, *core.Reference, error) {
	ref, err := core.NewReference(recs, cfg.BinSize)
	if err != nil {
		return nil, nil, err
	}
	m, err := New(ref.Seq(), cfg, scfg)
	if err != nil {
		return nil, nil, err
	}
	return m, ref, nil
}

// Set returns the underlying shard set (residency snapshots, budgets).
func (m *ScatterMapper) Set() *Set { return m.set }

// Ref returns the concatenated reference.
func (m *ScatterMapper) Ref() dna.Seq { return m.set.ref }

// Config returns the engine configuration.
func (m *ScatterMapper) Config() core.Config { return m.cfg }

// IndexBuildTime reports cumulative shard index construction time
// (global mask pass plus all shard builds so far).
func (m *ScatterMapper) IndexBuildTime() time.Duration { return m.set.BuildTime() }

// Clone returns a mapper sharing the shard set (and its budget) with
// private scratch state.
func (m *ScatterMapper) Clone() (*ScatterMapper, error) {
	return &ScatterMapper{set: m.set, cfg: m.cfg, dcfg: m.dcfg, gcfg: m.gcfg}, nil
}

// CloneMapper implements core.Mapper.
func (m *ScatterMapper) CloneMapper() (core.Mapper, error) { return m.Clone() }

// ensureWorkers grows the worker pool to n states.
func (m *ScatterMapper) ensureWorkers(n int) error {
	for len(m.workers) < n {
		e, err := gact.NewEngine(&m.gcfg)
		if err != nil {
			return err
		}
		m.workers = append(m.workers, &workerState{engine: e})
	}
	return nil
}

// MapRead maps one read through the sharded pipeline. Equivalent to
// core.Darwin.MapRead up to instrumentation: alignments and candidate
// counts are bit-identical; DSOFT work stats count per-shard work (a
// read's seeds are issued against every shard's table), so SeedsIssued
// and friends scale with the shard count.
func (m *ScatterMapper) MapRead(q dna.Seq) ([]core.ReadAlignment, core.MapStats) {
	res, err := m.Map(context.Background(), []dna.Seq{q}, core.WithWorkers(1))
	if err != nil || len(res) != 1 || res[0].Err != nil {
		// Background context never cancels; shard builds were validated
		// at construction. Treat any residual failure as unmapped.
		return nil, core.MapStats{}
	}
	return res[0].Alignments, res[0].Stats
}

// MapAll maps every read with the given worker parallelism.
//
// Deprecated: use Map with core.WithWorkers.
func (m *ScatterMapper) MapAll(reads []dna.Seq, workers int) ([]core.MapResult, error) {
	return m.Map(context.Background(), reads, core.WithWorkers(workers))
}

// MapAllContext is MapAll with cancellation between reads.
//
// Deprecated: use Map with core.WithWorkers.
func (m *ScatterMapper) MapAllContext(ctx context.Context, reads []dna.Seq, workers int) ([]core.MapResult, error) {
	return m.Map(ctx, reads, core.WithWorkers(workers))
}

// Map maps a batch with cancellation between reads and between shards.
// Results are in input order and deterministic for any worker count
// and any shard geometry: each read's merged candidates are sorted
// into the monolithic engine's emission order before truncation, and
// alignments pass through core.SortAlignments.
//
// Per-read failures — a panic in a read's filter or extension work, an
// injected core/map_read fault, or a core.WithDeadlinePerRead budget
// blown — land in that read's MapResult.Err while the rest of the
// batch completes. The per-read deadline is enforced cooperatively
// between candidate extensions (this engine has no goroutine to
// abandon: its workers own shard-set state), so its granularity is one
// GACT extension.
func (m *ScatterMapper) Map(ctx context.Context, reads []dna.Seq, options ...core.MapOption) ([]core.MapResult, error) {
	o := core.ResolveMapOptions(options)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(reads) == 0 {
		return []core.MapResult{}, nil
	}
	if err := m.ensureWorkers(workers); err != nil {
		return nil, err
	}
	// Trace hook: under a traced request the batch gets a shard.map
	// span with scatter/gather phase children; untraced callers pay one
	// context lookup and nil checks.
	_, mSpan := obs.StartSpan(ctx, "shard.map")
	defer mSpan.End()
	mSpan.SetAttr("reads", int64(len(reads)))
	mSpan.SetAttr("workers", int64(workers))
	mSpan.SetAttr("shards", int64(len(m.set.shards)))

	// Reverse-complement every read once; both phases reuse them.
	revs := make([]dna.Seq, len(reads))
	for i, r := range reads {
		revs[i] = dna.RevComp(r)
	}
	acc := make([]perRead, len(reads))

	// Scatter: shard-major D-SOFT. Reads are striped across workers
	// (worker w owns reads i ≡ w mod workers), so each accumulator has
	// exactly one writer and candidate order per read is deterministic:
	// shards ascending, then the filter's (QueryPos, RefPos) emission
	// order within a shard.
	scatterStart := time.Now()
	scSpan := mSpan.StartChild("shard.scatter")
	defer scSpan.End() // idempotent; covers the loop's error returns
	hits0, builds0 := cAcquireHits.Value(), cBuilds.Value()
	for si := range m.set.shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		table, err := m.set.Acquire(si)
		if err != nil {
			return nil, err
		}
		part := m.set.shards[si].part
		err = m.runStriped(ctx, workers, len(reads), func(w *workerState, i int) error {
			if w.filter == nil {
				f, ferr := dsoft.New(table, m.dcfg)
				if ferr != nil {
					return ferr
				}
				w.filter = f
			} else if ferr := w.filter.SetTable(table); ferr != nil {
				return ferr
			}
			pr := &acc[i]
			if pr.err != nil {
				return nil // poisoned by an earlier shard's pass; skip
			}
			if perr := m.scatterRead(w, pr, reads[i], revs[i], part); perr != nil {
				pr.err = perr
				// The filter's bin state may be mid-update after a
				// panic; rebuild it before the worker's next read.
				w.filter = nil
			}
			return nil
		})
		// Unpin the shard table from every worker before the next
		// shard (or an early return) so eviction can reclaim it.
		for _, w := range m.workers[:workers] {
			if w.filter != nil {
				w.filter.SetTable(nil)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	tScatter.Observe(time.Since(scatterStart))
	// Process-wide counter deltas, so concurrent clones sharing the Set
	// blur each other's numbers slightly; per-call exactness is not
	// worth threading counters through Acquire.
	scSpan.SetAttr("shard_hits", cAcquireHits.Value()-hits0)
	scSpan.SetAttr("shard_builds", cBuilds.Value()-builds0)
	scSpan.End()

	// Gather: per-read candidate merge, truncation, GACT extension
	// against the full resident reference at global anchors.
	gatherStart := time.Now()
	gSpan := mSpan.StartChild("shard.gather")
	defer gSpan.End()
	prog := core.NewProgressSink(o.Progress, len(reads))
	out := make([]core.MapResult, len(reads))
	err := m.runStriped(ctx, workers, len(reads), func(w *workerState, i int) error {
		readSpan := gSpan.StartChild("core.read")
		if readSpan != nil {
			readSpan.SetAttr("read", int64(i))
			w.engine.SetSpan(readSpan)
		}
		readStart := time.Now()
		out[i] = m.gatherRead(w, i, reads[i], revs[i], &acc[i], o.DeadlinePerRead)
		if readSpan != nil {
			w.engine.SetSpan(nil)
			finishReadSpan(readSpan, readStart, &out[i])
		}
		prog.Step()
		return nil
	})
	tGather.Observe(time.Since(gatherStart))
	gSpan.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// finishReadSpan closes one read's gather-phase trace span, mirroring
// core's per-read span shape: work attributes from MapStats plus
// synthesized stage/filter and stage/align children carrying the
// read's own durations. The filter time was actually spent in the
// scatter phase (shard-major order interleaves all reads' filter
// work), so the child records where the read's time went, not when.
func finishReadSpan(sp *obs.Span, start time.Time, res *core.MapResult) {
	st := res.Stats
	sp.SetAttr("candidates", int64(st.Candidates))
	sp.SetAttr("passed_htile", int64(st.PassedHTile))
	sp.SetAttr("tiles", int64(st.Tiles))
	sp.SetAttr("cells", st.Cells)
	sp.SetAttr("alignments", int64(len(res.Alignments)))
	if res.Err != nil {
		sp.SetAttr("failed", 1)
	}
	sp.AddTimedChild("stage/filter", start, st.FiltrationTime)
	sp.AddTimedChild("stage/align", start.Add(st.FiltrationTime), st.AlignmentTime)
	sp.End()
}

// scatterRead runs one read's D-SOFT pass over one shard with panic
// isolation: a panic (a poisoned read crashing the filter) fails the
// read, never the batch or the worker.
func (m *ScatterMapper) scatterRead(w *workerState, pr *perRead, fwd, rev dna.Seq, part Part) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cReadPanics.Inc()
			err = fmt.Errorf("shard: read scatter panicked: %v", r)
		}
	}()
	for strand, query := range []dna.Seq{fwd, rev} {
		start := time.Now()
		cands, dst := w.filter.QueryInto(query, w.buf[:0])
		w.buf = cands
		pr.stats.DSOFT.Add(dst)
		for _, c := range cands {
			gpos := c.RefPos + part.Extent.Start
			if part.Core.Contains(gpos) {
				pr.strand[strand] = append(pr.strand[strand], gcand{RefPos: gpos, QueryPos: c.QueryPos})
			}
		}
		pr.stats.FiltrationTime += time.Since(start)
	}
	return nil
}

// gatherRead merges, truncates, and extends one read's candidates,
// with panic isolation and a cooperative per-read deadline checked
// between candidate extensions. The core/map_read fault point fires
// inside the recover scope, so injected errors and panics exercise the
// same per-read containment as organic ones.
func (m *ScatterMapper) gatherRead(w *workerState, i int, fwd, rev dna.Seq, pr *perRead, budget time.Duration) (out core.MapResult) {
	defer func() {
		if r := recover(); r != nil {
			cReadPanics.Inc()
			// The engine's scratch may be mid-update; retire it so the
			// worker's next read starts clean.
			if e, eerr := gact.NewEngine(&m.gcfg); eerr == nil {
				w.engine = e
			}
			out = core.MapResult{Index: i, Err: fmt.Errorf("shard: read mapping panicked: %v", r)}
		}
	}()
	if pr.err != nil {
		return core.MapResult{Index: i, Err: pr.err}
	}
	if err := fpMapRead.Fire(); err != nil {
		return core.MapResult{Index: i, Err: err}
	}
	readStart := time.Now()
	var alns []core.ReadAlignment
	stats := pr.stats
	for strand := range pr.strand {
		cs := pr.strand[strand]
		// The monolithic filter emits candidates in ascending
		// (QueryPos, RefPos) order — seeds advance through the query
		// and each seed's hit list is position-sorted — and no two
		// candidates share a (QueryPos, RefPos) pair. Sorting the
		// merged per-shard lists by the same key reproduces that
		// order exactly, so MaxCandidates truncates the same prefix.
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].QueryPos != cs[b].QueryPos {
				return cs[a].QueryPos < cs[b].QueryPos
			}
			return cs[a].RefPos < cs[b].RefPos
		})
		stats.Candidates += len(cs)
		if m.cfg.MaxCandidates > 0 && len(cs) > m.cfg.MaxCandidates {
			cs = cs[:m.cfg.MaxCandidates]
		}
		query := fwd
		if strand == 1 {
			query = rev
		}
		start := time.Now()
		for _, c := range cs {
			if budget > 0 && time.Since(readStart) > budget {
				cReadExpiry.Inc()
				return core.MapResult{Index: i, Err: fmt.Errorf("shard: read exceeded per-read deadline %v: %w", budget, context.DeadlineExceeded)}
			}
			res, gst, err := w.engine.Extend(m.set.ref, query, c.RefPos, c.QueryPos)
			if err != nil {
				continue // invalid anchor geometry; candidate is unusable
			}
			stats.Tiles += gst.Tiles
			stats.Cells += gst.Cells
			stats.FirstTileScores = append(stats.FirstTileScores, gst.FirstTileScore)
			if res == nil {
				continue
			}
			stats.PassedHTile++
			alns = append(alns, core.ReadAlignment{Result: *res, Reverse: strand == 1, FirstTileScore: gst.FirstTileScore})
		}
		stats.AlignmentTime += time.Since(start)
	}
	core.SortAlignments(alns)
	cReads.Inc()
	cAlignments.Add(int64(len(alns)))
	if len(alns) == 0 {
		cUnmapped.Inc()
	}
	hCandidates.Observe(float64(stats.Candidates))
	return core.MapResult{Index: i, Alignments: alns, Stats: stats}
}

// runStriped applies fn(worker, i) for every read index i, striping
// reads across workers deterministically (worker w handles i ≡ w mod
// workers). With one worker it runs inline. Cancellation is checked
// between reads; the first error wins.
func (m *ScatterMapper) runStriped(ctx context.Context, workers, n int, fn func(w *workerState, i int) error) error {
	if workers <= 1 {
		w := m.workers[0]
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(w, i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := m.workers[wi]
			for i := wi; i < n; i += workers {
				if ctx.Err() != nil {
					return
				}
				if err := fn(w, i); err != nil {
					errs[wi] = err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
