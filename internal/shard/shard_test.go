package shard

import (
	"reflect"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/obs"
	"darwin/internal/readsim"
)

func testGenome(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: n, GC: 0.45, RepeatFraction: 0.2, RepeatFamilies: 5,
		RepeatUnitLen: 250, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Seq
}

func smallConfig() core.Config {
	return core.DefaultConfig(11, 600, 20)
}

func TestPartitionInvariants(t *testing.T) {
	cfg := smallConfig()
	minOv := MinOverlap(cfg)
	cases := []struct {
		refLen, count, size, overlap int
	}{
		{100000, 4, 0, 0},
		{100000, 1, 0, 0},
		{100000, 0, 30000, 0},
		{100000, 7, 0, 5000},
		{131072, 4, 0, 0}, // exact multiple
		{999, 3, 0, 0},    // shorter than one bin per shard
	}
	for _, c := range cases {
		g, err := Partition(c.refLen, c.count, c.size, c.overlap, minOv, cfg.BinSize)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if g.Overlap < minOv || g.Overlap%cfg.BinSize != 0 {
			t.Fatalf("%+v: overlap %d below minimum %d or unaligned", c, g.Overlap, minOv)
		}
		if g.ShardSize%cfg.BinSize != 0 {
			t.Fatalf("%+v: shard size %d not bin-aligned", c, g.ShardSize)
		}
		// Cores tile [0, refLen) disjointly and extents are B-aligned
		// supersets of their cores.
		next := 0
		for i, p := range g.Parts {
			if p.Core.Start != next {
				t.Fatalf("%+v: shard %d core starts at %d, want %d", c, i, p.Core.Start, next)
			}
			if p.Core.Len() <= 0 {
				t.Fatalf("%+v: shard %d empty core", c, i)
			}
			next = p.Core.End
			if p.Extent.Start%cfg.BinSize != 0 {
				t.Fatalf("%+v: shard %d extent start %d not bin-aligned", c, i, p.Extent.Start)
			}
			if p.Extent.Start > p.Core.Start || p.Extent.End < p.Core.End {
				t.Fatalf("%+v: shard %d extent %+v does not cover core %+v", c, i, p.Extent, p.Core)
			}
			if p.Extent.Start < 0 || p.Extent.End > c.refLen {
				t.Fatalf("%+v: shard %d extent %+v out of range", c, i, p.Extent)
			}
		}
		if next != c.refLen {
			t.Fatalf("%+v: cores end at %d, want %d", c, next, c.refLen)
		}
		for _, p := range g.Parts {
			for _, pos := range []int{p.Core.Start, p.Core.End - 1} {
				if got := g.OwnerOf(pos); got != p.Index {
					t.Fatalf("%+v: OwnerOf(%d) = %d, want %d", c, pos, got, p.Index)
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(0, 2, 0, 0, 0, 128); err == nil {
		t.Error("zero reference length should error")
	}
	if _, err := Partition(1000, 2, 500, 0, 0, 128); err == nil {
		t.Error("count and size together should error")
	}
	if _, err := Partition(1000, 0, 0, 0, 0, 128); err == nil {
		t.Error("neither count nor size should error")
	}
	if _, err := Partition(1000, 2, 0, 0, 0, 100); err == nil {
		t.Error("non-power-of-two bin size should error")
	}
}

// alignmentsOf strips stats down to the bit-comparable parts.
func alignmentsOf(res []core.MapResult) [][]core.ReadAlignment {
	out := make([][]core.ReadAlignment, len(res))
	for i, r := range res {
		out[i] = r.Alignments
	}
	return out
}

// boundaryReads builds reads that straddle every core boundary of the
// geometry: exact substrings centered on each boundary, plus their
// reverse complements, plus simulated error-bearing reads.
func boundaryReads(t *testing.T, ref dna.Seq, g *Geometry) []dna.Seq {
	t.Helper()
	var reads []dna.Seq
	const half = 1200
	for _, p := range g.Parts[1:] {
		b := p.Core.Start
		lo, hi := b-half, b+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(ref) {
			hi = len(ref)
		}
		reads = append(reads, ref[lo:hi], dna.RevComp(ref[lo:hi]))
	}
	nsim := 12
	if raceEnabled {
		nsim = 5
	}
	sim, err := readsim.SimulateN(ref, nsim, readsim.Config{Profile: readsim.PacBio, MeanLen: 2500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim {
		reads = append(reads, sim[i].Seq)
	}
	return reads
}

// TestBoundaryEquivalence is the central exactness property: for reads
// straddling every shard boundary, the sharded mapper's alignments are
// bit-identical to the monolithic engine's for shard counts 1, 2, 4,
// and 7 — including candidate counts and MaxCandidates truncation.
func TestBoundaryEquivalence(t *testing.T) {
	ref := testGenome(t, 120000, 201)
	cfg := smallConfig()
	mono, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := []int{1, 2, 4, 7}
	if raceEnabled {
		shardCounts = []int{1, 4}
	}
	for _, shards := range shardCounts {
		sm, err := New(ref, cfg, Config{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		reads := boundaryReads(t, ref, sm.Set().Geometry())
		want, err := mono.MapAll(reads, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sm.MapAll(reads, 4)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Alignments, want[i].Alignments) {
				t.Errorf("shards=%d read %d: alignments diverge from monolithic engine\n got: %+v\nwant: %+v",
					shards, i, got[i].Alignments, want[i].Alignments)
			}
			g, w := got[i].Stats, want[i].Stats
			if g.Candidates != w.Candidates || g.PassedHTile != w.PassedHTile ||
				g.Tiles != w.Tiles || g.Cells != w.Cells {
				t.Errorf("shards=%d read %d: work stats diverge: got {cand %d pass %d tiles %d cells %d}, want {%d %d %d %d}",
					shards, i, g.Candidates, g.PassedHTile, g.Tiles, g.Cells,
					w.Candidates, w.PassedHTile, w.Tiles, w.Cells)
			}
		}
	}
}

// TestDeterminism maps one batch under every combination of worker and
// shard counts and requires bit-identical results (satellite of the
// stable-ordering guarantee; the monolithic path is covered by
// core's TestMapAllDeterministicOrdering).
func TestDeterminism(t *testing.T) {
	ref := testGenome(t, 90000, 301)
	cfg := smallConfig()
	// One fixed read set (from the 3-shard geometry's boundaries) for
	// every engine variant, so results are comparable across variants.
	probe, err := New(ref, cfg, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads := boundaryReads(t, ref, probe.Set().Geometry())
	var baseline []core.MapResult
	for _, shards := range []int{1, 3} {
		sm, err := New(ref, cfg, Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		workerCounts := []int{1, 2, 5}
		if raceEnabled {
			workerCounts = []int{1, 5}
		}
		for _, workers := range workerCounts {
			res, err := sm.MapAll(reads, workers)
			if err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = res
				continue
			}
			if !reflect.DeepEqual(alignmentsOf(res), alignmentsOf(baseline)) {
				t.Fatalf("shards=%d workers=%d: results differ from baseline", shards, workers)
			}
		}
	}
}

// TestEvictionThrash forces the budget to its floor (one resident
// shard): every shard is rebuilt on every batch, yet results stay
// bit-identical and residency never exceeds one table.
func TestEvictionThrash(t *testing.T) {
	ref := testGenome(t, 100000, 401)
	cfg := smallConfig()
	mono, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(ref, cfg, Config{Shards: 5, MaxResidentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	reads := boundaryReads(t, ref, sm.Set().Geometry())
	builds0 := obs.Default.Counter("shard/builds").Value()
	evict0 := obs.Default.Counter("shard/evictions").Value()
	for round := 0; round < 2; round++ {
		want, err := mono.MapAll(reads, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sm.MapAll(reads, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(alignmentsOf(got), alignmentsOf(want)) {
			t.Fatalf("round %d: thrashing mapper diverged from monolithic engine", round)
		}
		st, infos := sm.Set().Snapshot()
		if st.Resident != 1 {
			t.Fatalf("round %d: %d shards resident, want 1 (budget floor)", round, st.Resident)
		}
		resident := 0
		for _, info := range infos {
			if info.Resident {
				resident++
				if info.Bytes <= 0 {
					t.Fatalf("round %d: resident shard %d reports %d bytes", round, info.Index, info.Bytes)
				}
			}
		}
		if resident != 1 {
			t.Fatalf("round %d: per-shard infos report %d resident, want 1", round, resident)
		}
	}
	builds := obs.Default.Counter("shard/builds").Value() - builds0
	evicts := obs.Default.Counter("shard/evictions").Value() - evict0
	// Shard-major batching bounds rebuild cost: exactly one build per
	// shard per batch even at the budget floor.
	if builds != 2*5 {
		t.Errorf("builds = %d, want 10 (5 shards × 2 rounds)", builds)
	}
	if evicts != builds-1 {
		t.Errorf("evictions = %d, want builds-1 = %d", evicts, builds-1)
	}
	if peak := sm.Set().PeakResidentBytes(); peak <= 0 {
		t.Errorf("peak resident bytes %d, want > 0", peak)
	}
}

// TestMapReadMatchesMapAll checks the single-read surface agrees with
// the batch surface and the monolithic engine.
func TestMapReadMatchesMapAll(t *testing.T) {
	ref := testGenome(t, 60000, 501)
	cfg := smallConfig()
	mono, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := New(ref, cfg, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads := boundaryReads(t, ref, sm.Set().Geometry())[:6]
	for i, r := range reads {
		wantAlns, wantStats := mono.MapRead(r)
		gotAlns, gotStats := sm.MapRead(r)
		if !reflect.DeepEqual(gotAlns, wantAlns) {
			t.Errorf("read %d: MapRead alignments diverge", i)
		}
		if gotStats.Candidates != wantStats.Candidates {
			t.Errorf("read %d: candidates %d, want %d", i, gotStats.Candidates, wantStats.Candidates)
		}
	}
}

// TestCloneSharesBudget maps concurrently through clones and checks
// the shared set's residency accounting stays within budget.
func TestCloneSharesBudget(t *testing.T) {
	ref := testGenome(t, 80000, 601)
	cfg := smallConfig()
	sm, err := New(ref, cfg, Config{Shards: 4, MaxResidentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sm.CloneMapper()
	if err != nil {
		t.Fatal(err)
	}
	if m2.(*ScatterMapper).Set() != sm.Set() {
		t.Fatal("clone does not share the shard set")
	}
	reads := boundaryReads(t, ref, sm.Set().Geometry())[:8]
	done := make(chan error, 2)
	for _, m := range []core.Mapper{sm, m2} {
		go func(m core.Mapper) {
			_, err := m.MapAll(reads, 2)
			done <- err
		}(m)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := sm.Set().Snapshot(); st.Resident < 1 {
		t.Fatalf("no shards resident after mapping: %+v", st)
	}
}

func TestNewErrors(t *testing.T) {
	ref := testGenome(t, 10000, 701)
	cfg := smallConfig()
	if _, err := New(nil, cfg, Config{Shards: 2}); err == nil {
		t.Error("empty reference should error")
	}
	if _, err := New(ref, cfg, Config{Shards: 2, ShardSize: 100}); err == nil {
		t.Error("count and size together should error")
	}
	bad := cfg
	bad.SeedN = 0
	if _, err := New(ref, bad, Config{Shards: 2}); err == nil {
		t.Error("N=0 should error")
	}
	bad = cfg
	bad.GACT.T = 0
	if _, err := New(ref, bad, Config{Shards: 2}); err == nil {
		t.Error("invalid GACT config should error at construction")
	}
}
