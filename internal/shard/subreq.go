package shard

// Sub-request contract for distributed scatter-gather. A cluster
// router splits one read batch into per-shard sub-requests served by
// shard-owning workers; each worker runs ScatterShards over the shards
// it owns and returns every core-owned candidate in global reference
// coordinates together with its GACT extension outcome. The router
// then recombines the per-shard results with MergeReadScatters, which
// reproduces the monolithic engine's candidate order, MaxCandidates
// truncation, and alignment sort exactly — so the distributed answer
// is bit-identical to core.Darwin no matter how the shards were
// assigned to workers.
//
// The one structural difference from the in-process gather
// (gatherRead) is where truncation happens. A worker sees only its own
// shards' candidates, so it cannot know which of them survive the
// global per-strand MaxCandidates cut; it therefore extends all of
// them and ships the outcomes, and the router applies the global
// truncation after the merge, discarding extensions of truncated
// candidates. That is sound because a candidate's GACT extension is a
// pure function of (reference, query, anchor) — independent of every
// other candidate — and shard cores partition the reference, so no
// candidate appears twice.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/obs"
)

// CandExt is one D-SOFT candidate in global reference coordinates
// plus its GACT extension outcome. JSON tags are deliberately short:
// a sub-response carries one CandExt per candidate per read.
type CandExt struct {
	// QueryPos, RefPos anchor the candidate (RefPos is global).
	QueryPos int `json:"q"`
	RefPos   int `json:"r"`
	// Ext reports that GACT extension ran without error. A false Ext
	// mirrors the monolithic engine skipping a candidate whose anchor
	// geometry is invalid: the candidate still occupies a truncation
	// slot but contributes no work stats and no alignment.
	Ext bool `json:"x,omitempty"`
	// Aligned reports the extension survived the first-tile filter and
	// produced an alignment (the fields below are then meaningful).
	Aligned    bool   `json:"a,omitempty"`
	Score      int    `json:"s,omitempty"`
	RefStart   int    `json:"rs,omitempty"`
	RefEnd     int    `json:"re,omitempty"`
	QueryStart int    `json:"qs,omitempty"`
	QueryEnd   int    `json:"qe,omitempty"`
	Cigar      string `json:"c,omitempty"`
	// FirstTileScore and the tile/cell counts are recorded whenever
	// Ext is true, aligned or not, so the merge can rebuild the
	// monolithic MapStats for the surviving candidate set.
	FirstTileScore int   `json:"ft,omitempty"`
	Tiles          int   `json:"t,omitempty"`
	Cells          int64 `json:"cl,omitempty"`
}

// ReadScatter is one read's sub-response from one worker: all of the
// worker's core-owned candidates for the read, split by strand
// (forward, reverse-complement), each with its extension outcome.
type ReadScatter struct {
	// Read is the read's index within the originating batch.
	Read int `json:"read"`
	// Strand holds forward (0) and reverse-complement (1) candidates.
	Strand [2][]CandExt `json:"strand"`
	// Err poisons this read only (panic containment, injected fault);
	// the rest of the sub-response remains valid.
	Err string `json:"err,omitempty"`
}

// ScatterShards maps a batch against a subset of shards and returns
// per-read candidate/extension lists instead of merged alignments —
// the worker half of the distributed scatter-gather contract. Every
// core-owned candidate is extended (no MaxCandidates truncation; see
// the package comment) and reported, including failed extensions, so
// the caller can apply the global truncation and still account every
// candidate. Results are deterministic for any worker count: each
// strand's candidates are sorted into (QueryPos, RefPos) order.
//
// Per-read failures (panics, the core/map_read fault point) land in
// that read's ReadScatter.Err; batch-level failures (cancelled
// context, shard build errors, shard IDs out of range) return an
// error.
func (m *ScatterMapper) ScatterShards(ctx context.Context, reads []dna.Seq, shardIDs []int, workers int) ([]ReadScatter, error) {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	if len(reads) == 0 {
		return []ReadScatter{}, nil
	}
	ids := append([]int(nil), shardIDs...)
	sort.Ints(ids)
	for i, id := range ids {
		if id < 0 || id >= len(m.set.shards) {
			return nil, fmt.Errorf("shard: scatter shard %d out of range [0,%d)", id, len(m.set.shards))
		}
		if i > 0 && ids[i-1] == id {
			return nil, fmt.Errorf("shard: scatter shard %d listed twice", id)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := m.ensureWorkers(workers); err != nil {
		return nil, err
	}
	_, mSpan := obs.StartSpan(ctx, "shard.scatter_shards")
	defer mSpan.End()
	mSpan.SetAttr("reads", int64(len(reads)))
	mSpan.SetAttr("shards", int64(len(ids)))

	revs := make([]dna.Seq, len(reads))
	for i, r := range reads {
		revs[i] = dna.RevComp(r)
	}
	acc := make([]perRead, len(reads))

	// Scatter phase: identical to Map's, restricted to the given
	// shards. Shard-major so each table is acquired once per batch.
	scatterStart := time.Now()
	for _, si := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		table, err := m.set.Acquire(si)
		if err != nil {
			return nil, err
		}
		part := m.set.shards[si].part
		err = m.runStriped(ctx, workers, len(reads), func(w *workerState, i int) error {
			if w.filter == nil {
				f, ferr := dsoft.New(table, m.dcfg)
				if ferr != nil {
					return ferr
				}
				w.filter = f
			} else if ferr := w.filter.SetTable(table); ferr != nil {
				return ferr
			}
			pr := &acc[i]
			if pr.err != nil {
				return nil
			}
			if perr := m.scatterRead(w, pr, reads[i], revs[i], part); perr != nil {
				pr.err = perr
				w.filter = nil
			}
			return nil
		})
		for _, w := range m.workers[:workers] {
			if w.filter != nil {
				w.filter.SetTable(nil)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	tScatter.Observe(time.Since(scatterStart))

	// Extension phase: extend every core-owned candidate untruncated
	// and record outcomes instead of building alignments.
	gatherStart := time.Now()
	out := make([]ReadScatter, len(reads))
	err := m.runStriped(ctx, workers, len(reads), func(w *workerState, i int) error {
		out[i] = m.extendRead(w, i, reads[i], revs[i], &acc[i])
		return nil
	})
	tGather.Observe(time.Since(gatherStart))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// extendRead runs the worker half of the gather for one read: sort
// each strand's candidates, extend them all, and record outcomes.
// Panic isolation and the core/map_read fault point mirror gatherRead,
// so the distributed path exercises the same per-read containment.
func (m *ScatterMapper) extendRead(w *workerState, i int, fwd, rev dna.Seq, pr *perRead) (out ReadScatter) {
	defer func() {
		if r := recover(); r != nil {
			cReadPanics.Inc()
			if e, eerr := gact.NewEngine(&m.gcfg); eerr == nil {
				w.engine = e
			}
			out = ReadScatter{Read: i, Err: fmt.Sprintf("shard: read scatter-extend panicked: %v", r)}
		}
	}()
	if pr.err != nil {
		return ReadScatter{Read: i, Err: pr.err.Error()}
	}
	if err := fpMapRead.Fire(); err != nil {
		return ReadScatter{Read: i, Err: err.Error()}
	}
	out = ReadScatter{Read: i}
	for strand := range pr.strand {
		cs := pr.strand[strand]
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].QueryPos != cs[b].QueryPos {
				return cs[a].QueryPos < cs[b].QueryPos
			}
			return cs[a].RefPos < cs[b].RefPos
		})
		query := fwd
		if strand == 1 {
			query = rev
		}
		exts := make([]CandExt, 0, len(cs))
		for _, c := range cs {
			ce := CandExt{QueryPos: c.QueryPos, RefPos: c.RefPos}
			res, gst, err := w.engine.Extend(m.set.ref, query, c.RefPos, c.QueryPos)
			if err == nil {
				ce.Ext = true
				ce.FirstTileScore = gst.FirstTileScore
				ce.Tiles = gst.Tiles
				ce.Cells = gst.Cells
				if res != nil {
					ce.Aligned = true
					ce.Score = res.Score
					ce.RefStart = res.RefStart
					ce.RefEnd = res.RefEnd
					ce.QueryStart = res.QueryStart
					ce.QueryEnd = res.QueryEnd
					ce.Cigar = res.Cigar.String()
				}
			}
			exts = append(exts, ce)
		}
		out.Strand[strand] = exts
	}
	return out
}

// MergeReadScatters recombines one read's sub-responses from disjoint
// shard groups into the monolithic engine's result. parts must all
// carry the same Read index and come from non-overlapping shard sets;
// maxCandidates is the engine's per-strand truncation limit (0 = no
// limit), which must match the configuration the monolithic engine
// would have used.
//
// The merge reproduces the monolithic pipeline stage by stage: per
// strand, concatenate and sort candidates by (QueryPos, RefPos) —
// recovering the filter's emission order — count them, truncate to
// maxCandidates, then keep the recorded extension outcomes of the
// survivors and sort alignments with core.SortAlignments. MapStats
// work fields (Candidates, PassedHTile, Tiles, Cells,
// FirstTileScores) are rebuilt exactly; D-SOFT filter stats and stage
// timings stay zero (they describe per-worker work, which scales with
// the shard count and is reported by the workers' own metrics).
func MergeReadScatters(maxCandidates int, parts []ReadScatter) (core.MapResult, error) {
	if len(parts) == 0 {
		return core.MapResult{}, fmt.Errorf("shard: merge of zero sub-responses")
	}
	read := parts[0].Read
	for _, p := range parts {
		if p.Read != read {
			return core.MapResult{}, fmt.Errorf("shard: merging mismatched reads %d and %d", read, p.Read)
		}
		if p.Err != "" {
			return core.MapResult{Index: read, Err: fmt.Errorf("shard: sub-request read failure: %s", p.Err)}, nil
		}
	}
	var alns []core.ReadAlignment
	var stats core.MapStats
	for strand := 0; strand < 2; strand++ {
		n := 0
		for _, p := range parts {
			n += len(p.Strand[strand])
		}
		cs := make([]CandExt, 0, n)
		for _, p := range parts {
			cs = append(cs, p.Strand[strand]...)
		}
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].QueryPos != cs[b].QueryPos {
				return cs[a].QueryPos < cs[b].QueryPos
			}
			return cs[a].RefPos < cs[b].RefPos
		})
		// Disjoint shard cores mean no candidate can arrive twice; a
		// duplicate is a double-merge (the exactly-one-merge property
		// violated upstream) and must fail loudly rather than skew
		// truncation.
		for i := 1; i < len(cs); i++ {
			if cs[i].QueryPos == cs[i-1].QueryPos && cs[i].RefPos == cs[i-1].RefPos {
				return core.MapResult{}, fmt.Errorf("shard: duplicate candidate (q=%d r=%d) in merge: sub-responses overlap", cs[i].QueryPos, cs[i].RefPos)
			}
		}
		stats.Candidates += len(cs)
		if maxCandidates > 0 && len(cs) > maxCandidates {
			cs = cs[:maxCandidates]
		}
		for _, c := range cs {
			if !c.Ext {
				continue
			}
			stats.Tiles += c.Tiles
			stats.Cells += c.Cells
			stats.FirstTileScores = append(stats.FirstTileScores, c.FirstTileScore)
			if !c.Aligned {
				continue
			}
			stats.PassedHTile++
			cig, err := align.ParseCigar(c.Cigar)
			if err != nil {
				return core.MapResult{}, fmt.Errorf("shard: candidate (q=%d r=%d): %w", c.QueryPos, c.RefPos, err)
			}
			alns = append(alns, core.ReadAlignment{
				Result: align.Result{
					Score:      c.Score,
					RefStart:   c.RefStart,
					RefEnd:     c.RefEnd,
					QueryStart: c.QueryStart,
					QueryEnd:   c.QueryEnd,
					Cigar:      cig,
				},
				Reverse:        strand == 1,
				FirstTileScore: c.FirstTileScore,
			})
		}
	}
	core.SortAlignments(alns)
	return core.MapResult{Index: read, Alignments: alns, Stats: stats}, nil
}
