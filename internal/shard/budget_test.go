//go:build !race

// The genome-scale budget test: a 32 Mbp reference mapped under a
// residency budget of ~¼ the full index, asserting correctness, the
// budget (via the obs gauge, per the subsystem's acceptance criteria),
// and throughput within 2× of the monolithic engine. Excluded from
// race builds: the race detector's slowdown makes the throughput
// comparison meaningless and the suite too slow.

package shard

import (
	"reflect"
	"testing"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/obs"
	"darwin/internal/readsim"
)

func TestBudgetedGenomeScaleMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("32 Mbp genome build in -short mode")
	}
	g, err := genome.Generate(genome.Config{
		Length: 32_000_000, GC: 0.41, RepeatFraction: 0.25, RepeatFamilies: 12,
		RepeatUnitLen: 300, RepeatDivergence: 0.12, TandemFraction: 0.08, Seed: 808,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Seq
	// k=14 (the paper's PacBio reference-guided setting) uses the sparse
	// table layout, whose size scales with the extent — the regime where
	// sharding actually bounds memory. Dense small-k tables carry a
	// 4^k-entry pointer array per shard regardless of extent.
	cfg := core.DefaultConfig(14, 600, 24)

	reads, err := readsim.SimulateN(ref, 48, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 809})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]dna.Seq, len(reads))
	for i := range reads {
		queries[i] = reads[i].Seq
	}
	workers := 4

	// Both engines are timed end-to-end (index construction + MapAll):
	// the sharded engine builds its tables lazily inside MapAll, so a
	// map-only timer would charge index construction to one side only.
	start := time.Now()
	mono, err := core.New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.MapAll(queries, workers)
	if err != nil {
		t.Fatal(err)
	}
	monoDur := time.Since(start)
	fullBytes := mono.Table().Bytes()
	budget := fullBytes / 4

	start = time.Now()
	sm, err := New(ref, cfg, Config{Shards: 16, MaxResidentBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sm.MapAll(queries, workers)
	if err != nil {
		t.Fatal(err)
	}
	shardDur := time.Since(start)

	if !reflect.DeepEqual(alignmentsOf(got), alignmentsOf(want)) {
		t.Fatal("budgeted sharded mapping diverged from monolithic engine")
	}
	mapped := 0
	for _, r := range got {
		if len(r.Alignments) > 0 {
			mapped++
		}
	}
	if mapped < len(reads)*3/4 {
		t.Fatalf("only %d/%d reads mapped; test parameters too weak to mean anything", mapped, len(reads))
	}

	// The budget must hold at the high-water mark, observed through the
	// obs gauge the serving layer exports.
	peak := obs.Default.Gauge("shard/resident_bytes_peak").Value()
	if peak <= 0 || peak > budget {
		t.Errorf("peak resident bytes %d outside (0, budget %d]", peak, budget)
	}
	if setPeak := sm.Set().PeakResidentBytes(); setPeak != peak {
		t.Errorf("set peak %d != gauge peak %d", setPeak, peak)
	}
	if fullBytes/int64(len(sm.Set().Geometry().Parts)) > budget {
		t.Fatalf("test geometry broken: one shard (%d bytes est.) exceeds budget %d", fullBytes/16, budget)
	}

	// Throughput: ≥ 0.5× the monolithic engine end-to-end.
	if shardDur > 2*monoDur {
		t.Errorf("sharded index+map took %v vs monolithic %v (> 2×)", shardDur, monoDur)
	}
	t.Logf("32 Mbp: full index %d MiB, budget %d MiB, peak %d MiB; mono %v, sharded %v (%.2fx)",
		fullBytes>>20, budget>>20, peak>>20, monoDur, shardDur, float64(shardDur)/float64(monoDur))
}
