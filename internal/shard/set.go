package shard

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/seedtable"
)

// Shard-set observability: build cost and residency. The gauges are
// process-wide (mirroring the most recently active set), while each Set
// also tracks its own resident/peak bytes so tests and /v1/indexes can
// assert per-index budgets.
var (
	tBuild          = obs.Default.Timer("shard/build")
	cBuilds         = obs.Default.Counter("shard/builds")
	tLoad           = obs.Default.Timer("shard/load")
	cLoads          = obs.Default.Counter("shard/loads")
	cEvictions      = obs.Default.Counter("shard/evictions")
	cAcquireHits    = obs.Default.Counter("shard/acquire_hits")
	gResidentBytes  = obs.Default.Gauge("shard/resident_bytes")
	gResidentPeak   = obs.Default.Gauge("shard/resident_bytes_peak")
	gResidentShards = obs.Default.Gauge("shard/resident_shards")
)

// TableLoader materializes shard i's seed table from an external
// source — a persistent index file's per-shard sections — instead of a
// BuildRange pass. The Set stays loader-agnostic: a loaded table whose
// slices are views over mapped memory reports its mapped footprint
// through Table.Bytes, so the byte-budgeted LRU counts mapped bytes
// exactly as it counts rebuilt bytes.
type TableLoader func(i int) (*seedtable.Table, error)

// Config holds the sharding knobs, the moral equivalent of Darwin's
// DRAM-channel partitioning decisions.
type Config struct {
	// Shards is the number of shards to split the reference into.
	// Mutually exclusive with ShardSize.
	Shards int
	// ShardSize is the shard core size in bases (rounded up to the
	// D-SOFT bin size). Used when Shards is zero.
	ShardSize int
	// Overlap is the margin each shard's extent extends beyond its core
	// on both sides. Values below the candidate-exactness minimum
	// (MinOverlap) are raised to it, so correctness never depends on
	// this knob.
	Overlap int
	// MaxResidentBytes bounds the total bytes of shard seed tables kept
	// resident (LRU eviction). Zero means unbounded. The budget covers
	// the seed tables only — the packed reference sequence (1 byte per
	// base) always stays resident, since GACT extension reads it
	// directly at global coordinates.
	MaxResidentBytes int64
}

// Enabled reports whether this configuration asks for sharding at all
// (a shard count or size was given). A zero Config means "use the
// monolithic engine".
func (c Config) Enabled() bool { return c.Shards > 0 || c.ShardSize > 0 }

// shardState is one shard's lazily built seed table plus its LRU hook.
// The per-shard mutex singleflights concurrent builds of the same
// shard; the Set mutex guards table/elem/residency bookkeeping. Lock
// order is always shard.mu before Set.mu.
type shardState struct {
	part  Part
	mu    sync.Mutex
	table *seedtable.Table
	elem  *list.Element
}

// Set owns the shards of one partitioned reference: geometry, the
// shared global mask (so per-shard tables mask exactly the seeds the
// monolithic table would), and a byte-budgeted LRU of resident tables.
// Acquire is safe for concurrent use.
type Set struct {
	ref  dna.Seq
	k    int
	opts seedtable.Options // TableOptions with the global Mask injected
	geo  *Geometry
	load TableLoader // non-nil: tables load from a persistent index

	mu            sync.Mutex
	budget        int64
	residentBytes int64
	peakBytes     int64
	buildTime     time.Duration
	lru           *list.List // of *shardState, front = most recent
	shards        []*shardState
}

// NewSet partitions the reference and precomputes the global
// high-frequency seed mask (one O(refLen) pass, counted as index build
// time). No shard tables are built yet — they materialize on first
// Acquire.
func NewSet(ref dna.Seq, cfg core.Config, scfg Config) (*Set, error) {
	geo, err := Partition(len(ref), scfg.Shards, scfg.ShardSize, scfg.Overlap, MinOverlap(cfg), cfg.BinSize)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := fpIndexBuild.Fire(); err != nil {
		return nil, fmt.Errorf("shard: computing global mask: %w", err)
	}
	mask, err := seedtable.ComputeMask(ref, cfg.SeedK, cfg.TableOptions)
	if err != nil {
		return nil, fmt.Errorf("shard: computing global mask: %w", err)
	}
	opts := cfg.TableOptions
	opts.Mask = mask
	s := &Set{
		ref:       ref,
		k:         cfg.SeedK,
		opts:      opts,
		geo:       geo,
		budget:    scfg.MaxResidentBytes,
		buildTime: time.Since(start),
		lru:       list.New(),
	}
	for i := range geo.Parts {
		s.shards = append(s.shards, &shardState{part: geo.Parts[i]})
	}
	return s, nil
}

// NewSetPrebuilt constructs a Set over an externally supplied geometry
// whose tables materialize through load instead of BuildRange — the
// persistent-index path, where geometry and tables come from a mapped
// file. The loader is invoked lazily per shard under the same
// singleflight and byte-budgeted LRU as organic builds, so eviction
// and re-acquire behave identically; only the materialization cost
// changes (a page-in versus a build).
func NewSetPrebuilt(ref dna.Seq, k int, geo *Geometry, maxResidentBytes int64, load TableLoader) (*Set, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("shard: empty reference")
	}
	if geo == nil || len(geo.Parts) == 0 {
		return nil, fmt.Errorf("shard: prebuilt set needs a non-empty geometry")
	}
	if load == nil {
		return nil, fmt.Errorf("shard: prebuilt set needs a table loader")
	}
	if geo.RefLen != len(ref) {
		return nil, fmt.Errorf("shard: geometry covers %d bases but reference has %d", geo.RefLen, len(ref))
	}
	s := &Set{
		ref:    ref,
		k:      k,
		geo:    geo,
		load:   load,
		budget: maxResidentBytes,
		lru:    list.New(),
	}
	for i := range geo.Parts {
		s.shards = append(s.shards, &shardState{part: geo.Parts[i]})
	}
	return s, nil
}

// Geometry returns the partition.
func (s *Set) Geometry() *Geometry { return s.geo }

// Ref returns the concatenated reference.
func (s *Set) Ref() dna.Seq { return s.ref }

// Acquire returns shard i's seed table, building it if absent and
// evicting least-recently-used tables if the build pushes residency
// over budget. The most recently acquired shard is never evicted, so a
// caller's table stays valid while it queries it even if concurrent
// acquires of other shards thrash the budget; at least one shard stays
// resident no matter how small the budget is.
func (s *Set) Acquire(i int) (*seedtable.Table, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", i, len(s.shards))
	}
	sh := s.shards[i]
	s.mu.Lock()
	if sh.table != nil {
		s.lru.MoveToFront(sh.elem)
		t := sh.table
		s.mu.Unlock()
		cAcquireHits.Inc()
		return t, nil
	}
	s.mu.Unlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.mu.Lock()
	if sh.table != nil { // another goroutine built it while we waited
		s.lru.MoveToFront(sh.elem)
		t := sh.table
		s.mu.Unlock()
		cAcquireHits.Inc()
		return t, nil
	}
	s.mu.Unlock()

	start := time.Now()
	if err := fpShardBuild.Fire(); err != nil {
		return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
	}
	var t *seedtable.Table
	var err error
	if s.load != nil {
		endSpan := obs.Trace.Start("shard.load")
		t, err = s.load(i)
		endSpan()
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", i, err)
		}
		tLoad.Observe(time.Since(start))
		cLoads.Inc()
	} else {
		endSpan := obs.Trace.Start("shard.build")
		t, err = seedtable.BuildRange(s.ref, sh.part.Extent.Start, sh.part.Extent.End, s.k, s.opts)
		endSpan()
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		tBuild.Observe(time.Since(start))
		cBuilds.Inc()
	}
	elapsed := time.Since(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	sh.table = t
	sh.elem = s.lru.PushFront(sh)
	s.residentBytes += t.Bytes()
	s.buildTime += elapsed
	for s.budget > 0 && s.residentBytes > s.budget && s.lru.Len() > 1 {
		victim := s.lru.Back().Value.(*shardState)
		s.residentBytes -= victim.table.Bytes()
		s.lru.Remove(victim.elem)
		victim.table = nil // the GC reclaims it once in-flight queries drop it
		victim.elem = nil
		cEvictions.Inc()
	}
	if s.residentBytes > s.peakBytes {
		s.peakBytes = s.residentBytes
	}
	gResidentBytes.Set(s.residentBytes)
	gResidentPeak.Set(s.peakBytes)
	gResidentShards.Set(int64(s.lru.Len()))
	return t, nil
}

// BuildTime returns cumulative index-construction time so far: the
// global mask pass plus every shard table built (including rebuilds
// after eviction).
func (s *Set) BuildTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildTime
}

// ResidentBytes returns current resident seed-table bytes.
func (s *Set) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentBytes
}

// PeakResidentBytes returns the high-water mark of resident bytes.
func (s *Set) PeakResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakBytes
}

// ShardInfo is one shard's residency snapshot for /v1/indexes.
type ShardInfo struct {
	Index    int  `json:"index"`
	Core     Span `json:"core"`
	Resident bool `json:"resident"`
	// Bytes is the shard table's size when resident, 0 otherwise.
	Bytes int64 `json:"bytes"`
}

// Stats is a point-in-time residency summary.
type Stats struct {
	Shards        int   `json:"shards"`
	Resident      int   `json:"resident"`
	ShardSize     int   `json:"shard_size"`
	Overlap       int   `json:"overlap"`
	ResidentBytes int64 `json:"resident_bytes"`
	PeakBytes     int64 `json:"peak_resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// Snapshot returns the residency summary and the per-shard detail.
func (s *Set) Snapshot() (Stats, []ShardInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Shards:        len(s.shards),
		ShardSize:     s.geo.ShardSize,
		Overlap:       s.geo.Overlap,
		ResidentBytes: s.residentBytes,
		PeakBytes:     s.peakBytes,
		BudgetBytes:   s.budget,
	}
	infos := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		infos[i] = ShardInfo{Index: i, Core: sh.part.Core}
		if sh.table != nil {
			infos[i].Resident = true
			infos[i].Bytes = sh.table.Bytes()
			st.Resident++
		}
	}
	return st, infos
}
