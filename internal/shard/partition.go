// Package shard is the sharded reference index and scatter-gather
// mapper: the software realization of how Darwin's ASIC actually holds
// a 3 Gbp reference. The accelerator does not keep one monolithic
// seed-position table — it tiles the table and the D-SOFT bin-count
// SRAM across four LPDDR4 channels and updates bins per partition
// (Section 5). Here a Partitioner splits the concatenated reference
// into fixed-size shards with an overlap margin, each Shard owns its
// own seed table built lazily under a byte budget (Set), and a
// ScatterMapper runs D-SOFT per shard, merges candidates in global
// coordinates, and GACT-extends against the resident reference —
// producing output bit-identical to the monolithic core.Darwin while
// bounding peak index memory by the budget instead of the genome.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"darwin/internal/core"
)

// ParseBytes parses a human byte-size flag value: a plain integer, or
// one with a K/M/G suffix (binary multiples), case-insensitive, with
// an optional trailing B. Used by the -shard-mem flags of cmd/darwin
// and cmd/darwind.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSuffix(strings.ToUpper(strings.TrimSpace(s)), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("shard: bad byte size %q", s)
	}
	return n * mult, nil
}

// Span is a half-open [Start, End) interval in concatenated reference
// coordinates.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the span length.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether pos lies in the span.
func (s Span) Contains(pos int) bool { return pos >= s.Start && pos < s.End }

// Part is one shard's geometry. Cores tile [0, refLen) disjointly and
// own every candidate whose triggering hit falls inside them; the
// Extent widens the core by the overlap margin on each side so a
// shard-local D-SOFT filter sees every hit of any diagonal bin whose
// trigger it owns. Extent starts are multiples of the D-SOFT bin size
// B, which makes shard-local diagonal bins correspond exactly to
// global bins shifted by Extent.Start/B — the property that lets
// per-shard candidates merge into global coordinates bit-exactly.
type Part struct {
	Index  int  `json:"index"`
	Core   Span `json:"core"`
	Extent Span `json:"extent"`
}

// Geometry is a full reference partition.
type Geometry struct {
	RefLen    int
	ShardSize int // core size in bases (multiple of BinSize)
	Overlap   int // margin in bases (multiple of BinSize)
	BinSize   int
	Parts     []Part
}

// MinOverlap returns the smallest overlap margin (in bases) that
// guarantees candidate-exactness for the given engine configuration:
// two hits in the same diagonal bin differ by at most B + (N−1)·stride
// in reference position, and the rightmost hit's seed needs k bases
// inside the extent. Any margin at least this large makes the union of
// core-owned per-shard candidates exactly the monolithic candidate
// set.
func MinOverlap(cfg core.Config) int {
	stride := cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	return cfg.BinSize + (cfg.SeedN-1)*stride + cfg.SeedK
}

// roundUp rounds n up to a positive multiple of unit.
func roundUp(n, unit int) int {
	if n <= 0 {
		return unit
	}
	return (n + unit - 1) / unit * unit
}

// Partition splits a reference of refLen bases into count shards (or
// into shards of shardSize bases when count is 0), with the given
// overlap margin. Shard size and overlap are rounded up to multiples
// of binSize; overlap below minOverlap is raised to it. The final
// shard absorbs the remainder, so every core has at least one seed's
// worth of sequence.
func Partition(refLen, count, shardSize, overlap, minOverlap, binSize int) (*Geometry, error) {
	if refLen <= 0 {
		return nil, fmt.Errorf("shard: reference length %d must be positive", refLen)
	}
	if binSize <= 0 || binSize&(binSize-1) != 0 {
		return nil, fmt.Errorf("shard: bin size %d must be a positive power of two", binSize)
	}
	switch {
	case count > 0 && shardSize > 0:
		return nil, fmt.Errorf("shard: set shard count or shard size, not both")
	case count > 0:
		shardSize = (refLen + count - 1) / count
	case shardSize <= 0:
		return nil, fmt.Errorf("shard: need a shard count or a shard size")
	}
	shardSize = roundUp(shardSize, binSize)
	if overlap < minOverlap {
		overlap = minOverlap
	}
	overlap = roundUp(overlap, binSize)

	g := &Geometry{RefLen: refLen, ShardSize: shardSize, Overlap: overlap, BinSize: binSize}
	n := (refLen + shardSize - 1) / shardSize
	if n < 1 {
		n = 1
	}
	// A trailing core shorter than the overlap margin would add a shard
	// whose extent is almost entirely margin; fold it into its
	// neighbour instead.
	if n > 1 && refLen-(n-1)*shardSize < binSize {
		n--
	}
	for i := 0; i < n; i++ {
		core := Span{Start: i * shardSize, End: (i + 1) * shardSize}
		if i == n-1 {
			core.End = refLen
		}
		ext := Span{Start: core.Start - overlap, End: core.End + overlap}
		if ext.Start < 0 {
			ext.Start = 0
		}
		if ext.End > refLen {
			ext.End = refLen
		}
		g.Parts = append(g.Parts, Part{Index: i, Core: core, Extent: ext})
	}
	return g, nil
}

// OwnerOf returns the index of the shard whose core contains pos.
func (g *Geometry) OwnerOf(pos int) int {
	i := pos / g.ShardSize
	if i >= len(g.Parts) {
		i = len(g.Parts) - 1
	}
	return i
}
