// Package genome generates synthetic genomes that stand in for the
// paper's GRCh38 and C. elegans assemblies (Section 8). The generator
// produces a random base composition with tunable GC content, plants
// tandem and interspersed repeat families (the structures that stress
// seed-filter precision), and can derive a diverged "sample" genome from
// a reference by introducing SNPs, small indels, and structural variants
// — the reference-vs-sequenced-genome divergence that reference-guided
// assembly must tolerate.
package genome

import (
	"fmt"
	"math/rand"

	"darwin/internal/dna"
)

// Config parameterizes synthetic genome generation.
type Config struct {
	// Length is the genome length in base pairs.
	Length int
	// GC is the GC content of the random background (0..1).
	GC float64
	// RepeatFraction is the approximate fraction of the genome occupied
	// by planted repeat copies (0..1). Human is roughly 0.5; the paper's
	// filtration challenges come largely from such repeats.
	RepeatFraction float64
	// RepeatFamilies is the number of distinct interspersed repeat
	// consensus sequences (LINE/SINE stand-ins).
	RepeatFamilies int
	// RepeatUnitLen is the mean length of an interspersed repeat copy.
	RepeatUnitLen int
	// RepeatDivergence is the per-base substitution rate applied to each
	// planted repeat copy, so copies are similar but not identical.
	RepeatDivergence float64
	// TandemFraction is the sub-fraction of RepeatFraction devoted to
	// tandem (satellite) repeats with short periods.
	TandemFraction float64
	// Seed seeds the deterministic RNG.
	Seed int64
}

// DefaultConfig returns a human-like composition scaled to length n.
func DefaultConfig(n int) Config {
	return Config{
		Length:           n,
		GC:               0.41, // human genome-wide GC
		RepeatFraction:   0.30,
		RepeatFamilies:   8,
		RepeatUnitLen:    300,
		RepeatDivergence: 0.10,
		TandemFraction:   0.15,
		Seed:             1,
	}
}

// Genome is a generated synthetic genome.
type Genome struct {
	// Seq is the genome sequence.
	Seq dna.Seq
	// RepeatIntervals records where repeat copies were planted, as
	// [start, end) intervals; useful for diagnostics.
	RepeatIntervals []Interval
}

// Interval is a half-open [Start, End) span on the genome.
type Interval struct {
	Start, End int
}

// Len returns the interval length.
func (iv Interval) Len() int { return iv.End - iv.Start }

// Generate builds a synthetic genome per cfg.
func Generate(cfg Config) (*Genome, error) {
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("genome: non-positive length %d", cfg.Length)
	}
	if cfg.GC < 0 || cfg.GC > 1 {
		return nil, fmt.Errorf("genome: GC content %v out of [0,1]", cfg.GC)
	}
	if cfg.RepeatFraction < 0 || cfg.RepeatFraction >= 1 {
		return nil, fmt.Errorf("genome: repeat fraction %v out of [0,1)", cfg.RepeatFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Genome{Seq: dna.Random(rng, cfg.Length, cfg.GC)}

	repeatBudget := int(float64(cfg.Length) * cfg.RepeatFraction)
	tandemBudget := int(float64(repeatBudget) * cfg.TandemFraction)
	interspersedBudget := repeatBudget - tandemBudget

	if cfg.RepeatFamilies > 0 && cfg.RepeatUnitLen > 0 && interspersedBudget > 0 {
		plantInterspersed(rng, g, cfg, interspersedBudget)
	}
	if tandemBudget > 0 {
		plantTandem(rng, g, tandemBudget)
	}
	return g, nil
}

// plantInterspersed overwrites random positions with diverged copies of a
// small set of consensus repeat sequences.
func plantInterspersed(rng *rand.Rand, g *Genome, cfg Config, budget int) {
	families := make([]dna.Seq, cfg.RepeatFamilies)
	for i := range families {
		// Family lengths vary around the mean by ±50%.
		ln := cfg.RepeatUnitLen/2 + rng.Intn(cfg.RepeatUnitLen)
		if ln < 20 {
			ln = 20
		}
		families[i] = dna.Random(rng, ln, cfg.GC)
	}
	planted := 0
	for planted < budget {
		fam := families[rng.Intn(len(families))]
		copySeq := divergedCopy(rng, fam, cfg.RepeatDivergence)
		if rng.Intn(2) == 0 {
			copySeq = dna.RevComp(copySeq)
		}
		if len(copySeq) >= len(g.Seq) {
			break
		}
		pos := rng.Intn(len(g.Seq) - len(copySeq))
		copy(g.Seq[pos:], copySeq)
		g.RepeatIntervals = append(g.RepeatIntervals, Interval{pos, pos + len(copySeq)})
		planted += len(copySeq)
	}
}

// plantTandem overwrites a few regions with short-period tandem arrays
// (satellite DNA stand-ins) that generate extreme seed-hit multiplicity.
func plantTandem(rng *rand.Rand, g *Genome, budget int) {
	planted := 0
	for planted < budget {
		period := 2 + rng.Intn(30)
		unit := dna.Random(rng, period, 0.5)
		arrayLen := period * (10 + rng.Intn(100))
		if arrayLen > budget-planted+period {
			arrayLen = budget - planted + period
		}
		if arrayLen >= len(g.Seq) || arrayLen < period {
			break
		}
		pos := rng.Intn(len(g.Seq) - arrayLen)
		for i := 0; i < arrayLen; i++ {
			g.Seq[pos+i] = unit[i%period]
		}
		g.RepeatIntervals = append(g.RepeatIntervals, Interval{pos, pos + arrayLen})
		planted += arrayLen
	}
}

func divergedCopy(rng *rand.Rand, s dna.Seq, rate float64) dna.Seq {
	out := s.Clone()
	for i := range out {
		if rng.Float64() < rate {
			out[i] = dna.MutatePoint(rng, out[i])
		}
	}
	return out
}
