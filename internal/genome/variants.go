package genome

import (
	"fmt"
	"math/rand"
	"sort"

	"darwin/internal/dna"
)

// VariantConfig parameterizes the divergence of a sequenced sample from
// its reference — the source of reference bias the paper discusses in
// Section 2 (reference-guided vs de novo assembly).
type VariantConfig struct {
	// SNPRate is the per-base probability of a point substitution.
	SNPRate float64
	// SmallIndelRate is the per-base probability of starting a small
	// (1-10 bp) insertion or deletion.
	SmallIndelRate float64
	// SVCount is the number of large structural variants (insertions,
	// deletions, inversions) to introduce.
	SVCount int
	// SVMeanLen is the mean structural-variant length in bp.
	SVMeanLen int
	// Seed seeds the deterministic RNG.
	Seed int64
}

// DefaultVariantConfig mimics typical human germline divergence from the
// reference (~0.1% SNPs) plus a handful of SVs.
func DefaultVariantConfig() VariantConfig {
	return VariantConfig{
		SNPRate:        0.001,
		SmallIndelRate: 0.0001,
		SVCount:        4,
		SVMeanLen:      2000,
		Seed:           2,
	}
}

// Variant records a single introduced difference, in reference coords.
type Variant struct {
	// Kind is one of "snp", "ins", "del", "inv".
	Kind string
	// RefPos is the 0-based reference position where the variant applies.
	RefPos int
	// Len is the affected length (1 for SNPs).
	Len int
}

// ApplyVariants derives a sample genome from ref per cfg and returns the
// sample sequence together with the list of variants introduced.
func ApplyVariants(ref dna.Seq, cfg VariantConfig) (dna.Seq, []Variant, error) {
	if len(ref) == 0 {
		return nil, nil, fmt.Errorf("genome: empty reference")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var variants []Variant

	// Plan structural variants first on disjoint reference intervals.
	type sv struct {
		pos, ln int
		kind    string
	}
	var svs []sv
	used := map[int]bool{}
	for i := 0; i < cfg.SVCount; i++ {
		ln := cfg.SVMeanLen/2 + rng.Intn(cfg.SVMeanLen+1)
		if ln < 50 {
			ln = 50
		}
		if ln >= len(ref)/(cfg.SVCount+1) {
			ln = len(ref)/(cfg.SVCount+1) - 1
		}
		if ln < 50 {
			continue
		}
		// Sample a position; crude disjointness via a coarse-grid lock.
		var pos int
		ok := false
		for try := 0; try < 100; try++ {
			pos = rng.Intn(len(ref) - ln)
			cell := pos / (cfg.SVMeanLen * 4)
			if !used[cell] && !used[cell+1] {
				used[cell] = true
				used[cell+1] = true
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		kind := []string{"ins", "del", "inv"}[rng.Intn(3)]
		svs = append(svs, sv{pos, ln, kind})
	}
	sort.Slice(svs, func(a, b int) bool { return svs[a].pos < svs[b].pos })

	out := make(dna.Seq, 0, len(ref)+cfg.SVCount*cfg.SVMeanLen)
	svIdx := 0
	for i := 0; i < len(ref); {
		if svIdx < len(svs) && svs[svIdx].pos == i {
			v := svs[svIdx]
			svIdx++
			switch v.kind {
			case "ins":
				out = append(out, dna.Random(rng, v.ln, 0.5)...)
				variants = append(variants, Variant{Kind: "ins", RefPos: i, Len: v.ln})
			case "del":
				variants = append(variants, Variant{Kind: "del", RefPos: i, Len: v.ln})
				i += v.ln
			case "inv":
				out = append(out, dna.RevComp(ref[i:i+v.ln])...)
				variants = append(variants, Variant{Kind: "inv", RefPos: i, Len: v.ln})
				i += v.ln
			}
			continue
		}
		switch r := rng.Float64(); {
		case r < cfg.SNPRate:
			out = append(out, dna.MutatePoint(rng, ref[i]))
			variants = append(variants, Variant{Kind: "snp", RefPos: i, Len: 1})
			i++
		case r < cfg.SNPRate+cfg.SmallIndelRate:
			ln := 1 + rng.Intn(10)
			if rng.Intn(2) == 0 {
				out = append(out, dna.Random(rng, ln, 0.5)...)
				out = append(out, ref[i])
				variants = append(variants, Variant{Kind: "ins", RefPos: i, Len: ln})
				i++
			} else {
				if i+ln > len(ref) {
					ln = len(ref) - i
				}
				variants = append(variants, Variant{Kind: "del", RefPos: i, Len: ln})
				i += ln
			}
		default:
			out = append(out, ref[i])
			i++
		}
	}
	return out, variants, nil
}
