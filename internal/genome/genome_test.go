package genome

import (
	"math"
	"testing"

	"darwin/internal/dna"
)

func TestGenerateBasic(t *testing.T) {
	cfg := DefaultConfig(100000)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(g.Seq) != cfg.Length {
		t.Fatalf("length = %d, want %d", len(g.Seq), cfg.Length)
	}
	if err := dna.Validate(g.Seq); err != nil {
		t.Fatalf("invalid bases: %v", err)
	}
	gc := dna.GCContent(g.Seq)
	if math.Abs(gc-cfg.GC) > 0.05 {
		t.Errorf("GC = %.3f, want near %.2f", gc, cfg.GC)
	}
	if len(g.RepeatIntervals) == 0 {
		t.Error("expected planted repeat intervals")
	}
	total := 0
	for _, iv := range g.RepeatIntervals {
		if iv.Start < 0 || iv.End > len(g.Seq) || iv.Len() <= 0 {
			t.Fatalf("bad repeat interval %+v", iv)
		}
		total += iv.Len()
	}
	// Budget is approximate (copies may overlap) but should be
	// commensurate with the requested fraction.
	want := float64(cfg.Length) * cfg.RepeatFraction
	if float64(total) < 0.8*want {
		t.Errorf("planted repeat bases %d, want ≥ %.0f", total, 0.8*want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(20000)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq.String() != b.Seq.String() {
		t.Error("same seed produced different genomes")
	}
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq.String() == c.Seq.String() {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Length: 0}); err == nil {
		t.Error("zero length should error")
	}
	if _, err := Generate(Config{Length: 100, GC: 1.5}); err == nil {
		t.Error("GC out of range should error")
	}
	if _, err := Generate(Config{Length: 100, GC: 0.5, RepeatFraction: 1.0}); err == nil {
		t.Error("repeat fraction 1.0 should error")
	}
}

func TestGenerateNoRepeats(t *testing.T) {
	g, err := Generate(Config{Length: 5000, GC: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.RepeatIntervals) != 0 {
		t.Errorf("expected no repeats, got %d intervals", len(g.RepeatIntervals))
	}
}

func TestApplyVariantsSNPOnly(t *testing.T) {
	g, err := Generate(Config{Length: 50000, GC: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sample, vars, err := ApplyVariants(g.Seq, VariantConfig{SNPRate: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != len(g.Seq) {
		t.Fatalf("SNP-only sample length changed: %d vs %d", len(sample), len(g.Seq))
	}
	diff := 0
	for i := range sample {
		if sample[i] != g.Seq[i] {
			diff++
		}
	}
	if diff != len(vars) {
		t.Errorf("observed %d differing bases, recorded %d variants", diff, len(vars))
	}
	rate := float64(diff) / float64(len(sample))
	if rate < 0.007 || rate > 0.013 {
		t.Errorf("SNP rate %.4f, want near 0.01", rate)
	}
	for _, v := range vars {
		if v.Kind != "snp" || v.Len != 1 {
			t.Fatalf("unexpected variant %+v", v)
		}
	}
}

func TestApplyVariantsStructural(t *testing.T) {
	g, err := Generate(Config{Length: 100000, GC: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := VariantConfig{SVCount: 4, SVMeanLen: 1000, Seed: 8}
	sample, vars, err := ApplyVariants(g.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	insLen, delLen := 0, 0
	for _, v := range vars {
		kinds[v.Kind]++
		switch v.Kind {
		case "ins":
			insLen += v.Len
		case "del":
			delLen += v.Len
		}
	}
	if got := len(sample) - len(g.Seq); got != insLen-delLen {
		t.Errorf("length delta %d, want ins-del = %d", got, insLen-delLen)
	}
	if kinds["snp"] != 0 {
		t.Errorf("unexpected SNPs with zero SNP rate: %d", kinds["snp"])
	}
	if len(vars) == 0 {
		t.Error("expected structural variants")
	}
}

func TestApplyVariantsEmptyRef(t *testing.T) {
	if _, _, err := ApplyVariants(nil, DefaultVariantConfig()); err == nil {
		t.Error("empty reference should error")
	}
}

func TestApplyVariantsDeterministic(t *testing.T) {
	g, _ := Generate(Config{Length: 30000, GC: 0.5, Seed: 9})
	cfg := DefaultVariantConfig()
	a, _, err := ApplyVariants(g.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ApplyVariants(g.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different samples")
	}
}
