// Package metrics provides the evaluation arithmetic of Section 8
// (sensitivity, precision, false hit rate per equations 4-5) and small
// text renderers for the tables and figure data the experiment
// harness regenerates.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Confusion tallies true positives, false positives and false
// negatives.
type Confusion struct {
	TP, FP, FN int
}

// Sensitivity is TP/(TP+FN) (equation 4). Returns 0 when undefined.
func (c Confusion) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision is TP/(TP+FP) (equation 5). Returns 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// FalseHitRate is FP/TP — "the average number of false hits for every
// true positive" used to evaluate D-SOFT filtration (Section 8).
// Returns +Inf when there are false hits but no true positives.
func (c Confusion) FalseHitRate() float64 {
	if c.TP == 0 {
		if c.FP == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(c.FP) / float64(c.TP)
}

// Add accumulates another confusion count.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Histogram is a fixed-width bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram creates a histogram with the given bin count. Invalid
// configurations are clamped rather than deferred to Add: bins is
// raised to at least 1, and a range with Max ≤ Min (or NaN bounds)
// becomes [Min, Min+1) so bin indexing never divides by zero.
func NewHistogram(minV, maxV float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if !(maxV > minV) { // also catches NaN bounds
		maxV = minV + 1
	}
	return &Histogram{Min: minV, Max: maxV, Counts: make([]int, bins)}
}

// RestoreHistogram reconstructs a histogram from externally recorded
// counts (e.g. package obs's atomic snapshots) so the renderers here
// can be reused on them.
func RestoreHistogram(minV, maxV float64, counts []int, under, over int) *Histogram {
	h := NewHistogram(minV, maxV, len(counts))
	copy(h.Counts, counts)
	h.under, h.over = under, over
	h.total = under + over
	for _, c := range counts {
		h.total += c
	}
	return h
}

// Add records one observation. Degenerate histograms (no bins, or a
// hand-built value with Max ≤ Min) tally out-of-range rather than
// indexing with a NaN.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Min:
		h.under++
	case v >= h.Max || len(h.Counts) == 0 || h.Max <= h.Min:
		h.over++
	default:
		i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i < 0 {
			i = 0
		}
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations (including out of range).
func (h *Histogram) Total() int { return h.total }

// FractionBelow returns the fraction of observations strictly below v.
func (h *Histogram) FractionBelow(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	n := h.under
	for i, c := range h.Counts {
		lo := h.Min + (h.Max-h.Min)*float64(i)/float64(len(h.Counts))
		hi := h.Min + (h.Max-h.Min)*float64(i+1)/float64(len(h.Counts))
		if hi <= v {
			n += c
		} else if lo < v {
			// Partial bin: attribute proportionally.
			n += int(float64(c) * (v - lo) / (hi - lo))
		}
	}
	return float64(n) / float64(h.total)
}

// Render draws an ASCII bar histogram with the given maximum bar
// width.
func (h *Histogram) Render(width int) string {
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + (h.Max-h.Min)*float64(i)/float64(len(h.Counts))
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%10.1f | %-*s %d\n", lo, width, bar, c)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%10s | %d below range\n", "<min", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%10s | %d above range\n", ">max", h.over)
	}
	return b.String()
}

// Table renders rows of cells with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned text table.
func (t *Table) Render() string {
	all := append([][]string{t.Header}, t.Rows...)
	widths := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) data series for figure reproduction.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeries renders aligned columns of several series sharing X.
func RenderSeries(xLabel string, series ...*Series) string {
	var t Table
	t.Header = append(t.Header, xLabel)
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t.Render()
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}
