package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusion(t *testing.T) {
	c := Confusion{TP: 90, FP: 10, FN: 30}
	if got := c.Sensitivity(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("sensitivity = %v, want 0.75", got)
	}
	if got := c.Precision(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("precision = %v, want 0.9", got)
	}
	if got := c.FalseHitRate(); math.Abs(got-10.0/90) > 1e-12 {
		t.Errorf("FHR = %v", got)
	}
	var z Confusion
	if z.Sensitivity() != 0 || z.Precision() != 0 || z.FalseHitRate() != 0 {
		t.Error("zero confusion should yield zeros")
	}
	z.FP = 5
	if !math.IsInf(z.FalseHitRate(), 1) {
		t.Error("FHR with no TPs should be +Inf")
	}
	z.Add(Confusion{TP: 1, FN: 2})
	if z.TP != 1 || z.FP != 5 || z.FN != 2 {
		t.Errorf("Add result %+v", z)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{-5, 0, 5, 15, 95, 99.9, 100, 250} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under/over = %d/%d", h.under, h.over)
	}
	// 4 of 8 observations are strictly below 50 (-5, 0, 5, 15).
	if got := h.FractionBelow(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FractionBelow(50) = %v, want 0.5", got)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "below range") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	var tb Table
	tb.Header = []string{"k", "hits/seed", "Kseeds/s"}
	tb.AddRow("11", "1866.1", "1426.9")
	tb.AddRow("15", "8.7", "91138.7")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "k ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1866.1") {
		t.Errorf("row content missing: %q", lines[2])
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "GACT (software)"}
	b := &Series{Name: "Edlib"}
	for _, x := range []float64{1, 2, 3} {
		a.Append(x, x*10)
		b.Append(x, x*x)
	}
	out := RenderSeries("Kbp", a, b)
	if !strings.Contains(out, "GACT (software)") || !strings.Contains(out, "Edlib") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "30") || !strings.Contains(out, "9") {
		t.Errorf("missing values:\n%s", out)
	}
}

// Regression: NewHistogram with bins <= 0 or Max <= Min used to yield
// divide-by-zero/NaN bin indexing (and a panic on empty Counts) in Add.
func TestHistogramDegenerateConfig(t *testing.T) {
	cases := []struct {
		name      string
		min, max  float64
		bins      int
	}{
		{"zero bins", 0, 10, 0},
		{"negative bins", 0, 10, -3},
		{"max equals min", 5, 5, 4},
		{"max below min", 10, 2, 4},
		{"nan max", 0, math.NaN(), 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(c.min, c.max, c.bins)
			if len(h.Counts) < 1 {
				t.Fatalf("bins clamped to %d, want >= 1", len(h.Counts))
			}
			if !(h.Max > h.Min) {
				t.Fatalf("range [%g, %g) not clamped to Max > Min", h.Min, h.Max)
			}
			for _, v := range []float64{-1e9, c.min - 1, c.min, c.min + 0.5, c.max, 1e9} {
				h.Add(v) // must not panic or index with NaN
			}
			total := h.under + h.over
			for _, n := range h.Counts {
				total += n
			}
			if total != h.Total() {
				t.Errorf("observations lost: binned %d, Total() %d", total, h.Total())
			}
			if out := h.Render(10); out == "" {
				t.Error("Render returned nothing")
			}
		})
	}
}

// A hand-built degenerate Histogram value (bypassing the constructor)
// must still tally in Add instead of panicking.
func TestHistogramHandBuiltDegenerate(t *testing.T) {
	h := &Histogram{Min: 3, Max: 3}
	h.Add(2)
	h.Add(3)
	h.Add(4)
	if h.Total() != 3 || h.under != 1 || h.over != 2 {
		t.Errorf("under=%d over=%d total=%d, want 1/2/3", h.under, h.over, h.Total())
	}
}

func TestRestoreHistogram(t *testing.T) {
	h := RestoreHistogram(0, 10, []int{1, 2, 3}, 4, 5)
	if h.Total() != 15 {
		t.Errorf("total = %d, want 15", h.Total())
	}
	out := h.Render(10)
	if !strings.Contains(out, "below range") || !strings.Contains(out, "above range") {
		t.Errorf("render missing out-of-range lines:\n%s", out)
	}
	if h.FractionBelow(10) <= 0 {
		t.Error("FractionBelow broken on restored histogram")
	}
}
