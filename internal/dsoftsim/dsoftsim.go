// Package dsoftsim is a cycle-driven simulation of the D-SOFT
// accelerator's on-chip half (Section 6, Figure 7): seed hits arriving
// from the DRAM channels are routed as (bin, j) pairs through a
// butterfly NoC to 16 bin-count SRAM banks, where update-bin logic
// (UBL) performs the bp_count/last_hit_pos read-modify-write. To
// preserve Algorithm 1's sequential semantics, the NoC drains all of
// one seed's updates before admitting the next seed's.
//
// The paper's FPGA prototype measured 5.1 updates/cycle — 64% of the
// theoretical maximum — and found the on-chip side always faster than
// the DRAM channels producing hits; the simulator reproduces both
// observations (see the tests).
package dsoftsim

import "fmt"

// Config sizes the simulated accelerator.
type Config struct {
	// Banks is the number of bin-count SRAM banks (16).
	Banks int
	// Injectors is the number of updates the NoC can admit per cycle
	// (the DRAM-side injection width; 8 in the modeled design, making
	// 8/cycle the theoretical maximum).
	Injectors int
	// HopLatency is the NoC traversal latency in cycles (butterfly
	// with 16 endpoints: 4 hops).
	HopLatency int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config { return Config{Banks: 16, Injectors: 8, HopLatency: 4} }

// Result summarizes one simulation.
type Result struct {
	// Updates is the number of bin updates processed.
	Updates int
	// Cycles is the simulated cycle count.
	Cycles int
	// Seeds is the number of seed groups (barriers).
	Seeds int
	// BankConflictStalls counts update slots lost to bank conflicts.
	BankConflictStalls int
}

// UpdatesPerCycle is the achieved throughput.
func (r Result) UpdatesPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Updates) / float64(r.Cycles)
}

// Simulate processes the per-seed bin streams (as produced by
// dsoft.Filter.Trace) through the NoC/bank model and returns the cycle
// accounting.
func Simulate(seedBins [][]int, cfg Config) (Result, error) {
	if cfg.Banks <= 0 || cfg.Injectors <= 0 {
		return Result{}, fmt.Errorf("dsoftsim: banks (%d) and injectors (%d) must be positive", cfg.Banks, cfg.Injectors)
	}
	if cfg.HopLatency < 0 {
		return Result{}, fmt.Errorf("dsoftsim: negative hop latency %d", cfg.HopLatency)
	}
	var res Result
	// bankBusyUntil[b] is the cycle at which bank b can accept its
	// next update (single-port SRAM: one read-modify-write per cycle).
	bankBusyUntil := make([]int, cfg.Banks)
	now := 0
	for _, bins := range seedBins {
		if len(bins) == 0 {
			continue
		}
		res.Seeds++
		// Injection: up to Injectors updates leave the per-channel
		// FIFOs per cycle, in hit order. Each reaches its bank after
		// HopLatency and the bank consumes one per cycle.
		seedEnd := now
		for x, bin := range bins {
			injectCycle := now + x/cfg.Injectors
			arrive := injectCycle + cfg.HopLatency
			b := bin % cfg.Banks
			if b < 0 {
				b += cfg.Banks
			}
			start := arrive
			if bankBusyUntil[b] > start {
				res.BankConflictStalls += bankBusyUntil[b] - start
				start = bankBusyUntil[b]
			}
			bankBusyUntil[b] = start + 1
			if start+1 > seedEnd {
				seedEnd = start + 1
			}
			res.Updates++
		}
		// Barrier: the next seed's first update may only be injected
		// once every update of this seed has been applied.
		now = seedEnd
	}
	res.Cycles = now
	return res, nil
}
