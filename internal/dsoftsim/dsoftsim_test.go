package dsoftsim

import (
	"testing"

	"darwin/internal/dsoft"
	"darwin/internal/genome"
	"darwin/internal/hw"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
)

func traceWorkload(t *testing.T) [][]int {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: 500_000, GC: 0.41, RepeatFraction: 0.25, RepeatFamilies: 8,
		RepeatUnitLen: 300, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	// k=6 on the 500 kbp genome gives ~120 hits/seed — the same
	// barrier-amortization regime as the paper's k=12 on GRCh38
	// (~490 hits/seed).
	tab, err := seedtable.Build(g.Seq, 6, seedtable.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	filter, err := dsoft.New(tab, dsoft.Config{N: 1500, H: 24, BinSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(g.Seq, 10, readsim.Config{Profile: readsim.ONT2D, MeanLen: 5000, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	var all [][]int
	for i := range reads {
		all = append(all, filter.Trace(reads[i].Seq)...)
	}
	return all
}

// TestThroughputNearPaperObservation: on a realistic hit stream the
// achieved rate must be in the regime the FPGA measured — around 5
// updates/cycle, i.e. 40-90% of the 8/cycle injection maximum.
func TestThroughputNearPaperObservation(t *testing.T) {
	trace := traceWorkload(t)
	res, err := Simulate(trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 || res.Seeds == 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	upc := res.UpdatesPerCycle()
	if upc < 3.2 || upc > 7.5 {
		t.Errorf("updates/cycle = %.2f, want within [3.2, 7.5] (paper: 5.1 = 64%% of max)", upc)
	}
	if upc > float64(DefaultConfig().Injectors) {
		t.Errorf("updates/cycle %.2f exceeds injection width", upc)
	}
}

// TestFasterThanDRAM reproduces the paper's conclusion: the on-chip
// NoC + banks consume hits faster than the DRAM channels produce them,
// so D-SOFT throughput is memory-limited.
func TestFasterThanDRAM(t *testing.T) {
	trace := traceWorkload(t)
	res, err := Simulate(trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chip := hw.DefaultChip()
	onChipRate := res.UpdatesPerCycle() * chip.ClockHz // updates/s

	hits := 0
	for _, bins := range trace {
		hits += len(bins)
	}
	hitsPerSeed := float64(hits) / float64(len(trace))
	dram := hw.NewDSOFTModel(chip)
	dramRate := dram.SeedsPerSecond(hitsPerSeed) * hitsPerSeed // hits/s delivered
	if onChipRate <= dramRate {
		t.Errorf("on-chip %.3g updates/s not faster than DRAM %.3g hits/s", onChipRate, dramRate)
	}
}

// TestBarrierOrdering: seeds with many updates amortize the barrier;
// single-hit seeds are latency-bound at ~1/(HopLatency+1) per cycle.
func TestBarrierOrdering(t *testing.T) {
	cfg := DefaultConfig()
	// 100 seeds of one hit each: every seed pays the full pipe.
	single := make([][]int, 100)
	for i := range single {
		single[i] = []int{i}
	}
	res, err := Simulate(single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * (cfg.HopLatency + 1); res.Cycles != want {
		t.Errorf("single-hit cycles = %d, want %d", res.Cycles, want)
	}
	// One seed with 1600 conflict-free updates: throughput approaches
	// the injection width.
	big := [][]int{make([]int, 1600)}
	for i := range big[0] {
		big[0][i] = i // round-robin over banks
	}
	res, err = Simulate(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if upc := res.UpdatesPerCycle(); upc < 0.9*float64(cfg.Injectors) {
		t.Errorf("bulk updates/cycle = %.2f, want ≥ %.1f", upc, 0.9*float64(cfg.Injectors))
	}
}

// TestBankConflictSerialization: all updates to one bank serialize at
// 1/cycle regardless of injection width.
func TestBankConflictSerialization(t *testing.T) {
	cfg := DefaultConfig()
	oneBank := [][]int{make([]int, 256)}
	for i := range oneBank[0] {
		oneBank[0][i] = 16 * i // same bank (bin % 16 == 0)
	}
	res, err := Simulate(oneBank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 256 {
		t.Errorf("cycles = %d, want ≥ 256 (single-port bank)", res.Cycles)
	}
	if res.BankConflictStalls == 0 {
		t.Error("expected bank-conflict stalls")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, Config{Banks: 0, Injectors: 1}); err == nil {
		t.Error("zero banks should error")
	}
	if _, err := Simulate(nil, Config{Banks: 1, Injectors: 0}); err == nil {
		t.Error("zero injectors should error")
	}
	if _, err := Simulate(nil, Config{Banks: 1, Injectors: 1, HopLatency: -1}); err == nil {
		t.Error("negative latency should error")
	}
	res, err := Simulate([][]int{{}, {}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Updates != 0 {
		t.Errorf("empty seeds: %+v", res)
	}
}

// TestNegativeBins: canonical bins can be negative; routing must not
// panic and must stay within bank range.
func TestNegativeBins(t *testing.T) {
	res, err := Simulate([][]int{{-1, -17, -33, 5}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 4 {
		t.Errorf("updates = %d, want 4", res.Updates)
	}
}
