package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/dna"
)

// tileResultsEqual compares every field of two TileResults, cigar
// included — the kernel must be byte-identical to the reference, not
// merely score-equivalent.
func tileResultsEqual(a, b TileResult) bool {
	if a.Score != b.Score || a.IOff != b.IOff || a.JOff != b.JOff ||
		a.MaxI != b.MaxI || a.MaxJ != b.MaxJ || len(a.Cigar) != len(b.Cigar) {
		return false
	}
	for i := range a.Cigar {
		if a.Cigar[i] != b.Cigar[i] {
			return false
		}
	}
	return true
}

// kernelSeq is dna.Random with occasional N bases, so the LUT's
// N-scores-zero padding is exercised.
func kernelSeq(rng *rand.Rand, n int) dna.Seq {
	s := dna.Random(rng, n, 0.5)
	if rng.Intn(4) == 0 {
		for x := 0; x < 1+rng.Intn(3); x++ {
			s[rng.Intn(len(s))] = 'N'
		}
	}
	return s
}

// Property: across random scorings, tile shapes, first/extension
// flavours, and clip bounds, the reusable kernel returns results
// byte-identical to the reference AlignTile — including across many
// tiles through one aligner, which is what exercises the dirty-buffer
// reuse. Pinned to KernelLUT: this is the strict full-struct oracle
// (MaxI/MaxJ included, which the banded tier only approximates on
// extension tiles); kernel_tier_test.go holds the cross-tier
// properties.
func TestQuickKernelMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := Simple(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2))
		ta, err := NewTileAligner(&sc)
		if err != nil {
			t.Logf("NewTileAligner: %v", err)
			return false
		}
		ta.SetKernel(KernelLUT)
		for it := 0; it < 8; it++ {
			rTile := kernelSeq(rng, 1+rng.Intn(96))
			var qTile dna.Seq
			if rng.Intn(3) == 0 {
				qTile = kernelSeq(rng, 1+rng.Intn(96))
			} else {
				qTile = mutate(rng, rTile, 0.3)
			}
			firstTile := rng.Intn(2) == 0
			maxOff := 0
			if rng.Intn(3) > 0 {
				maxOff = 1 + rng.Intn(96)
			}
			want := AlignTile(rTile, qTile, firstTile, maxOff, &sc)
			got := ta.AlignTile(rTile, qTile, firstTile, maxOff)
			if !tileResultsEqual(got, want) {
				t.Logf("forward mismatch (seed %d it %d): got %+v want %+v", seed, it, got, want)
				return false
			}
			wantRev := AlignTile(dna.Reverse(rTile), dna.Reverse(qTile), firstTile, maxOff, &sc)
			gotRev := ta.AlignTileReversed(rTile, qTile, firstTile, maxOff)
			if !tileResultsEqual(gotRev, wantRev) {
				t.Logf("reversed mismatch (seed %d it %d): got %+v want %+v", seed, it, gotRev, wantRev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// The paper's exact operating points must agree too (larger tiles than
// the quick-check sizes, realistic divergence), in every kernel mode:
// strict full-struct identity for the LUT tier, the engine-consumed
// contract for the banded tiers.
func TestKernelMatchesReferencePaperTiles(t *testing.T) {
	for _, mode := range []KernelMode{KernelLUT, KernelAuto, KernelBitvector} {
		rng := rand.New(rand.NewSource(42))
		sc := GACTEval()
		ta, err := NewTileAligner(&sc)
		if err != nil {
			t.Fatal(err)
		}
		ta.SetKernel(mode)
		for it := 0; it < 10; it++ {
			rTile := dna.Random(rng, 384, 0.45)
			qTile := mutate(rng, rTile, 0.15)
			if len(qTile) > 384 {
				qTile = qTile[:384]
			}
			first := it%2 == 0
			maxOff := 384 - 128
			want := AlignTile(rTile, qTile, first, maxOff, &sc)
			got := ta.AlignTile(rTile, qTile, first, maxOff)
			if mode == KernelLUT && !tileResultsEqual(got, want) {
				t.Fatalf("mode %v iteration %d: kernel diverged from reference:\n got %+v\nwant %+v", mode, it, got, want)
			}
			if err := tileContractDiff(got, want, first); err != "" {
				t.Fatalf("mode %v iteration %d: %s:\n got %+v\nwant %+v", mode, it, err, got, want)
			}
		}
	}
}

// Tiles larger than the kernel's int32 side bound must fall back to
// the reference implementation and still return identical results
// (maxSide is lowered artificially; production tiles never hit it).
func TestKernelOversizeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := Figure1()
	ta, err := NewTileAligner(&sc)
	if err != nil {
		t.Fatal(err)
	}
	ta.maxSide = 16
	rTile := dna.Random(rng, 40, 0.5)
	qTile := mutate(rng, rTile, 0.2)
	want := AlignTile(rTile, qTile, true, 0, &sc)
	got := ta.AlignTile(rTile, qTile, true, 0)
	if !tileResultsEqual(got, want) {
		t.Fatalf("fallback diverged: got %+v want %+v", got, want)
	}
	wantRev := AlignTile(dna.Reverse(rTile), dna.Reverse(qTile), false, 24, &sc)
	gotRev := ta.AlignTileReversed(rTile, qTile, false, 24)
	if !tileResultsEqual(gotRev, wantRev) {
		t.Fatalf("reversed fallback diverged: got %+v want %+v", gotRev, wantRev)
	}
}

// Validate must reject parameters that would overflow the int16 LUT.
func TestKernelScoringBounds(t *testing.T) {
	sc := GACTEval()
	sc.W[0][0] = maxAbsParam + 1
	if err := sc.Validate(); err == nil {
		t.Error("oversized substitution score should fail Validate")
	}
	sc = GACTEval()
	sc.GapOpen = maxAbsParam + 1
	sc.GapExtend = maxAbsParam + 1
	if err := sc.Validate(); err == nil {
		t.Error("oversized gap penalty should fail Validate")
	}
	if _, err := NewTileAligner(&sc); err == nil {
		t.Error("NewTileAligner should reject an invalid scoring")
	}
}

// The LUT must agree with Scoring.Sub over the whole padded index
// space, N rows/columns included.
func TestSubLUTMatchesSub(t *testing.T) {
	sc := Simple(2, 3, 1)
	sc.W[1][2] = -7 // make it asymmetric
	lut := sc.LUT()
	bases := []byte{'A', 'C', 'G', 'T', 'N'}
	for _, r := range bases {
		for _, q := range bases {
			row := lut.Row(dna.Code(q))
			if got, want := int(row[dna.Code(r)&7]), sc.Sub(r, q); got != want {
				t.Errorf("LUT[%c][%c] = %d, Sub = %d", q, r, got, want)
			}
		}
	}
	// Padding beyond the coded alphabet must behave like N (zero).
	for qc := byte(0); qc < 8; qc++ {
		row := lut.Row(qc)
		for rc := 0; rc < LUTStride; rc++ {
			if (qc > 3 || rc > 3) && row[rc] != 0 {
				t.Errorf("padding entry lut[%d][%d] = %d, want 0", qc, rc, row[rc])
			}
		}
	}
}
