package align

import "darwin/internal/dna"

// negInf32 is the int32 "minus infinity" for the tile kernel's gap
// rows, chosen (like gactsim's negInf16) so that subtracting a
// Validated gap penalty cannot wrap: −2^29 − maxAbsParam > −2^31.
const negInf32 = int32(-1) << 29

// maxKernelSide is the largest tile side the int32 kernel accepts;
// beyond it the aligner falls back to the int-width reference
// implementation (see maxAbsParam for the overflow arithmetic). GACT
// tiles are two orders of magnitude smaller, so the fallback is a
// safety net, not a working path.
const maxKernelSide = 1 << 15

// TileAligner is the allocation-free production kernel behind GACT's
// Align step. It computes exactly what the free function AlignTile
// computes — that reference implementation is retained as the oracle a
// property test compares against — but owns its DP state so the steady
// state allocates nothing:
//
//   - the (T+1)² pointer matrix, score rows, precoded tile buffers, and
//     traceback path grow monotonically and are reused across tiles;
//   - each tile's sequences are pre-encoded to base codes once, and the
//     inner loop reads substitution scores from a flat int16 LUT — no
//     method calls, byte decodes, or N branches per DP cell (the
//     software analogue of the hardware's ASCII→3-bit converter feeding
//     the PE array, Section 7);
//   - DP rows are int32, not int; Scoring.Validate bounds the
//     parameters so int32 cannot overflow for any tile the kernel
//     accepts.
//
// A TileAligner is not safe for concurrent use; each engine clone owns
// one (mirroring the hardware, where each GACT array has private
// traceback SRAM).
type TileAligner struct {
	sc        Scoring
	lut       SubLUT
	open, ext int32
	maxSide   int // kernel side limit; a test knob, maxKernelSide in production

	// Kernel-tier state (see bitvector.go): the selected mode, the
	// divergence-gate override, the scoring's maximum substitution
	// score (the band derivation's wmax), the embedded bitvector
	// scratch, and the per-path counters.
	mode   KernelMode
	maxDiv int
	wmax   int32
	bv     MyersState
	ks     KernelStats

	// Reusable state, grown monotonically.
	ptr        []byte // (n+1)×(m+1) pointer matrix, row-major
	hRow, vRow []int32
	rCode      []byte // precoded reference tile
	qCode      []byte // precoded query tile
	cig        Cigar  // traceback path buffer

	// Fill results for the current tile.
	maxScore   int32
	maxI, maxJ int
}

// NewTileAligner validates sc and returns an aligner with empty
// buffers; they grow on first use (or via Preallocate).
func NewTileAligner(sc *Scoring) (*TileAligner, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	wmax := 0
	for i := range sc.W {
		for j := range sc.W[i] {
			if sc.W[i][j] > wmax {
				wmax = sc.W[i][j]
			}
		}
	}
	return &TileAligner{
		sc:      *sc,
		lut:     sc.LUT(),
		open:    int32(sc.GapOpen),
		ext:     int32(sc.GapExtend),
		maxSide: maxKernelSide,
		wmax:    int32(wmax), // > 0: Validate requires a positive match
	}, nil
}

// Scoring returns the aligner's scoring parameters.
func (a *TileAligner) Scoring() *Scoring { return &a.sc }

// Preallocate sizes the buffers for tiles up to side×side, so the
// first tiles of a fresh engine don't pay growth allocations either.
func (a *TileAligner) Preallocate(side int) {
	if side > 0 && side <= a.maxSide {
		a.grow(side+1, side+1)
	}
}

// AlignTile is the stateful equivalent of the package-level AlignTile:
// identical arguments, identical result. The returned Cigar aliases
// the aligner's internal buffer and is only valid until the next call;
// callers that retain it across tiles must copy it first.
func (a *TileAligner) AlignTile(rTile, qTile dna.Seq, firstTile bool, maxOff int) TileResult {
	return a.align(rTile, qTile, firstTile, maxOff, false)
}

// AlignTileReversed aligns the reversed tile — the tile whose contents
// are rTile and qTile read back-to-front — directly from the forward
// slices, with the same result as AlignTile(Reverse(rTile),
// Reverse(qTile), ...). GACT's right extension runs on reversed
// sequences (Section 4); precoding the reversal per tile replaces the
// per-extension full-sequence reversal copies. The same Cigar aliasing
// rule as AlignTile applies.
func (a *TileAligner) AlignTileReversed(rTile, qTile dna.Seq, firstTile bool, maxOff int) TileResult {
	return a.align(rTile, qTile, firstTile, maxOff, true)
}

func (a *TileAligner) align(rTile, qTile dna.Seq, firstTile bool, maxOff int, reversed bool) TileResult {
	n, m := len(rTile), len(qTile)
	if n == 0 || m == 0 {
		return TileResult{}
	}
	if n > a.maxSide || m > a.maxSide {
		// Outside the int32 overflow bound: use the int-width reference
		// implementation (allocating — acceptable for a path no real
		// tile configuration reaches).
		if reversed {
			rTile, qTile = dna.Reverse(rTile), dna.Reverse(qTile)
		}
		a.ks.LUTTiles++
		a.ks.LUTCells += int64(n) * int64(m)
		return AlignTile(rTile, qTile, firstTile, maxOff, &a.sc)
	}
	if maxOff <= 0 {
		maxOff = max(n, m)
	}
	a.grow(n+1, m+1)
	var rc, qc []byte
	if reversed {
		rc = dna.AppendCodesReversed(a.rCode[:0], rTile)
		qc = dna.AppendCodesReversed(a.qCode[:0], qTile)
	} else {
		rc = dna.AppendCodes(a.rCode[:0], rTile)
		qc = dna.AppendCodes(a.qCode[:0], qTile)
	}
	a.rCode, a.qCode = rc, qc

	// The bitvector tier handles extension tiles only: first tiles
	// need the exact global-maximum cell (MaxI/MaxJ), which a banded
	// fill cannot guarantee.
	if a.mode != KernelLUT && !firstTile {
		if res, ok := a.tryBitvector(rc, qc, maxOff); ok {
			return res
		}
	}

	cells := a.fillCoded(rc, qc, -1)
	a.ks.LUTTiles++
	a.ks.LUTCells += cells

	startI, startJ := n, m
	score := int(a.hRow[n]) // H of the bottom-right cell
	if firstTile {
		startI, startJ = a.maxI, a.maxJ
		score = int(a.maxScore)
	}
	cigar, iOff, jOff := a.traceback(n+1, startI, startJ, maxOff)
	return TileResult{
		Score: score,
		IOff:  iOff,
		JOff:  jOff,
		MaxI:  a.maxI,
		MaxJ:  a.maxJ,
		Cigar: cigar,
	}
}

// grow ensures the pointer matrix and rows cover a w×h DP grid.
func (a *TileAligner) grow(w, h int) {
	if need := w * h; cap(a.ptr) < need {
		a.ptr = make([]byte, need)
	}
	if cap(a.hRow) < w {
		a.hRow = make([]int32, w)
		a.vRow = make([]int32, w)
	}
	if cap(a.rCode) < w {
		a.rCode = make([]byte, 0, w)
	}
	if cap(a.qCode) < h {
		a.qCode = make([]byte, 0, h)
	}
}

// fillCoded computes the local affine-gap DP matrix exactly as
// fillLocal does, over precoded sequences with the int16 LUT and int32
// rows, and returns the number of cells filled. After it returns, hRow
// holds H over the final query row and maxScore/maxI/maxJ locate the
// highest-scoring cell (earliest row, then earliest column, on ties —
// the systolic array's convention).
//
// band < 0 fills the full matrix. band ≥ 0 restricts row j to columns
// within ±band of the back-diagonal through (n, m) — i ∈
// [j+(n−m)−band, j+(n−m)+band] — the bitvector tier's provably
// sufficient window (see bitvector.go). Out-of-band cells keep their
// initialization (hRow 0, vRow negInf), which are valid lower bounds
// of the true values: bands only move right as j grows, so a cell
// first entering the band has never been written this tile. In-band
// values, the traceback path, and hRow[n] are exact; maxScore/maxI/
// maxJ are in-band maxima.
func (a *TileAligner) fillCoded(rc, qc []byte, band int) int64 {
	n, m := len(rc), len(qc)
	w, h := n+1, m+1

	hRow := a.hRow[:w]
	vRow := a.vRow[:w]
	for i := range hRow {
		hRow[i] = 0
	}
	for i := range vRow {
		vRow[i] = negInf32
	}
	// Only row 0 and column 0 of the pointer matrix are read without
	// being written (traceback stops on their hNull); the interior is
	// fully overwritten for the current tile, so a reused matrix needs
	// no wholesale clear.
	ptr := a.ptr
	for i := 0; i < w; i++ {
		ptr[i] = 0
	}

	open, ext := a.open, a.ext
	maxScore := int32(0)
	maxI, maxJ := 0, 0
	var cells int64
	for j := 1; j < h; j++ {
		lo, hi := 1, n
		if band >= 0 {
			if lo = j + (n - m) - band; lo < 1 {
				lo = 1
			}
			if hi = j + (n - m) + band; hi > n {
				hi = n
			}
			if hi < lo {
				continue // row entirely outside the band
			}
		}
		diag := hRow[lo-1] // H(j-1, lo-1)
		// H(j, lo-1): 0 on the column-0 boundary, otherwise out of band
		// (the traceback provably never crosses a band edge, so the
		// underestimate only weakens candidates that cannot win).
		leftH := negInf32
		rowPtr := ptr[j*w : j*w+w]
		if lo == 1 {
			hRow[0] = 0
			leftH = 0
			rowPtr[0] = 0
		}
		hPrev := negInf32 // horizontal gap score at (j, i-1)
		// A fixed-size array pointer into the LUT row: the &7-masked
		// index is provably < LUTStride, so the per-cell load carries
		// no bounds check.
		lutRow := (*[LUTStride]int16)(a.lut[(int(qc[j-1])&7)*LUTStride:])
		// The selection logic below is the reference fillLocal's,
		// rewritten as single-assignment conditionals and max() so the
		// compiler emits conditional moves instead of branches — on
		// noisy-read tiles the per-cell branches are data-dependent and
		// mispredict heavily, which dominated the fill's runtime.
		for i := lo; i <= hi; i++ {
			// Horizontal gap (consumes reference): depends on (j, i-1).
			hOpen := leftH - open
			hExt := hPrev - ext
			hGap := max(hOpen, hExt)
			var p byte
			if hOpen >= hExt {
				p = horizOpenBit
			}

			// Vertical gap (consumes query): depends on (j-1, i).
			vOpen := hRow[i] - open
			vExt := vRow[i] - ext
			vGap := max(vOpen, vExt)
			if vOpen >= vExt {
				p |= vertOpenBit
			}

			// H source selection, earliest-wins on ties (strict >
			// against the running best, as in the reference).
			diagScore := diag + int32(lutRow[rc[i-1]&7])
			best := int32(0)
			src := int32(hNull)
			if diagScore > best {
				src = hDiag
			}
			best = max(best, diagScore)
			if hGap > best {
				src = hHoriz
			}
			best = max(best, hGap)
			if vGap > best {
				src = hVert
			}
			best = max(best, vGap)
			rowPtr[i] = p | byte(src)

			diag = hRow[i]
			hRow[i] = best
			leftH = best
			vRow[i] = vGap
			hPrev = hGap

			if best > maxScore {
				maxScore = best
				maxI, maxJ = i, j
			}
		}
		cells += int64(hi - lo + 1)
	}
	a.maxScore, a.maxI, a.maxJ = maxScore, maxI, maxJ
	return cells
}

// traceback walks pointers from cell (i, j) exactly like tracebackFrom,
// appending into the aligner's reused path buffer.
func (a *TileAligner) traceback(w, i, j, maxOff int) (Cigar, int, int) {
	cig := a.cig[:0]
	iOff, jOff := 0, 0
	state := stateH
	for i > 0 || j > 0 {
		if iOff >= maxOff || jOff >= maxOff {
			break
		}
		p := a.ptr[j*w+i]
		switch state {
		case stateH:
			switch p & hMask {
			case hNull:
				goto done
			case hDiag:
				if i == 0 || j == 0 {
					goto done
				}
				cig = cig.AppendOp(OpMatch)
				i--
				j--
				iOff++
				jOff++
			case hHoriz:
				state = hHoriz
			case hVert:
				state = hVert
			}
		case hHoriz: // consuming reference bases (OpDel)
			if i == 0 {
				goto done
			}
			cig = cig.AppendOp(OpDel)
			open := p&horizOpenBit != 0
			i--
			iOff++
			if open {
				state = stateH
			}
		case hVert: // consuming query bases (OpIns)
			if j == 0 {
				goto done
			}
			cig = cig.AppendOp(OpIns)
			open := p&vertOpenBit != 0
			j--
			jOff++
			if open {
				state = stateH
			}
		}
	}
done:
	a.cig = cig
	return cig.Reverse(), iOff, jOff
}
