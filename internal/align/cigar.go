package align

import (
	"fmt"
	"strconv"
	"strings"

	"darwin/internal/dna"
)

// Op is one alignment operation kind.
type Op byte

// Alignment operation kinds. Match covers both equal and substituted
// bases (CIGAR 'M'); Ins consumes query only; Del consumes reference
// only — matching the 2-bit insert/delete/match encoding the GACT
// traceback hardware emits (Section 7).
const (
	OpMatch Op = 'M'
	OpIns   Op = 'I'
	OpDel   Op = 'D'
)

// Step is a run-length encoded alignment operation.
type Step struct {
	Op  Op
	Len int
}

// Cigar is a run-length encoded alignment path.
type Cigar []Step

// AppendOp appends one operation, merging with the trailing run.
func (c Cigar) AppendOp(op Op) Cigar {
	if n := len(c); n > 0 && c[n-1].Op == op {
		c[n-1].Len++
		return c
	}
	return append(c, Step{op, 1})
}

// Concat appends another cigar, merging the boundary runs.
func (c Cigar) Concat(other Cigar) Cigar {
	for _, s := range other {
		if s.Len == 0 {
			continue
		}
		if n := len(c); n > 0 && c[n-1].Op == s.Op {
			c[n-1].Len += s.Len
		} else {
			c = append(c, s)
		}
	}
	return c
}

// RefLen returns the number of reference bases the path consumes.
func (c Cigar) RefLen() int {
	n := 0
	for _, s := range c {
		if s.Op != OpIns {
			n += s.Len
		}
	}
	return n
}

// QueryLen returns the number of query bases the path consumes.
func (c Cigar) QueryLen() int {
	n := 0
	for _, s := range c {
		if s.Op != OpDel {
			n += s.Len
		}
	}
	return n
}

// String renders the path in CIGAR notation, e.g. "12M1I3M".
func (c Cigar) String() string {
	var b strings.Builder
	for _, s := range c {
		b.WriteString(strconv.Itoa(s.Len))
		b.WriteByte(byte(s.Op))
	}
	return b.String()
}

// ParseCigar parses CIGAR notation produced by Cigar.String — only the
// M/I/D operations the GACT traceback emits, no clips — back into a
// path. Round-tripping through String and ParseCigar is exact: Check's
// canonical-form invariant (positive runs, adjacent runs merged) means
// the string form carries the full step structure.
func ParseCigar(s string) (Cigar, error) {
	var c Cigar
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i || j == len(s) {
			return nil, fmt.Errorf("align: malformed cigar %q at offset %d", s, i)
		}
		n, err := strconv.Atoi(s[i:j])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("align: bad cigar run length in %q at offset %d", s, i)
		}
		op := Op(s[j])
		switch op {
		case OpMatch, OpIns, OpDel:
		default:
			return nil, fmt.Errorf("align: unsupported cigar op %q in %q", s[j], s)
		}
		if k := len(c); k > 0 && c[k-1].Op == op {
			return nil, fmt.Errorf("align: non-canonical cigar %q: adjacent %c runs", s, op)
		}
		c = append(c, Step{op, n})
		i = j + 1
	}
	return c, nil
}

// Reverse reverses the path in place and returns it (left extension
// produces operations back-to-front).
func (c Cigar) Reverse() Cigar {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}

// Result is a pairwise alignment between a reference and a query.
type Result struct {
	// Score is the alignment score under the scoring that produced it.
	Score int
	// RefStart, RefEnd delimit the aligned reference span [start, end).
	RefStart, RefEnd int
	// QueryStart, QueryEnd delimit the aligned query span [start, end).
	QueryStart, QueryEnd int
	// Cigar is the alignment path.
	Cigar Cigar
}

// Identity returns the fraction of match columns whose bases are equal,
// given the two sequences the result refers to.
func (r *Result) Identity(ref, query dna.Seq) float64 {
	i, j := r.RefStart, r.QueryStart
	matchCols, equal := 0, 0
	for _, s := range r.Cigar {
		switch s.Op {
		case OpMatch:
			for k := 0; k < s.Len; k++ {
				matchCols++
				if ref[i+k] == query[j+k] {
					equal++
				}
			}
			i += s.Len
			j += s.Len
		case OpIns:
			j += s.Len
		case OpDel:
			i += s.Len
		}
	}
	if matchCols == 0 {
		return 0
	}
	return float64(equal) / float64(matchCols)
}

// Rescore recomputes the alignment score of the path under sc. It is the
// ground truth the hardware's running score must agree with; tests use
// it as an invariant.
func (r *Result) Rescore(ref, query dna.Seq, sc *Scoring) int {
	score := 0
	i, j := r.RefStart, r.QueryStart
	for _, s := range r.Cigar {
		switch s.Op {
		case OpMatch:
			for k := 0; k < s.Len; k++ {
				score += sc.Sub(ref[i+k], query[j+k])
			}
			i += s.Len
			j += s.Len
		case OpIns:
			score -= sc.GapOpen + (s.Len-1)*sc.GapExtend
			j += s.Len
		case OpDel:
			score -= sc.GapOpen + (s.Len-1)*sc.GapExtend
			i += s.Len
		}
	}
	return score
}

// Check validates that the result's path is consistent with its spans
// and stays inside the sequences. Alignments out of any aligner must
// pass Check; property tests rely on it.
func (r *Result) Check(ref, query dna.Seq) error {
	if r.RefStart < 0 || r.RefEnd > len(ref) || r.RefStart > r.RefEnd {
		return fmt.Errorf("align: ref span [%d,%d) out of bounds (len %d)", r.RefStart, r.RefEnd, len(ref))
	}
	if r.QueryStart < 0 || r.QueryEnd > len(query) || r.QueryStart > r.QueryEnd {
		return fmt.Errorf("align: query span [%d,%d) out of bounds (len %d)", r.QueryStart, r.QueryEnd, len(query))
	}
	if got, want := r.Cigar.RefLen(), r.RefEnd-r.RefStart; got != want {
		return fmt.Errorf("align: cigar consumes %d ref bases, span is %d", got, want)
	}
	if got, want := r.Cigar.QueryLen(), r.QueryEnd-r.QueryStart; got != want {
		return fmt.Errorf("align: cigar consumes %d query bases, span is %d", got, want)
	}
	for i, s := range r.Cigar {
		if s.Len <= 0 {
			return fmt.Errorf("align: cigar step %d has non-positive length %d", i, s.Len)
		}
		if i > 0 && r.Cigar[i-1].Op == s.Op {
			return fmt.Errorf("align: cigar steps %d,%d not merged (%c)", i-1, i, s.Op)
		}
	}
	return nil
}
