package align

import (
	"fmt"

	"darwin/internal/dna"
)

// XDropResult is the outcome of an X-drop extension.
type XDropResult struct {
	// Score is the best extension score found.
	Score int
	// RefEnd, QueryEnd are the numbers of reference/query bases
	// consumed by the best-scoring extension.
	RefEnd, QueryEnd int
	// CellsComputed counts DP cells evaluated — the live-band memory/
	// work footprint that, unlike GACT's O(T²), grows with divergence
	// and length.
	CellsComputed int64
}

// XDrop performs greedy seed extension from position (0, 0) of ref and
// query, the heuristic of Zhang et al. that BLAST-family tools use
// (cited in Section 4): the DP is evaluated antidiagonal by
// antidiagonal, discarding cells whose score falls more than x below
// the running best. Linear gap penalties (GapOpen == GapExtend).
//
// X-drop completes its matrix fill before any traceback, so traceback
// memory grows with the extension length — the property that makes it
// awkward in hardware and that GACT's tiling removes.
func XDrop(ref, query dna.Seq, x int, sc *Scoring) (XDropResult, error) {
	var res XDropResult
	if err := sc.Validate(); err != nil {
		return res, err
	}
	if sc.GapOpen != sc.GapExtend {
		return res, fmt.Errorf("align: XDrop requires linear gaps (open %d != extend %d)", sc.GapOpen, sc.GapExtend)
	}
	if x <= 0 {
		return res, fmt.Errorf("align: X-drop threshold %d must be positive", x)
	}
	if len(ref) == 0 || len(query) == 0 {
		return res, fmt.Errorf("align: empty sequence (ref %d, query %d)", len(ref), len(query))
	}
	gap := sc.GapExtend

	// Antidiagonal d holds cells (i, j) with i+j == d, i ∈ [lo, hi].
	// scores[i-lo] is the running H; pruned cells are dropped from the
	// live band by shrinking [lo, hi].
	prev2 := []int{} // antidiagonal d-2
	prev := []int{0} // antidiagonal d-1, starting from cell (0,0)
	lo1, hi1 := 0, 0 // bounds of prev
	lo2, hi2 := 0, -1
	best := 0

	for d := 1; d <= len(ref)+len(query); d++ {
		// Only cells with a live parent on d-1 or d-2 can be alive.
		nlo := max(max(0, d-len(query)), min(lo1, lo2+1))
		nhi := min(min(len(ref), d), max(hi1+1, hi2+1))
		cur := make([]int, 0, nhi-nlo+1)
		clo, chi := -1, -2
		for i := nlo; i <= nhi; i++ {
			j := d - i
			s := int(-1) << 40
			// Horizontal: (i-1, j) on d-1, consumes ref.
			if i-1 >= lo1 && i-1 <= hi1 {
				s = max(s, prev[i-1-lo1]-gap)
			}
			// Vertical: (i, j-1) on d-1, consumes query.
			if i >= lo1 && i <= hi1 {
				s = max(s, prev[i-lo1]-gap)
			}
			// Diagonal: (i-1, j-1) on d-2.
			if i-1 >= lo2 && i-1 <= hi2 && i >= 1 && j >= 1 {
				s = max(s, prev2[i-1-lo2]+sc.Sub(ref[i-1], query[j-1]))
			}
			res.CellsComputed++
			if s < best-x {
				if clo < 0 {
					continue // still trimming the leading edge
				}
				// Trailing edge pruned: but cells further along may
				// revive via other paths; keep scanning with sentinel.
				cur = append(cur, int(-1)<<40)
				chi = i
				continue
			}
			if clo < 0 {
				clo = i
			}
			chi = i
			cur = append(cur, s)
			if s > best {
				best = s
				res.RefEnd, res.QueryEnd = i, j
			}
		}
		if clo < 0 {
			break // entire antidiagonal pruned: extension ends
		}
		// Trim sentinel tail.
		for len(cur) > 0 && cur[len(cur)-1] == int(-1)<<40 {
			cur = cur[:len(cur)-1]
			chi--
		}
		lo2, hi2, prev2 = lo1, hi1, prev
		lo1, hi1, prev = clo, chi, cur
	}
	_ = prev2
	_ = lo2
	_ = hi2
	res.Score = best
	return res, nil
}
