package align

import (
	"fmt"

	"darwin/internal/dna"
)

// Hirschberg computes an optimal global alignment in O(m+n) space via
// divide and conquer — the classical linear-space alternative the
// paper cites (Section 4) when motivating GACT: "Hirschberg's
// algorithm can improve the space complexity to linear, but is rarely
// used in practice because of its performance." It is implemented here
// for linear gap penalties (GapOpen == GapExtend); affine gaps require
// the Myers-Miller extension and a quadratic-space oracle covers that
// case in this repository.
//
// The returned alignment consumes both sequences fully and scores
// identically to the quadratic-space global aligner.
func Hirschberg(ref, query dna.Seq, sc *Scoring) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.GapOpen != sc.GapExtend {
		return nil, fmt.Errorf("align: Hirschberg requires linear gaps (open %d != extend %d)", sc.GapOpen, sc.GapExtend)
	}
	if len(ref) == 0 || len(query) == 0 {
		return nil, fmt.Errorf("align: empty sequence (ref %d, query %d)", len(ref), len(query))
	}
	cigar := hirschbergRec(ref, query, sc)
	res := &Result{
		RefStart: 0, RefEnd: len(ref),
		QueryStart: 0, QueryEnd: len(query),
		Cigar: cigar,
	}
	res.Score = res.Rescore(ref, query, sc)
	return res, nil
}

// nwScoreRow computes the last row of the global DP matrix of ref vs
// query (linear gaps) in O(|ref|) space.
func nwScoreRow(ref, query dna.Seq, sc *Scoring) []int {
	gap := sc.GapExtend
	prev := make([]int, len(ref)+1)
	cur := make([]int, len(ref)+1)
	for i := range prev {
		prev[i] = -i * gap
	}
	for j := 1; j <= len(query); j++ {
		cur[0] = -j * gap
		qb := query[j-1]
		for i := 1; i <= len(ref); i++ {
			cur[i] = max(prev[i-1]+sc.Sub(ref[i-1], qb), max(prev[i]-gap, cur[i-1]-gap))
		}
		prev, cur = cur, prev
	}
	return prev
}

func hirschbergRec(ref, query dna.Seq, sc *Scoring) Cigar {
	gap := sc.GapExtend
	switch {
	case len(query) == 0:
		if len(ref) == 0 {
			return nil
		}
		return Cigar{{OpDel, len(ref)}}
	case len(ref) == 0:
		return Cigar{{OpIns, len(query)}}
	case len(query) == 1:
		// Base case: align the single query base against the best ref
		// position (or as an insertion).
		bestScore := -gap * (len(ref) + 1) // all-gap option
		bestPos := -1
		for i := 0; i < len(ref); i++ {
			s := sc.Sub(ref[i], query[0]) - gap*(len(ref)-1)
			if s > bestScore {
				bestScore = s
				bestPos = i
			}
		}
		if bestPos < 0 {
			return Cigar{{OpIns, 1}}.Concat(Cigar{{OpDel, len(ref)}})
		}
		var c Cigar
		if bestPos > 0 {
			c = append(c, Step{OpDel, bestPos})
		}
		c = append(c, Step{OpMatch, 1})
		if tail := len(ref) - bestPos - 1; tail > 0 {
			c = c.Concat(Cigar{{OpDel, tail}})
		}
		return c
	}
	// Divide on the query midpoint; find the optimal reference split.
	mid := len(query) / 2
	top := nwScoreRow(ref, query[:mid], sc)
	bot := nwScoreRow(dna.Reverse(ref), dna.Reverse(query[mid:]), sc)
	split, best := 0, int(-1)<<62
	for i := 0; i <= len(ref); i++ {
		if s := top[i] + bot[len(ref)-i]; s > best {
			best = s
			split = i
		}
	}
	left := hirschbergRec(ref[:split], query[:mid], sc)
	right := hirschbergRec(ref[split:], query[mid:], sc)
	return left.Concat(right)
}
