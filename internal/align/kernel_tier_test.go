package align

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/dna"
)

// tileContractDiff compares two TileResults on the fields GACT
// consumes: Score, IOff, JOff, and Cigar always; MaxI/MaxJ only when
// firstTile was set (TileResult documents them as meaningful only
// then, and the banded tier never runs on first tiles). It returns ""
// on a match, else a description of the first difference.
func tileContractDiff(got, want TileResult, firstTile bool) string {
	if got.Score != want.Score {
		return fmt.Sprintf("score %d != %d", got.Score, want.Score)
	}
	if got.IOff != want.IOff || got.JOff != want.JOff {
		return fmt.Sprintf("offsets (%d,%d) != (%d,%d)", got.IOff, got.JOff, want.IOff, want.JOff)
	}
	if firstTile && (got.MaxI != want.MaxI || got.MaxJ != want.MaxJ) {
		return fmt.Sprintf("max cell (%d,%d) != (%d,%d)", got.MaxI, got.MaxJ, want.MaxI, want.MaxJ)
	}
	if len(got.Cigar) != len(want.Cigar) {
		return fmt.Sprintf("cigar length %d != %d", len(got.Cigar), len(want.Cigar))
	}
	for i := range got.Cigar {
		if got.Cigar[i] != want.Cigar[i] {
			return fmt.Sprintf("cigar[%d] %+v != %+v", i, got.Cigar[i], want.Cigar[i])
		}
	}
	return ""
}

// cloneTile deep-copies a TileResult whose cigar aliases an aligner's
// reused buffer.
func cloneTile(res TileResult) TileResult {
	res.Cigar = append(Cigar(nil), res.Cigar...)
	return res
}

// tierSeq makes tile-tier-sized sequences, occasionally N-laced (which
// must force the LUT path without changing results) and with lengths
// biased toward the 64-bit block boundaries the bitvector recurrence
// is touchiest at.
func tierSeq(rng *rand.Rand, n int) dna.Seq {
	if rng.Intn(3) == 0 {
		// Snap near a block boundary: 63, 64, 65, 127, 128, 129, ...
		k := 64 * (1 + rng.Intn(3))
		n = max(1, k-1+rng.Intn(3))
	}
	s := dna.Random(rng, n, 0.5)
	if rng.Intn(5) == 0 {
		for x := 0; x < 1+rng.Intn(3); x++ {
			s[rng.Intn(len(s))] = 'N'
		}
	}
	return s
}

// The cross-kernel property (the tentpole's correctness claim): across
// random scorings, tile shapes, identities, divergence thresholds,
// orientations, and first/extension flavours, the auto and forced
// bitvector tiers return results identical to the LUT kernel on every
// field GACT consumes. The banded fill's provable-window argument is
// exactly what this hammers.
func TestQuickKernelTiers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := Simple(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2))
		if rng.Intn(3) == 0 {
			// Affine (open > extend) exercises the gap-chain open bits.
			sc.GapOpen = sc.GapExtend + 1 + rng.Intn(3)
		}
		lut, err := NewTileAligner(&sc)
		if err != nil {
			t.Logf("NewTileAligner: %v", err)
			return false
		}
		lut.SetKernel(KernelLUT)
		auto, _ := NewTileAligner(&sc)
		auto.SetKernel(KernelAuto)
		forced, _ := NewTileAligner(&sc)
		forced.SetKernel(KernelBitvector)
		if rng.Intn(2) == 0 {
			// Random divergence thresholds, tiny ones included: they may
			// change *when* auto falls back, never *what* it returns.
			d := rng.Intn(200)
			auto.SetKernelDivergence(d)
			forced.SetKernelDivergence(d)
		}
		for it := 0; it < 6; it++ {
			rTile := tierSeq(rng, 32+rng.Intn(200))
			var qTile dna.Seq
			switch rng.Intn(4) {
			case 0:
				qTile = tierSeq(rng, 32+rng.Intn(200))
			case 1:
				qTile = mutate(rng, rTile, 0.4)
			default:
				qTile = mutate(rng, rTile, 0.03+rng.Float64()*0.2)
			}
			firstTile := rng.Intn(4) == 0
			maxOff := 0
			if rng.Intn(3) > 0 {
				maxOff = 1 + rng.Intn(200)
			}
			// The kernel cigars alias per-aligner buffers; copy the
			// expectations so the second orientation can't clobber them.
			want := cloneTile(lut.AlignTile(rTile, qTile, firstTile, maxOff))
			wantRev := cloneTile(lut.AlignTileReversed(rTile, qTile, firstTile, maxOff))
			for name, ta := range map[string]*TileAligner{"auto": auto, "bitvector": forced} {
				got := ta.AlignTile(rTile, qTile, firstTile, maxOff)
				if d := tileContractDiff(got, want, firstTile); d != "" {
					t.Logf("%s mismatch (seed %d it %d, first %v): %s\n got %+v\nwant %+v",
						name, seed, it, firstTile, d, got, want)
					return false
				}
				gotRev := ta.AlignTileReversed(rTile, qTile, firstTile, maxOff)
				if d := tileContractDiff(gotRev, wantRev, firstTile); d != "" {
					t.Logf("%s reversed mismatch (seed %d it %d): %s\n got %+v\nwant %+v",
						name, seed, it, d, gotRev, wantRev)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// The auto tier must actually engage on the workload it exists for —
// high-identity extension tiles — and must fall back on low-identity
// tiles rather than fill wide bands.
func TestKernelTierFallbackRate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := GACTEval()
	ta, err := NewTileAligner(&sc)
	if err != nil {
		t.Fatal(err)
	}

	// High-identity reads: the PacBio-like regime of the paper's tiles.
	for it := 0; it < 40; it++ {
		rTile := dna.Random(rng, 320, 0.45)
		qTile := mutate(rng, rTile, 0.10)
		if len(qTile) > 320 {
			qTile = qTile[:320]
		}
		ta.AlignTile(rTile, qTile, false, 320-128)
	}
	ks := ta.KernelStats()
	if ks.BitvectorTiles < 30 {
		t.Errorf("high-identity tiles: bitvector path took %d of 40 (fallback %d, lut %d), want ≥ 30",
			ks.BitvectorTiles, ks.FallbackTiles, ks.LUTTiles)
	}
	if ks.BitvectorCells >= ks.BitvectorTiles*320*320/2 {
		t.Errorf("banded fill saved too little: %d cells over %d tiles (full fill would be %d/tile)",
			ks.BitvectorCells, ks.BitvectorTiles, 320*320)
	}

	// Low-identity reads: the divergence gate must punt to the LUT.
	before := ks
	for it := 0; it < 40; it++ {
		rTile := dna.Random(rng, 320, 0.45)
		qTile := mutate(rng, rTile, 0.45)
		if len(qTile) > 320 {
			qTile = qTile[:320]
		}
		ta.AlignTile(rTile, qTile, false, 320-128)
	}
	ks = ta.KernelStats()
	if fb := ks.FallbackTiles - before.FallbackTiles; fb < 30 {
		t.Errorf("low-identity tiles: only %d of 40 fell back (bitvector %d)",
			fb, ks.BitvectorTiles-before.BitvectorTiles)
	}

	// First tiles never take the bitvector tier.
	before = ks
	rTile := dna.Random(rng, 384, 0.45)
	qTile := mutate(rng, rTile, 0.05)
	ta.AlignTile(rTile, qTile, true, 384-128)
	ks = ta.KernelStats()
	if ks.BitvectorTiles != before.BitvectorTiles || ks.LUTTiles != before.LUTTiles+1 {
		t.Errorf("first tile took the bitvector path: %+v -> %+v", before, ks)
	}
}

// Mode parsing round-trips, and rejects junk.
func TestParseKernelMode(t *testing.T) {
	for _, m := range []KernelMode{KernelAuto, KernelLUT, KernelBitvector} {
		got, err := ParseKernelMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseKernelMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if got, err := ParseKernelMode(""); err != nil || got != KernelAuto {
		t.Errorf("ParseKernelMode(\"\") = %v, %v; want auto", got, err)
	}
	if _, err := ParseKernelMode("simd"); err == nil {
		t.Error("ParseKernelMode(\"simd\") should fail")
	}
}
