package align

import (
	"fmt"
	"math/bits"
	"sync"

	"darwin/internal/dna"
)

// EditMode selects the boundary conditions of the bit-vector aligner.
type EditMode int

const (
	// EditGlobal aligns query against ref end-to-end (Needleman-Wunsch
	// under unit costs) — Edlib's NW mode, used for the paper's
	// Figure 10 pairwise-alignment comparison.
	EditGlobal EditMode = iota
	// EditInfix aligns the whole query against the best-matching
	// substring of ref (Edlib's HW mode), the mapping-shaped variant.
	EditInfix
)

// EditResult is an edit-distance alignment. Distance counts unit-cost
// substitutions/insertions/deletions (lower is better) — the
// Levenshtein scoring Edlib is restricted to, as the paper notes when
// contrasting it with GACT's flexible scoring.
type EditResult struct {
	Distance             int
	RefStart, RefEnd     int
	QueryStart, QueryEnd int
	Cigar                Cigar
}

// MyersState owns the reusable scratch of the bit-vector aligner: the
// Peq table, the working Pv/Mv words, the per-column history the
// traceback reads, and the code/path buffers. Buffers grow
// monotonically and are reused across calls, so the steady state
// allocates nothing — the memory-frugality trick GenASM/Scrooge apply
// to the same recurrence in hardware. The zero value is ready to use.
// A MyersState is not safe for concurrent use.
type MyersState struct {
	peq    [4][]uint64
	pv, mv []uint64
	// hist retains the vertical-delta words of every column for the
	// traceback: column j occupies hist[j*2*blocks : (j+1)*2*blocks),
	// Pv words first, then Mv words. This is the compact traceback
	// store — O(n·⌈m/64⌉) words instead of an n×m pointer matrix.
	hist   []uint64
	rCode  []byte
	qCode  []byte
	cig    Cigar
	blocks int
}

// NewMyersState returns an empty state; buffers grow on first use.
func NewMyersState() *MyersState { return &MyersState{} }

// grow sizes the block-width buffers and the cols-column history.
func (s *MyersState) grow(blocks, cols int) {
	if cap(s.pv) < blocks || cap(s.peq[0]) < blocks {
		s.pv = make([]uint64, blocks)
		s.mv = make([]uint64, blocks)
		for c := range s.peq {
			s.peq[c] = make([]uint64, blocks)
		}
	}
	s.pv = s.pv[:blocks]
	s.mv = s.mv[:blocks]
	for c := range s.peq {
		s.peq[c] = s.peq[c][:blocks]
	}
	if need := cols * 2 * blocks; cap(s.hist) < need {
		s.hist = make([]uint64, need)
	} else {
		s.hist = s.hist[:need]
	}
	s.blocks = blocks
}

// Align computes the edit distance and alignment path between ref and
// query with Myers' 1999 bit-vector algorithm, the algorithm class
// Edlib implements. Time is O(⌈m/64⌉·n); the per-column Pv/Mv words
// are retained so the traceback does not recompute the matrix. The
// returned Cigar aliases the state's internal buffer and is only valid
// until the next call; callers that retain it must copy it first.
func (s *MyersState) Align(ref, query dna.Seq, mode EditMode) (EditResult, error) {
	if len(query) == 0 || len(ref) == 0 {
		return EditResult{}, fmt.Errorf("align: empty sequence (ref %d, query %d)", len(ref), len(query))
	}
	s.rCode = dna.AppendCodes(s.rCode[:0], ref)
	s.qCode = dna.AppendCodes(s.qCode[:0], query)
	return s.alignCodes(s.rCode, s.qCode, mode)
}

// alignCodes is Align over precoded base codes (dna.CodeA..dna.CodeN);
// the tile kernel's bitvector tier calls it directly on its precoded
// tile buffers. N codes match nothing (always an edit), like Edlib.
func (s *MyersState) alignCodes(rc, qc []byte, mode EditMode) (EditResult, error) {
	m, n := len(qc), len(rc)
	if m == 0 || n == 0 {
		return EditResult{}, fmt.Errorf("align: empty sequence (ref %d, query %d)", n, m)
	}
	blocks := (m + 63) / 64
	s.grow(blocks, n+1)

	// Peq[c][b]: bit i set iff qc[b*64+i] has base code c.
	for c := range s.peq {
		clear(s.peq[c])
	}
	for i := 0; i < m; i++ {
		if c := qc[i]; c < 4 {
			s.peq[c][i/64] |= 1 << (uint(i) % 64)
		}
	}

	pv, mv := s.pv, s.mv
	for b := range pv {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	hw := 2 * blocks // history words per column
	copy(s.hist[:blocks], pv)
	copy(s.hist[blocks:hw], mv)

	hin0 := 1 // global: D(0,j) = j
	if mode == EditInfix {
		hin0 = 0 // infix: D(0,j) = 0
	}

	for j := 1; j <= n; j++ {
		rcj := rc[j-1]
		hin := hin0
		for b := 0; b < blocks; b++ {
			var eq uint64
			if rcj < 4 {
				eq = s.peq[rcj][b]
			}
			pvB, mvB := pv[b], mv[b]
			xv := eq | mvB
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvB) + pvB) ^ pvB) | eq
			ph := mvB | ^(xh | pvB)
			mh := pvB & xh

			hout := 0
			if ph&(1<<63) != 0 {
				hout = 1
			} else if mh&(1<<63) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		col := s.hist[j*hw : j*hw+hw]
		copy(col[:blocks], pv)
		copy(col[blocks:], mv)
	}

	// Pick the traceback start.
	endJ := n
	if mode == EditInfix {
		best := s.colScore(mode, m, 0)
		endJ = 0
		for j := 1; j <= n; j++ {
			if d := s.colScore(mode, m, j); d < best {
				best = d
				endJ = j
			}
		}
	}
	dist := s.colScore(mode, m, endJ)

	// Traceback by DP-value comparison.
	cigar := s.cig[:0]
	i, j := m, endJ
	cur := dist
	for i > 0 {
		if j == 0 {
			// Leading query bases with no text left are insertions
			// (D(i,0) = i in both modes).
			cigar = cigar.AppendOp(OpIns)
			i--
			cur--
			continue
		}
		diag := s.colScore(mode, i-1, j-1)
		matchCost := 1
		if rc[j-1] == qc[i-1] && rc[j-1] != dna.CodeN {
			matchCost = 0
		}
		switch {
		case cur == diag+matchCost:
			cigar = cigar.AppendOp(OpMatch)
			i--
			j--
			cur = diag
		case cur == s.colScore(mode, i, j-1)+1:
			cigar = cigar.AppendOp(OpDel)
			j--
			cur--
		case cur == s.colScore(mode, i-1, j)+1:
			cigar = cigar.AppendOp(OpIns)
			i--
			cur--
		default:
			s.cig = cigar
			return EditResult{}, fmt.Errorf("align: inconsistent traceback at (%d,%d)", i, j)
		}
	}
	if mode == EditGlobal {
		for j > 0 {
			cigar = cigar.AppendOp(OpDel)
			j--
		}
	}
	s.cig = cigar
	return EditResult{
		Distance:   dist,
		RefStart:   j,
		RefEnd:     endJ,
		QueryStart: 0,
		QueryEnd:   m,
		Cigar:      cigar.Reverse(),
	}, nil
}

// colScore returns D(i, j) by prefix-summing the stored vertical
// deltas of column j from the top boundary value D(0, j).
func (s *MyersState) colScore(mode EditMode, i, j int) int {
	d := 0
	if mode == EditGlobal {
		d = j
	}
	hw := 2 * s.blocks
	pvJ := s.hist[j*hw : j*hw+s.blocks]
	mvJ := s.hist[j*hw+s.blocks : j*hw+hw]
	for b := 0; b*64 < i; b++ {
		word := uint(min(64, i-b*64))
		var mask uint64
		if word == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << word) - 1
		}
		d += bits.OnesCount64(pvJ[b]&mask) - bits.OnesCount64(mvJ[b]&mask)
	}
	return d
}

// myersPool recycles MyersStates behind the package-level wrappers,
// the scorePool idiom: steady state, the wrappers allocate only their
// returned result.
var myersPool = sync.Pool{New: func() any { return new(MyersState) }}

// Myers computes the edit-distance alignment of query against ref; it
// is MyersState.Align with pooled scratch, returning a result whose
// cigar is an owned copy (safe to retain).
func Myers(ref, query dna.Seq, mode EditMode) (*EditResult, error) {
	s := myersPool.Get().(*MyersState)
	res, err := s.Align(ref, query, mode)
	if err != nil {
		myersPool.Put(s)
		return nil, err
	}
	out := res
	out.Cigar = append(Cigar(nil), res.Cigar...)
	myersPool.Put(s)
	return &out, nil
}

// EditDistance computes just the edit distance (no traceback, no
// column history) between ref and query in the given mode. For
// EditInfix it returns the minimum distance over all ref substrings.
func EditDistance(ref, query dna.Seq, mode EditMode) (int, error) {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return 0, fmt.Errorf("align: empty sequence (ref %d, query %d)", n, m)
	}
	s := myersPool.Get().(*MyersState)
	defer myersPool.Put(s)
	blocks := (m + 63) / 64
	s.grow(blocks, 1)
	s.rCode = dna.AppendCodes(s.rCode[:0], ref)
	s.qCode = dna.AppendCodes(s.qCode[:0], query)
	rc, qc := s.rCode, s.qCode
	for c := range s.peq {
		clear(s.peq[c])
	}
	for i := 0; i < m; i++ {
		if c := qc[i]; c < 4 {
			s.peq[c][i/64] |= 1 << (uint(i) % 64)
		}
	}
	pv, mv := s.pv, s.mv
	for b := range pv {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	hin0 := 1
	if mode == EditInfix {
		hin0 = 0
	}
	// D(m, j) is recovered per column from the boundary value D(0, j)
	// plus the vertical-delta prefix sum over the column's Pv/Mv words
	// (O(⌈m/64⌉) popcounts, same order as the column update itself).
	lastBlock := blocks - 1
	tailBits := uint(m - lastBlock*64)
	var tailMask uint64
	if tailBits == 64 {
		tailMask = ^uint64(0)
	} else {
		tailMask = (uint64(1) << tailBits) - 1
	}
	bottom := m
	best := bottom
	for j := 1; j <= n; j++ {
		rcj := rc[j-1]
		hin := hin0
		for b := 0; b < blocks; b++ {
			var eq uint64
			if rcj < 4 {
				eq = s.peq[rcj][b]
			}
			pvB, mvB := pv[b], mv[b]
			xv := eq | mvB
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvB) + pvB) ^ pvB) | eq
			ph := mvB | ^(xh | pvB)
			mh := pvB & xh
			hout := 0
			if ph&(1<<63) != 0 {
				hout = 1
			} else if mh&(1<<63) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		d := 0
		if mode == EditGlobal {
			d = j
		}
		for b := 0; b < lastBlock; b++ {
			d += bits.OnesCount64(pv[b]) - bits.OnesCount64(mv[b])
		}
		d += bits.OnesCount64(pv[lastBlock]&tailMask) - bits.OnesCount64(mv[lastBlock]&tailMask)
		bottom = d
		if bottom < best {
			best = bottom
		}
	}
	if mode == EditInfix {
		return best, nil
	}
	return bottom, nil
}
