package align

import (
	"fmt"
	"math/bits"

	"darwin/internal/dna"
)

// EditMode selects the boundary conditions of the bit-vector aligner.
type EditMode int

const (
	// EditGlobal aligns query against ref end-to-end (Needleman-Wunsch
	// under unit costs) — Edlib's NW mode, used for the paper's
	// Figure 10 pairwise-alignment comparison.
	EditGlobal EditMode = iota
	// EditInfix aligns the whole query against the best-matching
	// substring of ref (Edlib's HW mode), the mapping-shaped variant.
	EditInfix
)

// EditResult is an edit-distance alignment. Distance counts unit-cost
// substitutions/insertions/deletions (lower is better) — the
// Levenshtein scoring Edlib is restricted to, as the paper notes when
// contrasting it with GACT's flexible scoring.
type EditResult struct {
	Distance             int
	RefStart, RefEnd     int
	QueryStart, QueryEnd int
	Cigar                Cigar
}

// Myers computes the edit distance and alignment path between ref and
// query with Myers' 1999 bit-vector algorithm, the algorithm class
// Edlib implements. Time is O(⌈m/64⌉·n); the per-column Pv/Mv words are
// retained so the traceback does not recompute the matrix.
func Myers(ref, query dna.Seq, mode EditMode) (*EditResult, error) {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("align: empty sequence (ref %d, query %d)", n, m)
	}
	blocks := (m + 63) / 64

	// Peq[c][b]: bit i set iff query[b*64+i] has base code c. N rows
	// match nothing (always an edit), like Edlib.
	var peq [4][]uint64
	for c := 0; c < 4; c++ {
		peq[c] = make([]uint64, blocks)
	}
	for i := 0; i < m; i++ {
		c := dna.Code(query[i])
		if c < 4 {
			peq[c][i/64] |= 1 << (uint(i) % 64)
		}
	}

	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	// Column history for traceback: pvHist[j] / mvHist[j] hold the
	// vertical delta words *after* processing column j (1-based).
	pvHist := make([][]uint64, n+1)
	mvHist := make([][]uint64, n+1)
	pvHist[0] = append([]uint64(nil), pv...)
	mvHist[0] = append([]uint64(nil), mv...)

	hin0 := 1 // global: D(0,j) = j
	if mode == EditInfix {
		hin0 = 0 // infix: D(0,j) = 0
	}

	for j := 1; j <= n; j++ {
		rc := dna.Code(ref[j-1])
		hin := hin0
		for b := 0; b < blocks; b++ {
			var eq uint64
			if rc < 4 {
				eq = peq[rc][b]
			}
			pvB, mvB := pv[b], mv[b]
			xv := eq | mvB
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvB) + pvB) ^ pvB) | eq
			ph := mvB | ^(xh | pvB)
			mh := pvB & xh

			hout := 0
			if ph&(1<<63) != 0 {
				hout = 1
			} else if mh&(1<<63) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		pvHist[j] = append([]uint64(nil), pv...)
		mvHist[j] = append([]uint64(nil), mv...)
	}

	// score returns D(i, j) by prefix-summing the stored vertical
	// deltas of column j from the top boundary value D(0, j).
	score := func(i, j int) int {
		d := 0
		if mode == EditGlobal {
			d = j
		}
		pvJ, mvJ := pvHist[j], mvHist[j]
		for b := 0; b*64 < i; b++ {
			word := uint(min(64, i-b*64))
			var mask uint64
			if word == 64 {
				mask = ^uint64(0)
			} else {
				mask = (uint64(1) << word) - 1
			}
			d += bits.OnesCount64(pvJ[b]&mask) - bits.OnesCount64(mvJ[b]&mask)
		}
		return d
	}

	// Pick the traceback start.
	endJ := n
	if mode == EditInfix {
		best := score(m, 0)
		endJ = 0
		for j := 1; j <= n; j++ {
			if d := score(m, j); d < best {
				best = d
				endJ = j
			}
		}
	}
	dist := score(m, endJ)

	// Traceback by DP-value comparison.
	var cigar Cigar
	i, j := m, endJ
	cur := dist
	for i > 0 {
		if j == 0 {
			// Leading query bases with no text left are insertions
			// (D(i,0) = i in both modes).
			cigar = cigar.AppendOp(OpIns)
			i--
			cur--
			continue
		}
		diag := score(i-1, j-1)
		matchCost := 1
		if dna.Code(ref[j-1]) == dna.Code(query[i-1]) && dna.Code(ref[j-1]) != dna.CodeN {
			matchCost = 0
		}
		switch {
		case cur == diag+matchCost:
			cigar = cigar.AppendOp(OpMatch)
			i--
			j--
			cur = diag
		case cur == score(i, j-1)+1:
			cigar = cigar.AppendOp(OpDel)
			j--
			cur--
		case cur == score(i-1, j)+1:
			cigar = cigar.AppendOp(OpIns)
			i--
			cur--
		default:
			return nil, fmt.Errorf("align: inconsistent traceback at (%d,%d)", i, j)
		}
	}
	if mode == EditGlobal {
		for j > 0 {
			cigar = cigar.AppendOp(OpDel)
			j--
		}
	}
	res := &EditResult{
		Distance:   dist,
		RefStart:   j,
		RefEnd:     endJ,
		QueryStart: 0,
		QueryEnd:   m,
		Cigar:      cigar.Reverse(),
	}
	return res, nil
}

// EditDistance computes just the edit distance (no traceback, O(m/64)
// memory) between ref and query in the given mode. For EditInfix it
// returns the minimum distance over all ref substrings.
func EditDistance(ref, query dna.Seq, mode EditMode) (int, error) {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return 0, fmt.Errorf("align: empty sequence (ref %d, query %d)", n, m)
	}
	blocks := (m + 63) / 64
	var peq [4][]uint64
	for c := 0; c < 4; c++ {
		peq[c] = make([]uint64, blocks)
	}
	for i := 0; i < m; i++ {
		c := dna.Code(query[i])
		if c < 4 {
			peq[c][i/64] |= 1 << (uint(i) % 64)
		}
	}
	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	hin0 := 1
	if mode == EditInfix {
		hin0 = 0
	}
	// D(m, j) is recovered per column from the boundary value D(0, j)
	// plus the vertical-delta prefix sum over the column's Pv/Mv words
	// (O(⌈m/64⌉) popcounts, same order as the column update itself).
	lastBlock := blocks - 1
	tailBits := uint(m - lastBlock*64)
	var tailMask uint64
	if tailBits == 64 {
		tailMask = ^uint64(0)
	} else {
		tailMask = (uint64(1) << tailBits) - 1
	}
	bottom := m
	best := bottom
	for j := 1; j <= n; j++ {
		rc := dna.Code(ref[j-1])
		hin := hin0
		for b := 0; b < blocks; b++ {
			var eq uint64
			if rc < 4 {
				eq = peq[rc][b]
			}
			pvB, mvB := pv[b], mv[b]
			xv := eq | mvB
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvB) + pvB) ^ pvB) | eq
			ph := mvB | ^(xh | pvB)
			mh := pvB & xh
			hout := 0
			if ph&(1<<63) != 0 {
				hout = 1
			} else if mh&(1<<63) != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
		d := 0
		if mode == EditGlobal {
			d = j
		}
		for b := 0; b < lastBlock; b++ {
			d += bits.OnesCount64(pv[b]) - bits.OnesCount64(mv[b])
		}
		d += bits.OnesCount64(pv[lastBlock]&tailMask) - bits.OnesCount64(mv[lastBlock]&tailMask)
		bottom = d
		if bottom < best {
			best = bottom
		}
	}
	if mode == EditInfix {
		return best, nil
	}
	return bottom, nil
}
