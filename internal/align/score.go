// Package align provides the alignment kernels Darwin builds on:
//
//   - a full affine-gap Smith-Waterman with traceback (the optimality
//     oracle the paper compares GACT against, standing in for SeqAn);
//   - the GACT tile aligner — the hardware-accelerated Align step of
//     Algorithm 2, with traceback from either the maximum cell (first
//     tile) or the bottom-right cell, clipped to T−O consumed bases;
//   - a banded Smith-Waterman (the Chao et al. heuristic the paper
//     cites, used by the baseline mappers);
//   - Myers' bit-vector edit-distance algorithm with traceback (the
//     Edlib baseline of Figure 10).
//
// Scoring follows the paper's hardware exactly (Section 7): a 4×4
// substitution matrix W over {A,C,G,T}, affine gap parameters o (open)
// and e (extend) applied as I(i,j)=max(H(i,j−1)−o, I(i,j−1)−e), and an
// N base that never contributes to the score.
package align

import (
	"fmt"

	"darwin/internal/dna"
)

// Scoring holds the 18 parameters the GACT array is configured with:
// 16 substitution scores plus gap open and gap extend.
type Scoring struct {
	// W is the substitution matrix indexed by base codes (A,C,G,T).
	W [4][4]int
	// GapOpen is the cost o of the first base of a gap.
	GapOpen int
	// GapExtend is the cost e of each further gap base.
	GapExtend int
}

// Simple returns a uniform match/mismatch scoring with linear gaps
// (open == extend == gap), e.g. Simple(1, 1, 1) is the paper's GACT
// evaluation scheme (match=+1, mismatch=−1, gap=1).
func Simple(match, mismatch, gap int) Scoring {
	var s Scoring
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				s.W[i][j] = match
			} else {
				s.W[i][j] = -mismatch
			}
		}
	}
	s.GapOpen = gap
	s.GapExtend = gap
	return s
}

// Figure1 returns the scoring of the paper's Figure 1 example:
// match=+2, mismatch=−1, gap=1.
func Figure1() Scoring { return Simple(2, 1, 1) }

// GACTEval returns the scoring used for the paper's GACT-vs-optimal
// comparison (Section 8): match=+1, mismatch=−1, gap=1.
func GACTEval() Scoring { return Simple(1, 1, 1) }

// Sub returns the substitution score of aligning reference base r
// against query base q. Pairs involving N contribute zero (Section 7).
func (s *Scoring) Sub(r, q byte) int {
	rc, qc := dna.Code(r), dna.Code(q)
	if rc == dna.CodeN || qc == dna.CodeN {
		return 0
	}
	return s.W[rc][qc]
}

// LUTStride is the row stride of SubLUT: rows are padded from 5 (the
// coded alphabet {A,C,G,T,N}) to 8 entries so the inner-loop index
// `code & 7` provably stays in bounds and the compiler drops the check.
const LUTStride = 8

// SubLUT is a Scoring's substitution function flattened over base
// codes: lut[q*LUTStride+r] = Sub for reference code r against query
// code q (query-major, so one row lookup per DP row serves the whole
// inner loop). It is 8×8 so any &7-masked code pair indexes in
// bounds; the rows/columns beyond the concrete bases (N included) are
// zero, exactly like Scoring.Sub. Entries fit int16 because Validate
// bounds |W| (see maxAbsParam). All of this package's kernels and the
// gactsim PE array index it instead of calling Sub per DP cell.
type SubLUT [LUTStride * LUTStride]int16

// LUT flattens the scoring into a SubLUT. Callers must have Validated
// the scoring first (Validate bounds the entries to int16).
func (s *Scoring) LUT() SubLUT {
	var lut SubLUT
	for q := 0; q < 4; q++ {
		for r := 0; r < 4; r++ {
			lut[q*LUTStride+r] = int16(s.W[r][q])
		}
	}
	return lut
}

// Row returns the LUT row for query code qc, ready for indexing by
// reference code (masked with &7, which the padded stride makes safe).
func (l *SubLUT) Row(qc byte) []int16 {
	q := int(qc) & 7
	return l[q*LUTStride : q*LUTStride+LUTStride]
}

// maxAbsParam bounds every scoring parameter's magnitude so that (a)
// substitution scores are exactly representable in the int16 LUT, and
// (b) int32 DP rows cannot overflow: cell scores are bounded by
// side · max|param| ≤ 2^15 · (2^15−1) < 2^30, and the kernel's
// negInf32 = −2^29 minus one gap penalty stays above −2^31, for any
// tile side up to 2^15 (the kernel falls back to the int-width
// reference implementation beyond that).
const maxAbsParam = 1<<15 - 1

// Validate reports scoring parameter combinations that break the
// aligners' assumptions.
func (s *Scoring) Validate() error {
	if s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("align: negative gap penalties (open=%d extend=%d); penalties are costs and must be ≥ 0", s.GapOpen, s.GapExtend)
	}
	if s.GapExtend > s.GapOpen {
		return fmt.Errorf("align: gap extend %d exceeds gap open %d; affine recurrence assumes e ≤ o", s.GapExtend, s.GapOpen)
	}
	if s.GapOpen > maxAbsParam {
		return fmt.Errorf("align: gap open %d exceeds %d; larger penalties would overflow the int16 scoring LUT / int32 DP rows of the tile kernel", s.GapOpen, maxAbsParam)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if w := s.W[i][j]; w > maxAbsParam || w < -maxAbsParam {
				return fmt.Errorf("align: substitution score W[%d][%d]=%d outside ±%d; larger magnitudes would overflow the int16 scoring LUT / int32 DP rows of the tile kernel", i, j, w, maxAbsParam)
			}
		}
	}
	pos := false
	for i := 0; i < 4; i++ {
		if s.W[i][i] > 0 {
			pos = true
		}
	}
	if !pos {
		return fmt.Errorf("align: no positive match score; local alignment would be empty")
	}
	return nil
}
