package align

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

func TestHirschbergMatchesGlobalOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 40; trial++ {
		ref := dna.Random(rng, 2+rng.Intn(80), 0.5)
		query := mutate(rng, ref, 0.3)
		sc := Simple(1+trial%2, 1, 1)
		res, err := Hirschberg(ref, query, &sc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Check(ref, query); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := naiveGlobalScore(ref, query, &sc)
		if res.Score != want {
			t.Fatalf("trial %d: Hirschberg %d, oracle %d\nref=%s\nq=%s\ncigar=%s",
				trial, res.Score, want, ref, query, res.Cigar)
		}
		if res.RefEnd != len(ref) || res.QueryEnd != len(query) {
			t.Fatalf("trial %d: global alignment must consume both sequences", trial)
		}
	}
}

func TestHirschbergEdgeCases(t *testing.T) {
	sc := Simple(1, 1, 1)
	res, err := Hirschberg(dna.NewSeq("ACGT"), dna.NewSeq("A"), &sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(dna.NewSeq("ACGT"), dna.NewSeq("A")); err != nil {
		t.Fatal(err)
	}
	if res.Score != naiveGlobalScore(dna.NewSeq("ACGT"), dna.NewSeq("A"), &sc) {
		t.Errorf("single-base query score %d", res.Score)
	}
	if _, err := Hirschberg(nil, dna.NewSeq("A"), &sc); err == nil {
		t.Error("empty ref should error")
	}
	affine := Simple(1, 1, 3)
	affine.GapExtend = 1
	if _, err := Hirschberg(dna.NewSeq("AC"), dna.NewSeq("AC"), &affine); err == nil {
		t.Error("affine gaps should be rejected")
	}
}

func TestHirschbergLinearSpaceLongInput(t *testing.T) {
	// 20 kbp pair: quadratic space would need 400M cells; linear-space
	// recursion must handle it comfortably.
	rng := rand.New(rand.NewSource(142))
	ref := dna.Random(rng, 20000, 0.5)
	query := mutate(rng, ref, 0.1)
	sc := Simple(1, 1, 1)
	res, err := Hirschberg(ref, query, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
	if res.Score < len(ref)/2 {
		t.Errorf("score %d unexpectedly low for 10%% divergence", res.Score)
	}
}

func TestXDropExtendsSimilarSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	ref := dna.Random(rng, 3000, 0.5)
	query := mutate(rng, ref, 0.1)
	// Subcritical scoring, as BLAST pairs with X-drop: with (1,-1,-1)
	// local scores drift upward even on random DNA and the extension
	// would never terminate.
	sc := Simple(1, 2, 2)
	res, err := XDrop(ref, query, 50, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefEnd < len(ref)*9/10 {
		t.Errorf("extension ended at %d / %d", res.RefEnd, len(ref))
	}
	if res.Score <= 0 {
		t.Errorf("score = %d", res.Score)
	}
	// X-drop is a heuristic: never above the optimal local score.
	if opt := ScoreOnly(ref, query, &sc); res.Score > opt {
		t.Errorf("X-drop %d exceeds optimal %d", res.Score, opt)
	}
}

func TestXDropStopsOnJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	// 500 similar bases then unrelated sequence: extension must stop
	// near the boundary instead of crossing the junk.
	common := dna.Random(rng, 500, 0.5)
	ref := append(common.Clone(), dna.Random(rng, 2000, 0.5)...)
	query := append(mutate(rng, common, 0.05), dna.Random(rng, 2000, 0.5)...)
	sc := Simple(1, 2, 2)
	res, err := XDrop(ref, query, 30, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefEnd < 400 || res.RefEnd > 700 {
		t.Errorf("extension end %d, want near the 500-base boundary", res.RefEnd)
	}
}

func TestXDropBandNarrowerThanFull(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	ref := dna.Random(rng, 1000, 0.5)
	query := mutate(rng, ref, 0.05)
	sc := Simple(1, 2, 2)
	res, err := XDrop(ref, query, 20, &sc)
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(ref)) * int64(len(query))
	if res.CellsComputed >= full/2 {
		t.Errorf("X-drop computed %d cells, full matrix is %d — pruning ineffective", res.CellsComputed, full)
	}
}

func TestXDropErrors(t *testing.T) {
	sc := Simple(1, 1, 1)
	if _, err := XDrop(nil, dna.NewSeq("A"), 10, &sc); err == nil {
		t.Error("empty ref should error")
	}
	if _, err := XDrop(dna.NewSeq("A"), dna.NewSeq("A"), 0, &sc); err == nil {
		t.Error("zero threshold should error")
	}
	affine := Simple(1, 1, 3)
	affine.GapExtend = 1
	if _, err := XDrop(dna.NewSeq("AC"), dna.NewSeq("AC"), 10, &affine); err == nil {
		t.Error("affine gaps should be rejected")
	}
}
