package align

import (
	"fmt"
	"sync"

	"darwin/internal/dna"
)

// Traceback pointer encoding, 4 bits per cell exactly as the GACT PE
// emits them (Section 7): two bits for how H was derived (null,
// diagonal, horizontal, vertical) and one bit each recording whether
// the horizontal/vertical gap scores opened a fresh gap from H or
// extended an existing gap.
//
// Orientation: rows (j) index the query, columns (i) index the
// reference, as in the paper's Figure 1. A horizontal move consumes a
// reference base only (a deletion from the query's perspective, OpDel);
// a vertical move consumes a query base only (an insertion, OpIns).
const (
	hNull  = 0
	hDiag  = 1
	hHoriz = 2 // from the horizontal gap state: consumes reference (OpDel)
	hVert  = 3 // from the vertical gap state: consumes query (OpIns)
	hMask  = 3

	horizOpenBit = 1 << 2 // horizontal gap opened from H at this cell
	vertOpenBit  = 1 << 3 // vertical gap opened from H at this cell

	stateH = byte(4) // traceback state: in the H matrix
)

const negInf = int(-1) << 40

// fillResult carries everything the two traceback flavours need from a
// single matrix-fill pass over ref (columns) × query (rows).
type fillResult struct {
	// ptr is the (len(query)+1)×(len(ref)+1) pointer matrix, row-major;
	// row j, column i is ptr[j*(len(ref)+1)+i].
	ptr []byte
	// maxScore and (maxI, maxJ) locate the highest-scoring cell; ties
	// resolve to the earliest row, then earliest column, matching the
	// systolic array's first-encountered convention.
	maxScore   int
	maxI, maxJ int
	// lastRow is H over the final query row (the score of the
	// bottom-right cell, where non-first GACT tiles start traceback,
	// is lastRow[len(ref)]).
	lastRow []int
}

// fillLocal computes the local (Smith-Waterman) DP matrix with affine
// gaps per the paper's equations (1)-(3) and records traceback pointers.
func fillLocal(ref, query dna.Seq, sc *Scoring) fillResult {
	w := len(ref) + 1
	h := len(query) + 1
	res := fillResult{ptr: make([]byte, w*h)}

	hRow := make([]int, w) // H of previous row, updated in place
	vRow := make([]int, w) // vertical gap score of previous row
	for i := range vRow {
		vRow[i] = negInf
	}
	for j := 1; j < h; j++ {
		diag := hRow[0] // H(j-1, 0)
		hRow[0] = 0
		hPrev := negInf // horizontal gap score at (j, i-1)
		rowPtr := res.ptr[j*w:]
		qb := query[j-1]
		for i := 1; i < w; i++ {
			var p byte

			// Horizontal gap (consumes reference): depends on (j, i-1).
			hOpen := hRow[i-1] - sc.GapOpen
			hExt := hPrev - sc.GapExtend
			hGap := hExt
			if hOpen >= hExt {
				hGap = hOpen
				p |= horizOpenBit
			}

			// Vertical gap (consumes query): depends on (j-1, i).
			vOpen := hRow[i] - sc.GapOpen
			vExt := vRow[i] - sc.GapExtend
			vGap := vExt
			if vOpen >= vExt {
				vGap = vOpen
				p |= vertOpenBit
			}

			diagScore := diag + sc.Sub(ref[i-1], qb)
			best, src := 0, byte(hNull)
			if diagScore > best {
				best, src = diagScore, hDiag
			}
			if hGap > best {
				best, src = hGap, hHoriz
			}
			if vGap > best {
				best, src = vGap, hVert
			}
			p |= src
			rowPtr[i] = p

			diag = hRow[i]
			hRow[i] = best
			vRow[i] = vGap
			hPrev = hGap

			if best > res.maxScore {
				res.maxScore = best
				res.maxI, res.maxJ = i, j
			}
		}
	}
	res.lastRow = hRow
	return res
}

// tracebackFrom walks pointers from cell (i, j) until a null pointer or
// a matrix edge, or until maxRefOff/maxQueryOff reference/query bases
// have been consumed (the T−O clipping of GACT's Align; pass len+1 to
// disable). It returns the path in forward order and the offsets
// consumed.
func tracebackFrom(f *fillResult, refLen int, i, j, maxRefOff, maxQueryOff int) (cigar Cigar, iOff, jOff int) {
	w := refLen + 1
	state := stateH
	for i > 0 || j > 0 {
		if iOff >= maxRefOff || jOff >= maxQueryOff {
			break
		}
		p := f.ptr[j*w+i]
		switch state {
		case stateH:
			switch p & hMask {
			case hNull:
				return cigar.Reverse(), iOff, jOff
			case hDiag:
				if i == 0 || j == 0 {
					return cigar.Reverse(), iOff, jOff
				}
				cigar = cigar.AppendOp(OpMatch)
				i--
				j--
				iOff++
				jOff++
			case hHoriz:
				state = hHoriz
			case hVert:
				state = hVert
			}
		case hHoriz: // consuming reference bases (OpDel)
			if i == 0 {
				return cigar.Reverse(), iOff, jOff
			}
			cigar = cigar.AppendOp(OpDel)
			open := p&horizOpenBit != 0
			i--
			iOff++
			if open {
				state = stateH
			}
		case hVert: // consuming query bases (OpIns)
			if j == 0 {
				return cigar.Reverse(), iOff, jOff
			}
			cigar = cigar.AppendOp(OpIns)
			open := p&vertOpenBit != 0
			j--
			jOff++
			if open {
				state = stateH
			}
		}
	}
	return cigar.Reverse(), iOff, jOff
}

// SmithWaterman computes the optimal local alignment of query against
// ref with affine gap penalties, returning the full path. This is the
// O(mn)-memory oracle used to validate GACT optimality (Fig. 9a); it is
// exact, not a heuristic.
func SmithWaterman(ref, query dna.Seq, sc *Scoring) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(ref) == 0 || len(query) == 0 {
		return nil, fmt.Errorf("align: empty sequence (ref %d, query %d)", len(ref), len(query))
	}
	f := fillLocal(ref, query, sc)
	cigar, iOff, jOff := tracebackFrom(&f, len(ref), f.maxI, f.maxJ, len(ref)+1, len(query)+1)
	res := &Result{
		Score:      f.maxScore,
		RefStart:   f.maxI - iOff,
		RefEnd:     f.maxI,
		QueryStart: f.maxJ - jOff,
		QueryEnd:   f.maxJ,
		Cigar:      cigar,
	}
	return res, nil
}

// scoreBuf is the pooled row state ScoreOnly and BandedGlobal reuse
// across calls: DP rows, a banded pointer matrix, and precoded
// sequence buffers, so neither pays per-call row allocations or
// per-cell Sub decodes.
type scoreBuf struct {
	rows  [][]int
	ptr   []byte
	rCode []byte
	qCode []byte
}

// row returns the x-th pooled row with length at least w.
func (b *scoreBuf) row(x, w int) []int {
	for len(b.rows) <= x {
		b.rows = append(b.rows, nil)
	}
	if cap(b.rows[x]) < w {
		b.rows[x] = make([]int, w)
	}
	return b.rows[x][:w]
}

var scorePool = sync.Pool{New: func() any { return new(scoreBuf) }}

// ScoreOnly computes just the optimal local alignment score in O(m)
// memory, for large-scale optimality checks where the path is not
// needed. It shares the tile kernel's flat scoring LUT and a pool of
// reusable DP rows, so the inner loop is pure array arithmetic (scores
// stay int-width here: unlike tiles, whole-sequence lengths are
// unbounded).
func ScoreOnly(ref, query dna.Seq, sc *Scoring) int {
	lut := sc.LUT()
	buf := scorePool.Get().(*scoreBuf)
	defer scorePool.Put(buf)
	w := len(ref) + 1
	hRow := buf.row(0, w)
	vRow := buf.row(1, w)
	for i := range hRow {
		hRow[i] = 0
	}
	for i := range vRow {
		vRow[i] = negInf
	}
	rc := dna.AppendCodes(buf.rCode[:0], ref)
	qc := dna.AppendCodes(buf.qCode[:0], query)
	buf.rCode, buf.qCode = rc, qc
	best := 0
	for j := 1; j <= len(query); j++ {
		diag := hRow[0]
		hRow[0] = 0
		hPrev := negInf
		qcode := int(qc[j-1]) & 7
		lutRow := lut[qcode*LUTStride : qcode*LUTStride+LUTStride]
		for i := 1; i < w; i++ {
			hGap := max(hRow[i-1]-sc.GapOpen, hPrev-sc.GapExtend)
			vGap := max(hRow[i]-sc.GapOpen, vRow[i]-sc.GapExtend)
			hCur := max(0, max(diag+int(lutRow[rc[i-1]&7]), max(hGap, vGap)))
			diag = hRow[i]
			hRow[i] = hCur
			vRow[i] = vGap
			hPrev = hGap
			if hCur > best {
				best = hCur
			}
		}
	}
	return best
}
