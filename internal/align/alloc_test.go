//go:build !race

// The race detector changes allocation behaviour, so the
// steady-state-allocation pins live behind !race; `make check` runs
// them in a separate non-race pass.

package align

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

// The tile kernel's steady state — buffers warmed by a first call —
// must not allocate at all, in either orientation. This is the
// tentpole invariant of the allocation-free kernel; any regression
// (a stray slice growth, an escaping closure, a lut copy) fails here.
func TestTileAlignerZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := GACTEval()
	ta, err := NewTileAligner(&sc)
	if err != nil {
		t.Fatal(err)
	}
	rTile := dna.Random(rng, 384, 0.45)
	qTile := mutate(rng, rTile, 0.15)
	if len(qTile) > 384 {
		qTile = qTile[:384]
	}
	// Warm the monotonic buffers (pointer matrix, rows, codes, cigar).
	ta.AlignTile(rTile, qTile, true, 256)
	ta.AlignTileReversed(rTile, qTile, false, 192)

	if n := testing.AllocsPerRun(100, func() {
		ta.AlignTile(rTile, qTile, true, 256)
	}); n != 0 {
		t.Errorf("AlignTile steady state allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ta.AlignTileReversed(rTile, qTile, false, 192)
	}); n != 0 {
		t.Errorf("AlignTileReversed steady state allocates %.1f times per call, want 0", n)
	}
}

// ScoreOnly shares pooled rows; its steady state must also stay
// allocation-free (modulo pool refills after a GC, which AllocsPerRun
// runs are short enough to avoid).
func TestScoreOnlyZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sc := GACTEval()
	ref := dna.Random(rng, 512, 0.5)
	query := mutate(rng, ref, 0.2)
	ScoreOnly(ref, query, &sc)
	if n := testing.AllocsPerRun(100, func() {
		ScoreOnly(ref, query, &sc)
	}); n != 0 {
		t.Errorf("ScoreOnly steady state allocates %.1f times per call, want 0", n)
	}
}
