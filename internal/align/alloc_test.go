//go:build !race

// The race detector changes allocation behaviour, so the
// steady-state-allocation pins live behind !race; `make check` runs
// them in a separate non-race pass.

package align

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

// The tile kernel's steady state — buffers warmed by a first call —
// must not allocate at all, in either orientation. This is the
// tentpole invariant of the allocation-free kernel; any regression
// (a stray slice growth, an escaping closure, a lut copy) fails here.
func TestTileAlignerZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := GACTEval()
	ta, err := NewTileAligner(&sc)
	if err != nil {
		t.Fatal(err)
	}
	rTile := dna.Random(rng, 384, 0.45)
	qTile := mutate(rng, rTile, 0.15)
	if len(qTile) > 384 {
		qTile = qTile[:384]
	}
	// Warm the monotonic buffers (pointer matrix, rows, codes, cigar).
	ta.AlignTile(rTile, qTile, true, 256)
	ta.AlignTileReversed(rTile, qTile, false, 192)

	if n := testing.AllocsPerRun(100, func() {
		ta.AlignTile(rTile, qTile, true, 256)
	}); n != 0 {
		t.Errorf("AlignTile steady state allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ta.AlignTileReversed(rTile, qTile, false, 192)
	}); n != 0 {
		t.Errorf("AlignTileReversed steady state allocates %.1f times per call, want 0", n)
	}
}

// The bitvector tier's steady state must also be allocation-free: the
// Myers pass, the affine rescore, and the banded fill all run out of
// the aligner's embedded scratch. The stats assertions pin that the
// measured path really was the bitvector one, not a silent fallback.
func TestTileAlignerBitvectorZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sc := GACTEval()
	ta, err := NewTileAligner(&sc)
	if err != nil {
		t.Fatal(err)
	}
	rTile := dna.Random(rng, 320, 0.45)
	qTile := mutate(rng, rTile, 0.08)
	if len(qTile) > 320 {
		qTile = qTile[:320]
	}
	// Warm the buffers (extension tiles: the tier's only admission).
	ta.AlignTile(rTile, qTile, false, 192)
	ta.AlignTileReversed(rTile, qTile, false, 192)
	before := ta.KernelStats()
	if before.BitvectorTiles == 0 {
		t.Fatalf("warmup tiles did not take the bitvector path: %+v", before)
	}

	const runs = 100
	if n := testing.AllocsPerRun(runs, func() {
		ta.AlignTile(rTile, qTile, false, 192)
	}); n != 0 {
		t.Errorf("bitvector AlignTile steady state allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(runs, func() {
		ta.AlignTileReversed(rTile, qTile, false, 192)
	}); n != 0 {
		t.Errorf("bitvector AlignTileReversed steady state allocates %.1f times per call, want 0", n)
	}
	after := ta.KernelStats()
	// AllocsPerRun executes runs+1 warmup+measured iterations per call.
	if got := after.BitvectorTiles - before.BitvectorTiles; got < 2*(runs+1) {
		t.Errorf("measured loops took the bitvector path %d times, want %d — the pin measured the wrong path", got, 2*(runs+1))
	}
}

// MyersState's steady state must not allocate; the pooled package
// wrappers allocate only their returned result (EditResult + copied
// cigar for Myers, nothing for EditDistance).
func TestMyersZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ref := dna.Random(rng, 384, 0.5)
	query := mutate(rng, ref, 0.15)
	var st MyersState
	if _, err := st.Align(ref, query, EditGlobal); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := st.Align(ref, query, EditGlobal); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MyersState.Align steady state allocates %.1f times per call, want 0", n)
	}
	if _, err := Myers(ref, query, EditInfix); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := Myers(ref, query, EditInfix); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("pooled Myers allocates %.1f times per call, want ≤ 2 (result + cigar copy)", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := EditDistance(ref, query, EditGlobal); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("pooled EditDistance steady state allocates %.1f times per call, want 0", n)
	}
}

// ScoreOnly shares pooled rows; its steady state must also stay
// allocation-free (modulo pool refills after a GC, which AllocsPerRun
// runs are short enough to avoid).
func TestScoreOnlyZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sc := GACTEval()
	ref := dna.Random(rng, 512, 0.5)
	query := mutate(rng, ref, 0.2)
	ScoreOnly(ref, query, &sc)
	if n := testing.AllocsPerRun(100, func() {
		ScoreOnly(ref, query, &sc)
	}); n != 0 {
		t.Errorf("ScoreOnly steady state allocates %.1f times per call, want 0", n)
	}
}
