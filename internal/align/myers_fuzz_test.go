package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/dna"
)

// checkInfixResult validates one infix alignment against the quadratic
// oracle: the distance must be the true infix minimum, the cigar must
// cost exactly the distance and span exactly [RefStart, RefEnd) ×
// [0, m), and — the start-column recovery property — the recovered ref
// window must itself align globally at the same cost (a wrong RefStart
// would make the window's own global distance exceed it).
func checkInfixResult(t *testing.T, ref, query dna.Seq, res *EditResult) bool {
	t.Helper()
	if want := naiveEditDistance(ref, query, true); res.Distance != want {
		t.Logf("infix distance %d, oracle %d", res.Distance, want)
		return false
	}
	if res.RefStart < 0 || res.RefStart > res.RefEnd || res.RefEnd > len(ref) {
		t.Logf("bad ref span [%d,%d) of %d", res.RefStart, res.RefEnd, len(ref))
		return false
	}
	if res.QueryStart != 0 || res.QueryEnd != len(query) {
		t.Logf("bad query span [%d,%d), want [0,%d)", res.QueryStart, res.QueryEnd, len(query))
		return false
	}
	if rl := res.Cigar.RefLen(); res.RefStart+rl != res.RefEnd {
		t.Logf("cigar ref length %d inconsistent with span [%d,%d)", rl, res.RefStart, res.RefEnd)
		return false
	}
	if ql := res.Cigar.QueryLen(); ql != len(query) {
		t.Logf("cigar query length %d, want %d", ql, len(query))
		return false
	}
	// Walk the cigar and count its edit cost directly.
	cost, i, j := 0, 0, res.RefStart
	for _, s := range res.Cigar {
		switch s.Op {
		case OpMatch:
			for k := 0; k < s.Len; k++ {
				rc, qc := dna.Code(ref[j+k]), dna.Code(query[i+k])
				if rc != qc || rc == dna.CodeN {
					cost++
				}
			}
			i += s.Len
			j += s.Len
		case OpIns:
			cost += s.Len
			i += s.Len
		case OpDel:
			cost += s.Len
			j += s.Len
		}
	}
	if cost != res.Distance {
		t.Logf("cigar cost %d, distance %d", cost, res.Distance)
		return false
	}
	// Start-column recovery: the chosen window must achieve the
	// distance as a *global* alignment (any window does no better than
	// the infix minimum, so equality pins RefStart to a true optimum).
	if res.RefEnd > res.RefStart {
		win := ref[res.RefStart:res.RefEnd]
		if wd := naiveEditDistance(win, query, false); wd != res.Distance {
			t.Logf("recovered window [%d,%d) has global distance %d, want %d",
				res.RefStart, res.RefEnd, wd, res.Distance)
			return false
		}
	}
	return true
}

// Property: infix traceback start-column recovery against the
// quadratic oracle, over random N-containing refs and query lengths
// clustered around the 64-bit block boundaries (the hin/hout carry
// seams of the bitvector recurrence).
func TestQuickMyersInfixStartColumn(t *testing.T) {
	lens := []int{1, 7, 63, 64, 65, 127, 128, 129, 191, 192, 193, 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := lens[rng.Intn(len(lens))]
		n := m/2 + rng.Intn(2*m+16)
		ref := dna.Random(rng, n, 0.5)
		// Lace the ref with N runs: N never matches, so windows that
		// cross them are penalized — exactly what stresses the
		// start-column choice.
		for x := 0; x < rng.Intn(4); x++ {
			at := rng.Intn(len(ref))
			run := 1 + rng.Intn(3)
			for k := at; k < len(ref) && k < at+run; k++ {
				ref[k] = 'N'
			}
		}
		var query dna.Seq
		switch rng.Intn(3) {
		case 0:
			query = dna.Random(rng, m, 0.5)
		default:
			// An embedded mutated window: the infix optimum is interior.
			at := rng.Intn(max(1, len(ref)-m+1))
			end := min(len(ref), at+m)
			query = mutate(rng, ref[at:end], 0.15)
			if len(query) == 0 {
				query = dna.Random(rng, m, 0.5)
			}
		}
		res, err := Myers(ref, query, EditInfix)
		if err != nil {
			t.Logf("Myers: %v", err)
			return false
		}
		return checkInfixResult(t, ref, query, res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// MyersState.Align must agree with the pooled wrapper (same scratch
// reused across differently-shaped calls — the dirty-buffer case the
// pool hides).
func TestMyersStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var st MyersState
	for it := 0; it < 50; it++ {
		ref := dna.Random(rng, 1+rng.Intn(300), 0.5)
		query := mutate(rng, ref, 0.25)
		if len(query) == 0 {
			query = dna.Random(rng, 1+rng.Intn(100), 0.5)
		}
		mode := EditMode(it % 2)
		want, err := Myers(ref, query, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Align(ref, query, mode)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance || got.RefStart != want.RefStart || got.RefEnd != want.RefEnd {
			t.Fatalf("it %d mode %v: state %+v != pooled %+v", it, mode, got, want)
		}
		if len(got.Cigar) != len(want.Cigar) {
			t.Fatalf("it %d: cigar lengths differ: %d vs %d", it, len(got.Cigar), len(want.Cigar))
		}
		for i := range got.Cigar {
			if got.Cigar[i] != want.Cigar[i] {
				t.Fatalf("it %d: cigar[%d] %+v != %+v", it, i, got.Cigar[i], want.Cigar[i])
			}
		}
	}
}

// canonSeq maps arbitrary fuzz bytes onto the canonical ACGTN
// alphabet via the base codes, so the byte-comparing oracle and the
// code-comparing bitvector aligner see the same sequence (junk bytes
// and lowercase both canonicalize through dna.Code).
func canonSeq(b []byte) dna.Seq {
	s := make(dna.Seq, len(b))
	for i, c := range b {
		s[i] = "ACGTN"[dna.Code(c)]
	}
	return s
}

// FuzzMyersInfix drives arbitrary byte inputs (canonicalized onto
// ACGTN) through the infix path and checks every invariant against the
// quadratic oracle.
func FuzzMyersInfix(f *testing.F) {
	f.Add([]byte("ACGTACGTNNACGT"), []byte("CGTACG"))
	f.Add([]byte("AAAA"), []byte("TTTTTTTT"))
	f.Add([]byte("ACGTNCA"), []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"))
	f.Fuzz(func(t *testing.T, refB, queryB []byte) {
		const maxLen = 192 // keep the quadratic oracle affordable
		if len(refB) == 0 || len(queryB) == 0 || len(refB) > maxLen || len(queryB) > maxLen {
			t.Skip()
		}
		ref, query := canonSeq(refB), canonSeq(queryB)
		res, err := Myers(ref, query, EditInfix)
		if err != nil {
			t.Fatalf("Myers failed on valid input: %v", err)
		}
		if !checkInfixResult(t, ref, query, res) {
			t.Errorf("infix invariants violated for ref %q query %q: %+v", ref, query, res)
		}
	})
}
