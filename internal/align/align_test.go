package align

import (
	"math/rand"
	"testing"

	"darwin/internal/dna"
)

// naiveLocalScore is an independent O(mn) affine-gap local alignment
// scorer using three full matrices — the textbook Gotoh formulation —
// used as an oracle for the production kernels.
func naiveLocalScore(ref, query dna.Seq, sc *Scoring) int {
	n, m := len(ref), len(query)
	H := make([][]int, m+1)
	E := make([][]int, m+1) // horizontal gap (consumes ref)
	F := make([][]int, m+1) // vertical gap (consumes query)
	for j := 0; j <= m; j++ {
		H[j] = make([]int, n+1)
		E[j] = make([]int, n+1)
		F[j] = make([]int, n+1)
		for i := 0; i <= n; i++ {
			E[j][i] = negInf
			F[j][i] = negInf
		}
	}
	best := 0
	for j := 1; j <= m; j++ {
		for i := 1; i <= n; i++ {
			E[j][i] = max(H[j][i-1]-sc.GapOpen, E[j][i-1]-sc.GapExtend)
			F[j][i] = max(H[j-1][i]-sc.GapOpen, F[j-1][i]-sc.GapExtend)
			H[j][i] = max(0, max(H[j-1][i-1]+sc.Sub(ref[i-1], query[j-1]), max(E[j][i], F[j][i])))
			if H[j][i] > best {
				best = H[j][i]
			}
		}
	}
	return best
}

// naiveGlobalScore is an O(mn) affine-gap global alignment oracle.
func naiveGlobalScore(ref, query dna.Seq, sc *Scoring) int {
	n, m := len(ref), len(query)
	gap := func(l int) int {
		if l <= 0 {
			return 0
		}
		return sc.GapOpen + (l-1)*sc.GapExtend
	}
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for j := 0; j <= m; j++ {
		H[j] = make([]int, n+1)
		E[j] = make([]int, n+1)
		F[j] = make([]int, n+1)
		for i := 0; i <= n; i++ {
			E[j][i], F[j][i] = negInf, negInf
		}
	}
	for i := 1; i <= n; i++ {
		H[0][i] = -gap(i)
		E[0][i] = -gap(i)
	}
	for j := 1; j <= m; j++ {
		H[j][0] = -gap(j)
		F[j][0] = -gap(j)
		for i := 1; i <= n; i++ {
			E[j][i] = max(H[j][i-1]-sc.GapOpen, E[j][i-1]-sc.GapExtend)
			F[j][i] = max(H[j-1][i]-sc.GapOpen, F[j-1][i]-sc.GapExtend)
			H[j][i] = max(H[j-1][i-1]+sc.Sub(ref[i-1], query[j-1]), max(E[j][i], F[j][i]))
		}
	}
	return H[m][n]
}

// naiveEditDistance is an O(mn) Levenshtein oracle.
func naiveEditDistance(ref, query dna.Seq, infix bool) int {
	n, m := len(ref), len(query)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 0; i <= n; i++ {
		if infix {
			prev[i] = 0
		} else {
			prev[i] = i
		}
	}
	best := 1 << 30
	for j := 1; j <= m; j++ {
		cur[0] = j
		for i := 1; i <= n; i++ {
			cost := 1
			if ref[i-1] == query[j-1] && ref[i-1] != 'N' {
				cost = 0
			}
			cur[i] = min(prev[i-1]+cost, min(cur[i-1]+1, prev[i]+1))
		}
		prev, cur = cur, prev
	}
	if infix {
		for i := 0; i <= n; i++ {
			if prev[i] < best {
				best = prev[i]
			}
		}
		return best
	}
	return prev[n]
}

func mutate(rng *rand.Rand, s dna.Seq, rate float64) dna.Seq {
	out := make(dna.Seq, 0, len(s))
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			// deletion: skip
		case r < 2*rate/3:
			out = append(out, dna.Base(byte(rng.Intn(4))), b)
		case r < rate:
			out = append(out, dna.MutatePoint(rng, b))
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, 'A')
	}
	return out
}

func TestScoringValidate(t *testing.T) {
	good := Simple(1, 1, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("Simple(1,1,1) invalid: %v", err)
	}
	bad := Scoring{GapOpen: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative gap open should be invalid")
	}
	bad = Simple(1, 1, 1)
	bad.GapExtend = 5
	if err := bad.Validate(); err == nil {
		t.Error("extend > open should be invalid")
	}
	bad = Simple(0, 1, 1)
	if err := bad.Validate(); err == nil {
		t.Error("no positive match score should be invalid")
	}
}

func TestScoringSubN(t *testing.T) {
	sc := Simple(2, 3, 1)
	if sc.Sub('A', 'A') != 2 || sc.Sub('A', 'C') != -3 {
		t.Error("substitution scores wrong")
	}
	if sc.Sub('N', 'A') != 0 || sc.Sub('A', 'N') != 0 || sc.Sub('N', 'N') != 0 {
		t.Error("N must contribute zero")
	}
}

// TestPaperFigure1 reproduces the Smith-Waterman example of Figure 1:
// reference GCGACTTT, query GTCGTTT, match=+2, mismatch=-1, gap=1,
// optimal score 9 with alignment G-CGACTTT / GTCG--TTT.
func TestPaperFigure1(t *testing.T) {
	ref := dna.NewSeq("GCGACTTT")
	query := dna.NewSeq("GTCGTTT")
	sc := Figure1()
	res, err := SmithWaterman(ref, query, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 9 {
		t.Fatalf("score = %d, want 9 (paper Figure 1)", res.Score)
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
	if got := res.Rescore(ref, query, &sc); got != 9 {
		t.Errorf("rescore = %d, want 9", got)
	}
	// The optimal path consumes all 8 reference and all 7 query bases
	// (Figure 1d: G-CGACTTT over GTCG--TTT).
	if res.RefEnd-res.RefStart != 8 || res.QueryEnd-res.QueryStart != 7 {
		t.Errorf("span = ref[%d,%d) query[%d,%d), want full 8x7",
			res.RefStart, res.RefEnd, res.QueryStart, res.QueryEnd)
	}
}

func TestSWMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	scorings := []Scoring{Simple(1, 1, 1), Simple(2, 1, 1), {W: Simple(3, 2, 0).W, GapOpen: 4, GapExtend: 1}}
	for trial := 0; trial < 60; trial++ {
		ref := dna.Random(rng, 5+rng.Intn(60), 0.5)
		query := mutate(rng, ref, 0.3)
		sc := scorings[trial%len(scorings)]
		res, err := SmithWaterman(ref, query, &sc)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveLocalScore(ref, query, &sc)
		if res.Score != want {
			t.Fatalf("trial %d: SW score %d, oracle %d\nref=%s\nq=%s", trial, res.Score, want, ref, query)
		}
		if err := res.Check(ref, query); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := res.Rescore(ref, query, &sc); got != res.Score {
			t.Fatalf("trial %d: traceback path rescores to %d, matrix says %d (cigar %s)", trial, got, res.Score, res.Cigar)
		}
		if got := ScoreOnly(ref, query, &sc); got != want {
			t.Fatalf("trial %d: ScoreOnly %d, oracle %d", trial, got, want)
		}
	}
}

func TestSWIdentical(t *testing.T) {
	s := dna.NewSeq("ACGTACGTACGT")
	sc := Simple(1, 1, 1)
	res, err := SmithWaterman(s, s, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != len(s) {
		t.Errorf("score = %d, want %d", res.Score, len(s))
	}
	if res.Cigar.String() != "12M" {
		t.Errorf("cigar = %s, want 12M", res.Cigar)
	}
}

func TestSWEmptyInputs(t *testing.T) {
	sc := Simple(1, 1, 1)
	if _, err := SmithWaterman(nil, dna.NewSeq("A"), &sc); err == nil {
		t.Error("empty ref should error")
	}
	if _, err := SmithWaterman(dna.NewSeq("A"), nil, &sc); err == nil {
		t.Error("empty query should error")
	}
}

func TestSWWithN(t *testing.T) {
	ref := dna.NewSeq("ACGTNNNNACGT")
	query := dna.NewSeq("ACGTACGT")
	sc := Simple(1, 1, 1)
	res, err := SmithWaterman(ref, query, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
	if res.Score != naiveLocalScore(ref, query, &sc) {
		t.Errorf("score with N = %d, oracle %d", res.Score, naiveLocalScore(ref, query, &sc))
	}
}

func TestCigarOps(t *testing.T) {
	var c Cigar
	for _, op := range []Op{OpMatch, OpMatch, OpIns, OpDel, OpDel, OpMatch} {
		c = c.AppendOp(op)
	}
	if c.String() != "2M1I2D1M" {
		t.Errorf("cigar = %s, want 2M1I2D1M", c)
	}
	if c.RefLen() != 5 || c.QueryLen() != 4 {
		t.Errorf("lens = (%d,%d), want (5,4)", c.RefLen(), c.QueryLen())
	}
	d := Cigar{{OpMatch, 3}}.Concat(Cigar{{OpMatch, 2}, {OpIns, 1}})
	if d.String() != "5M1I" {
		t.Errorf("concat = %s, want 5M1I", d)
	}
	if got := d.Reverse().String(); got != "1I5M" {
		t.Errorf("reverse = %s, want 1I5M", got)
	}
}

func TestTileFirstVsSubsequent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ref := dna.Random(rng, 100, 0.5)
	query := mutate(rng, ref, 0.1)
	sc := GACTEval()

	first := AlignTile(ref, query, true, 0, &sc)
	if first.Score <= 0 {
		t.Fatal("first tile score should be positive for similar sequences")
	}
	if first.MaxI == 0 && first.MaxJ == 0 {
		t.Error("first tile should report the max cell")
	}
	// First-tile score equals the optimal local score of the tile.
	if want := ScoreOnly(ref, query, &sc); first.Score != want {
		t.Errorf("first tile score %d, optimal %d", first.Score, want)
	}

	sub := AlignTile(ref, query, false, 0, &sc)
	// Subsequent tiles trace from the bottom-right cell.
	if sub.Score > first.Score {
		t.Errorf("bottom-right score %d exceeds max score %d", sub.Score, first.Score)
	}
}

func TestTileOffsetClipping(t *testing.T) {
	s := dna.NewSeq("ACGTACGTACGTACGTACGT") // 20 bases, identical
	sc := GACTEval()
	res := AlignTile(s, s, false, 8, &sc)
	if res.IOff != 8 || res.JOff != 8 {
		t.Errorf("offsets = (%d,%d), want clipped to (8,8)", res.IOff, res.JOff)
	}
	if res.Cigar.String() != "8M" {
		t.Errorf("cigar = %s, want 8M", res.Cigar)
	}
}

func TestTileEmpty(t *testing.T) {
	sc := GACTEval()
	res := AlignTile(nil, dna.NewSeq("ACGT"), true, 0, &sc)
	if res.Score != 0 || len(res.Cigar) != 0 {
		t.Errorf("empty tile result = %+v", res)
	}
}

func TestTileDissimilarTerminates(t *testing.T) {
	// Unrelated sequences: bottom-right cell is likely 0 ⇒ no extension.
	rng := rand.New(rand.NewSource(34))
	a := dna.Random(rng, 50, 0.5)
	b := dna.Random(rng, 50, 0.5)
	sc := GACTEval()
	res := AlignTile(a, b, false, 0, &sc)
	if res.IOff > 50 || res.JOff > 50 {
		t.Errorf("offsets out of range: %+v", res)
	}
}

func TestBandedGlobalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 40; trial++ {
		ref := dna.Random(rng, 10+rng.Intn(50), 0.5)
		query := mutate(rng, ref, 0.15)
		sc := Simple(1, 1, 1)
		// A band wide enough to cover the whole matrix must equal the
		// unbanded global optimum.
		res, err := BandedGlobal(ref, query, len(ref)+len(query), &sc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := naiveGlobalScore(ref, query, &sc)
		if res.Score != want {
			t.Fatalf("trial %d: banded %d, oracle %d\nref=%s\nq=%s", trial, res.Score, want, ref, query)
		}
		if err := res.Check(ref, query); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := res.Rescore(ref, query, &sc); got != res.Score {
			t.Fatalf("trial %d: path rescores to %d, want %d (cigar %s)", trial, got, res.Score, res.Cigar)
		}
	}
}

func TestBandedNarrowStillGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ref := dna.Random(rng, 200, 0.5)
	query := mutate(rng, ref, 0.1)
	sc := Simple(1, 1, 1)
	res, err := BandedGlobal(ref, query, 32, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
	// Narrow band is a lower bound on the global score.
	if want := naiveGlobalScore(ref, query, &sc); res.Score > want {
		t.Errorf("banded score %d exceeds optimum %d", res.Score, want)
	}
}

func TestBandedLengthMismatch(t *testing.T) {
	// Band must auto-widen to bridge a large length difference.
	ref := dna.NewSeq("ACGTACGTACGTACGTACGTACGT")
	query := dna.NewSeq("ACGT")
	sc := Simple(1, 1, 1)
	res, err := BandedGlobal(ref, query, 1, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(ref, query); err != nil {
		t.Fatal(err)
	}
}

func TestMyersMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		// Sizes straddle the 64-row block boundary.
		refLen := 1 + rng.Intn(150)
		ref := dna.Random(rng, refLen, 0.5)
		query := mutate(rng, ref, 0.25)
		for _, mode := range []EditMode{EditGlobal, EditInfix} {
			res, err := Myers(ref, query, mode)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := naiveEditDistance(ref, query, mode == EditInfix)
			if res.Distance != want {
				t.Fatalf("trial %d mode %d: Myers %d, oracle %d\nref=%s\nq=%s", trial, mode, res.Distance, want, ref, query)
			}
			fast, err := EditDistance(ref, query, mode)
			if err != nil {
				t.Fatal(err)
			}
			if fast != want {
				t.Fatalf("trial %d mode %d: EditDistance %d, oracle %d", trial, mode, fast, want)
			}
			// Path consistency: ops must consume the recorded spans and
			// their edit cost must equal the distance.
			cost := 0
			i, j := res.RefStart, res.QueryStart
			for _, s := range res.Cigar {
				switch s.Op {
				case OpMatch:
					for k := 0; k < s.Len; k++ {
						if ref[i+k] != query[j+k] || ref[i+k] == 'N' {
							cost++
						}
					}
					i += s.Len
					j += s.Len
				case OpIns:
					cost += s.Len
					j += s.Len
				case OpDel:
					cost += s.Len
					i += s.Len
				}
			}
			if cost != res.Distance {
				t.Fatalf("trial %d mode %d: path cost %d, distance %d (cigar %s)", trial, mode, cost, res.Distance, res.Cigar)
			}
			if i != res.RefEnd || j != res.QueryEnd {
				t.Fatalf("trial %d mode %d: path ends at (%d,%d), spans say (%d,%d)", trial, mode, i, j, res.RefEnd, res.QueryEnd)
			}
			if res.QueryStart != 0 || res.QueryEnd != len(query) {
				t.Fatalf("trial %d mode %d: query not fully consumed", trial, mode)
			}
		}
	}
}

func TestMyersInfixFindsSubstring(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	ref := dna.Random(rng, 500, 0.5)
	query := ref[200:300].Clone()
	res, err := Myers(ref, query, EditInfix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Fatalf("exact substring distance = %d, want 0", res.Distance)
	}
	if res.RefStart != 200 || res.RefEnd != 300 {
		// Repeats may allow other exact placements; verify content.
		if ref[res.RefStart:res.RefEnd].String() != query.String() {
			t.Errorf("infix placement [%d,%d) does not match query", res.RefStart, res.RefEnd)
		}
	}
}

func TestMyersIdentical(t *testing.T) {
	s := dna.NewSeq("ACGTTGCAACGTTGCA")
	res, err := Myers(s, s, EditGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Errorf("distance = %d, want 0", res.Distance)
	}
	if res.Cigar.String() != "16M" {
		t.Errorf("cigar = %s, want 16M", res.Cigar)
	}
}

func TestMyersEmpty(t *testing.T) {
	if _, err := Myers(nil, dna.NewSeq("A"), EditGlobal); err == nil {
		t.Error("empty ref should error")
	}
	if _, err := EditDistance(dna.NewSeq("A"), nil, EditGlobal); err == nil {
		t.Error("empty query should error")
	}
}

func TestMyersLongBlockBoundary(t *testing.T) {
	// Query lengths exactly at 64/128 exercise the tail-mask edge.
	rng := rand.New(rand.NewSource(39))
	for _, m := range []int{63, 64, 65, 127, 128, 129} {
		query := dna.Random(rng, m, 0.5)
		ref := mutate(rng, query, 0.1)
		want := naiveEditDistance(ref, query, false)
		got, err := EditDistance(ref, query, EditGlobal)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("m=%d: EditDistance %d, oracle %d", m, got, want)
		}
	}
}
