package align

import (
	"reflect"
	"testing"
)

func TestParseCigarRoundTrip(t *testing.T) {
	cases := []Cigar{
		nil,
		{{OpMatch, 12}},
		{{OpMatch, 12}, {OpIns, 1}, {OpMatch, 3}},
		{{OpDel, 2}, {OpMatch, 1000}, {OpDel, 1}, {OpIns, 7}},
	}
	for _, c := range cases {
		got, err := ParseCigar(c.String())
		if err != nil {
			t.Fatalf("%q: %v", c.String(), err)
		}
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("%q: round-trip gave %v", c.String(), got)
		}
	}
}

func TestParseCigarRejects(t *testing.T) {
	for _, s := range []string{
		"M",     // missing length
		"3",     // missing op
		"0M",    // zero run
		"-2M",   // negative run
		"3M4M",  // non-canonical adjacent runs
		"5S3M",  // clips are a SAM rendering, not a path op
		"3M 4I", // whitespace
		"4X",    // unsupported op
	} {
		if c, err := ParseCigar(s); err == nil {
			t.Errorf("%q: parsed to %v, want error", s, c)
		}
	}
}
