package align

import (
	"fmt"

	"darwin/internal/dna"
)

// BandedGlobal aligns query against ref end-to-end (Needleman-Wunsch
// with affine gaps) restricted to a band of half-width band around the
// corner-to-corner diagonal. This is the Chao-Pearson-Miller heuristic
// the paper cites as the classic linear-space/time alternative to full
// Smith-Waterman; the baseline mappers use it for candidate extension.
//
// If the optimal path leaves the band the returned alignment is the
// best within-band path, as with any banded heuristic. The band is
// automatically widened to cover the length difference between the
// sequences, without which no global path exists.
func BandedGlobal(ref, query dna.Seq, band int, sc *Scoring) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	n, m := len(ref), len(query)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("align: empty sequence (ref %d, query %d)", n, m)
	}
	if band < 1 {
		band = 1
	}
	// The global path must bridge the length difference.
	if d := n - m; d > 0 && band < d+1 {
		band = d + 1
	} else if d < 0 && band < -d+1 {
		band = -d + 1
	}
	// Band geometry: row j covers columns [center-band, center+band]
	// where center tracks the corner-to-corner diagonal.
	width := 2*band + 1
	center := func(j int) int {
		if m == 0 {
			return 0
		}
		return j * n / m
	}
	// Storage: H, V (vertical gap), pointers, per banded cell — pooled
	// rows and pointer matrix shared with ScoreOnly, substitution
	// scores from the tile kernel's flat LUT. The pooled pointer
	// matrix is reused without clearing: every cell the traceback can
	// reach is written by the fill below (out-of-band cells are only
	// reachable through the explicit range error).
	lut := sc.LUT()
	buf := scorePool.Get().(*scoreBuf)
	defer scorePool.Put(buf)
	hCur := buf.row(0, width)
	hPrev := buf.row(1, width)
	vPrev := buf.row(2, width)
	if need := (m + 1) * width; cap(buf.ptr) < need {
		buf.ptr = make([]byte, need)
	}
	ptr := buf.ptr[:(m+1)*width]
	rCode := dna.AppendCodes(buf.rCode[:0], ref)
	qCode := dna.AppendCodes(buf.qCode[:0], query)
	buf.rCode, buf.qCode = rCode, qCode
	colOf := func(j, i int) int { return i - center(j) + band } // band-local index

	gapCost := func(l int) int {
		if l <= 0 {
			return 0
		}
		return sc.GapOpen + (l-1)*sc.GapExtend
	}

	// Row 0: H(0,i) = -gapCost(i).
	for c := 0; c < width; c++ {
		i := c - band + center(0)
		if i < 0 || i > n {
			hPrev[c] = negInf
			vPrev[c] = negInf
			continue
		}
		hPrev[c] = -gapCost(i)
		vPrev[c] = negInf
		if i > 0 {
			ptr[c] = hHoriz | horizOpenBit
			if i > 1 {
				ptr[c] = hHoriz // extension
			}
		}
	}
	for j := 1; j <= m; j++ {
		cPrevRowShift := center(j) - center(j-1)
		rowPtr := ptr[j*width:]
		hGapPrev := negInf
		qcode := int(qCode[j-1]) & 7
		lutRow := lut[qcode*LUTStride : qcode*LUTStride+LUTStride]
		for c := 0; c < width; c++ {
			i := c - band + center(j)
			if i < 0 || i > n {
				hCur[c] = negInf
				continue
			}
			var p byte
			// Previous-row band-local indices for (j-1, i) and (j-1, i-1).
			up := c + cPrevRowShift
			diagC := up - 1

			if i == 0 {
				// First column: an all-vertical-gap prefix.
				hCur[c] = -gapCost(j)
				rowPtr[c] = hVert
				if j == 1 {
					rowPtr[c] |= vertOpenBit
				}
				vPrev[c] = hCur[c]
				hGapPrev = negInf
				continue
			}

			// Horizontal gap from (j, i-1).
			hOpen, hExt := negInf, negInf
			if c-1 >= 0 && hCur[c-1] > negInf/2 {
				hOpen = hCur[c-1] - sc.GapOpen
			}
			if hGapPrev > negInf/2 {
				hExt = hGapPrev - sc.GapExtend
			}
			hGap := hExt
			if hOpen >= hExt {
				hGap = hOpen
				p |= horizOpenBit
			}

			// Vertical gap from (j-1, i).
			vOpen, vExt := negInf, negInf
			if up >= 0 && up < width && hPrev[up] > negInf/2 {
				vOpen = hPrev[up] - sc.GapOpen
			}
			if up >= 0 && up < width && vPrev[up] > negInf/2 {
				vExt = vPrev[up] - sc.GapExtend
			}
			vGap := vExt
			if vOpen >= vExt {
				vGap = vOpen
				p |= vertOpenBit
			}

			diagScore := negInf
			if diagC >= 0 && diagC < width && hPrev[diagC] > negInf/2 {
				diagScore = hPrev[diagC] + int(lutRow[rCode[i-1]&7])
			}

			best, src := diagScore, byte(hDiag)
			if hGap > best {
				best, src = hGap, hHoriz
			}
			if vGap > best {
				best, src = vGap, hVert
			}
			p |= src
			rowPtr[c] = p
			hCur[c] = best
			hGapPrev = hGap
			// Store vGap for the next row at this absolute column: we
			// stash it in vPrev after the row completes, band-aligned.
			vPrev[c] = vGap
		}
		// Re-align vPrev/hPrev to absolute columns for the next row:
		// both arrays are indexed band-locally for row j now.
		hPrev, hCur = hCur, hPrev
	}

	// Traceback from (m, n) using banded pointers.
	endC := colOf(m, n)
	if endC < 0 || endC >= width || hPrev[endC] <= negInf/2 {
		return nil, fmt.Errorf("align: band %d too narrow for a global path", band)
	}
	score := hPrev[endC]
	var cigar Cigar
	i, j := n, m
	state := stateH
	for i > 0 || j > 0 {
		c := colOf(j, i)
		if c < 0 || c >= width {
			return nil, fmt.Errorf("align: traceback left the band at (%d,%d)", i, j)
		}
		p := ptr[j*width+c]
		switch state {
		case stateH:
			switch p & hMask {
			case hDiag:
				cigar = cigar.AppendOp(OpMatch)
				i--
				j--
			case hHoriz:
				state = hHoriz
			case hVert:
				state = hVert
			default:
				return nil, fmt.Errorf("align: null pointer inside global traceback at (%d,%d)", i, j)
			}
		case hHoriz:
			cigar = cigar.AppendOp(OpDel)
			open := p&horizOpenBit != 0
			i--
			if open {
				state = stateH
			}
		case hVert:
			cigar = cigar.AppendOp(OpIns)
			open := p&vertOpenBit != 0
			j--
			if open {
				state = stateH
			}
		}
	}
	res := &Result{
		Score:    score,
		RefStart: 0, RefEnd: n,
		QueryStart: 0, QueryEnd: m,
		Cigar: cigar.Reverse(),
	}
	return res, nil
}
