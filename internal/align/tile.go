package align

import "darwin/internal/dna"

// TileResult is what the GACT array returns to software for one call to
// Align (Section 7): the tile score, the reference/query bases consumed
// by the traceback (clipped to T−O), the position of the
// highest-scoring cell (first tile only), and the traceback path.
type TileResult struct {
	// Score is TS, the H score at the cell traceback started from.
	Score int
	// IOff, JOff are the reference/query bases consumed by the tile's
	// traceback, each at most the maxOff passed to AlignTile.
	IOff, JOff int
	// MaxI, MaxJ locate the highest-scoring cell (1-based DP
	// coordinates, i.e. bases consumed from the tile origin). Only
	// meaningful when firstTile was set.
	MaxI, MaxJ int
	// Cigar is the tile-local traceback path, in forward order.
	Cigar Cigar
}

// AlignTile is the compute-intensive Align step of GACT (Algorithm 2,
// line 7), the routine the GACT systolic array accelerates. It fills a
// local affine-gap DP matrix over the tile and traces back
//
//   - from the highest-scoring cell when firstTile is set, or
//   - from the bottom-right cell otherwise (where the previous tile's
//     traceback ended),
//
// consuming at most maxOff (= T−O) bases of either sequence so that
// successive tiles overlap by at least O bases.
//
// Memory is O(T²) for the tile pointer matrix — the constant-memory
// property that makes GACT hardware-friendly — regardless of the total
// alignment length.
func AlignTile(rTile, qTile dna.Seq, firstTile bool, maxOff int, sc *Scoring) TileResult {
	if len(rTile) == 0 || len(qTile) == 0 {
		return TileResult{}
	}
	if maxOff <= 0 {
		maxOff = max(len(rTile), len(qTile))
	}
	f := fillLocal(rTile, qTile, sc)

	startI, startJ := len(rTile), len(qTile)
	score := f.lastRow[len(rTile)]
	if firstTile {
		startI, startJ = f.maxI, f.maxJ
		score = f.maxScore
	}
	cigar, iOff, jOff := tracebackFrom(&f, len(rTile), startI, startJ, maxOff, maxOff)
	return TileResult{
		Score: score,
		IOff:  iOff,
		JOff:  jOff,
		MaxI:  f.maxI,
		MaxJ:  f.maxJ,
		Cigar: cigar,
	}
}
