package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/dna"
)

// quickSeqs generates a pair of related sequences from quick's random
// source.
func quickSeqs(rng *rand.Rand) (dna.Seq, dna.Seq) {
	ref := dna.Random(rng, 2+rng.Intn(60), 0.5)
	var query dna.Seq
	if rng.Intn(3) == 0 {
		query = dna.Random(rng, 2+rng.Intn(60), 0.5)
	} else {
		query = mutate(rng, ref, 0.3)
	}
	return ref, query
}

// Property: Smith-Waterman's traceback path always rescores to the
// matrix score, passes consistency checks, and agrees with the
// score-only kernel.
func TestQuickSWPathConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref, query := quickSeqs(rng)
		sc := Simple(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2))
		res, err := SmithWaterman(ref, query, &sc)
		if err != nil {
			return false
		}
		if err := res.Check(ref, query); err != nil {
			t.Logf("check: %v", err)
			return false
		}
		return res.Rescore(ref, query, &sc) == res.Score &&
			ScoreOnly(ref, query, &sc) == res.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: local alignment scores are non-negative and bounded by
// min(m, n) · max match score.
func TestQuickSWScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref, query := quickSeqs(rng)
		match := 1 + rng.Intn(4)
		sc := Simple(match, 1, 1)
		s := ScoreOnly(ref, query, &sc)
		bound := match * min(len(ref), len(query))
		return s >= 0 && s <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: edit distance is a metric on the global mode — symmetric,
// zero iff equal (for N-free sequences), and bounded by the length
// difference from below and max length from above.
func TestQuickEditDistanceMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := quickSeqs(rng)
		dab, err := EditDistance(a, b, EditGlobal)
		if err != nil {
			return false
		}
		dba, err := EditDistance(b, a, EditGlobal)
		if err != nil {
			return false
		}
		if dab != dba {
			return false
		}
		lenDiff := len(a) - len(b)
		if lenDiff < 0 {
			lenDiff = -lenDiff
		}
		if dab < lenDiff || dab > max(len(a), len(b)) {
			return false
		}
		daa, err := EditDistance(a, a, EditGlobal)
		if err != nil {
			return false
		}
		return daa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: the infix distance never exceeds the global distance, and
// appending flanking junk to the reference never increases it.
func TestQuickInfixMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref, query := quickSeqs(rng)
		global, err := EditDistance(ref, query, EditGlobal)
		if err != nil {
			return false
		}
		infix, err := EditDistance(ref, query, EditInfix)
		if err != nil {
			return false
		}
		if infix > global {
			return false
		}
		padded := append(dna.Random(rng, 10, 0.5), ref...)
		padded = append(padded, dna.Random(rng, 10, 0.5)...)
		infixPadded, err := EditDistance(padded, query, EditInfix)
		if err != nil {
			return false
		}
		return infixPadded <= infix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Cigar Concat preserves consumed lengths and Reverse is an
// involution.
func TestQuickCigarAlgebra(t *testing.T) {
	f := func(ops []byte) bool {
		var a, b Cigar
		for i, o := range ops {
			op := []Op{OpMatch, OpIns, OpDel}[int(o)%3]
			if i%2 == 0 {
				a = a.AppendOp(op)
			} else {
				b = b.AppendOp(op)
			}
		}
		wantRef := a.RefLen() + b.RefLen()
		wantQ := a.QueryLen() + b.QueryLen()
		c := a.Concat(b)
		if c.RefLen() != wantRef || c.QueryLen() != wantQ {
			return false
		}
		// Adjacent runs must be merged.
		for i := 1; i < len(c); i++ {
			if c[i-1].Op == c[i].Op {
				return false
			}
		}
		d := append(Cigar(nil), c...)
		d = d.Reverse().Reverse()
		if len(d) != len(c) {
			return false
		}
		for i := range c {
			if c[i] != d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: GACT tiles never exceed the tile-local optimum and always
// respect the offset clip.
func TestQuickTileClipAndBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref, query := quickSeqs(rng)
		sc := Simple(1, 1, 1)
		maxOff := 1 + rng.Intn(30)
		res := AlignTile(ref, query, rng.Intn(2) == 0, maxOff, &sc)
		if res.IOff > maxOff || res.JOff > maxOff {
			return false
		}
		return res.Score <= ScoreOnly(ref, query, &sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
