package align

import (
	"bytes"
	"fmt"

	"darwin/internal/dna"
)

// This file is the TileAligner's bit-parallel tier: a Myers/GenASM
// bitvector pass over the tile (64 DP cells per machine word, reusing
// the MyersState recurrence) whose edit-distance path, rescored under
// the affine-gap LUT, yields a *provable* lower bound S_bv on the
// affine DP's bottom-right score H(n,m) — the global edit path is one
// of the local paths ending at (n,m). From that bound follows a band:
// any path ending at (n,m) scoring ≥ S_bv has at most
//
//	g ≤ (wmax·(n+m) − 2·S_bv) / (wmax + 2·e)
//
// gap bases (each aligned pair contributes ≤ wmax, each gap base costs
// ≥ e, and a path with g gap bases has ≤ (n+m−g)/2 aligned pairs), so
// the optimal traceback path from (n,m) never strays more than g
// anti-diagonal offsets from the (n,m) back-diagonal. Filling only
// that band reproduces the full kernel's Score, IOff, JOff, and Cigar
// *exactly*: every cell the traceback visits — and every cell in the
// value/gap chains those cells' pointers encode — lies strictly inside
// the band, in-band values are computed from in-band or boundary
// values, and out-of-band reads see lower bounds (0-initialized H,
// negInf gap rows) that cannot displace the true winner under the
// kernel's fixed tie order. MaxI/MaxJ become in-band maxima, which is
// why the tier only runs on extension tiles (TileResult documents
// MaxI/MaxJ as meaningful only when firstTile was set — first tiles
// always take the LUT path).
//
// The divergence gate makes the tier a *fast path* rather than a
// wager: when the rescored bound sits too far below the tile's
// perfect-score bound (low-identity or unrelated tiles, where the band
// would be wide anyway), the tile falls back to the full LUT fill and
// is counted in KernelStats.FallbackTiles.

// KernelMode selects the TileAligner's tile-kernel tier.
type KernelMode uint8

const (
	// KernelAuto (the default) runs the bitvector fast path on
	// extension tiles, falling back to the full LUT kernel when the
	// divergence gate rejects, the tile contains N codes, or the
	// geometry is unfriendly. Results are bit-identical to KernelLUT
	// on every field GACT consumes (Score, IOff, JOff, Cigar; plus
	// MaxI/MaxJ on first tiles, which always take the LUT path).
	KernelAuto KernelMode = iota
	// KernelLUT always runs the full branchless affine-LUT kernel —
	// the PR 3 behaviour, and the reference the property tests pin.
	KernelLUT
	// KernelBitvector forces the bitvector tier whenever it is
	// expressible (no divergence fallback; the band is clamped to the
	// tile instead). Same bit-identical results — the band bound stays
	// provable — but divergent tiles pay bitvector + full-width fill,
	// so this mode exists for benchmarking and diagnostics.
	KernelBitvector
)

// String returns the flag spelling of the mode.
func (k KernelMode) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelLUT:
		return "lut"
	case KernelBitvector:
		return "bitvector"
	}
	return fmt.Sprintf("KernelMode(%d)", uint8(k))
}

// ParseKernelMode parses a -tile-kernel flag value.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "lut":
		return KernelLUT, nil
	case "bitvector", "bv":
		return KernelBitvector, nil
	}
	return KernelAuto, fmt.Errorf("align: unknown kernel mode %q (want auto, bitvector, or lut)", s)
}

const (
	// bitvecMinSide: tiles with a side below this skip the bitvector
	// pass — the fixed cost of the Myers pass plus rescore is not worth
	// amortizing over a tiny fill (boundary tiles at sequence ends).
	bitvecMinSide = 48
	// bitvecMaxBlocks bounds the query's 64-bit block count for the
	// tier ("one-word-friendly geometry"): GACT tiles are ≤ 384 bases
	// (6 blocks); anything past 16 blocks is not a tile workload.
	bitvecMaxBlocks = 16
)

// KernelStats counts tiles and DP cells per kernel path. LUTTiles and
// LUTCells cover every tile computed by the full LUT fill — fallbacks
// included; FallbackTiles is the subset that attempted the bitvector
// tier first and hit the divergence/profit gate. BitvectorCells counts
// only the banded cells actually filled, so cells-per-second can be
// compared per path.
type KernelStats struct {
	LUTTiles       int64
	LUTCells       int64
	BitvectorTiles int64
	BitvectorCells int64
	FallbackTiles  int64
}

// SetKernel selects the aligner's kernel tier (KernelAuto default).
func (a *TileAligner) SetKernel(mode KernelMode) { a.mode = mode }

// Kernel returns the aligner's kernel tier.
func (a *TileAligner) Kernel() KernelMode { return a.mode }

// SetKernelDivergence overrides the auto tier's fallback threshold:
// the maximum allowed gap, in score units, between the tile's
// perfect-score bound wmax·(n+m)/2 and the bitvector path's rescored
// bound S_bv. Zero (the default) picks a geometry-derived threshold
// that caps the band near a quarter of the tile side. Negative values
// are treated as zero.
func (a *TileAligner) SetKernelDivergence(d int) {
	if d < 0 {
		d = 0
	}
	a.maxDiv = d
}

// KernelStats returns the aligner's cumulative per-path counts.
func (a *TileAligner) KernelStats() KernelStats { return a.ks }

// tryBitvector attempts the bit-parallel tier on a precoded extension
// tile. It reports false — leaving no trace beyond FallbackTiles when
// the divergence gate fired — if the tile must take the LUT path.
func (a *TileAligner) tryBitvector(rc, qc []byte, maxOff int) (TileResult, bool) {
	n, m := len(rc), len(qc)
	if n < bitvecMinSide || m < bitvecMinSide || (m+63)/64 > bitvecMaxBlocks {
		return TileResult{}, false
	}
	// The edit model cannot express the LUT's N-scores-zero columns.
	if bytes.IndexByte(rc, dna.CodeN) >= 0 || bytes.IndexByte(qc, dna.CodeN) >= 0 {
		return TileResult{}, false
	}

	er, err := a.bv.alignCodes(rc, qc, EditGlobal)
	if err != nil {
		return TileResult{}, false
	}
	sbv := a.rescoreCodes(rc, qc, er.Cigar)

	wmax := int(a.wmax)
	num := wmax*(n+m) - 2*sbv // twice (perfect bound − S_bv), ≥ 0
	den := wmax + 2*int(a.ext)
	side := min(n, m)
	if a.mode != KernelBitvector {
		maxDiv := a.maxDiv
		if maxDiv <= 0 {
			// Default: cap the band near 2·side/5. A band of b fills
			// ~(2b+1)/side of the matrix, so the banded fill still beats
			// the full one by ≥15% at the cap — enough to cover the
			// Myers pass — while wider bands approach the full fill with
			// the bitvector work as pure overhead (the 2·band+1 ≥ side
			// profit gate below catches those).
			maxDiv = den * side / 5
		}
		if num > 2*maxDiv {
			a.ks.FallbackTiles++
			return TileResult{}, false
		}
	}
	band := num/den + 2 // +2 slack over the provable gap bound
	if 2*band+1 >= side {
		if a.mode != KernelBitvector {
			a.ks.FallbackTiles++
			return TileResult{}, false
		}
		if band > n+m {
			band = n + m // clamp: banded fill degenerates to the full fill
		}
	}

	cells := a.fillCoded(rc, qc, band)
	a.ks.BitvectorTiles++
	a.ks.BitvectorCells += cells

	score := int(a.hRow[n]) // H of the bottom-right cell — exact in-band
	cigar, iOff, jOff := a.traceback(n+1, n, m, maxOff)
	return TileResult{
		Score: score,
		IOff:  iOff,
		JOff:  jOff,
		MaxI:  a.maxI, // in-band maxima; see the file comment
		MaxJ:  a.maxJ,
		Cigar: cigar,
	}, true
}

// rescoreCodes scores an edit-path cigar over precoded tiles under the
// aligner's affine LUT — Result.Rescore's logic on codes, giving the
// bound S_bv the band derivation needs.
func (a *TileAligner) rescoreCodes(rc, qc []byte, cig Cigar) int {
	score := 0
	i, j := 0, 0
	open, ext := int(a.open), int(a.ext)
	for _, s := range cig {
		switch s.Op {
		case OpMatch:
			for k := 0; k < s.Len; k++ {
				score += int(a.lut[(int(qc[j+k])&7)*LUTStride+int(rc[i+k])&7])
			}
			i += s.Len
			j += s.Len
		case OpIns:
			score -= open + (s.Len-1)*ext
			j += s.Len
		case OpDel:
			score -= open + (s.Len-1)*ext
			i += s.Len
		}
	}
	return score
}
