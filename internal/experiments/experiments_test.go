package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 7} }

func run(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Report == "" {
		t.Fatalf("%s: empty report", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, w := range want {
		if reg[i].ID != w {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, w)
		}
	}
	if _, err := Run("nonexistent", quick()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTable1ErrorProfiles(t *testing.T) {
	res := run(t, "table1")
	// Totals must match the paper's Table 1 (15%, 30%, 40%).
	checks := map[string]float64{
		"PacBio/total": 0.1501, "ONT_2D/total": 0.30, "ONT_1D/total": 0.3998,
	}
	for k, want := range checks {
		got := res.Values[k]
		if got < want-0.015 || got > want+0.015 {
			t.Errorf("%s = %.4f, want ≈ %.4f", k, got, want)
		}
	}
}

func TestTable2Breakdown(t *testing.T) {
	res := run(t, "table2")
	if got := res.Values["Total/area"]; got < 405 || got > 420 {
		t.Errorf("total area = %.1f, want ≈ 412.1", got)
	}
	if got := res.Values["Total/power"]; got < 15 || got > 15.5 {
		t.Errorf("total power = %.2f, want ≈ 15.25", got)
	}
	if !strings.Contains(res.Report, "FPGA") {
		t.Error("report missing FPGA operating point")
	}
}

func TestTable3Trends(t *testing.T) {
	res := run(t, "table3")
	// Paper-scale model column within 30% of the paper's numbers.
	paper := map[string]float64{"model/k11": 1426.9, "model/k15": 91138.7}
	for k, want := range paper {
		got := res.Values[k]
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("%s = %.1f, want ≈ %.1f", k, got, want)
		}
	}
	// Scaled measurement: hits/seed decreasing in k, speedup > 1.
	if res.Values["scaled/k6/hits_per_seed"] <= res.Values["scaled/k10/hits_per_seed"] {
		t.Error("hits/seed must decrease with k")
	}
	for _, k := range []string{"scaled/k6/speedup", "scaled/k10/speedup"} {
		if res.Values[k] <= 1 {
			t.Errorf("%s = %.1f, want > 1", k, res.Values[k])
		}
	}
}

func TestTable4Headlines(t *testing.T) {
	res := run(t, "table4")
	for _, class := range []string{"PacBio", "ONT_2D", "ONT_1D"} {
		ds := res.Values[class+"/darwin_sens"]
		bs := res.Values[class+"/baseline_sens"]
		if ds < bs-0.15 {
			t.Errorf("%s: darwin sensitivity %.2f far below baseline %.2f", class, ds, bs)
		}
		if got := res.Values[class+"/speedup"]; got < 100 {
			t.Errorf("%s: modeled speedup %.0f×, want ≥ 100× (paper: >1000×)", class, got)
		}
	}
	if got := res.Values["denovo/darwin_sens"]; got < 0.6 {
		t.Errorf("de novo darwin sensitivity %.2f too low", got)
	}
	// De novo speedup is bounded by the software-side seed-table
	// construction (the paper's own finding: 370 of 385 s), which at
	// quick-mode scale looms large relative to the tiny workload; the
	// qualitative claim is just Darwin > baseline.
	if got := res.Values["denovo/speedup"]; got < 2 {
		t.Errorf("de novo modeled speedup %.1f×, want ≥ 2×", got)
	}
}

func TestFig9aOptimality(t *testing.T) {
	res := run(t, "fig9a")
	// At the paper's operating point, PacBio and ONT_2D must be fully
	// optimal; the noisiest class may retain rare sub-1% edge
	// deviations (documented in EXPERIMENTS.md).
	for _, class := range []string{"PacBio", "ONT_2D"} {
		if got := res.Values[class+"/T320_O128"]; got < 1 {
			t.Errorf("%s at (320,128): %.0f%% optimal, want 100%%", class, got*100)
		}
	}
	if got := res.Values["ONT_1D/T320_O128"]; got < 0.5 {
		t.Errorf("ONT_1D at (320,128): %.0f%% optimal, want ≥ 50%%", got*100)
	}
	for _, class := range []string{"PacBio", "ONT_2D", "ONT_1D"} {
		if gap := res.Values[class+"/T320_O128/gap"]; gap > 0.01 {
			t.Errorf("%s at (320,128): relative score gap %.3f%%, want ≤ 1%%", class, gap*100)
		}
	}
}

func TestFig9bShape(t *testing.T) {
	res := run(t, "fig9b")
	// Larger O at fixed T lowers throughput; check one column pair.
	if res.Values["T320_O160"] >= res.Values["T320_O40"] {
		t.Errorf("throughput should drop as O grows: O=160 %.0f vs O=40 %.0f",
			res.Values["T320_O160"], res.Values["T320_O40"])
	}
}

func TestFig10Crossover(t *testing.T) {
	res := run(t, "fig10")
	// Darwin's modeled speedup over the Edlib class must grow with
	// length (quadratic vs linear — the Fig. 10 shape).
	s1 := res.Values["speedup_vs_edlib/1000"]
	s2 := res.Values["speedup_vs_edlib/2000"]
	// Allow a little timing noise on the small quick-mode sample; the
	// structural expectation is ~2× growth per length doubling.
	if s2 <= s1*0.8 {
		t.Errorf("speedup vs Edlib not growing with length: %.0f× at 1k, %.0f× at 2k", s1, s2)
	}
	if s1 < 10 {
		t.Errorf("speedup at 1 kbp = %.0f×, want ≥ 10× (paper: 1392×)", s1)
	}
}

func TestFig11Monotone(t *testing.T) {
	res := run(t, "fig11")
	// For each (k,N): sensitivity and FHR must not increase with h.
	type kn struct{ k, n int }
	for _, s := range []kn{{10, 500}, {11, 666}} {
		prevSens, prevFHR := 2.0, -1.0
		first := true
		for _, h := range []int{15, 30, 60} {
			sens := res.Values[keyKNH(s.k, s.n, h, "sens")]
			fhr := res.Values[keyKNH(s.k, s.n, h, "fhr")]
			if !first {
				if sens > prevSens+1e-9 {
					t.Errorf("(k=%d,N=%d): sensitivity rose with h: %.3f -> %.3f", s.k, s.n, prevSens, sens)
				}
				if fhr > prevFHR+1e-9 {
					t.Errorf("(k=%d,N=%d): FHR rose with h: %.2f -> %.2f", s.k, s.n, prevFHR, fhr)
				}
			}
			prevSens, prevFHR = sens, fhr
			first = false
		}
	}
}

func keyKNH(k, n, h int, suffix string) string {
	return "k" + strconv.Itoa(k) + "_N" + strconv.Itoa(n) + "_h" + strconv.Itoa(h) + "/" + suffix
}

func TestFig12Separation(t *testing.T) {
	res := run(t, "fig12")
	if res.Values["true_hits"] == 0 || res.Values["false_hits"] == 0 {
		t.Fatalf("need both true and false hits: %+v", res.Values)
	}
	// h_tile=90 must filter most false hits at small sensitivity loss
	// (paper: 97.3% filtered, <0.05% loss).
	if got := res.Values["false_filtered_at_90"]; got < 0.8 {
		t.Errorf("false hits filtered at 90 = %.2f, want ≥ 0.8", got)
	}
	if got := res.Values["true_lost_at_90"]; got > 0.05 {
		t.Errorf("true hits lost at 90 = %.3f, want ≤ 0.05", got)
	}
}

func TestFig13Waterfall(t *testing.T) {
	res := run(t, "fig13")
	// Totals must improve monotonically from line 2 (Darwin software)
	// through line 6 (full Darwin), and line 6 must beat line 1 big.
	for i := 3; i <= 6; i++ {
		cur := res.Values[lineKey(i)]
		prev := res.Values[lineKey(i-1)]
		if cur > prev*1.01 {
			t.Errorf("line %d total %.4g ms worse than line %d total %.4g ms", i, cur, i-1, prev)
		}
	}
	if res.Values[lineKey(6)]*20 > res.Values[lineKey(1)] {
		t.Errorf("full Darwin (%.4g ms) not ≥20× faster than GraphMap-class (%.4g ms)",
			res.Values[lineKey(6)], res.Values[lineKey(1)])
	}
}

func lineKey(i int) string { return "line" + strconv.Itoa(i) + "/total_ms" }
