// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 9) at laptop scale: synthetic genomes
// stand in for GRCh38/C. elegans, seed sizes are scaled to preserve
// the hits/seed regime, measured software numbers come from this
// repository's implementations, and Darwin ASIC numbers come from the
// calibrated hardware model (internal/hw) following the paper's own
// estimation methodology. EXPERIMENTS.md records paper-vs-measured
// values for each experiment.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// Options configures workload scale. Zero values take defaults.
type Options struct {
	// GenomeLen is the synthetic reference length (default 1 Mbp;
	// Quick uses 200 kbp).
	GenomeLen int
	// Reads is the number of reads evaluated per read class.
	Reads int
	// ReadLen is the mean simulated read length.
	ReadLen int
	// Seed makes runs deterministic.
	Seed int64
	// Quick shrinks every workload for use inside benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.GenomeLen == 0 {
		if o.Quick {
			o.GenomeLen = 200_000
		} else {
			o.GenomeLen = 1_000_000
		}
	}
	if o.Reads == 0 {
		if o.Quick {
			o.Reads = 8
		} else {
			o.Reads = 40
		}
	}
	if o.ReadLen == 0 {
		if o.Quick {
			o.ReadLen = 2_000
		} else {
			o.ReadLen = 5_000
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// makeGenome builds the standard human-like synthetic reference.
func makeGenome(o Options) (dna.Seq, error) {
	g, err := genome.Generate(genome.Config{
		Length:           o.GenomeLen,
		GC:               0.41,
		RepeatFraction:   0.25,
		RepeatFamilies:   8,
		RepeatUnitLen:    300,
		RepeatDivergence: 0.10,
		TandemFraction:   0.10,
		Seed:             o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return g.Seq, nil
}

// simulate draws o.Reads reads of one class with ground truth.
func simulate(ref dna.Seq, o Options, p readsim.Profile) ([]readsim.Read, error) {
	return readsim.SimulateN(ref, o.Reads, readsim.Config{
		Profile:   p,
		MeanLen:   o.ReadLen,
		LenSpread: 0.1,
		Seed:      o.Seed + int64(len(p.Name)),
	})
}

// classConfig returns Darwin's per-read-class D-SOFT tuning (k, N, h),
// the scaled analogue of Table 4's settings: k shrinks and N grows
// with error rate; values are scaled to megabase genomes so hits/seed
// stays in a regime comparable to the paper's.
func classConfig(p readsim.Profile, readLen int) (k, n, h int) {
	switch p.Name {
	case "PacBio":
		k, n, h = 12, readLen/8, 24
	case "ONT_2D":
		k, n, h = 11, readLen/6, 25
	default: // ONT_1D
		k, n, h = 10, readLen/3, 22
	}
	if n < 100 {
		n = 100
	}
	return k, n, h
}

// Result is one experiment's rendered report plus machine-checkable
// headline numbers (used by tests and EXPERIMENTS.md).
type Result struct {
	// ID is the experiment identifier ("table3", "fig10", ...).
	ID string
	// Report is the rendered text output.
	Report string
	// Values holds headline metrics by name.
	Values map[string]float64
	// Elapsed is the wall time of the experiment.
	Elapsed time.Duration
}

// Runner is an experiment entry point.
type Runner func(Options) (*Result, error)

// Registry maps experiment ids to runners, in presentation order.
func Registry() []struct {
	ID  string
	Fn  Runner
	Doc string
} {
	return []struct {
		ID  string
		Fn  Runner
		Doc string
	}{
		{"table1", Table1, "Error profiles of the three read classes"},
		{"table2", Table2, "ASIC area and power breakdown"},
		{"table3", Table3, "Seed hits and D-SOFT throughput vs seed size"},
		{"table4", Table4, "Overall reference-guided and de novo comparison"},
		{"fig9a", Fig9a, "GACT optimality across (T, O) settings"},
		{"fig9b", Fig9b, "GACT array throughput across (T, O) settings"},
		{"fig10", Fig10, "Alignment throughput vs sequence length"},
		{"fig11", Fig11, "D-SOFT sensitivity and false hit rate tuning"},
		{"fig12", Fig12, "First-tile score separation of true and false hits"},
		{"fig13", Fig13, "Filtration/alignment timing waterfall"},
	}
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Result, error) {
	for _, e := range Registry() {
		if e.ID == id {
			start := time.Now()
			res, err := e.Fn(o)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment, writing reports to w.
func RunAll(w io.Writer, o Options) error {
	for _, e := range Registry() {
		res, err := Run(e.ID, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "=== %s: %s (%.1fs)\n%s\n", res.ID, e.Doc, res.Elapsed.Seconds(), res.Report)
	}
	return nil
}

// sortedKeys renders Values deterministically.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatValues renders headline metrics one per line.
func FormatValues(res *Result) string {
	out := ""
	for _, k := range sortedKeys(res.Values) {
		out += fmt.Sprintf("%s = %.6g\n", k, res.Values[k])
	}
	return out
}
