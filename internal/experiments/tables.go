package experiments

import (
	"fmt"
	"strings"
	"time"

	"darwin/internal/assembly"
	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/hw"
	"darwin/internal/metrics"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
)

// Table1 regenerates the error-profile table: reads are simulated for
// each class and the injected rates are measured back, which must
// match the paper's Table 1 (the profiles are the paper's numbers).
func Table1(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	var tb metrics.Table
	tb.Header = []string{"Read type", "Substitution", "Insertion", "Deletion", "Total"}
	values := map[string]float64{}
	for _, p := range readsim.Profiles {
		reads, err := simulate(ref, o, p)
		if err != nil {
			return nil, err
		}
		m := readsim.MeasuredProfile(reads)
		tb.AddRow(p.Name,
			fmt.Sprintf("%.2f%%", m.Sub*100),
			fmt.Sprintf("%.2f%%", m.Ins*100),
			fmt.Sprintf("%.2f%%", m.Del*100),
			fmt.Sprintf("%.2f%%", m.Total()*100))
		values[p.Name+"/total"] = m.Total()
		values[p.Name+"/sub"] = m.Sub
		values[p.Name+"/ins"] = m.Ins
		values[p.Name+"/del"] = m.Del
	}
	return &Result{ID: "table1", Report: tb.Render(), Values: values}, nil
}

// Table2 regenerates the ASIC area/power breakdown from the component
// model, plus the 14nm projection and FPGA operating point.
func Table2(o Options) (*Result, error) {
	chip := hw.DefaultChip()
	rows := chip.AreaPower()
	var tb metrics.Table
	tb.Header = []string{"Component", "Configuration", "Area (mm²)", "Power (W)"}
	values := map[string]float64{}
	for _, r := range rows {
		tb.AddRow(r.Component, r.Config, fmt.Sprintf("%.1f", r.AreaMM2), fmt.Sprintf("%.2f", r.PowerW))
		values[r.Component+"/area"] = r.AreaMM2
		values[r.Component+"/power"] = r.PowerW
	}
	area14, power14 := chip.Scaled14nm()
	values["14nm/area"] = area14
	values["14nm/power"] = power14
	fpga := hw.DefaultFPGA()
	fpgaTiles := fpga.TilesPerSecond(320, 128)
	values["fpga/tiles_per_sec"] = fpgaTiles
	report := tb.Render() +
		fmt.Sprintf("\n14nm projection: %.1f mm², %.1f W\n", area14, power14) +
		fmt.Sprintf("FPGA prototype (%s): %.2g GACT tiles/s at T=320\n", fpga, fpgaTiles)
	return &Result{ID: "table2", Report: report, Values: values}, nil
}

// Table3 regenerates the seed-size study. Two parts:
//
//  1. model reproduction at paper scale: the Darwin throughput column
//     recomputed from the paper's GRCh38 hits/seed values;
//  2. scaled measurement: a seed-size sweep over the synthetic genome
//     with k chosen so hits/seed spans the same regime, measuring the
//     software implementation and modeling Darwin.
func Table3(o Options) (*Result, error) {
	o = o.withDefaults()
	model := hw.NewDSOFTModel(hw.DefaultChip())
	values := map[string]float64{}

	var paperTb metrics.Table
	paperTb.Header = []string{"k", "hits/seed (GRCh38)", "Darwin model (Kseeds/s)", "paper (Kseeds/s)"}
	paperRows := []struct {
		k     int
		hits  float64
		paper float64
	}{
		{11, 1866.1, 1426.9}, {12, 491.6, 5422.6}, {13, 127.3, 19081.7},
		{14, 33.4, 55189.2}, {15, 8.7, 91138.7},
	}
	for _, r := range paperRows {
		got := model.SeedsPerSecond(r.hits) / 1e3
		paperTb.AddRow(fmt.Sprint(r.k), fmt.Sprintf("%.1f", r.hits),
			fmt.Sprintf("%.1f", got), fmt.Sprintf("%.1f", r.paper))
		values[fmt.Sprintf("model/k%d", r.k)] = got
	}

	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	reads, err := simulate(ref, o, readsim.PacBio)
	if err != nil {
		return nil, err
	}
	var scaledTb metrics.Table
	scaledTb.Header = []string{"k", "hits/seed (measured)", "software (Kseeds/s)", "Darwin model (Kseeds/s)", "speedup"}
	ks := []int{6, 7, 8, 9, 10}
	if o.Quick {
		ks = []int{6, 8, 10}
	}
	for _, k := range ks {
		tab, err := seedtable.Build(ref, k, seedtable.DefaultOptions())
		if err != nil {
			return nil, err
		}
		filter, err := dsoft.New(tab, dsoft.Config{N: o.ReadLen / 4, H: 2 * k, BinSize: 128})
		if err != nil {
			return nil, err
		}
		var seeds, hits int
		start := time.Now()
		for i := range reads {
			_, st := filter.Query(reads[i].Seq)
			seeds += st.SeedsIssued
			hits += st.Hits
		}
		elapsed := time.Since(start).Seconds()
		if seeds == 0 || elapsed == 0 {
			continue
		}
		hitsPerSeed := float64(hits) / float64(seeds)
		swKseeds := float64(seeds) / elapsed / 1e3
		hwKseeds := model.SeedsPerSecond(hitsPerSeed) / 1e3
		scaledTb.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.1f", hitsPerSeed),
			fmt.Sprintf("%.1f", swKseeds),
			fmt.Sprintf("%.1f", hwKseeds),
			fmt.Sprintf("%.0f×", hwKseeds/swKseeds))
		values[fmt.Sprintf("scaled/k%d/hits_per_seed", k)] = hitsPerSeed
		values[fmt.Sprintf("scaled/k%d/speedup", k)] = hwKseeds / swKseeds
	}
	report := "Model reproduction at paper scale (GRCh38 hits/seed):\n" + paperTb.Render() +
		fmt.Sprintf("\nScaled measurement (synthetic %d bp genome):\n", o.GenomeLen) + scaledTb.Render()
	return &Result{ID: "table3", Report: report, Values: values}, nil
}

// Table4 regenerates the overall comparison: reference-guided mapping
// of the three read classes against the class-appropriate baseline,
// and the de novo overlap step against the DALIGNER-class baseline,
// with Darwin's speed from the hardware estimator.
func Table4(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	estimator := hw.NewDarwin()
	values := map[string]float64{}

	var tb metrics.Table
	tb.Header = []string{"Read type", "D-SOFT (k,N,h)", "Baseline", "Sens base", "Sens darwin",
		"Prec base", "Prec darwin", "Base reads/s", "Darwin reads/s (model)", "Speedup", "Energy ratio"}

	for _, p := range readsim.Profiles {
		reads, err := simulate(ref, o, p)
		if err != nil {
			return nil, err
		}
		k, n, h := classConfig(p, o.ReadLen)
		eng, err := core.New(ref, core.DefaultConfig(k, n, h))
		if err != nil {
			return nil, err
		}
		dm := assembly.NewDarwinMapper(eng)
		dRes := assembly.EvaluateRefGuided(dm, reads)

		var bRes assembly.RefGuidedResult
		if p.Name == "PacBio" {
			bw, err := baseline.NewBWAMemLike(ref, baseline.DefaultBWAMemConfig())
			if err != nil {
				return nil, err
			}
			bRes = assembly.EvaluateRefGuided(assembly.BWAMemMapper{B: bw}, reads)
		} else {
			gm, err := baseline.NewGraphMapLike(ref, baseline.DefaultGraphMapConfig())
			if err != nil {
				return nil, err
			}
			bRes = assembly.EvaluateRefGuided(assembly.GraphMapMapper{G: gm}, reads)
		}

		est := estimator.Estimate(dm.Workload())
		speedup := 0.0
		if bRes.ReadsPerSec > 0 {
			speedup = est.ReadsPerSec / bRes.ReadsPerSec
		}
		tb.AddRow(p.Name,
			fmt.Sprintf("(%d,%d,%d)", k, n, h),
			bRes.Mapper,
			fmt.Sprintf("%.1f%%", bRes.Confusion.Sensitivity()*100),
			fmt.Sprintf("%.1f%%", dRes.Confusion.Sensitivity()*100),
			fmt.Sprintf("%.1f%%", bRes.Confusion.Precision()*100),
			fmt.Sprintf("%.1f%%", dRes.Confusion.Precision()*100),
			fmt.Sprintf("%.2f", bRes.ReadsPerSec),
			fmt.Sprintf("%.0f", est.ReadsPerSec),
			fmt.Sprintf("%.0f×", speedup),
			fmt.Sprintf("%.0f×", est.EnergyRatio(bRes.ReadsPerSec)))
		values[p.Name+"/darwin_sens"] = dRes.Confusion.Sensitivity()
		values[p.Name+"/baseline_sens"] = bRes.Confusion.Sensitivity()
		values[p.Name+"/darwin_prec"] = dRes.Confusion.Precision()
		values[p.Name+"/baseline_prec"] = bRes.Confusion.Precision()
		values[p.Name+"/speedup"] = speedup
	}

	// De novo overlap step (C. elegans stand-in: same synthetic class,
	// smaller region at ~8× coverage so reads overlap like the paper's
	// 30× workload; read length must exceed the 1 kbp overlap
	// criterion by a comfortable margin).
	ovGenomeLen := o.GenomeLen / 8
	ovReadLen := max(o.ReadLen, 2500)
	ovReads := 8 * ovGenomeLen / ovReadLen
	reads, err := readsim.SimulateN(ref[:ovGenomeLen], ovReads, readsim.Config{
		Profile: readsim.PacBio, MeanLen: ovReadLen, LenSpread: 0.1, Seed: o.Seed + 99,
	})
	if err != nil {
		return nil, err
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}

	dal := baseline.NewDalignerLike(baseline.DefaultDalignerConfig())
	dalStart := time.Now()
	dalOv, _ := dal.FindOverlaps(seqs)
	dalTime := time.Since(dalStart)
	dalConf := assembly.EvaluateOverlaps(reads, assembly.FromDalignerOverlaps(dalOv), 1000, 0.8)

	// The paper tunes D-SOFT to match or exceed the baseline's
	// sensitivity; the overlap workload needs denser seeding than
	// reference-guided mapping (Table 4 uses N=1300 for de novo vs
	// 750 for reference-guided at the same k, h).
	// Seeds are spread across the whole read (stride 4): an overlap
	// can sit at either end of a read, so head-only seeding misses
	// tail-side overlaps of mixed-orientation pairs.
	k, _, h := classConfig(readsim.PacBio, ovReadLen)
	ovCfg := core.DefaultConfig(k, ovReadLen/4, h)
	ovCfg.SeedStride = 4
	ovCfg.MaxCandidates = 512
	ovp, err := core.NewOverlapper(seqs, ovCfg)
	if err != nil {
		return nil, err
	}
	darwinStart := time.Now()
	dOv, ovStats := ovp.FindOverlaps(500)
	darwinTime := time.Since(darwinStart)
	dConf := assembly.EvaluateOverlaps(reads, assembly.FromCoreOverlaps(dOv), 1000, 0.8)

	// Darwin hardware estimate for the overlap workload: software seed
	// table construction plus accelerator time per the slower-of-two
	// rule across all 2·reads strand queries.
	queries := float64(2 * len(reads))
	w := hw.Workload{TileT: 320, TileO: 128}
	if ovStats.Map.DSOFT.SeedsIssued > 0 {
		w.SeedsPerRead = float64(ovStats.Map.DSOFT.SeedsIssued) / queries
		w.HitsPerSeed = float64(ovStats.Map.DSOFT.Hits) / float64(ovStats.Map.DSOFT.SeedsIssued)
		w.TilesPerRead = float64(ovStats.Map.Tiles) / queries
	}
	est := estimator.Estimate(w)
	hwOverlapSec := ovStats.TableBuildTime.Seconds()
	if est.ReadsPerSec > 0 {
		hwOverlapSec += queries / est.ReadsPerSec
	}
	ovSpeedup := dalTime.Seconds() / hwOverlapSec

	var ovTb metrics.Table
	ovTb.Header = []string{"Tool", "Sensitivity", "Precision", "Runtime (s)", "Speedup"}
	ovTb.AddRow("daligner-like (software)",
		fmt.Sprintf("%.1f%%", dalConf.Sensitivity()*100),
		fmt.Sprintf("%.1f%%", dalConf.Precision()*100),
		fmt.Sprintf("%.2f", dalTime.Seconds()), "1×")
	ovTb.AddRow("darwin (software)",
		fmt.Sprintf("%.1f%%", dConf.Sensitivity()*100),
		fmt.Sprintf("%.1f%%", dConf.Precision()*100),
		fmt.Sprintf("%.2f", darwinTime.Seconds()),
		fmt.Sprintf("%.1f×", dalTime.Seconds()/darwinTime.Seconds()))
	ovTb.AddRow("darwin (ASIC model)", "same as software", "same as software",
		fmt.Sprintf("%.3f (%.3f table build)", hwOverlapSec, ovStats.TableBuildTime.Seconds()),
		fmt.Sprintf("%.0f×", ovSpeedup))
	values["denovo/daligner_sens"] = dalConf.Sensitivity()
	values["denovo/darwin_sens"] = dConf.Sensitivity()
	values["denovo/daligner_prec"] = dalConf.Precision()
	values["denovo/darwin_prec"] = dConf.Precision()
	values["denovo/speedup"] = ovSpeedup

	report := "Reference-guided assembly (synthetic genome):\n" + tb.Render() +
		"\nDe novo assembly overlap step:\n" + ovTb.Render() +
		"\nNote: Darwin reads/s uses the calibrated ASIC model per the paper's\n" +
		"methodology (workload statistics from the software run; slower of\n" +
		"D-SOFT and GACT); baselines are measured Go implementations.\n"
	return &Result{ID: "table4", Report: strings.TrimLeft(report, "\n"), Values: values}, nil
}
