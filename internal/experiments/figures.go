package experiments

import (
	"fmt"
	"time"

	"darwin/internal/align"
	"darwin/internal/assembly"
	"darwin/internal/baseline"
	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/hw"
	"darwin/internal/metrics"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
)

// alignPair is one (reference region, read) workload item with the
// GACT anchor at the region start.
type alignPair struct {
	region dna.Seq
	read   dna.Seq
}

// makePairs simulates reads and pairs each with its true template
// region plus margin, in the read's orientation, so GACT and the
// Smith-Waterman oracle see identical inputs.
func makePairs(ref dna.Seq, o Options, p readsim.Profile, count, readLen int) ([]alignPair, error) {
	reads, err := readsim.SimulateN(ref, count, readsim.Config{
		Profile: p, MeanLen: readLen, Seed: o.Seed + int64(readLen),
	})
	if err != nil {
		return nil, err
	}
	pairs := make([]alignPair, 0, len(reads))
	for i := range reads {
		r := &reads[i]
		// The region is exactly the read's template, so the GACT anchor
		// (0,0) is the true alignment start — the paper's methodology
		// of aligning each read to its corresponding reference
		// position.
		lo, hi := r.RefStart, r.RefEnd
		region := ref[lo:hi]
		if r.Reverse {
			region = dna.RevComp(region)
		}
		pairs = append(pairs, alignPair{region: region, read: r.Seq})
	}
	return pairs, nil
}

// Fig9a regenerates the GACT optimality study: for each read class
// and (T, O) grid point, the fraction of alignments whose GACT score
// equals the optimal Smith-Waterman score. The paper's finding — all
// alignments optimal for every class at sufficient overlap, with
// (T=320, O=128) safe everywhere — is the value to reproduce.
func Fig9a(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	type to struct{ T, O int }
	grid := []to{{128, 16}, {128, 64}, {192, 64}, {256, 64}, {256, 128}, {320, 128}, {384, 128}}
	if o.Quick {
		grid = []to{{128, 16}, {320, 128}}
	}
	count := max(4, o.Reads/4)
	readLen := min(o.ReadLen, 2000) // O(mn) oracle bounds the length

	var tb metrics.Table
	tb.Header = []string{"(T,O)"}
	for _, p := range readsim.Profiles {
		tb.Header = append(tb.Header, p.Name+" opt", p.Name+" gap")
	}
	values := map[string]float64{}
	sc := align.GACTEval()
	for _, g := range grid {
		row := []string{fmt.Sprintf("(%d,%d)", g.T, g.O)}
		for _, p := range readsim.Profiles {
			pairs, err := makePairs(ref, o, p, count, readLen)
			if err != nil {
				return nil, err
			}
			cfg := gact.Config{T: g.T, O: g.O, FirstTileT: 384, Scoring: sc}
			optimal, total := 0, 0
			var gactSum, optSum float64
			for _, pr := range pairs {
				// Anchor mid-read, as a D-SOFT candidate would.
				iSeed := len(pr.region) / 2
				jSeed := iSeed * len(pr.read) / len(pr.region)
				res, _, err := gact.Extend(pr.region, pr.read, iSeed, jSeed, &cfg)
				if err != nil || res == nil {
					continue
				}
				total++
				opt := align.ScoreOnly(pr.region, pr.read, &sc)
				optSum += float64(opt)
				gactSum += float64(res.Score)
				if res.Score == opt {
					optimal++
				}
			}
			frac, gap := 0.0, 0.0
			if total > 0 {
				frac = float64(optimal) / float64(total)
			}
			if optSum > 0 {
				gap = (optSum - gactSum) / optSum
			}
			row = append(row, fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%.2f%%", gap*100))
			values[fmt.Sprintf("%s/T%d_O%d", p.Name, g.T, g.O)] = frac
			values[fmt.Sprintf("%s/T%d_O%d/gap", p.Name, g.T, g.O)] = gap
		}
		tb.AddRow(row...)
	}
	report := "GACT vs optimal Smith-Waterman: fraction of alignments with the\noptimal score, and mean relative score gap (paper Fig. 9a reports\nall-optimal at sufficient overlap; residual gaps here are <1% and\nconcentrate at alignment ends on the noisiest reads — see\nEXPERIMENTS.md):\n" + tb.Render()
	return &Result{ID: "fig9a", Report: report, Values: values}, nil
}

// Fig9b regenerates the single-array throughput surface from the
// cycle model: alignments/s of 10 kbp pairs across (T, O), varying as
// (T−O)/T².
func Fig9b(o Options) (*Result, error) {
	m := hw.NewGACTModel(hw.DefaultChip())
	var tb metrics.Table
	tb.Header = []string{"T", "O=T/8", "O=T/4", "O=T/2"}
	values := map[string]float64{}
	for _, T := range []int{128, 192, 256, 320, 384, 448, 512} {
		row := []string{fmt.Sprint(T)}
		for _, div := range []int{8, 4, 2} {
			O := T / div
			aps := m.AlignmentsPerSecond(10000, T, O)
			row = append(row, fmt.Sprintf("%.0f", aps))
			values[fmt.Sprintf("T%d_O%d", T, O)] = aps
		}
		tb.AddRow(row...)
	}
	report := "Single GACT array throughput (alignments/s, 10 kbp pairs)\nacross (T, O) — proportional to (T−O)/T² (paper Fig. 9b):\n" + tb.Render()
	return &Result{ID: "fig9b", Report: report, Values: values}, nil
}

// Fig10 regenerates the throughput-vs-length comparison: measured
// GACT software, measured Myers bit-vector (the Edlib class), and the
// Darwin model, for pairwise alignments of 1-10 kbp PacBio reads.
func Fig10(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	lengths := []int{1000, 2000, 5000, 10000}
	if o.Quick {
		lengths = []int{1000, 2000}
	}
	perLen := max(4, o.Reads/10)
	cfg := gact.DefaultConfig()
	cfg.MinFirstTile = 0
	darwin := hw.NewDarwin()

	gactS := &metrics.Series{Name: "GACT (software)"}
	edlibS := &metrics.Series{Name: "Edlib-class (Myers)"}
	hwS := &metrics.Series{Name: "GACT (Darwin model)"}
	values := map[string]float64{}
	for _, L := range lengths {
		pairs, err := makePairs(ref, o, readsim.PacBio, perLen, L)
		if err != nil {
			return nil, err
		}
		// Repeat until ≥ 50 ms elapsed so short alignments are not
		// timer-noise dominated.
		measure := func(alignPairFn func(alignPair) error) (float64, error) {
			const minElapsed = 50 * time.Millisecond
			start := time.Now()
			n := 0
			for time.Since(start) < minElapsed {
				for _, pr := range pairs {
					if err := alignPairFn(pr); err != nil {
						return 0, err
					}
					n++
				}
			}
			return float64(n) / time.Since(start).Seconds(), nil
		}
		gactAPS, err := measure(func(pr alignPair) error {
			_, _, err := gact.Extend(pr.region, pr.read, 0, 0, &cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		edlibAPS, err := measure(func(pr alignPair) error {
			_, err := align.Myers(pr.region, pr.read, align.EditGlobal)
			return err
		})
		if err != nil {
			return nil, err
		}

		hwAPS := darwin.AlignmentsPerSecond(L, cfg.T, cfg.O)
		x := float64(L) / 1000
		gactS.Append(x, gactAPS)
		edlibS.Append(x, edlibAPS)
		hwS.Append(x, hwAPS)
		values[fmt.Sprintf("gact_sw/%d", L)] = gactAPS
		values[fmt.Sprintf("edlib/%d", L)] = edlibAPS
		values[fmt.Sprintf("darwin/%d", L)] = hwAPS
		values[fmt.Sprintf("speedup_vs_edlib/%d", L)] = hwAPS / edlibAPS
	}
	report := "Alignments/second vs sequence length (paper Fig. 10; Darwin's\nspeedup over the Edlib class must grow with length — linear-time\ntiles vs quadratic bit-vector):\n" +
		metrics.RenderSeries("Kbp", gactS, edlibS, hwS)
	return &Result{ID: "fig10", Report: report, Values: values}, nil
}

// Fig11 regenerates the D-SOFT tuning study on ONT_2D reads:
// sensitivity and false hit rate versus threshold h for several
// (k, N) settings.
func Fig11(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	reads, err := simulate(ref, o, readsim.ONT2D)
	if err != nil {
		return nil, err
	}
	type kn struct{ k, n int }
	// Scaled analogues of the paper's (k, N) grid.
	settings := []kn{{10, o.ReadLen / 4}, {11, o.ReadLen / 3}, {12, o.ReadLen / 2}}
	hs := []int{15, 20, 25, 30, 40, 60}
	if o.Quick {
		settings = settings[:2]
		hs = []int{15, 30, 60}
	}
	indel := readsim.ONT2D.Ins + readsim.ONT2D.Del

	var tb metrics.Table
	tb.Header = []string{"(k,N)", "h", "sensitivity", "false hit rate"}
	values := map[string]float64{}
	for _, s := range settings {
		tab, err := seedtable.Build(ref, s.k, seedtable.DefaultOptions())
		if err != nil {
			return nil, err
		}
		for _, h := range hs {
			filter, err := dsoft.New(tab, dsoft.Config{N: s.n, H: h, BinSize: 128})
			if err != nil {
				return nil, err
			}
			ev := assembly.EvaluateDSOFT(filter, reads, indel)
			tb.AddRow(fmt.Sprintf("(%d,%d)", s.k, s.n), fmt.Sprint(h),
				fmt.Sprintf("%.3f", ev.Sensitivity), fmt.Sprintf("%.2f", ev.FHR))
			values[fmt.Sprintf("k%d_N%d_h%d/sens", s.k, s.n, h)] = ev.Sensitivity
			values[fmt.Sprintf("k%d_N%d_h%d/fhr", s.k, s.n, h)] = ev.FHR
		}
	}
	report := "D-SOFT sensitivity and FHR vs h for (k, N) settings, ONT_2D\n(paper Fig. 11: h trades FHR against sensitivity; k, N set the\ncoarse operating point):\n" + tb.Render()
	return &Result{ID: "fig11", Report: report, Values: values}, nil
}

// Fig12 regenerates the first-tile score study: the distribution of
// first GACT tile scores (T=384) for D-SOFT true hits vs false hits,
// and the filtering power of h_tile=90.
func Fig12(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	values := map[string]float64{}
	trueHist := metrics.NewHistogram(0, 400, 20)
	falseHist := metrics.NewHistogram(0, 400, 20)

	gcfg := gact.DefaultConfig() // FirstTileT = 384
	gcfg.MinFirstTile = 0
	for _, p := range readsim.Profiles {
		reads, err := simulate(ref, o, p)
		if err != nil {
			return nil, err
		}
		k, n, h := classConfig(p, o.ReadLen)
		tab, err := seedtable.Build(ref, k, seedtable.DefaultOptions())
		if err != nil {
			return nil, err
		}
		filter, err := dsoft.New(tab, dsoft.Config{N: n, H: h, BinSize: 128})
		if err != nil {
			return nil, err
		}
		indel := p.Ins + p.Del
		for i := range reads {
			r := &reads[i]
			slackBins := int(indel*float64(len(r.Seq)))/128 + 1
			trueBin := filter.BinOf(r.RefStart, 0)
			for _, rev := range []bool{false, true} {
				q := r.Seq
				if rev {
					q = dna.RevComp(q)
				}
				cands, _ := filter.Query(q)
				if len(cands) > 64 {
					cands = cands[:64]
				}
				for _, c := range cands {
					_, st, err := gact.Extend(ref, q, c.RefPos, c.QueryPos, &gcfg)
					if err != nil {
						continue
					}
					isTrue := rev == r.Reverse && c.Bin >= trueBin-slackBins && c.Bin <= trueBin+slackBins
					if isTrue {
						trueHist.Add(float64(st.FirstTileScore))
					} else {
						falseHist.Add(float64(st.FirstTileScore))
					}
				}
			}
		}
	}
	const hTile = 90
	falseFiltered := falseHist.FractionBelow(hTile)
	trueLost := trueHist.FractionBelow(hTile)
	values["false_filtered_at_90"] = falseFiltered
	values["true_lost_at_90"] = trueLost
	values["true_hits"] = float64(trueHist.Total())
	values["false_hits"] = float64(falseHist.Total())
	report := fmt.Sprintf(
		"First GACT tile score (T=384) for D-SOFT true vs false hits\n(paper Fig. 12: h_tile=90 removes 97.3%% of false hits at <0.05%%\nsensitivity loss).\n\nTrue hits (%d):\n%s\nFalse hits (%d):\n%s\nAt h_tile=%d: %.1f%% of false hits filtered, %.2f%% of true hits lost\n",
		trueHist.Total(), trueHist.Render(40),
		falseHist.Total(), falseHist.Render(40),
		hTile, falseFiltered*100, trueLost*100)
	return &Result{ID: "fig12", Report: report, Values: values}, nil
}

// Fig13 regenerates the timing waterfall from the GraphMap-class
// software mapper to full Darwin: measured software stage times per
// read, then hardware model substitutions step by step.
func Fig13(o Options) (*Result, error) {
	o = o.withDefaults()
	ref, err := makeGenome(o)
	if err != nil {
		return nil, err
	}
	reads, err := simulate(ref, o, readsim.ONT2D)
	if err != nil {
		return nil, err
	}
	n := float64(len(reads))

	// Line 1: GraphMap-class software.
	gm, err := baseline.NewGraphMapLike(ref, baseline.DefaultGraphMapConfig())
	if err != nil {
		return nil, err
	}
	var gmTimes baseline.StageTimes
	for i := range reads {
		out := assembly.GraphMapMapper{G: gm}.MapBest(reads[i].Seq)
		gmTimes.Add(out.Times)
	}

	// Line 2: Darwin in software (D-SOFT + GACT).
	k, nn, h := classConfig(readsim.ONT2D, o.ReadLen)
	eng, err := core.New(ref, core.DefaultConfig(k, nn, h))
	if err != nil {
		return nil, err
	}
	dm := assembly.NewDarwinMapper(eng)
	for i := range reads {
		dm.MapBest(reads[i].Seq)
	}
	w := dm.Workload()
	dsoftSW := dm.Stats.FiltrationTime.Seconds() / n
	gactSW := dm.Stats.AlignmentTime.Seconds() / n

	// Hardware substitutions.
	chip := hw.DefaultChip()
	gm64 := hw.NewGACTModel(chip)
	gactHW := w.TilesPerRead / (float64(chip.GACTArrays) * gm64.TilesPerSecond(320, 128))

	fourChan := hw.NewDSOFTModel(chip)
	// Line 4: hardware SeedLookup over 4 channels, but bin updates
	// still in DRAM (each hit costs a random DRAM access on top of the
	// streamed position reads).
	perSeedStream := w.SeedsPerRead / fourChan.SeedsPerSecond(w.HitsPerSeed)
	hitsPerRead := w.SeedsPerRead * w.HitsPerSeed
	binsInDRAM := perSeedStream + hitsPerRead*fourChan.DRAM.RandomAccessNs*1e-9/float64(chip.DRAMChannels)
	// Line 5: bin updates in SRAM (the full D-SOFT accelerator).
	dsoftHW := perSeedStream

	type line struct {
		name        string
		filt, align float64
		pipelined   bool
	}
	lines := []line{
		{"1. GraphMap-class (software)", gmTimes.Filtration.Seconds() / n, gmTimes.Alignment.Seconds() / n, false},
		{"2. Replace by D-SOFT + GACT (software)", dsoftSW, gactSW, false},
		{"3. GACT hardware-acceleration", dsoftSW, gactHW, false},
		{"4. 1→4 DRAM channels for D-SOFT (bins in DRAM)", binsInDRAM, gactHW, false},
		{"5. Move bin updates to SRAM", dsoftHW, gactHW, false},
		{"6. Pipeline D-SOFT and GACT", dsoftHW, gactHW, true},
	}

	var tb metrics.Table
	tb.Header = []string{"Configuration", "Filtration (ms/read)", "Alignment (ms/read)", "Total (ms/read)"}
	values := map[string]float64{}
	for i, l := range lines {
		total := l.filt + l.align
		if l.pipelined {
			total = max(l.filt, l.align)
		}
		tb.AddRow(l.name,
			fmt.Sprintf("%.4g", l.filt*1e3),
			fmt.Sprintf("%.4g", l.align*1e3),
			fmt.Sprintf("%.4g", total*1e3))
		values[fmt.Sprintf("line%d/total_ms", i+1)] = total * 1e3
	}
	report := "Timing waterfall, GraphMap-class → Darwin, ONT_2D reads\n(paper Fig. 13; hardware stages use the calibrated model):\n" + tb.Render()
	return &Result{ID: "fig13", Report: report, Values: values}, nil
}
