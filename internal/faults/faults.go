// Package faults is a deterministic fault-injection registry for the
// serving pipeline. Code under test declares named injection points
// (package-level, one atomic load when disarmed); an operator arms a
// subset of them with a spec string — via the -faults flag or the
// DARWIN_FAULTS environment variable, both gated on
// DARWIN_ALLOW_FAULTS=1 so injection can never ship on by accident —
// and each armed point can delay, fail, or panic with a configured
// probability or deterministic cadence.
//
// Darwin's pipeline (D-SOFT filter → tiled GACT, Section 5) gives the
// natural injection boundaries: seed-table and shard builds, per-read
// map work, GACT tile extension, batch flush, request admission, and
// response streaming each have a registered point, so a chaos run can
// prove the blast radius of a fault at any stage is bounded — one
// read, one request, or one index build, never the process.
//
// Spec grammar (clauses joined by ';'):
//
//	spec    := clause (';' clause)*
//	clause  := "seed" '=' int64          — registry RNG seed (default 1)
//	         | point '=' action (',' action)*
//	action  := "p" '=' float             — fire probability in [0,1]
//	         | "every" '=' int           — fire on every Nth call (overrides p)
//	         | "after" '=' int           — skip the first N calls
//	         | "times" '=' int           — fire at most N times
//	         | "delay" '=' duration      — sleep before acting (Go duration)
//	         | "error" ['=' message]     — return an *InjectedError
//	         | "panic" ['=' message]     — panic
//
// Example:
//
//	DARWIN_FAULTS='shard/build=p=0.1,delay=200ms;core/map_read=every=29,panic=poisoned read'
//
// With no p/every given, an armed point fires on every call past
// `after`. Probabilistic points draw from a per-point RNG seeded with
// the registry seed mixed with the point name, so runs are reproducible
// regardless of the order points fire in. Every fire increments the
// point's obs counter ("faults/<point>") and the global "faults/fired",
// so run reports and benchdiff see exactly what was injected.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/obs"
)

// AllowEnv must be "1" in the environment for Setup to accept a spec.
const AllowEnv = "DARWIN_ALLOW_FAULTS"

// SpecEnv is consulted by Setup when no -faults flag value is given.
const SpecEnv = "DARWIN_FAULTS"

var cFired = obs.Default.Counter("faults/fired")

// InjectedError is the error returned by an armed point's error
// action, distinguishable from organic failures so the serving layer
// can label it in structured error responses.
type InjectedError struct {
	// Point is the injection point that fired.
	Point string
	// Msg is the configured message (default "injected fault").
	Msg string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected fault at %s: %s", e.Point, e.Msg)
}

// IsInjected reports whether err (or anything it wraps) came from a
// fault injection point.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// pointConfig is one armed point's behaviour.
type pointConfig struct {
	prob     float64 // fire probability; <0 means "not set"
	every    int64   // fire on every Nth eligible call (overrides prob)
	after    int64   // skip the first N calls
	times    int64   // max fires (0 = unlimited)
	delay    time.Duration
	errMsg   string
	hasErr   bool
	panicMsg string
	hasPanic bool
}

// Point is one named injection point. Construct with Registry.Point at
// package init; the disarmed fast path is a single atomic load.
type Point struct {
	name  string
	fired *obs.Counter
	armed atomic.Bool

	mu    sync.Mutex
	cfg   pointConfig
	rng   *rand.Rand
	calls int64
	fires int64
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fires returns how many times this point has fired since it was last
// armed.
func (p *Point) Fires() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

// Fire consults the point: disarmed it returns nil at the cost of one
// atomic load; armed it may sleep (delay action), panic (panic
// action), or return an *InjectedError (error action), in that
// precedence. Call it at the top of the guarded operation.
func (p *Point) Fire() error {
	if !p.armed.Load() {
		return nil
	}
	return p.fire()
}

func (p *Point) fire() error {
	p.mu.Lock()
	p.calls++
	cfg := p.cfg
	eligible := p.calls > cfg.after && (cfg.times == 0 || p.fires < cfg.times)
	should := false
	if eligible {
		switch {
		case cfg.every > 0:
			should = (p.calls-cfg.after)%cfg.every == 0
		case cfg.prob < 0 || cfg.prob >= 1:
			should = true
		default:
			should = p.rng.Float64() < cfg.prob
		}
	}
	if should {
		p.fires++
	}
	p.mu.Unlock()
	if !should {
		return nil
	}
	p.fired.Inc()
	cFired.Inc()
	if cfg.delay > 0 {
		time.Sleep(cfg.delay)
	}
	if cfg.hasPanic {
		msg := cfg.panicMsg
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("faults: injected panic at %s: %s", p.name, msg))
	}
	if cfg.hasErr {
		msg := cfg.errMsg
		if msg == "" {
			msg = "injected fault"
		}
		return &InjectedError{Point: p.name, Msg: msg}
	}
	return nil
}

// Registry holds the process's injection points. Points register
// themselves at package init via Point; Enable arms a subset from a
// spec string; Reset disarms everything (tests).
type Registry struct {
	mu     sync.Mutex
	seed   int64
	points map[string]*Point
}

// NewRegistry returns an empty registry with seed 1.
func NewRegistry() *Registry {
	return &Registry{seed: 1, points: map[string]*Point{}}
}

// Default is the process-wide registry every pipeline package
// registers its injection points in.
var Default = NewRegistry()

// Point returns (registering if needed) the named injection point.
func (r *Registry) Point(name string) *Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p
	}
	p := &Point{name: name, fired: obs.Default.Counter("faults/" + name)}
	r.points[name] = p
	return p
}

// Names returns the registered point names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for n := range r.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enable parses spec and arms the named points, resetting their call
// and fire counters so cadence actions (every/after/times) count from
// this arming. Unknown point names are an error listing the known
// points — a misspelled spec must not silently inject nothing.
func (r *Registry) Enable(spec string) error {
	type armReq struct {
		p   *Point
		cfg pointConfig
	}
	var reqs []armReq
	seed := r.seed
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("faults: clause %q is not point=actions", clause)
		}
		name = strings.TrimSpace(name)
		if name == "seed" {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			seed = v
			continue
		}
		r.mu.Lock()
		p, ok := r.points[name]
		r.mu.Unlock()
		if !ok {
			return fmt.Errorf("faults: unknown point %q (known: %s)", name, strings.Join(r.Names(), ", "))
		}
		cfg, err := parseActions(rest)
		if err != nil {
			return fmt.Errorf("faults: point %s: %w", name, err)
		}
		reqs = append(reqs, armReq{p: p, cfg: cfg})
	}
	r.mu.Lock()
	r.seed = seed
	r.mu.Unlock()
	for _, req := range reqs {
		req.p.mu.Lock()
		req.p.cfg = req.cfg
		req.p.rng = rand.New(rand.NewSource(seed ^ int64(hashName(req.p.name))))
		req.p.calls = 0
		req.p.fires = 0
		req.p.mu.Unlock()
		req.p.armed.Store(true)
	}
	return nil
}

// Reset disarms every point and clears its counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	points := make([]*Point, 0, len(r.points))
	for _, p := range r.points {
		points = append(points, p)
	}
	r.mu.Unlock()
	for _, p := range points {
		p.armed.Store(false)
		p.mu.Lock()
		p.cfg = pointConfig{}
		p.calls, p.fires = 0, 0
		p.mu.Unlock()
	}
}

// PointStatus is one point's state for reporting.
type PointStatus struct {
	Name  string `json:"name"`
	Armed bool   `json:"armed"`
	Calls int64  `json:"calls"`
	Fires int64  `json:"fires"`
}

// Snapshot returns every point's status, sorted by name.
func (r *Registry) Snapshot() []PointStatus {
	r.mu.Lock()
	points := make([]*Point, 0, len(r.points))
	for _, p := range r.points {
		points = append(points, p)
	}
	r.mu.Unlock()
	out := make([]PointStatus, 0, len(points))
	for _, p := range points {
		p.mu.Lock()
		out = append(out, PointStatus{Name: p.name, Armed: p.armed.Load(), Calls: p.calls, Fires: p.fires})
		p.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

func parseActions(s string) (pointConfig, error) {
	cfg := pointConfig{prob: -1}
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		key, val, _ := strings.Cut(a, "=")
		key = strings.TrimSpace(key)
		switch key {
		case "p", "prob":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return cfg, fmt.Errorf("bad probability %q (want [0,1])", val)
			}
			cfg.prob = f
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("bad every %q (want >= 1)", val)
			}
			cfg.every = n
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad after %q (want >= 0)", val)
			}
			cfg.after = n
		case "times":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("bad times %q (want >= 1)", val)
			}
			cfg.times = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("bad delay %q: %v", val, err)
			}
			cfg.delay = d
		case "error":
			cfg.hasErr = true
			cfg.errMsg = strings.TrimSpace(val)
		case "panic":
			cfg.hasPanic = true
			cfg.panicMsg = strings.TrimSpace(val)
		default:
			return cfg, fmt.Errorf("unknown action %q", key)
		}
	}
	if !cfg.hasErr && !cfg.hasPanic && cfg.delay == 0 {
		return cfg, fmt.Errorf("no action (want at least one of delay, error, panic)")
	}
	return cfg, nil
}

func hashName(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// Setup arms the Default registry from the -faults flag value, falling
// back to the DARWIN_FAULTS environment variable. A non-empty spec is
// rejected unless DARWIN_ALLOW_FAULTS=1 — injection is an explicit,
// per-deployment opt-in, never an accidental ship. Returns the active
// spec ("" when injection is off) for startup logging.
func Setup(flagSpec string) (string, error) {
	spec := flagSpec
	if spec == "" {
		spec = os.Getenv(SpecEnv)
	}
	if spec == "" {
		return "", nil
	}
	if os.Getenv(AllowEnv) != "1" {
		return "", fmt.Errorf("faults: injection spec given but %s=1 is not set; refusing to arm fault points", AllowEnv)
	}
	if err := Default.Enable(spec); err != nil {
		return "", err
	}
	return spec, nil
}
